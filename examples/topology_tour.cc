/**
 * @file
 * Topology and routing tour: the same speculative VC router on a mesh
 * with DOR, a mesh with west-first adaptive routing, and a torus with
 * dateline VCs -- the directions the paper's Section 6 lists as future
 * work, side by side.
 *
 * Declarative: each column is an experiment curve overriding
 * net.topology / net.routing by registry name; the pattern axis spans
 * the rows.
 *
 *   $ ./topology_tour [offered_fraction] [k]
 */

#include <cstdio>
#include <cstdlib>

#include "api/params.hh"
#include "common/logging.hh"

using namespace pdr;

int
main(int argc, char **argv)
{
    double offered = argc > 1 ? std::atof(argv[1]) : 0.3;
    int k = argc > 2 ? std::atoi(argv[2]) : 8;

    std::string frac = csprintf("%.6f", offered);

    api::Experiment exp;
    exp.name = "topology-tour";
    exp.set("net.k", std::to_string(k));
    exp.set("router.model", "specVC");
    exp.set("router.num_vcs", "2");
    exp.set("router.buf_depth", "4");
    exp.set("sim.warmup", "4000");
    exp.set("sim.sample_packets", "8000");
    exp.set("sweep.traffic.pattern",
            "uniform transpose tornado hotspot");
    // The offered fraction is re-applied per curve AFTER the topology
    // override, so each column is normalized to its own capacity.
    exp.curves = {
        {"mesh + DOR",
         {{"net.topology", "mesh"},
          {"traffic.offered_fraction", frac}}},
        {"mesh + west-first",
         {{"net.topology", "mesh"},
          {"net.routing", "westfirst"},
          {"traffic.offered_fraction", frac}}},
        {"torus + dateline",
         {{"net.topology", "torus"},
          {"traffic.offered_fraction", frac}}},
    };
    exp.applyEnv();

    std::printf("specVC (2 VCs x 4 bufs), %dx%d network, offered "
                "%.0f%% of each topology's\nuniform capacity\n\n", k,
                k, 100.0 * offered);
    std::printf("%-14s %22s %22s %22s\n", "pattern", "mesh + DOR",
                "mesh + west-first", "torus + dateline");

    auto results = api::runSweep(exp.points());
    results.throwIfFailed();

    const auto &kinds = exp.axes.at(0).values;
    for (std::size_t p = 0; p < kinds.size(); p++) {
        std::printf("%-14s", kinds[p].c_str());
        for (std::size_t c = 0; c < exp.curves.size(); c++) {
            const auto &res =
                results.points[p * exp.curves.size() + c].res;
            std::printf("      %8.1f cy (%3.0f%%)", res.avgLatency,
                        100.0 * res.acceptedFraction);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\nnotes: the torus column is normalized to the torus"
                " capacity (2x the mesh);\nits wraparound shortens "
                "paths (tornado in particular becomes cheap), while\n"
                "the dateline restriction halves the VCs available "
                "per class.\n");
    return 0;
}
