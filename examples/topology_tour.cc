/**
 * @file
 * Topology and routing tour: the same speculative VC router on a mesh
 * with DOR, a mesh with west-first adaptive routing, and a torus with
 * dateline VCs -- the directions the paper's Section 6 lists as future
 * work, side by side.
 *
 *   $ ./topology_tour [offered_fraction] [k]
 */

#include <cstdio>
#include <cstdlib>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

namespace {

api::SimResults
run(int k, bool torus, bool adaptive, traffic::PatternKind pattern,
    double offered)
{
    api::SimConfig cfg;
    cfg.net.k = k;
    cfg.net.torus = torus;
    cfg.net.adaptiveRouting = adaptive;
    cfg.net.router.model = RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.pattern = pattern;
    cfg.net.warmup = 4000;
    cfg.net.samplePackets = 8000;
    cfg.net.setOfferedFraction(offered);
    cfg.applyEnvDefaults();
    return api::runSimulation(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    double offered = argc > 1 ? std::atof(argv[1]) : 0.3;
    int k = argc > 2 ? std::atoi(argv[2]) : 8;

    std::printf("specVC (2 VCs x 4 bufs), %dx%d network, offered "
                "%.0f%% of each topology's\nuniform capacity\n\n", k,
                k, 100.0 * offered);
    std::printf("%-14s %22s %22s %22s\n", "pattern", "mesh + DOR",
                "mesh + west-first", "torus + dateline");

    const traffic::PatternKind kinds[] = {
        traffic::PatternKind::Uniform,
        traffic::PatternKind::Transpose,
        traffic::PatternKind::Tornado,
        traffic::PatternKind::Hotspot,
    };
    for (auto kind : kinds) {
        std::printf("%-14s", traffic::toString(kind));
        for (int mode = 0; mode < 3; mode++) {
            auto res = run(k, mode == 2, mode == 1, kind, offered);
            std::printf("      %8.1f cy (%3.0f%%)", res.avgLatency,
                        100.0 * res.acceptedFraction);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\nnotes: the torus column is normalized to the torus"
                " capacity (2x the mesh);\nits wraparound shortens "
                "paths (tornado in particular becomes cheap), while\n"
                "the dateline restriction halves the VCs available "
                "per class.\n");
    return 0;
}
