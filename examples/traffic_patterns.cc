/**
 * @file
 * Traffic-pattern tour: run the speculative VC router against the
 * standard synthetic patterns of the interconnection-network
 * literature (an extension beyond the paper's uniform-only evaluation;
 * the paper argues flow control is relatively pattern-insensitive --
 * this example lets you check).
 *
 *   $ ./traffic_patterns [offered_fraction]
 */

#include <cstdio>
#include <cstdlib>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;
using traffic::PatternKind;

int
main(int argc, char **argv)
{
    double offered = argc > 1 ? std::atof(argv[1]) : 0.3;

    std::printf("specVC (2 VCs x 4 bufs) vs wormhole (8 bufs), 8x8 "
                "mesh, offered %.0f%% of\nuniform capacity\n\n",
                100.0 * offered);
    std::printf("%-12s %20s %20s\n", "pattern", "WH latency (acc%)",
                "specVC latency (acc%)");

    const PatternKind kinds[] = {
        PatternKind::Uniform, PatternKind::Transpose,
        PatternKind::BitComplement, PatternKind::Tornado,
        PatternKind::Neighbor, PatternKind::Hotspot,
    };

    for (auto kind : kinds) {
        double lat[2], acc[2];
        bool sat[2];
        for (int i = 0; i < 2; i++) {
            api::SimConfig cfg;
            if (i == 0) {
                cfg.net.router.model = RouterModel::Wormhole;
                cfg.net.router.numVcs = 1;
                cfg.net.router.bufDepth = 8;
            } else {
                cfg.net.router.model =
                    RouterModel::SpecVirtualChannel;
                cfg.net.router.numVcs = 2;
                cfg.net.router.bufDepth = 4;
            }
            cfg.net.pattern = kind;
            cfg.net.warmup = 4000;
            cfg.net.samplePackets = 8000;
            cfg.net.setOfferedFraction(offered);
            cfg.applyEnvDefaults();
            auto res = api::runSimulation(cfg);
            lat[i] = res.avgLatency;
            acc[i] = 100.0 * res.acceptedFraction;
            sat[i] = res.saturated();
        }
        std::printf("%-12s %11.1f (%4.0f%%)%s %11.1f (%4.0f%%)%s\n",
                    traffic::toString(kind), lat[0], acc[0],
                    sat[0] ? "*" : " ", lat[1], acc[1],
                    sat[1] ? "*" : " ");
    }
    std::printf("\n(* = saturated at this load; latency reflects "
                "delivered packets only)\n");
    return 0;
}
