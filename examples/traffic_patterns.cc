/**
 * @file
 * Traffic-pattern tour: run the speculative VC router against the
 * standard synthetic patterns of the interconnection-network
 * literature (an extension beyond the paper's uniform-only evaluation;
 * the paper argues flow control is relatively pattern-insensitive --
 * this example lets you check).
 *
 * Declarative: the whole grid is an api::Experiment -- every pattern
 * registered in traffic::PatternRegistry becomes one axis value, so a
 * pattern you register yourself shows up in the table automatically.
 *
 *   $ ./traffic_patterns [offered_fraction]
 */

#include <cstdio>
#include <cstdlib>

#include "api/params.hh"
#include "common/logging.hh"
#include "traffic/pattern.hh"

using namespace pdr;

int
main(int argc, char **argv)
{
    double offered = argc > 1 ? std::atof(argv[1]) : 0.3;

    api::Experiment exp;
    exp.name = "traffic-patterns";
    exp.set("net.k", "8");
    exp.set("sim.warmup", "4000");
    exp.set("sim.sample_packets", "8000");
    exp.set("traffic.offered_fraction", csprintf("%.6f", offered));
    // One axis value per registered pattern, WH vs specVC curves.
    std::string patterns;
    for (const auto &name : traffic::PatternRegistry::instance().names())
        patterns += (patterns.empty() ? "" : " ") + name;
    exp.set("sweep.traffic.pattern", patterns);
    exp.curves = {
        {"WH",
         {{"router.model", "WH"},
          {"router.num_vcs", "1"},
          {"router.buf_depth", "8"}}},
        {"specVC",
         {{"router.model", "specVC"},
          {"router.num_vcs", "2"},
          {"router.buf_depth", "4"}}},
    };
    exp.applyEnv();

    std::printf("specVC (2 VCs x 4 bufs) vs wormhole (8 bufs), 8x8 "
                "mesh, offered %.0f%% of\nuniform capacity\n\n",
                100.0 * offered);
    std::printf("%-12s %20s %20s\n", "pattern", "WH latency (acc%)",
                "specVC latency (acc%)");

    auto results = api::runSweep(exp.points());

    const auto &kinds = exp.axes.at(0).values;
    for (std::size_t p = 0; p < kinds.size(); p++) {
        std::printf("%-12s", kinds[p].c_str());
        for (std::size_t c = 0; c < exp.curves.size(); c++) {
            const auto &pt = results.points[p * exp.curves.size() + c];
            if (!pt.ok) {
                // E.g. bitcomp on a non-power-of-two node count.
                std::printf(" %13s       ", "n/a");
                continue;
            }
            std::printf(" %11.1f (%4.0f%%)%s", pt.res.avgLatency,
                        100.0 * pt.res.acceptedFraction,
                        pt.res.saturated() ? "*" : " ");
        }
        std::printf("\n");
    }
    std::printf("\n(* = saturated at this load; latency reflects "
                "delivered packets only)\n");
    return 0;
}
