/**
 * @file
 * Quickstart: simulate the paper's headline comparison in ~30 lines.
 *
 * Builds an 8x8 mesh with each of the three router microarchitectures,
 * runs the measurement protocol at a moderate load, and prints average
 * latency and accepted throughput.
 *
 *   $ ./quickstart [offered_fraction]
 */

#include <cstdio>
#include <cstdlib>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

int
main(int argc, char **argv)
{
    double offered = argc > 1 ? std::atof(argv[1]) : 0.4;

    std::printf("8x8 mesh, uniform traffic, 5-flit packets, offered "
                "load %.0f%% of capacity\n\n", 100.0 * offered);
    std::printf("%-28s %12s %12s %10s\n", "router", "avg latency",
                "p99 latency", "accepted");

    struct Entry
    {
        const char *name;
        RouterModel model;
        int vcs;
        int buf;
    };
    const Entry entries[] = {
        {"wormhole (8 bufs)", RouterModel::Wormhole, 1, 8},
        {"VC (2 VCs x 4 bufs)", RouterModel::VirtualChannel, 2, 4},
        {"spec VC (2 VCs x 4 bufs)", RouterModel::SpecVirtualChannel,
         2, 4},
    };

    for (const auto &e : entries) {
        api::SimConfig cfg;
        cfg.net.router.model = e.model;
        cfg.net.router.numVcs = e.vcs;
        cfg.net.router.bufDepth = e.buf;
        cfg.net.warmup = 5000;
        cfg.net.samplePackets = 10000;
        cfg.net.setOfferedFraction(offered);
        cfg.applyEnvDefaults();

        auto res = api::runSimulation(cfg);
        std::printf("%-28s %9.1f cy %9.1f cy %9.2f%%%s\n", e.name,
                    res.avgLatency, res.p99Latency,
                    100.0 * res.acceptedFraction,
                    res.saturated() ? "  (saturated)" : "");
    }

    std::printf("\nThe speculative VC router matches the wormhole "
                "router's latency while\nsustaining VC flow control's "
                "higher throughput (paper, Section 5.1).\n");
    return 0;
}
