/**
 * @file
 * Pipeline explorer: apply the delay model to your own router.
 *
 * Give it a flow-control method, port/VC counts, flit width, routing
 * range and clock period, and it prints the atomic-module delays and
 * the pipeline the model prescribes (the paper's Section-3 design
 * methodology as a command-line tool).
 *
 *   $ ./pipeline_explorer wh|vc|spec [p] [v] [w] [clk_tau4] [rv|rp|rpv]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;
using namespace pdr::pipeline;

int
main(int argc, char **argv)
{
    RouterParams prm;
    prm.kind = RouterKind::SpecVirtualChannel;
    prm.p = 5;
    prm.v = 2;
    prm.w = 32;
    prm.range = RoutingRange::Rv;
    double clk_tau4 = 20.0;

    if (argc > 1) {
        if (!std::strcmp(argv[1], "wh"))
            prm.kind = RouterKind::Wormhole;
        else if (!std::strcmp(argv[1], "vc"))
            prm.kind = RouterKind::VirtualChannel;
        else if (!std::strcmp(argv[1], "spec"))
            prm.kind = RouterKind::SpecVirtualChannel;
        else {
            std::fprintf(stderr,
                         "usage: %s wh|vc|spec [p] [v] [w] [clk_tau4] "
                         "[rv|rp|rpv]\n", argv[0]);
            return 1;
        }
    }
    if (argc > 2)
        prm.p = std::atoi(argv[2]);
    if (argc > 3)
        prm.v = std::atoi(argv[3]);
    if (argc > 4)
        prm.w = std::atoi(argv[4]);
    if (argc > 5)
        clk_tau4 = std::atof(argv[5]);
    if (argc > 6) {
        if (!std::strcmp(argv[6], "rv"))
            prm.range = RoutingRange::Rv;
        else if (!std::strcmp(argv[6], "rp"))
            prm.range = RoutingRange::Rp;
        else if (!std::strcmp(argv[6], "rpv"))
            prm.range = RoutingRange::Rpv;
    }
    if (prm.kind == RouterKind::Wormhole)
        prm.v = 1;

    Tau clk = fromTau4(clk_tau4);
    std::printf("router: %s, p=%d, v=%d, w=%d, clk=%.1f tau4, "
                "range=%s\n\n", toString(prm.kind), prm.p, prm.v,
                prm.w, clk_tau4, toString(prm.range));

    std::printf("atomic modules on the critical path:\n");
    auto path = criticalPath(prm);
    for (const auto &m : path) {
        std::printf("  %-18s t=%6.1f tau4   h=%4.1f tau4\n",
                    m.name().c_str(), m.delay.latency.inTau4(),
                    m.delay.overhead.inTau4());
    }
    std::printf("  unpipelined total: %.1f tau4 (Chien-style single "
                "number)\n\n",
                criticalPathTotal(path).inTau4());

    for (auto policy : {FitPolicy::Strict, FitPolicy::Relaxed}) {
        auto d = design(path, clk, policy);
        std::printf("pipeline (%s fit): %d stages\n",
                    policy == FitPolicy::Strict ? "strict EQ-1"
                                                : "relaxed",
                    d.depth());
        int idx = 1;
        for (const auto &stage : d.stages) {
            std::printf("  stage %d (%4.1f%% occupied):", idx++,
                        100.0 * stage.occupancy().value() /
                            clk.value());
            for (const auto &s : stage.slices) {
                std::printf(" %s", toString(s.kind));
                if (s.continues)
                    std::printf("...");
            }
            std::printf("\n");
        }
    }
    return 0;
}
