/**
 * @file
 * Pipeline explorer: apply the delay model to your own router.
 *
 * Give it a flow-control method, port/VC counts, flit width, routing
 * range and clock period, and it prints the atomic-module delays and
 * the pipeline the model prescribes (the paper's Section-3 design
 * methodology as a command-line tool).
 *
 *   $ ./pipeline_explorer wh|vc|spec [p] [v] [w] [clk_tau4] [rv|rp|rpv]
 *
 * Passing "all" for [v] sweeps v in {1,2,4,8,16,32} in parallel on
 * the sweep engine's pool and prints one summary line per VC count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;
using namespace pdr::pipeline;

int
main(int argc, char **argv)
{
    RouterParams prm;
    prm.kind = RouterKind::SpecVirtualChannel;
    prm.p = 5;
    prm.v = 2;
    prm.w = 32;
    prm.range = RoutingRange::Rv;
    double clk_tau4 = 20.0;

    if (argc > 1) {
        if (!std::strcmp(argv[1], "wh"))
            prm.kind = RouterKind::Wormhole;
        else if (!std::strcmp(argv[1], "vc"))
            prm.kind = RouterKind::VirtualChannel;
        else if (!std::strcmp(argv[1], "spec"))
            prm.kind = RouterKind::SpecVirtualChannel;
        else {
            std::fprintf(stderr,
                         "usage: %s wh|vc|spec [p] [v] [w] [clk_tau4] "
                         "[rv|rp|rpv]\n", argv[0]);
            return 1;
        }
    }
    bool sweep_v = false;
    if (argc > 2)
        prm.p = std::atoi(argv[2]);
    if (argc > 3) {
        if (!std::strcmp(argv[3], "all"))
            sweep_v = true;
        else
            prm.v = std::atoi(argv[3]);
    }
    if (argc > 4)
        prm.w = std::atoi(argv[4]);
    if (argc > 5)
        clk_tau4 = std::atof(argv[5]);
    if (argc > 6) {
        if (!std::strcmp(argv[6], "rv"))
            prm.range = RoutingRange::Rv;
        else if (!std::strcmp(argv[6], "rp"))
            prm.range = RoutingRange::Rp;
        else if (!std::strcmp(argv[6], "rpv"))
            prm.range = RoutingRange::Rpv;
    }
    if (prm.kind == RouterKind::Wormhole)
        prm.v = 1;

    Tau clk = fromTau4(clk_tau4);

    if (sweep_v) {
        // One design job per VC count, fanned across the pool
        // (PDR_THREADS controls the width), printed in order.
        // Wormhole routers have no VCs, so their "sweep" is v=1 only.
        std::vector<int> vcs{1, 2, 4, 8, 16, 32};
        if (prm.kind == RouterKind::Wormhole)
            vcs = {1};
        std::string axis;
        for (std::size_t i = 0; i < vcs.size(); i++)
            axis += csprintf(i ? ",%d" : "%d", vcs[i]);
        std::printf("router: %s, p=%d, v in {%s}, w=%d, clk=%.1f "
                    "tau4, range=%s\n\n", toString(prm.kind), prm.p,
                    axis.c_str(), prm.w, clk_tau4,
                    toString(prm.range));
        auto rows = exec::parallelMap(vcs, [&](int v) {
            RouterParams sp = prm;
            sp.v = v;
            auto path = criticalPath(sp);
            auto strict = design(path, clk, FitPolicy::Strict);
            auto relaxed = design(path, clk, FitPolicy::Relaxed);
            return csprintf("v=%-3d unpipelined %6.1f tau4 | strict "
                            "%d stages | relaxed %d stages", v,
                            criticalPathTotal(path).inTau4(),
                            strict.depth(), relaxed.depth());
        });
        for (const auto &row : rows)
            std::printf("%s\n", row.c_str());
        return 0;
    }

    std::printf("router: %s, p=%d, v=%d, w=%d, clk=%.1f tau4, "
                "range=%s\n\n", toString(prm.kind), prm.p, prm.v,
                prm.w, clk_tau4, toString(prm.range));

    std::printf("atomic modules on the critical path:\n");
    auto path = criticalPath(prm);
    for (const auto &m : path) {
        std::printf("  %-18s t=%6.1f tau4   h=%4.1f tau4\n",
                    m.name().c_str(), m.delay.latency.inTau4(),
                    m.delay.overhead.inTau4());
    }
    std::printf("  unpipelined total: %.1f tau4 (Chien-style single "
                "number)\n\n",
                criticalPathTotal(path).inTau4());

    for (auto policy : {FitPolicy::Strict, FitPolicy::Relaxed}) {
        auto d = design(path, clk, policy);
        std::printf("pipeline (%s fit): %d stages\n",
                    policy == FitPolicy::Strict ? "strict EQ-1"
                                                : "relaxed",
                    d.depth());
        int idx = 1;
        for (const auto &stage : d.stages) {
            std::printf("  stage %d (%4.1f%% occupied):", idx++,
                        100.0 * stage.occupancy().value() /
                            clk.value());
            for (const auto &s : stage.slices) {
                std::printf(" %s", toString(s.kind));
                if (s.continues)
                    std::printf("...");
            }
            std::printf("\n");
        }
    }
    return 0;
}
