/**
 * @file
 * Credit-loop study: how buffer depth and credit latency interact
 * (the mechanism behind Figures 16 and 18 of the paper).
 *
 * Sweeps buffers-per-VC x credit propagation latency for a speculative
 * VC router and prints the achieved saturation throughput, showing the
 * "buffers must cover the credit loop" rule of thumb.
 *
 *   $ ./credit_loop_study [vcs]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

int
main(int argc, char **argv)
{
    int vcs = argc > 1 ? std::atoi(argv[1]) : 2;

    std::printf("speculative VC router, %d VCs, 8x8 mesh, uniform "
                "traffic\nsaturation throughput (fraction of capacity)"
                " vs buffers/VC and credit latency\n\n", vcs);

    const int bufs[] = {2, 4, 8};
    const sim::Cycle cps[] = {1, 2, 4, 8};

    std::printf("%-12s", "bufs\\credit");
    for (auto cp : cps)
        std::printf(" %7llu", static_cast<unsigned long long>(cp));
    std::printf("\n");

    // One cell per (buffers x credit-latency) pair; findSaturation
    // itself evaluates its whole bracketing grid in parallel on the
    // sweep engine (PDR_THREADS controls the width), so the cells run
    // back to back.
    std::vector<api::SimConfig> grid;
    for (int buf : bufs) {
        for (auto cp : cps) {
            api::SimConfig cfg;
            cfg.net.router.model = RouterModel::SpecVirtualChannel;
            cfg.net.router.numVcs = vcs;
            cfg.net.router.bufDepth = buf;
            cfg.net.creditLatency = cp;
            cfg.net.warmup = 3000;
            cfg.net.samplePackets = 4000;
            cfg.maxCycles = 100000;
            cfg.applyEnvDefaults();
            grid.push_back(cfg);
        }
    }

    std::vector<double> sats;
    sats.reserve(grid.size());
    for (const auto &cfg : grid)
        sats.push_back(api::findSaturation(cfg, 4.0, 0.02));

    const std::size_t ncols = sizeof cps / sizeof cps[0];
    for (std::size_t r = 0; r < sizeof bufs / sizeof bufs[0]; r++) {
        std::printf("%-12d", bufs[r]);
        for (std::size_t c = 0; c < ncols; c++)
            std::printf(" %7.2f", sats[r * ncols + c]);
        std::printf("\n");
    }

    std::printf("\nreading: each column shift to the right (longer "
                "credit path) needs deeper\nbuffers to hold the same "
                "throughput -- buffers must cover the credit loop\n"
                "(paper Section 5.2 / Figure 18: 1 -> 4 cycles cost "
                "specVC 2x4 ~18%% of its\nthroughput).\n");
    return 0;
}
