/**
 * @file
 * Speculative VC router behaviour: 3-stage head timing via parallel
 * VA + speculative SA, non-spec priority, wasted-slot accounting.
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace pdr;
using namespace pdr::test;
using router::RouterConfig;
using router::RouterModel;
using sim::FlitType;

namespace {

RouterConfig
specConfig(int vcs = 2, int buf = 4)
{
    RouterConfig cfg;
    cfg.model = RouterModel::SpecVirtualChannel;
    cfg.numVcs = vcs;
    cfg.bufDepth = buf;
    return cfg;
}

void
injectPacket(SingleRouter &h, int port, int vc, int out_port,
             sim::PacketId id, int len)
{
    for (int i = 0; i < len; i++) {
        FlitType t = len == 1 ? FlitType::HeadTail
                     : i == 0 ? FlitType::Head
                     : i == len - 1 ? FlitType::Tail
                                    : FlitType::Body;
        h.inject(port, SingleRouter::makeFlit(id, t, vc, out_port,
                                              std::uint8_t(i)));
    }
}

} // namespace

TEST(SpecRouter, HeadTakesThreeCyclesLikeWormhole)
{
    SingleRouter h(specConfig());
    h.inject(0, SingleRouter::makeFlit(1, FlitType::HeadTail, 0, 1, 0));
    for (int cycle = 0; cycle < 10; cycle++) {
        auto outs = h.step();
        if (!outs.empty()) {
            // Arrive 1, VA+specSA at 3: same as the wormhole router,
            // one cycle better than non-spec VC.
            EXPECT_EQ(cycle, 3);
            return;
        }
    }
    FAIL() << "flit never departed";
}

TEST(SpecRouter, SuccessfulSpeculationCounted)
{
    SingleRouter h(specConfig());
    injectPacket(h, 0, 0, 1, 1, 2);
    for (int cycle = 0; cycle < 10; cycle++)
        h.step();
    const auto &s = h.router().stats();
    EXPECT_GE(s.specSaAttempts, 1u);
    EXPECT_GE(s.specSaUseful, 1u);
    EXPECT_EQ(s.flitsOut, 2u);
}

TEST(SpecRouter, NonSpecHasPriorityOverSpeculative)
{
    SingleRouter h(specConfig(2, 8));
    // Packet 1 streams (non-spec body flits) to output 2; packet 2's
    // head arrives later on another input wanting the same output: its
    // speculative bid must lose to the streaming non-spec flits.
    injectPacket(h, 0, 0, 2, 1, 5);
    std::vector<sim::PacketId> order;
    for (int i = 0; i < 4; i++)     // Packet 1 starts streaming.
        for (auto &[port, f] : h.step())
            order.push_back(f.packet);
    injectPacket(h, 1, 0, 2, 2, 2);
    for (int cycle = 0; cycle < 25; cycle++)
        for (auto &[port, f] : h.step())
            order.push_back(f.packet);
    ASSERT_EQ(order.size(), 7u);
    // All of packet 1 departs before packet 2's head (spec always
    // loses to the non-spec stream on the shared output port).
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(order[std::size_t(i)], 1u) << "position " << i;
    EXPECT_EQ(order[5], 2u);
    // And the failed speculative bids were recorded as non-useful.
    const auto &s = h.router().stats();
    EXPECT_GT(s.specSaAttempts, s.specSaUseful);
}

TEST(SpecRouter, SpecWinButVaFailWastesSlot)
{
    // Two heads on different input ports race for the single output VC
    // of port 1 in the same cycle: both bid speculatively; at most one
    // VA grant exists, so a spec switch win without VA is wasted.
    SingleRouter h(specConfig(1, 8));
    injectPacket(h, 0, 0, 1, 1, 2);
    injectPacket(h, 2, 0, 1, 2, 2);
    std::vector<std::pair<sim::PacketId, sim::Cycle>> order;
    for (int cycle = 0; cycle < 30; cycle++)
        for (auto &[port, f] : h.step())
            order.push_back({f.packet, h.now() - 1});
    ASSERT_EQ(order.size(), 4u);
    // No interleaving (single output VC) and the second packet waits
    // for the first tail.
    EXPECT_EQ(order[0].first, order[1].first);
    EXPECT_EQ(order[2].first, order[3].first);
    EXPECT_NE(order[0].first, order[2].first);
}

TEST(SpecRouter, BodyFlitsAreNonSpeculative)
{
    SingleRouter h(specConfig());
    h.autoCredit(true);
    injectPacket(h, 0, 0, 1, 1, 5);
    for (int cycle = 0; cycle < 15; cycle++)
        h.step();
    const auto &s = h.router().stats();
    // Only the head speculates: one attempt for a 5-flit packet.
    EXPECT_EQ(s.specSaAttempts, 1u);
    EXPECT_EQ(s.flitsOut, 5u);
}

TEST(SpecRouter, RetriesSpeculationAfterVaFailure)
{
    // Head A holds the only output VC; head B keeps re-bidding (VA +
    // spec SA) every cycle until the VC frees, then departs.
    SingleRouter h(specConfig(1, 8));
    injectPacket(h, 0, 0, 1, 1, 3);
    injectPacket(h, 1, 0, 1, 2, 3);
    int delivered = 0;
    for (int cycle = 0; cycle < 30; cycle++)
        delivered += int(h.step().size());
    EXPECT_EQ(delivered, 6);
    EXPECT_GE(h.router().stats().specSaAttempts, 2u);
}

TEST(SpecRouter, StreamsAtFullRate)
{
    SingleRouter h(specConfig(2, 8));
    injectPacket(h, 0, 0, 1, 1, 5);
    std::vector<sim::Cycle> departures;
    for (int cycle = 0; cycle < 15; cycle++)
        for (auto &[port, f] : h.step())
            departures.push_back(h.now() - 1);
    ASSERT_EQ(departures.size(), 5u);
    for (std::size_t i = 1; i < 5; i++)
        EXPECT_EQ(departures[i], departures[i - 1] + 1);
}

TEST(SpecRouter, SpecGrantNeedsCreditToBeUseful)
{
    // Zero... one credit on the output VC: head departs, body stalls;
    // speculation cannot conjure buffers.
    SingleRouter h(specConfig(1, 1));
    injectPacket(h, 0, 0, 1, 1, 1);     // Single-flit packet fits.
    int departed = 0;
    for (int cycle = 0; cycle < 10; cycle++)
        departed += int(h.step().size());
    EXPECT_EQ(departed, 1);
    EXPECT_EQ(h.router().credits(1, 0), 0);
}
