/**
 * @file
 * Wormhole router behaviour: 3-stage head timing, per-packet port
 * holding, body flits flowing without arbitration, credit discipline.
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace pdr;
using namespace pdr::test;
using router::RouterConfig;
using router::RouterModel;
using sim::FlitType;

namespace {

RouterConfig
whConfig(int buf = 8)
{
    RouterConfig cfg;
    cfg.model = RouterModel::Wormhole;
    cfg.numVcs = 1;
    cfg.bufDepth = buf;
    return cfg;
}

/** Inject a whole packet of `len` flits into `port` for `out_port`. */
void
injectPacket(SingleRouter &h, int port, int out_port, sim::PacketId id,
             int len)
{
    for (int i = 0; i < len; i++) {
        FlitType t = len == 1 ? FlitType::HeadTail
                     : i == 0 ? FlitType::Head
                     : i == len - 1 ? FlitType::Tail
                                    : FlitType::Body;
        h.inject(port, SingleRouter::makeFlit(id, t, 0, out_port,
                                              std::uint8_t(i)));
    }
}

} // namespace

TEST(Wormhole, HeadTakesThreeCyclesThroughRouter)
{
    SingleRouter h(whConfig());
    // Inject at cycle 0 -> arrives at router cycle 1 -> SA at 3 ->
    // departure grant observed at step index 3.
    h.inject(0, SingleRouter::makeFlit(1, FlitType::HeadTail, 0, 1, 0));
    for (int cycle = 0; cycle < 10; cycle++) {
        auto outs = h.step();
        if (!outs.empty()) {
            EXPECT_EQ(cycle, 3);
            EXPECT_EQ(outs[0].first, 1);
            return;
        }
    }
    FAIL() << "flit never departed";
}

TEST(Wormhole, PacketStreamsAtOneFlitPerCycle)
{
    SingleRouter h(whConfig());
    injectPacket(h, 0, 1, 7, 5);
    std::vector<sim::Cycle> departures;
    for (int cycle = 0; cycle < 15; cycle++) {
        for (auto &[port, f] : h.step()) {
            EXPECT_EQ(port, 1);
            departures.push_back(h.now() - 1);
        }
    }
    ASSERT_EQ(departures.size(), 5u);
    for (std::size_t i = 1; i < 5; i++)
        EXPECT_EQ(departures[i], departures[i - 1] + 1)
            << "stream stalled at flit " << i;
}

TEST(Wormhole, OutputPortHeldForWholePacket)
{
    SingleRouter h(whConfig());
    // Two packets from different inputs to the same output.
    injectPacket(h, 0, 2, 1, 3);
    injectPacket(h, 1, 2, 2, 3);
    std::vector<sim::PacketId> order;
    for (int cycle = 0; cycle < 25; cycle++)
        for (auto &[port, f] : h.step())
            order.push_back(f.packet);
    ASSERT_EQ(order.size(), 6u);
    // No interleaving: first packet's 3 flits, then the other's.
    EXPECT_EQ(order[0], order[1]);
    EXPECT_EQ(order[1], order[2]);
    EXPECT_EQ(order[3], order[4]);
    EXPECT_EQ(order[4], order[5]);
    EXPECT_NE(order[0], order[3]);
}

TEST(Wormhole, DistinctOutputsProceedInParallel)
{
    SingleRouter h(whConfig());
    injectPacket(h, 0, 1, 1, 3);
    injectPacket(h, 2, 3, 2, 3);
    int firsts = 0;
    sim::Cycle first_cycle = 0;
    for (int cycle = 0; cycle < 20 && firsts < 2; cycle++) {
        for (auto &[port, f] : h.step()) {
            if (f.seq == 0) {
                firsts++;
                if (firsts == 1)
                    first_cycle = h.now();
                else
                    EXPECT_EQ(h.now(), first_cycle)
                        << "second head delayed";
            }
        }
    }
    EXPECT_EQ(firsts, 2);
}

TEST(Wormhole, StallsWithoutCredits)
{
    SingleRouter h(whConfig(2));   // 2 buffers, 2 downstream credits.
    // First two flits of a 4-flit packet: both depart, spending the
    // output's two credits.
    h.inject(0, SingleRouter::makeFlit(1, FlitType::Head, 0, 1, 0));
    h.inject(0, SingleRouter::makeFlit(1, FlitType::Body, 0, 1, 1));
    int departed = 0;
    for (int cycle = 0; cycle < 8; cycle++)
        departed += int(h.step().size());
    EXPECT_EQ(departed, 2);
    // Two more flits: buffered but stalled on zero credits.
    h.inject(0, SingleRouter::makeFlit(1, FlitType::Body, 0, 1, 2));
    h.inject(0, SingleRouter::makeFlit(1, FlitType::Tail, 0, 1, 3));
    for (int cycle = 0; cycle < 8; cycle++)
        departed += int(h.step().size());
    EXPECT_EQ(departed, 2);
    // Returning credits resumes the stream.
    h.credit(1, 0);
    h.credit(1, 0);
    for (int cycle = 0; cycle < 8; cycle++)
        departed += int(h.step().size());
    EXPECT_EQ(departed, 4);
}

TEST(Wormhole, CreditSentUpstreamPerDepartedFlit)
{
    SingleRouter h(whConfig());
    injectPacket(h, 0, 1, 1, 5);
    int departed = 0;
    for (int cycle = 0; cycle < 15; cycle++)
        departed += int(h.step().size());
    EXPECT_EQ(departed, 5);
    EXPECT_EQ(h.drainCreditsFromUs(0), 5);
}

TEST(Wormhole, PortFreedAfterTailNextHeadWins)
{
    SingleRouter h(whConfig());
    injectPacket(h, 0, 1, 1, 2);
    // Second packet on the same input, queued behind.
    injectPacket(h, 0, 1, 2, 2);
    std::vector<std::pair<sim::PacketId, sim::Cycle>> seen;
    for (int cycle = 0; cycle < 25; cycle++)
        for (auto &[port, f] : h.step())
            seen.push_back({f.packet, h.now() - 1});
    ASSERT_EQ(seen.size(), 4u);
    // Tail of pkt 1 at t; new head needs RC + SA: t+3 (takeover RC at
    // t+1/t+2, SA at t+2...): assert a bubble of >= 2 cycles.
    EXPECT_GE(seen[2].second - seen[1].second, 2u);
}

TEST(Wormhole, BufferBackpressureNeverOverflows)
{
    SingleRouter h(whConfig(4));
    // Saturate input 0 with a long packet while the output has only 4
    // credits and none returned: only 4 flits may cross; the rest
    // must stay buffered upstream of the router (the channel): the
    // router asserts internally if its FIFO overflows.
    injectPacket(h, 0, 1, 1, 4);
    for (int cycle = 0; cycle < 20; cycle++)
        h.step();
    EXPECT_LE(h.router().buffered(0), 4);
}

TEST(Wormhole, SingleCycleModelDepartsNextCycle)
{
    auto cfg = whConfig();
    cfg.singleCycle = true;
    SingleRouter h(cfg);
    h.inject(0, SingleRouter::makeFlit(1, FlitType::HeadTail, 0, 1, 0));
    for (int cycle = 0; cycle < 6; cycle++) {
        auto outs = h.step();
        if (!outs.empty()) {
            EXPECT_EQ(cycle, 2);    // Arrive at 1, grant at 2.
            return;
        }
    }
    FAIL() << "flit never departed";
}
