/**
 * @file
 * Non-speculative VC router behaviour: 4-stage head timing, per-flit
 * switch allocation, VC interleaving on a physical channel, output-VC
 * allocation and release.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness.hh"

using namespace pdr;
using namespace pdr::test;
using router::RouterConfig;
using router::RouterModel;
using sim::FlitType;

namespace {

RouterConfig
vcConfig(int vcs = 2, int buf = 4)
{
    RouterConfig cfg;
    cfg.model = RouterModel::VirtualChannel;
    cfg.numVcs = vcs;
    cfg.bufDepth = buf;
    return cfg;
}

void
injectPacket(SingleRouter &h, int port, int vc, int out_port,
             sim::PacketId id, int len)
{
    for (int i = 0; i < len; i++) {
        FlitType t = len == 1 ? FlitType::HeadTail
                     : i == 0 ? FlitType::Head
                     : i == len - 1 ? FlitType::Tail
                                    : FlitType::Body;
        h.inject(port, SingleRouter::makeFlit(id, t, vc, out_port,
                                              std::uint8_t(i)));
    }
}

} // namespace

TEST(VcRouter, HeadTakesFourCyclesThroughRouter)
{
    SingleRouter h(vcConfig());
    h.inject(0, SingleRouter::makeFlit(1, FlitType::HeadTail, 0, 1, 0));
    for (int cycle = 0; cycle < 10; cycle++) {
        auto outs = h.step();
        if (!outs.empty()) {
            // Arrive 1, VA 3, SA 4: one cycle later than wormhole.
            EXPECT_EQ(cycle, 4);
            return;
        }
    }
    FAIL() << "flit never departed";
}

TEST(VcRouter, VcidRewrittenAtOutput)
{
    SingleRouter h(vcConfig(2));
    injectPacket(h, 0, 1, 2, 9, 2);
    std::vector<sim::Flit> out;
    for (int cycle = 0; cycle < 15; cycle++)
        for (auto &[port, f] : h.step())
            out.push_back(f);
    ASSERT_EQ(out.size(), 2u);
    // Both flits carry the same (rewritten) output vcid.
    EXPECT_EQ(out[0].vc, out[1].vc);
    EXPECT_GE(out[0].vc, 0);
    EXPECT_LT(out[0].vc, 2);
}

TEST(VcRouter, TwoVcsShareOnePhysicalOutput)
{
    // Packets on different input VCs of the SAME port, to the same
    // output port: flits may interleave cycle-by-cycle on the output
    // (the defining feature of VC flow control, Figure 3).
    SingleRouter h(vcConfig(2, 8));
    injectPacket(h, 0, 0, 2, 1, 4);
    injectPacket(h, 0, 1, 2, 2, 4);
    std::map<sim::PacketId, int> seen;
    sim::Cycle last = 0;
    for (int cycle = 0; cycle < 30; cycle++) {
        for (auto &[port, f] : h.step()) {
            EXPECT_EQ(port, 2);
            seen[f.packet]++;
            last = h.now();
        }
    }
    EXPECT_EQ(seen[1], 4);
    EXPECT_EQ(seen[2], 4);
    // Both packets delivered; with one output channel the 8 flits need
    // at least 8 cycles, and interleaving means the second packet did
    // not wait for the first to fully finish.
    (void)last;
}

TEST(VcRouter, PacketsOnDistinctInputsInterleaveOnOutput)
{
    SingleRouter h(vcConfig(2, 8));
    injectPacket(h, 0, 0, 2, 1, 4);
    injectPacket(h, 1, 0, 2, 2, 4);
    // Record the packet sequence on the output; with per-flit switch
    // allocation and matrix fairness, the two packets alternate rather
    // than one monopolizing the port (contrast: wormhole holds it).
    std::vector<sim::PacketId> order;
    for (int cycle = 0; cycle < 30; cycle++)
        for (auto &[port, f] : h.step())
            order.push_back(f.packet);
    ASSERT_EQ(order.size(), 8u);
    bool interleaved = false;
    for (std::size_t i = 0; i + 1 < order.size(); i++)
        if (order[i] != order[i + 1])
            interleaved = true;
    EXPECT_TRUE(interleaved);
    // But both packets must use different output VCs.
}

TEST(VcRouter, OutputVcHeldUntilTail)
{
    SingleRouter h(vcConfig(1, 8));     // One VC: easy to reason.
    injectPacket(h, 0, 0, 1, 1, 3);
    injectPacket(h, 1, 0, 1, 2, 3);
    // Only one output VC exists on port 1: the second packet must wait
    // for the first tail before its VA succeeds -> no interleaving.
    std::vector<sim::PacketId> order;
    for (int cycle = 0; cycle < 30; cycle++)
        for (auto &[port, f] : h.step())
            order.push_back(f.packet);
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order[0], order[1]);
    EXPECT_EQ(order[1], order[2]);
    EXPECT_NE(order[2], order[3]);
}

TEST(VcRouter, PerVcCreditAccounting)
{
    SingleRouter h(vcConfig(2, 2));
    // Send a 3-flit packet: only 2 credits on its output VC.
    injectPacket(h, 0, 0, 1, 1, 2);     // Fits FIFO depth 2.
    int departed = 0;
    std::vector<int> out_vcs;
    for (int cycle = 0; cycle < 10; cycle++)
        for (auto &[port, f] : h.step()) {
            departed++;
            out_vcs.push_back(f.vc);
        }
    EXPECT_EQ(departed, 2);
    ASSERT_FALSE(out_vcs.empty());
    int used_vc = out_vcs[0];
    EXPECT_EQ(h.router().credits(1, used_vc), 0);
    EXPECT_EQ(h.router().credits(1, 1 - used_vc), 2);
    // Credit one buffer back on the used VC.
    h.credit(1, used_vc);
    h.step();
    h.step();
    EXPECT_EQ(h.router().credits(1, used_vc), 1);
}

TEST(VcRouter, CreditStallCounted)
{
    SingleRouter h(vcConfig(1, 1));
    // Head first (fits the 1-deep FIFO); it departs and spends the
    // only credit of the output VC.
    h.inject(0, SingleRouter::makeFlit(1, FlitType::Head, 0, 1, 0));
    for (int cycle = 0; cycle < 6; cycle++)
        h.step();
    // Tail arrives next; it must stall on zero credits.
    h.inject(0, SingleRouter::makeFlit(1, FlitType::Tail, 0, 1, 1));
    for (int cycle = 0; cycle < 6; cycle++)
        h.step();
    EXPECT_GT(h.router().stats().creditStallCycles, 0u);
    // Returning the credit lets the tail go.
    h.credit(1, 0);
    int departed = 0;
    for (int cycle = 0; cycle < 6; cycle++)
        departed += int(h.step().size());
    EXPECT_EQ(departed, 1);
}

TEST(VcRouter, QuiescentAfterDrain)
{
    SingleRouter h(vcConfig(2, 8));
    injectPacket(h, 0, 0, 1, 1, 5);
    for (int cycle = 0; cycle < 20; cycle++)
        h.step();
    EXPECT_TRUE(h.router().quiescent());
    EXPECT_EQ(h.router().stats().flitsIn, 5u);
    EXPECT_EQ(h.router().stats().flitsOut, 5u);
}

TEST(VcRouter, SingleCycleVaSaSameCycle)
{
    auto cfg = vcConfig();
    cfg.singleCycle = true;
    SingleRouter h(cfg);
    h.inject(0, SingleRouter::makeFlit(1, FlitType::HeadTail, 0, 1, 0));
    for (int cycle = 0; cycle < 6; cycle++) {
        auto outs = h.step();
        if (!outs.empty()) {
            EXPECT_EQ(cycle, 2);    // Arrive 1; VA+SA at 2.
            return;
        }
    }
    FAIL() << "flit never departed";
}
