/**
 * @file
 * Tests for the speculation-priority ablation (specEqualPriority):
 * without non-spec-over-spec priority the router must still be correct
 * (delivery, ordering), even though throughput may suffer -- the
 * property the paper's prioritization exists to protect.
 */

#include <gtest/gtest.h>

#include "api/simulation.hh"
#include "harness.hh"

using namespace pdr;
using namespace pdr::test;
using router::RouterConfig;
using router::RouterModel;
using sim::FlitType;

namespace {

RouterConfig
ablatedConfig()
{
    RouterConfig cfg;
    cfg.model = RouterModel::SpecVirtualChannel;
    cfg.numVcs = 2;
    cfg.bufDepth = 8;
    cfg.specEqualPriority = true;
    return cfg;
}

} // namespace

TEST(SpecAblation, HeadStillTakesThreeCycles)
{
    SingleRouter h(ablatedConfig());
    h.inject(0, SingleRouter::makeFlit(1, FlitType::HeadTail, 0, 1, 0));
    for (int cycle = 0; cycle < 10; cycle++) {
        auto outs = h.step();
        if (!outs.empty()) {
            EXPECT_EQ(cycle, 3);
            return;
        }
    }
    FAIL() << "flit never departed";
}

TEST(SpecAblation, DeliversAllFlits)
{
    SingleRouter h(ablatedConfig());
    h.autoCredit(true);
    for (int port = 0; port < 4; port++) {
        for (int i = 0; i < 5; i++) {
            FlitType t = i == 0 ? FlitType::Head
                         : i == 4 ? FlitType::Tail : FlitType::Body;
            h.inject(port,
                     SingleRouter::makeFlit(sim::PacketId(port + 1), t,
                                            0, 4, std::uint8_t(i)));
        }
    }
    int received = 0;
    for (int cycle = 0; cycle < 80; cycle++)
        received += int(h.step().size());
    EXPECT_EQ(received, 20);
    EXPECT_TRUE(h.router().quiescent());
}

TEST(SpecAblation, WastedSlotsStillWasted)
{
    // Two heads racing for one output VC: without priority, a spec
    // grant whose VA failed is still discarded safely.
    auto cfg = ablatedConfig();
    cfg.numVcs = 2;
    SingleRouter h(cfg);
    h.autoCredit(true);
    for (int port : {0, 1, 2}) {
        h.inject(port,
                 SingleRouter::makeFlit(sim::PacketId(port + 1),
                                        FlitType::HeadTail, 0, 3, 0));
    }
    int received = 0;
    for (int cycle = 0; cycle < 40; cycle++)
        received += int(h.step().size());
    EXPECT_EQ(received, 3);
}

TEST(SpecAblation, NetworkLevelNeverBeatsPrioritized)
{
    // The point of prioritization: ablated speculation may waste
    // crossbar slots that non-spec traffic could have used, so the
    // prioritized router's latency is never (meaningfully) worse.
    for (double load : {0.3, 0.5}) {
        api::SimConfig cfg;
        cfg.net.router.model = RouterModel::SpecVirtualChannel;
        cfg.net.router.numVcs = 2;
        cfg.net.router.bufDepth = 4;
        cfg.net.warmup = 3000;
        cfg.net.samplePackets = 4000;
        cfg.maxCycles = 100000;
        cfg.net.setOfferedFraction(load);

        auto prio = api::runSimulation(cfg);
        cfg.net.router.specEqualPriority = true;
        auto ablated = api::runSimulation(cfg);
        ASSERT_TRUE(prio.drained);
        if (ablated.drained) {
            EXPECT_LE(prio.avgLatency, ablated.avgLatency + 1.0)
                << "at load " << load;
        }
    }
}
