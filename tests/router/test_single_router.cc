/**
 * @file
 * Cross-model single-router properties: flit conservation, ordering,
 * ejection-port behaviour, parameterized over all router models.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "harness.hh"

using namespace pdr;
using namespace pdr::test;
using router::RouterConfig;
using router::RouterModel;
using sim::FlitType;

namespace {

struct ModelCase
{
    RouterModel model;
    int vcs;
    bool singleCycle;
};

std::string
name(const testing::TestParamInfo<ModelCase> &info)
{
    std::string n = router::toString(info.param.model);
    n += "_v" + std::to_string(info.param.vcs);
    n += info.param.singleCycle ? "_1cyc" : "_pipe";
    return n;
}

class AnyRouterTest : public testing::TestWithParam<ModelCase>
{
  protected:
    RouterConfig
    config(int buf = 8) const
    {
        RouterConfig cfg;
        cfg.model = GetParam().model;
        cfg.numVcs = GetParam().vcs;
        cfg.singleCycle = GetParam().singleCycle;
        cfg.bufDepth = buf;
        return cfg;
    }
};

} // namespace

TEST_P(AnyRouterTest, ConservesAndOrdersFlits)
{
    SingleRouter h(config());
    h.autoCredit(true);
    Rng rng(11);
    int vcs = GetParam().vcs;
    // Drive random packets on every input port / VC (one packet per
    // input VC to keep upstream semantics simple), with random lengths.
    sim::PacketId id = 1;
    int total_flits = 0;
    for (int port = 0; port < 5; port++) {
        for (int vc = 0; vc < vcs; vc++) {
            int len = 1 + int(rng.range(5));
            int out = int(rng.range(5));
            for (int i = 0; i < len; i++) {
                FlitType t = len == 1 ? FlitType::HeadTail
                             : i == 0 ? FlitType::Head
                             : i == len - 1 ? FlitType::Tail
                                            : FlitType::Body;
                h.inject(port, SingleRouter::makeFlit(
                                   id, t, vc, out, std::uint8_t(i)));
            }
            id++;
            total_flits += len;
        }
    }
    std::map<sim::PacketId, int> next_seq;
    int received = 0;
    for (int cycle = 0; cycle < 300; cycle++) {
        for (auto &[port, f] : h.step()) {
            EXPECT_EQ(int(f.seq), next_seq[f.packet]) << "packet "
                                                      << f.packet;
            next_seq[f.packet]++;
            received++;
        }
    }
    EXPECT_EQ(received, total_flits);
    EXPECT_TRUE(h.router().quiescent());
}

TEST_P(AnyRouterTest, SinkPortIgnoresCredits)
{
    // Ejection (sink) ports have infinite buffering: a long packet
    // flows out without any credits ever returning.
    SingleRouter h(config(2), /*sink_port=*/4);
    int received = 0;
    for (int i = 0; i < 6; i++) {
        FlitType t = i == 0 ? FlitType::Head
                     : i == 5 ? FlitType::Tail : FlitType::Body;
        // Respect our own input FIFO depth of 2: spread injection.
        h.inject(0, SingleRouter::makeFlit(1, t, 0, 4, std::uint8_t(i)));
        for (int s = 0; s < 3; s++)
            received += int(h.step().size());
    }
    for (int cycle = 0; cycle < 40; cycle++)
        received += int(h.step().size());
    // All 6 flits ejected despite bufDepth 2 and no credits returned.
    EXPECT_EQ(received, 6);
}

TEST_P(AnyRouterTest, IdleRouterStaysQuiescent)
{
    SingleRouter h(config());
    for (int cycle = 0; cycle < 20; cycle++)
        EXPECT_TRUE(h.step().empty());
    EXPECT_TRUE(h.router().quiescent());
    EXPECT_EQ(h.router().stats().flitsIn, 0u);
}

TEST_P(AnyRouterTest, AllOutputsReachable)
{
    SingleRouter h(config());
    // One single-flit packet per output from input 0's VC 0, spaced
    // far apart.
    for (int out = 1; out < 5; out++) {
        h.inject(0, SingleRouter::makeFlit(sim::PacketId(out),
                                           FlitType::HeadTail, 0, out,
                                           0));
        bool seen = false;
        for (int cycle = 0; cycle < 20 && !seen; cycle++) {
            for (auto &[port, f] : h.step()) {
                EXPECT_EQ(port, out);
                seen = true;
            }
        }
        EXPECT_TRUE(seen) << "output " << out;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, AnyRouterTest,
    testing::Values(ModelCase{RouterModel::Wormhole, 1, false},
                    ModelCase{RouterModel::Wormhole, 1, true},
                    ModelCase{RouterModel::VirtualChannel, 1, false},
                    ModelCase{RouterModel::VirtualChannel, 2, false},
                    ModelCase{RouterModel::VirtualChannel, 4, false},
                    ModelCase{RouterModel::VirtualChannel, 2, true},
                    ModelCase{RouterModel::SpecVirtualChannel, 2, false},
                    ModelCase{RouterModel::SpecVirtualChannel, 4, false},
                    ModelCase{RouterModel::SpecVirtualChannel, 2, true}),
    name);
