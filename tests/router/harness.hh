/**
 * @file
 * Single-router test harness: one Router with all five ports wired to
 * externally driven channels, a trivial routing function (the packet
 * destination *is* the output port), and helpers to inject flits,
 * return credits and observe departures cycle by cycle.
 *
 * The harness owns the FlitPool: inject() allocates a pooled slot for
 * the caller's flit, and step() copies departed flits out of the pool
 * (freeing the slots), so tests keep speaking plain sim::Flit values.
 */

#ifndef PDR_TESTS_ROUTER_HARNESS_HH
#define PDR_TESTS_ROUTER_HARNESS_HH

#include <memory>
#include <vector>

#include "router/router.hh"

namespace pdr::test {

/** Routing function whose destination field directly names the port. */
class DirectRouting : public router::RoutingFunction
{
  public:
    int route(sim::NodeId, const sim::Flit &head) const override
    {
        return int(head.dest);
    }
};

/** One router in a test jig. */
class SingleRouter
{
  public:
    using FlitChannel = sim::Channel<sim::FlitRef>;
    using CreditChannel = sim::Channel<sim::Credit>;

    explicit SingleRouter(const router::RouterConfig &cfg,
                          int sink_port = sim::Invalid)
        : router_(std::make_unique<router::Router>(0, cfg, routing_,
                                                   pool_))
    {
        lastReady_.assign(cfg.numPorts, 0);
        for (int p = 0; p < cfg.numPorts; p++) {
            in_.push_back(std::make_unique<FlitChannel>(1));
            out_.push_back(std::make_unique<FlitChannel>(1));
            creditToUs_.push_back(std::make_unique<CreditChannel>(1));
            creditFromUs_.push_back(std::make_unique<CreditChannel>(1));
            router_->connectInput(p, in_[p].get(),
                                  creditFromUs_[p].get());
            router_->connectOutput(p, out_[p].get(),
                                   creditToUs_[p].get(),
                                   p == sink_port);
        }
    }

    router::Router &router() { return *router_; }
    sim::FlitPool &pool() { return pool_; }

    /**
     * Inject a flit into input port `port`.  Arrivals are staggered to
     * one flit per cycle per port (like a real upstream router), so a
     * whole packet may be injected in one call without overflowing the
     * input FIFO.
     */
    void
    inject(int port, const sim::Flit &f)
    {
        sim::FlitRef ref = pool_.alloc();
        pool_.get(ref) = f;
        sim::Cycle earliest = now_ + 1;
        sim::Cycle ready = std::max(earliest, lastReady_[port] + 1);
        in_[port]->push(ref, now_, ready - earliest);
        lastReady_[port] = ready;
    }

    /** Return a credit to the router's output port `port`. */
    void
    credit(int port, int vc)
    {
        creditToUs_[port]->push(sim::Credit{vc}, now_);
    }

    /**
     * Downstream model: when enabled, every departed flit's buffer is
     * immediately consumed and its credit returned (an ideal sink
     * behind every output).
     */
    void autoCredit(bool on) { autoCredit_ = on; }

    /** Step one cycle; returns flits that left the router this cycle
     *  (popped from all output channels and released from the pool). */
    std::vector<std::pair<int, sim::Flit>>
    step()
    {
        router_->tick(now_);
        now_++;
        std::vector<std::pair<int, sim::Flit>> outs;
        for (int p = 0; p < int(out_.size()); p++) {
            while (auto r = out_[p]->pop(now_ + 10)) {
                sim::Flit f = pool_.get(*r);
                pool_.free(*r);
                if (autoCredit_)
                    creditToUs_[p]->push(sim::Credit{f.vc}, now_);
                outs.push_back({p, f});
            }
        }
        return outs;
    }

    /** Step until a flit departs or `limit` cycles elapse. */
    std::vector<std::pair<int, sim::Flit>>
    stepUntilOutput(int limit)
    {
        for (int i = 0; i < limit; i++) {
            auto outs = step();
            if (!outs.empty())
                return outs;
        }
        return {};
    }

    /** Credits the router sent upstream on input port `port`. */
    int
    drainCreditsFromUs(int port)
    {
        int n = 0;
        while (creditFromUs_[port]->pop(now_ + 10))
            n++;
        return n;
    }

    sim::Cycle now() const { return now_; }

    /** Make a flit addressed at output port `out_port`. */
    static sim::Flit
    makeFlit(sim::PacketId pkt, sim::FlitType type, int vc, int out_port,
             std::uint8_t seq)
    {
        sim::Flit f;
        f.packet = pkt;
        f.type = type;
        f.vc = vc;
        f.src = 0;
        f.dest = sim::NodeId(out_port);
        f.seq = seq;
        return f;
    }

  private:
    DirectRouting routing_;
    sim::FlitPool pool_;
    std::unique_ptr<router::Router> router_;
    std::vector<std::unique_ptr<FlitChannel>> in_;
    std::vector<std::unique_ptr<FlitChannel>> out_;
    std::vector<std::unique_ptr<CreditChannel>> creditToUs_;
    std::vector<std::unique_ptr<CreditChannel>> creditFromUs_;
    std::vector<sim::Cycle> lastReady_;
    sim::Cycle now_ = 0;
    bool autoCredit_ = false;
};

} // namespace pdr::test

#endif // PDR_TESTS_ROUTER_HARNESS_HH
