/** @file Tests for RouterConfig validation and derived parameters. */

#include <gtest/gtest.h>

#include "router/config.hh"

using namespace pdr::router;

TEST(RouterConfigTest, PipelineDepths)
{
    RouterConfig cfg;
    cfg.model = RouterModel::Wormhole;
    EXPECT_EQ(cfg.pipelineDepth(), 3);
    cfg.model = RouterModel::VirtualChannel;
    EXPECT_EQ(cfg.pipelineDepth(), 4);
    cfg.model = RouterModel::SpecVirtualChannel;
    EXPECT_EQ(cfg.pipelineDepth(), 3);
    cfg.singleCycle = true;
    EXPECT_EQ(cfg.pipelineDepth(), 1);
}

TEST(RouterConfigTest, CreditProcDefaultsToZero)
{
    RouterConfig cfg;
    for (auto m : {RouterModel::Wormhole, RouterModel::VirtualChannel,
                   RouterModel::SpecVirtualChannel}) {
        cfg.model = m;
        EXPECT_EQ(cfg.effectiveCreditProc(), 0);
    }
    cfg.creditProcCycles = 3;
    EXPECT_EQ(cfg.effectiveCreditProc(), 3);
}

TEST(RouterConfigTest, Names)
{
    EXPECT_STREQ(toString(RouterModel::Wormhole), "WH");
    EXPECT_STREQ(toString(RouterModel::VirtualChannel), "VC");
    EXPECT_STREQ(toString(RouterModel::SpecVirtualChannel), "specVC");
}

TEST(RouterConfigDeath, WormholeWithVcsRejected)
{
    RouterConfig cfg;
    cfg.model = RouterModel::Wormhole;
    cfg.numVcs = 2;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "wormhole");
}

TEST(RouterConfigDeath, BadPortCountRejected)
{
    RouterConfig cfg;
    cfg.numPorts = 1;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "ports");
}

TEST(RouterConfigDeath, BadBufDepthRejected)
{
    RouterConfig cfg;
    cfg.bufDepth = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "bufDepth");
}
