/** @file Tests for RouterConfig validation and derived parameters. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "router/config.hh"

using namespace pdr::router;

namespace {

/** Expect cfg.validate() to throw std::invalid_argument whose message
 *  contains `substr`. */
void
expectInvalid(const RouterConfig &cfg, const std::string &substr)
{
    try {
        cfg.validate();
        FAIL() << "expected std::invalid_argument (" << substr << ")";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << "message: " << e.what();
    }
}

} // namespace

TEST(RouterConfigTest, PipelineDepths)
{
    RouterConfig cfg;
    cfg.model = RouterModel::Wormhole;
    EXPECT_EQ(cfg.pipelineDepth(), 3);
    cfg.model = RouterModel::VirtualChannel;
    EXPECT_EQ(cfg.pipelineDepth(), 4);
    cfg.model = RouterModel::SpecVirtualChannel;
    EXPECT_EQ(cfg.pipelineDepth(), 3);
    cfg.singleCycle = true;
    EXPECT_EQ(cfg.pipelineDepth(), 1);
}

TEST(RouterConfigTest, CreditProcDefaultsToZero)
{
    RouterConfig cfg;
    for (auto m : {RouterModel::Wormhole, RouterModel::VirtualChannel,
                   RouterModel::SpecVirtualChannel}) {
        cfg.model = m;
        EXPECT_EQ(cfg.effectiveCreditProc(), 0);
    }
    cfg.creditProcCycles = 3;
    EXPECT_EQ(cfg.effectiveCreditProc(), 3);
}

TEST(RouterConfigTest, Names)
{
    EXPECT_STREQ(toString(RouterModel::Wormhole), "WH");
    EXPECT_STREQ(toString(RouterModel::VirtualChannel), "VC");
    EXPECT_STREQ(toString(RouterModel::SpecVirtualChannel), "specVC");
}

TEST(RouterConfigValidate, WormholeWithVcsRejected)
{
    RouterConfig cfg;
    cfg.model = RouterModel::Wormhole;
    cfg.numVcs = 2;
    expectInvalid(cfg, "wormhole");
}

TEST(RouterConfigValidate, BadPortCountRejected)
{
    RouterConfig cfg;
    cfg.numPorts = 1;
    expectInvalid(cfg, "router.num_ports");
}

TEST(RouterConfigValidate, BadBufDepthRejected)
{
    RouterConfig cfg;
    cfg.bufDepth = 0;
    expectInvalid(cfg, "router.buf_depth");
}

TEST(RouterConfigValidate, BadCreditProcRejected)
{
    RouterConfig cfg;
    cfg.creditProcCycles = -2;
    expectInvalid(cfg, "router.credit_proc");
}

TEST(RouterConfigValidate, ModelFromString)
{
    EXPECT_EQ(routerModelFromString("WH"), RouterModel::Wormhole);
    EXPECT_EQ(routerModelFromString("VC"), RouterModel::VirtualChannel);
    EXPECT_EQ(routerModelFromString("specVC"),
              RouterModel::SpecVirtualChannel);
    EXPECT_THROW(routerModelFromString("bogus"), std::invalid_argument);
}
