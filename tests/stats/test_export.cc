/** @file Tests for CSV/JSON table export. */

#include <gtest/gtest.h>

#include "stats/export.hh"

using pdr::stats::Table;

TEST(TableExport, CsvRoundTripSimple)
{
    Table t({"a", "b"});
    t.addRow({"1", "x"});
    t.addRow({"2.5", "y"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,x\n2.5,y\n");
}

TEST(TableExport, CsvQuotesSpecialCells)
{
    Table t({"label", "note"});
    t.addRow({"a,b", "he said \"hi\""});
    EXPECT_EQ(t.toCsv(),
              "label,note\n\"a,b\",\"he said \"\"hi\"\"\"\n");
}

TEST(TableExport, JsonEmitsNumbersUnquoted)
{
    Table t({"name", "value"});
    t.addRow({"zero_load", "29.5"});
    t.addRow({"comment", "not a number"});
    auto json = t.toJson();
    EXPECT_NE(json.find("\"value\": 29.5"), std::string::npos);
    EXPECT_NE(json.find("\"value\": \"not a number\""),
              std::string::npos);
}

TEST(TableExport, JsonQuotesNonJsonNumerics)
{
    // strtod-parsable but not valid JSON numbers: must stay quoted.
    Table t({"v"});
    for (const char *s :
         {"0x1A", "+5", ".5", "5.", "inf", "nan", "007", "1e"})
        t.addRow({s});
    t.addRow({"-0.5"});
    t.addRow({"1e+06"});
    auto json = t.toJson();
    EXPECT_NE(json.find("\"v\": \"0x1A\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": \"+5\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": \".5\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": \"5.\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": \"inf\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": \"nan\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": \"007\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": \"1e\""), std::string::npos);
    EXPECT_NE(json.find("\"v\": -0.5"), std::string::npos);
    EXPECT_NE(json.find("\"v\": 1e+06"), std::string::npos);
}

TEST(TableExport, JsonEscapesStrings)
{
    Table t({"s"});
    t.addRow({"line\nbreak \"q\" back\\slash"});
    auto json = t.toJson();
    EXPECT_NE(json.find("line\\nbreak \\\"q\\\" back\\\\slash"),
              std::string::npos);
}

TEST(TableExport, CellFormatting)
{
    EXPECT_EQ(Table::cell(1.25), "1.25");
    EXPECT_EQ(Table::cell(std::uint64_t(42)), "42");
    EXPECT_EQ(Table::cell(true), "true");
    EXPECT_EQ(Table::cell(false), "false");
}
