/** @file Tests for latency statistics. */

#include <gtest/gtest.h>

#include "stats/latency.hh"

using namespace pdr::stats;

TEST(LatencyStats, EmptyIsZero)
{
    LatencyStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(LatencyStats, MeanMinMax)
{
    LatencyStats s;
    for (double v : {10.0, 20.0, 30.0})
        s.record(v, true);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 20.0);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(LatencyStats, UnmeasuredTrackedSeparately)
{
    LatencyStats s;
    s.record(100.0, false);
    s.record(10.0, true);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.unmeasuredCount(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(LatencyStats, Stddev)
{
    LatencyStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(v, true);
    EXPECT_NEAR(s.stddev(), 2.138, 0.01);   // Sample stddev.
}

TEST(LatencyStats, Percentiles)
{
    LatencyStats s;
    for (int i = 1; i <= 100; i++)
        s.record(double(i), true);
    EXPECT_NEAR(s.percentile(50.0), 50.0, 1.0);
    EXPECT_NEAR(s.percentile(99.0), 99.0, 1.0);
    EXPECT_NEAR(s.percentile(100.0), 100.0, 1.0);
}

TEST(LatencyStats, Merge)
{
    LatencyStats a, b;
    a.record(10.0, true);
    a.record(20.0, true);
    b.record(30.0, true);
    b.record(40.0, true);
    b.record(1.0, false);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 25.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 40.0);
    EXPECT_EQ(a.unmeasuredCount(), 1u);
}

TEST(LatencyStats, MergeIntoEmpty)
{
    LatencyStats a, b;
    b.record(5.0, true);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
}

TEST(LatencyStats, MergeEmptyKeepsValues)
{
    LatencyStats a, b;
    a.record(5.0, true);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(LatencyStats, OverflowBinHandled)
{
    LatencyStats s;
    s.record(1e6, true);    // Beyond histogram range.
    s.record(10.0, true);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.max(), 1e6);
    // Percentile falls back to max for the overflow mass.
    EXPECT_GE(s.percentile(99.0), 10.0);
}

TEST(LatencyStats, OperatorPlusEqualsIsMerge)
{
    LatencyStats a, b;
    a.record(10.0, true);
    b.record(20.0, true);
    b.record(30.0, false);
    a += b;
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 15.0);
    EXPECT_EQ(a.unmeasuredCount(), 1u);
}

TEST(LatencyStats, MergedCombinesShardsInOrder)
{
    // Shard-per-sink readout: merged() must equal sequential merging
    // exactly (same floating-point summation order).
    std::vector<LatencyStats> shards(4);
    double v = 1.0;
    for (auto &s : shards) {
        for (int i = 0; i < 3; i++)
            s.record(v += 1.5, true);
    }
    auto all = LatencyStats::merged(shards);

    LatencyStats seq;
    for (const auto &s : shards)
        seq.merge(s);

    EXPECT_EQ(all.count(), 12u);
    EXPECT_DOUBLE_EQ(all.mean(), seq.mean());
    EXPECT_DOUBLE_EQ(all.stddev(), seq.stddev());
    EXPECT_DOUBLE_EQ(all.min(), seq.min());
    EXPECT_DOUBLE_EQ(all.max(), seq.max());
    EXPECT_DOUBLE_EQ(all.percentile(99.0), seq.percentile(99.0));
}

TEST(LatencyStats, MergedOfEmptyListIsEmpty)
{
    auto all = LatencyStats::merged({});
    EXPECT_EQ(all.count(), 0u);
    EXPECT_DOUBLE_EQ(all.mean(), 0.0);
}
