/**
 * @file
 * Smoke tests for the pdr CLI: drive the real binary (path compiled in
 * as PDR_CLI_PATH) and assert output shape and exit codes.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#ifndef PDR_CLI_PATH
#error "PDR_CLI_PATH must point at the pdr binary"
#endif
#ifndef PDR_EXPERIMENTS_DIR
#error "PDR_EXPERIMENTS_DIR must point at the experiments directory"
#endif

namespace {

struct CmdResult
{
    int status = -1;
    std::string out;    //!< stdout + stderr, interleaved.
};

CmdResult
run(const std::string &args, const std::string &env = "")
{
    CmdResult res;
    std::string cmd = (env.empty() ? "" : env + " ") +
                      std::string(PDR_CLI_PATH) + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return res;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0)
        res.out.append(buf, n);
    int rc = pclose(pipe);
    res.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return res;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

std::size_t
countFields(const std::string &csv_row)
{
    // Good enough for rows without quoted commas.
    std::size_t n = 1;
    for (char c : csv_row)
        n += c == ',' ? 1 : 0;
    return n;
}

} // namespace

TEST(PdrCli, SweepEmitsOneCsvRowPerPoint)
{
    // 4x4 mesh, 3 loads, 1 implicit curve -> header + 3 rows.
    auto res = run("sweep --net.k=4 --router.model=specVC "
                   "--router.num_vcs=2 --router.buf_depth=4 "
                   "--sim.warmup=200 --sim.sample_packets=300 "
                   "--sweep.loads=0.1,0.2,0.3");
    EXPECT_EQ(res.status, 0) << res.out;

    auto ls = lines(res.out);
    // Drop the stderr summary ("sweep: ..."), interleaved at the end.
    std::vector<std::string> csv;
    for (const auto &l : ls) {
        if (l.rfind("sweep:", 0) != 0)
            csv.push_back(l);
    }
    ASSERT_EQ(csv.size(), 4u) << res.out;
    EXPECT_NE(csv[0].find("label"), std::string::npos);
    EXPECT_NE(csv[0].find("offered_fraction"), std::string::npos);
    EXPECT_NE(csv[0].find("avg_latency"), std::string::npos);
    auto ncols = countFields(csv[0]);
    for (std::size_t i = 1; i < csv.size(); i++)
        EXPECT_EQ(countFields(csv[i]), ncols) << csv[i];
    EXPECT_NE(csv[1].find("0.100"), std::string::npos);
    EXPECT_NE(csv[3].find("0.300"), std::string::npos);
}

TEST(PdrCli, DescribeListsSchemaAndRegistries)
{
    auto res = run("describe");
    EXPECT_EQ(res.status, 0);
    for (const char *needle :
         {"net.k", "router.model", "traffic.pattern", "sweep.loads",
          "uniform", "tornado", "mesh", "torus", "xy", "westfirst",
          "dateline", "kary3cube", "cmesh", "o1turn", "val",
          "permfile"}) {
        EXPECT_NE(res.out.find(needle), std::string::npos) << needle;
    }
}

TEST(PdrCli, ListPrintsEveryRegistryEntryOnePerLine)
{
    auto res = run("list");
    EXPECT_EQ(res.status, 0) << res.out;
    for (const char *line :
         {"topology mesh", "topology torus", "topology kary3cube",
          "topology cmesh", "topology cmesh2", "routing dor",
          "routing xy", "routing dateline", "routing o1turn",
          "routing val", "routing westfirst", "pattern uniform",
          "pattern permfile", "pattern transpose"}) {
        EXPECT_NE(res.out.find(std::string(line) + "\n"),
                  std::string::npos)
            << line;
    }
    // Strictly one `<kind> <name>` pair per line.
    for (const auto &l : lines(res.out)) {
        if (l.empty())
            continue;
        EXPECT_EQ(countFields(l), 1u) << l;   // No commas...
        EXPECT_EQ(std::count(l.begin(), l.end(), ' '), 1) << l;
    }
}

TEST(PdrCli, DescribeValidatesShippedExperiments)
{
    for (const char *exp :
         {"fig13.exp", "fig14.exp", "fig15.exp", "fig16.exp",
          "fig17.exp", "fig18.exp", "kary3cube.exp", "bursty.exp",
          "patterns.exp", "ablation.exp", "chien.exp"}) {
        auto res = run(std::string("describe --file ") +
                       PDR_EXPERIMENTS_DIR + "/" + exp);
        EXPECT_EQ(res.status, 0) << exp << ": " << res.out;
        EXPECT_NE(res.out.find("points:"), std::string::npos) << exp;
    }
}

TEST(PdrCli, SweepRunsOnAKAry3Cube)
{
    auto res = run("sweep --net.k=3 --net.topology=kary3cube "
                   "--router.model=specVC --router.num_ports=0 "
                   "--router.num_vcs=2 --router.buf_depth=4 "
                   "--sim.warmup=200 --sim.sample_packets=200 "
                   "--sweep.loads=0.1");
    EXPECT_EQ(res.status, 0) << res.out;
    EXPECT_NE(res.out.find("0.100"), std::string::npos) << res.out;
}

TEST(PdrCli, FlagsAcceptEqualsSyntax)
{
    auto res = run(std::string("describe --file=") +
                   PDR_EXPERIMENTS_DIR + "/fig18.exp");
    EXPECT_EQ(res.status, 0) << res.out;
    EXPECT_NE(res.out.find("fig18"), std::string::npos);
}

TEST(PdrCli, NanInjectionRateRejected)
{
    auto res = run("run --traffic.injection_rate=nan");
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("traffic.injection_rate"),
              std::string::npos)
        << res.out;
}

TEST(PdrCli, UnknownKeyFailsNamingIt)
{
    auto res = run("run --no.such.key=1");
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("no.such.key"), std::string::npos)
        << res.out;
}

TEST(PdrCli, RunPrintsResultFields)
{
    auto res = run("run --net.k=4 --router.model=specVC "
                   "--router.num_vcs=2 --router.buf_depth=4 "
                   "--sim.warmup=200 --sim.sample_packets=300 "
                   "--traffic.offered_fraction=0.2");
    EXPECT_EQ(res.status, 0) << res.out;
    EXPECT_NE(res.out.find("avg_latency"), std::string::npos);
    EXPECT_NE(res.out.find("drained"), std::string::npos);
}

namespace {

/** Write `text` to a fresh temp file; returns the path. */
std::string
writeTemp(const char *name, const std::string &text)
{
    std::string path =
        testing::TempDir() + "pdr_cli_" + name + ".csv";
    FILE *f = fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr) << path;
    fwrite(text.data(), 1, text.size(), f);
    fclose(f);
    return path;
}

const char *kCsvA =
    "index,label,avg_latency,drained\n"
    "0,p@0.1,30.25,true\n"
    "1,p@0.2,34.5,true\n";

} // namespace

TEST(PdrCliDiff, IdenticalFilesMatch)
{
    auto a = writeTemp("ident_a", kCsvA);
    auto b = writeTemp("ident_b", kCsvA);
    auto res = run("diff " + a + " " + b);
    EXPECT_EQ(res.status, 0) << res.out;
    EXPECT_NE(res.out.find("2 rows match"), std::string::npos)
        << res.out;
}

TEST(PdrCliDiff, NumericDriftFailsExactButPassesWithTolerance)
{
    auto a = writeTemp("drift_a", kCsvA);
    auto b = writeTemp("drift_b",
                       "index,label,avg_latency,drained\n"
                       "0,p@0.1,30.26,true\n"
                       "1,p@0.2,34.5,true\n");
    auto exact = run("diff " + a + " " + b);
    EXPECT_EQ(exact.status, 1) << exact.out;
    EXPECT_NE(exact.out.find("avg_latency"), std::string::npos)
        << exact.out;

    auto loose = run("diff --tolerance 0.01 " + a + " " + b);
    EXPECT_EQ(loose.status, 0) << loose.out;
}

TEST(PdrCliDiff, ToleranceDoesNotExcuseTextMismatch)
{
    auto a = writeTemp("text_a", kCsvA);
    auto b = writeTemp("text_b",
                       "index,label,avg_latency,drained\n"
                       "0,p@0.1,30.25,true\n"
                       "1,p@0.2,34.5,false\n");
    auto res = run("diff --tolerance 0.5 " + a + " " + b);
    EXPECT_EQ(res.status, 1) << res.out;
    EXPECT_NE(res.out.find("drained"), std::string::npos) << res.out;
}

TEST(PdrCliDiff, RowCountMismatchFails)
{
    auto a = writeTemp("rows_a", kCsvA);
    auto b = writeTemp("rows_b",
                       "index,label,avg_latency,drained\n"
                       "0,p@0.1,30.25,true\n");
    auto res = run("diff " + a + " " + b);
    EXPECT_EQ(res.status, 1) << res.out;
    EXPECT_NE(res.out.find("row count"), std::string::npos) << res.out;
}

TEST(PdrCliDiff, MissingFileReportsError)
{
    auto a = writeTemp("missing_a", kCsvA);
    auto res = run("diff " + a + " /no/such/file.csv");
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("cannot read"), std::string::npos)
        << res.out;
}

TEST(PdrCliDiff, NeedsExactlyTwoPaths)
{
    auto res = run("diff only_one.csv");
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("two CSV paths"), std::string::npos)
        << res.out;
}

namespace {

/** A tiny sweep everyone below shares: 4x4 mesh, 4 points. */
const char *kTinySweep =
    "sweep --net.k=4 --router.model=specVC --router.num_vcs=2 "
    "--router.buf_depth=4 --sim.warmup=200 --sim.sample_packets=300 "
    "--sweep.loads=0.1,0.2,0.3,0.4";

/** The CSV portion of a sweep's output (stderr summary and warn
 *  diagnostics dropped -- e.g. PDR_AUDIT=1 warns once per simulation
 *  when par.workers > 1 bypasses the per-cycle checks). */
std::string
csvOf(const CmdResult &res)
{
    std::string out;
    for (const auto &l : lines(res.out)) {
        if (l.rfind("sweep:", 0) != 0 && l.rfind("merge:", 0) != 0 &&
            l.rfind("warn:", 0) != 0)
            out += l + "\n";
    }
    return out;
}

} // namespace

TEST(PdrCliPartition, WorkerCountNeverChangesTheCsv)
{
    // The determinism matrix: par.workers x PDR_THREADS must all emit
    // byte-identical CSV (the partitioned engine's contract).
    auto base = run(kTinySweep, "PDR_THREADS=1");
    ASSERT_EQ(base.status, 0) << base.out;
    std::string golden = csvOf(base);
    ASSERT_NE(golden.find("0.400"), std::string::npos);

    for (const char *extra :
         {" --par.workers=2", " --par.workers=4",
          " --par.workers=4 --par.scheme=weighted"}) {
        for (const char *env : {"PDR_THREADS=1", "PDR_THREADS=4"}) {
            auto res = run(std::string(kTinySweep) + extra, env);
            ASSERT_EQ(res.status, 0) << extra << ": " << res.out;
            EXPECT_EQ(csvOf(res), golden) << extra << " " << env;
        }
    }
}

TEST(PdrCliPartition, BadSchemeIsRejectedNamingTheKey)
{
    auto res = run("run --par.scheme=hilbert");
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("par.scheme"), std::string::npos)
        << res.out;
}

TEST(PdrCliMerge, SlicesReassembleTheFullTable)
{
    std::string dir = testing::TempDir();
    auto full = run(std::string(kTinySweep) + " --csv " + dir +
                    "merge_full.csv");
    ASSERT_EQ(full.status, 0) << full.out;
    for (int i = 0; i < 2; i++) {
        auto shard = run(std::string(kTinySweep) +
                         " --slice " + std::to_string(i) + "/2" +
                         " --csv " + dir + "merge_s" +
                         std::to_string(i) + ".csv");
        ASSERT_EQ(shard.status, 0) << shard.out;
    }
    auto merged = run("merge " + dir + "merge_s0.csv " + dir +
                      "merge_s1.csv --csv " + dir + "merge_out.csv");
    ASSERT_EQ(merged.status, 0) << merged.out;
    EXPECT_NE(merged.out.find("4 rows from 2 shard(s)"),
              std::string::npos)
        << merged.out;

    auto diffed = run("diff " + dir + "merge_full.csv " + dir +
                      "merge_out.csv");
    EXPECT_EQ(diffed.status, 0) << diffed.out;
}

TEST(PdrCliMerge, OverlappingShardsAreRejected)
{
    auto a = writeTemp("merge_ov_a",
                       "index,label,avg_latency,drained\n"
                       "0,p@0.1,30.25,true\n"
                       "1,p@0.2,34.5,true\n");
    auto b = writeTemp("merge_ov_b",
                       "index,label,avg_latency,drained\n"
                       "1,p@0.2,34.5,true\n"
                       "2,p@0.3,39.0,true\n");
    auto res = run("merge " + a + " " + b);
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("overlapping point index 1"),
              std::string::npos)
        << res.out;
}

TEST(PdrCliMerge, MissingPointsAreRejected)
{
    // Shards starting at index 2 leave a gap at the front.
    auto head = writeTemp("merge_head",
                          "index,label,avg_latency,drained\n"
                          "2,p@0.3,30.25,true\n"
                          "3,p@0.4,34.5,true\n");
    auto tail = writeTemp("merge_tail",
                          "index,label,avg_latency,drained\n"
                          "5,p@0.6,39.1,true\n");
    auto miss = run("merge " + head + " " + tail);
    EXPECT_NE(miss.status, 0);
    EXPECT_NE(miss.out.find("missing point index 0"),
              std::string::npos)
        << miss.out;
}

TEST(PdrCliMerge, HeaderMismatchIsRejected)
{
    auto a = writeTemp("merge_ha",
                       "index,label,avg_latency\n0,p,1.0\n");
    auto b = writeTemp("merge_hb",
                       "index,label,p99_latency\n1,q,2.0\n");
    auto res = run("merge " + a + " " + b);
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("headers differ"), std::string::npos)
        << res.out;
}

TEST(PdrCliMerge, NeedsAnIndexColumn)
{
    auto a = writeTemp("merge_noidx", "label,avg_latency\np,1.0\n");
    auto res = run("merge " + a + " " + a);
    EXPECT_NE(res.status, 0);
    EXPECT_NE(res.out.find("no 'index' column"), std::string::npos)
        << res.out;
}

TEST(PdrCliSlice, BadSliceSyntaxIsRejected)
{
    for (const char *slice :
         {"2/2", "x", "0/2x", "0/", "/2", "-1/2", "0/0"}) {
        auto res = run(std::string(kTinySweep) + " --slice " + slice);
        EXPECT_NE(res.status, 0) << slice;
        EXPECT_NE(res.out.find("--slice"), std::string::npos)
            << slice << ": " << res.out;
    }
}
