/** @file Tests for the topology and routing registries. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "net/network.hh"
#include "net/registry.hh"

using namespace pdr;
using namespace pdr::net;

TEST(TopologyRegistry, ContainsBuiltins)
{
    auto &reg = TopologyRegistry::instance();
    for (const char *name : {"mesh", "torus"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
        EXPECT_FALSE(reg.description(name).empty()) << name;
    }
}

TEST(TopologyRegistry, BuildsTheRightGeometry)
{
    auto &reg = TopologyRegistry::instance();
    auto mesh = reg.at("mesh").make(4);
    EXPECT_FALSE(mesh.wraps());
    EXPECT_EQ(mesh.numNodes(), 16);
    auto torus = reg.at("torus").make(4);
    EXPECT_TRUE(torus.wraps());
    EXPECT_EQ(reg.at("mesh").defaultRouting, "xy");
    EXPECT_EQ(reg.at("torus").defaultRouting, "dateline");
}

TEST(TopologyRegistry, UnknownNameListsKnownOnes)
{
    try {
        TopologyRegistry::instance().at("hypercube");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("hypercube"), std::string::npos);
        EXPECT_NE(msg.find("mesh"), std::string::npos);
        EXPECT_NE(msg.find("torus"), std::string::npos);
    }
}

TEST(RoutingRegistry, BuildsEveryBuiltinOnItsTopology)
{
    auto &reg = RoutingRegistry::instance();
    Mesh mesh(4, false), torus(4, true);
    EXPECT_NE(reg.at("xy")(mesh), nullptr);
    EXPECT_NE(reg.at("westfirst")(mesh), nullptr);
    EXPECT_NE(reg.at("dateline")(torus), nullptr);
}

TEST(RoutingRegistry, RejectsIncompatibleGeometry)
{
    auto &reg = RoutingRegistry::instance();
    Mesh mesh(4, false), torus(4, true);
    EXPECT_THROW(reg.at("xy")(torus), std::invalid_argument);
    EXPECT_THROW(reg.at("westfirst")(torus), std::invalid_argument);
    EXPECT_THROW(reg.at("dateline")(mesh), std::invalid_argument);
    EXPECT_THROW(reg.at("no-such-routing"), std::invalid_argument);
}

TEST(NetworkConfig, ResolvedRoutingFollowsTopology)
{
    NetworkConfig cfg;
    EXPECT_EQ(cfg.resolvedRouting(), "xy");
    cfg.topology = "torus";
    EXPECT_EQ(cfg.resolvedRouting(), "dateline");
    cfg.routing = "westfirst";
    EXPECT_EQ(cfg.resolvedRouting(), "westfirst");
}

TEST(NetworkConfig, CapacityComesFromTheTopology)
{
    NetworkConfig cfg;
    cfg.k = 8;
    EXPECT_DOUBLE_EQ(cfg.capacity(), 0.5);
    cfg.topology = "torus";
    EXPECT_DOUBLE_EQ(cfg.capacity(), 1.0);
    cfg.topology = "nope";
    EXPECT_THROW(cfg.capacity(), std::invalid_argument);
}
