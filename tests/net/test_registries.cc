/** @file Tests for the topology and routing registries. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "net/network.hh"
#include "net/registry.hh"

using namespace pdr;
using namespace pdr::net;
using topo::Lattice;

TEST(TopologyRegistry, ContainsBuiltins)
{
    auto &reg = TopologyRegistry::instance();
    for (const char *name :
         {"mesh", "torus", "kary3cube", "cmesh", "cmesh2"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
        EXPECT_FALSE(reg.description(name).empty()) << name;
    }
}

TEST(TopologyRegistry, BuildsTheRightGeometry)
{
    auto &reg = TopologyRegistry::instance();
    auto mesh = reg.at("mesh").make(4);
    EXPECT_FALSE(mesh.wraps());
    EXPECT_EQ(mesh.numNodes(), 16);
    auto torus = reg.at("torus").make(4);
    EXPECT_TRUE(torus.wraps());
    EXPECT_EQ(reg.at("mesh").defaultRouting, "xy");
    EXPECT_EQ(reg.at("torus").defaultRouting, "dateline");

    auto cube = reg.at("kary3cube").make(4);
    EXPECT_EQ(cube.dims(), 3);
    EXPECT_EQ(cube.numRouters(), 64);
    EXPECT_EQ(cube.numPorts(), 7);
    EXPECT_TRUE(cube.wraps());
    EXPECT_EQ(reg.at("kary3cube").defaultRouting, "dor");

    auto cm = reg.at("cmesh").make(4);
    EXPECT_EQ(cm.concentration(), 4);
    EXPECT_EQ(cm.numNodes(), 64);
    EXPECT_EQ(cm.numPorts(), 8);
    EXPECT_EQ(reg.at("cmesh2").make(4).concentration(), 2);
}

TEST(TopologyRegistry, UnknownNameListsKnownOnes)
{
    try {
        TopologyRegistry::instance().at("hypercube");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("hypercube"), std::string::npos);
        EXPECT_NE(msg.find("mesh"), std::string::npos);
        EXPECT_NE(msg.find("torus"), std::string::npos);
        EXPECT_NE(msg.find("kary3cube"), std::string::npos);
    }
}

TEST(RoutingRegistry, BuildsEveryBuiltinOnItsTopology)
{
    auto &reg = RoutingRegistry::instance();
    Lattice mesh = Lattice::mesh2D(4);
    Lattice torus = Lattice::torus2D(4);
    Lattice cube = Lattice::kAryNCube(3, 3);
    Lattice cm = Lattice::cmesh(4, 4);
    EXPECT_NE(reg.at("xy")(mesh), nullptr);
    EXPECT_NE(reg.at("westfirst")(mesh), nullptr);
    EXPECT_NE(reg.at("westfirst")(cm), nullptr);
    EXPECT_NE(reg.at("dateline")(torus), nullptr);
    for (const Lattice &lat : {mesh, torus, cube, cm}) {
        EXPECT_NE(reg.at("dor")(lat), nullptr);
        EXPECT_NE(reg.at("o1turn")(lat), nullptr);
        EXPECT_NE(reg.at("val")(lat), nullptr);
    }
}

TEST(RoutingRegistry, RejectsIncompatibleGeometry)
{
    auto &reg = RoutingRegistry::instance();
    Lattice mesh = Lattice::mesh2D(4);
    Lattice torus = Lattice::torus2D(4);
    Lattice cube = Lattice::kAryNCube(3, 3);
    EXPECT_THROW(reg.at("xy")(torus), std::invalid_argument);
    EXPECT_THROW(reg.at("westfirst")(torus), std::invalid_argument);
    EXPECT_THROW(reg.at("westfirst")(cube), std::invalid_argument);
    EXPECT_THROW(reg.at("dateline")(mesh), std::invalid_argument);
    EXPECT_THROW(reg.at("no-such-routing"), std::invalid_argument);
}

TEST(NetworkConfig, ResolvedRoutingFollowsTopology)
{
    NetworkConfig cfg;
    EXPECT_EQ(cfg.resolvedRouting(), "xy");
    cfg.topology = "torus";
    EXPECT_EQ(cfg.resolvedRouting(), "dateline");
    cfg.topology = "kary3cube";
    EXPECT_EQ(cfg.resolvedRouting(), "dor");
    cfg.topology = "cmesh";
    EXPECT_EQ(cfg.resolvedRouting(), "dor");
    cfg.routing = "westfirst";
    EXPECT_EQ(cfg.resolvedRouting(), "westfirst");
}

TEST(NetworkConfig, CapacityComesFromTheTopology)
{
    NetworkConfig cfg;
    cfg.k = 8;
    EXPECT_DOUBLE_EQ(cfg.capacity(), 0.5);
    cfg.topology = "torus";
    EXPECT_DOUBLE_EQ(cfg.capacity(), 1.0);
    cfg.topology = "kary3cube";
    EXPECT_DOUBLE_EQ(cfg.capacity(), 1.0);
    cfg.topology = "cmesh";
    EXPECT_DOUBLE_EQ(cfg.capacity(), 0.125);
    cfg.topology = "nope";
    EXPECT_THROW(cfg.capacity(), std::invalid_argument);
}

TEST(NetworkConfig, VcRequirementsFollowTheRouting)
{
    // O1TURN needs a VC class per dimension order; Valiant one per
    // phase; wrapping lattices double both for the dateline split.
    NetworkConfig cfg;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 1;
    cfg.routing = "o1turn";
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.router.numVcs = 2;
    EXPECT_NO_THROW(cfg.validate());

    cfg.topology = "kary3cube";
    cfg.router.numPorts = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.router.numVcs = 4;
    EXPECT_NO_THROW(cfg.validate());

    cfg.routing = "val";
    EXPECT_NO_THROW(cfg.validate());
    cfg.router.numVcs = 2;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfig, PortCountDerivesFromTopology)
{
    NetworkConfig cfg;
    cfg.topology = "kary3cube";
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    // The 2D default (5 ports) does not fit a 3-cube...
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    // ...0 = auto and the exact count both do.
    cfg.router.numPorts = 0;
    EXPECT_NO_THROW(cfg.validate());
    cfg.router.numPorts = 7;
    EXPECT_NO_THROW(cfg.validate());
}
