/**
 * @file
 * Cycle-equivalence harness for activity-driven ticking.
 *
 * Network::step() skips components whose wake time has not come; the
 * claim is that skipping is a pure scheduling optimization with zero
 * effect on simulated behavior.  Proof by lockstep: step a normal
 * (skipping) network and a forceTickAll network cycle by cycle from
 * identical configs and require identical delivered-packet traces
 * (packet id, destination, ejection cycle, latency, in ejection
 * order), identical latency statistics, and identical router counters
 * -- across router models, topologies, patterns and loads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "net/network.hh"

using namespace pdr;

namespace {

net::NetworkConfig
baseConfig(router::RouterModel model, int vcs, int buf)
{
    net::NetworkConfig cfg;
    cfg.k = 4;
    cfg.router.model = model;
    cfg.router.numVcs = vcs;
    cfg.router.bufDepth = buf;
    cfg.packetLength = 5;
    cfg.warmup = 100;
    cfg.samplePackets = 400;
    cfg.seed = 99;
    return cfg;
}

/** Step both networks `cycles` cycles, comparing traces as they grow. */
void
expectLockstep(const net::NetworkConfig &cfg, sim::Cycle cycles)
{
    net::Network fast(cfg);
    net::Network naive(cfg);
    naive.forceTickAll(true);

    std::vector<traffic::Delivery> ft, nt;
    fast.recordDeliveries(&ft);
    naive.recordDeliveries(&nt);

    for (sim::Cycle c = 0; c < cycles; c++) {
        fast.step();
        naive.step();
        ASSERT_EQ(ft.size(), nt.size())
            << "delivery count diverged at cycle " << c;
    }

    for (std::size_t i = 0; i < ft.size(); i++) {
        EXPECT_EQ(ft[i].packet, nt[i].packet) << "delivery " << i;
        EXPECT_EQ(ft[i].dest, nt[i].dest) << "delivery " << i;
        EXPECT_EQ(ft[i].at, nt[i].at) << "delivery " << i;
        EXPECT_EQ(ft[i].latency, nt[i].latency) << "delivery " << i;
    }
    EXPECT_GT(ft.size(), 0u) << "test drove no traffic";

    auto fl = fast.latency(), nl = naive.latency();
    EXPECT_EQ(fl.count(), nl.count());
    EXPECT_DOUBLE_EQ(fl.mean(), nl.mean());
    EXPECT_DOUBLE_EQ(fl.percentile(99.0), nl.percentile(99.0));
    EXPECT_EQ(fl.unmeasuredCount(), nl.unmeasuredCount());

    auto fr = fast.routerTotals(), nr = naive.routerTotals();
    EXPECT_EQ(fr.flitsIn, nr.flitsIn);
    EXPECT_EQ(fr.flitsOut, nr.flitsOut);
    EXPECT_EQ(fr.headGrants, nr.headGrants);
    EXPECT_EQ(fr.vaGrants, nr.vaGrants);
    EXPECT_EQ(fr.specSaAttempts, nr.specSaAttempts);
    EXPECT_EQ(fr.specSaWins, nr.specSaWins);
    EXPECT_EQ(fr.specSaUseful, nr.specSaUseful);
    EXPECT_EQ(fr.creditStallCycles, nr.creditStallCycles);

    EXPECT_EQ(fast.acceptedFlitRate(), naive.acceptedFlitRate());
    EXPECT_EQ(fast.quiescent(), naive.quiescent());
}

} // namespace

TEST(LockstepTest, SpecVcLowLoad)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.setOfferedFraction(0.1);
    expectLockstep(cfg, 6000);
}

TEST(LockstepTest, SpecVcNearSaturation)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.setOfferedFraction(0.7);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, VirtualChannelMidLoad)
{
    auto cfg = baseConfig(router::RouterModel::VirtualChannel, 2, 4);
    cfg.setOfferedFraction(0.4);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, WormholeLowLoad)
{
    auto cfg = baseConfig(router::RouterModel::Wormhole, 1, 8);
    cfg.setOfferedFraction(0.15);
    expectLockstep(cfg, 6000);
}

TEST(LockstepTest, TorusDatelineRouting)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.topology = "torus";
    cfg.setOfferedFraction(0.3);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, AdaptiveRoutingTranspose)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.routing = "westfirst";
    cfg.pattern = "transpose";
    cfg.setOfferedFraction(0.3);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, SlowCreditsFig18Shape)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.creditLatency = 4;
    cfg.setOfferedFraction(0.5);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, BurstyMmppArrivals)
{
    // The MMPP state machine advances the RNG every cycle, so the
    // activity-driven schedule must tick bursty sources even through
    // their silent OFF states.
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.burstOn = 25;
    cfg.burstOff = 75;
    cfg.setOfferedFraction(0.3);
    expectLockstep(cfg, 5000);
}

TEST(LockstepTest, SingleFlitPackets)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.packetLength = 1;
    cfg.setOfferedFraction(0.2);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, KAry3CubeDor)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.k = 3;
    cfg.topology = "kary3cube";
    cfg.router.numPorts = 0;
    cfg.setOfferedFraction(0.3);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, ConcentratedMesh)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.topology = "cmesh";
    cfg.router.numPorts = 0;
    cfg.setOfferedFraction(0.3);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, O1TurnTranspose)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.routing = "o1turn";
    cfg.pattern = "transpose";
    cfg.setOfferedFraction(0.4);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, ValiantUniform)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.routing = "val";
    cfg.setOfferedFraction(0.25);
    expectLockstep(cfg, 4000);
}

TEST(LockstepTest, O1TurnOnCubeWithDatelines)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 4, 2);
    cfg.k = 3;
    cfg.topology = "kary3cube";
    cfg.routing = "o1turn";
    cfg.router.numPorts = 0;
    cfg.setOfferedFraction(0.3);
    expectLockstep(cfg, 3000);
}

TEST(LockstepTest, ValiantOnConcentratedMesh)
{
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.topology = "cmesh2";
    cfg.routing = "val";
    cfg.router.numPorts = 0;
    cfg.setOfferedFraction(0.25);
    expectLockstep(cfg, 4000);
}

namespace {

/**
 * Deadlock-freedom soak: drive a (topology, routing) pair at its full
 * uniform capacity -- far past saturation -- and require forward
 * progress in every window.  A routing with a broken VC-class scheme
 * wedges within a few thousand cycles at this load.
 */
void
expectForwardProgressAtSaturation(const std::string &topology,
                                  const std::string &routing, int k,
                                  int vcs)
{
    net::NetworkConfig cfg;
    cfg.k = k;
    cfg.topology = topology;
    cfg.routing = routing;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numPorts = 0;
    cfg.router.numVcs = vcs;
    cfg.router.bufDepth = 4;
    cfg.packetLength = 5;
    cfg.warmup = 1000;
    cfg.samplePackets = 1u << 30;   // Never stop sampling.
    cfg.seed = 7;
    // The heaviest load a source can physically offer: one flit per
    // node per cycle, capped by the topology's capacity bound.
    cfg.injectionRate = std::min(1.0, cfg.capacity());

    net::Network net(cfg);
    std::vector<traffic::Delivery> trace;
    net.recordDeliveries(&trace);

    constexpr sim::Cycle kSoak = 50000;
    constexpr sim::Cycle kWindow = 10000;
    std::size_t last = 0;
    for (sim::Cycle w = 0; w < kSoak / kWindow; w++) {
        net.run(kWindow);
        ASSERT_GT(trace.size(), last)
            << topology << "+" << routing << ": no packet delivered in "
            << "cycles [" << w * kWindow << ", " << (w + 1) * kWindow
            << ") -- deadlock?";
        last = trace.size();
    }
}

} // namespace

TEST(DeadlockSoak, KAry3CubeDor)
{
    expectForwardProgressAtSaturation("kary3cube", "dor", 4, 2);
}

TEST(DeadlockSoak, KAry3CubeO1Turn)
{
    expectForwardProgressAtSaturation("kary3cube", "o1turn", 4, 4);
}

TEST(DeadlockSoak, KAry3CubeValiant)
{
    expectForwardProgressAtSaturation("kary3cube", "val", 4, 4);
}

TEST(DeadlockSoak, CmeshDor)
{
    expectForwardProgressAtSaturation("cmesh", "dor", 2, 2);
}

TEST(DeadlockSoak, CmeshO1Turn)
{
    expectForwardProgressAtSaturation("cmesh", "o1turn", 2, 2);
}

TEST(DeadlockSoak, CmeshValiant)
{
    expectForwardProgressAtSaturation("cmesh2", "val", 4, 2);
}

TEST(LockstepTest, ZeroRateNetworkStaysQuiet)
{
    // Degenerate corner: nothing ever injected; both schedules must
    // agree that nothing happens (and the skipping one does no work).
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.injectionRate = 0.0;
    net::Network fast(cfg);
    net::Network naive(cfg);
    naive.forceTickAll(true);
    for (int c = 0; c < 1000; c++) {
        fast.step();
        naive.step();
    }
    EXPECT_TRUE(fast.quiescent());
    EXPECT_TRUE(naive.quiescent());
    EXPECT_EQ(fast.latency().count(), 0u);
    EXPECT_EQ(fast.flitPool().capacity(), 0u);
}

TEST(LockstepTest, ForceTickAllCanBeToggledOff)
{
    // Turning the naive schedule off mid-run re-arms the wake table;
    // behavior must stay identical to an always-skipping twin.
    auto cfg = baseConfig(router::RouterModel::SpecVirtualChannel, 2, 4);
    cfg.setOfferedFraction(0.3);
    net::Network always(cfg);
    net::Network toggled(cfg);
    toggled.forceTickAll(true);

    std::vector<traffic::Delivery> at, tt;
    always.recordDeliveries(&at);
    toggled.recordDeliveries(&tt);

    for (int c = 0; c < 1000; c++) {
        always.step();
        toggled.step();
    }
    toggled.forceTickAll(false);
    for (int c = 0; c < 2000; c++) {
        always.step();
        toggled.step();
    }
    ASSERT_EQ(at.size(), tt.size());
    for (std::size_t i = 0; i < at.size(); i++) {
        EXPECT_EQ(at[i].packet, tt[i].packet);
        EXPECT_EQ(at[i].at, tt[i].at);
    }
}
