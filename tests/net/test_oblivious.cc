/**
 * @file
 * O1TURN and Valiant routing tests: per-packet state, VC-class
 * partitioning, minimality (O1TURN) / two-phase structure (Valiant),
 * and end-to-end delivery plus the textbook performance signatures.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "api/simulation.hh"
#include "net/oblivious_routing.hh"

using namespace pdr;
using namespace pdr::net;
using topo::Lattice;

namespace {

sim::Flit
packetFlit(const router::RoutingFunction &r, sim::NodeId src,
           sim::NodeId dest, Rng &rng)
{
    auto init = r.initPacket(src, dest, rng);
    sim::Flit f;
    f.src = src;
    f.dest = dest;
    f.inter = init.inter;
    f.vclass = init.vclass;
    return f;
}

/** Walk a packet from src to dest, applying nextClass per hop. */
int
walk(const Lattice &lat, const router::RoutingFunction &r,
     sim::Flit f, int hop_limit)
{
    sim::NodeId cur = lat.routerOf(f.src);
    int hops = 0;
    while (true) {
        int port = r.route(cur, f);
        if (lat.isLocalPort(port)) {
            EXPECT_EQ(cur, lat.routerOf(f.dest));
            EXPECT_EQ(lat.localIndexOfPort(port),
                      lat.localIndexOf(f.dest));
            return hops;
        }
        f.vclass = std::uint8_t(r.nextClass(f, cur, port));
        cur = lat.neighbor(cur, port);
        EXPECT_NE(cur, sim::Invalid);
        if (++hops > hop_limit) {
            ADD_FAILURE() << "walk exceeded " << hop_limit << " hops";
            return hops;
        }
    }
}

} // namespace

TEST(O1Turn, BothOrdersAppearAndStayMinimal)
{
    Lattice mesh = Lattice::mesh2D(8);
    O1TurnRouting r(mesh);
    Rng rng(42);
    std::set<int> orders;
    for (int trial = 0; trial < 64; trial++) {
        auto f = packetFlit(r, mesh.router2D(1, 1),
                            mesh.router2D(6, 5), rng);
        orders.insert(f.vclass & 1);
        int hops = walk(mesh, r, f, 14);
        EXPECT_EQ(hops, mesh.distance(mesh.router2D(1, 1),
                                      mesh.router2D(6, 5)));
    }
    // Both dimension orders must be drawn.
    EXPECT_EQ(orders.size(), 2u);
}

TEST(O1Turn, OrderZeroIsXyOrderOneIsYx)
{
    Lattice mesh = Lattice::mesh2D(8);
    O1TurnRouting r(mesh);
    sim::Flit f;
    f.dest = mesh.router2D(5, 5);
    f.vclass = 0;
    EXPECT_EQ(r.route(mesh.router2D(1, 1), f), East);   // x first
    f.vclass = 1;
    EXPECT_EQ(r.route(mesh.router2D(1, 1), f), North);  // y first
}

TEST(O1Turn, VcClassesPartitionByOrder)
{
    Lattice mesh = Lattice::mesh2D(8);
    O1TurnRouting r(mesh);
    EXPECT_EQ(r.minVcs(), 2);
    sim::Flit f;
    f.dest = mesh.router2D(5, 5);
    f.vclass = 0;
    EXPECT_EQ(r.vcMask(f, mesh.router2D(1, 1), East, 4), 0x3u);
    f.vclass = 1;
    EXPECT_EQ(r.vcMask(f, mesh.router2D(1, 1), North, 4), 0xcu);
    // On a torus each order-half is split again by the dateline.
    Lattice torus = Lattice::torus2D(4);
    O1TurnRouting rt(torus);
    EXPECT_EQ(rt.minVcs(), 4);
    f.dest = torus.router2D(3, 0);
    f.vclass = 0;
    EXPECT_EQ(rt.vcMask(f, torus.router2D(1, 0), East, 4), 0x1u);
    EXPECT_EQ(rt.vcMask(f, torus.router2D(3, 0), East, 4), 0x2u);
    f.vclass = 1;
    EXPECT_EQ(rt.vcMask(f, torus.router2D(1, 0), East, 4), 0x4u);
    EXPECT_EQ(rt.vcMask(f, torus.router2D(3, 0), East, 4), 0x8u);
}

TEST(Valiant, TwoPhaseWalkTerminatesThroughIntermediate)
{
    Lattice mesh = Lattice::mesh2D(8);
    ValiantRouting r(mesh);
    Rng rng(7);
    for (int trial = 0; trial < 64; trial++) {
        auto f = packetFlit(r, 3, 60, rng);
        ASSERT_NE(f.inter, sim::Invalid);
        sim::NodeId ir = mesh.routerOf(f.inter);
        int hops = walk(mesh, r, f, 30);
        int minimal = mesh.distance(mesh.routerOf(3), ir) +
                      mesh.distance(ir, mesh.routerOf(60));
        EXPECT_EQ(hops, minimal);
    }
}

TEST(Valiant, PhaseBitFlipsAtTheIntermediate)
{
    Lattice mesh = Lattice::mesh2D(8);
    ValiantRouting r(mesh);
    sim::Flit f;
    f.src = mesh.router2D(0, 0);
    f.dest = mesh.router2D(0, 0);  // src == dest router is fine here.
    f.inter = mesh.router2D(2, 0);
    f.vclass = 0;
    // Phase 1 heads for the intermediate in the lower VC half.
    EXPECT_EQ(r.route(mesh.router2D(0, 0), f), East);
    EXPECT_EQ(r.vcMask(f, mesh.router2D(0, 0), East, 4), 0x3u);
    EXPECT_EQ(r.nextClass(f, mesh.router2D(0, 0), East), 0);
    // Departing the intermediate switches to phase 2, upper half.
    EXPECT_EQ(r.route(mesh.router2D(2, 0), f), West);
    EXPECT_EQ(r.vcMask(f, mesh.router2D(2, 0), West, 4), 0xcu);
    EXPECT_EQ(r.nextClass(f, mesh.router2D(2, 0), West), 1);
}

TEST(Valiant, IntermediateOnSourceRouterStartsInPhaseTwo)
{
    Lattice mesh = Lattice::mesh2D(4);
    ValiantRouting r(mesh);
    Rng rng(5);
    bool saw_phase2_start = false;
    for (int trial = 0; trial < 256 && !saw_phase2_start; trial++) {
        auto f = packetFlit(r, 5, 10, rng);
        if (mesh.routerOf(f.inter) == mesh.routerOf(5)) {
            EXPECT_EQ(f.vclass & 1, 1);
            saw_phase2_start = true;
        }
    }
    EXPECT_TRUE(saw_phase2_start) << "no on-router intermediate drawn";
}

namespace {

api::SimConfig
obliviousConfig(const std::string &topology, const std::string &routing,
                const std::string &pattern, double load, int vcs)
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.topology = topology;
    cfg.net.routing = routing;
    cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.net.router.numPorts = 0;
    cfg.net.router.numVcs = vcs;
    cfg.net.router.bufDepth = 4;
    cfg.net.pattern = pattern;
    cfg.net.warmup = 1000;
    cfg.net.samplePackets = 3000;
    cfg.net.seed = 17;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 200000;
    return cfg;
}

} // namespace

TEST(Oblivious, DeliversAcrossTopologies)
{
    // Every (topology, routing) pair drains a moderate uniform load.
    for (const char *topology :
         {"mesh", "torus", "kary3cube", "cmesh", "cmesh2"}) {
        for (const char *routing : {"dor", "o1turn", "val"}) {
            bool wrap = std::string(topology) == "torus" ||
                        std::string(topology) == "kary3cube";
            int vcs = wrap ? 4 : 2;
            auto res = api::runSimulation(obliviousConfig(
                topology, routing, "uniform", 0.25, vcs));
            EXPECT_TRUE(res.drained)
                << topology << "+" << routing;
            EXPECT_EQ(res.sampleReceived, res.sampleSize)
                << topology << "+" << routing;
        }
    }
}

TEST(Oblivious, ValiantPathsAreLongerAtLowLoad)
{
    // Valiant's detour through a random intermediate roughly doubles
    // the zero-load path length against DOR.
    auto val = api::runSimulation(
        obliviousConfig("mesh", "val", "uniform", 0.05, 2));
    auto dor = api::runSimulation(
        obliviousConfig("mesh", "dor", "uniform", 0.05, 2));
    ASSERT_TRUE(val.drained && dor.drained);
    EXPECT_GT(val.avgLatency, dor.avgLatency * 1.2);
}

TEST(Oblivious, O1TurnBeatsDorOnTranspose)
{
    // Transpose concentrates DOR traffic on the diagonal; O1TURN
    // spreads it over both orders, so at a load past DOR's knee the
    // O1TURN router must still drain with lower latency.
    auto o1 = api::runSimulation(
        obliviousConfig("mesh", "o1turn", "transpose", 0.45, 2));
    auto dor = api::runSimulation(
        obliviousConfig("mesh", "dor", "transpose", 0.45, 2));
    ASSERT_TRUE(o1.drained);
    if (dor.drained) {
        EXPECT_LE(o1.avgLatency, dor.avgLatency * 1.05);
    }
}
