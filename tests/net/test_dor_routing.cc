/** @file Tests for n-dimensional dimension-order routing. */

#include <gtest/gtest.h>

#include "net/dor_routing.hh"

using namespace pdr;
using namespace pdr::net;
using topo::Lattice;

namespace {

sim::Flit
toward(sim::NodeId dest)
{
    sim::Flit f;
    f.dest = dest;
    return f;
}

} // namespace

class DorMeshTest : public testing::Test
{
  protected:
    Lattice mesh{Lattice::mesh2D(8)};
    DorRouting dor{mesh};

    int
    route(sim::NodeId here, sim::NodeId dest)
    {
        auto f = toward(dest);
        return dor.route(here, f);
    }
};

TEST_F(DorMeshTest, LocalAtDestination)
{
    for (sim::NodeId n : {0, 21, 63})
        EXPECT_EQ(route(n, n), Local);
}

TEST_F(DorMeshTest, XCorrectedFirst)
{
    // From (0,0) to (3,5): go East until x matches.
    EXPECT_EQ(route(mesh.router2D(0, 0), mesh.router2D(3, 5)), East);
    EXPECT_EQ(route(mesh.router2D(2, 0), mesh.router2D(3, 5)), East);
    EXPECT_EQ(route(mesh.router2D(3, 0), mesh.router2D(3, 5)), North);
    EXPECT_EQ(route(mesh.router2D(5, 2), mesh.router2D(3, 5)), West);
}

TEST_F(DorMeshTest, YOnlyWhenAligned)
{
    EXPECT_EQ(route(mesh.router2D(4, 6), mesh.router2D(4, 2)), South);
    EXPECT_EQ(route(mesh.router2D(4, 1), mesh.router2D(4, 2)), North);
}

TEST_F(DorMeshTest, EveryPairTerminates)
{
    // Property: following the routing function always reaches dest in
    // exactly distance(src, dest) hops.
    for (sim::NodeId src = 0; src < mesh.numRouters(); src++) {
        for (sim::NodeId dest = 0; dest < mesh.numRouters(); dest++) {
            sim::NodeId cur = src;
            int hops = 0;
            while (cur != dest) {
                int port = route(cur, dest);
                ASSERT_NE(port, Local);
                cur = mesh.neighbor(cur, port);
                ASSERT_NE(cur, sim::Invalid)
                    << "routed off the mesh edge";
                ASSERT_LE(++hops, 14);
            }
            EXPECT_EQ(hops, mesh.distance(src, dest));
        }
    }
}

TEST_F(DorMeshTest, NoYThenXTurns)
{
    // Dimension order: once a packet moves in Y it never moves in X
    // again (deadlock freedom of DOR on the mesh).
    for (sim::NodeId src = 0; src < mesh.numRouters(); src += 3) {
        for (sim::NodeId dest = 0; dest < mesh.numRouters();
             dest += 5) {
            if (src == dest)
                continue;
            sim::NodeId cur = src;
            bool moved_y = false;
            while (cur != dest) {
                int port = route(cur, dest);
                if (port == North || port == South)
                    moved_y = true;
                else if (port == East || port == West)
                    ASSERT_FALSE(moved_y) << "X move after Y move";
                cur = mesh.neighbor(cur, port);
            }
        }
    }
}

TEST_F(DorMeshTest, MeshNeedsNoVcClasses)
{
    auto f = toward(10);
    EXPECT_EQ(dor.minVcs(), 1);
    EXPECT_EQ(dor.nextClass(f, 0, East), 0);
    EXPECT_EQ(dor.vcMask(f, 0, East, 2) & 0x3u, 0x3u);
}

TEST(DorCube, DimensionOrderOnThreeDims)
{
    Lattice cube = Lattice::kAryNCube(3, 4);
    DorRouting dor(cube);
    auto route = [&](sim::NodeId here, sim::NodeId dest) {
        auto f = toward(dest);
        return dor.route(here, f);
    };
    // x, then y, then z.
    auto src = cube.routerAt({0, 0, 0});
    EXPECT_EQ(route(src, cube.routerAt({1, 1, 1})), cube.plusPort(0));
    EXPECT_EQ(route(cube.routerAt({1, 0, 0}), cube.routerAt({1, 1, 1})),
              cube.plusPort(1));
    EXPECT_EQ(route(cube.routerAt({1, 1, 0}), cube.routerAt({1, 1, 1})),
              cube.plusPort(2));
    // Wrap: 0 -> 3 is one hop the minus way.
    EXPECT_EQ(route(src, cube.routerAt({3, 0, 0})), cube.minusPort(0));
    // Exactly half-way: tie goes plus.
    EXPECT_EQ(route(src, cube.routerAt({2, 0, 0})), cube.plusPort(0));
}

TEST(DorCube, MinimalEverywhere)
{
    Lattice cube = Lattice::kAryNCube(3, 3);
    DorRouting dor(cube);
    for (sim::NodeId src = 0; src < cube.numRouters(); src++) {
        for (sim::NodeId dest = 0; dest < cube.numRouters(); dest++) {
            sim::NodeId cur = src;
            int hops = 0;
            auto f = toward(dest);
            while (cur != dest) {
                int port = dor.route(cur, f);
                ASSERT_TRUE(cube.isDirectional(port));
                cur = cube.neighbor(cur, port);
                ASSERT_LE(++hops, 6);
            }
            EXPECT_EQ(hops, cube.distance(src, dest));
        }
    }
}

TEST(DorCmesh, EjectsOnTheRightLocalPort)
{
    Lattice cm = Lattice::cmesh(4, 4);
    DorRouting dor(cm);
    for (sim::NodeId node = 0; node < cm.numNodes(); node += 3) {
        auto f = toward(node);
        int port = dor.route(cm.routerOf(node), f);
        EXPECT_EQ(port, cm.localPort(cm.localIndexOf(node)));
    }
    // A destination on another router routes like plain DOR.
    auto f = toward(cm.nodeAt(cm.router2D(2, 0), 1));
    EXPECT_EQ(dor.route(cm.router2D(0, 0), f), East);
}
