/**
 * @file
 * West-first adaptive routing tests: turn-model legality, minimality,
 * deadlock-free delivery, and congestion avoidance.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/simulation.hh"
#include "net/adaptive_routing.hh"
#include "net/dor_routing.hh"

using namespace pdr;
using namespace pdr::net;

class WestFirstTest : public testing::Test
{
  protected:
    Mesh mesh{Mesh::mesh2D(8)};
    WestFirstRouting wf{mesh};

    std::vector<int>
    cand(int hx, int hy, int dx, int dy)
    {
        sim::Flit f;
        f.dest = mesh.router2D(dx, dy);
        std::vector<int> out;
        wf.candidates(mesh.router2D(hx, hy), f, out);
        return out;
    }
};

TEST_F(WestFirstTest, WestTrafficIsDeterministic)
{
    // Any destination to the west: only West is offered.
    EXPECT_EQ(cand(5, 2, 1, 6), (std::vector<int>{West}));
    EXPECT_EQ(cand(5, 2, 1, 0), (std::vector<int>{West}));
    EXPECT_EQ(cand(5, 2, 1, 2), (std::vector<int>{West}));
}

TEST_F(WestFirstTest, EastQuadrantIsAdaptive)
{
    auto c = cand(1, 1, 4, 5);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0], East);
    EXPECT_EQ(c[1], North);
}

TEST_F(WestFirstTest, AlignedIsDeterministic)
{
    EXPECT_EQ(cand(3, 3, 6, 3), (std::vector<int>{East}));
    EXPECT_EQ(cand(3, 3, 3, 7), (std::vector<int>{North}));
    EXPECT_EQ(cand(3, 3, 3, 0), (std::vector<int>{South}));
    EXPECT_EQ(cand(3, 3, 3, 3), (std::vector<int>{Local}));
}

TEST_F(WestFirstTest, AdaptiveFlag)
{
    EXPECT_TRUE(wf.isAdaptive());
    DorRouting dor(mesh);
    EXPECT_FALSE(dor.isAdaptive());
}

TEST_F(WestFirstTest, NoTurnIntoWestEver)
{
    // Property over all pairs: any candidate sequence can only use
    // West while no other direction has been used (turn-model check on
    // all minimal adaptive walks, sampled greedily both ways).
    for (sim::NodeId src = 0; src < mesh.numRouters(); src += 5) {
        for (sim::NodeId dest = 0; dest < mesh.numRouters(); dest += 3) {
            sim::NodeId cur = src;
            bool left_west_phase = false;
            int hops = 0;
            sim::Flit f;
            f.dest = dest;
            while (cur != dest) {
                std::vector<int> c;
                wf.candidates(cur, f, c);
                ASSERT_FALSE(c.empty());
                // Pick the last candidate to stress the adaptive arm.
                int port = c.back();
                if (port == West)
                    ASSERT_FALSE(left_west_phase)
                        << "turn into west detected";
                else
                    left_west_phase = true;
                cur = mesh.neighbor(cur, port);
                ASSERT_NE(cur, sim::Invalid);
                ASSERT_LE(++hops, 14) << "non-minimal path";
            }
            EXPECT_EQ(hops, mesh.distance(src, dest));
        }
    }
}

namespace {

api::SimConfig
adaptiveConfig(double load, const std::string &pattern)
{
    api::SimConfig cfg;
    cfg.net.k = 8;
    cfg.net.routing = "westfirst";
    cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.pattern = pattern;
    cfg.net.warmup = 2000;
    cfg.net.samplePackets = 4000;
    cfg.net.seed = 11;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 150000;
    return cfg;
}

} // namespace

TEST(Adaptive, DeliversUnderLoadAllModels)
{
    for (auto model : {router::RouterModel::Wormhole,
                       router::RouterModel::VirtualChannel,
                       router::RouterModel::SpecVirtualChannel}) {
        auto cfg = adaptiveConfig(0.3, "uniform");
        cfg.net.router.model = model;
        if (model == router::RouterModel::Wormhole) {
            cfg.net.router.numVcs = 1;
            cfg.net.router.bufDepth = 8;
        }
        auto res = api::runSimulation(cfg);
        EXPECT_TRUE(res.drained)
            << "model " << router::toString(model);
        EXPECT_EQ(res.sampleReceived, res.sampleSize);
    }
}

TEST(Adaptive, HelpsOnTranspose)
{
    // Transpose loads the diagonal unevenly under DOR; west-first
    // adaptivity spreads east-bound traffic over both dimensions, so
    // at a load where DOR is past its knee the adaptive router should
    // not be (meaningfully) worse.
    auto cfg = adaptiveConfig(0.35, "transpose");
    auto adaptive = api::runSimulation(cfg);
    cfg.net.routing = "xy";
    auto dor = api::runSimulation(cfg);
    ASSERT_TRUE(adaptive.drained);
    if (dor.drained) {
        EXPECT_LE(adaptive.avgLatency, dor.avgLatency * 1.25);
    }
}

TEST(Adaptive, ZeroLoadLatencyUnchanged)
{
    // Minimal adaptivity cannot change path lengths.
    auto cfg = adaptiveConfig(0.02, "uniform");
    auto adaptive = api::runSimulation(cfg);
    cfg.net.routing = "xy";
    auto dor = api::runSimulation(cfg);
    ASSERT_TRUE(adaptive.drained && dor.drained);
    EXPECT_NEAR(adaptive.avgLatency, dor.avgLatency, 1.0);
}

TEST(AdaptiveDeath, TorusCombinationRejected)
{
    auto cfg = adaptiveConfig(0.1, "uniform");
    cfg.net.topology = "torus";
    try {
        net::Network n(cfg.net);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("adaptive"),
                  std::string::npos)
            << "message: " << e.what();
    }
}
