/** @file Tests for the generalized lattice topology subsystem. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/topology.hh"

using namespace pdr;
using namespace pdr::net;
using topo::Lattice;

TEST(Topology, TwoDPortConventionMatchesTheClassicMesh)
{
    // The 2D lattice keeps the historical numbering: N=0 (+y), E=1
    // (+x), S=2 (-y), W=3 (-x), Local=4.
    Lattice m = Lattice::mesh2D(8);
    EXPECT_EQ(m.plusPort(1), North);
    EXPECT_EQ(m.plusPort(0), East);
    EXPECT_EQ(m.minusPort(1), South);
    EXPECT_EQ(m.minusPort(0), West);
    EXPECT_EQ(m.localPort(0), Local);
    EXPECT_EQ(m.numPorts(), NumPorts);
}

TEST(Topology, CoordinatesRoundTrip)
{
    Lattice m = Lattice::mesh2D(8);
    for (int x = 0; x < 8; x++) {
        for (int y = 0; y < 8; y++) {
            auto n = m.router2D(x, y);
            EXPECT_EQ(m.coordOf(n, 0), x);
            EXPECT_EQ(m.coordOf(n, 1), y);
            EXPECT_EQ(n, sim::NodeId(y * 8 + x));  // Row-major ids.
        }
    }
}

TEST(Topology, NeighborsInterior)
{
    Lattice m = Lattice::mesh2D(8);
    auto n = m.router2D(3, 3);
    EXPECT_EQ(m.neighbor(n, North), m.router2D(3, 4));
    EXPECT_EQ(m.neighbor(n, South), m.router2D(3, 2));
    EXPECT_EQ(m.neighbor(n, East), m.router2D(4, 3));
    EXPECT_EQ(m.neighbor(n, West), m.router2D(2, 3));
}

TEST(Topology, EdgesHaveNoNeighbor)
{
    Lattice m = Lattice::mesh2D(8);
    EXPECT_EQ(m.neighbor(m.router2D(0, 0), West), sim::Invalid);
    EXPECT_EQ(m.neighbor(m.router2D(0, 0), South), sim::Invalid);
    EXPECT_EQ(m.neighbor(m.router2D(7, 7), East), sim::Invalid);
    EXPECT_EQ(m.neighbor(m.router2D(7, 7), North), sim::Invalid);
}

TEST(Topology, NeighborSymmetryAcrossLattices)
{
    for (const Lattice &lat :
         {Lattice::mesh2D(4), Lattice::torus2D(4),
          Lattice::kAryNCube(3, 3), Lattice::cmesh(4, 4)}) {
        for (sim::NodeId n = 0; n < lat.numRouters(); n++) {
            for (int p = 0; p < 2 * lat.dims(); p++) {
                auto nb = lat.neighbor(n, p);
                if (nb != sim::Invalid)
                    EXPECT_EQ(lat.neighbor(nb, lat.opposite(p)), n);
            }
        }
    }
}

TEST(Topology, OppositePorts)
{
    Lattice m = Lattice::mesh2D(4);
    EXPECT_EQ(m.opposite(North), South);
    EXPECT_EQ(m.opposite(South), North);
    EXPECT_EQ(m.opposite(East), West);
    EXPECT_EQ(m.opposite(West), East);

    Lattice c = Lattice::kAryNCube(3, 4);
    for (int d = 0; d < 3; d++) {
        EXPECT_EQ(c.opposite(c.plusPort(d)), c.minusPort(d));
        EXPECT_EQ(c.opposite(c.minusPort(d)), c.plusPort(d));
        EXPECT_EQ(c.dimOfPort(c.plusPort(d)), d);
        EXPECT_EQ(c.dimOfPort(c.minusPort(d)), d);
    }
}

TEST(Topology, Distance)
{
    Lattice m = Lattice::mesh2D(8);
    EXPECT_EQ(m.distance(m.router2D(0, 0), m.router2D(7, 7)), 14);
    EXPECT_EQ(m.distance(m.router2D(3, 3), m.router2D(3, 3)), 0);
    EXPECT_EQ(m.distance(m.router2D(1, 2), m.router2D(4, 0)), 5);
}

TEST(Topology, UniformCapacityBisectionBound)
{
    EXPECT_DOUBLE_EQ(Lattice::mesh2D(8).uniformCapacity(), 0.5);
    EXPECT_DOUBLE_EQ(Lattice::mesh2D(4).uniformCapacity(), 1.0);
    EXPECT_DOUBLE_EQ(Lattice::mesh2D(16).uniformCapacity(), 0.25);
    // Torus doubles the bisection; the 3-cube follows 8/k too.
    EXPECT_DOUBLE_EQ(Lattice::torus2D(8).uniformCapacity(), 1.0);
    EXPECT_DOUBLE_EQ(Lattice::kAryNCube(3, 4).uniformCapacity(), 2.0);
    // Concentration divides per-node capacity by c.
    EXPECT_DOUBLE_EQ(Lattice::cmesh(8, 4).uniformCapacity(), 0.125);
    EXPECT_DOUBLE_EQ(Lattice::cmesh(8, 2).uniformCapacity(), 0.25);
}

TEST(Topology, MeanUniformDistanceMatchesBruteForce)
{
    for (const Lattice &lat :
         {Lattice::mesh2D(8), Lattice::torus2D(6),
          Lattice::kAryNCube(3, 3), Lattice::cmesh(4, 2)}) {
        double sum = 0.0;
        long pairs = 0;
        for (sim::NodeId a = 0; a < lat.numNodes(); a++) {
            for (sim::NodeId b = 0; b < lat.numNodes(); b++) {
                if (a == b)
                    continue;
                sum += lat.distance(lat.routerOf(a), lat.routerOf(b));
                pairs++;
            }
        }
        EXPECT_NEAR(lat.meanUniformDistance(), sum / double(pairs),
                    1e-9);
    }
}

TEST(Topology, ConcentrationMapping)
{
    Lattice c = Lattice::cmesh(4, 4);
    EXPECT_EQ(c.numRouters(), 16);
    EXPECT_EQ(c.numNodes(), 64);
    EXPECT_EQ(c.numPorts(), 8);     // 4 directions + 4 local.
    for (sim::NodeId node = 0; node < c.numNodes(); node++) {
        sim::NodeId r = c.routerOf(node);
        int j = c.localIndexOf(node);
        EXPECT_EQ(c.nodeAt(r, j), node);
        EXPECT_TRUE(c.isLocalPort(c.localPort(j)));
        EXPECT_EQ(c.localIndexOfPort(c.localPort(j)), j);
    }
}

TEST(Topology, KAry3CubeGeometry)
{
    Lattice c = Lattice::kAryNCube(3, 4);
    EXPECT_EQ(c.dims(), 3);
    EXPECT_EQ(c.numRouters(), 64);
    EXPECT_EQ(c.numPorts(), 7);
    EXPECT_TRUE(c.wraps());
    // Every dimension wraps: the far corner is 3 hops away.
    EXPECT_EQ(c.distance(c.routerAt({0, 0, 0}), c.routerAt({3, 3, 3})),
              3);
    // Wrap links are datelines.
    EXPECT_TRUE(c.isWrapLink(c.routerAt({3, 0, 0}), c.plusPort(0)));
    EXPECT_FALSE(c.isWrapLink(c.routerAt({1, 0, 0}), c.plusPort(0)));
}

TEST(Topology, PortNames)
{
    Lattice m = Lattice::mesh2D(4);
    EXPECT_EQ(m.portName(North), "N");
    EXPECT_EQ(m.portName(Local), "L");
    Lattice c = Lattice::kAryNCube(3, 4);
    EXPECT_EQ(c.portName(c.plusPort(2)), "U");
    EXPECT_EQ(c.portName(c.minusPort(2)), "D");
    Lattice cm = Lattice::cmesh(4, 2);
    EXPECT_EQ(cm.portName(cm.localPort(1)), "L1");
}

TEST(TopologyDeath, BadShapesRejected)
{
    EXPECT_THROW(Lattice::mesh2D(1), std::invalid_argument);
    EXPECT_THROW(Lattice({4, 4}, {false}), std::invalid_argument);
    EXPECT_THROW(Lattice({4}, {false}, 0), std::invalid_argument);
    EXPECT_THROW(Lattice::kAryNCube(7, 4), std::invalid_argument);
}
