/** @file Tests for mesh topology helpers. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/topology.hh"

using namespace pdr;
using namespace pdr::net;

TEST(Topology, CoordinatesRoundTrip)
{
    Mesh m(8);
    for (int x = 0; x < 8; x++) {
        for (int y = 0; y < 8; y++) {
            auto n = m.node(x, y);
            EXPECT_EQ(m.xOf(n), x);
            EXPECT_EQ(m.yOf(n), y);
        }
    }
}

TEST(Topology, NeighborsInterior)
{
    Mesh m(8);
    auto n = m.node(3, 3);
    EXPECT_EQ(m.neighbor(n, North), m.node(3, 4));
    EXPECT_EQ(m.neighbor(n, South), m.node(3, 2));
    EXPECT_EQ(m.neighbor(n, East), m.node(4, 3));
    EXPECT_EQ(m.neighbor(n, West), m.node(2, 3));
}

TEST(Topology, EdgesHaveNoNeighbor)
{
    Mesh m(8);
    EXPECT_EQ(m.neighbor(m.node(0, 0), West), sim::Invalid);
    EXPECT_EQ(m.neighbor(m.node(0, 0), South), sim::Invalid);
    EXPECT_EQ(m.neighbor(m.node(7, 7), East), sim::Invalid);
    EXPECT_EQ(m.neighbor(m.node(7, 7), North), sim::Invalid);
}

TEST(Topology, NeighborSymmetry)
{
    Mesh m(4);
    for (sim::NodeId n = 0; n < m.numNodes(); n++) {
        for (int port : {North, East, South, West}) {
            auto nb = m.neighbor(n, port);
            if (nb != sim::Invalid)
                EXPECT_EQ(m.neighbor(nb, Mesh::opposite(port)), n);
        }
    }
}

TEST(Topology, OppositePorts)
{
    EXPECT_EQ(Mesh::opposite(North), South);
    EXPECT_EQ(Mesh::opposite(South), North);
    EXPECT_EQ(Mesh::opposite(East), West);
    EXPECT_EQ(Mesh::opposite(West), East);
}

TEST(Topology, Distance)
{
    Mesh m(8);
    EXPECT_EQ(m.distance(m.node(0, 0), m.node(7, 7)), 14);
    EXPECT_EQ(m.distance(m.node(3, 3), m.node(3, 3)), 0);
    EXPECT_EQ(m.distance(m.node(1, 2), m.node(4, 0)), 5);
}

TEST(Topology, UniformCapacityBisectionBound)
{
    EXPECT_DOUBLE_EQ(Mesh(8).uniformCapacity(), 0.5);
    EXPECT_DOUBLE_EQ(Mesh(4).uniformCapacity(), 1.0);
    EXPECT_DOUBLE_EQ(Mesh(16).uniformCapacity(), 0.25);
}

TEST(Topology, MeanUniformDistance)
{
    Mesh m(8);
    // Brute force check.
    double sum = 0.0;
    int pairs = 0;
    for (sim::NodeId a = 0; a < m.numNodes(); a++) {
        for (sim::NodeId b = 0; b < m.numNodes(); b++) {
            if (a == b)
                continue;
            sum += m.distance(a, b);
            pairs++;
        }
    }
    EXPECT_NEAR(m.meanUniformDistance(), sum / pairs, 1e-9);
}

TEST(Topology, PortNames)
{
    EXPECT_STREQ(portName(North), "N");
    EXPECT_STREQ(portName(Local), "L");
}

TEST(TopologyDeath, RadixTooSmall)
{
    EXPECT_THROW(Mesh(1), std::invalid_argument);
}
