/** @file Tests for dimension-ordered XY routing. */

#include <gtest/gtest.h>

#include "net/xy_routing.hh"

using namespace pdr;
using namespace pdr::net;

class XyTest : public testing::Test
{
  protected:
    Mesh mesh{8};
    XyRouting xy{mesh};
};

TEST_F(XyTest, LocalAtDestination)
{
    for (sim::NodeId n : {0, 21, 63})
        EXPECT_EQ(xy.route(n, n), Local);
}

TEST_F(XyTest, XCorrectedFirst)
{
    // From (0,0) to (3,5): go East until x matches.
    EXPECT_EQ(xy.route(mesh.node(0, 0), mesh.node(3, 5)), East);
    EXPECT_EQ(xy.route(mesh.node(2, 0), mesh.node(3, 5)), East);
    EXPECT_EQ(xy.route(mesh.node(3, 0), mesh.node(3, 5)), North);
    EXPECT_EQ(xy.route(mesh.node(5, 2), mesh.node(3, 5)), West);
}

TEST_F(XyTest, YOnlyWhenAligned)
{
    EXPECT_EQ(xy.route(mesh.node(4, 6), mesh.node(4, 2)), South);
    EXPECT_EQ(xy.route(mesh.node(4, 1), mesh.node(4, 2)), North);
}

TEST_F(XyTest, EveryPairTerminates)
{
    // Property: following the routing function always reaches dest in
    // exactly distance(src, dest) hops.
    for (sim::NodeId src = 0; src < mesh.numNodes(); src++) {
        for (sim::NodeId dest = 0; dest < mesh.numNodes(); dest++) {
            sim::NodeId cur = src;
            int hops = 0;
            while (cur != dest) {
                int port = xy.route(cur, dest);
                ASSERT_NE(port, Local);
                cur = mesh.neighbor(cur, port);
                ASSERT_NE(cur, sim::Invalid)
                    << "routed off the mesh edge";
                ASSERT_LE(++hops, 14);
            }
            EXPECT_EQ(hops, mesh.distance(src, dest));
        }
    }
}

TEST_F(XyTest, NoYThenXTurns)
{
    // Dimension order: once a packet moves in Y it never moves in X
    // again (deadlock freedom of DOR on the mesh).
    for (sim::NodeId src = 0; src < mesh.numNodes(); src += 3) {
        for (sim::NodeId dest = 0; dest < mesh.numNodes(); dest += 5) {
            if (src == dest)
                continue;
            sim::NodeId cur = src;
            bool moved_y = false;
            while (cur != dest) {
                int port = xy.route(cur, dest);
                if (port == North || port == South)
                    moved_y = true;
                else if (port == East || port == West)
                    ASSERT_FALSE(moved_y) << "X move after Y move";
                cur = mesh.neighbor(cur, port);
            }
        }
    }
}
