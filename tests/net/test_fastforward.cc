/**
 * @file
 * Clock fast-forward equivalence.
 *
 * Network::stepTo()/run() may jump now() across provably idle regions
 * (Network::skipIdle); these tests pin the contract that a jump is
 * indistinguishable from stepping the same cycles one by one -- same
 * deliveries, same latency statistics, same router counters, same
 * final clock -- serially and through a ParallelStepper, plus a
 * saturated k=16 lockstep where credit-stall sleeping dominates the
 * schedule.
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "par/stepper.hh"

using namespace pdr;

namespace {

net::NetworkConfig
baseConfig(int k, double offered)
{
    net::NetworkConfig cfg;
    cfg.k = k;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.packetLength = 5;
    cfg.warmup = 100;
    cfg.samplePackets = 400;
    cfg.seed = 12345;
    cfg.setOfferedFraction(offered);
    return cfg;
}

/** End-state equality: clock, deliveries, latency, router counters. */
void
expectSameEndState(net::Network &a, net::Network &b,
                   const std::vector<traffic::Delivery> &at,
                   const std::vector<traffic::Delivery> &bt)
{
    EXPECT_EQ(a.now(), b.now());

    ASSERT_EQ(at.size(), bt.size());
    for (std::size_t i = 0; i < at.size(); i++) {
        EXPECT_EQ(at[i].packet, bt[i].packet) << "delivery " << i;
        EXPECT_EQ(at[i].at, bt[i].at) << "delivery " << i;
        EXPECT_EQ(at[i].latency, bt[i].latency) << "delivery " << i;
    }

    auto al = a.latency(), bl = b.latency();
    EXPECT_EQ(al.count(), bl.count());
    EXPECT_DOUBLE_EQ(al.mean(), bl.mean());

    auto ar = a.routerTotals(), br = b.routerTotals();
    EXPECT_EQ(ar.flitsIn, br.flitsIn);
    EXPECT_EQ(ar.flitsOut, br.flitsOut);
    EXPECT_EQ(ar.headGrants, br.headGrants);
    EXPECT_EQ(ar.vaGrants, br.vaGrants);
    EXPECT_EQ(ar.specSaAttempts, br.specSaAttempts);
    EXPECT_EQ(ar.creditStallCycles, br.creditStallCycles);

    EXPECT_EQ(a.quiescent(), b.quiescent());
}

} // namespace

TEST(FastForward, SkipIdleJumpsQuiescentRegion)
{
    // A network with nothing scheduled fast-forwards to the limit in
    // one call instead of stepping through the idle region.
    auto cfg = baseConfig(4, 0.3);
    cfg.injectionRate = 0.0;
    net::Network net(cfg);
    net.step();     // Cycle 0: every component reports its real wake.
    EXPECT_EQ(net.now(), 1u);
    EXPECT_EQ(net.skipIdle(100000), 100000u);
    EXPECT_EQ(net.now(), 100000u);
    EXPECT_TRUE(net.quiescent());
}

TEST(FastForward, SkipIdleIsNoOpUnderForceTickAll)
{
    auto cfg = baseConfig(4, 0.3);
    cfg.injectionRate = 0.0;
    net::Network net(cfg);
    net.forceTickAll(true);
    net.step();
    EXPECT_EQ(net.skipIdle(100000), 1u);
    EXPECT_EQ(net.now(), 1u);
}

TEST(FastForward, RunMatchesSteppingThroughIdle)
{
    // run() == N x step() even when run() jumps the whole span.
    auto cfg = baseConfig(4, 0.3);
    cfg.injectionRate = 0.0;
    net::Network jump(cfg), walk(cfg);
    jump.run(5000);
    for (int c = 0; c < 5000; c++)
        walk.step();
    EXPECT_EQ(jump.now(), walk.now());
    EXPECT_TRUE(jump.quiescent());
    EXPECT_TRUE(walk.quiescent());
    EXPECT_EQ(jump.flitPool().capacity(), walk.flitPool().capacity());
}

TEST(FastForward, StepToMatchesStepLoopUnderTraffic)
{
    // Live traffic: exhausted source credits and credit-stalled
    // routers open small idle windows; stepTo() taking them must land
    // on the exact same end state as the cycle-by-cycle walk.
    auto cfg = baseConfig(4, 0.4);
    net::Network jump(cfg), walk(cfg);
    std::vector<traffic::Delivery> jt, wt;
    jump.recordDeliveries(&jt);
    walk.recordDeliveries(&wt);

    const sim::Cycle horizon = 5000;
    jump.stepTo(horizon);
    for (sim::Cycle c = 0; c < horizon; c++)
        walk.step();
    expectSameEndState(jump, walk, jt, wt);
}

TEST(FastForward, SaturatedK16Lockstep)
{
    // k=16 mesh far past saturation: almost every router is blocked on
    // credits, so the skipping schedule sleeps through stall spans the
    // naive schedule grinds out cycle by cycle.  Behavior and the
    // interval-accounted stall counters must still match exactly.
    net::NetworkConfig cfg;
    cfg.k = 16;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.packetLength = 5;
    cfg.warmup = 100;
    cfg.samplePackets = 1u << 30;   // Never stop sampling.
    cfg.seed = 31;
    cfg.setOfferedFraction(0.8);

    net::Network fast(cfg);
    net::Network naive(cfg);
    naive.forceTickAll(true);
    std::vector<traffic::Delivery> ft, nt;
    fast.recordDeliveries(&ft);
    naive.recordDeliveries(&nt);

    for (sim::Cycle c = 0; c < 1200; c++) {
        fast.step();
        naive.step();
        ASSERT_EQ(ft.size(), nt.size())
            << "delivery count diverged at cycle " << c;
    }
    EXPECT_GT(ft.size(), 0u);
    EXPECT_GT(fast.routerTotals().creditStallCycles, 0u)
        << "test drove no stalls";
    expectSameEndState(fast, naive, ft, nt);
}

TEST(FastForward, ParallelStepperJumpsMatchSerial)
{
    // Worker-0 jumps between cycle barriers must reproduce the serial
    // jump schedule for any worker count.
    auto cfg = baseConfig(4, 0.2);
    net::Network serial(cfg), gang(cfg);
    std::vector<traffic::Delivery> st, gt;
    serial.recordDeliveries(&st);
    gang.recordDeliveries(&gt);

    const sim::Cycle horizon = 3000;
    serial.stepTo(horizon);
    {
        par::ParConfig pc;
        pc.workers = 2;
        par::ParallelStepper stepper(gang, pc);
        stepper.stepTo(horizon);
    }
    expectSameEndState(serial, gang, st, gt);
}
