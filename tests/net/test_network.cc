/** @file Tests for network construction and bookkeeping. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "net/network.hh"

using namespace pdr;
using namespace pdr::net;

namespace {

NetworkConfig
smallConfig()
{
    NetworkConfig cfg;
    cfg.k = 4;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.warmup = 100;
    cfg.samplePackets = 200;
    cfg.setOfferedFraction(0.2);
    return cfg;
}

} // namespace

TEST(NetworkTest, OfferedFractionRoundTrip)
{
    NetworkConfig cfg;
    cfg.k = 8;
    cfg.setOfferedFraction(0.4);
    EXPECT_DOUBLE_EQ(cfg.injectionRate, 0.2);   // 0.4 * 0.5 capacity.
    EXPECT_DOUBLE_EQ(cfg.offeredFraction(), 0.4);
}

TEST(NetworkTest, BuildsAndIdlesCleanly)
{
    auto cfg = smallConfig();
    cfg.injectionRate = 0.0;
    Network n(cfg);
    n.run(200);
    EXPECT_EQ(n.now(), 200u);
    EXPECT_TRUE(n.quiescent());
    EXPECT_EQ(n.routerTotals().flitsIn, 0u);
}

TEST(NetworkTest, TrafficFlowsEndToEnd)
{
    Network n(smallConfig());
    n.run(2000);
    auto totals = n.routerTotals();
    EXPECT_GT(totals.flitsIn, 0u);
    EXPECT_GT(totals.flitsOut, 0u);
    std::uint64_t delivered = 0;
    for (sim::NodeId id = 0; id < 16; id++)
        delivered += n.sinkAt(id).totalFlits();
    EXPECT_GT(delivered, 0u);
}

TEST(NetworkTest, AcceptedMatchesOfferedAtLowLoad)
{
    auto cfg = smallConfig();
    cfg.setOfferedFraction(0.15);
    Network n(cfg);
    n.run(20000);
    EXPECT_NEAR(n.acceptedFraction(), 0.15, 0.02);
}

TEST(NetworkTest, LatencyAggregationAcrossSinks)
{
    Network n(smallConfig());
    while (!n.controller().done() && n.now() < 50000)
        n.step();
    ASSERT_TRUE(n.controller().done());
    auto lat = n.latency();
    EXPECT_EQ(lat.count(), 200u);
    EXPECT_GT(lat.mean(), 0.0);
    EXPECT_LE(lat.min(), lat.mean());
    EXPECT_LE(lat.mean(), lat.max());
}

TEST(NetworkTest, DeterministicForSeed)
{
    auto cfg = smallConfig();
    Network a(cfg), b(cfg);
    for (int i = 0; i < 3000; i++) {
        a.step();
        b.step();
    }
    EXPECT_EQ(a.routerTotals().flitsOut, b.routerTotals().flitsOut);
    EXPECT_DOUBLE_EQ(a.latency().mean(), b.latency().mean());
}

TEST(NetworkTest, SeedChangesOutcome)
{
    auto cfg = smallConfig();
    Network a(cfg);
    cfg.seed = 999;
    Network b(cfg);
    for (int i = 0; i < 3000; i++) {
        a.step();
        b.step();
    }
    EXPECT_NE(a.routerTotals().flitsOut, b.routerTotals().flitsOut);
}

TEST(NetworkTest, WormholeNetworkRuns)
{
    auto cfg = smallConfig();
    cfg.router.model = router::RouterModel::Wormhole;
    cfg.router.numVcs = 1;
    cfg.router.bufDepth = 8;
    Network n(cfg);
    while (!n.controller().done() && n.now() < 50000)
        n.step();
    EXPECT_TRUE(n.controller().done());
}

TEST(NetworkTest, CreditLatencyConfigurable)
{
    auto cfg = smallConfig();
    cfg.creditLatency = 4;
    Network n(cfg);
    while (!n.controller().done() && n.now() < 50000)
        n.step();
    EXPECT_TRUE(n.controller().done());
}

TEST(NetworkDeath, WrongPortCountRejected)
{
    auto cfg = smallConfig();
    cfg.router.numPorts = 4;
    EXPECT_THROW(Network n(cfg), std::invalid_argument);
}

TEST(NetworkDeath, SillyInjectionRateRejected)
{
    auto cfg = smallConfig();
    cfg.injectionRate = 1.5;
    EXPECT_THROW(Network n(cfg), std::invalid_argument);
}

TEST(NetworkDeath, UnknownPatternRejected)
{
    auto cfg = smallConfig();
    cfg.pattern = "no-such-pattern";
    try {
        Network n(cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("no-such-pattern"),
                  std::string::npos);
    }
}

TEST(NetworkDeath, UnknownTopologyRejected)
{
    auto cfg = smallConfig();
    cfg.topology = "hypercube";
    EXPECT_THROW(Network n(cfg), std::invalid_argument);
}
