/**
 * @file
 * Torus extension tests: wrap topology, minimal DOR with dateline VC
 * classes, deadlock-free operation under load.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/simulation.hh"
#include "net/dor_routing.hh"

using namespace pdr;
using namespace pdr::net;
using topo::Lattice;

namespace {

sim::Flit
toward(sim::NodeId dest, int vclass = 0)
{
    sim::Flit f;
    f.dest = dest;
    f.vclass = std::uint8_t(vclass);
    return f;
}

/** Dateline bit of dimension d in the shared vclass encoding. */
int
dl(int d)
{
    return 1 << (1 + d);
}

} // namespace

TEST(Torus, NeighborsWrap)
{
    Lattice t = Lattice::torus2D(4);
    EXPECT_EQ(t.neighbor(t.router2D(3, 1), East), t.router2D(0, 1));
    EXPECT_EQ(t.neighbor(t.router2D(0, 1), West), t.router2D(3, 1));
    EXPECT_EQ(t.neighbor(t.router2D(2, 3), North), t.router2D(2, 0));
    EXPECT_EQ(t.neighbor(t.router2D(2, 0), South), t.router2D(2, 3));
}

TEST(Torus, WrapLinksAreDatelines)
{
    Lattice t = Lattice::torus2D(4);
    EXPECT_TRUE(t.isWrapLink(t.router2D(3, 0), East));
    EXPECT_TRUE(t.isWrapLink(t.router2D(0, 0), West));
    EXPECT_TRUE(t.isWrapLink(t.router2D(1, 3), North));
    EXPECT_TRUE(t.isWrapLink(t.router2D(1, 0), South));
    EXPECT_FALSE(t.isWrapLink(t.router2D(1, 0), East));
    // A plain mesh has no wrap links at all.
    Lattice m = Lattice::mesh2D(4);
    EXPECT_FALSE(m.isWrapLink(m.router2D(3, 0), East));
}

TEST(Torus, WrapDistance)
{
    Lattice t = Lattice::torus2D(8);
    // Opposite corners are only (1 + 1) hops on the torus.
    EXPECT_EQ(t.distance(t.router2D(0, 0), t.router2D(7, 7)), 2);
    EXPECT_EQ(t.distance(t.router2D(0, 0), t.router2D(4, 4)), 8);
    EXPECT_EQ(t.distance(t.router2D(1, 1), t.router2D(6, 1)), 3);
}

TEST(Torus, CapacityDoubles)
{
    EXPECT_DOUBLE_EQ(Lattice::torus2D(8).uniformCapacity(), 1.0);
    EXPECT_DOUBLE_EQ(Lattice::mesh2D(8).uniformCapacity(), 0.5);
}

TEST(Torus, RoutingTakesShortestWay)
{
    Lattice t = Lattice::torus2D(8);
    DorRouting r(t);
    auto route = [&](sim::NodeId here, sim::NodeId dest) {
        auto f = toward(dest);
        return r.route(here, f);
    };
    // x: 1 -> 6 is shorter going West (3 hops) than East (5).
    EXPECT_EQ(route(t.router2D(1, 0), t.router2D(6, 0)), West);
    EXPECT_EQ(route(t.router2D(6, 0), t.router2D(1, 0)), East);
    // Exactly half-way: tie broken East.
    EXPECT_EQ(route(t.router2D(0, 0), t.router2D(4, 0)), East);
    // X before Y.
    EXPECT_EQ(route(t.router2D(0, 0), t.router2D(7, 5)), West);
    EXPECT_EQ(route(t.router2D(7, 0), t.router2D(7, 5)), South);
    EXPECT_EQ(route(t.router2D(7, 0), t.router2D(7, 2)), North);
    EXPECT_EQ(route(t.router2D(7, 7), t.router2D(7, 5)), South);
    EXPECT_EQ(route(t.router2D(3, 3), t.router2D(3, 3)), Local);
}

TEST(Torus, RoutingReachesEveryPairMinimally)
{
    Lattice t = Lattice::torus2D(6);
    DorRouting r(t);
    for (sim::NodeId src = 0; src < t.numRouters(); src++) {
        for (sim::NodeId dest = 0; dest < t.numRouters(); dest++) {
            sim::NodeId cur = src;
            int hops = 0;
            auto f = toward(dest);
            while (cur != dest) {
                int port = r.route(cur, f);
                ASSERT_NE(port, Local);
                cur = t.neighbor(cur, port);
                ASSERT_LE(++hops, 6);
            }
            EXPECT_EQ(hops, t.distance(src, dest));
        }
    }
}

TEST(Torus, DatelinePromotesVcClass)
{
    Lattice t = Lattice::torus2D(4);
    DorRouting r(t);
    // Crossing the East wrap link sets the X dateline bit.
    EXPECT_EQ(r.nextClass(toward(0), t.router2D(3, 0), East), dl(0));
    EXPECT_EQ(r.nextClass(toward(0), t.router2D(1, 0), East), 0);
    // Y dateline sets the Y bit, preserving the X bit.
    EXPECT_EQ(r.nextClass(toward(0, dl(0)), t.router2D(0, 3), North),
              dl(0) | dl(1));
    // Ejection clears the class.
    EXPECT_EQ(r.nextClass(toward(0, dl(0) | dl(1)), t.router2D(0, 0),
                          Local),
              0);
}

TEST(Torus, VcMaskSplitsClasses)
{
    Lattice t = Lattice::torus2D(4);
    DorRouting r(t);
    EXPECT_EQ(r.minVcs(), 2);
    // 4 VCs: class 0 -> VCs {0,1}, crossed -> {2,3}.
    EXPECT_EQ(r.vcMask(toward(t.router2D(3, 0)), t.router2D(1, 0),
                       East, 4),
              0x3u);
    EXPECT_EQ(r.vcMask(toward(t.router2D(3, 0), dl(0)),
                       t.router2D(1, 0), East, 4),
              0xcu);
    // Crossing link itself already uses the promoted class.
    EXPECT_EQ(r.vcMask(toward(t.router2D(0, 0)), t.router2D(3, 0),
                       East, 4),
              0xcu);
    // Ejection unrestricted.
    EXPECT_EQ(r.vcMask(toward(t.router2D(0, 0), dl(0)),
                       t.router2D(0, 0), Local, 4),
              ~0u);
}

namespace {

api::SimConfig
torusConfig(double load, const std::string &pattern = "uniform")
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.topology = "torus";
    cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.pattern = pattern;
    cfg.net.warmup = 1000;
    cfg.net.samplePackets = 3000;
    cfg.net.seed = 3;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 200000;
    return cfg;
}

} // namespace

TEST(Torus, DeliversUnderLoad)
{
    // Wrap-heavy load on a small torus: the dateline classes keep it
    // deadlock-free and everything drains.
    for (const char *pattern : {"uniform", "tornado", "bitcomp"}) {
        auto res = api::runSimulation(torusConfig(0.3, pattern));
        EXPECT_TRUE(res.drained) << "pattern " << pattern;
        EXPECT_EQ(res.sampleReceived, res.sampleSize);
    }
}

TEST(Torus, ShorterPathsThanMesh)
{
    auto torus = api::runSimulation(torusConfig(0.1));
    auto cfg = torusConfig(0.1);
    cfg.net.topology = "mesh";
    auto mesh = api::runSimulation(cfg);
    ASSERT_TRUE(torus.drained && mesh.drained);
    // Wraparound shortens average distance -> lower zero-load latency.
    EXPECT_LT(torus.avgLatency, mesh.avgLatency);
}

TEST(Torus, NonSpecVcRouterAlsoRuns)
{
    auto cfg = torusConfig(0.3);
    cfg.net.router.model = router::RouterModel::VirtualChannel;
    auto res = api::runSimulation(cfg);
    EXPECT_TRUE(res.drained);
}

TEST(TorusDeath, WormholeRejected)
{
    auto cfg = torusConfig(0.2);
    cfg.net.router.model = router::RouterModel::Wormhole;
    cfg.net.router.numVcs = 1;
    try {
        net::Network n(cfg.net);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("dateline"),
                  std::string::npos)
            << "message: " << e.what();
    }
}
