/**
 * @file
 * Partitioner unit tests: block bounds, plane alignment, capacity
 * weighting, worker clamping, and owner lookups.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "par/partition.hh"
#include "topo/lattice.hh"

using namespace pdr;
using par::Partitioner;
using par::Scheme;

namespace {

/** Blocks must tile [0, numRouters) and [0, numNodes) contiguously. */
void
expectCovers(const Partitioner &part, const topo::Lattice &lat)
{
    const auto &blocks = part.blocks();
    ASSERT_FALSE(blocks.empty());
    EXPECT_EQ(blocks.front().routerLo, 0);
    EXPECT_EQ(blocks.front().nodeLo, 0);
    EXPECT_EQ(blocks.back().routerHi, lat.numRouters());
    EXPECT_EQ(blocks.back().nodeHi, lat.numNodes());
    for (std::size_t i = 0; i < blocks.size(); i++) {
        EXPECT_GT(blocks[i].numRouters(), 0) << "block " << i;
        EXPECT_EQ(blocks[i].numNodes(),
                  blocks[i].numRouters() * lat.concentration());
        EXPECT_EQ(blocks[i].nodeLo,
                  blocks[i].routerLo * lat.concentration());
        if (i > 0) {
            EXPECT_EQ(blocks[i].routerLo, blocks[i - 1].routerHi);
            EXPECT_EQ(blocks[i].nodeLo, blocks[i - 1].nodeHi);
        }
    }
}

} // namespace

TEST(PartitionerTest, OneWorkerIsTheWholeLattice)
{
    auto lat = topo::Lattice::mesh2D(8);
    Partitioner part(lat, 1);
    EXPECT_EQ(part.workers(), 1);
    expectCovers(part, lat);
    EXPECT_EQ(part.blocks()[0].numRouters(), 64);
    EXPECT_EQ(part.ownerOfRouter(0), 0);
    EXPECT_EQ(part.ownerOfRouter(63), 0);
}

TEST(PartitionerTest, PlanesAreAlignedAndBalanced)
{
    // 8x8 mesh: 8 planes of 8 routers along the highest dimension.
    auto lat = topo::Lattice::mesh2D(8);
    Partitioner part(lat, 4, Scheme::Planes);
    EXPECT_EQ(part.workers(), 4);
    expectCovers(part, lat);
    for (const auto &b : part.blocks()) {
        EXPECT_EQ(b.numRouters(), 16);      // 2 planes each.
        EXPECT_EQ(b.routerLo % 8, 0);       // Plane-aligned.
    }
}

TEST(PartitionerTest, UnevenPlaneCountsSpreadByAtMostOne)
{
    auto lat = topo::Lattice::mesh2D(8);    // 8 planes.
    Partitioner part(lat, 3, Scheme::Planes);
    EXPECT_EQ(part.workers(), 3);
    expectCovers(part, lat);
    int min_planes = 9, max_planes = 0;
    for (const auto &b : part.blocks()) {
        EXPECT_EQ(b.routerLo % 8, 0);
        int planes = b.numRouters() / 8;
        min_planes = std::min(min_planes, planes);
        max_planes = std::max(max_planes, planes);
    }
    EXPECT_LE(max_planes - min_planes, 1);
}

TEST(PartitionerTest, WorkersClampToPlaneCount)
{
    // 4x4 mesh has 4 planes: more workers than planes collapse.
    auto lat = topo::Lattice::mesh2D(4);
    Partitioner part(lat, 16, Scheme::Planes);
    EXPECT_EQ(part.workers(), 4);
    expectCovers(part, lat);
}

TEST(PartitionerTest, WeightedBalancesAtRouterGranularity)
{
    // cmesh 4x4 c=4 (16 routers, 64 nodes), 3 workers.  Plane-aligned
    // blocks can only be 4/4/8 or 4/8/4 routers; the weighted scheme
    // may split mid-plane and must balance within one router.
    auto lat = topo::Lattice::cmesh(4, 4);
    Partitioner planes(lat, 3, Scheme::Planes);
    Partitioner weighted(lat, 3, Scheme::Weighted);
    expectCovers(planes, lat);
    expectCovers(weighted, lat);

    int wmin = lat.numRouters(), wmax = 0;
    for (const auto &b : weighted.blocks()) {
        wmin = std::min(wmin, b.numRouters());
        wmax = std::max(wmax, b.numRouters());
    }
    EXPECT_LE(wmax - wmin, 1);

    int pmax = 0;
    for (const auto &b : planes.blocks())
        pmax = std::max(pmax, b.numRouters());
    EXPECT_GT(pmax, wmax);  // Plane alignment costs balance here.
}

TEST(PartitionerTest, WeightedClampsToRouterCount)
{
    auto lat = topo::Lattice::mesh2D(2);    // 4 routers.
    Partitioner part(lat, 64, Scheme::Weighted);
    EXPECT_EQ(part.workers(), 4);
    expectCovers(part, lat);
}

TEST(PartitionerTest, KAry3CubeSlicesAlongHighestDim)
{
    auto lat = topo::Lattice::kAryNCube(3, 4);  // 64 routers, 4 planes
    Partitioner part(lat, 2, Scheme::Planes);
    EXPECT_EQ(part.workers(), 2);
    expectCovers(part, lat);
    EXPECT_EQ(part.blocks()[0].numRouters(), 32);
    EXPECT_EQ(part.blocks()[0].routerLo % 16, 0);  // 16 routers/plane.
}

TEST(PartitionerTest, OwnerLookupsMatchBlocks)
{
    auto lat = topo::Lattice::cmesh(4, 2);  // 16 routers, 32 nodes.
    Partitioner part(lat, 3, Scheme::Weighted);
    for (int r = 0; r < lat.numRouters(); r++) {
        int owner = part.ownerOfRouter(r);
        const auto &b = part.blocks()[std::size_t(owner)];
        EXPECT_GE(r, b.routerLo);
        EXPECT_LT(r, b.routerHi);
    }
    int nodes = lat.numNodes(), routers = lat.numRouters();
    for (int n = 0; n < nodes; n++) {
        int owner = part.ownerOfNode(n);
        EXPECT_EQ(owner, part.ownerOfRouter(lat.routerOf(n)));
        // Component-id space: [sources | routers | sinks].
        EXPECT_EQ(part.ownerOfComp(std::size_t(n)), owner);
        EXPECT_EQ(part.ownerOfComp(std::size_t(nodes + routers + n)),
                  owner);
    }
    for (int r = 0; r < routers; r++) {
        EXPECT_EQ(part.ownerOfComp(std::size_t(nodes + r)),
                  part.ownerOfRouter(r));
    }
}

TEST(PartitionerTest, RejectsNonPositiveWorkerCounts)
{
    auto lat = topo::Lattice::mesh2D(4);
    EXPECT_THROW(Partitioner(lat, 0), std::invalid_argument);
    EXPECT_THROW(Partitioner(lat, -3), std::invalid_argument);
}

TEST(PartitionerTest, SchemeNamesRoundTrip)
{
    EXPECT_EQ(par::schemeFromString("planes"), Scheme::Planes);
    EXPECT_EQ(par::schemeFromString("weighted"), Scheme::Weighted);
    EXPECT_STREQ(par::toString(Scheme::Planes), "planes");
    EXPECT_STREQ(par::toString(Scheme::Weighted), "weighted");
    EXPECT_THROW(par::schemeFromString("hilbert"),
                 std::invalid_argument);
}
