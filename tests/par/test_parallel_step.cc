/**
 * @file
 * Determinism harness for the partitioned parallel engine: a Network
 * driven by par::ParallelStepper at any worker count must be
 * bit-identical -- delivered-packet traces, latency statistics, router
 * counters, accepted rate -- to the same Network stepped serially.
 * Also covers the sample-space boundary (the Ordered source phase), a
 * deadlock soak under partitioned stepping, and the runSimulation
 * par.workers path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/simulation.hh"
#include "net/network.hh"
#include "par/stepper.hh"

using namespace pdr;

namespace {

net::NetworkConfig
baseConfig(int k = 8)
{
    net::NetworkConfig cfg;
    cfg.k = k;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.packetLength = 5;
    cfg.warmup = 100;
    cfg.samplePackets = 600;
    cfg.seed = 123;
    return cfg;
}

/**
 * Step a serial and a partitioned network in lockstep and require
 * identical observable behavior, cycle for cycle.
 */
void
expectParallelLockstep(const net::NetworkConfig &cfg, int workers,
                       par::Scheme scheme, sim::Cycle cycles)
{
    net::Network serial(cfg);
    net::Network parallel(cfg);
    par::ParConfig pcfg;
    pcfg.workers = workers;
    pcfg.scheme = scheme;
    par::ParallelStepper stepper(parallel, pcfg);
    ASSERT_GE(stepper.workers(), 2) << "partition collapsed to serial";
    EXPECT_GT(stepper.crossChannels(), 0u);

    std::vector<traffic::Delivery> st, pt;
    serial.recordDeliveries(&st);
    parallel.recordDeliveries(&pt);

    for (sim::Cycle c = 0; c < cycles; c++) {
        serial.step();
        stepper.step();
        ASSERT_EQ(st.size(), pt.size())
            << "delivery count diverged at cycle " << c;
    }

    EXPECT_GT(st.size(), 0u) << "test drove no traffic";
    for (std::size_t i = 0; i < st.size(); i++) {
        ASSERT_EQ(st[i].packet, pt[i].packet) << "delivery " << i;
        ASSERT_EQ(st[i].dest, pt[i].dest) << "delivery " << i;
        ASSERT_EQ(st[i].at, pt[i].at) << "delivery " << i;
        ASSERT_EQ(st[i].latency, pt[i].latency) << "delivery " << i;
    }

    auto sl = serial.latency(), pl = parallel.latency();
    EXPECT_EQ(sl.count(), pl.count());
    EXPECT_DOUBLE_EQ(sl.mean(), pl.mean());
    EXPECT_DOUBLE_EQ(sl.percentile(99.0), pl.percentile(99.0));
    EXPECT_EQ(sl.unmeasuredCount(), pl.unmeasuredCount());

    auto sr = serial.routerTotals(), pr = parallel.routerTotals();
    EXPECT_EQ(sr.flitsIn, pr.flitsIn);
    EXPECT_EQ(sr.flitsOut, pr.flitsOut);
    EXPECT_EQ(sr.headGrants, pr.headGrants);
    EXPECT_EQ(sr.vaGrants, pr.vaGrants);
    EXPECT_EQ(sr.specSaWins, pr.specSaWins);
    EXPECT_EQ(sr.creditStallCycles, pr.creditStallCycles);

    EXPECT_EQ(serial.acceptedFlitRate(), parallel.acceptedFlitRate());
    EXPECT_EQ(serial.controller().tagged(),
              parallel.controller().tagged());
    EXPECT_EQ(serial.controller().received(),
              parallel.controller().received());
}

} // namespace

TEST(ParallelStepTest, TwoWorkersMatchSerialOnTheMesh)
{
    auto cfg = baseConfig();
    cfg.setOfferedFraction(0.3);
    expectParallelLockstep(cfg, 2, par::Scheme::Planes, 3000);
}

TEST(ParallelStepTest, FourWorkersMatchSerialNearSaturation)
{
    auto cfg = baseConfig();
    cfg.setOfferedFraction(0.7);
    expectParallelLockstep(cfg, 4, par::Scheme::Planes, 2500);
}

TEST(ParallelStepTest, WeightedSchemeMatchesSerial)
{
    auto cfg = baseConfig();
    cfg.setOfferedFraction(0.4);
    // 3 weighted workers split the 8x8 mesh mid-plane.
    expectParallelLockstep(cfg, 3, par::Scheme::Weighted, 3000);
}

TEST(ParallelStepTest, TorusWrapLinksCrossPartitions)
{
    auto cfg = baseConfig();
    cfg.topology = "torus";
    cfg.setOfferedFraction(0.3);
    expectParallelLockstep(cfg, 4, par::Scheme::Planes, 2500);
}

TEST(ParallelStepTest, ConcentratedMeshWeighted)
{
    auto cfg = baseConfig(4);
    cfg.topology = "cmesh";
    cfg.router.numPorts = 0;
    cfg.setOfferedFraction(0.3);
    expectParallelLockstep(cfg, 3, par::Scheme::Weighted, 3000);
}

TEST(ParallelStepTest, KAry3CubeDorFourWorkers)
{
    auto cfg = baseConfig(4);
    cfg.topology = "kary3cube";
    cfg.router.numPorts = 0;
    cfg.setOfferedFraction(0.3);
    expectParallelLockstep(cfg, 4, par::Scheme::Planes, 2500);
}

TEST(ParallelStepTest, BurstyArrivalsMatchSerial)
{
    auto cfg = baseConfig();
    cfg.burstOn = 30;
    cfg.burstOff = 70;
    cfg.setOfferedFraction(0.4);
    expectParallelLockstep(cfg, 4, par::Scheme::Planes, 3000);
}

TEST(ParallelStepTest, ObliviousRoutingDrawsStayAligned)
{
    auto cfg = baseConfig();
    cfg.routing = "o1turn";
    cfg.pattern = "transpose";
    cfg.setOfferedFraction(0.4);
    expectParallelLockstep(cfg, 4, par::Scheme::Planes, 2500);
}

TEST(ParallelStepTest, SampleBoundaryIsOrderExact)
{
    // A tiny sample space on a big node set: the quota (50) runs out
    // mid-cycle with 64 eligible sources, so which packets are tagged
    // depends on the serial node order -- the Ordered source phase
    // must reproduce it exactly.
    auto cfg = baseConfig();
    cfg.warmup = 50;
    cfg.samplePackets = 50;
    cfg.setOfferedFraction(0.6);
    expectParallelLockstep(cfg, 4, par::Scheme::Planes, 2000);
}

TEST(ParallelStepTest, RunSimulationMatchesAcrossWorkerCounts)
{
    api::SimConfig cfg;
    cfg.net = baseConfig();
    cfg.net.warmup = 200;
    cfg.net.samplePackets = 400;
    cfg.net.setOfferedFraction(0.35);
    cfg.maxCycles = 50000;

    cfg.parWorkers = 1;
    auto serial = api::runSimulation(cfg);
    for (int workers : {2, 4}) {
        cfg.parWorkers = workers;
        auto par_res = api::runSimulation(cfg);
        EXPECT_DOUBLE_EQ(serial.avgLatency, par_res.avgLatency)
            << workers;
        EXPECT_DOUBLE_EQ(serial.p99Latency, par_res.p99Latency);
        EXPECT_DOUBLE_EQ(serial.acceptedFraction,
                         par_res.acceptedFraction);
        EXPECT_EQ(serial.cycles, par_res.cycles);
        EXPECT_EQ(serial.sampleReceived, par_res.sampleReceived);
        EXPECT_EQ(serial.drained, par_res.drained);
    }
    cfg.parWorkers = 2;
    cfg.parScheme = "weighted";
    auto weighted = api::runSimulation(cfg);
    EXPECT_DOUBLE_EQ(serial.avgLatency, weighted.avgLatency);
    EXPECT_EQ(serial.cycles, weighted.cycles);
}

TEST(ParallelStepTest, ReRegisteringTheSameTraceKeepsShards)
{
    // recordDeliveries() re-passing the already-bound pointer still
    // re-points every sink at the shared vector; the stepper must
    // restore its per-worker shard redirection before the next
    // parallel sink phase (keyed off the registration generation).
    auto cfg = baseConfig();
    cfg.setOfferedFraction(0.3);
    net::Network serial(cfg);
    net::Network parallel(cfg);
    par::ParConfig pcfg;
    pcfg.workers = 4;
    par::ParallelStepper stepper(parallel, pcfg);

    std::vector<traffic::Delivery> st, pt;
    serial.recordDeliveries(&st);
    parallel.recordDeliveries(&pt);
    serial.run(1000);
    stepper.run(1000);

    parallel.recordDeliveries(&pt);     // Same pointer, re-registered.
    serial.recordDeliveries(&st);
    serial.run(1500);
    stepper.run(1500);

    ASSERT_EQ(st.size(), pt.size());
    for (std::size_t i = 0; i < st.size(); i++) {
        ASSERT_EQ(st[i].packet, pt[i].packet) << i;
        ASSERT_EQ(st[i].at, pt[i].at) << i;
    }
}

TEST(ParallelStepTest, StepperDetachRestoresSerialStepping)
{
    // Drive the first half through a stepper, destroy it, finish with
    // Network::step(): the run must match an all-serial twin.
    auto cfg = baseConfig();
    cfg.setOfferedFraction(0.3);
    net::Network serial(cfg);
    net::Network mixed(cfg);

    std::vector<traffic::Delivery> st, mt;
    serial.recordDeliveries(&st);
    mixed.recordDeliveries(&mt);

    {
        par::ParConfig pcfg;
        pcfg.workers = 4;
        par::ParallelStepper stepper(mixed, pcfg);
        stepper.run(1500);
    }
    mixed.run(1500);
    serial.run(3000);

    ASSERT_EQ(st.size(), mt.size());
    for (std::size_t i = 0; i < st.size(); i++) {
        ASSERT_EQ(st[i].packet, mt[i].packet) << i;
        ASSERT_EQ(st[i].at, mt[i].at) << i;
    }
    EXPECT_EQ(serial.flitPool().liveCount(),
              mixed.flitPool().liveCount());
}

TEST(ParallelStepDeadlockSoak, KAry3CubeAtMaxInjection)
{
    // 50k-cycle forward-progress soak far past saturation, under
    // 4-worker partitioned stepping (the partitioned twin of the
    // serial DeadlockSoak suite in tests/net/test_lockstep.cc).
    net::NetworkConfig cfg;
    cfg.k = 4;
    cfg.topology = "kary3cube";
    cfg.routing = "dor";
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numPorts = 0;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.packetLength = 5;
    cfg.warmup = 1000;
    cfg.samplePackets = 1u << 30;   // Never stop sampling.
    cfg.seed = 7;
    cfg.injectionRate = std::min(1.0, cfg.capacity());

    net::Network net(cfg);
    par::ParConfig pcfg;
    pcfg.workers = 4;
    par::ParallelStepper stepper(net, pcfg);
    ASSERT_EQ(stepper.workers(), 4);

    std::vector<traffic::Delivery> trace;
    net.recordDeliveries(&trace);

    constexpr sim::Cycle kSoak = 50000;
    constexpr sim::Cycle kWindow = 10000;
    std::size_t last = 0;
    for (sim::Cycle w = 0; w < kSoak / kWindow; w++) {
        stepper.run(kWindow);
        ASSERT_GT(trace.size(), last)
            << "no packet delivered in cycles [" << w * kWindow
            << ", " << (w + 1) * kWindow << ") -- deadlock?";
        last = trace.size();
    }
}
