/**
 * @file
 * Engine-profiler tests: the read-only contract (results bit-identical
 * with profiling on or off, at any worker count), determinism of the
 * tick-weight signal, the telescoping of per-epoch weight deltas, the
 * report, and the NDJSON round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/simulation.hh"
#include "prof/report.hh"

using namespace pdr;

namespace {

api::SimConfig
tinyConfig(double load = 0.4)
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.warmup = 500;
    cfg.net.samplePackets = 1000;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 100000;
    return cfg;
}

api::SimConfig
k8Config(const std::string &pattern, double load)
{
    api::SimConfig cfg;
    cfg.net.k = 8;
    cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.warmup = 300;
    cfg.net.samplePackets = 1000;
    cfg.net.pattern = pattern;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 30000;
    return cfg;
}

void
expectSameResults(const api::SimResults &a, const api::SimResults &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.sampleReceived, b.sampleReceived);
    EXPECT_EQ(a.sampleSize, b.sampleSize);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_DOUBLE_EQ(a.acceptedFraction, b.acceptedFraction);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.routers.flitsIn, b.routers.flitsIn);
    EXPECT_EQ(a.routers.flitsOut, b.routers.flitsOut);
    EXPECT_EQ(a.routers.headGrants, b.routers.headGrants);
    EXPECT_EQ(a.routers.vaGrants, b.routers.vaGrants);
    EXPECT_EQ(a.routers.specSaAttempts, b.routers.specSaAttempts);
    EXPECT_EQ(a.routers.specSaWins, b.routers.specSaWins);
    EXPECT_EQ(a.routers.specSaUseful, b.routers.specSaUseful);
    EXPECT_EQ(a.routers.creditStallCycles,
              b.routers.creditStallCycles);
    EXPECT_EQ(a.routers.bufOccupancy, b.routers.bufOccupancy);
}

} // namespace

TEST(Prof, ProfilingIsReadOnly)
{
    // The hard contract: identical SimResults with the profiler on or
    // off, field by field, at 1, 2 and 4 workers.
    api::SimConfig off = tinyConfig();
    auto base = api::runSimulation(off);
    EXPECT_EQ(base.prof, nullptr);

    for (int w : {1, 2, 4}) {
        api::SimConfig on = tinyConfig();
        on.prof.enable = true;
        on.parWorkers = w;
        auto res = api::runSimulation(on);
        expectSameResults(base, res);
        ASSERT_NE(res.prof, nullptr);
        EXPECT_GT(res.prof->epochs.size(), 0u);
    }
}

TEST(Prof, WeightsIdenticalAcrossWorkerCounts)
{
    // The tick-weight signal depends only on the wake-table schedule,
    // so the merged shards -- and every per-epoch delta -- must be
    // byte-identical for any worker count.
    std::shared_ptr<const prof::Capture> caps[3];
    const int workers[] = {1, 2, 4};
    for (int i = 0; i < 3; i++) {
        api::SimConfig cfg = tinyConfig();
        cfg.prof.enable = true;
        cfg.parWorkers = workers[i];
        caps[i] = api::runSimulation(cfg).prof;
        ASSERT_NE(caps[i], nullptr);
    }
    for (int i = 1; i < 3; i++) {
        EXPECT_EQ(caps[0]->cycles, caps[i]->cycles);
        EXPECT_EQ(caps[0]->weights, caps[i]->weights);
        ASSERT_EQ(caps[0]->epochs.size(), caps[i]->epochs.size());
        for (std::size_t e = 0; e < caps[0]->epochs.size(); e++) {
            EXPECT_EQ(caps[0]->epochs[e].cycle,
                      caps[i]->epochs[e].cycle);
            EXPECT_EQ(caps[0]->epochs[e].weights,
                      caps[i]->epochs[e].weights);
        }
    }
}

TEST(Prof, EpochWeightsTelescopeToTotals)
{
    api::SimConfig cfg = tinyConfig();
    cfg.prof.enable = true;
    cfg.telem.interval = 300;
    auto cap = api::runSimulation(cfg).prof;
    ASSERT_NE(cap, nullptr);
    ASSERT_GT(cap->epochs.size(), 1u);
    std::vector<std::uint64_t> sum(cap->weights.size(), 0);
    for (const auto &e : cap->epochs) {
        ASSERT_EQ(e.weights.size(), sum.size());
        for (std::size_t r = 0; r < sum.size(); r++)
            sum[r] += e.weights[r];
    }
    EXPECT_EQ(sum, cap->weights);
    // Somebody actually ticked.
    std::uint64_t total = 0;
    for (auto w : cap->weights)
        total += w;
    EXPECT_GT(total, 0u);
}

TEST(Prof, PhaseTimesCoverEachEpoch)
{
    api::SimConfig cfg = tinyConfig();
    cfg.prof.enable = true;
    cfg.parWorkers = 2;
    auto cap = api::runSimulation(cfg).prof;
    ASSERT_NE(cap, nullptr);
    EXPECT_GE(cap->workers, 1);
    for (const auto &e : cap->epochs) {
        ASSERT_EQ(e.tickUs.size(), std::size_t(cap->workers));
        ASSERT_EQ(e.drainUs.size(), std::size_t(cap->workers));
        ASSERT_EQ(e.barrierUs.size(), std::size_t(cap->workers));
        ASSERT_EQ(e.idleUs.size(), std::size_t(cap->workers));
    }
    // Worker 0 spent some wall time ticking overall (the values are
    // host-clock readings, so only coarse properties are testable).
    std::uint64_t tick0 = 0;
    for (const auto &e : cap->epochs)
        tick0 += e.tickUs[0];
    EXPECT_GT(tick0, 0u);
}

TEST(Prof, HotspotMoreImbalancedThanUniform)
{
    // The acceptance check behind `pdr profile`: under a hotspot
    // pattern the plane-aligned tick-weight split is strictly more
    // imbalanced than under uniform traffic, and the ratio -- being a
    // pure function of the deterministic weights -- is identical at
    // any execution worker count.
    api::SimConfig hot = k8Config("hotspot", 0.85);
    hot.prof.enable = true;
    auto hotCap = api::runSimulation(hot).prof;
    ASSERT_NE(hotCap, nullptr);

    api::SimConfig uni = k8Config("uniform", 0.85);
    uni.prof.enable = true;
    auto uniCap = api::runSimulation(uni).prof;
    ASSERT_NE(uniCap, nullptr);

    const auto lat = hot.net.makeLattice();
    const double hotImb =
        prof::weightImbalance(hotCap->weights, lat, 4);
    const double uniImb =
        prof::weightImbalance(uniCap->weights, lat, 4);
    EXPECT_GT(hotImb, uniImb);
    EXPECT_GT(hotImb, 1.0);

    hot.parWorkers = 2;
    auto hotCap2 = api::runSimulation(hot).prof;
    ASSERT_NE(hotCap2, nullptr);
    EXPECT_EQ(hotCap->weights, hotCap2->weights);
    EXPECT_DOUBLE_EQ(
        hotImb, prof::weightImbalance(hotCap2->weights, lat, 4));
}

TEST(Prof, ReportNamesTheVerdict)
{
    api::SimConfig cfg = k8Config("hotspot", 0.85);
    cfg.prof.enable = true;
    auto res = api::runSimulation(cfg);
    ASSERT_NE(res.prof, nullptr);
    const std::string report = prof::buildReport(
        *res.prof, cfg.net.makeLattice(), cfg.prof);
    EXPECT_NE(report.find("per-worker phase wall time"),
              std::string::npos);
    EXPECT_NE(report.find("hottest routers"), std::string::npos);
    EXPECT_NE(report.find("weight_imbalance"), std::string::npos);
    EXPECT_NE(report.find("verdict: planes split puts"),
              std::string::npos);
    EXPECT_NE(report.find("weighted split would cut"),
              std::string::npos);
}

TEST(Prof, StreamRoundTripsThroughParser)
{
    // A profiled run with a stream destination writes worker_window /
    // weight_heatmap records even with the telemetry sampler off;
    // parseStream must rebuild the deterministic half of the capture
    // exactly.
    const std::string out = "pdr_test_prof_roundtrip.ndjson";
    api::SimConfig cfg = tinyConfig();
    cfg.prof.enable = true;
    cfg.telem.out = out;    // Note: telem.enable stays false.
    auto res = api::runSimulation(cfg);
    ASSERT_NE(res.prof, nullptr);

    std::ifstream in(out);
    ASSERT_TRUE(bool(in));
    auto parsed = prof::parseStream(in);
    std::remove(out.c_str());

    EXPECT_EQ(parsed.workers, res.prof->workers);
    EXPECT_EQ(parsed.epochs.size(), res.prof->epochs.size());
    EXPECT_EQ(parsed.weights, res.prof->weights);
    for (std::size_t e = 0; e < parsed.epochs.size(); e++) {
        EXPECT_EQ(parsed.epochs[e].cycle, res.prof->epochs[e].cycle);
        EXPECT_EQ(parsed.epochs[e].weights,
                  res.prof->epochs[e].weights);
        EXPECT_EQ(parsed.epochs[e].tickUs, res.prof->epochs[e].tickUs);
    }
}

TEST(Prof, StreamByteIdenticalHeatmapAcrossWorkers)
{
    // The weight_heatmap lines are simulation output: byte-identical
    // at any worker count (worker_window lines are wall clock and are
    // excluded).
    std::string heatmaps[2];
    const int workers[] = {1, 2};
    for (int i = 0; i < 2; i++) {
        const std::string out =
            std::string("pdr_test_prof_hm") + (i ? "2" : "1") +
            ".ndjson";
        api::SimConfig cfg = tinyConfig();
        cfg.prof.enable = true;
        cfg.parWorkers = workers[i];
        cfg.telem.out = out;
        api::runSimulation(cfg);
        std::ifstream in(out);
        ASSERT_TRUE(bool(in));
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("\"type\": \"weight_heatmap\"") !=
                std::string::npos)
                heatmaps[i] += line + "\n";
        }
        std::remove(out.c_str());
    }
    EXPECT_FALSE(heatmaps[0].empty());
    EXPECT_EQ(heatmaps[0], heatmaps[1]);
}

TEST(Prof, ConfigValidates)
{
    prof::Config c;
    EXPECT_NO_THROW(c.validate());
    c.top = 0;
    EXPECT_THROW(c.validate(), std::exception);
    c.top = 8;
    c.reportWorkers = 0;
    EXPECT_THROW(c.validate(), std::exception);
    c.reportWorkers = 4;
    EXPECT_NO_THROW(c.validate());
    prof::Config d;
    EXPECT_TRUE(c == d);
    d.top = 9;
    EXPECT_TRUE(c != d);
}
