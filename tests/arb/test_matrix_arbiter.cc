/** @file Unit and property tests for the matrix arbiter (Figure 10). */

#include <gtest/gtest.h>

#include <vector>

#include "arb/matrix_arbiter.hh"
#include "arb/scalar_oracle.hh"
#include "common/rng.hh"

using namespace pdr;
using namespace pdr::arb;

namespace {

arb::ReqRow
mask(int n, std::initializer_list<int> set)
{
    arb::ReqRow m(n, false);
    for (int i : set)
        m[std::size_t(i)] = true;
    return m;
}

} // namespace

TEST(MatrixArbiter, NoRequestsNoGrant)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(mask(4, {})), NoGrant);
}

TEST(MatrixArbiter, SingleRequestWins)
{
    MatrixArbiter arb(4);
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(arb.arbitrate(mask(4, {i})), i);
}

TEST(MatrixArbiter, InitialPriorityIsIndexOrder)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(mask(4, {1, 3})), 1);
    EXPECT_EQ(arb.arbitrate(mask(4, {0, 1, 2, 3})), 0);
}

TEST(MatrixArbiter, WinnerDropsToLowestPriority)
{
    MatrixArbiter arb(3);
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 1})), 0);
    arb.update(0);
    // 0 is now lowest: 1 beats 0, 2 beats 0.
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 1})), 1);
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 2})), 2);
    arb.update(1);
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 1})), 0);
}

TEST(MatrixArbiter, LeastRecentlyServedOrder)
{
    MatrixArbiter arb(4);
    auto all = mask(4, {0, 1, 2, 3});
    std::vector<int> order;
    for (int i = 0; i < 8; i++) {
        int w = arb.arbitrate(all);
        ASSERT_NE(w, NoGrant);
        arb.update(w);
        order.push_back(w);
    }
    // With all requesting, LRS degenerates to round-robin.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(MatrixArbiter, ArbitrateIsPure)
{
    // arbitrate() must not mutate priority state.
    MatrixArbiter arb(3);
    auto req = mask(3, {0, 1, 2});
    EXPECT_EQ(arb.arbitrate(req), 0);
    EXPECT_EQ(arb.arbitrate(req), 0);
    EXPECT_EQ(arb.arbitrate(req), 0);
}

TEST(MatrixArbiter, SizeOne)
{
    MatrixArbiter arb(1);
    EXPECT_EQ(arb.arbitrate(mask(1, {0})), 0);
    arb.update(0);
    EXPECT_EQ(arb.arbitrate(mask(1, {0})), 0);
}

namespace {

/**
 * Golden grant + priority-state sequence.  The matrix priority state is
 * a total order maintained as "least recently served first wins", so
 * the expected winners are derived by hand from the list model (winner
 * moves to the back); the final dumpState bytes pin the exact
 * serialized upper-triangle evolution the equivalence tests rely on.
 * Applied to both the bitmask engine and the scalar oracle so a
 * semantic drift in either is caught against an independent reference.
 */
template <typename Arb>
void
runGoldenSequence()
{
    Arb arb(4);
    const struct {
        std::initializer_list<int> req;
        int winner;
    } steps[] = {
        // Order starts [0,1,2,3] (highest priority first).
        {{0, 1, 2, 3}, 0},  // -> [1,2,3,0]
        {{0, 1, 2, 3}, 1},  // -> [2,3,0,1]
        {{0, 3}, 3},        // -> [2,0,1,3]
        {{1, 3}, 1},        // -> [2,0,3,1]
        {{0, 1, 2}, 2},     // -> [0,3,1,2]
        {{1, 2, 3}, 3},     // -> [0,1,2,3]
        {{2}, 2},           // -> [0,1,3,2]
        {{0, 1, 2, 3}, 0},  // -> [1,3,2,0]
        {{0, 2, 3}, 3},     // -> [1,2,0,3]
    };
    int step = 0;
    for (const auto &s : steps) {
        int w = arb.arbitrate(mask(4, s.req));
        ASSERT_EQ(w, s.winner) << "step " << step;
        arb.update(w);
        step++;
    }
    // Final order [1,2,0,3]: beats(i,j) for i < j, row-major.
    std::vector<std::uint8_t> state;
    arb.dumpState(state);
    EXPECT_EQ(state, (std::vector<std::uint8_t>{0, 0, 1, 1, 1, 1}));
}

} // namespace

TEST(MatrixArbiter, GoldenPrioritySequence)
{
    runGoldenSequence<MatrixArbiter>();
}

TEST(MatrixArbiter, GoldenPrioritySequenceScalarOracle)
{
    runGoldenSequence<ScalarMatrixArbiter>();
}

class MatrixArbiterProperty : public testing::TestWithParam<int>
{
};

TEST_P(MatrixArbiterProperty, AlwaysGrantsExactlyOneRequester)
{
    int n = GetParam();
    MatrixArbiter arb(n);
    Rng rng(1234 + n);
    for (int round = 0; round < 2000; round++) {
        arb::ReqRow req(n);
        bool any = false;
        for (int i = 0; i < n; i++) {
            req[i] = rng.bernoulli(0.4);
            any = any || req[i];
        }
        int w = arb.arbitrate(req);
        if (!any) {
            EXPECT_EQ(w, NoGrant);
        } else {
            ASSERT_NE(w, NoGrant);
            EXPECT_TRUE(req[w]);
            arb.update(w);
        }
    }
}

TEST_P(MatrixArbiterProperty, StrongFairnessUnderFullLoad)
{
    // Every requestor is served once per n grants when all request.
    int n = GetParam();
    MatrixArbiter arb(n);
    arb::ReqRow all(n, true);
    std::vector<int> served(n, 0);
    for (int round = 0; round < 10 * n; round++) {
        int w = arb.arbitrate(all);
        ASSERT_NE(w, NoGrant);
        served[w]++;
        arb.update(w);
    }
    for (int i = 0; i < n; i++)
        EXPECT_EQ(served[i], 10) << "requestor " << i;
}

TEST_P(MatrixArbiterProperty, NoStarvationUnderRandomLoad)
{
    // A persistent requestor is served within n rounds even against
    // random competition (the LRS property).
    int n = GetParam();
    if (n < 2)
        return;
    MatrixArbiter arb(n);
    Rng rng(99);
    int waiting = 0;
    for (int round = 0; round < 3000; round++) {
        arb::ReqRow req(n);
        req[0] = true;      // Persistent requestor.
        for (int i = 1; i < n; i++)
            req[i] = rng.bernoulli(0.8);
        int w = arb.arbitrate(req);
        ASSERT_NE(w, NoGrant);
        arb.update(w);
        if (w == 0) {
            waiting = 0;
        } else {
            waiting++;
            ASSERT_LT(waiting, n) << "requestor 0 starved";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixArbiterProperty,
                         testing::Values(1, 2, 3, 4, 5, 8, 16),
                         testing::PrintToStringParamName());
