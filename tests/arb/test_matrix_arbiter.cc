/** @file Unit and property tests for the matrix arbiter (Figure 10). */

#include <gtest/gtest.h>

#include <vector>

#include "arb/matrix_arbiter.hh"
#include "common/rng.hh"

using namespace pdr;
using namespace pdr::arb;

namespace {

arb::ReqRow
mask(int n, std::initializer_list<int> set)
{
    arb::ReqRow m(n, false);
    for (int i : set)
        m[std::size_t(i)] = true;
    return m;
}

} // namespace

TEST(MatrixArbiter, NoRequestsNoGrant)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(mask(4, {})), NoGrant);
}

TEST(MatrixArbiter, SingleRequestWins)
{
    MatrixArbiter arb(4);
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(arb.arbitrate(mask(4, {i})), i);
}

TEST(MatrixArbiter, InitialPriorityIsIndexOrder)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(mask(4, {1, 3})), 1);
    EXPECT_EQ(arb.arbitrate(mask(4, {0, 1, 2, 3})), 0);
}

TEST(MatrixArbiter, WinnerDropsToLowestPriority)
{
    MatrixArbiter arb(3);
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 1})), 0);
    arb.update(0);
    // 0 is now lowest: 1 beats 0, 2 beats 0.
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 1})), 1);
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 2})), 2);
    arb.update(1);
    EXPECT_EQ(arb.arbitrate(mask(3, {0, 1})), 0);
}

TEST(MatrixArbiter, LeastRecentlyServedOrder)
{
    MatrixArbiter arb(4);
    auto all = mask(4, {0, 1, 2, 3});
    std::vector<int> order;
    for (int i = 0; i < 8; i++) {
        int w = arb.arbitrate(all);
        ASSERT_NE(w, NoGrant);
        arb.update(w);
        order.push_back(w);
    }
    // With all requesting, LRS degenerates to round-robin.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(MatrixArbiter, ArbitrateIsPure)
{
    // arbitrate() must not mutate priority state.
    MatrixArbiter arb(3);
    auto req = mask(3, {0, 1, 2});
    EXPECT_EQ(arb.arbitrate(req), 0);
    EXPECT_EQ(arb.arbitrate(req), 0);
    EXPECT_EQ(arb.arbitrate(req), 0);
}

TEST(MatrixArbiter, SizeOne)
{
    MatrixArbiter arb(1);
    EXPECT_EQ(arb.arbitrate(mask(1, {0})), 0);
    arb.update(0);
    EXPECT_EQ(arb.arbitrate(mask(1, {0})), 0);
}

class MatrixArbiterProperty : public testing::TestWithParam<int>
{
};

TEST_P(MatrixArbiterProperty, AlwaysGrantsExactlyOneRequester)
{
    int n = GetParam();
    MatrixArbiter arb(n);
    Rng rng(1234 + n);
    for (int round = 0; round < 2000; round++) {
        arb::ReqRow req(n);
        bool any = false;
        for (int i = 0; i < n; i++) {
            req[i] = rng.bernoulli(0.4);
            any = any || req[i];
        }
        int w = arb.arbitrate(req);
        if (!any) {
            EXPECT_EQ(w, NoGrant);
        } else {
            ASSERT_NE(w, NoGrant);
            EXPECT_TRUE(req[w]);
            arb.update(w);
        }
    }
}

TEST_P(MatrixArbiterProperty, StrongFairnessUnderFullLoad)
{
    // Every requestor is served once per n grants when all request.
    int n = GetParam();
    MatrixArbiter arb(n);
    arb::ReqRow all(n, true);
    std::vector<int> served(n, 0);
    for (int round = 0; round < 10 * n; round++) {
        int w = arb.arbitrate(all);
        ASSERT_NE(w, NoGrant);
        served[w]++;
        arb.update(w);
    }
    for (int i = 0; i < n; i++)
        EXPECT_EQ(served[i], 10) << "requestor " << i;
}

TEST_P(MatrixArbiterProperty, NoStarvationUnderRandomLoad)
{
    // A persistent requestor is served within n rounds even against
    // random competition (the LRS property).
    int n = GetParam();
    if (n < 2)
        return;
    MatrixArbiter arb(n);
    Rng rng(99);
    int waiting = 0;
    for (int round = 0; round < 3000; round++) {
        arb::ReqRow req(n);
        req[0] = true;      // Persistent requestor.
        for (int i = 1; i < n; i++)
            req[i] = rng.bernoulli(0.8);
        int w = arb.arbitrate(req);
        ASSERT_NE(w, NoGrant);
        arb.update(w);
        if (w == 0) {
            waiting = 0;
        } else {
            waiting++;
            ASSERT_LT(waiting, n) << "requestor 0 starved";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixArbiterProperty,
                         testing::Values(1, 2, 3, 4, 5, 8, 16),
                         testing::PrintToStringParamName());
