/**
 * @file
 * Tests for the wormhole switch arbiter and the separable switch
 * allocator (Figure 7(a)/(b)).
 */

#include <gtest/gtest.h>

#include <set>

#include "arb/switch_allocator.hh"
#include "common/rng.hh"

using namespace pdr;
using namespace pdr::arb;

TEST(WormholeArbiter, SingleRequestGranted)
{
    WormholeSwitchArbiter arb(5);
    auto g = arb.allocate({{2, 0, 4, false}});
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].inPort, 2);
    EXPECT_EQ(g[0].outPort, 4);
}

TEST(WormholeArbiter, ContentionYieldsOneWinnerPerOutput)
{
    WormholeSwitchArbiter arb(5);
    auto g = arb.allocate({{0, 0, 3, false}, {1, 0, 3, false},
                           {2, 0, 3, false}});
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].outPort, 3);
}

TEST(WormholeArbiter, DistinctOutputsAllGranted)
{
    WormholeSwitchArbiter arb(5);
    auto g = arb.allocate({{0, 0, 1, false}, {1, 0, 2, false},
                           {2, 0, 3, false}});
    EXPECT_EQ(g.size(), 3u);
}

TEST(WormholeArbiter, RepeatedContentionIsFair)
{
    WormholeSwitchArbiter arb(3);
    std::vector<int> wins(3, 0);
    for (int i = 0; i < 30; i++) {
        auto g = arb.allocate({{0, 0, 2, false}, {1, 0, 2, false},
                               {2, 0, 2, false}});
        ASSERT_EQ(g.size(), 1u);
        wins[std::size_t(g[0].inPort)]++;
    }
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(wins[std::size_t(i)], 10);
}

namespace {

/** No two grants share an input port or an output port. */
void
expectConflictFree(const std::vector<SaGrant> &grants)
{
    std::set<int> ins, outs;
    for (const auto &g : grants) {
        EXPECT_TRUE(ins.insert(g.inPort * 64 + g.inVc).second)
            << "duplicate input VC grant";
        EXPECT_TRUE(outs.insert(g.outPort).second)
            << "duplicate output port grant";
    }
    // Also at most one grant per input *port* (one crossbar input).
    std::set<int> inports;
    for (const auto &g : grants)
        EXPECT_TRUE(inports.insert(g.inPort).second)
            << "two VCs of one input port granted";
}

} // namespace

TEST(SeparableAllocator, GrantsAreConflictFree)
{
    SeparableSwitchAllocator alloc(5, 4);
    Rng rng(42);
    for (int round = 0; round < 2000; round++) {
        std::vector<SaRequest> reqs;
        for (int in = 0; in < 5; in++)
            for (int vc = 0; vc < 4; vc++)
                if (rng.bernoulli(0.3))
                    reqs.push_back({in, vc, int(rng.range(5)), false});
        auto grants = alloc.allocate(reqs);
        expectConflictFree(grants);
        // Every grant matches a request.
        for (const auto &g : grants) {
            bool found = false;
            for (const auto &r : reqs)
                found |= r.inPort == g.inPort && r.inVc == g.inVc &&
                         r.outPort == g.outPort;
            EXPECT_TRUE(found);
        }
    }
}

TEST(SeparableAllocator, SingleRequestAlwaysGranted)
{
    SeparableSwitchAllocator alloc(5, 2);
    for (int in = 0; in < 5; in++) {
        auto g = alloc.allocate({{in, 1, (in + 1) % 5, false}});
        ASSERT_EQ(g.size(), 1u);
        EXPECT_EQ(g[0].inPort, in);
        EXPECT_EQ(g[0].inVc, 1);
    }
}

TEST(SeparableAllocator, ParallelRequestsAllGranted)
{
    // Disjoint inputs and outputs: separable allocation grants all.
    SeparableSwitchAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 1, false}, {1, 0, 2, false},
                             {2, 1, 3, false}, {3, 1, 4, false},
                             {4, 0, 0, false}});
    EXPECT_EQ(g.size(), 5u);
}

TEST(SeparableAllocator, InputStageFairAcrossVcs)
{
    // Two VCs of one input contending for different outputs: over
    // rounds, both get service.
    SeparableSwitchAllocator alloc(5, 2);
    std::vector<int> wins(2, 0);
    for (int i = 0; i < 40; i++) {
        auto g = alloc.allocate({{0, 0, 1, false}, {0, 1, 2, false}});
        ASSERT_EQ(g.size(), 1u);
        wins[std::size_t(g[0].inVc)]++;
    }
    EXPECT_EQ(wins[0], 20);
    EXPECT_EQ(wins[1], 20);
}

TEST(SeparableAllocator, OutputStageFairAcrossInputs)
{
    SeparableSwitchAllocator alloc(4, 1);
    std::vector<int> wins(4, 0);
    for (int i = 0; i < 40; i++) {
        std::vector<SaRequest> reqs;
        for (int in = 0; in < 4; in++)
            reqs.push_back({in, 0, 0, false});
        auto g = alloc.allocate(reqs);
        ASSERT_EQ(g.size(), 1u);
        wins[std::size_t(g[0].inPort)]++;
    }
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(wins[std::size_t(i)], 10);
}

TEST(SeparableAllocator, LoserKeepsPriority)
{
    // A VC that won stage 1 but lost stage 2 must not lose its input
    // arbiter priority (update-on-consume policy).
    SeparableSwitchAllocator alloc(2, 2);
    // Round 1: in0/vc0 and in1/vc0 both want out 0; one loses.
    auto g1 = alloc.allocate({{0, 0, 0, false}, {1, 0, 0, false}});
    ASSERT_EQ(g1.size(), 1u);
    int loser = g1[0].inPort == 0 ? 1 : 0;
    // Round 2: loser's vc0 vs its vc1 -> vc0 must still win stage 1
    // (its priority was not consumed).
    auto g2 = alloc.allocate({{loser, 0, 0, false},
                              {loser, 1, 1, false}});
    bool vc0_granted = false;
    for (const auto &g : g2)
        vc0_granted |= g.inPort == loser && g.inVc == 0;
    EXPECT_TRUE(vc0_granted);
}
