/**
 * @file
 * Tests for the speculative switch allocator (Figure 7(c)): parallel
 * non-spec / spec allocation with strict non-spec priority.
 */

#include <gtest/gtest.h>

#include <set>

#include "arb/switch_allocator.hh"
#include "common/rng.hh"

using namespace pdr;
using namespace pdr::arb;

TEST(SpecAllocator, SpecGrantedWhenUncontended)
{
    SpeculativeSwitchAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 3, true}});
    ASSERT_EQ(g.size(), 1u);
    EXPECT_TRUE(g[0].spec);
    EXPECT_EQ(g[0].outPort, 3);
}

TEST(SpecAllocator, NonSpecBeatsSpecOnSameOutput)
{
    SpeculativeSwitchAllocator alloc(5, 2);
    for (int round = 0; round < 20; round++) {
        auto g = alloc.allocate({{0, 0, 3, true}, {1, 0, 3, false}});
        ASSERT_EQ(g.size(), 1u);
        EXPECT_FALSE(g[0].spec);
        EXPECT_EQ(g[0].inPort, 1);
    }
}

TEST(SpecAllocator, NonSpecOnInputMasksSpecFromSameInput)
{
    // A non-spec winner from input 0 means input 0 cannot also send a
    // speculative flit through the crossbar this cycle.
    SpeculativeSwitchAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 1, false}, {0, 1, 2, true}});
    ASSERT_EQ(g.size(), 1u);
    EXPECT_FALSE(g[0].spec);
    EXPECT_EQ(g[0].inVc, 0);
}

TEST(SpecAllocator, SpecFillsLeftoverPorts)
{
    SpeculativeSwitchAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 1, false}, {1, 0, 2, true},
                             {2, 0, 3, true}});
    // Non-spec takes out 1; spec requests for 2 and 3 are disjoint and
    // should both land.
    std::set<int> outs;
    int spec_count = 0;
    for (const auto &gr : g) {
        outs.insert(gr.outPort);
        spec_count += gr.spec ? 1 : 0;
    }
    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(spec_count, 2);
    EXPECT_TRUE(outs.count(1) && outs.count(2) && outs.count(3));
}

TEST(SpecAllocator, NeverTwoGrantsPerPort)
{
    SpeculativeSwitchAllocator alloc(5, 4);
    Rng rng(7);
    for (int round = 0; round < 3000; round++) {
        std::vector<SaRequest> reqs;
        for (int in = 0; in < 5; in++) {
            for (int vc = 0; vc < 4; vc++) {
                if (rng.bernoulli(0.25)) {
                    reqs.push_back({in, vc, int(rng.range(5)),
                                    rng.bernoulli(0.5)});
                }
            }
        }
        auto grants = alloc.allocate(reqs);
        std::set<int> ins, outs;
        for (const auto &g : grants) {
            EXPECT_TRUE(ins.insert(g.inPort).second);
            EXPECT_TRUE(outs.insert(g.outPort).second);
        }
    }
}

TEST(SpecAllocator, NonSpecThroughputUnaffectedBySpecLoad)
{
    // Conservative speculation: the set of non-spec grants must be
    // identical whether or not speculative requests are present.
    SpeculativeSwitchAllocator with_spec(5, 2);
    SpeculativeSwitchAllocator without_spec(5, 2);
    Rng rng(21);
    for (int round = 0; round < 2000; round++) {
        std::vector<SaRequest> ns;
        for (int in = 0; in < 5; in++)
            if (rng.bernoulli(0.4))
                ns.push_back({in, int(rng.range(2)),
                              int(rng.range(5)), false});
        std::vector<SaRequest> all = ns;
        for (int in = 0; in < 5; in++)
            if (rng.bernoulli(0.4))
                all.push_back({in, int(rng.range(2)),
                               int(rng.range(5)), true});

        auto g_with = with_spec.allocate(all);
        auto g_without = without_spec.allocate(ns);

        std::set<std::tuple<int, int, int>> ns_with, ns_without;
        for (const auto &g : g_with)
            if (!g.spec)
                ns_with.insert({g.inPort, g.inVc, g.outPort});
        for (const auto &g : g_without)
            ns_without.insert({g.inPort, g.inVc, g.outPort});
        EXPECT_EQ(ns_with, ns_without) << "round " << round;
    }
}

TEST(SpecAllocator, SpecOnlyTrafficBehavesLikeSeparable)
{
    SpeculativeSwitchAllocator spec_alloc(4, 2);
    SeparableSwitchAllocator plain(4, 2);
    Rng rng(5);
    for (int round = 0; round < 500; round++) {
        std::vector<SaRequest> reqs;
        for (int in = 0; in < 4; in++)
            if (rng.bernoulli(0.5))
                reqs.push_back({in, int(rng.range(2)),
                                int(rng.range(4)), true});
        std::vector<SaRequest> plain_reqs = reqs;
        for (auto &r : plain_reqs)
            r.spec = false;
        auto a = spec_alloc.allocate(reqs);
        auto b = plain.allocate(plain_reqs);
        EXPECT_EQ(a.size(), b.size()) << "round " << round;
    }
}
