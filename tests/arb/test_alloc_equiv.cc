/**
 * @file
 * Lockstep equivalence: bitmask allocation engine vs scalar oracle.
 *
 * The bitmask rework (arb/bitrow.hh layout) claims bit-identical grants
 * AND bit-identical priority-state evolution against the retained dense
 * implementations (arb/scalar_oracle.hh).  These tests drive each
 * bitmask/scalar pair in lockstep over seeded random request streams --
 * every round the grant vectors must match exactly (same grants, same
 * order), and the serialized priority state (rotating pointers + every
 * matrix arbiter's upper triangle) is compared periodically and at the
 * end, so a divergence in arbiter updates is caught even when it has
 * not yet produced a differing grant.
 *
 * An end-to-end layer runs whole simulations with router.scalar_alloc
 * on and off and requires identical results, covering the router's
 * sparse bid staging (bidRouteWait_/bidActive_/outFree_) on top of the
 * allocators themselves.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "api/simulation.hh"
#include "arb/matrix_arbiter.hh"
#include "arb/scalar_oracle.hh"
#include "arb/switch_allocator.hh"
#include "arb/vc_allocator.hh"
#include "common/rng.hh"

using namespace pdr;
using namespace pdr::arb;
using router::RouterModel;

namespace {

constexpr int kRounds = 10000;
constexpr int kStateEvery = 500;  //!< Full-state compare period.

/** Round-varying request density: sparse, medium, saturated. */
double
density(int round)
{
    static const double kDensities[3] = {0.1, 0.5, 0.9};
    return kDensities[round % 3];
}

std::tuple<int, int, int, bool>
key(const SaGrant &g)
{
    return {g.inPort, g.inVc, g.outPort, g.spec};
}

std::tuple<int, int, int, int>
key(const VaGrant &g)
{
    return {g.inPort, g.inVc, g.outPort, g.outVc};
}

template <typename Grant>
void
expectSameGrants(const std::vector<Grant> &bit,
                 const std::vector<Grant> &sca, int round)
{
    ASSERT_EQ(bit.size(), sca.size()) << "round " << round;
    for (std::size_t i = 0; i < bit.size(); i++)
        ASSERT_EQ(key(bit[i]), key(sca[i]))
            << "round " << round << " grant " << i;
}

template <typename Bit, typename Scalar>
void
expectSameState(const Bit &bit, const Scalar &sca, int round)
{
    std::vector<std::uint8_t> sb, ss;
    bit.dumpState(sb);
    sca.dumpState(ss);
    ASSERT_EQ(sb, ss) << "priority state diverged by round " << round;
}

} // namespace

// ---------------------------------------------------------------------
// MatrixArbiter vs ScalarMatrixArbiter, including a multi-word size.
// ---------------------------------------------------------------------

class MatrixArbiterEquiv : public testing::TestWithParam<int>
{
};

TEST_P(MatrixArbiterEquiv, LockstepGrantsAndState)
{
    const int n = GetParam();
    MatrixArbiter bit(n);
    ScalarMatrixArbiter sca(n);
    Rng rng(0xA110C8ED ^ std::uint64_t(n));
    ReqRow req(n);
    for (int round = 0; round < kRounds; round++) {
        const double d = density(round);
        for (int i = 0; i < n; i++)
            req[i] = rng.bernoulli(d) ? 1 : 0;
        const int wb = bit.arbitrate(req);
        const int ws = sca.arbitrate(req);
        ASSERT_EQ(wb, ws) << "round " << round;
        if (wb != NoGrant) {
            bit.update(wb);
            sca.update(ws);
        }
        if (round % kStateEvery == 0)
            expectSameState(bit, sca, round);
    }
    expectSameState(bit, sca, kRounds);
}

// 130 exercises the three-word arbitrateMask path (the stage-2 VC
// arbiter is (p*v):1 and may exceed one word).
INSTANTIATE_TEST_SUITE_P(Sizes, MatrixArbiterEquiv,
                         testing::Values(1, 2, 5, 8, 63, 64, 130),
                         testing::PrintToStringParamName());

// ---------------------------------------------------------------------
// Switch allocators, parameterized over (p, v).
// ---------------------------------------------------------------------

class AllocEquiv
    : public testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    int p() const { return std::get<0>(GetParam()); }
    int v() const { return std::get<1>(GetParam()); }
};

TEST_P(AllocEquiv, WormholeArbiter)
{
    // Wormhole routers are v == 1; skip the multi-VC instantiations.
    if (v() != 1)
        return;
    WormholeSwitchArbiter bit(p());
    ScalarWormholeSwitchArbiter sca(p());
    Rng rng(0x11 + p());
    std::vector<SaRequest> reqs;
    for (int round = 0; round < kRounds; round++) {
        const double d = density(round);
        reqs.clear();
        // At most one request per input port (deterministic routing).
        for (int in = 0; in < p(); in++) {
            if (rng.bernoulli(d))
                reqs.push_back({in, 0, int(rng.range(p())), false});
        }
        expectSameGrants(bit.allocate(reqs), sca.allocate(reqs), round);
        if (round % kStateEvery == 0)
            expectSameState(bit, sca, round);
    }
    expectSameState(bit, sca, kRounds);
}

TEST_P(AllocEquiv, SeparableSwitchAllocator)
{
    SeparableSwitchAllocator bit(p(), v());
    ScalarSeparableSwitchAllocator sca(p(), v());
    Rng rng(0x22 + p() * 64 + v());
    std::vector<SaRequest> reqs;
    for (int round = 0; round < kRounds; round++) {
        const double d = density(round);
        reqs.clear();
        // At most one bid per input VC.
        for (int in = 0; in < p(); in++) {
            for (int vc = 0; vc < v(); vc++) {
                if (rng.bernoulli(d))
                    reqs.push_back({in, vc, int(rng.range(p())), false});
            }
        }
        expectSameGrants(bit.allocate(reqs), sca.allocate(reqs), round);
        if (round % kStateEvery == 0)
            expectSameState(bit, sca, round);
    }
    expectSameState(bit, sca, kRounds);
}

TEST_P(AllocEquiv, SpeculativeSwitchAllocator)
{
    SpeculativeSwitchAllocator bit(p(), v());
    ScalarSpeculativeSwitchAllocator sca(p(), v());
    Rng rng(0x33 + p() * 64 + v());
    std::vector<SaRequest> reqs;
    for (int round = 0; round < kRounds; round++) {
        const double d = density(round);
        reqs.clear();
        for (int in = 0; in < p(); in++) {
            for (int vc = 0; vc < v(); vc++) {
                if (rng.bernoulli(d))
                    reqs.push_back({in, vc, int(rng.range(p())),
                                    rng.bernoulli(0.5)});
            }
        }
        expectSameGrants(bit.allocate(reqs), sca.allocate(reqs), round);
        if (round % kStateEvery == 0)
            expectSameState(bit, sca, round);
    }
    expectSameState(bit, sca, kRounds);
}

TEST_P(AllocEquiv, VcAllocator)
{
    VcAllocator bit(p(), v());
    ScalarVcAllocator sca(p(), v());
    Rng rng(0x44 + p() * 64 + v());
    std::vector<VaRequest> reqs;
    std::vector<std::uint64_t> free_vcs(p());
    for (int round = 0; round < kRounds; round++) {
        const double d = density(round);
        reqs.clear();
        for (int in = 0; in < p(); in++) {
            for (int vc = 0; vc < v(); vc++) {
                if (!rng.bernoulli(d))
                    continue;
                // Nonzero acceptable-VC mask (bits >= v ignored by the
                // allocators; keep them clear as routing would).
                std::uint32_t vc_mask =
                    std::uint32_t(rng.range((1u << v()) - 1) + 1);
                reqs.push_back({in, vc, int(rng.range(p())), vc_mask});
            }
        }
        // Free-VC words, occasionally fully free / fully busy.
        for (int out = 0; out < p(); out++) {
            std::uint64_t w = 0;
            if (round % 17 == 0) {
                w = lowMask(v());
            } else if (round % 19 != 0) {
                for (int ov = 0; ov < v(); ov++) {
                    if (rng.bernoulli(0.6))
                        w |= std::uint64_t(1) << ov;
                }
            }
            free_vcs[out] = w;
        }
        expectSameGrants(bit.allocate(reqs, free_vcs.data()),
                         sca.allocate(reqs, free_vcs.data()), round);
        if (round % kStateEvery == 0)
            expectSameState(bit, sca, round);
    }
    expectSameState(bit, sca, kRounds);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, AllocEquiv,
    testing::Values(std::make_tuple(2, 1), std::make_tuple(5, 1),
                    std::make_tuple(8, 1), std::make_tuple(2, 2),
                    std::make_tuple(3, 4), std::make_tuple(5, 2),
                    std::make_tuple(8, 8)),
    [](const testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "p" + std::to_string(std::get<0>(info.param)) + "v" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// End-to-end: whole simulations with router.scalar_alloc on/off.
// ---------------------------------------------------------------------

namespace {

api::SimResults
runModel(RouterModel model, int vcs, bool scalar)
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.router.model = model;
    cfg.net.router.numVcs = vcs;
    cfg.net.router.bufDepth = 4;
    cfg.net.router.scalarAlloc = scalar;
    cfg.net.setOfferedFraction(0.3);
    cfg.mode = "fixed";
    cfg.horizon = 4000;
    return api::runSimulation(cfg);
}

void
expectSameResults(RouterModel model, int vcs)
{
    const auto bit = runModel(model, vcs, false);
    const auto sca = runModel(model, vcs, true);
    EXPECT_EQ(bit.cycles, sca.cycles);
    EXPECT_DOUBLE_EQ(bit.avgLatency, sca.avgLatency);
    EXPECT_DOUBLE_EQ(bit.acceptedFraction, sca.acceptedFraction);
    EXPECT_EQ(bit.routers.flitsIn, sca.routers.flitsIn);
    EXPECT_EQ(bit.routers.vaGrants, sca.routers.vaGrants);
    EXPECT_EQ(bit.routers.specSaAttempts, sca.routers.specSaAttempts);
    EXPECT_EQ(bit.routers.specSaUseful, sca.routers.specSaUseful);
}

} // namespace

TEST(AllocEquivEndToEnd, Wormhole)
{
    expectSameResults(RouterModel::Wormhole, 1);
}

TEST(AllocEquivEndToEnd, VirtualChannel)
{
    expectSameResults(RouterModel::VirtualChannel, 4);
}

TEST(AllocEquivEndToEnd, SpecVirtualChannel)
{
    expectSameResults(RouterModel::SpecVirtualChannel, 4);
}
