/** @file Tests for the separable virtual-channel allocator (Figure 8). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "arb/vc_allocator.hh"
#include "common/rng.hh"

using namespace pdr;
using namespace pdr::arb;

namespace {

/** All output VCs free. */
bool
allFree(int, int)
{
    return true;
}

} // namespace

TEST(VcAllocator, SingleRequestGetsFreeVc)
{
    VcAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 3}}, allFree);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].inPort, 0);
    EXPECT_EQ(g[0].outPort, 3);
    EXPECT_GE(g[0].outVc, 0);
    EXPECT_LT(g[0].outVc, 2);
}

TEST(VcAllocator, NoGrantWhenAllBusy)
{
    VcAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 3}},
                            [](int, int) { return false; });
    EXPECT_TRUE(g.empty());
}

TEST(VcAllocator, RespectsFreePredicate)
{
    VcAllocator alloc(5, 4);
    // Only VC 2 of port 1 is free.
    auto g = alloc.allocate({{0, 0, 1}}, [](int port, int vc) {
        return port == 1 && vc == 2;
    });
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].outVc, 2);
}

TEST(VcAllocator, TwoRequestersOneFreeVc)
{
    VcAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 3}, {1, 1, 3}},
                            [](int, int vc) { return vc == 0; });
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].outVc, 0);
}

TEST(VcAllocator, DistinctOutputsBothGranted)
{
    VcAllocator alloc(5, 2);
    auto g = alloc.allocate({{0, 0, 1}, {1, 0, 2}}, allFree);
    EXPECT_EQ(g.size(), 2u);
}

TEST(VcAllocator, NeverGrantsSameOutVcTwice)
{
    VcAllocator alloc(5, 4);
    Rng rng(3);
    for (int round = 0; round < 2000; round++) {
        std::vector<VaRequest> reqs;
        for (int in = 0; in < 5; in++)
            for (int vc = 0; vc < 4; vc++)
                if (rng.bernoulli(0.3))
                    reqs.push_back({in, vc, int(rng.range(5))});
        auto grants = alloc.allocate(reqs, allFree);
        std::set<int> ovcs, ivcs;
        for (const auto &g : grants) {
            EXPECT_TRUE(ovcs.insert(g.outPort * 4 + g.outVc).second)
                << "output VC double-granted";
            EXPECT_TRUE(ivcs.insert(g.inPort * 4 + g.inVc).second)
                << "input VC double-granted";
        }
    }
}

TEST(VcAllocator, GrantsMatchRequests)
{
    VcAllocator alloc(3, 2);
    Rng rng(17);
    for (int round = 0; round < 500; round++) {
        std::vector<VaRequest> reqs;
        for (int in = 0; in < 3; in++)
            for (int vc = 0; vc < 2; vc++)
                if (rng.bernoulli(0.5))
                    reqs.push_back({in, vc, int(rng.range(3))});
        for (const auto &g : alloc.allocate(reqs, allFree)) {
            bool matches = false;
            for (const auto &r : reqs)
                matches |= r.inPort == g.inPort && r.inVc == g.inVc &&
                           r.outPort == g.outPort;
            EXPECT_TRUE(matches);
        }
    }
}

TEST(VcAllocator, SpreadsLoadOverOutputVcs)
{
    // Repeated solo requests should rotate across the output VCs of
    // the port rather than always picking VC 0.
    VcAllocator alloc(5, 4);
    std::map<int, int> used;
    for (int i = 0; i < 40; i++) {
        auto g = alloc.allocate({{0, 0, 2}}, allFree);
        ASSERT_EQ(g.size(), 1u);
        used[g[0].outVc]++;
    }
    EXPECT_EQ(used.size(), 4u);
    for (const auto &[vc, n] : used)
        EXPECT_EQ(n, 10) << "vc " << vc;
}

TEST(VcAllocator, FairAcrossCompetingInputVcs)
{
    // Many input VCs fighting for one output VC: matrix arbitration
    // serves them all evenly over time.
    VcAllocator alloc(3, 1);
    std::vector<int> wins(3, 0);
    for (int round = 0; round < 30; round++) {
        auto g = alloc.allocate({{0, 0, 2}, {1, 0, 2}, {2, 0, 2}},
                                allFree);
        ASSERT_EQ(g.size(), 1u);
        wins[std::size_t(g[0].inPort)]++;
    }
    for (int in = 0; in < 3; in++)
        EXPECT_EQ(wins[std::size_t(in)], 10);
}
