/** @file Unit tests for the round-robin arbiter. */

#include <gtest/gtest.h>

#include "arb/round_robin_arbiter.hh"

using namespace pdr::arb;

namespace {

ReqRow
mask(int n, std::initializer_list<int> set)
{
    ReqRow m(n, false);
    for (int i : set)
        m[std::size_t(i)] = true;
    return m;
}

} // namespace

TEST(RoundRobin, NoRequestsNoGrant)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(mask(4, {})), NoGrant);
}

TEST(RoundRobin, PointerAdvancesPastWinner)
{
    RoundRobinArbiter arb(4);
    auto all = mask(4, {0, 1, 2, 3});
    EXPECT_EQ(arb.arbitrate(all), 0);
    arb.update(0);
    EXPECT_EQ(arb.arbitrate(all), 1);
    arb.update(1);
    EXPECT_EQ(arb.arbitrate(all), 2);
}

TEST(RoundRobin, WrapsAround)
{
    RoundRobinArbiter arb(3);
    arb.update(2);  // Pointer now at 0.
    EXPECT_EQ(arb.arbitrate(mask(3, {0})), 0);
    arb.update(0);  // Pointer at 1.
    EXPECT_EQ(arb.arbitrate(mask(3, {0})), 0);  // Wraps to find 0.
}

TEST(RoundRobin, SkipsNonRequestors)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(mask(4, {2, 3})), 2);
    arb.update(2);
    EXPECT_EQ(arb.arbitrate(mask(4, {1, 3})), 3);
}

TEST(RoundRobin, FairUnderFullLoad)
{
    RoundRobinArbiter arb(5);
    ReqRow all(5, true);
    std::vector<int> served(5, 0);
    for (int i = 0; i < 50; i++) {
        int w = arb.arbitrate(all);
        served[std::size_t(w)]++;
        arb.update(w);
    }
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(served[std::size_t(i)], 10);
}
