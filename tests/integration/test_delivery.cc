/**
 * @file
 * End-to-end delivery invariants: every tagged packet is delivered
 * exactly once, in order, for every router model and several traffic
 * patterns.
 */

#include <gtest/gtest.h>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

namespace {

struct DeliveryCase
{
    RouterModel model;
    int vcs;
    int buf;
    bool singleCycle;
    const char *pattern;
    double load;
};

std::string
caseName(const testing::TestParamInfo<DeliveryCase> &info)
{
    const auto &c = info.param;
    std::string n = router::toString(c.model);
    n += c.singleCycle ? "1cyc" : "pipe";
    n += "_v" + std::to_string(c.vcs) + "b" + std::to_string(c.buf);
    n += "_";
    n += c.pattern;
    n += "_l" + std::to_string(int(c.load * 100));
    return n;
}

class DeliveryTest : public testing::TestWithParam<DeliveryCase>
{
};

} // namespace

TEST_P(DeliveryTest, AllTaggedPacketsArrive)
{
    const auto &c = GetParam();
    api::SimConfig cfg;
    cfg.net.k = 4;              // Small mesh keeps the sweep fast.
    cfg.net.router.model = c.model;
    cfg.net.router.singleCycle = c.singleCycle;
    cfg.net.router.numVcs = c.vcs;
    cfg.net.router.bufDepth = c.buf;
    cfg.net.pattern = c.pattern;
    cfg.net.warmup = 500;
    cfg.net.samplePackets = 2000;
    cfg.net.seed = 7;
    cfg.net.setOfferedFraction(c.load);
    cfg.maxCycles = 300000;

    auto res = api::runSimulation(cfg);
    EXPECT_TRUE(res.drained) << "sample did not drain";
    EXPECT_EQ(res.sampleReceived, res.sampleSize);
    EXPECT_GT(res.avgLatency, 0.0);
    // Conservation: a router never emits more flits than it absorbed.
    EXPECT_GE(res.routers.flitsIn, res.routers.flitsOut);
}

INSTANTIATE_TEST_SUITE_P(
    Models, DeliveryTest,
    testing::Values(
        DeliveryCase{RouterModel::Wormhole, 1, 8, false,
                     "uniform", 0.2},
        DeliveryCase{RouterModel::Wormhole, 1, 2, false,
                     "uniform", 0.3},
        DeliveryCase{RouterModel::VirtualChannel, 2, 4, false,
                     "uniform", 0.3},
        DeliveryCase{RouterModel::VirtualChannel, 4, 2, false,
                     "uniform", 0.3},
        DeliveryCase{RouterModel::SpecVirtualChannel, 2, 4, false,
                     "uniform", 0.3},
        DeliveryCase{RouterModel::SpecVirtualChannel, 4, 4, false,
                     "uniform", 0.4},
        DeliveryCase{RouterModel::Wormhole, 1, 8, true,
                     "uniform", 0.3},
        DeliveryCase{RouterModel::VirtualChannel, 2, 4, true,
                     "uniform", 0.3},
        DeliveryCase{RouterModel::SpecVirtualChannel, 2, 4, true,
                     "uniform", 0.3},
        DeliveryCase{RouterModel::VirtualChannel, 2, 4, false,
                     "transpose", 0.2},
        DeliveryCase{RouterModel::SpecVirtualChannel, 2, 4, false,
                     "bitcomp", 0.2},
        DeliveryCase{RouterModel::Wormhole, 1, 8, false,
                     "tornado", 0.2},
        DeliveryCase{RouterModel::VirtualChannel, 2, 4, false,
                     "neighbor", 0.3},
        DeliveryCase{RouterModel::SpecVirtualChannel, 2, 4, false,
                     "hotspot", 0.1}),
    caseName);

TEST(Delivery, SampleDrainsPromptlyAtModerateLoad)
{
    net::NetworkConfig ncfg;
    ncfg.k = 4;
    ncfg.router.model = RouterModel::SpecVirtualChannel;
    ncfg.router.numVcs = 2;
    ncfg.router.bufDepth = 4;
    ncfg.warmup = 0;
    ncfg.samplePackets = 500;
    ncfg.setOfferedFraction(0.3);
    net::Network network(ncfg);

    while (!network.controller().done() && network.now() < 100000)
        network.step();
    ASSERT_TRUE(network.controller().done());
}
