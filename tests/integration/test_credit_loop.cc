/**
 * @file
 * Credit-loop behaviour (Section 5.2, Figures 16 and 18).
 *
 * Credit latency does not affect zero-load latency but shrinks the
 * effective buffering and hence throughput; raising credit propagation
 * from 1 to 4 cycles cost the paper's specVC(2x4) 18% of throughput.
 */

#include <gtest/gtest.h>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

namespace {

api::SimConfig
specConfig(sim::Cycle credit_latency, double load)
{
    api::SimConfig cfg;
    cfg.net.router.model = RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.creditLatency = credit_latency;
    cfg.net.warmup = 4000;
    cfg.net.samplePackets = 5000;
    cfg.maxCycles = 100000;
    cfg.net.setOfferedFraction(load);
    return cfg;
}

} // namespace

TEST(CreditLoop, PropagationLatencyCutsThroughput)
{
    // Fig 18: 1 -> 4 cycles of credit propagation costs ~18% of
    // saturation throughput for specVC (2 VCs x 4 buffers).
    double s1 = api::findSaturation(specConfig(1, 0), 4.0, 0.02);
    double s4 = api::findSaturation(specConfig(4, 0), 4.0, 0.02);
    EXPECT_LT(s4, s1);
    double drop = (s1 - s4) / s1;
    EXPECT_GT(drop, 0.05);
    EXPECT_LT(drop, 0.35);
}

TEST(CreditLoop, PropagationBarelyMovesZeroLoadLatency)
{
    // Section 6: "credit latency does not directly impact zero-load
    // latency".  With buffers deep enough to cover the longer loop the
    // latency moves only by the (small) residual stall of a 5-flit
    // packet on 4 buffers.
    auto r1 = api::runSimulation(specConfig(1, 0.02));
    auto r4 = api::runSimulation(specConfig(4, 0.02));
    ASSERT_TRUE(r1.drained && r4.drained);
    EXPECT_LT(r4.avgLatency - r1.avgLatency, 8.0);
    EXPECT_GE(r4.avgLatency, r1.avgLatency);
}

TEST(CreditLoop, DeepBuffersHideCreditLatency)
{
    auto mk = [](sim::Cycle cl, int buf) {
        auto cfg = specConfig(cl, 0.02);
        cfg.net.router.bufDepth = buf;
        return api::runSimulation(cfg);
    };
    // With 16 buffers per VC even a 4-cycle credit path is covered.
    auto r1 = mk(1, 16);
    auto r4 = mk(4, 16);
    ASSERT_TRUE(r1.drained && r4.drained);
    EXPECT_NEAR(r1.avgLatency, r4.avgLatency, 0.5);
}

TEST(CreditLoop, CreditProcessingAblation)
{
    // Extra credit-pipeline stages (creditProcCycles) behave like extra
    // propagation: monotonically lower throughput.
    auto sat = [](int proc) {
        auto cfg = specConfig(1, 0);
        cfg.net.router.creditProcCycles = proc;
        return api::findSaturation(cfg, 4.0, 0.02);
    };
    double s0 = sat(0);
    double s3 = sat(3);
    EXPECT_LE(s3, s0 + 0.01);
}

TEST(CreditLoop, CreditConservation)
{
    // After draining, every router's credit counters are back at
    // bufDepth: no credit was lost or duplicated anywhere.
    auto cfg = specConfig(1, 0.3);
    cfg.net.samplePackets = 2000;
    net::Network network(cfg.net);
    while (!network.controller().done() && network.now() < 100000)
        network.step();
    ASSERT_TRUE(network.controller().done());
    // Stop injecting: run the network dry by stepping well past the
    // longest credit loop with sources quiesced (rate was restored to 0
    // by construction below).
    // Instead simply check credits never exceed bufDepth and that the
    // routers that are quiescent have full credit counters.
    int n = network.lattice().numNodes();
    for (sim::NodeId id = 0; id < n; id++) {
        auto &r = network.routerAt(id);
        if (!r.quiescent())
            continue;
        for (int port = 0; port < net::NumPorts; port++) {
            if (port == net::Local)
                continue;   // Ejection side has no credit counters.
            if (network.lattice().neighbor(id, port) == sim::Invalid)
                continue;
            for (int vc = 0; vc < cfg.net.router.numVcs; vc++) {
                EXPECT_LE(r.credits(port, vc), cfg.net.router.bufDepth);
                EXPECT_GE(r.credits(port, vc), 0);
            }
        }
    }
}
