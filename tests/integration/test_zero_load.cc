/**
 * @file
 * Zero-load latency integration tests.
 *
 * The paper's zero-load numbers for the 8x8 mesh with 5-flit packets
 * and 1-cycle channels (Section 5.1):
 *   - wormhole, 8 buffers:        29 cycles
 *   - VC 2x4:                     36 cycles
 *   - specVC 2x4:                 30 cycles  (credit loop not covered)
 *   - VC/specVC with 8 per VC:    35 / 29 cycles
 *   - single-cycle routers:       16 cycles
 * We assert our models land within a small tolerance of these.
 */

#include <gtest/gtest.h>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

namespace {

api::SimConfig
lowLoadConfig(RouterModel model, int vcs, int buf_per_vc,
              bool single_cycle = false)
{
    api::SimConfig cfg;
    cfg.net.router.model = model;
    cfg.net.router.singleCycle = single_cycle;
    cfg.net.router.numVcs = vcs;
    cfg.net.router.bufDepth = buf_per_vc;
    cfg.net.warmup = 2000;
    cfg.net.samplePackets = 4000;
    cfg.net.setOfferedFraction(0.02);
    cfg.maxCycles = 400000;
    return cfg;
}

} // namespace

TEST(ZeroLoad, Wormhole8Buf)
{
    auto res = api::runSimulation(lowLoadConfig(RouterModel::Wormhole,
                                                1, 8));
    ASSERT_TRUE(res.drained);
    EXPECT_NEAR(res.avgLatency, 29.0, 1.5);
}

TEST(ZeroLoad, Vc2x4)
{
    auto res = api::runSimulation(
        lowLoadConfig(RouterModel::VirtualChannel, 2, 4));
    ASSERT_TRUE(res.drained);
    EXPECT_NEAR(res.avgLatency, 36.0, 2.0);
}

TEST(ZeroLoad, SpecVc2x4)
{
    auto res = api::runSimulation(
        lowLoadConfig(RouterModel::SpecVirtualChannel, 2, 4));
    ASSERT_TRUE(res.drained);
    EXPECT_NEAR(res.avgLatency, 30.0, 1.5);
}

TEST(ZeroLoad, Vc2x8)
{
    auto res = api::runSimulation(
        lowLoadConfig(RouterModel::VirtualChannel, 2, 8));
    ASSERT_TRUE(res.drained);
    EXPECT_NEAR(res.avgLatency, 35.0, 2.0);
}

TEST(ZeroLoad, SpecVc2x8)
{
    auto res = api::runSimulation(
        lowLoadConfig(RouterModel::SpecVirtualChannel, 2, 8));
    ASSERT_TRUE(res.drained);
    EXPECT_NEAR(res.avgLatency, 29.0, 1.5);
}

TEST(ZeroLoad, SpecMatchesWormholeWithDeepBuffers)
{
    auto wh = api::runSimulation(lowLoadConfig(RouterModel::Wormhole,
                                               1, 16));
    auto sp = api::runSimulation(
        lowLoadConfig(RouterModel::SpecVirtualChannel, 2, 8));
    ASSERT_TRUE(wh.drained && sp.drained);
    EXPECT_NEAR(wh.avgLatency, sp.avgLatency, 1.0);
}

TEST(ZeroLoad, VcOneStageSlowerPerHop)
{
    // The non-speculative VC router has one extra pipeline stage; over
    // ~6.25 routers that is ~6 extra cycles of zero-load latency.
    auto wh = api::runSimulation(lowLoadConfig(RouterModel::Wormhole,
                                               1, 16));
    auto vc = api::runSimulation(
        lowLoadConfig(RouterModel::VirtualChannel, 2, 8));
    ASSERT_TRUE(wh.drained && vc.drained);
    EXPECT_NEAR(vc.avgLatency - wh.avgLatency, 6.25, 1.5);
}

TEST(ZeroLoad, SingleCycleWormhole)
{
    auto res = api::runSimulation(lowLoadConfig(RouterModel::Wormhole,
                                                1, 8, true));
    ASSERT_TRUE(res.drained);
    // Unit-latency model: ~16 cycles in the paper; our accounting of
    // the injection link adds ~1.5 (documented in EXPERIMENTS.md).
    EXPECT_NEAR(res.avgLatency, 16.0, 2.0);
}

TEST(ZeroLoad, SingleCycleVcMatchesWormhole)
{
    auto wh = api::runSimulation(lowLoadConfig(RouterModel::Wormhole,
                                               1, 8, true));
    auto vc = api::runSimulation(
        lowLoadConfig(RouterModel::VirtualChannel, 2, 4, true));
    ASSERT_TRUE(wh.drained && vc.drained);
    EXPECT_NEAR(wh.avgLatency, vc.avgLatency, 1.0);
}
