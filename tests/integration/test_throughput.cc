/**
 * @file
 * Saturation-throughput integration tests.
 *
 * These assert the paper's *relative* claims (Section 5.1 / 5.2), which
 * are robust to small timing differences between our C++ models and the
 * authors' Verilog:
 *   - VC flow control beats wormhole throughput substantially;
 *   - speculation adds throughput when buffers are scarce (2 VCs x 4),
 *     and stops mattering once buffering covers the credit loop (4x4);
 *   - the single-cycle (unit-latency) model overestimates throughput of
 *     a realistically pipelined router;
 *   - deeper buffers raise saturation for every flow control.
 * Absolute knees are recorded in EXPERIMENTS.md via bench_fig13..15.
 */

#include <gtest/gtest.h>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

namespace {

double
saturation(RouterModel m, int vcs, int buf, bool single_cycle = false,
           sim::Cycle credit_latency = 1)
{
    api::SimConfig cfg;
    cfg.net.router.model = m;
    cfg.net.router.singleCycle = single_cycle;
    cfg.net.router.numVcs = vcs;
    cfg.net.router.bufDepth = buf;
    cfg.net.creditLatency = credit_latency;
    cfg.net.warmup = 4000;
    cfg.net.samplePackets = 5000;
    cfg.maxCycles = 100000;
    return api::findSaturation(cfg, 4.0, 0.02);
}

} // namespace

TEST(Throughput, VcBeatsWormhole8Buf)
{
    // Fig 13: WH(8) 40%, VC(2x4) 50% -- a substantial VC gain with the
    // same total buffering, contrary to Chien's conclusion.
    double wh = saturation(RouterModel::Wormhole, 1, 8);
    double vc = saturation(RouterModel::VirtualChannel, 2, 4);
    EXPECT_GT(vc, wh + 0.05);
}

TEST(Throughput, SpeculationHelpsWithScarceBuffers)
{
    // Fig 13: specVC(2x4) 55% vs VC(2x4) 50%.
    double vc = saturation(RouterModel::VirtualChannel, 2, 4);
    double sp = saturation(RouterModel::SpecVirtualChannel, 2, 4);
    EXPECT_GT(sp, vc + 0.01);
}

TEST(Throughput, SpeculationIrrelevantWithDeepBuffers)
{
    // Fig 15: with 4 VCs x 4 buffers the credit loop is covered and
    // both virtual-channel routers saturate together (70% in paper).
    double vc = saturation(RouterModel::VirtualChannel, 4, 4);
    double sp = saturation(RouterModel::SpecVirtualChannel, 4, 4);
    EXPECT_NEAR(sp, vc, 0.04);
}

TEST(Throughput, SpecBeatsWormholeSubstantially16Buf)
{
    // Fig 14 headline: specVC(2x8) 70% vs WH(16) 50% -- "up to 40%".
    double wh = saturation(RouterModel::Wormhole, 1, 16);
    double sp = saturation(RouterModel::SpecVirtualChannel, 2, 8);
    EXPECT_GT(sp, wh + 0.05);
}

TEST(Throughput, UnitLatencyModelOverestimatesThroughput)
{
    // Fig 17: single-cycle VC saturates at 65% vs 50% pipelined.
    double pipe = saturation(RouterModel::VirtualChannel, 2, 4);
    double unit = saturation(RouterModel::VirtualChannel, 2, 4, true);
    EXPECT_GT(unit, pipe + 0.03);
}

TEST(Throughput, DeeperBuffersRaiseSaturation)
{
    EXPECT_GT(saturation(RouterModel::Wormhole, 1, 16),
              saturation(RouterModel::Wormhole, 1, 8) + 0.02);
    EXPECT_GT(saturation(RouterModel::SpecVirtualChannel, 2, 8),
              saturation(RouterModel::SpecVirtualChannel, 2, 4) + 0.02);
}

TEST(Throughput, AcceptedTracksOfferedBelowSaturation)
{
    api::SimConfig cfg;
    cfg.net.router.model = RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.warmup = 4000;
    cfg.net.samplePackets = 5000;
    cfg.maxCycles = 100000;
    for (double f : {0.1, 0.2, 0.3, 0.4}) {
        cfg.net.setOfferedFraction(f);
        auto r = api::runSimulation(cfg);
        ASSERT_TRUE(r.drained);
        EXPECT_NEAR(r.acceptedFraction, f, 0.03) << "at load " << f;
    }
}

TEST(Throughput, SpeculationNeverHurts)
{
    // Conservative speculation (Section 6): prioritized non-spec
    // requests mean the spec router is never worse than non-spec.
    for (double f : {0.3, 0.5}) {
        api::SimConfig cfg;
        cfg.net.router.numVcs = 2;
        cfg.net.router.bufDepth = 4;
        cfg.net.warmup = 4000;
        cfg.net.samplePackets = 5000;
        cfg.maxCycles = 100000;
        cfg.net.setOfferedFraction(f);

        cfg.net.router.model = RouterModel::VirtualChannel;
        auto vc = api::runSimulation(cfg);
        cfg.net.router.model = RouterModel::SpecVirtualChannel;
        auto sp = api::runSimulation(cfg);
        ASSERT_TRUE(vc.drained && sp.drained);
        EXPECT_LE(sp.avgLatency, vc.avgLatency + 1.0) << "at load " << f;
    }
}
