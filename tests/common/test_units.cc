/** @file Unit tests for the tau / tau4 delay units. */

#include <gtest/gtest.h>

#include "common/units.hh"

using namespace pdr;

TEST(Units, Tau4IsFiveTau)
{
    EXPECT_DOUBLE_EQ(Tau::tau4PerTau, 5.0);
    EXPECT_DOUBLE_EQ(fromTau4(1.0).value(), 5.0);
    EXPECT_DOUBLE_EQ(Tau(5.0).inTau4(), 1.0);
}

TEST(Units, TypicalClockIs20Tau4)
{
    EXPECT_DOUBLE_EQ(typicalClock.inTau4(), 20.0);
    EXPECT_DOUBLE_EQ(typicalClock.value(), 100.0);
}

TEST(Units, Arithmetic)
{
    Tau a(10.0), b(2.5);
    EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
    EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
    EXPECT_DOUBLE_EQ((3.0 * b).value(), 7.5);
    a += b;
    EXPECT_DOUBLE_EQ(a.value(), 12.5);
}

TEST(Units, Comparison)
{
    EXPECT_LT(Tau(1.0), Tau(2.0));
    EXPECT_EQ(Tau(3.0), Tau(3.0));
    EXPECT_GE(Tau(4.0), Tau(3.0));
}

TEST(Units, DefaultIsZero)
{
    EXPECT_DOUBLE_EQ(Tau().value(), 0.0);
}

TEST(Units, RoundTripConversion)
{
    for (double t4 : {0.5, 1.0, 8.4, 16.9, 20.0}) {
        EXPECT_DOUBLE_EQ(fromTau4(t4).inTau4(), t4);
    }
}
