/** @file Unit tests for logging helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace pdr;

TEST(Logging, Csprintf)
{
    EXPECT_EQ(csprintf("x=%d", 5), "x=5");
    EXPECT_EQ(csprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(csprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(Logging, CsprintfLongString)
{
    std::string big(500, 'x');
    EXPECT_EQ(csprintf("%s", big.c_str()), big);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(pdr_panic("boom %d", 3), "boom 3");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH(pdr_assert(1 == 2), "assertion");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(pdr_fatal("bad config"),
                testing::ExitedWithCode(1), "bad config");
}

TEST(Logging, AssertPassesOnTrue)
{
    pdr_assert(1 + 1 == 2);     // Must not abort.
    SUCCEED();
}

// ---------------------------------------------------------------------
// Log-level filtering.  warn/inform respect the process-wide level;
// panic/fatal always print (they carry the message the process dies
// with).  Each test restores the level so test order cannot leak.
// ---------------------------------------------------------------------

namespace {

/** RAII level override restoring the previous level on scope exit. */
class ScopedLogLevel
{
  public:
    explicit ScopedLogLevel(LogLevel level) : prev_(logLevel())
    {
        setLogLevel(level);
    }
    ~ScopedLogLevel() { setLogLevel(prev_); }

  private:
    LogLevel prev_;
};

} // namespace

TEST(LogLevel, DefaultShowsWarnHidesInform)
{
    ScopedLogLevel guard(LogLevel::Warn);

    testing::internal::CaptureStderr();
    pdr_warn("warn at default level");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn: warn at default level"),
              std::string::npos);

    testing::internal::CaptureStderr();
    pdr_inform("info at default level");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(LogLevel, SilentSuppressesWarnAndInform)
{
    ScopedLogLevel guard(LogLevel::Silent);
    testing::internal::CaptureStderr();
    pdr_warn("hidden warn");
    pdr_inform("hidden info");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(LogLevel, InfoShowsBoth)
{
    ScopedLogLevel guard(LogLevel::Info);
    testing::internal::CaptureStderr();
    pdr_warn("loud warn");
    pdr_inform("loud info");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn: loud warn"), std::string::npos);
    EXPECT_NE(out.find("info: loud info"), std::string::npos);
}

TEST(LogLevel, SetAndReadRoundTrip)
{
    ScopedLogLevel guard(LogLevel::Warn);
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
}

TEST(LogLevelDeath, PanicPrintsEvenWhenSilent)
{
    ScopedLogLevel guard(LogLevel::Silent);
    EXPECT_DEATH(pdr_panic("silent panic %d", 9), "silent panic 9");
}

TEST(LogLevelDeath, FatalPrintsEvenWhenSilent)
{
    ScopedLogLevel guard(LogLevel::Silent);
    EXPECT_EXIT(pdr_fatal("silent fatal"),
                testing::ExitedWithCode(1), "silent fatal");
}
