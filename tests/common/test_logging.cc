/** @file Unit tests for logging helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace pdr;

TEST(Logging, Csprintf)
{
    EXPECT_EQ(csprintf("x=%d", 5), "x=5");
    EXPECT_EQ(csprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(csprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(Logging, CsprintfLongString)
{
    std::string big(500, 'x');
    EXPECT_EQ(csprintf("%s", big.c_str()), big);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(pdr_panic("boom %d", 3), "boom 3");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH(pdr_assert(1 == 2), "assertion");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(pdr_fatal("bad config"),
                testing::ExitedWithCode(1), "bad config");
}

TEST(Logging, AssertPassesOnTrue)
{
    pdr_assert(1 + 1 == 2);     // Must not abort.
    SUCCEED();
}
