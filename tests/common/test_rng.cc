/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace pdr;

TEST(RngTest, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, RangeBounds)
{
    Rng r(3);
    for (std::uint32_t n : {1u, 2u, 7u, 64u}) {
        for (int i = 0; i < 1000; i++) {
            auto v = r.range(n);
            EXPECT_LT(v, n);
        }
    }
}

TEST(RngTest, RangeCoversAllValues)
{
    Rng r(5);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; i++)
        hits[r.range(8)]++;
    for (int v = 0; v < 8; v++)
        EXPECT_GT(hits[v], 800) << "value " << v << " under-represented";
}

TEST(RngTest, BernoulliRate)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}
