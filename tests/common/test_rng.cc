/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

using namespace pdr;

TEST(RngTest, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, RangeBounds)
{
    Rng r(3);
    for (std::uint32_t n : {1u, 2u, 7u, 64u}) {
        for (int i = 0; i < 1000; i++) {
            auto v = r.range(n);
            EXPECT_LT(v, n);
        }
    }
}

TEST(RngTest, RangeCoversAllValues)
{
    Rng r(5);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; i++)
        hits[r.range(8)]++;
    for (int v = 0; v < 8; v++)
        EXPECT_GT(hits[v], 800) << "value " << v << " under-represented";
}

TEST(RngTest, BernoulliRate)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

// ---------------------------------------------------------------------
// Seed-derivation stability.  Sweep points, sources and workers derive
// their stream seeds with deriveSeed(base, index); if its output ever
// changes, every golden CSV silently shifts.  Pin known values so a
// mixing-function change fails here, loudly, instead.
// ---------------------------------------------------------------------

TEST(RngTest, DeriveSeedGoldenValues)
{
    EXPECT_EQ(deriveSeed(1, 0), 0x1d0b14e4db018fedULL);
    EXPECT_EQ(deriveSeed(1, 1), 0x84134e46818293edULL);
    EXPECT_EQ(deriveSeed(42, 7), 0x70a08880ac21f493ULL);
    EXPECT_EQ(deriveSeed(0, 0), 0xe220a8397b1dcdafULL);
}

TEST(RngTest, SplitmixGoldenSequence)
{
    std::uint64_t st = 123;
    EXPECT_EQ(splitmix64(st), 0xb4dc9bd462de412bULL);
    EXPECT_EQ(splitmix64(st), 0xfa023ce9f06fb77cULL);
}

TEST(RngTest, RawStreamGoldenValues)
{
    Rng r(2026);
    EXPECT_EQ(r.next(), 0x92e011592e98ae15ULL);
    EXPECT_EQ(r.next(), 0x489f37946d6d18d8ULL);
}

TEST(RngTest, DeriveSeedIsStableAcrossCalls)
{
    // Pure function of (base, index): no hidden per-process state.
    for (std::uint64_t base : {0ULL, 1ULL, 42ULL, ~0ULL}) {
        for (std::uint64_t idx : {0ULL, 1ULL, 63ULL, 1000ULL})
            EXPECT_EQ(deriveSeed(base, idx), deriveSeed(base, idx));
    }
}

TEST(RngTest, DeriveSeedSeparatesNearbyPoints)
{
    // Adjacent sweep points and adjacent bases must land on distinct
    // seeds -- collisions would make two points share an RNG stream.
    std::set<std::uint64_t> seen;
    for (std::uint64_t base = 0; base < 16; base++) {
        for (std::uint64_t idx = 0; idx < 64; idx++)
            seen.insert(deriveSeed(base, idx));
    }
    EXPECT_EQ(seen.size(), 16u * 64u);
}

// ---------------------------------------------------------------------
// Stream independence.  Every simulation object owns an Rng seeded via
// deriveSeed; per-object results may not depend on any other stream.
// ---------------------------------------------------------------------

TEST(RngTest, DerivedStreamsAreUncorrelated)
{
    Rng a(deriveSeed(99, 0)), b(deriveSeed(99, 1));
    const int n = 20000;
    int agree = 0;
    for (int i = 0; i < n; i++)
        agree += a.bernoulli(0.5) == b.bernoulli(0.5) ? 1 : 0;
    // Independent fair streams agree ~n/2 +- a few sigma (sigma =
    // sqrt(n)/2 ~ 71); 5 sigma keeps flake probability negligible.
    EXPECT_NEAR(agree, n / 2, 360);
}

TEST(RngTest, StreamUnaffectedByInterleavedDraws)
{
    // Drawing from one stream must not perturb another: run stream A
    // alone, then re-run it with stream B interleaved.
    Rng solo(deriveSeed(5, 3));
    std::vector<std::uint64_t> expect;
    expect.reserve(200);
    for (int i = 0; i < 200; i++)
        expect.push_back(solo.next());

    Rng a(deriveSeed(5, 3)), b(deriveSeed(5, 4));
    for (int i = 0; i < 200; i++) {
        (void)b.next();
        EXPECT_EQ(a.next(), expect[std::size_t(i)]);
        (void)b.uniform();
    }
}

TEST(RngTest, DerivedStreamDiffersFromBaseStream)
{
    // deriveSeed(base, i) must not reproduce the base-seeded stream,
    // or point 0 of a sweep would alias the un-derived run.
    Rng base(77), derived(deriveSeed(77, 0));
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += base.next() == derived.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}
