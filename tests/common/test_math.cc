/** @file Unit tests for math helpers. */

#include <gtest/gtest.h>

#include "common/math.hh"

using namespace pdr;

TEST(MathHelpers, Log4)
{
    EXPECT_DOUBLE_EQ(log4(1.0), 0.0);
    EXPECT_DOUBLE_EQ(log4(4.0), 1.0);
    EXPECT_DOUBLE_EQ(log4(16.0), 2.0);
    EXPECT_DOUBLE_EQ(log4(64.0), 3.0);
    EXPECT_NEAR(log4(5.0), 1.160964, 1e-6);
}

TEST(MathHelpers, Log8)
{
    EXPECT_DOUBLE_EQ(log8(1.0), 0.0);
    EXPECT_DOUBLE_EQ(log8(8.0), 1.0);
    EXPECT_DOUBLE_EQ(log8(64.0), 2.0);
}

TEST(MathHelpers, Log2)
{
    EXPECT_DOUBLE_EQ(log2d(2.0), 1.0);
    EXPECT_DOUBLE_EQ(log2d(32.0), 5.0);
}

TEST(MathHelpers, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 5), 1);
    EXPECT_EQ(ceilDiv(5, 5), 1);
}

TEST(MathHelpers, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(12));
}

class LogIdentityTest : public testing::TestWithParam<double>
{
};

TEST_P(LogIdentityTest, BaseChangeIdentity)
{
    double x = GetParam();
    // log4(x) = log2(x)/2 and log8(x) = log2(x)/3 by construction;
    // verify against the pow inverse instead.
    EXPECT_NEAR(std::pow(4.0, log4(x)), x, 1e-9 * x);
    EXPECT_NEAR(std::pow(8.0, log8(x)), x, 1e-9 * x);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LogIdentityTest,
                         testing::Values(1.0, 2.0, 5.0, 7.0, 10.0, 32.0,
                                         160.0, 1024.0));
