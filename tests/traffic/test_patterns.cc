/** @file Tests for traffic patterns and the pattern registry. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>

#include "traffic/pattern.hh"

using namespace pdr;
using namespace pdr::traffic;

namespace {
constexpr int K = 8;
constexpr int N = K * K;
} // namespace

TEST(Patterns, UniformNeverPicksSelf)
{
    UniformPattern p(N);
    Rng rng(1);
    for (sim::NodeId src : {0, 7, 31, 63}) {
        for (int i = 0; i < 2000; i++) {
            auto d = p.pick(src, rng);
            EXPECT_NE(d, src);
            EXPECT_GE(d, 0);
            EXPECT_LT(d, N);
        }
    }
}

TEST(Patterns, UniformCoversAllDestinations)
{
    UniformPattern p(N);
    Rng rng(2);
    std::map<sim::NodeId, int> hits;
    for (int i = 0; i < 63 * 400; i++)
        hits[p.pick(0, rng)]++;
    EXPECT_EQ(hits.size(), std::size_t(N - 1));
    for (const auto &[d, n] : hits)
        EXPECT_GT(n, 200) << "dest " << d;
}

TEST(Patterns, TransposeMapsCoordinates)
{
    TransposePattern p(N);
    Rng rng(3);
    // (x=2, y=5) = node 42 -> (x=5, y=2) = node 21.
    EXPECT_EQ(p.pick(5 * K + 2, rng), sim::NodeId(2 * K + 5));
}

TEST(Patterns, TransposeDiagonalFallsBackToUniform)
{
    TransposePattern p(N);
    Rng rng(4);
    sim::NodeId diag = 3 * K + 3;
    for (int i = 0; i < 100; i++)
        EXPECT_NE(p.pick(diag, rng), diag);
}

TEST(Patterns, BitComplement)
{
    BitComplementPattern p(N);
    Rng rng(5);
    EXPECT_EQ(p.pick(0, rng), sim::NodeId(63));
    EXPECT_EQ(p.pick(63, rng), sim::NodeId(0));
    EXPECT_EQ(p.pick(21, rng), sim::NodeId(42));
}

TEST(Patterns, TornadoHalfwayInX)
{
    TornadoPattern p(topo::Lattice::mesh2D(K));
    Rng rng(6);
    // x -> (x + 3) mod 8 for k=8 (ceil(k/2)-1 = 3), same y.
    EXPECT_EQ(p.pick(0, rng), sim::NodeId(3));
    EXPECT_EQ(p.pick(6, rng), sim::NodeId(1));
    EXPECT_EQ(p.pick(K + 0, rng), sim::NodeId(K + 3));
}

TEST(Patterns, NeighborWraps)
{
    NeighborPattern p(topo::Lattice::mesh2D(K));
    Rng rng(7);
    EXPECT_EQ(p.pick(0, rng), sim::NodeId(1));
    EXPECT_EQ(p.pick(7, rng), sim::NodeId(0));
    EXPECT_EQ(p.pick(2 * K + 7, rng), sim::NodeId(2 * K + 0));
}

TEST(Patterns, HotspotBias)
{
    sim::NodeId hot = 36;
    HotspotPattern p(N, hot, 0.25);
    Rng rng(8);
    int to_hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        if (p.pick(0, rng) == hot)
            to_hot++;
    // 25% direct + ~1/63 of the uniform remainder.
    double expect = 0.25 + 0.75 / 63.0;
    EXPECT_NEAR(to_hot / double(n), expect, 0.02);
}

TEST(Patterns, BitReverseMapsAndCovers)
{
    BitReversePattern p(N);
    Rng rng(10);
    // 6-bit reversal on an 8x8: 1 = 000001 -> 100000 = 32.
    EXPECT_EQ(p.pick(1, rng), sim::NodeId(32));
    EXPECT_EQ(p.pick(32, rng), sim::NodeId(1));
    // 11 = 001011 -> 110100 = 52.
    EXPECT_EQ(p.pick(11, rng), sim::NodeId(52));
    // Bit reversal is an involution wherever it moves a node.
    for (sim::NodeId s = 0; s < N; s++) {
        auto d = p.pick(s, rng);
        EXPECT_NE(d, s);
        if (p.pick(d, rng) != s) {
            // Only palindromic sources (uniform fallback) may break
            // the involution.
            auto rev = [&](sim::NodeId v) {
                unsigned r = 0;
                for (int i = 0; i < 6; i++)
                    r |= ((unsigned(v) >> i) & 1u) << (5 - i);
                return sim::NodeId(r);
            };
            EXPECT_TRUE(rev(s) == s || rev(d) == d);
        }
    }
}

TEST(Patterns, BitReversePalindromeFallsBackToUniform)
{
    BitReversePattern p(N);
    Rng rng(11);
    // 33 = 100001 is a palindrome: mapped uniformly, never to itself.
    std::map<sim::NodeId, int> hits;
    for (int i = 0; i < 1000; i++)
        hits[p.pick(33, rng)]++;
    EXPECT_EQ(hits.count(33), 0u);
    EXPECT_GT(hits.size(), 40u);
}

TEST(Patterns, ShuffleRotatesBits)
{
    ShufflePattern p(N);
    Rng rng(12);
    // 6-bit rotate left: 1 = 000001 -> 000010 = 2.
    EXPECT_EQ(p.pick(1, rng), sim::NodeId(2));
    // 32 = 100000 -> 000001 = 1.
    EXPECT_EQ(p.pick(32, rng), sim::NodeId(1));
    // 44 = 101100 -> 011001 = 25.
    EXPECT_EQ(p.pick(44, rng), sim::NodeId(25));
}

TEST(Patterns, ShuffleFixedPointsFallBackToUniform)
{
    ShufflePattern p(N);
    Rng rng(13);
    for (sim::NodeId fixed : {sim::NodeId(0), sim::NodeId(N - 1)}) {
        for (int i = 0; i < 200; i++)
            EXPECT_NE(p.pick(fixed, rng), fixed);
    }
}

TEST(PatternRegistry, ContainsEveryBuiltin)
{
    auto &reg = PatternRegistry::instance();
    for (const char *name : {"uniform", "transpose", "bitcomp",
                             "tornado", "neighbor", "hotspot",
                             "bitrev", "shuffle", "permfile"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
        EXPECT_FALSE(reg.description(name).empty()) << name;
    }
}

TEST(PatternRegistry, FactoryProducesAllRegisteredPatterns)
{
    for (const auto &name : PatternRegistry::instance().names()) {
        if (name == "permfile")
            continue;   // Needs a file; covered by the PermFile tests.
        auto p = makePattern(name, K);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_FALSE(p->name().empty()) << name;
        Rng rng(9);
        for (int i = 0; i < 50; i++) {
            auto d = p->pick(5, rng);
            EXPECT_GE(d, 0);
            EXPECT_LT(d, N);
        }
    }
}

TEST(PatternRegistry, UnknownNameThrowsListingKnownNames)
{
    try {
        makePattern("no-such-pattern", K);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no-such-pattern"), std::string::npos);
        EXPECT_NE(msg.find("uniform"), std::string::npos);
    }
}

TEST(PatternRegistry, BitcompRejectsNonPow2NodeCount)
{
    EXPECT_THROW(makePattern("bitcomp", 3), std::invalid_argument);
    EXPECT_THROW(makePattern("bitrev", 3), std::invalid_argument);
    EXPECT_THROW(makePattern("shuffle", 3), std::invalid_argument);
}

namespace {

/** A scenario extension: everyone sends to node 0. */
class ToZeroPattern : public TrafficPattern
{
  public:
    sim::NodeId
    pick(sim::NodeId src, Rng &rng) const override
    {
        (void)rng;
        return src == 0 ? sim::NodeId(1) : sim::NodeId(0);
    }
    std::string name() const override { return "tozero"; }
};

} // namespace

TEST(PatternRegistry, OneLineRegistrationMakesPatternReachable)
{
    PatternRegistry::instance().add(
        "tozero",
        [](const PatternEnv &) {
            return std::make_unique<ToZeroPattern>();
        },
        "everyone sends to node 0");

    auto names = PatternRegistry::instance().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "tozero"),
              names.end());
    auto p = makePattern("tozero", K);
    Rng rng(1);
    EXPECT_EQ(p->pick(5, rng), sim::NodeId(0));
}

TEST(Patterns, DeterministicGivenRngSeed)
{
    UniformPattern p(N);
    Rng a(77), b(77);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(p.pick(3, a), p.pick(3, b));
}

// ---------------------------------------------------------------------
// permfile: explicit permutations loaded from disk.
// ---------------------------------------------------------------------

namespace {

std::string
writePermFile(const char *name, const std::string &text)
{
    std::string path = testing::TempDir() + "pdr_perm_" + name + ".txt";
    FILE *f = fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr) << path;
    fwrite(text.data(), 1, text.size(), f);
    fclose(f);
    return path;
}

PatternEnv
meshEnv(int k, const std::string &permfile = "")
{
    return {topo::Lattice::mesh2D(k), permfile};
}

} // namespace

TEST(PermFile, LoadsAPermutation)
{
    // 2x2 mesh: a rotation 0->1->2->3->0, with comments and blanks.
    auto path = writePermFile("rot",
                              "# rotation\n1\n2\n\n3\n0  # wraps\n");
    auto p = makePattern("permfile", meshEnv(2, path));
    Rng rng(1);
    EXPECT_EQ(p->pick(0, rng), sim::NodeId(1));
    EXPECT_EQ(p->pick(1, rng), sim::NodeId(2));
    EXPECT_EQ(p->pick(2, rng), sim::NodeId(3));
    EXPECT_EQ(p->pick(3, rng), sim::NodeId(0));
}

TEST(PermFile, FixedPointsFallBackToUniform)
{
    auto path = writePermFile("fixed", "0\n2\n1\n3\n");
    auto p = makePattern("permfile", meshEnv(2, path));
    Rng rng(2);
    for (int i = 0; i < 200; i++) {
        EXPECT_NE(p->pick(0, rng), sim::NodeId(0));
        EXPECT_NE(p->pick(3, rng), sim::NodeId(3));
    }
    EXPECT_EQ(p->pick(1, rng), sim::NodeId(2));
}

TEST(PermFileDeath, ErrorsNameTheOffendingLine)
{
    struct Case
    {
        const char *name;
        const char *text;
        const char *needle;
    };
    for (const Case &c : {
             Case{"junk", "1\nbanana\n3\n0\n", "line 2"},
             Case{"range", "1\n7\n3\n0\n", "line 2"},
             Case{"dup", "1\n1\n3\n0\n", "line 2"},
             Case{"extra", "1\n2\n3\n0\n2\n", "line 5"},
         }) {
        try {
            makePattern("permfile",
                        meshEnv(2, writePermFile(c.name, c.text)));
            FAIL() << c.name << ": expected std::invalid_argument";
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find(c.needle),
                      std::string::npos)
                << c.name << ": " << e.what();
        }
    }
}

TEST(PermFileDeath, WrongEntryCountAndMissingFileRejected)
{
    try {
        makePattern("permfile",
                    meshEnv(2, writePermFile("short", "1\n0\n")));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("expected 4 entries"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(makePattern("permfile", meshEnv(2, "/no/such/file")),
                 std::invalid_argument);
    EXPECT_THROW(makePattern("permfile", meshEnv(2, "")),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Concentration: patterns are defined over terminal nodes.
// ---------------------------------------------------------------------

TEST(Patterns, ConcentrationRespectedByGeometricPatterns)
{
    topo::Lattice cm = topo::Lattice::cmesh(4, 4);
    PatternEnv env{cm, ""};
    Rng rng(3);

    // Tornado moves the hosting router, keeping the local index.
    auto tornado = makePattern("tornado", env);
    for (sim::NodeId src = 0; src < cm.numNodes(); src += 5) {
        auto d = tornado->pick(src, rng);
        EXPECT_EQ(cm.localIndexOf(d), cm.localIndexOf(src));
        EXPECT_NE(cm.routerOf(d), cm.routerOf(src));
    }

    // Uniform covers the full terminal-node space, not just routers.
    auto uniform = makePattern("uniform", env);
    std::map<sim::NodeId, int> hits;
    for (int i = 0; i < 20000; i++)
        hits[uniform->pick(0, rng)]++;
    EXPECT_EQ(hits.size(), std::size_t(cm.numNodes() - 1));

    // Transpose permutes the 64-node square of the c=4 cmesh.
    auto transpose = makePattern("transpose", env);
    EXPECT_EQ(transpose->pick(1, rng), sim::NodeId(8));
}
