/** @file Tests for the constant-rate packet source. */

#include <gtest/gtest.h>

#include <map>

#include "traffic/source.hh"

using namespace pdr;
using namespace pdr::traffic;
using sim::Flit;

namespace {

struct SourceJig
{
    sim::FlitPool pool;
    sim::Channel<sim::FlitRef> flits{1};
    sim::Channel<sim::Credit> credits{1};
    MeasureController ctrl{0, 1000000};
    UniformPattern pattern{4};
    SourceConfig cfg;
    std::unique_ptr<Source> src;
    sim::Cycle now = 0;

    explicit SourceJig(double rate, int vcs = 1, int buf = 8,
                       int len = 5)
    {
        cfg.numVcs = vcs;
        cfg.bufDepth = buf;
        cfg.packetLength = len;
        cfg.packetRate = rate;
        cfg.seed = 5;
        src = std::make_unique<Source>(1, cfg, pattern, ctrl, pool,
                                       &flits, &credits);
    }

    std::vector<Flit>
    run(int cycles, bool echo_credits = true)
    {
        std::vector<Flit> out;
        for (int i = 0; i < cycles; i++) {
            src->tick(now);
            now++;
            while (auto r = flits.pop(now)) {
                Flit f = pool.get(*r);
                pool.free(*r);
                if (echo_credits)
                    credits.push(sim::Credit{f.vc}, now);
                out.push_back(f);
            }
        }
        return out;
    }
};

} // namespace

TEST(SourceTest, ZeroRateProducesNothing)
{
    SourceJig j(0.0);
    EXPECT_TRUE(j.run(500).empty());
    EXPECT_EQ(j.src->created(), 0u);
}

TEST(SourceTest, RateMatchesBernoulli)
{
    SourceJig j(0.05);
    j.run(20000);
    EXPECT_NEAR(j.src->created() / 20000.0, 0.05, 0.01);
}

TEST(SourceTest, PacketsAreWellFormed)
{
    SourceJig j(0.02);
    auto flits = j.run(5000);
    std::map<sim::PacketId, int> seq;
    for (const auto &f : flits) {
        EXPECT_EQ(int(f.seq), seq[f.packet]);
        if (f.seq == 0)
            EXPECT_EQ(f.type, sim::FlitType::Head);
        else if (f.seq == 4)
            EXPECT_EQ(f.type, sim::FlitType::Tail);
        else
            EXPECT_EQ(f.type, sim::FlitType::Body);
        EXPECT_EQ(f.src, 1);
        EXPECT_NE(f.dest, 1);
        seq[f.packet]++;
    }
    for (const auto &[id, n] : seq)
        EXPECT_LE(n, 5);
}

TEST(SourceTest, SingleFlitPackets)
{
    SourceJig j(0.05, 1, 8, 1);
    auto flits = j.run(2000);
    ASSERT_FALSE(flits.empty());
    for (const auto &f : flits)
        EXPECT_EQ(f.type, sim::FlitType::HeadTail);
}

TEST(SourceTest, RespectsCredits)
{
    // No credits echoed: only bufDepth flits may ever be sent.
    SourceJig j(0.5, 1, 4);
    auto flits = j.run(2000, /*echo_credits=*/false);
    EXPECT_EQ(flits.size(), 4u);
    EXPECT_GT(j.src->backlog(), 0u);
}

TEST(SourceTest, ResumesOnCredit)
{
    SourceJig j(0.5, 1, 4);
    j.run(100, false);
    // Return 2 credits manually.
    j.credits.push(sim::Credit{0}, j.now);
    j.credits.push(sim::Credit{0}, j.now);
    auto more = j.run(50, false);
    EXPECT_EQ(more.size(), 2u);
}

TEST(SourceTest, AtMostOneFlitPerCycle)
{
    SourceJig j(1.0, 4, 8);
    auto flits = j.run(300);
    EXPECT_LE(flits.size(), 300u);
    // Under saturation injection with credits echoed, the source should
    // sustain nearly one flit per cycle.
    EXPECT_GT(flits.size(), 250u);
}

TEST(SourceTest, MultiVcInterleavingKeepsPerVcOrder)
{
    SourceJig j(0.3, 2, 4);
    auto flits = j.run(5000);
    // Per VC, flits of a packet are contiguous and ordered.
    std::map<int, sim::PacketId> active;
    std::map<int, int> seq;
    for (const auto &f : flits) {
        if (f.seq == 0) {
            active[f.vc] = f.packet;
            seq[f.vc] = 0;
        }
        EXPECT_EQ(active[f.vc], f.packet)
            << "packet interleaved within one VC";
        EXPECT_EQ(int(f.seq), seq[f.vc]);
        seq[f.vc]++;
    }
}

TEST(SourceTest, UsesAllVcs)
{
    SourceJig j(0.8, 4, 2);
    auto flits = j.run(4000);
    std::map<int, int> per_vc;
    for (const auto &f : flits)
        per_vc[f.vc]++;
    EXPECT_EQ(per_vc.size(), 4u);
}

TEST(SourceTest, LatencyClockStartsAtCreation)
{
    SourceJig j(0.02);
    auto flits = j.run(3000);
    for (const auto &f : flits)
        EXPECT_LE(f.ctime, j.now);
}

TEST(SourceTest, DeterministicAcrossRuns)
{
    SourceJig a(0.1), b(0.1);
    auto fa = a.run(1000);
    auto fb = b.run(1000);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); i++) {
        EXPECT_EQ(fa[i].packet, fb[i].packet);
        EXPECT_EQ(fa[i].dest, fb[i].dest);
    }
}
