/** @file Tests for the constant-rate packet source. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "traffic/source.hh"

using namespace pdr;
using namespace pdr::traffic;
using sim::Flit;

namespace {

struct SourceJig
{
    sim::FlitPool pool;
    sim::Channel<sim::FlitRef> flits{1};
    sim::Channel<sim::Credit> credits{1};
    MeasureController ctrl{0, 1000000};
    UniformPattern pattern{4};
    SourceConfig cfg;
    std::unique_ptr<Source> src;
    sim::Cycle now = 0;

    explicit SourceJig(double rate, int vcs = 1, int buf = 8,
                       int len = 5)
    {
        cfg.numVcs = vcs;
        cfg.bufDepth = buf;
        cfg.packetLength = len;
        cfg.packetRate = rate;
        cfg.seed = 5;
        src = std::make_unique<Source>(1, cfg, pattern, ctrl, pool,
                                       &flits, &credits);
    }

    std::vector<Flit>
    run(int cycles, bool echo_credits = true)
    {
        std::vector<Flit> out;
        for (int i = 0; i < cycles; i++) {
            src->tick(now);
            now++;
            while (auto r = flits.pop(now)) {
                Flit f = pool.get(*r);
                pool.free(*r);
                if (echo_credits)
                    credits.push(sim::Credit{f.vc}, now);
                out.push_back(f);
            }
        }
        return out;
    }
};

} // namespace

TEST(SourceTest, ZeroRateProducesNothing)
{
    SourceJig j(0.0);
    EXPECT_TRUE(j.run(500).empty());
    EXPECT_EQ(j.src->created(), 0u);
}

TEST(SourceTest, RateMatchesBernoulli)
{
    SourceJig j(0.05);
    j.run(20000);
    EXPECT_NEAR(j.src->created() / 20000.0, 0.05, 0.01);
}

TEST(SourceTest, PacketsAreWellFormed)
{
    SourceJig j(0.02);
    auto flits = j.run(5000);
    std::map<sim::PacketId, int> seq;
    for (const auto &f : flits) {
        EXPECT_EQ(int(f.seq), seq[f.packet]);
        if (f.seq == 0)
            EXPECT_EQ(f.type, sim::FlitType::Head);
        else if (f.seq == 4)
            EXPECT_EQ(f.type, sim::FlitType::Tail);
        else
            EXPECT_EQ(f.type, sim::FlitType::Body);
        EXPECT_EQ(f.src, 1);
        EXPECT_NE(f.dest, 1);
        seq[f.packet]++;
    }
    for (const auto &[id, n] : seq)
        EXPECT_LE(n, 5);
}

TEST(SourceTest, SingleFlitPackets)
{
    SourceJig j(0.05, 1, 8, 1);
    auto flits = j.run(2000);
    ASSERT_FALSE(flits.empty());
    for (const auto &f : flits)
        EXPECT_EQ(f.type, sim::FlitType::HeadTail);
}

TEST(SourceTest, RespectsCredits)
{
    // No credits echoed: only bufDepth flits may ever be sent.
    SourceJig j(0.5, 1, 4);
    auto flits = j.run(2000, /*echo_credits=*/false);
    EXPECT_EQ(flits.size(), 4u);
    EXPECT_GT(j.src->backlog(), 0u);
}

TEST(SourceTest, ResumesOnCredit)
{
    SourceJig j(0.5, 1, 4);
    j.run(100, false);
    // Return 2 credits manually.
    j.credits.push(sim::Credit{0}, j.now);
    j.credits.push(sim::Credit{0}, j.now);
    auto more = j.run(50, false);
    EXPECT_EQ(more.size(), 2u);
}

TEST(SourceTest, AtMostOneFlitPerCycle)
{
    SourceJig j(1.0, 4, 8);
    auto flits = j.run(300);
    EXPECT_LE(flits.size(), 300u);
    // Under saturation injection with credits echoed, the source should
    // sustain nearly one flit per cycle.
    EXPECT_GT(flits.size(), 250u);
}

TEST(SourceTest, MultiVcInterleavingKeepsPerVcOrder)
{
    SourceJig j(0.3, 2, 4);
    auto flits = j.run(5000);
    // Per VC, flits of a packet are contiguous and ordered.
    std::map<int, sim::PacketId> active;
    std::map<int, int> seq;
    for (const auto &f : flits) {
        if (f.seq == 0) {
            active[f.vc] = f.packet;
            seq[f.vc] = 0;
        }
        EXPECT_EQ(active[f.vc], f.packet)
            << "packet interleaved within one VC";
        EXPECT_EQ(int(f.seq), seq[f.vc]);
        seq[f.vc]++;
    }
}

TEST(SourceTest, UsesAllVcs)
{
    SourceJig j(0.8, 4, 2);
    auto flits = j.run(4000);
    std::map<int, int> per_vc;
    for (const auto &f : flits)
        per_vc[f.vc]++;
    EXPECT_EQ(per_vc.size(), 4u);
}

TEST(SourceTest, LatencyClockStartsAtCreation)
{
    SourceJig j(0.02);
    auto flits = j.run(3000);
    for (const auto &f : flits)
        EXPECT_LE(f.ctime, j.now);
}

TEST(SourceTest, DeterministicAcrossRuns)
{
    SourceJig a(0.1), b(0.1);
    auto fa = a.run(1000);
    auto fb = b.run(1000);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); i++) {
        EXPECT_EQ(fa[i].packet, fb[i].packet);
        EXPECT_EQ(fa[i].dest, fb[i].dest);
    }
}

namespace {

/** A jig whose source uses MMPP bursty arrivals. */
struct BurstyJig : SourceJig
{
    BurstyJig(double rate, double on, double off) : SourceJig(0.0)
    {
        cfg.packetRate = rate;
        cfg.burstOn = on;
        cfg.burstOff = off;
        src = std::make_unique<Source>(1, cfg, pattern, ctrl, pool,
                                       &flits, &credits);
    }
};

} // namespace

TEST(SourceBurstTest, MeanRateMatchesConfiguredLoad)
{
    // The ON-state boost is scaled by the duty cycle, so the long-run
    // mean arrival rate stays at packetRate.
    BurstyJig j(0.05, 50, 50);
    j.run(100000);
    EXPECT_NEAR(j.src->created() / 100000.0, 0.05, 0.01);
}

TEST(SourceBurstTest, ArrivalsClusterIntoBursts)
{
    // Count arrivals in 100-cycle windows: an MMPP with 50/450 dwell
    // must show many silent windows and some dense ones, far outside
    // what the Bernoulli process of equal mean produces.
    BurstyJig bursty(0.04, 50, 450);
    SourceJig steady(0.04);

    auto window_counts = [](SourceJig &j) {
        std::vector<int> counts;
        for (int w = 0; w < 400; w++) {
            auto before = j.src->created();
            j.run(100);
            counts.push_back(int(j.src->created() - before));
        }
        return counts;
    };
    auto bc = window_counts(bursty);
    auto sc = window_counts(steady);

    auto zeros = [](const std::vector<int> &v) {
        int n = 0;
        for (int c : v)
            n += c == 0 ? 1 : 0;
        return n;
    };
    // Mean ~4 arrivals per window: steady windows are almost never
    // empty; the 10%-duty MMPP idles through most of them.
    EXPECT_GT(zeros(bc), zeros(sc) + 100);
    EXPECT_GT(*std::max_element(bc.begin(), bc.end()),
              *std::max_element(sc.begin(), sc.end()));
}

TEST(SourceBurstTest, DisabledBurstKeepsTheHistoricalStream)
{
    // burst_on = burst_off = 0 must leave the Bernoulli RNG stream
    // untouched (the golden-CSV gates depend on it).
    SourceJig plain(0.1);
    BurstyJig off(0.1, 0, 0);
    auto fa = plain.run(2000);
    auto fb = off.run(2000);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); i++) {
        EXPECT_EQ(fa[i].packet, fb[i].packet);
        EXPECT_EQ(fa[i].dest, fb[i].dest);
        EXPECT_EQ(fa[i].ctime, fb[i].ctime);
    }
}
