/** @file Tests for the measurement controller (paper Section 5). */

#include <gtest/gtest.h>

#include "traffic/measure.hh"

using namespace pdr::traffic;

TEST(Measure, NoTaggingDuringWarmup)
{
    MeasureController c(1000, 10);
    EXPECT_FALSE(c.tryTag(0));
    EXPECT_FALSE(c.tryTag(999));
    EXPECT_EQ(c.tagged(), 0u);
}

TEST(Measure, TagsExactlySampleSize)
{
    MeasureController c(100, 5);
    int tagged = 0;
    for (int i = 0; i < 20; i++)
        tagged += c.tryTag(100 + i) ? 1 : 0;
    EXPECT_EQ(tagged, 5);
    EXPECT_EQ(c.tagged(), 5u);
}

TEST(Measure, DoneOnlyWhenAllReceived)
{
    MeasureController c(0, 3);
    EXPECT_FALSE(c.done());
    for (int i = 0; i < 3; i++)
        EXPECT_TRUE(c.tryTag(1));
    EXPECT_FALSE(c.done());
    c.taggedReceived();
    c.taggedReceived();
    EXPECT_FALSE(c.done());
    c.taggedReceived();
    EXPECT_TRUE(c.done());
}

TEST(Measure, WarmupBoundaryInclusive)
{
    MeasureController c(50, 1);
    EXPECT_FALSE(c.tryTag(49));
    EXPECT_TRUE(c.tryTag(50));
}

TEST(Measure, Accessors)
{
    MeasureController c(10, 100);
    EXPECT_EQ(c.warmup(), 10u);
    EXPECT_EQ(c.sampleSize(), 100u);
    EXPECT_EQ(c.received(), 0u);
}
