/** @file Unit tests for logical-effort path delay (EQ 2 / EQ 3). */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "le/path.hh"

using namespace pdr;
using namespace pdr::le;

TEST(PathDelay, EmptyPathIsZero)
{
    Path p;
    EXPECT_DOUBLE_EQ(p.delay().value(), 0.0);
}

TEST(PathDelay, Fo4InverterIsFiveTau)
{
    // EQ 3 of the paper: an inverter driving 4 inverters has delay
    // T = g*h + p = 1*4 + 1 = 5 tau, i.e. tau4 = 5 tau.
    Path p;
    p.add(inverter(), 4.0);
    EXPECT_DOUBLE_EQ(p.delay().value(), 5.0);
    EXPECT_DOUBLE_EQ(p.delay().inTau4(), 1.0);
}

TEST(PathDelay, EffortAndParasiticSeparate)
{
    Path p;
    p.add(nandGate(2), 3.0);    // eff 4/3*3 = 4, par 2
    p.add(inverter(), 2.0);     // eff 2, par 1
    EXPECT_DOUBLE_EQ(p.effortDelay().value(), 6.0);
    EXPECT_DOUBLE_EQ(p.parasiticDelay().value(), 3.0);
    EXPECT_DOUBLE_EQ(p.delay().value(), 9.0);
}

TEST(PathDelay, FanoutTreeLogGrowth)
{
    // Optimally buffered fan-out tree: tau4 per factor of 4.
    EXPECT_DOUBLE_EQ(fanoutTreeDelay(1.0).value(), 0.0);
    EXPECT_DOUBLE_EQ(fanoutTreeDelay(4.0).value(), 5.0);
    EXPECT_DOUBLE_EQ(fanoutTreeDelay(16.0).value(), 10.0);
    EXPECT_DOUBLE_EQ(fanoutTreeDelay(64.0).value(), 15.0);
}

TEST(PathDelay, FanoutTreeStages)
{
    EXPECT_EQ(fanoutTreeStages(1.0), 0);
    EXPECT_EQ(fanoutTreeStages(4.0), 1);
    EXPECT_EQ(fanoutTreeStages(5.0), 2);
    EXPECT_EQ(fanoutTreeStages(16.0), 2);
    EXPECT_EQ(fanoutTreeStages(17.0), 3);
}

TEST(PathDelay, DelayMonotonicInStages)
{
    Path p;
    double prev = 0.0;
    for (int i = 0; i < 6; i++) {
        p.add(nandGate(2), 2.0);
        EXPECT_GT(p.delay().value(), prev);
        prev = p.delay().value();
    }
    EXPECT_EQ(p.size(), 6u);
}
