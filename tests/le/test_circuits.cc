/**
 * @file
 * Tests of the gate-level circuit constructions: structural growth laws
 * and agreement with the closed-form Table-1 equations within the
 * paper's own validation bound (~2 tau4 against Synopsys).
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "delay/equations.hh"
#include "le/circuits.hh"

using namespace pdr;
using namespace pdr::le;

TEST(Circuits, ArbiterDelayGrowsLogarithmically)
{
    double d4 = matrixArbiterPath(4).delay().value();
    double d16 = matrixArbiterPath(16).delay().value();
    double d64 = matrixArbiterPath(64).delay().value();
    // Roughly equal increments per 4x size (log growth).
    double inc1 = d16 - d4;
    double inc2 = d64 - d16;
    EXPECT_GT(inc1, 0.0);
    EXPECT_NEAR(inc1, inc2, 0.5 * inc1 + 3.0);
}

TEST(Circuits, ArbiterMonotonicInSize)
{
    double prev = 0.0;
    for (int n : {2, 4, 8, 16, 32}) {
        double d = matrixArbiterPath(n).delay().value();
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(Circuits, SwitchArbiterNearClosedForm)
{
    // The paper validated its model within ~2 tau4 of synthesis; hold
    // our structural reconstruction to a similar bound against the
    // closed-form t_SB for the practical sizes it tabulates.
    for (int p : {5, 7}) {
        double circuit = switchArbiterPath(p).delay().inTau4();
        double closed = delay::tSB(p).inTau4();
        EXPECT_NEAR(circuit, closed, 2.5) << "p=" << p;
    }
}

TEST(Circuits, OverheadPathNearNineTau)
{
    // EQ 6: h_SB = 9 tau via a 2-input + 3-input NOR.
    double h = arbiterOverheadPath().delay().value();
    EXPECT_NEAR(h, 9.0, 1.5);
}

TEST(Circuits, CrossbarNearClosedForm)
{
    double circuit = crossbarPath(5, 32).delay().inTau4();
    double closed = delay::tXB(5, 32).inTau4();
    EXPECT_NEAR(circuit, closed, 2.5);
}

TEST(Circuits, CrossbarGrowsWithPortsAndWidth)
{
    double base = crossbarPath(5, 32).delay().value();
    EXPECT_GT(crossbarPath(9, 32).delay().value(), base);
    EXPECT_GT(crossbarPath(5, 128).delay().value(), base);
}

TEST(Circuits, DegenerateArbiter)
{
    // A 1:1 "arbiter" is just a qualification gate, well under a cycle.
    EXPECT_LT(matrixArbiterPath(1).delay().value(),
              typicalClock.value());
}
