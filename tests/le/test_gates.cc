/** @file Unit tests for logical-effort gate templates. */

#include <gtest/gtest.h>

#include "le/gate.hh"

using namespace pdr::le;

TEST(Gates, InverterIsUnit)
{
    Gate inv = inverter();
    EXPECT_DOUBLE_EQ(inv.logicalEffort, 1.0);
    EXPECT_DOUBLE_EQ(inv.parasitic, 1.0);
}

TEST(Gates, NandEffort)
{
    // g = (n+2)/3 per Sutherland/Sproull/Harris.
    EXPECT_DOUBLE_EQ(nandGate(2).logicalEffort, 4.0 / 3.0);
    EXPECT_DOUBLE_EQ(nandGate(3).logicalEffort, 5.0 / 3.0);
    EXPECT_DOUBLE_EQ(nandGate(4).logicalEffort, 2.0);
    EXPECT_DOUBLE_EQ(nandGate(2).parasitic, 2.0);
    EXPECT_DOUBLE_EQ(nandGate(4).parasitic, 4.0);
}

TEST(Gates, NorEffort)
{
    // g = (2n+1)/3.
    EXPECT_DOUBLE_EQ(norGate(2).logicalEffort, 5.0 / 3.0);
    EXPECT_DOUBLE_EQ(norGate(3).logicalEffort, 7.0 / 3.0);
    EXPECT_DOUBLE_EQ(norGate(2).parasitic, 2.0);
}

TEST(Gates, SingleInputDegeneratesToInverter)
{
    EXPECT_DOUBLE_EQ(nandGate(1).logicalEffort, 1.0);
    EXPECT_DOUBLE_EQ(norGate(1).logicalEffort, 1.0);
}

TEST(Gates, NorCostsMoreThanNand)
{
    // PMOS stacking makes NOR worse than NAND at equal fan-in.
    for (int n = 2; n <= 6; n++)
        EXPECT_GT(norGate(n).logicalEffort, nandGate(n).logicalEffort);
}

TEST(Gates, AoiEffort)
{
    Gate a = aoiGate(2, 2);
    EXPECT_DOUBLE_EQ(a.logicalEffort, 2.0);
    EXPECT_DOUBLE_EQ(a.parasitic, 4.0);
}

TEST(Gates, EffortMonotonicInFanIn)
{
    for (int n = 2; n < 8; n++) {
        EXPECT_LT(nandGate(n).logicalEffort,
                  nandGate(n + 1).logicalEffort);
        EXPECT_LT(norGate(n).logicalEffort,
                  norGate(n + 1).logicalEffort);
    }
}
