/**
 * @file
 * Runtime invariant auditor (sim::Auditor + Network audit hooks).
 *
 * The auditor's job is to catch exactness-contract violations at the
 * offending cycle with the offending component named.  These tests
 * prove the detector detects: a clean audited run passes (and runs a
 * nonzero number of checks, bit-identical to an unaudited run), a
 * deliberately corrupted wake-table entry trips [AUD-WAKE] on the next
 * step, and a flit allocated but never queued trips [AUD-LEAK] at
 * teardown.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "net/network.hh"
#include "sim/audit.hh"

using namespace pdr;

namespace {

net::NetworkConfig
auditedConfig()
{
    net::NetworkConfig cfg;
    cfg.k = 4;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.packetLength = 3;
    cfg.injectionRate = 0.3;
    cfg.warmup = 50;
    cfg.samplePackets = 200;
    cfg.seed = 7;
    cfg.audit = true;
    return cfg;
}

} // namespace

TEST(Audit, EnvEnabledParsesTruthyValues)
{
    // Scoped setenv: gtest runs tests in one process, so restore.
    ASSERT_EQ(unsetenv("PDR_AUDIT"), 0);
    EXPECT_FALSE(sim::Auditor::envEnabled());
    for (const char *v : {"1", "true", "yes", "on"}) {
        ASSERT_EQ(setenv("PDR_AUDIT", v, 1), 0);
        EXPECT_TRUE(sim::Auditor::envEnabled()) << v;
    }
    for (const char *v : {"0", "false", "off", ""}) {
        ASSERT_EQ(setenv("PDR_AUDIT", v, 1), 0);
        EXPECT_FALSE(sim::Auditor::envEnabled()) << v;
    }
    ASSERT_EQ(unsetenv("PDR_AUDIT"), 0);
}

TEST(Audit, CleanRunPassesAndCountsChecks)
{
    net::Network net(auditedConfig());
    ASSERT_TRUE(net.auditEnabled());
    net.run(500);
    EXPECT_NO_THROW(net.auditTeardown());
    ASSERT_NE(net.auditor(), nullptr);
    // Wake-table and conservation checks ran every cycle.
    EXPECT_GT(net.auditor()->checksRun(), 1000u);
}

TEST(Audit, AuditedRunIsBitIdenticalToUnaudited)
{
    // The auditor is observational: same config with and without
    // auditing must produce identical deliveries and statistics.
    auto cfg = auditedConfig();
    net::Network audited(cfg);
    cfg.audit = false;
    net::Network plain(cfg);
    ASSERT_FALSE(plain.auditEnabled());

    std::vector<traffic::Delivery> ta, tp;
    audited.recordDeliveries(&ta);
    plain.recordDeliveries(&tp);
    audited.run(2000);
    plain.run(2000);

    ASSERT_EQ(ta.size(), tp.size());
    for (std::size_t i = 0; i < ta.size(); i++) {
        EXPECT_EQ(ta[i].packet, tp[i].packet);
        EXPECT_EQ(ta[i].dest, tp[i].dest);
        EXPECT_EQ(ta[i].at, tp[i].at);
        EXPECT_EQ(ta[i].latency, tp[i].latency);
    }
    EXPECT_EQ(audited.latency().count(), plain.latency().count());
    EXPECT_EQ(audited.now(), plain.now());
}

TEST(Audit, CatchesBrokenNextWake)
{
    // Corrupt one wake-table entry to simulate a component whose
    // nextWake() over-sleeps -- the hazard class [AUD-WAKE] exists
    // for.  Router 0's injection channel gets traffic immediately at
    // this load, so a wake planted far in the future contradicts an
    // in-flight item within a few cycles.
    net::Network net(auditedConfig());
    net.run(20);  // Get traffic in flight.
    net.setWakeAtForTest(net.rtrComp(0), net.now() + 100000);
    try {
        net.run(50);
        FAIL() << "corrupted wake table not detected";
    } catch (const sim::AuditError &e) {
        EXPECT_NE(std::string(e.what()).find("AUD-WAKE"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("router 0"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Audit, CatchesLeakedFlit)
{
    // Allocate a flit and drop the handle without queueing it
    // anywhere: the pool thinks it is live, no queue reaches it.
    net::Network net(auditedConfig());
    net.run(100);
    (void)net.flitPool().alloc();
    try {
        net.auditTeardown();
        FAIL() << "leaked flit not detected";
    } catch (const sim::AuditError &e) {
        EXPECT_NE(std::string(e.what()).find("AUD-LEAK"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Audit, CreditConservationSurvivesSweptParameters)
{
    // [AUD-CREDIT] must hold under the parameters the paper's
    // experiments stress: multi-cycle credit return and deeper VCs.
    auto cfg = auditedConfig();
    cfg.creditLatency = 4;
    cfg.router.numVcs = 4;
    cfg.router.bufDepth = 8;
    cfg.injectionRate = 0.5;
    net::Network net(cfg);
    EXPECT_NO_THROW(net.run(1500));
    EXPECT_NO_THROW(net.auditTeardown());
}
