/** @file Tests for the fixed-latency channel (delay line). */

#include <gtest/gtest.h>

#include "sim/channel.hh"

using namespace pdr::sim;

TEST(ChannelTest, DeliversAfterLatency)
{
    Channel<int> c(3);
    c.push(42, 10);
    EXPECT_FALSE(c.pop(10).has_value());
    EXPECT_FALSE(c.pop(12).has_value());
    auto v = c.pop(13);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
}

TEST(ChannelTest, ExtraDelayAdds)
{
    Channel<int> c(1);
    c.push(7, 5, 2);    // Ready at 5 + 1 + 2 = 8.
    EXPECT_FALSE(c.pop(7).has_value());
    ASSERT_TRUE(c.pop(8).has_value());
}

TEST(ChannelTest, FifoOrderPreserved)
{
    Channel<int> c(1);
    for (int i = 0; i < 5; i++)
        c.push(i, Cycle(i));
    for (int i = 0; i < 5; i++) {
        auto v = c.pop(Cycle(i + 1));
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
}

TEST(ChannelTest, PopOnlyMatured)
{
    Channel<int> c(2);
    c.push(1, 0);
    c.push(2, 1);
    EXPECT_EQ(*c.pop(2), 1);
    EXPECT_FALSE(c.pop(2).has_value());  // Second not ready until 3.
    EXPECT_EQ(*c.pop(3), 2);
}

TEST(ChannelTest, InFlightCount)
{
    Channel<int> c(4);
    EXPECT_TRUE(c.empty());
    c.push(1, 0);
    c.push(2, 1);
    EXPECT_EQ(c.inFlight(), 2u);
    (void)c.pop(4);
    EXPECT_EQ(c.inFlight(), 1u);
}

TEST(ChannelTest, LatencyOneMinimum)
{
    EXPECT_DEATH(Channel<int>(0), "");
}

TEST(ChannelTest, OutOfOrderPushPanics)
{
    Channel<int> c(1);
    c.push(1, 10, 5);   // Ready 16.
    EXPECT_DEATH(c.push(2, 11, 0), "");  // Ready 12 < 16.
}
