/** @file Tests for the flit storage pool and fixed-capacity FIFO. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/flit_pool.hh"

using namespace pdr::sim;

TEST(FlitPoolTest, AllocGrowsSlabOnDemand)
{
    FlitPool pool;
    EXPECT_EQ(pool.capacity(), 0u);
    FlitRef a = pool.alloc();
    FlitRef b = pool.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.capacity(), 2u);
    EXPECT_EQ(pool.liveCount(), 2u);
}

TEST(FlitPoolTest, FreedSlotsAreReusedLifo)
{
    FlitPool pool;
    FlitRef a = pool.alloc();
    FlitRef b = pool.alloc();
    pool.free(a);
    pool.free(b);
    // LIFO: the most recently freed slot comes back first, and no new
    // slots are created while freed ones exist.
    EXPECT_EQ(pool.alloc(), b);
    EXPECT_EQ(pool.alloc(), a);
    EXPECT_EQ(pool.capacity(), 2u);
}

TEST(FlitPoolTest, NeverHandsOutALiveSlot)
{
    // The reuse invariant: across an arbitrary alloc/free interleaving
    // the pool never returns a handle that is still live.
    FlitPool pool;
    std::set<FlitRef> live;
    unsigned lcg = 12345;
    for (int i = 0; i < 2000; i++) {
        lcg = lcg * 1103515245 + 12345;
        bool do_alloc = live.empty() || (lcg >> 16) % 3 != 0;
        if (do_alloc) {
            FlitRef r = pool.alloc();
            EXPECT_EQ(live.count(r), 0u) << "live slot recycled";
            live.insert(r);
        } else {
            FlitRef r = *live.begin();
            live.erase(live.begin());
            pool.free(r);
        }
        EXPECT_EQ(pool.liveCount(), live.size());
    }
}

TEST(FlitPoolTest, PayloadSurvivesOtherSlotsChurning)
{
    FlitPool pool;
    FlitRef keep = pool.alloc();
    pool.get(keep).packet = 42;
    pool.get(keep).dest = 7;
    for (int i = 0; i < 100; i++)
        pool.free(pool.alloc());
    EXPECT_EQ(pool.get(keep).packet, 42u);
    EXPECT_EQ(pool.get(keep).dest, 7);
}

TEST(FlitPoolTest, DeterministicHandleSequence)
{
    // Two pools driven by the same alloc/free sequence hand out the
    // same handles -- pooling cannot perturb simulation determinism.
    FlitPool a, b;
    std::vector<FlitRef> ha, hb;
    for (int round = 0; round < 50; round++) {
        for (int i = 0; i < 7; i++) {
            ha.push_back(a.alloc());
            hb.push_back(b.alloc());
        }
        for (int i = 0; i < 5; i++) {
            a.free(ha[ha.size() - 1 - i]);
            b.free(hb[hb.size() - 1 - i]);
        }
        ha.resize(ha.size() - 5);
        hb.resize(hb.size() - 5);
    }
    EXPECT_EQ(ha, hb);
}

TEST(FlitPoolTest, AliveQuery)
{
    FlitPool pool;
    EXPECT_FALSE(pool.alive(0));
    EXPECT_FALSE(pool.alive(NullFlit));
    FlitRef r = pool.alloc();
    EXPECT_TRUE(pool.alive(r));
    pool.free(r);
    EXPECT_FALSE(pool.alive(r));
}

TEST(FlitPoolDeathTest, DoubleFreePanics)
{
    FlitPool pool;
    FlitRef r = pool.alloc();
    pool.free(r);
    EXPECT_DEATH(pool.free(r), "");
}

TEST(FlitPoolDeathTest, UseAfterFreePanics)
{
    FlitPool pool;
    FlitRef r = pool.alloc();
    pool.free(r);
    EXPECT_DEATH(pool.get(r), "");
}

TEST(FlitFifoTest, FifoOrderAndWraparound)
{
    FlitFifo f;
    f.init(3);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.capacity(), 3);
    // Push/pop past the capacity several times to exercise the wrap.
    FlitRef next = 0;
    FlitRef expect = 0;
    for (int round = 0; round < 5; round++) {
        f.push(next++);
        f.push(next++);
        EXPECT_EQ(f.size(), 2);
        EXPECT_EQ(f.front(), expect);
        EXPECT_EQ(f.pop(), expect++);
        EXPECT_EQ(f.pop(), expect++);
        EXPECT_TRUE(f.empty());
    }
}

TEST(FlitFifoTest, FillsToCapacity)
{
    FlitFifo f;
    f.init(4);
    for (FlitRef i = 0; i < 4; i++)
        f.push(i);
    EXPECT_EQ(f.size(), 4);
    for (FlitRef i = 0; i < 4; i++)
        EXPECT_EQ(f.pop(), i);
}

TEST(FlitFifoDeathTest, OverflowPanics)
{
    FlitFifo f;
    f.init(2);
    f.push(0);
    f.push(1);
    EXPECT_DEATH(f.push(2), "");
}

TEST(FlitFifoDeathTest, PopEmptyPanics)
{
    FlitFifo f;
    f.init(2);
    EXPECT_DEATH(f.pop(), "");
}
