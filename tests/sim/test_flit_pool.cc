/** @file Tests for the flit storage pool and fixed-capacity FIFO. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/flit_pool.hh"

using namespace pdr::sim;

TEST(FlitPoolTest, AllocGrowsSlabOnDemand)
{
    FlitPool pool;
    EXPECT_EQ(pool.capacity(), 0u);
    FlitRef a = pool.alloc();
    FlitRef b = pool.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.capacity(), 2u);
    EXPECT_EQ(pool.liveCount(), 2u);
}

TEST(FlitPoolTest, FreedSlotsAreReusedLifo)
{
    FlitPool pool;
    FlitRef a = pool.alloc();
    FlitRef b = pool.alloc();
    pool.free(a);
    pool.free(b);
    // LIFO: the most recently freed slot comes back first, and no new
    // slots are created while freed ones exist.
    EXPECT_EQ(pool.alloc(), b);
    EXPECT_EQ(pool.alloc(), a);
    EXPECT_EQ(pool.capacity(), 2u);
}

TEST(FlitPoolTest, NeverHandsOutALiveSlot)
{
    // The reuse invariant: across an arbitrary alloc/free interleaving
    // the pool never returns a handle that is still live.
    FlitPool pool;
    std::set<FlitRef> live;
    unsigned lcg = 12345;
    for (int i = 0; i < 2000; i++) {
        lcg = lcg * 1103515245 + 12345;
        bool do_alloc = live.empty() || (lcg >> 16) % 3 != 0;
        if (do_alloc) {
            FlitRef r = pool.alloc();
            EXPECT_EQ(live.count(r), 0u) << "live slot recycled";
            live.insert(r);
        } else {
            FlitRef r = *live.begin();
            live.erase(live.begin());
            pool.free(r);
        }
        EXPECT_EQ(pool.liveCount(), live.size());
    }
}

TEST(FlitPoolTest, PayloadSurvivesOtherSlotsChurning)
{
    FlitPool pool;
    FlitRef keep = pool.alloc();
    pool.get(keep).packet = 42;
    pool.get(keep).dest = 7;
    for (int i = 0; i < 100; i++)
        pool.free(pool.alloc());
    EXPECT_EQ(pool.get(keep).packet, 42u);
    EXPECT_EQ(pool.get(keep).dest, 7);
}

TEST(FlitPoolTest, DeterministicHandleSequence)
{
    // Two pools driven by the same alloc/free sequence hand out the
    // same handles -- pooling cannot perturb simulation determinism.
    FlitPool a, b;
    std::vector<FlitRef> ha, hb;
    for (int round = 0; round < 50; round++) {
        for (int i = 0; i < 7; i++) {
            ha.push_back(a.alloc());
            hb.push_back(b.alloc());
        }
        for (int i = 0; i < 5; i++) {
            a.free(ha[ha.size() - 1 - i]);
            b.free(hb[hb.size() - 1 - i]);
        }
        ha.resize(ha.size() - 5);
        hb.resize(hb.size() - 5);
    }
    EXPECT_EQ(ha, hb);
}

TEST(FlitPoolTest, AliveQuery)
{
    FlitPool pool;
    EXPECT_FALSE(pool.alive(0));
    EXPECT_FALSE(pool.alive(NullFlit));
    FlitRef r = pool.alloc();
    EXPECT_TRUE(pool.alive(r));
    pool.free(r);
    EXPECT_FALSE(pool.alive(r));
}

TEST(FlitPoolDeathTest, DoubleFreePanics)
{
    FlitPool pool;
    FlitRef r = pool.alloc();
    pool.free(r);
    EXPECT_DEATH(pool.free(r), "");
}

TEST(FlitPoolDeathTest, UseAfterFreePanics)
{
    FlitPool pool;
    FlitRef r = pool.alloc();
    pool.free(r);
    EXPECT_DEATH(pool.get(r), "");
}

TEST(FlitPoolShardTest, ShardsAllocAndFreeIndependently)
{
    FlitPool pool;
    pool.shardFreelists(3, 64);
    EXPECT_EQ(pool.numShards(), 3);

    FlitRef a = pool.alloc(0);
    FlitRef b = pool.alloc(1);
    FlitRef c = pool.alloc(2);
    EXPECT_EQ(pool.liveCount(), 3u);

    // Cross-shard life cycle: allocated in shard 1, freed into shard
    // 2, re-allocated only by shard 2 (LIFO).
    pool.free(b, 2);
    EXPECT_EQ(pool.alloc(2), b);

    pool.free(a, 0);
    pool.free(b, 2);
    pool.free(c, 2);
    EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(FlitPoolShardTest, CollapseReturnsEverySlotToShardZero)
{
    FlitPool pool;
    pool.shardFreelists(4, 64);
    std::vector<FlitRef> refs;
    for (int s = 0; s < 4; s++)
        for (int i = 0; i < 5; i++)
            refs.push_back(pool.alloc(s));
    for (std::size_t i = 0; i < refs.size(); i++)
        pool.free(refs[i], int(i % 4));

    pool.collapseFreelists();
    EXPECT_EQ(pool.numShards(), 1);
    EXPECT_EQ(pool.liveCount(), 0u);

    // All 20 slots must be reachable from the serial freelist again
    // without growing the slab.
    std::size_t cap = pool.capacity();
    for (int i = 0; i < 20; i++)
        pool.alloc();
    EXPECT_EQ(pool.capacity(), cap);
    EXPECT_EQ(pool.liveCount(), 20u);
}

TEST(FlitPoolShardTest, EmptyShardRefillsFromSpilledSlots)
{
    // Exceed the spill threshold (512, batch 128) in shard 1 so its
    // surplus lands in the global list, then allocate from bone-dry
    // shard 0: it must refill from the spilled slots instead of
    // growing the slab.  700 frees cross the threshold twice, so at
    // least 2 x 128 slots reach the global list.
    FlitPool pool;
    pool.shardFreelists(2, 4096);
    std::vector<FlitRef> refs;
    for (int i = 0; i < 700; i++)
        refs.push_back(pool.alloc(0));
    std::size_t cap = pool.capacity();
    for (FlitRef r : refs)
        pool.free(r, 1);

    for (int i = 0; i < 256; i++)
        pool.alloc(0);
    EXPECT_EQ(pool.capacity(), cap) << "refill should not grow";
    EXPECT_EQ(pool.liveCount(), 256u);
}

TEST(FlitPoolShardTest, SerialBehaviorUnchangedByDefaultShard)
{
    // A default-constructed pool and one that was sharded and
    // collapsed both serve the canonical LIFO sequence.
    FlitPool pool;
    FlitRef a = pool.alloc();
    FlitRef b = pool.alloc();
    pool.free(a);
    pool.free(b);
    EXPECT_EQ(pool.alloc(), b);
    EXPECT_EQ(pool.alloc(), a);
}

TEST(FlitFifoTest, FifoOrderAndWraparound)
{
    FlitFifo f;
    f.init(3);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.capacity(), 3);
    // Push/pop past the capacity several times to exercise the wrap.
    FlitRef next = 0;
    FlitRef expect = 0;
    for (int round = 0; round < 5; round++) {
        f.push(next++);
        f.push(next++);
        EXPECT_EQ(f.size(), 2);
        EXPECT_EQ(f.front(), expect);
        EXPECT_EQ(f.pop(), expect++);
        EXPECT_EQ(f.pop(), expect++);
        EXPECT_TRUE(f.empty());
    }
}

TEST(FlitFifoTest, FillsToCapacity)
{
    FlitFifo f;
    f.init(4);
    for (FlitRef i = 0; i < 4; i++)
        f.push(i);
    EXPECT_EQ(f.size(), 4);
    for (FlitRef i = 0; i < 4; i++)
        EXPECT_EQ(f.pop(), i);
}

TEST(FlitFifoDeathTest, OverflowPanics)
{
    FlitFifo f;
    f.init(2);
    f.push(0);
    f.push(1);
    EXPECT_DEATH(f.push(2), "");
}

TEST(FlitFifoDeathTest, PopEmptyPanics)
{
    FlitFifo f;
    f.init(2);
    EXPECT_DEATH(f.pop(), "");
}
