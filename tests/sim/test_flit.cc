/** @file Tests for flit / packet descriptors. */

#include <gtest/gtest.h>

#include "sim/flit.hh"

using namespace pdr::sim;

TEST(FlitTest, HeadTailPredicates)
{
    EXPECT_TRUE(isHead(FlitType::Head));
    EXPECT_TRUE(isHead(FlitType::HeadTail));
    EXPECT_FALSE(isHead(FlitType::Body));
    EXPECT_FALSE(isHead(FlitType::Tail));

    EXPECT_TRUE(isTail(FlitType::Tail));
    EXPECT_TRUE(isTail(FlitType::HeadTail));
    EXPECT_FALSE(isTail(FlitType::Head));
    EXPECT_FALSE(isTail(FlitType::Body));
}

TEST(FlitTest, Names)
{
    EXPECT_STREQ(toString(FlitType::Head), "head");
    EXPECT_STREQ(toString(FlitType::Body), "body");
    EXPECT_STREQ(toString(FlitType::Tail), "tail");
    EXPECT_STREQ(toString(FlitType::HeadTail), "head+tail");
}

TEST(FlitTest, Defaults)
{
    Flit f;
    EXPECT_EQ(f.vc, 0);
    EXPECT_EQ(f.src, Invalid);
    EXPECT_EQ(f.dest, Invalid);
    EXPECT_FALSE(f.measured);
}
