/** @file Tests for the parallel sweep-execution engine. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "exec/sweep.hh"
#include "exec/thread_pool.hh"

using namespace pdr;
using exec::SweepOptions;
using exec::SweepPoint;
using exec::SweepRunner;
using router::RouterModel;

namespace {

api::SimConfig
tinyConfig(double load = 0.2)
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.router.model = RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.warmup = 200;
    cfg.net.samplePackets = 300;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 100000;
    return cfg;
}

std::vector<SweepPoint>
tinyGrid()
{
    std::vector<SweepPoint> points;
    for (double f : {0.1, 0.2, 0.3, 0.4})
        points.push_back({"p", tinyConfig(f)});
    return points;
}

/** Every per-point field that the simulation produces, bit for bit. */
void
expectIdentical(const exec::SweepResults &a, const exec::SweepResults &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); i++) {
        const auto &pa = a.points[i];
        const auto &pb = b.points[i];
        EXPECT_EQ(pa.ok, pb.ok) << "point " << i;
        EXPECT_EQ(pa.cfg.net.seed, pb.cfg.net.seed) << "point " << i;
        EXPECT_EQ(pa.res.offeredFraction, pb.res.offeredFraction);
        EXPECT_EQ(pa.res.acceptedFraction, pb.res.acceptedFraction);
        EXPECT_EQ(pa.res.avgLatency, pb.res.avgLatency);
        EXPECT_EQ(pa.res.p99Latency, pb.res.p99Latency);
        EXPECT_EQ(pa.res.sampleReceived, pb.res.sampleReceived);
        EXPECT_EQ(pa.res.drained, pb.res.drained);
        EXPECT_EQ(pa.res.cycles, pb.res.cycles);
        EXPECT_EQ(pa.res.routers.flitsIn, pb.res.routers.flitsIn);
        EXPECT_EQ(pa.res.routers.flitsOut, pb.res.routers.flitsOut);
    }
}

} // namespace

TEST(SweepRunner, BitIdenticalAcrossThreadCounts)
{
    auto points = tinyGrid();

    SweepOptions base;
    base.baseSeed = 42;

    SweepOptions o1 = base, o2 = base, o8 = base;
    o1.threads = 1;
    o2.threads = 2;
    o8.threads = 8;

    auto r1 = SweepRunner(o1).run(points);
    auto r2 = SweepRunner(o2).run(points);
    auto r8 = SweepRunner(o8).run(points);

    EXPECT_EQ(r1.threads, 1);
    EXPECT_EQ(r2.threads, 2);
    EXPECT_EQ(r8.threads, 8);
    EXPECT_EQ(r1.failures(), 0u);

    expectIdentical(r1, r2);
    expectIdentical(r1, r8);
}

TEST(SweepRunner, BaseSeedChangesResults)
{
    auto points = tinyGrid();
    SweepOptions oa, ob;
    oa.baseSeed = 1;
    ob.baseSeed = 2;
    auto ra = SweepRunner(oa).run(points);
    auto rb = SweepRunner(ob).run(points);
    // Different seeds => different sampled latencies (same protocol).
    bool any_diff = false;
    for (std::size_t i = 0; i < ra.points.size(); i++)
        any_diff |= ra.points[i].res.avgLatency !=
                    rb.points[i].res.avgLatency;
    EXPECT_TRUE(any_diff);
}

TEST(SweepRunner, ResultsKeepInputOrder)
{
    std::vector<SweepPoint> points;
    for (int i = 0; i < 16; i++)
        points.push_back({"pt" + std::to_string(i), tinyConfig()});

    // Make early points slow so a naive completion-order collection
    // would scramble the results.
    SweepOptions opts;
    opts.threads = 4;
    auto res = SweepRunner(opts).run(
        points, [](const api::SimConfig &cfg) {
            static std::atomic<int> calls{0};
            if (calls++ < 4) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
            api::SimResults r;
            r.offeredFraction = cfg.net.offeredFraction();
            return r;
        });

    ASSERT_EQ(res.points.size(), 16u);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(res.points[i].label, "pt" + std::to_string(i));
}

TEST(SweepRunner, ThrowingPointDoesNotHangOrPoisonOthers)
{
    std::vector<SweepPoint> points;
    for (int i = 0; i < 8; i++) {
        // Alternate loads so the evaluator can fail every other point.
        points.push_back(
            {"pt" + std::to_string(i), tinyConfig(i % 2 ? 0.2 : 0.1)});
    }

    SweepOptions opts;
    opts.threads = 2;
    auto res = SweepRunner(opts).run(
        points, [](const api::SimConfig &cfg) -> api::SimResults {
            if (cfg.net.offeredFraction() < 0.15)
                throw std::runtime_error("boom");
            api::SimResults r;
            r.avgLatency = 1.0;
            return r;
        });

    ASSERT_EQ(res.points.size(), 8u);
    for (std::size_t i = 0; i < res.points.size(); i++) {
        const auto &p = res.points[i];
        if (i % 2 == 0) {
            EXPECT_FALSE(p.ok) << "point " << i;
            EXPECT_EQ(p.error, "boom");
        } else {
            EXPECT_TRUE(p.ok) << "point " << i;
            EXPECT_EQ(p.res.avgLatency, 1.0);
        }
    }
    EXPECT_EQ(res.failures(), 4u);
    EXPECT_THROW(res.throwIfFailed(), std::runtime_error);
}

TEST(SweepRunner, PointSeedsAreDistinctAndStable)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 1000; i++)
        seen.insert(SweepRunner::pointSeed(7, i));
    EXPECT_EQ(seen.size(), 1000u);
    EXPECT_EQ(SweepRunner::pointSeed(7, 3), SweepRunner::pointSeed(7, 3));
    EXPECT_NE(SweepRunner::pointSeed(7, 3), SweepRunner::pointSeed(8, 3));
}

TEST(SweepRunner, SweepLoadMatchesSerialReference)
{
    auto cfg = tinyConfig();
    std::vector<double> loads{0.1, 0.3};
    auto curve = api::sweepLoad(cfg, loads);
    ASSERT_EQ(curve.size(), 2u);

    for (std::size_t i = 0; i < loads.size(); i++) {
        auto ref_cfg = cfg;
        ref_cfg.net.setOfferedFraction(loads[i]);
        auto ref = api::runSimulation(ref_cfg);
        EXPECT_EQ(curve[i].avgLatency, ref.avgLatency);
        EXPECT_EQ(curve[i].cycles, ref.cycles);
    }
}

TEST(SweepBuilder, CrossProductOrderAndLabels)
{
    auto points = exec::SweepBuilder(tinyConfig())
                      .model("wh", RouterModel::Wormhole, 1, 8)
                      .model("vc", RouterModel::VirtualChannel, 2, 4)
                      .loads({0.1, 0.2})
                      .build();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].label, "wh@0.100");
    EXPECT_EQ(points[1].label, "vc@0.100");
    EXPECT_EQ(points[2].label, "wh@0.200");
    EXPECT_EQ(points[3].label, "vc@0.200");
    EXPECT_EQ(points[1].cfg.net.router.model,
              RouterModel::VirtualChannel);
    EXPECT_NEAR(points[2].cfg.net.offeredFraction(), 0.2, 1e-9);
}

TEST(SweepBuilder, TopologyAxisPreservesOfferedFraction)
{
    auto cfg = tinyConfig();
    cfg.net.router.numVcs = 2;
    auto points = exec::SweepBuilder(cfg)
                      .loads({0.4})
                      .topology(4, "mesh")
                      .topology(4, "torus")
                      .build();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].cfg.net.topology, "mesh");
    EXPECT_EQ(points[1].cfg.net.topology, "torus");
    EXPECT_EQ(points[0].label, "0.400/mesh4");
    EXPECT_EQ(points[1].label, "0.400/torus4");
    // Same fraction of each topology's own capacity.
    EXPECT_NEAR(points[0].cfg.net.offeredFraction(), 0.4, 1e-9);
    EXPECT_NEAR(points[1].cfg.net.offeredFraction(), 0.4, 1e-9);
    // Torus capacity is double, so the raw rate differs.
    EXPECT_GT(points[1].cfg.net.injectionRate,
              points[0].cfg.net.injectionRate);
}

TEST(SweepResults, TableExportHasOneRowPerPoint)
{
    SweepOptions opts;
    opts.threads = 2;
    auto res = SweepRunner(opts).run(tinyGrid());
    auto table = res.toTable();
    EXPECT_EQ(table.numRows(), 4u);
    auto csv = table.toCsv();
    EXPECT_NE(csv.find("avg_latency"), std::string::npos);
    auto json = table.toJson();
    EXPECT_NE(json.find("\"label\": "), std::string::npos);
    // No wall-clock column: exports are diffable across thread counts.
    EXPECT_EQ(csv.find("wall_ms"), std::string::npos);
}

TEST(SweepRunner, HeaviestFirstSubmitsByDescendingLoad)
{
    // Ascending-load input; a single worker executes in submission
    // order, so the observed order reveals the schedule.
    auto points = tinyGrid();
    SweepOptions opts;
    opts.threads = 1;
    std::vector<double> seen;
    std::mutex mu;
    auto res = SweepRunner(opts).run(
        points, [&](const api::SimConfig &cfg) {
            std::lock_guard<std::mutex> lock(mu);
            seen.push_back(cfg.net.offeredFraction());
            return api::SimResults{};
        });
    ASSERT_EQ(seen.size(), 4u);
    for (std::size_t i = 1; i < seen.size(); i++)
        EXPECT_GE(seen[i - 1], seen[i]) << "position " << i;
    // Results still come back in input (ascending-load) order.
    for (std::size_t i = 1; i < res.points.size(); i++)
        EXPECT_LT(res.points[i - 1].cfg.net.offeredFraction(),
                  res.points[i].cfg.net.offeredFraction());
}

TEST(SweepRunner, SchedulingDoesNotChangeResults)
{
    auto points = tinyGrid();
    SweepOptions first, fifo;
    first.heaviestFirst = true;
    fifo.heaviestFirst = false;
    auto ra = SweepRunner(first).run(points);
    auto rb = SweepRunner(fifo).run(points);
    expectIdentical(ra, rb);
}
