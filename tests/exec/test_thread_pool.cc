/** @file Tests for the fixed worker thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "exec/thread_pool.hh"

using namespace pdr;
using exec::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; i++)
        pool.submit([&count] { count++; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitRethrowsFirstTaskError)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; i++) {
        pool.submit([&count, i] {
            if (i == 3)
                throw std::runtime_error("task failed");
            count++;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 9);

    // The pool survives the error and accepts further work.
    pool.submit([&count] { count++; });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; round++) {
        for (int i = 0; i < 8; i++)
            pool.submit([&count] { count++; });
        pool.wait();
        EXPECT_EQ(count.load(), 8 * (round + 1));
    }
}

TEST(ThreadPool, ParallelForCoversAllIndicesOnce)
{
    std::vector<std::atomic<int>> hits(64);
    exec::parallelFor(64, [&](std::size_t i) { hits[i]++; }, 4);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRunsEveryIterationDespiteThrow)
{
    std::atomic<int> done{0};
    EXPECT_THROW(exec::parallelFor(
                     16,
                     [&](std::size_t i) {
                         if (i == 5)
                             throw std::runtime_error("x");
                         done++;
                     },
                     2),
                 std::runtime_error);
    EXPECT_EQ(done.load(), 15);
}

TEST(ThreadPool, ParallelMapPreservesOrder)
{
    std::vector<int> items;
    for (int i = 0; i < 32; i++)
        items.push_back(i);
    auto out = exec::parallelMap(
        items,
        [](int v) {
            // Reverse the natural completion order.
            std::this_thread::sleep_for(
                std::chrono::microseconds((32 - v) * 50));
            return v * v;
        },
        4);
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 32; i++)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ResolveThreadsPrefersExplicitThenEnv)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3);

    setenv("PDR_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::resolveThreads(0), 5);
    EXPECT_EQ(ThreadPool::resolveThreads(2), 2);

    setenv("PDR_THREADS", "garbage", 1);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);

    unsetenv("PDR_THREADS");
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
}
