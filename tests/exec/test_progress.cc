/**
 * @file
 * Tests for the sweep progress line: construction rules (silent log
 * level always suppresses it) and the SweepOptions::onPointDone
 * contract it is built on (fires exactly once per point, with done
 * counting 1..total under a constant total).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "exec/progress.hh"
#include "exec/sweep.hh"

using namespace pdr;

namespace {

/** Restores the process log level on scope exit. */
struct LogLevelGuard
{
    LogLevel saved = logLevel();
    ~LogLevelGuard() { setLogLevel(saved); }
};

std::vector<exec::SweepPoint>
fivePoints()
{
    std::vector<exec::SweepPoint> points;
    for (int i = 0; i < 5; i++) {
        api::SimConfig cfg;
        points.push_back({csprintf("p%d", i), cfg});
    }
    return points;
}

} // namespace

TEST(Progress, SilentLogLevelSuppressesTheLine)
{
    LogLevelGuard guard;
    // forceTty bypasses the isatty check, so only the log level
    // decides; PDR_LOG_LEVEL=silent must win even on a terminal.
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(exec::makeProgressLine(true), nullptr);

    setLogLevel(LogLevel::Info);
    auto line = exec::makeProgressLine(true);
    EXPECT_NE(line, nullptr);
}

TEST(Progress, NoTtyMeansNoLine)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Info);
    // Under ctest, stderr is a pipe: without forceTty the factory must
    // decline, keeping \r spinners out of logs and CI transcripts.
    EXPECT_EQ(exec::makeProgressLine(false), nullptr);
}

TEST(Progress, OnPointDoneFiresOncePerPoint)
{
    const auto points = fivePoints();
    std::mutex mu;
    std::vector<std::size_t> dones;
    std::size_t sawTotal = 0;
    bool wallOk = true;

    exec::SweepOptions opts;
    opts.threads = 2;
    opts.onPointDone = [&](std::size_t done, std::size_t total,
                           double wallMs) {
        std::lock_guard<std::mutex> lock(mu);
        dones.push_back(done);
        sawTotal = total;
        wallOk = wallOk && wallMs >= 0.0;
    };

    // A stub evaluator keeps the test instant; the hook contract is
    // the runner's, not the simulator's.
    auto stub = [](const api::SimConfig &) { return api::SimResults{}; };
    auto res = exec::SweepRunner(opts).run(points, stub);

    ASSERT_EQ(res.points.size(), points.size());
    EXPECT_EQ(res.failures(), 0u);
    // Exactly one callback per point, total constant, and `done`
    // covering 1..N exactly once (completion order may interleave, but
    // the post-increment under the progress mutex makes the sequence a
    // permutation-free 1,2,...,N).
    ASSERT_EQ(dones.size(), points.size());
    EXPECT_EQ(sawTotal, points.size());
    EXPECT_TRUE(wallOk);
    for (std::size_t i = 0; i < dones.size(); i++)
        EXPECT_EQ(dones[i], i + 1);
}

TEST(Progress, ProgressLineCountsThroughASweep)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Info);
    // End-to-end: the real callback (forceTty) installed as
    // onPointDone runs without touching results; a second run without
    // the hook produces identical result rows.
    const auto points = fivePoints();
    auto stub = [](const api::SimConfig &cfg) {
        api::SimResults r;
        r.offeredFraction = cfg.net.injectionRate;
        return r;
    };

    exec::SweepOptions withHook;
    withHook.threads = 2;
    withHook.onPointDone = exec::makeProgressLine(true);
    ASSERT_NE(withHook.onPointDone, nullptr);
    auto a = exec::SweepRunner(withHook).run(points, stub);

    exec::SweepOptions noHook;
    noHook.threads = 2;
    auto b = exec::SweepRunner(noHook).run(points, stub);

    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); i++) {
        EXPECT_EQ(a.points[i].label, b.points[i].label);
        EXPECT_EQ(a.points[i].ok, b.points[i].ok);
        EXPECT_DOUBLE_EQ(a.points[i].res.offeredFraction,
                         b.points[i].res.offeredFraction);
    }
}
