/** @file Tests for router critical-path construction (Figure 4). */

#include <gtest/gtest.h>

#include "delay/modules.hh"
#include "delay/router_delay.hh"

using namespace pdr;
using namespace pdr::delay;

namespace {

RouterParams
params(RouterKind kind, int v = 2, RoutingRange r = RoutingRange::Rv)
{
    RouterParams prm;
    prm.kind = kind;
    prm.p = 5;
    prm.w = 32;
    prm.v = v;
    prm.range = r;
    return prm;
}

} // namespace

TEST(CriticalPath, WormholeModules)
{
    auto path = criticalPath(params(RouterKind::Wormhole, 1));
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0].kind, ModuleKind::RouteDecode);
    EXPECT_EQ(path[1].kind, ModuleKind::SwitchArb);
    EXPECT_EQ(path[2].kind, ModuleKind::Crossbar);
}

TEST(CriticalPath, VirtualChannelModules)
{
    auto path = criticalPath(params(RouterKind::VirtualChannel));
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0].kind, ModuleKind::RouteDecode);
    EXPECT_EQ(path[1].kind, ModuleKind::VcAlloc);
    EXPECT_EQ(path[2].kind, ModuleKind::SwitchAlloc);
    EXPECT_EQ(path[3].kind, ModuleKind::Crossbar);
}

TEST(CriticalPath, SpeculativeModules)
{
    auto path = criticalPath(params(RouterKind::SpecVirtualChannel));
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0].kind, ModuleKind::RouteDecode);
    EXPECT_EQ(path[1].kind, ModuleKind::SpecCombined);
    EXPECT_EQ(path[2].kind, ModuleKind::Crossbar);
}

TEST(CriticalPath, SpeculationShortensVcPath)
{
    auto vc = criticalPath(params(RouterKind::VirtualChannel));
    auto sp = criticalPath(params(RouterKind::SpecVirtualChannel));
    EXPECT_LT(criticalPathLatency(sp).value(),
              criticalPathLatency(vc).value());
}

TEST(CriticalPath, WormholeShortestOverall)
{
    auto wh = criticalPath(params(RouterKind::Wormhole, 1));
    auto vc = criticalPath(params(RouterKind::VirtualChannel));
    auto sp = criticalPath(params(RouterKind::SpecVirtualChannel));
    EXPECT_LT(criticalPathTotal(wh).value(),
              criticalPathTotal(sp).value());
    EXPECT_LT(criticalPathTotal(sp).value(),
              criticalPathTotal(vc).value());
}

TEST(CriticalPath, SummariesConsistent)
{
    auto path = criticalPath(params(RouterKind::VirtualChannel, 4));
    Tau lat = criticalPathLatency(path);
    Tau tot = criticalPathTotal(path);
    Tau widest = widestModule(path);
    EXPECT_GE(tot.value(), lat.value());
    for (const auto &m : path)
        EXPECT_LE(m.delay.total().value(), widest.value());
}

TEST(CriticalPath, ModuleNamesResolve)
{
    auto path = criticalPath(params(RouterKind::SpecVirtualChannel));
    for (const auto &m : path)
        EXPECT_FALSE(m.name().empty());
    EXPECT_STREQ(toString(RouterKind::Wormhole), "wormhole");
}
