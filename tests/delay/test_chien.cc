/** @file Tests for the Chien baseline model (Section 2). */

#include <gtest/gtest.h>

#include "delay/chien.hh"
#include "delay/equations.hh"
#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;

TEST(ChienModel, BreakdownSums)
{
    auto b = chien::evaluate(5, 2, 32);
    EXPECT_DOUBLE_EQ(b.total().value(),
                     (b.decode + b.routing + b.arbitration +
                      b.crossbar + b.vcControl).value());
    EXPECT_DOUBLE_EQ(chien::routerLatency(5, 2, 32).value(),
                     b.total().value());
}

TEST(ChienModel, GrowsWithVcs)
{
    double prev = 0.0;
    for (int v : {1, 2, 4, 8, 16}) {
        double t = chien::routerLatency(5, v, 32).value();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(ChienModel, CrossbarTermGrowsWithPvNotP)
{
    // The paper's core criticism: Chien's crossbar arbitration and
    // traversal scale with p*v.  Doubling v must grow those terms as
    // much as doubling p does.
    auto b_v = chien::evaluate(5, 8, 32);
    auto b_p = chien::evaluate(10, 4, 32);
    EXPECT_DOUBLE_EQ(b_v.arbitration.value(), b_p.arbitration.value());
    EXPECT_DOUBLE_EQ(b_v.crossbar.value(), b_p.crossbar.value());
}

TEST(ChienModel, AdaptiveRoutingCostsMore)
{
    EXPECT_GT(chien::routerLatency(5, 2, 32, 4).value(),
              chien::routerLatency(5, 2, 32, 1).value());
}

TEST(ChienModel, UnpipelinedLatencyExceedsPipelinedCycleBudget)
{
    // Chien's single-cycle assumption implies the cycle time equals
    // the router latency; already at v=2 that is several times the
    // paper's 20-tau4 clock.
    double t = chien::routerLatency(5, 2, 32).inTau4();
    EXPECT_GT(t, 20.0);
}

TEST(ChienModel, SharedPortCrossbarScalesBetter)
{
    // The Peh-Dally canonical architecture shares crossbar ports
    // across VCs: its combined-stage delay grows much more slowly with
    // v than Chien's p*v-port crossbar path.
    double chien_2 = chien::routerLatency(5, 2, 32).value();
    double chien_16 = chien::routerLatency(5, 16, 32).value();
    double pd_2 = (tSpecCombined(RoutingRange::Rv, 5, 2) +
                   tXB(5, 32)).value();
    double pd_16 = (tSpecCombined(RoutingRange::Rv, 5, 16) +
                    tXB(5, 32)).value();
    EXPECT_GT(chien_16 - chien_2, pd_16 - pd_2);
}

TEST(ChienModel, PipelinedRouterDeliversHigherClockRate)
{
    // At v >= 2 the Peh-Dally pipeline runs at 20 tau4 per cycle while
    // Chien's model needs its whole latency per cycle: the bandwidth
    // ratio (Chien cycle / 20 tau4) exceeds 1.5x.
    for (int v : {2, 4, 8}) {
        double chien_cycle = chien::routerLatency(5, v, 32).inTau4();
        EXPECT_GT(chien_cycle / 20.0, 1.5) << "v=" << v;
    }
}

TEST(ChienModel, RejectsBadParameters)
{
    EXPECT_DEATH((void)chien::evaluate(1, 2, 32), "");
    EXPECT_DEATH((void)chien::evaluate(5, 0, 32), "");
}
