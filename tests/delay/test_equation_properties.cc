/**
 * @file
 * Property tests over the Table-1 equations: monotonicity in p, v, w;
 * ordering of routing-function ranges; speculation overlap savings.
 */

#include <gtest/gtest.h>

#include "delay/equations.hh"

using namespace pdr;
using namespace pdr::delay;

class PvSweep : public testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    int p() const { return std::get<0>(GetParam()); }
    int v() const { return std::get<1>(GetParam()); }
};

TEST_P(PvSweep, VaRangesOrdered)
{
    // More general routing ranges cost more: Rv <= Rp <= Rpv
    // (Figure 8: more arbitration stages / wider arbiters).
    if (v() == 1) {
        // Degenerate: with one VC per port the ordering still holds
        // but Rv and Rp coincide up to constants; skip strictness.
        SUCCEED();
        return;
    }
    Tau rv = tVA(RoutingRange::Rv, p(), v());
    Tau rp = tVA(RoutingRange::Rp, p(), v());
    Tau rpv = tVA(RoutingRange::Rpv, p(), v());
    EXPECT_LE(rv.value(), rp.value() + 1e-9);
    EXPECT_LE(rp.value(), rpv.value() + 1e-9);
}

TEST_P(PvSweep, SpecCombinedSavesOverSequential)
{
    // The parallel VA + SS + CB stage is faster than VA followed by SL
    // (the point of speculation: overlap the two allocations).
    for (auto r : {RoutingRange::Rv, RoutingRange::Rp,
                   RoutingRange::Rpv}) {
        Tau seq = tVA(r, p(), v()) + tSL(p(), v());
        Tau par = tSpecCombined(r, p(), v());
        EXPECT_LT(par.value(), seq.value())
            << toString(r) << " p=" << p() << " v=" << v();
    }
}

TEST_P(PvSweep, MonotonicInV)
{
    if (v() >= 32)
        return;
    EXPECT_LT(tVA(RoutingRange::Rpv, p(), v()).value(),
              tVA(RoutingRange::Rpv, p(), 2 * v()).value());
    EXPECT_LT(tSL(p(), v()).value(), tSL(p(), 2 * v()).value());
    EXPECT_LT(tSS(p(), v()).value(), tSS(p(), 2 * v()).value());
}

TEST_P(PvSweep, MonotonicInP)
{
    EXPECT_LT(tSB(p()).value(), tSB(p() + 2).value());
    EXPECT_LT(tSL(p(), v()).value(), tSL(p() + 2, v()).value());
    EXPECT_LT(tXB(p(), 32).value(), tXB(p() + 2, 32).value());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PvSweep,
    testing::Combine(testing::Values(3, 5, 7, 9),
                     testing::Values(1, 2, 4, 8, 16)),
    [](const testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "p" + std::to_string(std::get<0>(info.param)) + "v" +
               std::to_string(std::get<1>(info.param));
    });

TEST(EquationProperties, CrossbarMonotonicInWidth)
{
    for (int w : {8, 16, 32, 64}) {
        EXPECT_LT(tXB(5, w).value(), tXB(5, 2 * w).value());
    }
}

TEST(EquationProperties, WormholeArbiterCheaperThanVcAllocator)
{
    // The wormhole switch arbiter only sees p requests; any VC
    // allocator sees p*v and must be slower for v >= 2.
    for (int p : {5, 7}) {
        for (int v : {2, 4, 8}) {
            EXPECT_LT(tSB(p).value(),
                      tVA(RoutingRange::Rv, p, v).value());
        }
    }
}

TEST(EquationProperties, SpecCombinedDominatedByMaxPath)
{
    // The combined stage is max(VA, SS) + CB by construction.
    for (int v : {2, 4, 16}) {
        Tau va = tVA(RoutingRange::Rv, 5, v);
        Tau ss = tSS(5, v);
        Tau cb = tCB(5, v);
        Tau comb = tSpecCombined(RoutingRange::Rv, 5, v);
        EXPECT_DOUBLE_EQ(comb.value(),
                         std::max(va.value(), ss.value()) + cb.value());
    }
}

TEST(EquationProperties, InvalidParametersPanic)
{
    EXPECT_DEATH((void)tSB(1), "");
    EXPECT_DEATH((void)tVA(RoutingRange::Rv, 0, 2), "");
    EXPECT_DEATH((void)tSL(5, 0), "");
}
