/**
 * @file
 * Reproduction of Table 1's numeric example column: every parametric
 * equation evaluated at p=5, w=32, v=2 must reproduce the published
 * (t_i + h_i) values in tau4 exactly (to the printed precision).
 * The published Synopsys validation column is also checked to stay
 * within the paper's ~2 tau4 agreement bound.
 */

#include <gtest/gtest.h>

#include "delay/equations.hh"

using namespace pdr;
using namespace pdr::delay;

namespace {

constexpr int P = 5;
constexpr int W = 32;
constexpr int V = 2;

double
totalTau4(Tau t, Tau h)
{
    return (t + h).inTau4();
}

} // namespace

TEST(Table1, SwitchArbiterWormhole)
{
    EXPECT_NEAR(totalTau4(tSB(P), hSB(P)), 9.6, 0.05);
}

TEST(Table1, CrossbarTraversal)
{
    EXPECT_NEAR(totalTau4(tXB(P, W), hXB(P, W)), 8.4, 0.05);
}

TEST(Table1, VcAllocatorRv)
{
    EXPECT_NEAR(totalTau4(tVA(RoutingRange::Rv, P, V),
                          hVA(RoutingRange::Rv, P, V)),
                11.8, 0.05);
}

TEST(Table1, VcAllocatorRp)
{
    EXPECT_NEAR(totalTau4(tVA(RoutingRange::Rp, P, V),
                          hVA(RoutingRange::Rp, P, V)),
                13.1, 0.05);
}

TEST(Table1, VcAllocatorRpv)
{
    EXPECT_NEAR(totalTau4(tVA(RoutingRange::Rpv, P, V),
                          hVA(RoutingRange::Rpv, P, V)),
                16.9, 0.05);
}

TEST(Table1, SwitchAllocatorVc)
{
    EXPECT_NEAR(totalTau4(tSL(P, V), hSL(P, V)), 10.9, 0.05);
}

TEST(Table1, SpecCombinedRv)
{
    EXPECT_NEAR(totalTau4(tSpecCombined(RoutingRange::Rv, P, V),
                          Tau(0.0)),
                14.6, 0.1);
}

TEST(Table1, SpecCombinedRp)
{
    EXPECT_NEAR(totalTau4(tSpecCombined(RoutingRange::Rp, P, V),
                          Tau(0.0)),
                14.6, 0.1);
}

TEST(Table1, SpecCombinedRpv)
{
    EXPECT_NEAR(totalTau4(tSpecCombined(RoutingRange::Rpv, P, V),
                          Tau(0.0)),
                18.3, 0.1);
}

TEST(Table1, SynopsysValidationBound)
{
    // The paper reports Synopsys timing for the same configuration and
    // says projections are within ~2 tau4.  Keep our model inside a
    // slightly padded bound of the published synthesis numbers.
    struct Row { double model; double synopsys; };
    const Row rows[] = {
        {totalTau4(tSB(P), hSB(P)), 9.9},
        {totalTau4(tXB(P, W), hXB(P, W)), 10.5},
        {totalTau4(tVA(RoutingRange::Rv, P, V),
                   hVA(RoutingRange::Rv, P, V)), 11.0},
        {totalTau4(tVA(RoutingRange::Rp, P, V),
                   hVA(RoutingRange::Rp, P, V)), 13.3},
        {totalTau4(tVA(RoutingRange::Rpv, P, V),
                   hVA(RoutingRange::Rpv, P, V)), 15.3},
        {totalTau4(tSL(P, V), hSL(P, V)), 12.0},
        {totalTau4(tSpecCombined(RoutingRange::Rv, P, V), Tau(0.0)),
         16.2},
        {totalTau4(tSpecCombined(RoutingRange::Rp, P, V), Tau(0.0)),
         16.2},
        {totalTau4(tSpecCombined(RoutingRange::Rpv, P, V), Tau(0.0)),
         16.8},
    };
    for (const auto &r : rows)
        EXPECT_NEAR(r.model, r.synopsys, 2.2);
}

TEST(Table1, OverheadValues)
{
    // All matrix-arbiter based modules pay the 9-tau priority update;
    // crossbar and pure combination logic pay none.
    EXPECT_DOUBLE_EQ(hSB(P).value(), 9.0);
    EXPECT_DOUBLE_EQ(hVA(RoutingRange::Rpv, P, V).value(), 9.0);
    EXPECT_DOUBLE_EQ(hSL(P, V).value(), 9.0);
    EXPECT_DOUBLE_EQ(hSS(P, V).value(), 0.0);
    EXPECT_DOUBLE_EQ(hCB(P, V).value(), 0.0);
    EXPECT_DOUBLE_EQ(hXB(P, W).value(), 0.0);
}

TEST(Table1, RouteDecodeIsOneTypicalCycle)
{
    EXPECT_DOUBLE_EQ(tRouteDecode().inTau4(), 20.0);
}
