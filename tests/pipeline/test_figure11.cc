/**
 * @file
 * Figure-11 pipeline-depth reproduction tests.
 *
 * Section 4 of the paper, at a 20-tau4 clock:
 *  (a) non-speculative VC routers (Rpv allocator): one more stage than
 *      the 3-stage wormhole pipeline for practical VC counts;
 *  (b) speculative VC routers (Rv): 3 stages up to 16 VCs per physical
 *      channel (for 5 and 7 physical channels), 4 at 32.
 *
 * Known paper-internal tension (see DESIGN.md section 4): under the
 * strict EQ-1 fit a few marginal configurations (Rpv VA at >= 8 VCs;
 * spec combined stage at 16 VCs with the CB mux charged) exceed 20 tau4
 * even though the prose rounds them into one cycle.  The tests assert
 * the model's exact behaviour and the prose-matching Relaxed + CB
 * -overlap variant where applicable.
 */

#include <gtest/gtest.h>

#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;
using namespace pdr::pipeline;

namespace {

int
vcDepth(int p, int v, FitPolicy policy = FitPolicy::Strict)
{
    return designRouter({RouterKind::VirtualChannel, p, 32, v,
                         RoutingRange::Rpv},
                        typicalClock, policy).depth();
}

int
specDepth(int p, int v, bool overlap_cb, FitPolicy policy)
{
    RouterParams prm{RouterKind::SpecVirtualChannel, p, 32, v,
                     RoutingRange::Rv};
    prm.overlapCombination = overlap_cb;
    return designRouter(prm, typicalClock, policy).depth();
}

} // namespace

TEST(Figure11, WormholeIsThreeStages)
{
    for (int p : {5, 7}) {
        auto d = designRouter({RouterKind::Wormhole, p, 32, 1,
                               RoutingRange::Rv});
        EXPECT_EQ(d.depth(), 3) << "p=" << p;
    }
}

TEST(Figure11a, VcNeedsOneMoreStageThanWormholeAtLowVcCounts)
{
    for (int p : {5, 7})
        EXPECT_EQ(vcDepth(p, 2), 4) << "p=" << p;
}

TEST(Figure11a, VcFourVcsFitsFourStagesRelaxed)
{
    // At 4 VCs the Rpv VA computes to 20.2 tau4: marginally over a
    // strict 20-tau4 fit, inside the relaxed one.
    EXPECT_EQ(vcDepth(5, 4, FitPolicy::Relaxed), 4);
    EXPECT_EQ(vcDepth(5, 4, FitPolicy::Strict), 5);
}

TEST(Figure11a, VcDepthGrowsWithVcs)
{
    // The Rpv VA eventually needs two cycles, then the allocator too.
    EXPECT_LE(vcDepth(5, 2), vcDepth(5, 8));
    EXPECT_LE(vcDepth(5, 8), vcDepth(5, 32));
    EXPECT_EQ(vcDepth(5, 32), 6);   // VA 28.3 tau4 (2 cy) + SL 20.1 (2).
}

TEST(Figure11b, SpecThreeStagesUpTo16Vcs)
{
    // The paper's claim, reproduced with the CB mux overlapped and the
    // relaxed fit: spec VC routers match the wormhole's 3 stages up to
    // 16 VCs for both 5 and 7 physical channels.
    for (int p : {5, 7}) {
        for (int v : {2, 4, 8, 16}) {
            EXPECT_EQ(specDepth(p, v, true, FitPolicy::Relaxed), 3)
                << "p=" << p << " v=" << v;
        }
    }
}

TEST(Figure11b, SpecFourStagesAt32Vcs)
{
    for (int p : {5, 7})
        EXPECT_EQ(specDepth(p, 32, true, FitPolicy::Relaxed), 4)
            << "p=" << p;
}

TEST(Figure11b, StrictFitWithCbChargedIsDeeperAtHighVcCounts)
{
    // Documents the paper-internal tension: charging CB + overhead
    // pushes the 16-VC configuration past 20 tau4.
    EXPECT_EQ(specDepth(5, 2, false, FitPolicy::Strict), 3);
    EXPECT_EQ(specDepth(5, 4, false, FitPolicy::Strict), 3);
    EXPECT_EQ(specDepth(5, 16, false, FitPolicy::Strict), 4);
}

TEST(Figure11b, SpecNeverDeeperThanNonSpec)
{
    for (int p : {5, 7}) {
        for (int v : {2, 4, 8, 16, 32}) {
            RouterParams sp{RouterKind::SpecVirtualChannel, p, 32, v,
                            RoutingRange::Rv};
            RouterParams vc{RouterKind::VirtualChannel, p, 32, v,
                            RoutingRange::Rv};
            EXPECT_LE(designRouter(sp).depth(),
                      designRouter(vc).depth())
                << "p=" << p << " v=" << v;
        }
    }
}

TEST(Figure11, OccupancyFractionsSumToModuleDelays)
{
    // The shaded-bar data of Figure 11: per-stage occupancy slices must
    // re-assemble into each module's latency.
    RouterParams prm{RouterKind::VirtualChannel, 5, 32, 8,
                     RoutingRange::Rpv};
    auto path = criticalPath(prm);
    auto d = designRouter(prm);
    for (const auto &m : path) {
        double total = 0.0;
        for (const auto &s : d.stages)
            for (const auto &sl : s.slices)
                if (sl.kind == m.kind)
                    total += sl.occupied.value();
        // Strict fit packs latency (t_i) into stages.
        EXPECT_NEAR(total, m.delay.latency.value(), 1e-9)
            << m.name();
    }
}
