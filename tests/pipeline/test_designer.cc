/** @file Unit tests for the EQ-1 pipeline designer. */

#include <gtest/gtest.h>

#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;
using namespace pdr::pipeline;

namespace {

AtomicModule
mod(ModuleKind k, double t, double h)
{
    return {k, {Tau(t), Tau(h)}};
}

} // namespace

TEST(Designer, SingleSmallModuleOneStage)
{
    std::vector<AtomicModule> path = {mod(ModuleKind::SwitchArb, 40, 9)};
    auto d = design(path, Tau(100));
    EXPECT_EQ(d.depth(), 1);
    EXPECT_DOUBLE_EQ(d.stages[0].occupancy().value(), 40.0);
}

TEST(Designer, TwoModulesPackIntoOneStage)
{
    std::vector<AtomicModule> path = {
        mod(ModuleKind::VcAlloc, 40, 9),
        mod(ModuleKind::SwitchAlloc, 45, 9),
    };
    // 40 + 45 + 9 = 94 <= 100: fits one stage under EQ 1.
    auto d = design(path, Tau(100));
    EXPECT_EQ(d.depth(), 1);
    EXPECT_EQ(d.stages[0].slices.size(), 2u);
}

TEST(Designer, OverheadOfLastModuleCounts)
{
    std::vector<AtomicModule> path = {
        mod(ModuleKind::VcAlloc, 50, 9),
        mod(ModuleKind::SwitchAlloc, 45, 9),
    };
    // 50 + 45 + 9 = 104 > 100: strict EQ 1 splits; relaxed (t_i only,
    // 95 <= 100) packs.
    EXPECT_EQ(design(path, Tau(100), FitPolicy::Strict).depth(), 2);
    EXPECT_EQ(design(path, Tau(100), FitPolicy::Relaxed).depth(), 1);
}

TEST(Designer, OversizedModuleTakesMultipleStages)
{
    std::vector<AtomicModule> path = {mod(ModuleKind::VcAlloc, 230, 9)};
    auto d = design(path, Tau(100));
    // 239 tau over 100-tau cycles -> 3 stages, kept atomic.
    EXPECT_EQ(d.depth(), 3);
    EXPECT_TRUE(d.stages[0].slices[0].continues);
    EXPECT_TRUE(d.stages[1].slices[0].continues);
    EXPECT_FALSE(d.stages[2].slices[0].continues);
}

TEST(Designer, ExactFitBoundary)
{
    // t + h == clk exactly must fit in one stage.
    std::vector<AtomicModule> path = {mod(ModuleKind::Crossbar, 91, 9)};
    EXPECT_EQ(design(path, Tau(100)).depth(), 1);
}

TEST(Designer, RouteDecodeOccupiesFullCycle)
{
    auto d = designRouter({RouterKind::Wormhole, 5, 32, 1,
                           RoutingRange::Rv});
    // RC fills its cycle; SB and XB each get one stage at 20 tau4:
    // 3-stage wormhole pipeline (Figure 11 reference bar).
    EXPECT_EQ(d.depth(), 3);
    EXPECT_EQ(d.stages[0].slices[0].kind, ModuleKind::RouteDecode);
    EXPECT_DOUBLE_EQ(d.stages[0].occupancy().value(),
                     typicalClock.value());
}

TEST(Designer, StagesNeverOverflowClock)
{
    for (int v : {1, 2, 4, 8, 16, 32}) {
        auto d = designRouter({RouterKind::VirtualChannel, 7, 32, v,
                               RoutingRange::Rpv});
        for (const auto &s : d.stages)
            EXPECT_LE(s.occupancy().value(),
                      typicalClock.value() + 1e-9);
    }
}

TEST(Designer, FasterClockNeverFewerStages)
{
    RouterParams prm{RouterKind::VirtualChannel, 5, 32, 8,
                     RoutingRange::Rpv};
    int depth_slow = designRouter(prm, fromTau4(30)).depth();
    int depth_typ = designRouter(prm, fromTau4(20)).depth();
    int depth_fast = designRouter(prm, fromTau4(10)).depth();
    EXPECT_LE(depth_slow, depth_typ);
    EXPECT_LE(depth_typ, depth_fast);
}

TEST(Designer, RelaxedNeverDeeperThanStrict)
{
    for (int v : {2, 4, 8, 16, 32}) {
        RouterParams prm{RouterKind::SpecVirtualChannel, 5, 32, v,
                         RoutingRange::Rv};
        EXPECT_LE(designRouter(prm, typicalClock,
                               FitPolicy::Relaxed).depth(),
                  designRouter(prm, typicalClock,
                               FitPolicy::Strict).depth());
    }
}

TEST(Designer, RejectsNonPositiveClock)
{
    std::vector<AtomicModule> path = {mod(ModuleKind::Crossbar, 10, 0)};
    EXPECT_DEATH((void)design(path, Tau(0.0)), "");
}
