/** @file Tests for the declarative Experiment layer. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/params.hh"

using namespace pdr;
using api::Experiment;
namespace params = api::params;

namespace {

const char *kText = R"(# a latency-throughput comparison
name = demo
description = two routers over three loads

net.k = 4
traffic.pattern = uniform
sim.warmup = 200
sim.sample_packets = 300

sweep.loads = 0.1, 0.2 0.3

[curve wh]
router.model = WH
router.buf_depth = 8

[curve spec]
router.model = specVC
router.num_vcs = 2
router.buf_depth = 4
)";

} // namespace

TEST(Experiment, ParseReadsStructure)
{
    auto exp = Experiment::parse(kText);
    EXPECT_EQ(exp.name, "demo");
    EXPECT_EQ(exp.description, "two routers over three loads");
    EXPECT_EQ(exp.base.net.k, 4);
    EXPECT_EQ(exp.base.net.warmup, 200u);
    ASSERT_EQ(exp.axes.size(), 1u);
    EXPECT_EQ(exp.axes[0].key, Experiment::kLoadsKey);
    EXPECT_EQ(exp.axes[0].values,
              (std::vector<std::string>{"0.1", "0.2", "0.3"}));
    ASSERT_EQ(exp.curves.size(), 2u);
    EXPECT_EQ(exp.curves[0].label, "wh");
    EXPECT_EQ(exp.curves[1].label, "spec");
    EXPECT_EQ(exp.curves[1].overrides.size(), 3u);
}

TEST(Experiment, PointsExpandLoadsMajorCurvesInner)
{
    auto exp = Experiment::parse(kText);
    auto points = exp.points();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].label, "wh@0.100");
    EXPECT_EQ(points[1].label, "spec@0.100");
    EXPECT_EQ(points[2].label, "wh@0.200");
    EXPECT_EQ(points[5].label, "spec@0.300");
    EXPECT_EQ(points[1].cfg.net.router.model,
              router::RouterModel::SpecVirtualChannel);
    EXPECT_EQ(points[0].cfg.net.router.bufDepth, 8);
    EXPECT_NEAR(points[2].cfg.net.offeredFraction(), 0.2, 1e-9);
}

TEST(Experiment, GenericAxisAndMultiAxisOrder)
{
    Experiment exp;
    exp.set("net.k", "4");
    exp.set("sweep.router.buf_depth", "2 4");
    exp.set("sweep.loads", "0.1 0.2");
    auto points = exp.points();
    // buf_depth declared first = outermost; loads inner; no curves.
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].label, "/router.buf_depth=2@0.100");
    EXPECT_EQ(points[0].cfg.net.router.bufDepth, 2);
    EXPECT_NEAR(points[1].cfg.net.offeredFraction(), 0.2, 1e-9);
    EXPECT_EQ(points[2].cfg.net.router.bufDepth, 4);
}

TEST(Experiment, LoadAxisNormalizesToThePointsFinalTopology)
{
    // The loads axis is declared BEFORE the topology axis; the
    // offered fraction must nevertheless be computed from each
    // point's final topology (torus capacity is 2x the mesh's).
    Experiment exp;
    exp.set("net.k", "4");
    exp.set("router.model", "specVC");
    exp.set("router.num_vcs", "2");
    exp.set("sweep.loads", "0.4");
    exp.set("sweep.net.topology", "mesh torus");
    auto points = exp.points();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].cfg.net.topology, "mesh");
    EXPECT_EQ(points[1].cfg.net.topology, "torus");
    EXPECT_NEAR(points[0].cfg.net.offeredFraction(), 0.4, 1e-9);
    EXPECT_NEAR(points[1].cfg.net.offeredFraction(), 0.4, 1e-9);
    EXPECT_GT(points[1].cfg.net.injectionRate,
              points[0].cfg.net.injectionRate);
}

TEST(Experiment, DumpParseRoundTrips)
{
    auto exp = Experiment::parse(kText);
    auto back = Experiment::parse(exp.dump());
    EXPECT_TRUE(back == exp) << exp.dump();
    EXPECT_EQ(back.dump(), exp.dump());
}

TEST(Experiment, ParseErrorsNameTheLine)
{
    auto expect_line = [](const char *text, const char *substr) {
        try {
            Experiment::parse(text);
            FAIL() << "expected std::invalid_argument for " << text;
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find(substr),
                      std::string::npos)
                << "message: " << e.what();
        }
    };
    expect_line("net.k = 8\nnet.bogus = 1\n", "line 2");
    expect_line("net.bogus = 1\n", "net.bogus");
    expect_line("[section nope]\n", "curve");
    expect_line("[curve a]\nsweep.loads = 0.1\n", "not allowed");
    expect_line("sweep.loads =\n", "no values");
    expect_line("sweep.net.bogus = 1 2\n", "sweep.net.bogus");
    expect_line("net.k\n", "key = value");
}

TEST(Experiment, CliStyleOverridesReplaceAxes)
{
    auto exp = Experiment::parse(kText);
    exp.set("sweep.loads", "0.4 0.5");
    ASSERT_EQ(exp.axes.size(), 1u);
    EXPECT_EQ(exp.axes[0].values,
              (std::vector<std::string>{"0.4", "0.5"}));
    exp.set("net.k", "8");
    EXPECT_EQ(exp.base.net.k, 8);
    EXPECT_THROW(exp.set("sweep.nope", "1"), std::invalid_argument);
}

TEST(Experiment, ValidateChecksEveryPoint)
{
    auto exp = Experiment::parse(kText);
    EXPECT_NO_THROW(exp.validate());
    // A curve override that is per-key valid but cross-field invalid:
    // wormhole with 2 VCs is only caught by validate().
    exp.curves[0].overrides.push_back({"router.num_vcs", "2"});
    EXPECT_THROW(exp.validate(), std::invalid_argument);
}

TEST(Experiment, PointsRunThroughTheSweepEngine)
{
    auto exp = Experiment::parse(kText);
    auto results = api::runSweep(exp.points());
    ASSERT_EQ(results.points.size(), 6u);
    results.throwIfFailed();
    for (const auto &p : results.points) {
        EXPECT_TRUE(p.ok);
        EXPECT_GT(p.res.avgLatency, 0.0) << p.label;
    }
}
