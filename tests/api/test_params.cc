/** @file Tests for the string-keyed parameter schema. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/params.hh"

using namespace pdr;
using api::SimConfig;
namespace params = api::params;

namespace {

/** Expect fn() to throw std::invalid_argument mentioning `substr`. */
template <typename Fn>
void
expectInvalid(Fn fn, const std::string &substr)
{
    try {
        fn();
        FAIL() << "expected std::invalid_argument (" << substr << ")";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << "message: " << e.what();
    }
}

} // namespace

TEST(Params, SetAndGetEveryKeyRoundTrips)
{
    SimConfig cfg;
    for (const auto &info : params::schema()) {
        // Reading, writing back, and re-reading must be stable.
        auto v = params::get(cfg, info.key);
        params::set(cfg, info.key, v);
        EXPECT_EQ(params::get(cfg, info.key), v) << info.key;
        EXPECT_FALSE(info.description.empty()) << info.key;
    }
}

TEST(Params, SetUpdatesTypedFields)
{
    SimConfig cfg;
    params::set(cfg, "net.k", "4");
    EXPECT_EQ(cfg.net.k, 4);
    params::set(cfg, "router.model", "specVC");
    EXPECT_EQ(cfg.net.router.model,
              router::RouterModel::SpecVirtualChannel);
    params::set(cfg, "router.single_cycle", "true");
    EXPECT_TRUE(cfg.net.router.singleCycle);
    params::set(cfg, "traffic.pattern", "tornado");
    EXPECT_EQ(cfg.net.pattern, "tornado");
    params::set(cfg, "net.topology", "torus");
    EXPECT_EQ(cfg.net.topology, "torus");
    params::set(cfg, "traffic.injection_rate", "0.25");
    EXPECT_DOUBLE_EQ(cfg.net.injectionRate, 0.25);
    params::set(cfg, "sim.seed", "42");
    EXPECT_EQ(cfg.net.seed, 42u);
    params::set(cfg, "sim.max_cycles", "12345");
    EXPECT_EQ(cfg.maxCycles, 12345u);
}

TEST(Params, OfferedFractionAliasUsesCapacity)
{
    SimConfig cfg;
    params::set(cfg, "net.k", "8");
    params::set(cfg, "traffic.offered_fraction", "0.5");
    // Mesh capacity at k=8 is 0.5 flits/node/cycle.
    EXPECT_DOUBLE_EQ(cfg.net.injectionRate, 0.25);
    EXPECT_EQ(params::get(cfg, "traffic.offered_fraction"), "0.5");
}

TEST(Params, UnknownKeyThrowsNamingKey)
{
    SimConfig cfg;
    expectInvalid([&] { params::set(cfg, "net.bogus", "1"); },
                  "net.bogus");
    expectInvalid([&] { (void)params::get(cfg, "router.nope"); },
                  "router.nope");
}

TEST(Params, InvalidValuesThrowNamingKey)
{
    SimConfig cfg;
    expectInvalid([&] { params::set(cfg, "net.k", "banana"); },
                  "net.k");
    expectInvalid([&] { params::set(cfg, "net.k", "1"); }, "net.k");
    expectInvalid(
        [&] { params::set(cfg, "traffic.injection_rate", "1.5"); },
        "traffic.injection_rate");
    expectInvalid(
        [&] { params::set(cfg, "traffic.injection_rate", "nan"); },
        "traffic.injection_rate");
    expectInvalid(
        [&] { params::set(cfg, "traffic.offered_fraction", "nan"); },
        "traffic.offered_fraction");
    expectInvalid(
        [&] { params::set(cfg, "router.single_cycle", "maybe"); },
        "router.single_cycle");
    expectInvalid([&] { params::set(cfg, "router.model", "mesh"); },
                  "router.model");
    expectInvalid([&] { params::set(cfg, "sim.mode", "warp"); },
                  "sim.mode");
    expectInvalid(
        [&] { params::set(cfg, "net.topology", "hypercube"); },
        "hypercube");
    expectInvalid(
        [&] { params::set(cfg, "traffic.pattern", "zigzag"); },
        "zigzag");
}

TEST(Params, DumpParseRoundTripsBuiltinScenarios)
{
    std::vector<SimConfig> scenarios;

    scenarios.emplace_back();  // Defaults.

    SimConfig torus;
    torus.net.topology = "torus";
    torus.net.router.model = router::RouterModel::SpecVirtualChannel;
    torus.net.router.numVcs = 4;
    torus.net.setOfferedFraction(0.37);
    scenarios.push_back(torus);

    for (const char *model : {"WH", "VC", "specVC"}) {
        SimConfig c;
        params::set(c, "router.model", model);
        if (std::string(model) == "WH")
            c.net.router.bufDepth = 8;
        else
            c.net.router.numVcs = 2;
        scenarios.push_back(c);
    }

    for (const char *pattern : {"uniform", "transpose", "bitcomp",
                                "tornado", "neighbor", "hotspot"}) {
        SimConfig c;
        c.net.pattern = pattern;
        scenarios.push_back(c);
    }

    SimConfig fixed;
    fixed.mode = "fixed";
    fixed.horizon = 22000;
    fixed.net.injectionRate = 1.0;
    scenarios.push_back(fixed);

    SimConfig adaptive;
    adaptive.net.routing = "westfirst";
    adaptive.net.creditLatency = 4;
    scenarios.push_back(adaptive);

    for (std::size_t i = 0; i < scenarios.size(); i++) {
        const auto &cfg = scenarios[i];
        auto text = params::dump(cfg);
        auto back = params::parse(text);
        EXPECT_TRUE(back == cfg) << "scenario " << i << ":\n" << text;
        EXPECT_EQ(params::dump(back), text) << "scenario " << i;
    }
}

TEST(Params, ApplyReportsLineNumbers)
{
    SimConfig cfg;
    expectInvalid([&] { params::apply(cfg, "net.k = 8\nwat\n"); },
                  "line 2");
    expectInvalid(
        [&] { params::apply(cfg, "# ok\n\nnet.bogus = 3\n"); },
        "line 3");
}

TEST(Params, ValidateCatchesCrossFieldErrors)
{
    SimConfig cfg;
    cfg.net.router.model = router::RouterModel::Wormhole;
    cfg.net.router.numVcs = 2;
    expectInvalid([&] { params::validate(cfg); }, "wormhole");

    SimConfig torus;
    torus.net.topology = "torus";
    torus.net.router.numVcs = 1;
    expectInvalid([&] { params::validate(torus); }, "dateline");

    SimConfig bad_combo;
    bad_combo.net.topology = "torus";
    bad_combo.net.router.model = router::RouterModel::VirtualChannel;
    bad_combo.net.router.numVcs = 2;
    bad_combo.net.routing = "xy";
    expectInvalid([&] { params::validate(bad_combo); }, "xy");

    SimConfig bitcomp;
    bitcomp.net.k = 6;  // 36 nodes: not a power of two.
    bitcomp.net.pattern = "bitcomp";
    expectInvalid([&] { params::validate(bitcomp); }, "bitcomp");

    // validate() must enforce everything the Network ctor enforces.
    SimConfig ports;
    ports.net.router.numPorts = 3;
    expectInvalid([&] { params::validate(ports); },
                  "router.num_ports");

    SimConfig good;
    good.net.router.model = router::RouterModel::SpecVirtualChannel;
    good.net.router.numVcs = 2;
    EXPECT_NO_THROW(params::validate(good));
}
