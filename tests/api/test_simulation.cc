/** @file Tests for the high-level simulation facade. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "api/simulation.hh"

using namespace pdr;
using router::RouterModel;

namespace {

api::SimConfig
tinyConfig(double load = 0.2)
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.router.model = RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.warmup = 500;
    cfg.net.samplePackets = 1000;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 100000;
    return cfg;
}

} // namespace

TEST(ApiSimulation, BasicResultFields)
{
    auto res = api::runSimulation(tinyConfig());
    EXPECT_TRUE(res.drained);
    EXPECT_EQ(res.sampleSize, 1000u);
    EXPECT_EQ(res.sampleReceived, 1000u);
    EXPECT_GT(res.avgLatency, 0.0);
    EXPECT_GE(res.p99Latency, res.avgLatency);
    EXPECT_NEAR(res.offeredFraction, 0.2, 1e-9);
    EXPECT_GT(res.cycles, res.sampleSize / 16);
}

TEST(ApiSimulation, SaturatedHeuristic)
{
    api::SimResults r;
    r.drained = false;
    EXPECT_TRUE(r.saturated());
    r.drained = true;
    r.offeredFraction = 0.5;
    r.acceptedFraction = 0.49;
    EXPECT_FALSE(r.saturated());
    r.acceptedFraction = 0.30;
    EXPECT_TRUE(r.saturated());
}

TEST(ApiSimulation, SweepLoadProducesMonotoneLatency)
{
    auto curve = api::sweepLoad(tinyConfig(), {0.1, 0.3, 0.5});
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_LE(curve[0].avgLatency, curve[1].avgLatency + 0.5);
    EXPECT_LE(curve[1].avgLatency, curve[2].avgLatency + 0.5);
    EXPECT_NEAR(curve[0].offeredFraction, 0.1, 1e-9);
    EXPECT_NEAR(curve[2].offeredFraction, 0.5, 1e-9);
}

TEST(ApiSimulation, FindSaturationReasonableRange)
{
    auto cfg = tinyConfig();
    cfg.net.samplePackets = 1500;
    double sat = api::findSaturation(cfg, 4.0, 0.05);
    EXPECT_GT(sat, 0.2);
    EXPECT_LT(sat, 1.0);
}

TEST(ApiSimulation, FindSaturationMatchesSerialBisection)
{
    auto cfg = tinyConfig();
    cfg.net.samplePackets = 800;
    const double limit = 4.0, tol = 0.04;

    // Reference: the historical serial bisection, evaluated with the
    // same per-load semantics (config seed kept for every probe).
    auto ref_cfg = cfg;
    ref_cfg.net.setOfferedFraction(0.02);
    double zero_load = api::runSimulation(ref_cfg).avgLatency;
    auto ok = [&](double f) {
        auto c = cfg;
        c.net.setOfferedFraction(f);
        auto r = api::runSimulation(c);
        return r.drained && r.avgLatency <= limit * zero_load;
    };
    double lo = 0.02, hi = 1.0;
    ASSERT_TRUE(ok(lo));
    while (hi - lo > tol) {
        double mid = 0.5 * (lo + hi);
        (ok(mid) ? lo : hi) = mid;
    }

    double parallel = api::findSaturation(cfg, limit, tol);
    EXPECT_NEAR(parallel, lo, tol);
}

TEST(ApiSimulation, FixedHorizonMode)
{
    auto cfg = tinyConfig(0.3);
    cfg.mode = "fixed";
    cfg.horizon = 5000;
    auto res = api::runSimulation(cfg);
    EXPECT_EQ(res.cycles, 5000u);
    EXPECT_GT(res.acceptedFraction, 0.0);
    // Fixed-horizon runs do not use the measurement protocol and must
    // not be misreported as undrained/saturated.
    EXPECT_TRUE(res.drained);

    cfg.mode = "bogus";
    EXPECT_THROW(api::runSimulation(cfg), std::invalid_argument);
}

TEST(ApiSimulation, EnvOverrides)
{
    setenv("PDR_PACKETS", "777", 1);
    setenv("PDR_WARMUP", "123", 1);
    setenv("PDR_MAX_CYCLES", "55555", 1);
    api::SimConfig cfg;
    cfg.applyEnvDefaults();
    EXPECT_EQ(cfg.net.samplePackets, 777u);
    EXPECT_EQ(cfg.net.warmup, 123u);
    EXPECT_EQ(cfg.maxCycles, 55555u);
    unsetenv("PDR_PACKETS");
    unsetenv("PDR_WARMUP");
    unsetenv("PDR_MAX_CYCLES");

    api::SimConfig fresh;
    auto keep = fresh.net.samplePackets;
    fresh.applyEnvDefaults();
    EXPECT_EQ(fresh.net.samplePackets, keep);
}

TEST(ApiSimulation, SingleFlitPackets)
{
    auto cfg = tinyConfig();
    cfg.net.packetLength = 1;
    auto res = api::runSimulation(cfg);
    EXPECT_TRUE(res.drained);
    EXPECT_GT(res.avgLatency, 0.0);
    // Single-flit packets: no serialization tail, so latency is lower
    // than for 5-flit packets at the same load.
    auto res5 = api::runSimulation(tinyConfig());
    EXPECT_LT(res.avgLatency, res5.avgLatency);
}

TEST(ApiSimulation, LongPackets)
{
    auto cfg = tinyConfig(0.15);
    cfg.net.packetLength = 16;
    cfg.net.router.bufDepth = 8;
    auto res = api::runSimulation(cfg);
    EXPECT_TRUE(res.drained);
    EXPECT_GT(res.avgLatency, 20.0);
}

TEST(ApiSimulation, RouterStatsPlumbed)
{
    auto res = api::runSimulation(tinyConfig(0.3));
    EXPECT_GT(res.routers.flitsIn, 0u);
    EXPECT_GT(res.routers.specSaAttempts, 0u);
    EXPECT_GE(res.routers.specSaAttempts, res.routers.specSaUseful);
    EXPECT_GT(res.routers.vaGrants, 0u);
}

TEST(ApiSimulation, ZeroLoadRunsCleanly)
{
    auto cfg = tinyConfig(0.0);
    cfg.net.samplePackets = 0;
    auto res = api::runSimulation(cfg);
    EXPECT_TRUE(res.drained);   // Nothing to tag: trivially done.
    EXPECT_EQ(res.sampleReceived, 0u);
}
