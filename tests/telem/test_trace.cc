/** @file Tests for the Chrome trace-event writer and its determinism. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/simulation.hh"
#include "telem/trace.hh"

using namespace pdr;

namespace {

api::SimConfig
tinyConfig(double load = 0.4)
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.warmup = 500;
    cfg.net.samplePackets = 1000;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 100000;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(bool(f)) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** The sim-time lines of a trace: every line mentioning a sim pid, in
 *  file order, with the host-profile (wall-clock) lines dropped. */
std::vector<std::string>
simLines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("\"pid\": 1") != std::string::npos ||
            line.find("\"pid\": 2") != std::string::npos) {
            out.push_back(line);
        }
    }
    return out;
}

} // namespace

TEST(TraceWriter, EmitsValidSkeleton)
{
    std::ostringstream ss;
    telem::TraceWriter tw(&ss);
    tw.processName(telem::TraceWriter::kPacketPid, "packets");
    tw.completeEvent(telem::TraceWriter::kPacketPid, 7, "pkt", "packet",
                     100, 25, "{\"id\": 7}");
    tw.counterEvent(telem::TraceWriter::kRouterPid, "delivered", 200,
                    "flits", 42.0);
    tw.close();

    std::string t = ss.str();
    EXPECT_EQ(t.rfind("{\"displayTimeUnit\": \"ms\",", 0), 0u);
    EXPECT_NE(t.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(t.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(t.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(t.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(t.find("\"ts\": 100"), std::string::npos);
    EXPECT_NE(t.find("\"dur\": 25"), std::string::npos);
    EXPECT_NE(t.find("\"tid\": 7"), std::string::npos);
    EXPECT_EQ(t.substr(t.size() - 4), "\n]}\n");
    EXPECT_EQ(tw.events(), 3u);

    // Further emits after close are dropped.
    tw.completeEvent(telem::TraceWriter::kPacketPid, 1, "late", "packet",
                     1, 1);
    EXPECT_EQ(tw.events(), 3u);
    EXPECT_EQ(ss.str(), t);
}

TEST(TraceWriter, InactiveWriterIsNoop)
{
    telem::TraceWriter tw(nullptr);
    EXPECT_FALSE(tw.active());
    tw.processName(1, "x");
    tw.completeEvent(1, 0, "a", "b", 0, 1);
    tw.counterEvent(2, "c", 0, "k", 1.0);
    tw.close();
    EXPECT_EQ(tw.events(), 0u);
}

TEST(Trace, SimPidsByteIdenticalAcrossWorkers)
{
    // The kPacketPid / kRouterPid streams are simulation output; only
    // the kHostPid (wall clock) lines may differ between runs.
    std::string out1 = "pdr_test_trace_w1.json";
    std::string out2 = "pdr_test_trace_w2.json";

    api::SimConfig cfg = tinyConfig();
    cfg.telem.trace = out1;
    cfg.parWorkers = 1;
    auto r1 = api::runSimulation(cfg);

    cfg.telem.trace = out2;
    cfg.parWorkers = 2;
    auto r2 = api::runSimulation(cfg);

    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_GT(r1.telem.traceEvents, 0u);

    auto sim1 = simLines(slurp(out1));
    auto sim2 = simLines(slurp(out2));
    std::remove(out1.c_str());
    std::remove(out2.c_str());

    ASSERT_FALSE(sim1.empty());
    ASSERT_EQ(sim1.size(), sim2.size());
    for (std::size_t i = 0; i < sim1.size(); i++)
        ASSERT_EQ(sim1[i], sim2[i]) << "line " << i;
}

TEST(Trace, TraceAloneLeavesResultsUntouched)
{
    // --trace without telem.enable activates only the trace stream,
    // and the simulation results stay bit-identical.
    api::SimConfig plain = tinyConfig();
    api::SimConfig traced = tinyConfig();
    traced.telem.trace = "pdr_test_trace_solo.json";

    auto a = api::runSimulation(plain);
    auto b = api::runSimulation(traced);
    std::remove(traced.telem.trace.c_str());

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.routers.flitsOut, b.routers.flitsOut);
    EXPECT_EQ(a.routers.creditStallCycles, b.routers.creditStallCycles);
    EXPECT_EQ(a.telem.windows, 0u);     // Sampler stays off.
    EXPECT_EQ(b.telem.windows, 0u);
    EXPECT_GT(b.telem.traceEvents, 0u);
}
