/** @file Tests for the per-router counter catalog and snapshots. */

#include <gtest/gtest.h>

#include <cstring>

#include "net/network.hh"
#include "par/stepper.hh"
#include "telem/counters.hh"

using namespace pdr;

namespace {

net::NetworkConfig
tinyConfig(double load = 0.5)
{
    net::NetworkConfig cfg;
    cfg.k = 4;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.warmup = 0;
    cfg.samplePackets = 1u << 30;   // Sample space never closes.
    cfg.setOfferedFraction(load);
    return cfg;
}

} // namespace

TEST(CounterCatalog, NamesAreStableAndIndexed)
{
    const auto &cat = telem::counterCatalog();
    ASSERT_GE(cat.size(), 9u);
    for (std::size_t i = 0; i < cat.size(); i++) {
        EXPECT_EQ(telem::counterIndex(cat[i].name), int(i));
        // Schema names: lowercase identifiers, no spaces.
        for (const char *p = cat[i].name; *p; p++)
            EXPECT_TRUE((*p >= 'a' && *p <= 'z') || *p == '_')
                << cat[i].name;
    }
    EXPECT_EQ(telem::counterIndex("no_such_counter"), -1);
    EXPECT_GE(telem::counterIndex("flits_out"), 0);
    EXPECT_GE(telem::counterIndex("credit_stall_cycles"), 0);
    EXPECT_GE(telem::counterIndex("buf_occupancy"), 0);
}

TEST(CounterSnapshot, TotalsMatchRouterTotals)
{
    net::Network net(tinyConfig());
    net.run(2000);

    auto snap = telem::CounterSnapshot::sample(net, net.now());
    auto totals = net.routerTotals();

    EXPECT_EQ(snap.numRouters(), std::size_t(net.lattice().numRouters()));
    const auto &cat = telem::counterCatalog();
    // The catalog getters project RouterStats, so per-counter totals
    // must equal the aggregate Network::routerTotals() fields.
    EXPECT_EQ(snap.total(std::size_t(telem::counterIndex("flits_in"))),
              totals.flitsIn);
    EXPECT_EQ(snap.total(std::size_t(telem::counterIndex("flits_out"))),
              totals.flitsOut);
    EXPECT_EQ(snap.total(std::size_t(
                  telem::counterIndex("credit_stall_cycles"))),
              totals.creditStallCycles);
    EXPECT_EQ(snap.total(std::size_t(
                  telem::counterIndex("buf_occupancy"))),
              totals.bufOccupancy);
    // Something actually moved in 2000 loaded cycles.
    EXPECT_GT(snap.total(std::size_t(telem::counterIndex("flits_out"))),
              0u);
    // Per-router values sum to the totals for every catalog entry.
    for (std::size_t c = 0; c < cat.size(); c++) {
        std::uint64_t sum = 0;
        for (std::size_t r = 0; r < snap.numRouters(); r++)
            sum += snap.value(r, c);
        EXPECT_EQ(sum, snap.total(c)) << cat[c].name;
    }
}

TEST(CounterSnapshot, DeltaAlgebraTelescopes)
{
    net::Network net(tinyConfig());

    // Window the run; accumulate the per-window deltas and check they
    // reproduce the final snapshot's totals exactly.
    telem::CounterSnapshot prev =
        telem::CounterSnapshot::sample(net, net.now());
    telem::CounterSnapshot acc = prev;
    for (int w = 0; w < 5; w++) {
        net.run(400);
        auto cur = telem::CounterSnapshot::sample(net, net.now());
        auto d = cur.deltaSince(prev);
        acc.accumulate(d);
        prev = cur;
    }
    auto final_snap = telem::CounterSnapshot::sample(net, net.now());
    const auto &cat = telem::counterCatalog();
    for (std::size_t c = 0; c < cat.size(); c++)
        EXPECT_EQ(acc.total(c), final_snap.total(c)) << cat[c].name;
}

TEST(CounterSnapshot, SampleIsReadOnly)
{
    net::Network net(tinyConfig());
    net.run(1000);
    auto a = telem::CounterSnapshot::sample(net, net.now());
    // Sampling again without stepping reads identical values: the
    // flush of open intervals happens in a copy, never in the router.
    auto b = telem::CounterSnapshot::sample(net, net.now());
    EXPECT_EQ(a, b);
}

TEST(CounterSnapshot, ShardMergeMatchesSerial)
{
    // The per-router stats are the per-worker shards: a partitioned
    // run must produce the exact serial snapshot at a common cycle.
    net::NetworkConfig cfg = tinyConfig();

    net::Network serial(cfg);
    serial.run(1500);
    auto serial_snap =
        telem::CounterSnapshot::sample(serial, serial.now());

    net::Network par_net(cfg);
    {
        par::ParConfig pcfg;
        pcfg.workers = 2;
        par::ParallelStepper stepper(par_net, pcfg);
        stepper.run(1500);
        ASSERT_EQ(par_net.now(), serial.now());
        auto par_snap =
            telem::CounterSnapshot::sample(par_net, par_net.now());
        EXPECT_EQ(par_snap, serial_snap);
    }
}
