/** @file Tests for the windowed streaming sampler and its algebra. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/simulation.hh"
#include "stats/latency.hh"

using namespace pdr;

namespace {

api::SimConfig
tinyConfig(double load = 0.4)
{
    api::SimConfig cfg;
    cfg.net.k = 4;
    cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.net.router.numVcs = 2;
    cfg.net.router.bufDepth = 4;
    cfg.net.warmup = 500;
    cfg.net.samplePackets = 1000;
    cfg.net.setOfferedFraction(load);
    cfg.maxCycles = 100000;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(bool(f)) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

std::string
tmpPath(const char *tag)
{
    return std::string("pdr_test_telem_") + tag + ".ndjson";
}

/** Pull every `"key": <integer>` occurrence out of NDJSON lines whose
 *  "type" field equals `type`. */
std::vector<unsigned long long>
extractField(const std::string &text, const std::string &type,
             const std::string &key)
{
    std::vector<unsigned long long> out;
    std::istringstream lines(text);
    std::string line;
    const std::string type_tag = "\"type\": \"" + type + "\"";
    const std::string key_tag = "\"" + key + "\": ";
    while (std::getline(lines, line)) {
        if (line.find(type_tag) == std::string::npos)
            continue;
        auto pos = line.find(key_tag);
        EXPECT_NE(pos, std::string::npos) << line;
        if (pos == std::string::npos)
            continue;
        out.push_back(std::stoull(line.substr(pos + key_tag.size())));
    }
    return out;
}

} // namespace

TEST(LatencyDelta, WindowsTelescopeToTotals)
{
    stats::LatencyStats total;
    stats::LatencyStats windows_sum;
    stats::LatencyStats prev;
    // Three "windows" of recordings, snapshotting between them; the
    // deltas must merge back into exactly the final accumulator.
    const double samples[] = {3, 7, 7, 12, 9000, 4, 4, 4, 250, 1};
    int i = 0;
    for (int w = 0; w < 3; w++) {
        for (int j = 0; j <= w * 2; j++, i++) {
            double v = samples[i % 10] + i;
            total.record(v, true);
            total.record(v, false);     // Unmeasured traffic too.
        }
        auto d = total.deltaSince(prev);
        windows_sum += d;
        prev = total;
    }
    EXPECT_EQ(windows_sum.count(), total.count());
    EXPECT_EQ(windows_sum.unmeasuredCount(), total.unmeasuredCount());
    EXPECT_DOUBLE_EQ(windows_sum.mean(), total.mean());
    EXPECT_DOUBLE_EQ(windows_sum.percentile(50.0),
                     total.percentile(50.0));
    EXPECT_DOUBLE_EQ(windows_sum.percentile(99.0),
                     total.percentile(99.0));
}

TEST(LatencyDelta, SingleWindowIsExact)
{
    stats::LatencyStats acc;
    acc.record(10.0, true);
    acc.record(20.0, true);
    stats::LatencyStats prev = acc;
    acc.record(5.0, true);
    acc.record(4100.0, true);   // Overflow bin.
    auto d = acc.deltaSince(prev);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    // Overflow deltas report the bin limit as max; just require the
    // max to be at least the largest binned sample.
    EXPECT_GE(d.max(), 5.0);
}

TEST(Stream, TelemetryIsReadOnly)
{
    // The hard contract: identical SimResults with telemetry on or
    // off, field by field, including every router counter.
    api::SimConfig off = tinyConfig();
    api::SimConfig on = tinyConfig();
    on.telem.enable = true;
    on.telem.interval = 300;
    on.telem.out = "";      // Sample (and discard) every window.

    auto a = api::runSimulation(off);
    auto b = api::runSimulation(on);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.sampleReceived, b.sampleReceived);
    EXPECT_EQ(a.sampleSize, b.sampleSize);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_DOUBLE_EQ(a.acceptedFraction, b.acceptedFraction);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.routers.flitsIn, b.routers.flitsIn);
    EXPECT_EQ(a.routers.flitsOut, b.routers.flitsOut);
    EXPECT_EQ(a.routers.headGrants, b.routers.headGrants);
    EXPECT_EQ(a.routers.vaGrants, b.routers.vaGrants);
    EXPECT_EQ(a.routers.specSaAttempts, b.routers.specSaAttempts);
    EXPECT_EQ(a.routers.specSaWins, b.routers.specSaWins);
    EXPECT_EQ(a.routers.specSaUseful, b.routers.specSaUseful);
    EXPECT_EQ(a.routers.creditStallCycles, b.routers.creditStallCycles);
    EXPECT_EQ(a.routers.bufOccupancy, b.routers.bufOccupancy);
    // And the telemetry side actually ran.
    EXPECT_EQ(a.telem.windows, 0u);
    EXPECT_GT(b.telem.windows, 0u);
}

TEST(Stream, NdjsonByteIdenticalAcrossWorkers)
{
    // The emitted stream is simulation output: it must be
    // byte-identical for any worker count.
    std::string out1 = tmpPath("w1");
    std::string out2 = tmpPath("w2");

    api::SimConfig cfg = tinyConfig();
    cfg.telem.enable = true;
    cfg.telem.interval = 250;

    cfg.parWorkers = 1;
    cfg.telem.out = out1;
    auto r1 = api::runSimulation(cfg);

    cfg.parWorkers = 2;
    cfg.telem.out = out2;
    auto r2 = api::runSimulation(cfg);

    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.telem.windows, r2.telem.windows);
    std::string t1 = slurp(out1);
    std::string t2 = slurp(out2);
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(t1, t2);
    std::remove(out1.c_str());
    std::remove(out2.c_str());
}

TEST(Stream, WindowFlitsTelescopeToSummary)
{
    std::string out = tmpPath("sum");
    api::SimConfig cfg = tinyConfig();
    cfg.telem.enable = true;
    cfg.telem.interval = 200;
    cfg.telem.out = out;

    auto res = api::runSimulation(cfg);
    std::string text = slurp(out);
    std::remove(out.c_str());

    auto window_flits = extractField(text, "window", "flits");
    auto summary_flits = extractField(text, "summary", "flits");
    auto summary_windows = extractField(text, "summary", "windows");
    ASSERT_EQ(summary_flits.size(), 1u);
    ASSERT_EQ(summary_windows.size(), 1u);
    EXPECT_EQ(window_flits.size(), std::size_t(summary_windows[0]));
    EXPECT_EQ(res.telem.windows, summary_windows[0]);
    EXPECT_EQ(res.telem.flits, summary_flits[0]);

    // Sum of windowed deltas == end-of-run total: the stream's merge
    // algebra over the delivered-flit counter.
    unsigned long long sum = 0;
    for (auto f : window_flits)
        sum += f;
    EXPECT_EQ(sum, summary_flits[0]);

    // Per-router heatmap rows: one per router of the 4x4 mesh, and
    // their flits_out sums to the routers' aggregate.
    auto router_rows = extractField(text, "router", "id");
    EXPECT_EQ(router_rows.size(), 16u);
    auto router_flits = extractField(text, "router", "flits_out");
    unsigned long long rsum = 0;
    for (auto f : router_flits)
        rsum += f;
    EXPECT_EQ(rsum, res.routers.flitsOut);
}

TEST(Stream, CsvFormatEmitsHeaderAndRows)
{
    std::string out = tmpPath("csv");
    api::SimConfig cfg = tinyConfig();
    cfg.telem.enable = true;
    cfg.telem.interval = 400;
    cfg.telem.format = "csv";
    cfg.telem.out = out;

    auto res = api::runSimulation(cfg);
    std::string text = slurp(out);
    std::remove(out.c_str());

    ASSERT_FALSE(text.empty());
    std::istringstream lines(text);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header.rfind("cycle,window,flits,packets,rate", 0), 0u);
    std::size_t rows = 0;
    std::string line;
    while (std::getline(lines, line))
        rows++;
    EXPECT_EQ(rows, std::size_t(res.telem.windows));
}

TEST(Stream, ConfigValidates)
{
    telem::Config c;
    c.enable = true;
    EXPECT_NO_THROW(c.validate());
    c.format = "xml";
    EXPECT_THROW(c.validate(), std::exception);
    c.format = "csv";
    EXPECT_NO_THROW(c.validate());
    c.interval = 0;
    EXPECT_THROW(c.validate(), std::exception);
}
