#!/usr/bin/env python3
"""Determinism lint for the pipelined-router simulator.

The simulator's headline property is bit-identical results across
thread counts, worker counts and sweep slices (docs/ARCHITECTURE.md,
"Determinism invariants").  Most violations of that contract come from
a handful of well-known C++ constructs -- wall-clock reads, unseeded
RNGs, address-dependent iteration order -- that compile fine, pass
small tests, and then surface as a byte-diff ten thousand cycles into
a golden sweep.  This lint names those constructs and rejects them at
review time.

Checks are regex-based over comment- and string-stripped source, so
the tool needs nothing beyond the Python standard library and runs in
milliseconds as a CTest.  That makes it deliberately approximate: it
is a tripwire for the known hazard classes, not a parser.  clang-tidy
(.clang-tidy at the repo root) covers the general-purpose static
analysis; the runtime auditor (src/sim/audit.hh) covers what analysis
cannot see.

Suppressions
------------
A finding is suppressed by a justified allow comment on the same line
or the line directly above:

    // pdr-lint: allow(PDR-ORD-UNORD) keyed lookup only, never iterated

The justification text is mandatory; an allow() without one does not
suppress (and is itself reported), so every suppression documents why
the construct is safe.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------
# Rule table.  `scope` is a predicate over the repo-relative posix
# path; `pattern` runs per stripped line.  Rules needing more context
# than one line implement `check(path, lines)` instead and yield
# (lineno, message) pairs.
# ---------------------------------------------------------------------

HOT_DIRS = ("src/net/", "src/router/", "src/arb/", "src/par/",
            "src/sim/", "src/traffic/")

# Directories whose code may legitimately read the host clock for
# *observability* (sweep wall-time telemetry, the host-profile trace
# stream, the engine profiler's worker-phase timing).  Wall-clock
# reads there fall under PDR-OBS-WALLCLOCK -- still
# suppression-gated, but with an observability-specific message --
# while everywhere else in src/ (notably src/par/, whose phase
# transitions the profiler timestamps from the *outside*) stays under
# the stricter PDR-RNG-TIME.
OBS_DIRS = ("src/telem/", "src/exec/", "src/prof/")


def in_src(path):
    return path.startswith("src/")


def in_hot(path):
    return path.startswith(HOT_DIRS)


def in_obs(path):
    return path.startswith(OBS_DIRS)


def in_src_except_obs(path):
    return in_src(path) and not in_obs(path)


def in_src_except_rng(path):
    return in_src(path) and not path.startswith("src/common/rng")


RNG_SRC_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand|rand_r|drand48|lrand48|mrand48)\s*\("
    r"|std::random_device"
    r"|std::mt19937(?:_64)?\b"
    r"|std::minstd_rand0?\b"
    r"|std::default_random_engine"
    r"|std::(?:uniform_(?:int|real)|bernoulli|normal|poisson|geometric|"
    r"exponential|discrete)_distribution"
)

RNG_TIME_RE = re.compile(
    r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\bclock\s*\(\s*\)"
    r"|std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"::now"
)

ORD_UNORD_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<")

# A pointer-typed key in an associative container: iteration (ordered)
# or bucket order (unordered) then depends on allocation addresses.
ORD_PTRKEY_RE = re.compile(
    r"std::(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")

STA_MUT_RE = re.compile(
    r"^\s*static\s+"
    r"(?!const\b|constexpr\b|class\b|struct\b|assert)"
    r"(?:[\w:]+(?:\s*<[^;{}]*>)?[\s&*]+)"
    r"(\w+)\s*(?:=|\{|;|\[)")

UNORD_DECL_NAME_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;={]*>\s*&?\s*"
    r"(\w+)\s*[;={(]")

RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*(?:\w+\s*\.\s*)?(\w+)\s*\)")
BEGIN_ITER_RE = re.compile(r"\b(\w+)\s*\.\s*begin\s*\(\s*\)")


def check_ord_iter(path, lines):
    """Range-for / .begin() over a container declared unordered in the
    same file: bucket order is hash- and address-dependent, so any fold
    over it is nondeterministic."""
    unordered = set()
    for line in lines:
        m = UNORD_DECL_NAME_RE.search(line)
        if m:
            unordered.add(m.group(1))
    if not unordered:
        return
    for no, line in enumerate(lines, 1):
        for regex in (RANGE_FOR_RE, BEGIN_ITER_RE):
            m = regex.search(line)
            if m and m.group(1) in unordered:
                yield (no, "iteration over unordered container '%s': "
                           "bucket order is hash/address-dependent; "
                           "use an ordered container or sort first"
                           % m.group(1))
                break


CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?(\w+)\s*(?:final\s*)?"
    r"(:?)")
VIRTUAL_RE = re.compile(r"^\s*virtual\b")


def iter_class_bodies(lines):
    """Yield (head_lineno, name, derived, body_line_numbers) for every
    class/struct defined in `lines` (stripped source).  Brace-counting
    approximation; nested classes are reported too."""
    depth = 0
    stack = []          # (entry_depth, head_no, name, derived)
    pending = None      # (head_no, name, saw_colon) until '{' or ';'
    out = []
    for no, line in enumerate(lines, 1):
        scan = line
        if pending is None:
            m = CLASS_HEAD_RE.search(scan)
            if m and not re.search(r"\benum\s+(?:class|struct)\b", scan):
                head = scan[m.end():]
                if ";" in head and ("{" not in head or
                                    head.index(";") < head.index("{")):
                    pass  # Forward declaration.
                else:
                    pending = [no, m.group(1),
                               m.group(2) == ":" or
                               bool(re.search(r":\s*(?:public|protected|"
                                              r"private|virtual)\b",
                                              head))]
                    if "{" not in scan:
                        depth += scan.count("{") - scan.count("}")
                        continue
        if pending is not None:
            if re.search(r":\s*(?:public|protected|private|virtual)\b",
                         scan) or re.match(r"\s*:", scan):
                pending[2] = True
            if "{" in scan:
                stack.append((depth, pending[0], pending[1],
                              pending[2], []))
                pending = None
            elif ";" in scan:
                pending = None
        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while stack and depth <= stack[-1][0]:
                    entry = stack.pop()
                    out.append((entry[1], entry[2], entry[3], entry[4]))
        for entry in stack:
            entry[4].append(no)
    while stack:
        entry = stack.pop()
        out.append((entry[1], entry[2], entry[3], entry[4]))
    return out


def check_ovr_virt(path, lines):
    """`virtual` on a member of a derived class: re-declared virtuals
    must spell `override` so signature drift breaks the build instead
    of silently forking the vtable."""
    for head_no, name, derived, body in iter_class_bodies(lines):
        if not derived:
            continue
        for no in body:
            line = lines[no - 1]
            if (VIRTUAL_RE.search(line) and "override" not in line and
                    "final" not in line):
                yield (no, "'virtual' in derived class %s without "
                           "'override': spell 'override' (drop the "
                           "redundant 'virtual') so base-signature "
                           "drift is a compile error" % name)


# Dense allocation-path structures/scans in src/arb/: a vector<bool>
# request row, or a for loop whose bound is a dense arbiter dimension
# (bare size(), n_/p_/v_ members, the nivc = p*v product).  The bound
# must directly follow the comparison so container.size() calls and
# word-count loops (words_, nivcWords_) stay out of scope.
DENSESCAN_RE = re.compile(
    r"std::vector\s*<\s*bool\s*>"
    r"|\bfor\s*\([^;]*;[^;]*<=?\s*"
    r"(?:size\s*\(\s*\)|(?:n_|p_|v_|nivc)\b)")

TICK_DECL_RE = re.compile(r"\btick\s*\(\s*(?:sim::)?Cycle\b")
NEXTWAKE_RE = re.compile(r"\bnextWake\w*\s*\(")


def check_wake_next(path, lines):
    """A ticking component without a nextWake(): every tick()ing class
    must report its next wake cycle or the activity-driven scheduler
    cannot prove skipping it is a no-op (invariant 1)."""
    if not path.endswith((".hh", ".h")):
        return
    for head_no, name, derived, body in iter_class_bodies(lines):
        has_tick = any(TICK_DECL_RE.search(lines[no - 1]) for no in body)
        has_wake = any(NEXTWAKE_RE.search(lines[no - 1]) for no in body)
        if has_tick and not has_wake:
            yield (head_no, "class %s declares tick() but no "
                            "nextWake(): the wake-table scheduler "
                            "needs an exact next-wake report to skip "
                            "it soundly" % name)


class Rule:
    def __init__(self, rid, summary, scope, pattern=None, check=None,
                 message=None):
        self.rid = rid
        self.summary = summary
        self.scope = scope
        self.pattern = pattern
        self.check = check
        self.message = message

    def findings(self, path, lines):
        if not self.scope(path):
            return
        if self.check is not None:
            yield from self.check(path, lines)
            return
        for no, line in enumerate(lines, 1):
            if self.pattern.search(line):
                yield (no, self.message)


RULES = [
    Rule("PDR-RNG-SRC",
         "RNG outside common/rng: raw rand()/<random> engines and "
         "distributions are unseeded or implementation-defined; all "
         "randomness must flow through the owned pdr::Rng streams "
         "(invariant 3)",
         in_src_except_rng, pattern=RNG_SRC_RE,
         message="raw RNG source: route randomness through pdr::Rng "
                 "(src/common/rng.hh) so streams are seeded, owned and "
                 "reproducible"),
    Rule("PDR-RNG-TIME",
         "wall-clock read: time()/clock()/chrono clocks feeding "
         "simulation state make runs time-dependent; simulated time is "
         "the only clock (the src/telem/, src/exec/ and src/prof/ "
         "observability paths are governed by PDR-OBS-WALLCLOCK "
         "instead)",
         in_src_except_obs, pattern=RNG_TIME_RE,
         message="wall-clock read: simulation behavior may not depend "
                 "on host time (telemetry needs a justified "
                 "suppression)"),
    Rule("PDR-OBS-WALLCLOCK",
         "wall-clock read in an observability path (src/telem/, "
         "src/exec/, src/prof/): host time is allowed only in "
         "host-profile / wall-time telemetry streams that never feed "
         "simulation state or sim-facing output, and every read must "
         "carry a justified suppression saying so",
         in_obs, pattern=RNG_TIME_RE,
         message="wall-clock read in an observability path: confine "
                 "it to the host-profile / wall-time stream and "
                 "justify with a suppression that the value never "
                 "reaches simulation state or sim-facing output"),
    Rule("PDR-ORD-UNORD",
         "unordered container in a hot-path component: iteration/bucket "
         "order is hash- and address-dependent; hot-path state must "
         "use deterministically ordered containers (invariant 2)",
         in_hot, pattern=ORD_UNORD_RE,
         message="std::unordered_* in a simulation component: bucket "
                 "order is not deterministic; use a vector/std::map or "
                 "justify that it is never iterated"),
    Rule("PDR-ORD-ITER",
         "iteration over an unordered container declared in the same "
         "file: any fold over bucket order is nondeterministic",
         in_hot, check=check_ord_iter),
    Rule("PDR-ORD-PTRKEY",
         "pointer-keyed associative container: ordering (or hashing) "
         "by address varies run to run with ASLR and allocation order",
         in_src, pattern=ORD_PTRKEY_RE,
         message="pointer-keyed container: address order varies per "
                 "run; key by a stable id instead"),
    Rule("PDR-OVR-VIRT",
         "'virtual' without 'override' in a derived class: signature "
         "drift against the base silently forks the vtable",
         in_src, check=check_ovr_virt),
    Rule("PDR-STA-MUT",
         "mutable static state: per-process state shared across "
         "Networks/sweep points breaks run-to-run and slice "
         "independence (invariant 5)",
         in_src, pattern=STA_MUT_RE,
         message="mutable static: process-global state leaks across "
                 "simulations and sweep slices; make it per-Network or "
                 "justify why it cannot affect results"),
    Rule("PDR-PERF-DENSESCAN",
         "dense request row or full-range scan in src/arb/: the "
         "allocation hot path stages requests as packed uint64_t bid "
         "words and iterates set bits; vector<bool> rows and loops "
         "bounded by a dense arbiter dimension (size(), n_, p_, v_, "
         "nivc) reintroduce the O(p*v) walk the bitmask engine removed",
         lambda p: p.startswith("src/arb/"),
         pattern=DENSESCAN_RE,
         message="dense structure/scan on the allocation path: stage "
                 "requests as packed bid words and walk set bits "
                 "(ctz), or justify (scalar oracle, one-time ctor, "
                 "diagnostics)"),
    Rule("PDR-WAKE-NEXT",
         "component with tick() but no nextWake(): unschedulable under "
         "the wake-table scheduler (invariant 1)",
         lambda p: p.startswith(("src/router/", "src/traffic/",
                                 "src/net/")),
         check=check_wake_next),
]


# ---------------------------------------------------------------------
# Comment / string stripping (line-preserving).
# ---------------------------------------------------------------------

def strip_source(text):
    """Blank out comments and string/char literal contents, preserving
    line structure so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "str"
                out.append('"')
                i += 1
            elif c == "'":
                state = "chr"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            elif c == "\n":  # Unterminated; keep line structure.
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------

ALLOW_RE = re.compile(
    r"pdr-lint:\s*allow\(\s*([A-Z0-9,\s-]+?)\s*\)\s*(\S.*)?$")


def collect_suppressions(raw_lines, stripped_lines):
    """Map line number -> set of allowed rule ids.  An allow comment
    applies to its own line and -- skipping any comment-only/blank
    lines, so a wrapped justification may span several lines -- the
    first following code line.  Returns (allowed, bad) where bad lists
    (lineno, reason) for malformed allows (missing justification)."""
    allowed = {}
    bad = []
    for no, line in enumerate(raw_lines, 1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        ids = {t.strip() for t in m.group(1).split(",") if t.strip()}
        just = (m.group(2) or "").strip().rstrip("*/").strip()
        if not just:
            bad.append((no, "pdr-lint allow(%s) has no justification; "
                            "suppression ignored" % ",".join(sorted(ids))))
            continue
        unknown = ids - {r.rid for r in RULES}
        if unknown:
            bad.append((no, "pdr-lint allow() names unknown rule(s) "
                            "%s" % ",".join(sorted(unknown))))
        allowed.setdefault(no, set()).update(ids)
        target = no + 1
        while (target <= len(stripped_lines) and
               not stripped_lines[target - 1].strip()):
            allowed.setdefault(target, set()).update(ids)
            target += 1
        allowed.setdefault(target, set()).update(ids)
    return allowed, bad


# ---------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------

def lint_text(path, text):
    """Lint one file's content under repo-relative posix `path`.
    Returns a list of (lineno, rule_id, message)."""
    raw_lines = text.splitlines()
    lines = strip_source(text).splitlines()
    allowed, bad = collect_suppressions(raw_lines, lines)
    findings = [(no, "PDR-LINT-SUPPRESS", msg) for no, msg in bad]
    for rule in RULES:
        for no, msg in rule.findings(path, lines):
            if rule.rid in allowed.get(no, ()):
                continue
            findings.append((no, rule.rid, msg))
    findings.sort()
    return findings


def repo_relative(root, p):
    try:
        return p.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def iter_source_files(root, targets):
    for t in targets:
        p = Path(t)
        if p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in (".cc", ".hh", ".h", ".cpp", ".hpp"):
                    yield f
        elif p.is_file():
            yield p
        else:
            print("pdr_lint: no such path: %s" % t, file=sys.stderr)
            sys.exit(2)


def run_lint(root, targets):
    total = 0
    for f in iter_source_files(root, targets):
        rel = repo_relative(root, f)
        text = f.read_text(encoding="utf-8", errors="replace")
        for no, rid, msg in lint_text(rel, text):
            print("%s:%d: %s: %s" % (rel, no, rid, msg))
            total += 1
    if total:
        print("pdr_lint: %d finding(s)" % total, file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------
# Self-test: every rule must fire on its seeded violation, stay quiet
# on the clean variant, and honor a justified suppression.
# ---------------------------------------------------------------------

FIXTURES = [
    # (rule id, path, bad snippet, clean snippet)
    ("PDR-RNG-SRC", "src/traffic/demo.cc",
     "int draw() { return rand() % 6; }\n",
     "int draw(pdr::Rng &rng) { return rng.uniformInt(0, 5); }\n"),
    ("PDR-RNG-SRC", "src/router/demo.cc",
     "std::mt19937 gen;\n",
     "pdr::Rng gen;\n"),
    ("PDR-RNG-TIME", "src/sim/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n",
     "sim::Cycle t0 = now;\n"),
    ("PDR-RNG-TIME", "src/api/demo.cc",
     "std::uint64_t seed = time(nullptr);\n",
     "std::uint64_t seed = cfg.seed;\n"),
    ("PDR-OBS-WALLCLOCK", "src/telem/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n",
     "sim::Cycle t0 = net.now();\n"),
    ("PDR-OBS-WALLCLOCK", "src/exec/demo.cc",
     "auto start = std::chrono::steady_clock::now();\n",
     "sim::Cycle start = 0;\n"),
    ("PDR-OBS-WALLCLOCK", "src/prof/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n",
     "sim::Cycle t0 = net.now();\n"),
    # The profiler times src/par/ phases, but from its own shards:
    # raw clock reads inside the stepper itself stay forbidden.
    ("PDR-RNG-TIME", "src/par/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n",
     "prof->mark(w, prof::Profiler::Phase::Tick);\n"),
    ("PDR-ORD-UNORD", "src/router/demo.hh",
     "std::unordered_map<int, int> credits_;\n",
     "std::vector<int> credits_;\n"),
    ("PDR-ORD-ITER", "src/net/demo.cc",
     "std::unordered_set<int> live_;\n"
     "void scan() { for (int id : live_) { use(id); } }\n",
     "std::set<int> live_;\n"
     "void scan() { for (int id : live_) { use(id); } }\n"),
    ("PDR-ORD-PTRKEY", "src/par/demo.hh",
     "std::map<Router *, int> owner_;\n",
     "std::map<int, int> owner_;\n"),
    ("PDR-OVR-VIRT", "src/router/demo.hh",
     "class Fancy : public Arbiter {\n"
     "  public:\n"
     "    virtual int pick(int n);\n"
     "};\n",
     "class Fancy : public Arbiter {\n"
     "  public:\n"
     "    int pick(int n) override;\n"
     "};\n"),
    ("PDR-STA-MUT", "src/arb/demo.cc",
     "static int grantCount = 0;\n",
     "static const int kMaxGrants = 8;\n"),
    ("PDR-PERF-DENSESCAN", "src/arb/demo.hh",
     "std::vector<bool> reqRow_;\n",
     "std::uint64_t reqBits_ = 0;\n"),
    ("PDR-PERF-DENSESCAN", "src/arb/demo.cc",
     "int pick() {\n"
     "    for (int i = 0; i < size(); i++) {\n"
     "        if (req_[i]) return i;\n"
     "    }\n"
     "    return NoGrant;\n"
     "}\n",
     "int pick(std::uint64_t m) {\n"
     "    while (m) { int i = ctz64(m); m &= m - 1; return i; }\n"
     "    return NoGrant;\n"
     "}\n"),
    ("PDR-PERF-DENSESCAN", "src/arb/demo2.cc",
     "void stage() {\n"
     "    for (int vc = 0; vc < v_; vc++)\n"
     "        row_[vc] = inReq_[vc];\n"
     "}\n",
     "void stage() {\n"
     "    for (int w = 0; w < nivcWords_; w++)\n"
     "        row_[w] = inReq_[w];\n"
     "}\n"),
    ("PDR-WAKE-NEXT", "src/traffic/demo.hh",
     "class Pulser {\n"
     "  public:\n"
     "    void tick(sim::Cycle now);\n"
     "};\n",
     "class Pulser {\n"
     "  public:\n"
     "    void tick(sim::Cycle now);\n"
     "    sim::Cycle nextWake(sim::Cycle now) const;\n"
     "};\n"),
]

SCOPE_FIXTURES = [
    # Out-of-scope paths where the same construct must NOT fire.
    ("PDR-RNG-SRC", "src/common/rng.cc",
     "std::mt19937_64 engine_;\n"),
    ("PDR-ORD-UNORD", "src/api/demo.cc",
     "std::unordered_map<std::string, int> keys_;\n"),
    ("PDR-RNG-SRC", "tests/common/demo.cc",
     "int r = rand();\n"),
    ("PDR-PERF-DENSESCAN", "src/router/demo.cc",
     "void scan() { for (int i = 0; i < p_; i++) use(i); }\n"),
    # Observability dirs are PDR-OBS-WALLCLOCK territory ...
    ("PDR-RNG-TIME", "src/telem/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n"),
    ("PDR-RNG-TIME", "src/exec/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n"),
    ("PDR-RNG-TIME", "src/prof/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n"),
    # ... and the rest of src/ is PDR-RNG-TIME territory.
    ("PDR-OBS-WALLCLOCK", "src/router/demo.cc",
     "auto t0 = std::chrono::steady_clock::now();\n"),
]


def selftest():
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    for rid, path, bad, clean in FIXTURES:
        hits = [f for f in lint_text(path, bad) if f[1] == rid]
        expect(hits, "%s: seeded violation in %s not caught" %
               (rid, path))
        others = [f for f in lint_text(path, clean)]
        expect(not others, "%s: clean variant in %s flagged: %r" %
               (rid, path, others))

        # Suppression with justification silences exactly this rule.
        first_bad = min((f[0] for f in lint_text(path, bad)
                         if f[1] == rid), default=1)
        lines = bad.splitlines(True)
        lines.insert(first_bad - 1,
                     "// pdr-lint: allow(%s) selftest fixture, known "
                     "safe\n" % rid)
        supp = "".join(lines)
        left = [f for f in lint_text(path, supp) if f[1] == rid]
        expect(not left, "%s: justified suppression not honored" % rid)

        # ... but an unjustified one is ignored and reported.
        lines = bad.splitlines(True)
        lines.insert(first_bad - 1, "// pdr-lint: allow(%s)\n" % rid)
        nojust = "".join(lines)
        still = [f for f in lint_text(path, nojust) if f[1] == rid]
        expect(still, "%s: unjustified suppression silenced the "
                      "finding" % rid)
        reported = [f for f in lint_text(path, nojust)
                    if f[1] == "PDR-LINT-SUPPRESS"]
        expect(reported, "%s: unjustified suppression not reported" %
               rid)

    for rid, path, code in SCOPE_FIXTURES:
        hits = [f for f in lint_text(path, code) if f[1] == rid]
        expect(not hits, "%s: fired outside its scope in %s" %
               (rid, path))

    # Comment/string stripping: hazards in comments or literals are
    # not code.
    quiet = ('// rand() in a comment\n'
             'const char *kDoc = "std::unordered_map<int,int> m;";\n'
             '/* time(nullptr) in a block comment */\n')
    expect(not lint_text("src/sim/demo.cc", quiet),
           "stripping: comment/string contents were linted")

    if failures:
        for f in failures:
            print("selftest FAIL: %s" % f, file=sys.stderr)
        return 1
    print("pdr_lint selftest: %d rules, %d fixtures OK" %
          (len(RULES), len(FIXTURES) + len(SCOPE_FIXTURES)))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="determinism lint for the pdr simulator")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src/)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule ids and summaries, then exit")
    ap.add_argument("--selftest", action="store_true",
                    help="run the embedded rule fixtures, then exit")
    ap.add_argument("--root", default=None,
                    help="repo root for scope-relative paths "
                         "(default: two levels above this script)")
    args = ap.parse_args()

    if args.list_rules:
        for r in RULES:
            print("%s: %s" % (r.rid, r.summary))
        return 0
    if args.selftest:
        return selftest()

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parents[2]
    targets = args.paths or [str(root / "src")]
    return run_lint(root, targets)


if __name__ == "__main__":
    sys.exit(main())
