/**
 * @file
 * `bench_alloc` -- same-run A/B of the bitmask allocation engine
 * against the retained scalar oracle, at the allocator level.
 *
 * bench_core measures the whole per-cycle core, where allocation is one
 * term among many; this driver isolates the allocators themselves.  For
 * each allocator pair (wormhole arbiter, separable and speculative
 * switch allocators, VC allocator) it pre-generates one seeded random
 * request stream, then times the bitmask and the scalar implementation
 * over that identical stream in the same process and reports
 * rounds/sec for each plus the speedup ratio.  Grants feed a checksum
 * that is printed (and compared between the two paths), so the work
 * cannot be optimized away and a divergence shows up even here.
 *
 * Usage:
 *   bench_alloc [--out BENCH_alloc.json] [--rounds N] [--repeats R]
 *
 * The CI perf-smoke step runs this with a small --rounds and asserts
 * completion only; ratios are recorded in BENCH_alloc.json, not
 * asserted (they are machine-dependent).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "arb/scalar_oracle.hh"
#include "arb/switch_allocator.hh"
#include "arb/vc_allocator.hh"
#include "common/rng.hh"

using namespace pdr;
using namespace pdr::arb;

namespace {

/** One pre-generated allocation round. */
struct Round
{
    std::vector<SaRequest> sa;
    std::vector<VaRequest> va;
    std::vector<std::uint64_t> freeVcs;
};

std::vector<Round>
makeStream(int p, int v, int rounds, bool spec, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Round> stream(rounds);
    for (int round = 0; round < rounds; round++) {
        Round &r = stream[round];
        // Saturation-flavoured density: half the input VCs bid.
        for (int in = 0; in < p; in++) {
            for (int vc = 0; vc < v; vc++) {
                if (rng.bernoulli(0.5)) {
                    r.sa.push_back({in, vc, int(rng.range(p)),
                                    spec && rng.bernoulli(0.5)});
                }
                if (rng.bernoulli(0.5)) {
                    std::uint32_t vc_mask =
                        std::uint32_t(rng.range((1u << v) - 1) + 1);
                    r.va.push_back({in, vc, int(rng.range(p)), vc_mask});
                }
            }
        }
        r.freeVcs.resize(p);
        for (int out = 0; out < p; out++) {
            std::uint64_t w = 0;
            for (int ov = 0; ov < v; ov++) {
                if (rng.bernoulli(0.6))
                    w |= std::uint64_t(1) << ov;
            }
            r.freeVcs[out] = w;
        }
    }
    return stream;
}

std::uint64_t
fold(std::uint64_t sum, const SaGrant &g)
{
    return sum * 1099511628211ull +
           std::uint64_t(g.inPort * 4096 + g.inVc * 64 + g.outPort +
                         (g.spec ? 1 << 20 : 0));
}

std::uint64_t
fold(std::uint64_t sum, const VaGrant &g)
{
    return sum * 1099511628211ull +
           std::uint64_t(((g.inPort * 64 + g.inVc) * 64 + g.outPort) *
                             64 + g.outVc);
}

/** Best-of-`repeats` wall time for `run` over the whole stream. */
template <typename Fn>
double
timeBest(int repeats, std::uint64_t &checksum, Fn &&run)
{
    double best = -1.0;
    for (int rep = 0; rep < repeats; rep++) {
        std::uint64_t sum = 14695981039346656037ull;
        auto t0 = std::chrono::steady_clock::now();
        run(sum);
        auto t1 = std::chrono::steady_clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        if (best < 0.0 || s < best)
            best = s;
        checksum = sum;
    }
    return best;
}

struct Result
{
    std::string name;
    int p, v;
    double bitRoundsPerSec;
    double scalarRoundsPerSec;
    double ratio;
};

template <typename Bit, typename Scalar>
Result
benchSwitch(const char *name, int p, int v, bool spec, int rounds,
            int repeats)
{
    const auto stream = makeStream(p, v, rounds, spec, 0x5A + p * 64 + v);
    Bit bit = [&] {
        if constexpr (std::is_constructible_v<Bit, int>)
            return Bit(p);
        else
            return Bit(p, v);
    }();
    Scalar sca = [&] {
        if constexpr (std::is_constructible_v<Scalar, int>)
            return Scalar(p);
        else
            return Scalar(p, v);
    }();
    std::uint64_t sum_b = 0, sum_s = 0;
    // Scalar first so the bitmask path cannot benefit from cache warmth.
    double ts = timeBest(repeats, sum_s, [&](std::uint64_t &sum) {
        for (const auto &r : stream)
            for (const auto &g : sca.allocate(r.sa))
                sum = fold(sum, g);
    });
    double tb = timeBest(repeats, sum_b, [&](std::uint64_t &sum) {
        for (const auto &r : stream)
            for (const auto &g : bit.allocate(r.sa))
                sum = fold(sum, g);
    });
    if (sum_b != sum_s) {
        // Priority state diverges across repeats (state carries over),
        // but both sides ran the same repeat count over the same
        // stream, so the folded grants must agree.
        std::fprintf(stderr,
                     "bench_alloc: %s grant checksum mismatch "
                     "(bitmask %llx vs scalar %llx)\n", name,
                     static_cast<unsigned long long>(sum_b),
                     static_cast<unsigned long long>(sum_s));
        std::exit(1);
    }
    return {name, p, v, rounds / tb, rounds / ts, ts / tb};
}

Result
benchVc(const char *name, int p, int v, int rounds, int repeats)
{
    const auto stream = makeStream(p, v, rounds, false,
                                   0x7A + p * 64 + v);
    VcAllocator bit(p, v);
    ScalarVcAllocator sca(p, v);
    std::uint64_t sum_b = 0, sum_s = 0;
    double ts = timeBest(repeats, sum_s, [&](std::uint64_t &sum) {
        for (const auto &r : stream)
            for (const auto &g : sca.allocate(r.va, r.freeVcs.data()))
                sum = fold(sum, g);
    });
    double tb = timeBest(repeats, sum_b, [&](std::uint64_t &sum) {
        for (const auto &r : stream)
            for (const auto &g : bit.allocate(r.va, r.freeVcs.data()))
                sum = fold(sum, g);
    });
    if (sum_b != sum_s) {
        std::fprintf(stderr,
                     "bench_alloc: %s grant checksum mismatch\n", name);
        std::exit(1);
    }
    return {name, p, v, rounds / tb, rounds / ts, ts / tb};
}

int
usage()
{
    std::fprintf(stderr,
        "usage: bench_alloc [--out PATH] [--rounds N] [--repeats R]\n"
        "\n"
        "Same-run A/B of the bitmask allocators against the scalar\n"
        "oracle over identical request streams; writes rounds/sec and\n"
        "speedup ratios to PATH (default BENCH_alloc.json).\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_alloc.json";
    int rounds = 20000;
    int repeats = 3;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_alloc: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out = value();
        } else if (arg == "--rounds") {
            rounds = std::atoi(value());
        } else if (arg == "--repeats") {
            repeats = std::atoi(value());
        } else {
            return usage();
        }
    }
    if (rounds < 1 || repeats < 1)
        return usage();

    std::vector<Result> results;
    // Mesh-shaped (p=5, v=2: an 8-ary 2-mesh router) and stress-shaped
    // (p=8, v=8) instances of every allocator pair.
    results.push_back(
        benchSwitch<WormholeSwitchArbiter,
                    ScalarWormholeSwitchArbiter>(
            "wormhole_p5", 5, 1, false, rounds, repeats));
    results.push_back(
        benchSwitch<SeparableSwitchAllocator,
                    ScalarSeparableSwitchAllocator>(
            "separable_p5v2", 5, 2, false, rounds, repeats));
    results.push_back(
        benchSwitch<SpeculativeSwitchAllocator,
                    ScalarSpeculativeSwitchAllocator>(
            "speculative_p5v2", 5, 2, true, rounds, repeats));
    results.push_back(
        benchSwitch<SpeculativeSwitchAllocator,
                    ScalarSpeculativeSwitchAllocator>(
            "speculative_p8v8", 8, 8, true, rounds, repeats));
    results.push_back(benchVc("vc_p5v2", 5, 2, rounds, repeats));
    results.push_back(benchVc("vc_p8v8", 8, 8, rounds, repeats));

    for (const auto &r : results) {
        std::printf("%-18s bitmask %11.0f rounds/s   scalar %11.0f "
                    "rounds/s   ratio %.2fx\n",
                    r.name.c_str(), r.bitRoundsPerSec,
                    r.scalarRoundsPerSec, r.ratio);
    }

    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "bench_alloc: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    f << "{\n  \"generator\": \"bench_alloc\",\n";
    f << "  \"rounds\": " << rounds << ",\n";
    f << "  \"repeats\": " << repeats << ",\n";
    f << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"p\": %d, \"v\": %d, "
                      "\"bitmask_rounds_per_sec\": %.0f, "
                      "\"scalar_rounds_per_sec\": %.0f, "
                      "\"ratio\": %.3f}",
                      r.name.c_str(), r.p, r.v, r.bitRoundsPerSec,
                      r.scalarRoundsPerSec, r.ratio);
        f << buf << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
