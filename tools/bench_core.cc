/**
 * @file
 * `bench_core` -- hot-loop throughput of the simulation core.
 *
 * Times Network::run over fixed full-network scenarios (no measurement
 * protocol, no sweep engine: just the per-cycle core) and emits
 * BENCH_core.json with cycles/sec per scenario.  The scenarios bracket
 * the load range that dominates every latency-throughput sweep: a
 * low-load point (0.1 of capacity, where most routers idle most
 * cycles), a mid point, and a near-saturation point (0.9).
 *
 * The partitioned scenarios (workers > 1) drive the same network
 * through par::ParallelStepper on a saturated 16x16 mesh, recording
 * the intra-network scaling at 1/2/4 workers.  The speedup is
 * recorded, not asserted -- it obviously depends on the machine's core
 * count, which the JSON also records.
 *
 * Usage:
 *   bench_core [--out BENCH_core.json] [--cycles N] [--repeats R]
 *
 * Each scenario warms the network into steady state, then times
 * `--cycles` simulated cycles `--repeats` times and reports the best
 * run (wall-clock minimum, the standard noise filter).  The simulation
 * itself is deterministic; only the timing varies.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "net/network.hh"
#include "par/stepper.hh"
#include "router/config.hh"

using namespace pdr;

namespace {

struct Scenario
{
    const char *name;
    router::RouterModel model;
    int numVcs;
    int bufDepth;
    double offered;     //!< Fraction of uniform capacity.
    int k = 8;          //!< Mesh radix.
    int workers = 1;    //!< Intra-network workers (par::).
};

const Scenario kScenarios[] = {
    {"specvc_low_0.1", router::RouterModel::SpecVirtualChannel, 2, 4, 0.1},
    {"specvc_mid_0.5", router::RouterModel::SpecVirtualChannel, 2, 4, 0.5},
    {"specvc_sat_0.9", router::RouterModel::SpecVirtualChannel, 2, 4, 0.9},
    {"wormhole_low_0.1", router::RouterModel::Wormhole, 1, 8, 0.1},
    // Intra-network scaling: one saturated 16x16 mesh partitioned
    // across 1 / 2 / 4 workers (results are bit-identical; only the
    // wall clock changes).
    {"specvc_sat16_w1", router::RouterModel::SpecVirtualChannel, 2, 4,
     0.9, 16, 1},
    {"specvc_sat16_w2", router::RouterModel::SpecVirtualChannel, 2, 4,
     0.9, 16, 2},
    {"specvc_sat16_w4", router::RouterModel::SpecVirtualChannel, 2, 4,
     0.9, 16, 4},
};

struct Result
{
    const Scenario *sc;
    double bestWallS;
    double cyclesPerSec;
};

double
timeScenario(const Scenario &sc, sim::Cycle cycles, int repeats)
{
    net::NetworkConfig cfg;
    cfg.k = sc.k;
    cfg.router.model = sc.model;
    cfg.router.numVcs = sc.numVcs;
    cfg.router.bufDepth = sc.bufDepth;
    cfg.packetLength = 5;
    cfg.warmup = 0;
    cfg.samplePackets = 1u << 30;   // Never ends the sample space.
    cfg.setOfferedFraction(sc.offered);

    net::Network network(cfg);
    par::ParConfig pcfg;
    pcfg.workers = sc.workers;
    par::ParallelStepper stepper(network, pcfg);
    stepper.run(2000);              // Reach steady state untimed.

    double best = -1.0;
    for (int r = 0; r < repeats; r++) {
        auto t0 = std::chrono::steady_clock::now();
        stepper.run(cycles);
        auto t1 = std::chrono::steady_clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        if (best < 0.0 || s < best)
            best = s;
    }
    return best;
}

int
usage()
{
    std::fprintf(stderr,
        "usage: bench_core [--out PATH] [--cycles N] [--repeats R]\n"
        "\n"
        "Times the simulation core over fixed full-network scenarios\n"
        "and writes cycles/sec per scenario to PATH (default\n"
        "BENCH_core.json).\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_core.json";
    long long cycles = 30000;
    int repeats = 5;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_core: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out = value();
        } else if (arg == "--cycles") {
            cycles = std::atoll(value());
        } else if (arg == "--repeats") {
            repeats = std::atoi(value());
        } else {
            return usage();
        }
    }
    if (cycles < 1 || repeats < 1)
        return usage();

    std::vector<Result> results;
    for (const auto &sc : kScenarios) {
        double best = timeScenario(sc, sim::Cycle(cycles), repeats);
        double cps = double(cycles) / best;
        results.push_back({&sc, best, cps});
        std::printf("%-18s %12.0f cycles/sec  (best of %d x %llu "
                    "cycles: %.3f s)\n",
                    sc.name, cps, repeats,
                    static_cast<unsigned long long>(cycles), best);
    }

    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "bench_core: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    f << "{\n  \"generator\": \"bench_core\",\n";
    f << "  \"cycles\": " << cycles << ",\n";
    f << "  \"repeats\": " << repeats << ",\n";
    f << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
    f << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"offered\": %.2f, "
                      "\"k\": %d, \"workers\": %d, "
                      "\"best_wall_s\": %.6f, \"cycles_per_sec\": %.0f}",
                      r.sc->name, r.sc->offered, r.sc->k,
                      r.sc->workers, r.bestWallS, r.cyclesPerSec);
        f << buf << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
