/**
 * @file
 * `bench_core` -- hot-loop throughput of the simulation core.
 *
 * Times Network::run over fixed full-network scenarios (no measurement
 * protocol, no sweep engine: just the per-cycle core) and emits
 * BENCH_core.json with cycles/sec per scenario.  The scenarios bracket
 * the load range that dominates every latency-throughput sweep: a
 * low-load point (0.1 of capacity, where most routers idle most
 * cycles), a mid point, and a near-saturation point (0.9).
 *
 * The partitioned scenarios (workers > 1) drive the same network
 * through par::ParallelStepper on a saturated 16x16 mesh, recording
 * the intra-network scaling at 1/2/4 workers.  The speedup is
 * recorded, not asserted -- it obviously depends on the machine's core
 * count, which the JSON also records.
 *
 * Usage:
 *   bench_core [--out BENCH_core.json] [--cycles N] [--repeats R]
 *
 * Each scenario warms the network into steady state, then times
 * `--cycles` simulated cycles `--repeats` times and reports the best
 * run (wall-clock minimum, the standard noise filter).  The simulation
 * itself is deterministic; only the timing varies.
 *
 * Allocator A/B pairs (bitmask engine vs `router.scalar_alloc`) are
 * timed as interleaved segments over two live networks so both sides
 * see the same memory-system state; the ratio of a pair's rows is the
 * committed old-vs-new allocation speedup.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/network.hh"
#include "par/stepper.hh"
#include "prof/profiler.hh"
#include "router/config.hh"
#include "telem/telemetry.hh"

using namespace pdr;

namespace {

struct Scenario
{
    const char *name;
    router::RouterModel model;
    int numVcs;
    int bufDepth;
    double offered;     //!< Fraction of uniform capacity.
    int k = 8;          //!< Mesh radix.
    int workers = 1;    //!< Intra-network workers (par::).
    bool scalarAlloc = false;  //!< Retained scalar allocator path (A/B).
    /** Name of the scalar-path partner row, set on the bitmask side of
     *  an allocator A/B pair.  Paired scenarios are timed interleaved
     *  (segment A, segment B, segment A, ...) inside one process so
     *  both sides see the same heap, page and cache state -- timing
     *  them back to back instead lets whichever runs later inherit a
     *  warmed memory system and skews the ratio. */
    const char *abWith = nullptr;
    /** Stream windowed telemetry (interval 1000, records discarded
     *  into /dev/null) while timing: the telemetry-overhead A/B. */
    bool telem = false;
    /** Engine profiling on (phase marks in the stepper, per-router
     *  tick-weight counts, epochs streamed to /dev/null): the
     *  profiler-overhead A/B. */
    bool prof = false;
};

const Scenario kScenarios[] = {
    {"specvc_low_0.1", router::RouterModel::SpecVirtualChannel, 2, 4, 0.1},
    {"specvc_mid_0.5", router::RouterModel::SpecVirtualChannel, 2, 4, 0.5},
    {"specvc_sat_0.9", router::RouterModel::SpecVirtualChannel, 2, 4, 0.9,
     8, 1, false, "specvc_sat_0.9_scalar"},
    // Same saturated scenario on the retained scalar allocator path
    // (router.scalar_alloc): the committed old-vs-new allocation A/B.
    // Results are bit-identical; only the wall clock differs.
    {"specvc_sat_0.9_scalar", router::RouterModel::SpecVirtualChannel,
     2, 4, 0.9, 8, 1, true},
    {"wormhole_low_0.1", router::RouterModel::Wormhole, 1, 8, 0.1},
    // Intra-network scaling: one saturated 16x16 mesh partitioned
    // across 1 / 2 / 4 workers (results are bit-identical; only the
    // wall clock changes).
    {"specvc_sat16_w1", router::RouterModel::SpecVirtualChannel, 2, 4,
     0.9, 16, 1, false, "specvc_sat16_scalar"},
    {"specvc_sat16_w2", router::RouterModel::SpecVirtualChannel, 2, 4,
     0.9, 16, 2},
    {"specvc_sat16_w4", router::RouterModel::SpecVirtualChannel, 2, 4,
     0.9, 16, 4},
    // k=16 saturation A/B against the scalar allocator path.
    {"specvc_sat16_scalar", router::RouterModel::SpecVirtualChannel, 2,
     4, 0.9, 16, 1, true},
    // Telemetry-overhead A/B: the same saturated k=8 scenario with the
    // windowed sampler off vs on (interval 1000, stream discarded), so
    // the pair's ratio is the committed telemetry tick-path overhead.
    // Simulation results are bit-identical; only the wall clock moves.
    {"specvc_sat_telem_off", router::RouterModel::SpecVirtualChannel,
     2, 4, 0.9, 8, 1, false, "specvc_sat_telem_on"},
    {"specvc_sat_telem_on", router::RouterModel::SpecVirtualChannel,
     2, 4, 0.9, 8, 1, false, nullptr, true},
    // Profiler-overhead A/B: the same saturated k=8 scenario with the
    // engine profiler off vs on (2 workers so the phase marks hit the
    // parallel stepping path; epochs stream to /dev/null).  Results
    // are bit-identical; only the wall clock moves.
    {"specvc_sat_prof_off", router::RouterModel::SpecVirtualChannel,
     2, 4, 0.9, 8, 2, false, "specvc_sat_prof_on"},
    {"specvc_sat_prof_on", router::RouterModel::SpecVirtualChannel,
     2, 4, 0.9, 8, 2, false, nullptr, false, true},
};

struct Result
{
    const Scenario *sc;
    double bestWallS;
    double cyclesPerSec;
};

/** A warmed-up network plus its stepper, ready to time. */
struct Bench
{
    std::unique_ptr<net::Network> network;
    std::unique_ptr<par::ParallelStepper> stepper;
    /** Profiler for prof scenarios; declared after the stepper and
     *  before the facade so destruction runs tel -> prof -> stepper
     *  -> network. */
    std::unique_ptr<prof::Profiler> prof;
    /** Attached after warm-up for telemetry scenarios (destroyed
     *  first, before the stepper detaches). */
    std::unique_ptr<telem::Telemetry> tel;
};

Bench
buildBench(const Scenario &sc)
{
    net::NetworkConfig cfg;
    cfg.k = sc.k;
    cfg.router.model = sc.model;
    cfg.router.numVcs = sc.numVcs;
    cfg.router.bufDepth = sc.bufDepth;
    cfg.router.scalarAlloc = sc.scalarAlloc;
    cfg.packetLength = 5;
    cfg.warmup = 0;
    cfg.samplePackets = 1u << 30;   // Never ends the sample space.
    cfg.setOfferedFraction(sc.offered);

    Bench b;
    b.network = std::make_unique<net::Network>(cfg);
    par::ParConfig pcfg;
    pcfg.workers = sc.workers;
    b.stepper = std::make_unique<par::ParallelStepper>(*b.network, pcfg);
    b.stepper->run(2000);           // Reach steady state untimed.
    if (sc.prof) {
        b.prof = std::make_unique<prof::Profiler>(
            *b.network, b.stepper->workers());
        b.stepper->attachProfiler(b.prof.get());
    }
    if (sc.telem || sc.prof) {
        telem::Config tc;
        tc.enable = sc.telem;
        tc.interval = 1000;
        tc.out = "/dev/null";       // Full emission path, discarded.
        b.tel = std::make_unique<telem::Telemetry>(tc, *b.network,
                                                   b.prof.get());
    }
    return b;
}

double
timeSegment(Bench &b, sim::Cycle cycles)
{
    auto t0 = std::chrono::steady_clock::now();
    b.stepper->stepTo(b.network->now() + cycles, b.tel.get());
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

double
timeScenario(const Scenario &sc, sim::Cycle cycles, int repeats)
{
    Bench b = buildBench(sc);
    double best = -1.0;
    for (int r = 0; r < repeats; r++) {
        double s = timeSegment(b, cycles);
        if (best < 0.0 || s < best)
            best = s;
    }
    return best;
}

/**
 * Time an allocator A/B pair with interleaved segments: A, B, A, B...
 * over two live networks in the same process, so both sides run
 * against the same heap / page / cache state.  (Timing the pair as
 * two sequential scenarios instead hands the later one a warmed
 * memory system -- on a saturated 16x16 mesh that alone moves the
 * measured ratio by ~20%.)
 */
void
timePair(const Scenario &a, const Scenario &b, sim::Cycle cycles,
         int repeats, double &best_a, double &best_b)
{
    Bench ba = buildBench(a);
    Bench bb = buildBench(b);
    best_a = best_b = -1.0;
    for (int r = 0; r < repeats; r++) {
        double s = timeSegment(ba, cycles);
        if (best_a < 0.0 || s < best_a)
            best_a = s;
        s = timeSegment(bb, cycles);
        if (best_b < 0.0 || s < best_b)
            best_b = s;
    }
}

int
usage()
{
    std::fprintf(stderr,
        "usage: bench_core [--out PATH] [--cycles N] [--repeats R]\n"
        "\n"
        "Times the simulation core over fixed full-network scenarios\n"
        "and writes cycles/sec per scenario to PATH (default\n"
        "BENCH_core.json).\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_core.json";
    long long cycles = 30000;
    int repeats = 5;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_core: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out = value();
        } else if (arg == "--cycles") {
            cycles = std::atoll(value());
        } else if (arg == "--repeats") {
            repeats = std::atoi(value());
        } else {
            return usage();
        }
    }
    if (cycles < 1 || repeats < 1)
        return usage();

    auto report = [&](const Scenario &sc, double best) -> Result {
        double cps = double(cycles) / best;
        std::printf("%-18s %12.0f cycles/sec  (best of %d x %llu "
                    "cycles: %.3f s)\n",
                    sc.name, cps, repeats,
                    static_cast<unsigned long long>(cycles), best);
        return {&sc, best, cps};
    };
    auto findScenario = [](const char *name) -> const Scenario & {
        for (const auto &sc : kScenarios)
            if (std::strcmp(sc.name, name) == 0)
                return sc;
        std::fprintf(stderr, "bench_core: no scenario '%s'\n", name);
        std::exit(1);
    };

    // Timed in declaration order; a paired scenario also produces its
    // partner's row (interleaved segments), which is then skipped when
    // the loop reaches it.
    std::vector<Result> paired;
    std::vector<Result> results;
    auto alreadyDone = [&](const Scenario &sc) -> const Result * {
        for (const auto &r : paired)
            if (r.sc == &sc)
                return &r;
        return nullptr;
    };
    for (const auto &sc : kScenarios) {
        if (const Result *r = alreadyDone(sc)) {
            results.push_back(*r);
            continue;
        }
        if (sc.abWith) {
            const Scenario &partner = findScenario(sc.abWith);
            double best_a = 0.0, best_b = 0.0;
            timePair(sc, partner, sim::Cycle(cycles), repeats,
                     best_a, best_b);
            results.push_back(report(sc, best_a));
            paired.push_back(report(partner, best_b));
        } else {
            results.push_back(
                report(sc, timeScenario(sc, sim::Cycle(cycles),
                                        repeats)));
        }
    }

    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "bench_core: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    f << "{\n  \"generator\": \"bench_core\",\n";
    f << "  \"cycles\": " << cycles << ",\n";
    f << "  \"repeats\": " << repeats << ",\n";
    f << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
    f << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"offered\": %.2f, "
                      "\"k\": %d, \"workers\": %d, "
                      "\"scalar_alloc\": %s, \"telem\": %s, "
                      "\"prof\": %s, "
                      "\"best_wall_s\": %.6f, \"cycles_per_sec\": %.0f}",
                      r.sc->name, r.sc->offered, r.sc->k,
                      r.sc->workers,
                      r.sc->scalarAlloc ? "true" : "false",
                      r.sc->telem ? "true" : "false",
                      r.sc->prof ? "true" : "false",
                      r.bestWallS, r.cyclesPerSec);
        f << buf << (i + 1 < results.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
