#!/usr/bin/env python3
"""Validate a pdr Chrome trace-event JSON file.

The trace writer (src/telem/trace.cc) emits the Trace Event Format's
"JSON object" flavor: a top-level object with a `traceEvents` array of
metadata ("M"), complete ("X") and counter ("C") events.  This checks
-- with nothing beyond the Python standard library, so it can run as a
CI step anywhere -- that the file is something Perfetto and
chrome://tracing will actually open:

  * the file parses as one JSON object with a `traceEvents` list;
  * every event carries the required fields with sane types
    (name/ph/pid/tid, ts for X and C, dur for X, args for M and C);
  * only the documented phases appear;
  * complete events have non-negative durations;
  * the pdr processes are named via process_name metadata, and
    sim-time pids (1 = packets, 2 = routers) coexist with the
    host-clock pids (3 = host profile, 4 = engine workers) without
    mixing into each other's tids;
  * counter tracks never run backwards: C events are non-decreasing
    in ts per (pid, name);
  * on the engine-worker pid (4), each tid is one worker: its
    profiling `window` spans are monotonic and non-overlapping, every
    phase span (tick/drain/barrier) nests inside a window span on the
    same tid, and no undocumented span names appear.

Exit status: 0 = valid, 1 = findings, 2 = usage / unreadable input.
"""

import argparse
import json
import sys

SIM_PACKET_PID = 1
SIM_ROUTER_PID = 2
HOST_PID = 3
WORKER_PID = 4
KNOWN_PHASES = {"M", "X", "C"}
WORKER_SPAN_NAMES = {"window", "tick", "drain", "barrier"}


def validate(doc, errors):
    if not isinstance(doc, dict):
        errors.append("top level is not a JSON object")
        return {}
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("missing or non-array 'traceEvents'")
        return {}

    by_pid = {}
    named_pids = set()
    for i, ev in enumerate(events):
        where = "event %d" % i

        def err(msg):
            errors.append("%s: %s" % (where, msg))

        if not isinstance(ev, dict):
            err("not an object")
            continue
        name = ev.get("name")
        ph = ev.get("ph")
        if not isinstance(name, str) or not name:
            err("missing/empty 'name'")
        if not isinstance(ph, str) or ph not in KNOWN_PHASES:
            err("unknown phase %r (want one of %s)"
                % (ph, sorted(KNOWN_PHASES)))
            continue
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                err("missing/non-integer '%s'" % field)
        pid = ev.get("pid")
        if isinstance(pid, int):
            by_pid[pid] = by_pid.get(pid, 0) + 1

        if ph == "M":
            if name == "process_name":
                args = ev.get("args")
                if (not isinstance(args, dict)
                        or not isinstance(args.get("name"), str)):
                    err("process_name without args.name")
                elif isinstance(pid, int):
                    named_pids.add(pid)
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            err("missing/negative 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                err("complete event with missing/negative 'dur'")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            err("counter event without 'args'")

    for pid in sorted(by_pid):
        if pid not in named_pids:
            errors.append("pid %d has events but no process_name "
                          "metadata" % pid)
    return by_pid


def validate_counters(events, errors):
    """C events must be non-decreasing in ts per (pid, name) track."""
    last = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or ev.get("ph") != "C":
            continue
        key = (ev.get("pid"), ev.get("name"))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            continue        # Already reported by validate().
        if key in last and ts < last[key]:
            errors.append("event %d: counter %r on pid %s runs "
                          "backwards (ts %s after %s)"
                          % (i, key[1], key[0], ts, last[key]))
        last[key] = ts


def validate_worker_pid(events, errors):
    """Layout rules for the engine-worker profile pid (4).

    The profiler lays each worker's trace out deterministically: one
    `window` span per sampling epoch, phases packed inside it from its
    start.  So windows must tile the tid without overlap, and every
    phase span must be contained in a window on the same tid.
    """
    spans = {}      # tid -> [(ts, dur, name, index)]
    for i, ev in enumerate(events):
        if (not isinstance(ev, dict) or ev.get("ph") != "X"
                or ev.get("pid") != WORKER_PID):
            continue
        name = ev.get("name")
        ts = ev.get("ts")
        dur = ev.get("dur")
        if not isinstance(ts, (int, float)):
            continue        # Already reported by validate().
        if not isinstance(dur, (int, float)):
            continue
        if name not in WORKER_SPAN_NAMES:
            errors.append("event %d: unknown span %r on worker pid %d "
                          "(want one of %s)"
                          % (i, name, WORKER_PID,
                             sorted(WORKER_SPAN_NAMES)))
            continue
        spans.setdefault(ev.get("tid"), []).append((ts, dur, name, i))

    for tid, tid_spans in sorted(spans.items()):
        windows = sorted((s for s in tid_spans if s[2] == "window"))
        phases = [s for s in tid_spans if s[2] != "window"]
        if not windows and phases:
            errors.append("worker tid %s has phase spans but no "
                          "window spans" % tid)
            continue
        prev_end = None
        for ts, dur, _, i in windows:
            if prev_end is not None and ts < prev_end:
                errors.append("event %d: worker tid %s window at ts "
                              "%s overlaps the previous window "
                              "(ends %s)" % (i, tid, ts, prev_end))
            prev_end = ts + dur
        for ts, dur, name, i in phases:
            if not any(w_ts <= ts and ts + dur <= w_ts + w_dur
                       for w_ts, w_dur, _, _ in windows):
                errors.append("event %d: %r span [%s, %s) on worker "
                              "tid %s is not nested in any window "
                              "span" % (i, name, ts, ts + dur, tid))


def main():
    ap = argparse.ArgumentParser(
        description="validate a pdr Chrome trace-event JSON file")
    ap.add_argument("trace", help="trace file (pdr run --trace=...)")
    ap.add_argument("--min-events", type=int, default=0,
                    help="fail unless at least this many non-metadata "
                         "events are present")
    ap.add_argument("--require-pid", type=int, action="append",
                    default=[], metavar="PID",
                    help="fail unless this pid has at least one "
                         "non-metadata event (repeatable; e.g. 4 for "
                         "the engine-worker profile)")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print("validate_trace: cannot read %s: %s" % (args.trace, e),
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print("validate_trace: %s: not valid JSON: %s"
              % (args.trace, e), file=sys.stderr)
        return 1

    errors = []
    by_pid = validate(doc, errors)

    events = doc.get("traceEvents", [])
    validate_counters(events, errors)
    validate_worker_pid(events, errors)

    data_events = [e for e in events
                   if isinstance(e, dict) and e.get("ph") != "M"]
    if len(data_events) < args.min_events:
        errors.append("only %d non-metadata event(s), expected >= %d"
                      % (len(data_events), args.min_events))
    for pid in args.require_pid:
        if not by_pid.get(pid):
            errors.append("required pid %d has no events (run with "
                          "the matching observability switch on?)"
                          % pid)

    for e in errors[:20]:
        print("validate_trace: %s: %s" % (args.trace, e),
              file=sys.stderr)
    if len(errors) > 20:
        print("validate_trace: ... and %d more" % (len(errors) - 20),
              file=sys.stderr)
    if errors:
        return 1

    pids = ", ".join("pid %d: %d" % (p, n)
                     for p, n in sorted(by_pid.items()))
    print("validate_trace: %s: %d events OK (%s)"
          % (args.trace, len(events), pids))
    return 0


if __name__ == "__main__":
    sys.exit(main())
