/**
 * @file
 * `pdr` -- the declarative experiment driver.
 *
 *   pdr run      [--file F] [--key=value ...]          one simulation
 *   pdr sweep    [--file F] [--key=value ...] [...]    a full sweep
 *   pdr profile  [--file F] [--key=value ...]          engine profile
 *   pdr describe [--file F] [--key=value ...]          schema / files
 *
 * Experiments are data: an INI-style file (see the experiments/
 * directory) or `--key=value` overrides build an api::Experiment;
 * `pdr sweep`
 * expands it to sweep points, runs them on the parallel sweep engine
 * and emits CSV (default) or JSON via stats::Table.  Bad configs are
 * reported per point (ok/error columns), not fatally.
 *
 * The same expansion backs the ported figure benches, so
 * `pdr sweep --file experiments/fig18.exp --csv out.csv` matches
 * bench_fig18's PDR_SWEEP_CSV output row for row, for any PDR_THREADS.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/params.hh"
#include "api/simulation.hh"
#include "common/logging.hh"
#include "exec/progress.hh"
#include "exec/sweep.hh"
#include "net/registry.hh"
#include "prof/report.hh"
#include "traffic/pattern.hh"

using namespace pdr;

namespace {

int
usage(FILE *out)
{
    std::fprintf(out,
        "usage: pdr <command> [options]\n"
        "\n"
        "commands:\n"
        "  run        run the base configuration once, print results\n"
        "  sweep      expand axes x curves, run all points in "
        "parallel,\n"
        "             emit CSV (default) or JSON\n"
        "  describe   list parameter keys and registries; with "
        "--file,\n"
        "             validate and summarize an experiment\n"
        "  list       print every registered topology, routing "
        "function\n"
        "             and traffic pattern, one per line\n"
        "  profile    run the base configuration with the engine\n"
        "             profiler on (or read a stream via --from) and\n"
        "             print per-worker utilization, hottest routers\n"
        "             and a partition-quality verdict\n"
        "  diff       compare two sweep CSVs cell by cell "
        "(--tolerance\n"
        "             for numeric slack); exits 1 on any mismatch\n"
        "  merge      stitch sweep-shard CSVs (disjoint --slice runs "
        "of one\n"
        "             experiment) into the full table; errors on\n"
        "             overlapping or missing points\n"
        "\n"
        "options:\n"
        "  --file PATH        load an INI-style experiment file\n"
        "  --KEY=VALUE        override any parameter key (net.k, \n"
        "                     router.model, traffic.pattern, "
        "sweep.loads, ...)\n"
        "  --csv PATH         sweep/merge: write CSV here instead of "
        "stdout\n"
        "  --json [PATH]      sweep: emit JSON (to PATH or stdout); \n"
        "                     run: print the result row as JSON\n"
        "  --threads N        sweep worker threads (default: "
        "PDR_THREADS\n"
        "                     or hardware concurrency)\n"
        "  --seed N           base seed for derived per-point seeds\n"
        "  --slice I/N        sweep: run only the I-th of N contiguous "
        "point\n"
        "                     slices; rows keep their full-grid index "
        "and\n"
        "                     seed, so N shard CSVs merge into "
        "exactly\n"
        "                     the unsliced table\n"
        "  --tolerance X      diff: relative numeric tolerance per "
        "cell\n"
        "                     (default 0 = bit-exact text compare)\n"
        "  --telem PATH       run: stream windowed telemetry records "
        "to PATH\n"
        "                     ('-' = stdout); sweep: PATH is a prefix "
        "-- each\n"
        "                     point streams to PATH.<index>.ndjson and "
        "the\n"
        "                     per-point totals land in "
        "PATH.summary.csv\n"
        "                     (telem.* keys tune interval/format)\n"
        "  --trace PATH       run: write a Chrome trace-event JSON "
        "(opens in\n"
        "                     Perfetto / chrome://tracing) to PATH\n"
        "  --profile          run: enable the engine profiler "
        "(prof.enable)\n"
        "                     and print the profile report after the\n"
        "                     results (prof.* keys tune it)\n"
        "  --from PATH        profile: analyze an existing NDJSON "
        "stream\n"
        "                     instead of running the simulation\n"
        "\n"
        "environment: PDR_FAST=1 coarsens the load axis; PDR_PACKETS,\n"
        "PDR_WARMUP, PDR_MAX_CYCLES override the base config.\n"
        "\n"
        "example:\n"
        "  pdr sweep --net.k=4 --router.model=specVC "
        "--router.num_vcs=2 \\\n"
        "            --router.buf_depth=4 --sweep.loads=0.1,0.3,0.5\n");
    return out == stdout ? 0 : 2;
}

struct Options
{
    std::string command;
    std::string file;
    std::string csvPath;
    std::string jsonPath;
    bool json = false;
    int threads = 0;
    std::uint64_t seed = 1;
    double tolerance = 0.0;
    int sliceIndex = 0;
    int sliceCount = 0;     //!< 0 = no --slice given.
    std::string telemPath;  //!< --telem: stream path (sweep: prefix).
    std::string tracePath;  //!< --trace: Chrome trace JSON path.
    bool profile = false;   //!< --profile: engine profiler + report.
    std::string fromPath;   //!< --from: analyze an existing stream.
    /** --key=value overrides, in command-line order. */
    std::vector<std::pair<std::string, std::string>> overrides;
    /** Positional arguments (CSV paths of `pdr diff` / `pdr merge`). */
    std::vector<std::string> positional;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    opt.command = argv[1];
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        // Flags accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline = false;
        auto eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            has_inline = true;
            arg = arg.substr(0, eq);
        }
        auto want_value = [&](const char *flag) -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc) {
                throw std::invalid_argument(
                    std::string(flag) + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--file") {
            opt.file = want_value("--file");
        } else if (arg == "--csv") {
            opt.csvPath = want_value("--csv");
        } else if (arg == "--json") {
            opt.json = true;
            if (has_inline)
                opt.jsonPath = inline_value;
            else if (i + 1 < argc && argv[i + 1][0] != '-')
                opt.jsonPath = argv[++i];
        } else if (arg == "--threads") {
            opt.threads = std::atoi(want_value("--threads").c_str());
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(want_value("--seed").c_str(),
                                     nullptr, 10);
        } else if (arg == "--telem") {
            opt.telemPath = want_value("--telem");
        } else if (arg == "--trace") {
            opt.tracePath = want_value("--trace");
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg == "--from") {
            opt.fromPath = want_value("--from");
        } else if (arg == "--tolerance") {
            opt.tolerance = std::atof(want_value("--tolerance").c_str());
        } else if (arg == "--slice") {
            std::string v = want_value("--slice");
            auto slash = v.find('/');
            char *iend = nullptr, *nend = nullptr;
            long idx = std::strtol(v.c_str(), &iend, 10);
            long n = slash == std::string::npos
                         ? 0
                         : std::strtol(v.c_str() + slash + 1, &nend,
                                       10);
            if (slash == std::string::npos || iend == v.c_str() ||
                iend != v.c_str() + slash ||
                nend == v.c_str() + slash + 1 || *nend != '\0' ||
                n < 1 || idx < 0 || idx >= n) {
                throw std::invalid_argument(
                    "--slice wants I/N with 0 <= I < N, got '" + v +
                    "'");
            }
            opt.sliceIndex = int(idx);
            opt.sliceCount = int(n);
        } else if (has_inline && arg.rfind("--", 0) == 0) {
            opt.overrides.push_back({arg.substr(2), inline_value});
        } else if (arg.rfind("--", 0) != 0) {
            opt.positional.push_back(arg);
        } else {
            throw std::invalid_argument("unknown argument '" + arg +
                                        "'");
        }
    }
    return true;
}

api::Experiment
buildExperiment(const Options &opt)
{
    api::Experiment exp;
    if (!opt.file.empty())
        exp = api::Experiment::load(opt.file);
    for (const auto &[k, v] : opt.overrides)
        exp.set(k, v);
    return exp;
}

void
writeTable(const stats::Table &table, bool json,
           const std::string &path)
{
    if (path.empty() || path == "-") {
        if (json)
            table.writeJson(std::cout);
        else
            table.writeCsv(std::cout);
        return;
    }
    std::ofstream out(path);
    if (!out) {
        throw std::invalid_argument("cannot write '" + path + "'");
    }
    if (json)
        table.writeJson(out);
    else
        table.writeCsv(out);
}

int
cmdRun(const Options &opt)
{
    auto exp = buildExperiment(opt);
    exp.applyEnv();
    if (!exp.curves.empty() || !exp.axes.empty()) {
        std::fprintf(stderr,
                     "pdr: warning: 'run' uses the base config only; "
                     "this experiment declares %zu curve(s) and %zu "
                     "axis/axes -- use 'pdr sweep' to run them\n",
                     exp.curves.size(), exp.axes.size());
    }
    if (!opt.telemPath.empty()) {
        exp.base.telem.enable = true;
        exp.base.telem.out = opt.telemPath;
    }
    if (!opt.tracePath.empty())
        exp.base.telem.trace = opt.tracePath;
    if (opt.profile)
        exp.base.prof.enable = true;
    api::params::validate(exp.base);

    auto res = api::runSimulation(exp.base);
    if (opt.json || !opt.csvPath.empty()) {
        exec::SweepResults one;
        one.points.resize(1);
        one.points[0].label = exp.name.empty() ? "run" : exp.name;
        one.points[0].cfg = exp.base;
        one.points[0].res = res;
        one.points[0].ok = true;
        writeTable(one.toTable(), opt.json,
                   opt.json ? opt.jsonPath : opt.csvPath);
        return 0;
    }
    std::printf("offered_fraction   %.4f\n", res.offeredFraction);
    std::printf("accepted_fraction  %.4f\n", res.acceptedFraction);
    std::printf("avg_latency        %.2f cycles\n", res.avgLatency);
    std::printf("p99_latency        %.2f cycles\n", res.p99Latency);
    std::printf("sample             %llu / %llu received\n",
                static_cast<unsigned long long>(res.sampleReceived),
                static_cast<unsigned long long>(res.sampleSize));
    std::printf("drained            %s\n", res.drained ? "true"
                                                       : "false");
    std::printf("saturated          %s\n", res.saturated() ? "true"
                                                           : "false");
    std::printf("cycles             %llu\n",
                static_cast<unsigned long long>(res.cycles));
    if (exp.base.telem.active()) {
        std::printf("telem_windows      %llu\n",
                    static_cast<unsigned long long>(res.telem.windows));
        std::printf("trace_events       %llu\n",
                    static_cast<unsigned long long>(
                        res.telem.traceEvents));
    }
    if (res.prof) {
        std::printf("\n%s",
                    prof::buildReport(*res.prof,
                                      exp.base.net.makeLattice(),
                                      exp.base.prof).c_str());
    }
    return 0;
}

/**
 * `pdr profile`: run the base configuration with the engine profiler
 * on -- or rebuild a capture from an existing NDJSON stream (--from)
 * -- and print the offline report: per-worker utilization, per-window
 * imbalance, hottest routers with lattice coordinates, and the
 * partition-quality verdict.  Everything derived from tick weights is
 * deterministic: identical across runs and execution worker counts.
 */
int
cmdProfile(const Options &opt)
{
    auto exp = buildExperiment(opt);
    exp.applyEnv();
    exp.base.prof.enable = true;
    if (!opt.telemPath.empty()) {
        exp.base.telem.enable = true;
        exp.base.telem.out = opt.telemPath;
    }
    if (!opt.tracePath.empty())
        exp.base.telem.trace = opt.tracePath;
    api::params::validate(exp.base);

    prof::Capture cap;
    if (!opt.fromPath.empty()) {
        std::ifstream in(opt.fromPath);
        if (!in) {
            throw std::invalid_argument("cannot read '" +
                                        opt.fromPath + "'");
        }
        cap = prof::parseStream(in);
    } else {
        auto res = api::runSimulation(exp.base);
        if (!res.prof)
            throw std::runtime_error("run produced no profile");
        cap = *res.prof;
    }
    std::fputs(prof::buildReport(cap, exp.base.net.makeLattice(),
                                 exp.base.prof).c_str(),
               stdout);
    return 0;
}

int
cmdSweep(const Options &opt)
{
    auto exp = buildExperiment(opt);
    exp.applyEnv();

    if (!opt.tracePath.empty()) {
        throw std::invalid_argument(
            "--trace is per-run output; use 'pdr run' (or a "
            "--telem.trace=PATH override on a single point)");
    }

    auto points = exp.points();
    if (points.empty())
        throw std::invalid_argument("experiment expands to no points");

    exec::SweepOptions sweep_opts;
    sweep_opts.threads = opt.threads;
    sweep_opts.baseSeed = opt.seed;
    sweep_opts.onPointDone = exec::makeProgressLine();

    // --slice I/N: run one contiguous block of the expanded grid.
    // Seeds are assigned from the *global* point index before slicing,
    // so every shard row is byte-identical to the same row of an
    // unsliced run and `pdr merge` reassembles exactly the full table.
    std::size_t slice_lo = 0;
    if (opt.sliceCount > 0) {
        std::size_t total = points.size();
        for (std::size_t i = 0; i < total; i++) {
            points[i].cfg.net.seed =
                exec::SweepRunner::pointSeed(opt.seed, i);
        }
        sweep_opts.deriveSeeds = false;
        slice_lo = total * std::size_t(opt.sliceIndex) /
                   std::size_t(opt.sliceCount);
        std::size_t slice_hi = total *
                               (std::size_t(opt.sliceIndex) + 1) /
                               std::size_t(opt.sliceCount);
        points = std::vector<exec::SweepPoint>(
            points.begin() + std::ptrdiff_t(slice_lo),
            points.begin() + std::ptrdiff_t(slice_hi));
        if (points.empty()) {
            throw std::invalid_argument(csprintf(
                "slice %d/%d of this %zu-point experiment is empty",
                opt.sliceIndex, opt.sliceCount, total));
        }
    }

    // --telem PREFIX: every point streams into its own file, named by
    // the *global* grid index so sliced shards never collide and a
    // point's stream is byte-identical however the sweep was sharded.
    if (!opt.telemPath.empty()) {
        for (std::size_t i = 0; i < points.size(); i++) {
            auto &t = points[i].cfg.telem;
            t.enable = true;
            t.out = csprintf("%s.%zu.%s", opt.telemPath.c_str(),
                             slice_lo + i,
                             t.format == "csv" ? "csv" : "ndjson");
        }
    }

    auto results = api::runSweep(points, sweep_opts);
    results.indexOffset = slice_lo;

    writeTable(results.toTable(), opt.json,
               opt.json ? opt.jsonPath : opt.csvPath);

    if (!opt.telemPath.empty()) {
        std::string summary_path = opt.telemPath + ".summary.csv";
        std::ofstream f(summary_path);
        if (!f) {
            throw std::invalid_argument("cannot write '" +
                                        summary_path + "'");
        }
        results.telemTable().writeCsv(f);
        std::fprintf(stderr, "telem: %zu per-point stream(s) at "
                     "%s.<index>.*, summary at %s\n",
                     results.points.size(), opt.telemPath.c_str(),
                     summary_path.c_str());
    }

    std::fprintf(stderr, "sweep: %zu points on %d threads in %.1f s\n",
                 results.points.size(), results.threads,
                 results.wallMs / 1000.0);
    for (const auto &p : results.points) {
        if (!p.ok) {
            std::fprintf(stderr, "point '%s' failed: %s\n",
                         p.label.c_str(), p.error.c_str());
        }
    }
    return results.failures() == 0 ? 0 : 1;
}

/** One parsed CSV: header cells + row cells. */
struct CsvFile
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

CsvFile
loadCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::invalid_argument("cannot read '" + path + "'");
    CsvFile csv;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::size_t start = 0;
        while (true) {
            auto comma = line.find(',', start);
            cells.push_back(line.substr(start, comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        if (csv.header.empty())
            csv.header = std::move(cells);
        else
            csv.rows.push_back(std::move(cells));
    }
    if (csv.header.empty())
        throw std::invalid_argument("'" + path + "' is empty");
    return csv;
}

/** Parse a full-cell double; false for non-numeric cells. */
bool
parseNumber(const std::string &cell, double &out)
{
    if (cell.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(cell.c_str(), &end);
    return end == cell.c_str() + cell.size();
}

/**
 * Compare two sweep CSVs.  With zero tolerance every cell must match
 * textually (the bit-identity check CI runs against the golden CSV);
 * with a tolerance, numeric cells may differ by `tol` relative to the
 * larger magnitude (floor 1.0, so near-zero cells get an absolute
 * tolerance) and non-numeric cells must still match exactly.
 */
int
cmdDiff(const Options &opt)
{
    if (opt.positional.size() != 2) {
        throw std::invalid_argument(
            "diff needs exactly two CSV paths: pdr diff A.csv B.csv");
    }
    if (opt.tolerance < 0.0)
        throw std::invalid_argument("--tolerance must be >= 0");

    auto a = loadCsv(opt.positional[0]);
    auto b = loadCsv(opt.positional[1]);

    int mismatches = 0;
    constexpr int max_report = 20;
    auto report = [&](const std::string &what) {
        if (mismatches < max_report)
            std::fprintf(stderr, "pdr diff: %s\n", what.c_str());
        mismatches++;
    };

    if (a.header != b.header) {
        report("headers differ");
    } else if (a.rows.size() != b.rows.size()) {
        report(csprintf("row count differs: %zu vs %zu",
                        a.rows.size(), b.rows.size()));
    } else {
        for (std::size_t r = 0; r < a.rows.size(); r++) {
            const auto &ra = a.rows[r];
            const auto &rb = b.rows[r];
            if (ra.size() != rb.size()) {
                report(csprintf("row %zu: cell count differs", r));
                continue;
            }
            for (std::size_t c = 0; c < ra.size(); c++) {
                if (ra[c] == rb[c])
                    continue;
                double va, vb;
                if (opt.tolerance > 0.0 && parseNumber(ra[c], va) &&
                    parseNumber(rb[c], vb)) {
                    double scale = std::max(
                        {1.0, std::fabs(va), std::fabs(vb)});
                    if (std::fabs(va - vb) <= opt.tolerance * scale)
                        continue;
                }
                const char *col = c < a.header.size()
                                      ? a.header[c].c_str() : "?";
                report(csprintf("row %zu, %s: '%s' vs '%s'", r, col,
                                ra[c].c_str(), rb[c].c_str()));
            }
        }
    }

    if (mismatches == 0) {
        std::printf("pdr diff: %zu rows match%s\n", a.rows.size(),
                    opt.tolerance > 0.0 ? " (within tolerance)" : "");
        return 0;
    }
    if (mismatches > max_report) {
        std::fprintf(stderr, "pdr diff: ... and %d more\n",
                     mismatches - max_report);
    }
    std::fprintf(stderr, "pdr diff: %d mismatch(es) between '%s' and "
                 "'%s'\n", mismatches, opt.positional[0].c_str(),
                 opt.positional[1].c_str());
    return 1;
}

/**
 * `pdr merge`: stitch N sweep-shard CSVs -- disjoint `--slice` runs of
 * one experiment -- back into the full result table.  Rows are keyed
 * by the `index` column (the full-grid point index every slice run
 * preserves); any overlap between shards or gap in the union is an
 * error, so a botched fan-out cannot silently produce a short or
 * double-counted table.  The merged CSV is byte-identical to what one
 * unsliced `pdr sweep` of the same experiment would emit.
 */
int
cmdMerge(const Options &opt)
{
    if (opt.positional.size() < 2) {
        throw std::invalid_argument(
            "merge needs at least two shard CSVs: pdr merge A.csv "
            "B.csv ... [--csv OUT]");
    }

    std::vector<std::string> header;
    std::size_t index_col = 0;
    struct Row
    {
        std::vector<std::string> cells;
        const std::string *file;
    };
    std::map<std::uint64_t, Row> rows;

    for (const auto &path : opt.positional) {
        auto csv = loadCsv(path);
        if (header.empty()) {
            header = csv.header;
            auto it = std::find(header.begin(), header.end(), "index");
            if (it == header.end()) {
                throw std::invalid_argument(
                    "'" + path + "' has no 'index' column (not a "
                    "sweep CSV?)");
            }
            index_col = std::size_t(it - header.begin());
        } else if (csv.header != header) {
            throw std::invalid_argument(
                "headers differ between '" + opt.positional.front() +
                "' and '" + path + "'");
        }
        for (auto &cells : csv.rows) {
            if (cells.size() <= index_col) {
                throw std::invalid_argument(
                    "'" + path + "': row with no index cell");
            }
            const std::string &tok = cells[index_col];
            char *end = nullptr;
            std::uint64_t idx =
                std::strtoull(tok.c_str(), &end, 10);
            if (end == tok.c_str() || *end != '\0') {
                throw std::invalid_argument(
                    "'" + path + "': bad index '" + tok + "'");
            }
            auto [it, inserted] =
                rows.insert({idx, {std::move(cells), &path}});
            if (!inserted) {
                throw std::invalid_argument(csprintf(
                    "overlapping point index %llu (in '%s' and '%s')",
                    static_cast<unsigned long long>(idx),
                    it->second.file->c_str(), path.c_str()));
            }
        }
    }

    if (rows.empty())
        throw std::invalid_argument("no rows to merge");
    std::uint64_t expect = 0;
    for (const auto &[idx, row] : rows) {
        if (idx != expect) {
            throw std::invalid_argument(csprintf(
                "missing point index %llu (shards cover %zu of %llu "
                "points)",
                static_cast<unsigned long long>(expect), rows.size(),
                static_cast<unsigned long long>(
                    rows.rbegin()->first + 1)));
        }
        expect++;
    }

    std::ostringstream out;
    for (std::size_t c = 0; c < header.size(); c++)
        out << (c ? "," : "") << header[c];
    out << "\n";
    for (const auto &[idx, row] : rows) {
        for (std::size_t c = 0; c < row.cells.size(); c++)
            out << (c ? "," : "") << row.cells[c];
        out << "\n";
    }

    if (opt.csvPath.empty() || opt.csvPath == "-") {
        std::fputs(out.str().c_str(), stdout);
    } else {
        std::ofstream f(opt.csvPath);
        if (!f) {
            throw std::invalid_argument("cannot write '" +
                                        opt.csvPath + "'");
        }
        f << out.str();
    }
    std::fprintf(stderr, "merge: %zu rows from %zu shard(s)\n",
                 rows.size(), opt.positional.size());
    return 0;
}

/**
 * `pdr list`: the registry contents in machine-friendly form, one
 * `<kind> <name>` pair per line, so scripts (and users) can discover
 * registry growth without parsing the describe layout.
 */
int
cmdList(const Options &)
{
    for (const auto &n : net::TopologyRegistry::instance().names())
        std::printf("topology %s\n", n.c_str());
    for (const auto &n : net::RoutingRegistry::instance().names())
        std::printf("routing %s\n", n.c_str());
    for (const auto &n : traffic::PatternRegistry::instance().names())
        std::printf("pattern %s\n", n.c_str());
    return 0;
}

int
cmdDescribe(const Options &opt)
{
    if (opt.file.empty() && opt.overrides.empty()) {
        std::printf("parameter keys (defaults shown):\n");
        api::SimConfig defaults;
        for (const auto &p : api::params::schema()) {
            std::printf("  %-28s %-10s %s\n", p.key.c_str(),
                        api::params::get(defaults, p.key).c_str(),
                        p.description.c_str());
        }
        std::printf("  %-28s %-10s %s\n", "sweep.loads", "-",
                    "offered-load axis (fractions of capacity)");
        std::printf("  %-28s %-10s %s\n", "sweep.<key>", "-",
                    "sweep axis over any parameter key");

        auto show = [](const char *what, auto &reg) {
            std::printf("\n%s:\n", what);
            for (const auto &n : reg.names()) {
                std::printf("  %-12s %s\n", n.c_str(),
                            reg.description(n).c_str());
            }
        };
        show("traffic patterns", traffic::PatternRegistry::instance());
        show("topologies", net::TopologyRegistry::instance());
        show("routing functions", net::RoutingRegistry::instance());
        return 0;
    }

    auto exp = buildExperiment(opt);
    exp.validate();
    auto points = exp.points();
    std::printf("name:        %s\n",
                exp.name.empty() ? "(unnamed)" : exp.name.c_str());
    if (!exp.description.empty())
        std::printf("description: %s\n", exp.description.c_str());
    std::printf("curves:      %zu\n", exp.curves.size());
    for (const auto &c : exp.curves)
        std::printf("  [curve %s] (%zu overrides)\n", c.label.c_str(),
                    c.overrides.size());
    std::printf("axes:        %zu\n", exp.axes.size());
    for (const auto &a : exp.axes)
        std::printf("  %s (%zu values)\n", a.key.c_str(),
                    a.values.size());
    std::printf("points:      %zu\n", points.size());
    std::printf("\neffective base config:\n%s",
                api::params::dump(exp.base).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr);
    std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout);

    try {
        Options opt;
        parseArgs(argc, argv, opt);
        if (cmd != "diff" && cmd != "merge" &&
            !opt.positional.empty()) {
            throw std::invalid_argument("unknown argument '" +
                                        opt.positional.front() + "'");
        }
        if (cmd == "run")
            return cmdRun(opt);
        if (cmd == "sweep")
            return cmdSweep(opt);
        if (cmd == "profile")
            return cmdProfile(opt);
        if (cmd == "describe")
            return cmdDescribe(opt);
        if (cmd == "list")
            return cmdList(opt);
        if (cmd == "diff")
            return cmdDiff(opt);
        if (cmd == "merge")
            return cmdMerge(opt);
        std::fprintf(stderr, "pdr: unknown command '%s'\n\n",
                     cmd.c_str());
        return usage(stderr);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "pdr: error: %s\n", e.what());
        return 1;
    }
}
