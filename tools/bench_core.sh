#!/usr/bin/env bash
# Regenerate BENCH_core.json and BENCH_alloc.json: build the Release
# bench drivers, time the simulation core's fixed scenarios (see
# tools/bench_core.cc -- including the scalar-allocator A/B pairs) and
# the allocator-level bitmask-vs-scalar A/B (tools/bench_alloc.cc).
#
#   tools/bench_core.sh [--cycles N] [--repeats R]
#
# Writes both JSON files at the repository root.  Compare against the
# committed copies (or a previous run) to track the core's cycles/sec
# trajectory PR over PR:
#
#   jq -r '.scenarios[] | "\(.name) \(.cycles_per_sec)"' BENCH_core.json
#   jq -r '.scenarios[] | "\(.name) \(.ratio)"' BENCH_alloc.json
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-bench"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
      -DPDR_BUILD_TESTS=OFF -DPDR_BUILD_BENCHES=OFF \
      -DPDR_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$build" -j "$(nproc)" --target bench_core \
      --target bench_alloc > /dev/null

"$build/bench_alloc" --out "$repo/BENCH_alloc.json"
exec "$build/bench_core" --out "$repo/BENCH_core.json" "$@"
