#!/usr/bin/env bash
# Regenerate BENCH_core.json: build the Release bench_core driver and
# time the simulation core's fixed scenarios (see tools/bench_core.cc).
#
#   tools/bench_core.sh [--cycles N] [--repeats R]
#
# Writes BENCH_core.json at the repository root.  Compare against the
# committed copy (or a previous run) to track the core's cycles/sec
# trajectory PR over PR:
#
#   jq -r '.scenarios[] | "\(.name) \(.cycles_per_sec)"' BENCH_core.json
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-bench"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
      -DPDR_BUILD_TESTS=OFF -DPDR_BUILD_BENCHES=OFF \
      -DPDR_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$build" -j "$(nproc)" --target bench_core > /dev/null

exec "$build/bench_core" --out "$repo/BENCH_core.json" "$@"
