/**
 * @file
 * Deterministic multi-worker execution of one Network.
 *
 * A ParallelStepper owns a gang of worker threads (the calling thread
 * is worker 0) and advances the attached Network one cycle per step()
 * with the node set split across the gang by a par::Partitioner.  Each
 * cycle runs in two barrier-separated phases:
 *
 *   A  every worker ticks its own sources, routers and sinks (in index
 *      order within the slice) through the Network's partition-sliced
 *      entry points, using -- and updating -- only its slice of the
 *      wake table.  Channels whose producer and consumer live in
 *      different blocks are in staged mode: pushes buffer privately in
 *      the channel (single producer), so no queue is touched by two
 *      workers.
 *   B  every worker drains the staged buffers of the cross-boundary
 *      channels *it consumes*, merging items and applying the deferred
 *      wake-table updates; worker 0 also concatenates the per-worker
 *      delivery-trace shards in worker (== node) order.
 *
 * Determinism: components only communicate through >= 1-cycle
 * channels, so intra-cycle order is immaterial; the deferred wake
 * update is min(), which reproduces the serial wake table exactly; the
 * flit pool's sharded freelists only change which storage slot a flit
 * occupies (never observable); per-sink statistics shards merge in
 * index order at readout; and the one order-sensitive piece of shared
 * state -- the measurement controller's sample-space tagging -- is
 * classified per cycle by MeasureController::tagMode(): on the rare
 * boundary cycle where the quota runs out mid-cycle, the source phase
 * runs serially in node order before the gang is released.  Results
 * are therefore bit-identical to Network::step() for any worker count,
 * which tests/net/test_lockstep.cc and tests/par/ enforce.
 *
 * Worker-count policy (resolveWorkers): an explicit request wins, then
 * the PDR_PAR_WORKERS environment variable, then 1 (serial).  When the
 * caller is itself a sweep-pool worker (nested parallelism), the
 * request is clamped to hardware_concurrency / pool size so sweep- and
 * network-level workers share one machine budget; since results never
 * depend on the worker count, the clamp is pure scheduling policy.
 */

#ifndef PDR_PAR_STEPPER_HH
#define PDR_PAR_STEPPER_HH

#include <atomic>
#include <thread>
#include <vector>

#include "net/network.hh"
#include "par/partition.hh"

namespace pdr::prof {
class Profiler;
} // namespace pdr::prof

namespace pdr::telem {
class Telemetry;
} // namespace pdr::telem

namespace pdr::par {

/** Parallel-execution configuration (the par.* experiment keys). */
struct ParConfig
{
    int workers = 1;                    //!< 1 = serial stepping.
    Scheme scheme = Scheme::Planes;
};

/**
 * Worker threads for a network-level request: `requested` > 0 wins,
 * then PDR_PAR_WORKERS, then 1; always clamped to the per-sweep-worker
 * share of the hardware when called from inside a sweep pool.
 */
int resolveWorkers(int requested = 0);

/** Centralized sense-reversing spin barrier (yields when starved). */
class SpinBarrier
{
  public:
    explicit SpinBarrier(int participants) : n_(participants) {}

    void arrive();

  private:
    int n_;
    std::atomic<int> count_{0};
    std::atomic<unsigned> generation_{0};
};

/** Steps one Network across a worker gang, cycle by cycle. */
class ParallelStepper
{
  public:
    /**
     * Attach to `net`.  The effective worker count is the partition's
     * (clamped by topology); with one worker the stepper degenerates
     * to plain Network::step() and spawns nothing.  While attached,
     * the network must be advanced through this stepper only.
     */
    ParallelStepper(net::Network &net, const ParConfig &cfg);

    /** Detaches: joins the gang and restores serial stepping state
     *  (channel modes, pool freelists, delivery traces). */
    ~ParallelStepper();

    ParallelStepper(const ParallelStepper &) = delete;
    ParallelStepper &operator=(const ParallelStepper &) = delete;

    /** Advance one cycle (never jumps the clock). */
    void step();

    /** Advance n cycles, fast-forwarding through idle regions. */
    void run(sim::Cycle n);

    /** Advance to cycle `limit`, fast-forwarding through idle
     *  regions. */
    void stepTo(sim::Cycle limit);

    /**
     * stepTo() with telemetry epochs: idle jumps are capped at the
     * sampler's next boundary (tel->cap()) and tel->poll() runs
     * before each jump is sized and again after it lands, so windows
     * are emitted at exact `telem.interval` multiples -- before the
     * boundary cycle executes -- with the gang parked at the
     * cycle-start barrier (a safe, quiescent sampling point).
     * Capping a jump never changes what executes -- skipIdle() ticks
     * nothing, and a boundary cycle with no due wake is skipped over
     * without stepping -- so the schedule is bit-identical to the
     * plain overload.  `tel` may be null (plain stepTo()).
     */
    void stepTo(sim::Cycle limit, telem::Telemetry *tel);

    /**
     * Fast-forward the clock to the network's next wake (clamped to
     * `limit`) without ticking; returns the new now().  Decided on
     * worker 0 between cycle barriers: the gang is parked at the
     * cycle-start barrier, the post-drain wake table is globally
     * consistent, and the barrier's release/acquire ordering
     * publishes the new clock -- so every worker count observes the
     * same jumps a serial run would take.
     */
    sim::Cycle skipIdle(sim::Cycle limit);

    /**
     * Attach the engine profiler (null detaches).  Must be called
     * from the stepping thread between cycles, before the profiled
     * span starts: workers read the pointer only after the next
     * cycle-start barrier release, which publishes the write.  The
     * profiler must outlive all subsequent stepping (destroy it
     * before the stepper, or detach first).  When attached, every
     * worker timestamps its tick / drain / barrier-wait phase
     * transitions -- purely observational, results unchanged.
     */
    void attachProfiler(prof::Profiler *prof) { prof_ = prof; }

    int workers() const { return W_; }
    const Partitioner &partitioner() const { return part_; }
    /** Channels currently in staged (cross-boundary) mode. */
    std::size_t crossChannels() const { return crossChans_; }

  private:
    using TagMode = traffic::MeasureController::TagMode;

    void workerLoop(int w);
    void runSlice(int w);
    void drainSlice(int w);
    void syncTrace();

    net::Network &net_;
    Partitioner part_;
    int W_;
    std::size_t crossChans_ = 0;

    /** Staged channels grouped by the worker that consumes them. */
    std::vector<std::vector<net::Network::FlitChannel *>> flitDrain_;
    std::vector<std::vector<net::Network::CreditChannel *>>
        creditDrain_;

    /** Per-worker delivery buffers, merged in worker order each
     *  cycle when the user attached a trace. */
    std::vector<std::vector<traffic::Delivery>> workerTrace_;
    std::vector<traffic::Delivery> *boundTrace_ = nullptr;
    /** Network trace-registration generation last synced. */
    std::uint64_t boundTraceGen_ = 0;

    std::vector<std::thread> threads_;  //!< Workers 1..W-1.
    prof::Profiler *prof_ = nullptr;    //!< Engine profiler, optional.
    SpinBarrier barrier_;
    std::atomic<bool> stop_{false};
    TagMode mode_ = TagMode::None;      //!< Published at cycle start.
};

} // namespace pdr::par

#endif // PDR_PAR_STEPPER_HH
