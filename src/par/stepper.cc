#include "par/stepper.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "prof/profiler.hh"
#include "telem/telemetry.hh"

namespace pdr::par {

int
resolveWorkers(int requested)
{
    int w = requested;
    if (w <= 0) {
        w = 1;
        if (const char *env = std::getenv("PDR_PAR_WORKERS")) {
            long v = std::atol(env);
            if (v > 0)
                w = int(v);
        }
    }
    // Nested parallelism: a sweep already fans simulations across a
    // pool; share the machine instead of multiplying by it.  Results
    // are worker-count-independent, so clamping is pure scheduling.
    int pool = exec::ThreadPool::currentPoolSize();
    if (pool > 1) {
        unsigned hw = std::thread::hardware_concurrency();
        int budget = std::max(1, int(hw > 0 ? hw : 1) / pool);
        w = std::min(w, budget);
    }
    return std::max(1, w);
}

void
SpinBarrier::arrive()
{
    unsigned gen = generation_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) == n_ - 1) {
        count_.store(0, std::memory_order_relaxed);
        generation_.store(gen + 1, std::memory_order_release);
        return;
    }
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
        if (++spins > 4096) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

ParallelStepper::ParallelStepper(net::Network &net, const ParConfig &cfg)
    : net_(net), part_(net.lattice(), cfg.workers, cfg.scheme),
      W_(part_.workers()), barrier_(part_.workers())
{
    if (W_ == 1)
        return;     // Degenerate: plain Network::step(), no gang.

    // Classify channels: producer and consumer in different blocks ->
    // staged mode, drained by the consumer's worker after the phase
    // barrier.
    flitDrain_.resize(std::size_t(W_));
    creditDrain_.resize(std::size_t(W_));
    for (std::size_t i = 0; i < net_.numFlitChans(); i++) {
        int p = part_.ownerOfComp(net_.flitChanProducer(i));
        int c = part_.ownerOfComp(net_.flitChanConsumer(i));
        if (p != c) {
            net_.flitChan(i).setStaged(true);
            flitDrain_[std::size_t(c)].push_back(&net_.flitChan(i));
            crossChans_++;
        }
    }
    for (std::size_t i = 0; i < net_.numCreditChans(); i++) {
        int p = part_.ownerOfComp(net_.creditChanProducer(i));
        int c = part_.ownerOfComp(net_.creditChanConsumer(i));
        if (p != c) {
            net_.creditChan(i).setStaged(true);
            creditDrain_[std::size_t(c)].push_back(&net_.creditChan(i));
            crossChans_++;
        }
    }

    // Sharded flit freelists: every worker allocs (sources) from and
    // frees (sinks) into its own LIFO.  The reserve guarantees slab
    // growth never reallocates under concurrent readers.
    net_.flitPool().shardFreelists(W_, net_.maxLiveFlits());
    const auto &lat = net_.lattice();
    for (sim::NodeId n = 0; n < lat.numNodes(); n++) {
        int owner = part_.ownerOfNode(n);
        net_.sourceAt(n).setPoolShard(owner);
        net_.sinkRefAt(n).setPoolShard(owner);
    }

    workerTrace_.resize(std::size_t(W_));
    syncTrace();

    threads_.reserve(std::size_t(W_ - 1));
    for (int w = 1; w < W_; w++)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ParallelStepper::~ParallelStepper()
{
    if (W_ == 1)
        return;

    stop_.store(true, std::memory_order_release);
    barrier_.arrive();      // Release the gang into the stop check.
    for (auto &t : threads_)
        t.join();

    // Restore serial stepping state: direct channel mode (staging
    // buffers are empty between cycles), the single freelist, and the
    // user's delivery trace.
    for (auto &list : flitDrain_) {
        for (auto *c : list)
            c->setStaged(false);
    }
    for (auto &list : creditDrain_) {
        for (auto *c : list)
            c->setStaged(false);
    }
    net_.flitPool().collapseFreelists();
    const auto &lat = net_.lattice();
    for (sim::NodeId n = 0; n < lat.numNodes(); n++) {
        net_.sourceAt(n).setPoolShard(0);
        net_.sinkRefAt(n).setPoolShard(0);
    }
    net_.recordDeliveries(net_.deliveryTrace());
}

void
ParallelStepper::syncTrace()
{
    // Keyed off the registration generation, not the pointer: a
    // recordDeliveries() call re-passing the bound pointer still
    // re-points every sink at the shared vector, which must be undone
    // before the next parallel sink phase.
    if (net_.deliveryTraceGen() == boundTraceGen_)
        return;
    boundTraceGen_ = net_.deliveryTraceGen();
    auto *trace = net_.deliveryTrace();
    boundTrace_ = trace;
    const auto &lat = net_.lattice();
    for (sim::NodeId n = 0; n < lat.numNodes(); n++) {
        net_.sinkRefAt(n).recordDeliveries(
            trace ? &workerTrace_[std::size_t(part_.ownerOfNode(n))]
                  : nullptr);
    }
}

void
ParallelStepper::runSlice(int w)
{
    const Block &b = part_.blocks()[std::size_t(w)];
    if (mode_ != TagMode::Ordered)
        net_.tickSources(b.nodeLo, b.nodeHi);
    net_.tickRouters(b.routerLo, b.routerHi);
    net_.tickSinks(b.nodeLo, b.nodeHi);
}

void
ParallelStepper::drainSlice(int w)
{
    for (auto *c : flitDrain_[std::size_t(w)])
        c->drainStaged();
    for (auto *c : creditDrain_[std::size_t(w)])
        c->drainStaged();
    if (w == 0 && boundTrace_) {
        // Concatenating the shards in worker order reproduces the
        // serial ejection order: blocks are ascending node ranges and
        // every entry is from the cycle that just ran.
        for (auto &shard : workerTrace_) {
            boundTrace_->insert(boundTrace_->end(), shard.begin(),
                                shard.end());
            shard.clear();
        }
    }
}

void
ParallelStepper::workerLoop(int w)
{
    // Profiler marks: the cycle-start park (and the shutdown wait) is
    // accounted to the Barrier phase left open by the previous
    // iteration (or by Profiler construction, which opens Barrier for
    // workers 1..W-1).  Reading prof_ is race-free: it is written by
    // worker 0 before its first step() and published by that cycle's
    // start-barrier release.
    for (;;) {
        barrier_.arrive();      // Cycle start (or shutdown).
        if (stop_.load(std::memory_order_acquire))
            return;
        if (prof_)
            prof_->mark(w, prof::Profiler::Phase::Tick);
        runSlice(w);
        if (prof_)
            prof_->mark(w, prof::Profiler::Phase::Barrier);
        barrier_.arrive();      // Phase A done everywhere.
        if (prof_)
            prof_->mark(w, prof::Profiler::Phase::Drain);
        drainSlice(w);
        if (prof_)
            prof_->mark(w, prof::Profiler::Phase::Barrier);
        barrier_.arrive();      // Phase B done everywhere.
    }
}

void
ParallelStepper::step()
{
    if (W_ == 1) {
        if (prof_) {
            prof_->mark(0, prof::Profiler::Phase::Tick);
            net_.step();
            prof_->mark(0, prof::Profiler::Phase::Idle);
        } else {
            net_.step();
        }
        return;
    }
    syncTrace();
    if (prof_)
        prof_->mark(0, prof::Profiler::Phase::Tick);

    // Classify the cycle's tagging before any source runs: each
    // source creates at most one packet per cycle, so numNodes bounds
    // the tryTag() calls.  On an Ordered (quota-boundary) cycle the
    // whole source phase runs here, serially in node order, exactly
    // like Network::step() would.
    mode_ = net_.controller().tagMode(net_.now(),
                                     std::uint64_t(
                                         net_.lattice().numNodes()));
    if (mode_ == TagMode::Ordered)
        net_.tickSources(0, net_.lattice().numNodes());

    barrier_.arrive();          // Release the gang into phase A.
    runSlice(0);
    if (prof_)
        prof_->mark(0, prof::Profiler::Phase::Barrier);
    barrier_.arrive();
    if (prof_)
        prof_->mark(0, prof::Profiler::Phase::Drain);
    drainSlice(0);
    if (prof_)
        prof_->mark(0, prof::Profiler::Phase::Barrier);
    barrier_.arrive();
    net_.finishCycle();
    if (prof_)
        prof_->mark(0, prof::Profiler::Phase::Idle);
}

sim::Cycle
ParallelStepper::skipIdle(sim::Cycle limit)
{
    // Workers are parked at the cycle-start barrier whenever this
    // runs, so worker 0 reads a quiescent, post-drain wake table; the
    // next barrier arrival publishes the jumped clock to the gang.
    return net_.skipIdle(limit);
}

void
ParallelStepper::stepTo(sim::Cycle limit)
{
    while (net_.now() < limit) {
        skipIdle(limit);
        if (net_.now() >= limit)
            break;
        step();
    }
}

void
ParallelStepper::stepTo(sim::Cycle limit, telem::Telemetry *tel)
{
    if (!tel) {
        stepTo(limit);
        return;
    }
    while (net_.now() < limit) {
        // First poll: a step that just crossed onto a boundary emits
        // its epoch here, advancing the cap past `now` before the
        // next jump is sized.
        tel->poll();
        sim::Cycle before = net_.now();
        skipIdle(tel->cap(limit));
        // Second poll: a jump that landed exactly on a boundary emits
        // before the boundary cycle (if any is due) executes.
        tel->poll();
        if (net_.now() >= limit)
            break;
        // A capped jump can park exactly on a sampling boundary with
        // no component due: resume the jump instead of forcing a step
        // a serial (uncapped) run would never have taken.  No jump
        // (`before` unchanged, e.g. under forceTickAll, or a wake due
        // right now) always falls through to step(), and a jump that
        // landed on the next wake steps it exactly like the plain
        // loop.
        if (net_.now() != before
            && net_.nextWakeCycle() > net_.now()) {
            continue;
        }
        step();
    }
    tel->poll();
}

void
ParallelStepper::run(sim::Cycle n)
{
    stepTo(net_.now() + n);
}

} // namespace pdr::par
