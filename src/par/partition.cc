#include "par/partition.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace pdr::par {

Scheme
schemeFromString(const std::string &name)
{
    if (name == "planes")
        return Scheme::Planes;
    if (name == "weighted")
        return Scheme::Weighted;
    throw std::invalid_argument("unknown partition scheme '" + name +
                                "' (known: planes, weighted)");
}

const char *
toString(Scheme scheme)
{
    return scheme == Scheme::Planes ? "planes" : "weighted";
}

Partitioner::Partitioner(const topo::Lattice &lat, int workers,
                         Scheme scheme)
    : scheme_(scheme), conc_(lat.concentration()),
      numRouters_(lat.numRouters()), numNodes_(lat.numNodes())
{
    if (workers < 1) {
        throw std::invalid_argument(csprintf(
            "par.workers must be >= 1, got %d", workers));
    }

    auto add_block = [&](int router_lo, int router_hi) {
        pdr_assert(router_lo < router_hi);
        blocks_.push_back({router_lo, router_hi, router_lo * conc_,
                           router_hi * conc_});
    };

    if (scheme == Scheme::Planes) {
        // The highest dimension has the largest id stride, so plane p
        // is the contiguous router range [p, p + 1) * planeRouters.
        int planes = lat.radix(lat.dims() - 1);
        int plane_routers = numRouters_ / planes;
        int w = std::min(workers, planes);
        for (int i = 0; i < w; i++) {
            int lo = planes * i / w;
            int hi = planes * (i + 1) / w;
            add_block(lo * plane_routers, hi * plane_routers);
        }
    } else {
        // Component-weight balance at router granularity.  Every
        // router carries itself plus its hosted terminals (a source
        // and a sink each), so the weight per router is 1 + 2c today;
        // the cumulative form keeps working if weights ever become
        // heterogeneous.
        long long total = 0;
        std::vector<long long> cum(std::size_t(numRouters_) + 1, 0);
        for (int r = 0; r < numRouters_; r++) {
            total += 1 + 2 * conc_;
            cum[std::size_t(r) + 1] = total;
        }
        int w = std::min(workers, numRouters_);
        int lo = 0;
        for (int i = 0; i < w; i++) {
            // Smallest boundary whose cumulative weight reaches the
            // i+1-th share, but at least one router per block.
            long long share = total * (i + 1) / w;
            int hi = i + 1 == w ? numRouters_ : lo + 1;
            while (hi < numRouters_ && cum[std::size_t(hi)] < share)
                hi++;
            // Leave at least one router for each remaining block.
            hi = std::min(hi, numRouters_ - (w - 1 - i));
            hi = std::max(hi, lo + 1);
            add_block(lo, hi);
            lo = hi;
        }
        pdr_assert(lo == numRouters_);
    }
}

int
Partitioner::ownerOfRouter(sim::NodeId router) const
{
    pdr_assert(router >= 0 && router < numRouters_);
    // W is small; a forward scan beats binary search in practice.
    for (std::size_t i = 0; i < blocks_.size(); i++) {
        if (router < blocks_[i].routerHi)
            return int(i);
    }
    pdr_panic("router %d not covered by any block", int(router));
}

int
Partitioner::ownerOfComp(std::size_t comp) const
{
    std::size_t n = std::size_t(numNodes_);
    std::size_t r = std::size_t(numRouters_);
    if (comp < n)
        return ownerOfNode(sim::NodeId(comp));            // Source.
    if (comp < n + r)
        return ownerOfRouter(sim::NodeId(comp - n));      // Router.
    pdr_assert(comp < 2 * n + r);
    return ownerOfNode(sim::NodeId(comp - n - r));        // Sink.
}

} // namespace pdr::par
