/**
 * @file
 * Spatial domain decomposition of one Network across worker threads.
 *
 * A Partitioner slices the lattice's router set into W contiguous
 * blocks of router ids; terminal nodes follow their hosting router, so
 * every injection/ejection channel (and its credit return) stays inside
 * one block and only inter-router links can cross a boundary.  Router
 * ids are numbered with the highest dimension varying slowest, so a
 * contiguous id range is a slab of consecutive hyperplanes ("planes")
 * along that dimension -- the classic minimal-surface cut for k-ary
 * n-cubes.
 *
 * Two schemes:
 *
 *   planes   - block boundaries aligned to whole planes, plane counts
 *              as equal as possible.  Fewest boundary links; the wrap
 *              links of a torus still cross at most two boundaries.
 *   weighted - boundaries at router granularity, placed by cumulative
 *              component weight (1 router + 2c terminals per router),
 *              so concentrated meshes balance even when the worker
 *              count does not divide the plane count (at the cost of
 *              mid-plane boundary links).
 *
 * The partition only ever affects which thread executes a component;
 * simulated behavior is bit-identical for any worker count or scheme
 * (see par::ParallelStepper).
 */

#ifndef PDR_PAR_PARTITION_HH
#define PDR_PAR_PARTITION_HH

#include <string>
#include <vector>

#include "sim/types.hh"
#include "topo/lattice.hh"

namespace pdr::par {

/** Partitioning scheme (the par.scheme experiment key). */
enum class Scheme
{
    Planes,     //!< Plane-aligned blocks (fewest boundary links).
    Weighted,   //!< Component-weight-balanced blocks.
};

/** Parse "planes" / "weighted"; throws std::invalid_argument. */
Scheme schemeFromString(const std::string &name);
const char *toString(Scheme scheme);

/** One worker's slice: contiguous router and node id ranges. */
struct Block
{
    sim::NodeId routerLo = 0;
    sim::NodeId routerHi = 0;   //!< Exclusive.
    sim::NodeId nodeLo = 0;
    sim::NodeId nodeHi = 0;     //!< Exclusive.

    int numRouters() const { return routerHi - routerLo; }
    int numNodes() const { return nodeHi - nodeLo; }
};

/** Slices a lattice into per-worker blocks. */
class Partitioner
{
  public:
    /**
     * Partition for (up to) `workers` workers.  The effective worker
     * count may be lower: a block must hold at least one plane
     * (planes) or one router (weighted).  Throws std::invalid_argument
     * for workers < 1.
     */
    Partitioner(const topo::Lattice &lat, int workers,
                Scheme scheme = Scheme::Planes);

    /** Effective worker count (== blocks().size()). */
    int workers() const { return int(blocks_.size()); }
    Scheme scheme() const { return scheme_; }

    const std::vector<Block> &blocks() const { return blocks_; }

    int ownerOfRouter(sim::NodeId router) const;
    int
    ownerOfNode(sim::NodeId node) const
    {
        return ownerOfRouter(node / conc_);
    }

    /**
     * Owner of a wake-table component id (the [sources | routers |
     * sinks] index space of Network).
     */
    int ownerOfComp(std::size_t comp) const;

  private:
    std::vector<Block> blocks_;
    Scheme scheme_;
    int conc_;          //!< Nodes per router.
    int numRouters_;
    int numNodes_;
};

} // namespace pdr::par

#endif // PDR_PAR_PARTITION_HH
