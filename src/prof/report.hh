/**
 * @file
 * Offline profile analysis: turn a prof::Capture into the `pdr
 * profile` report, and parse a previously written NDJSON stream back
 * into a Capture (`pdr profile --from FILE`).
 *
 * The report mixes two kinds of data with different guarantees:
 * per-worker utilization comes from host wall clocks and varies run
 * to run, while everything derived from tick weights (hottest
 * routers, partition shares, the imbalance ratio and the weighted-cut
 * verdict) is deterministic -- identical across runs and execution
 * worker counts, because the tick schedule is a pure function of the
 * wake table and the verdict partition size is prof.report_workers,
 * not par.workers.
 */

#ifndef PDR_PROF_REPORT_HH
#define PDR_PROF_REPORT_HH

#include <iosfwd>
#include <string>

#include "prof/config.hh"
#include "topo/lattice.hh"

namespace pdr::prof {

/**
 * Tick-weight imbalance of a plane-aligned split into (up to)
 * `workers` blocks: max block weight / mean block weight.  1.0 is a
 * perfect split; W means one block carries everything.  Returns 0
 * when no router ever ticked.
 */
double weightImbalance(const std::vector<std::uint64_t> &weights,
                       const topo::Lattice &lat, int workers);

/** Render the full `pdr profile` report (see file comment). */
std::string buildReport(const Capture &cap, const topo::Lattice &lat,
                        const Config &cfg);

/**
 * Rebuild a Capture from an NDJSON stream containing worker_window /
 * weight_heatmap records (other record types are skipped).  Throws
 * std::runtime_error when no profiler records are present.
 */
Capture parseStream(std::istream &in);

} // namespace pdr::prof

#endif // PDR_PROF_REPORT_HH
