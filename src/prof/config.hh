/**
 * @file
 * Engine-profiler configuration (the `prof.*` parameter group) and
 * the capture it leaves behind.
 *
 * `src/prof/` is to the engine (`src/par/` + the stepping loops) what
 * `src/telem/` is to the Network: an observability layer under the
 * same hard contract -- strictly read-only, results and goldens
 * bit-identical with profiling on or off, at any worker count.  Two
 * signals are collected per sampling epoch:
 *
 *  - per-worker *phase wall time* (tick / drain / barrier-wait),
 *    host-clock readings that are inherently nondeterministic and
 *    therefore confined to reporting (lint rule PDR-OBS-WALLCLOCK);
 *  - per-router *tick weight* (cycles-ticked counts), which depends
 *    only on the wake-table schedule and is therefore deterministic
 *    and byte-identical across worker counts -- the online load
 *    signal an adaptive repartitioner consumes (ROADMAP item 3).
 */

#ifndef PDR_PROF_CONFIG_HH
#define PDR_PROF_CONFIG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace pdr::prof {

/** Engine-profiler switches (`prof.*` keys; docs/OBSERVABILITY.md). */
struct Config
{
    /**
     * Master switch (prof.enable).  When on, the stepper timestamps
     * worker phase transitions and the network counts router ticks;
     * epochs piggyback on the telemetry sampling cadence
     * (telem.interval), even when the telemetry sampler itself is
     * off.  Off by default: no marks, no counts, zero tick-path cost.
     */
    bool enable = false;

    /** Hottest routers listed by `pdr profile` (prof.top). */
    int top = 8;

    /**
     * Analysis partition size for the report's tick-weight imbalance
     * verdict (prof.report_workers).  Deliberately decoupled from
     * par.workers: the verdict is computed from the deterministic
     * weight signal over a fixed partition, so it is identical no
     * matter how many workers actually executed the run.
     */
    int reportWorkers = 4;

    /** Throws std::invalid_argument on a bad combination. */
    void validate() const;
};

bool operator==(const Config &a, const Config &b);
inline bool
operator!=(const Config &a, const Config &b)
{
    return !(a == b);
}

/** One profiling window (deltas since the previous epoch). */
struct Epoch
{
    sim::Cycle cycle = 0;   //!< Window end (exclusive boundary).
    sim::Cycle window = 0;  //!< Window length in cycles.

    /** Per-worker phase wall time in the window, microseconds.
     *  tick + drain + barrier + idle sums to the worker's share of
     *  the window's wall time exactly (open phases are prorated). */
    std::vector<std::uint64_t> tickUs;
    std::vector<std::uint64_t> drainUs;
    std::vector<std::uint64_t> barrierUs;
    std::vector<std::uint64_t> idleUs;

    /** Per-router cycles ticked in the window (index order).
     *  Deterministic: identical across runs and worker counts. */
    std::vector<std::uint64_t> weights;
};

/** A whole run's profile (SimResults::prof; `pdr profile` input). */
struct Capture
{
    int workers = 0;        //!< Gang size the run executed with.
    sim::Cycle cycles = 0;  //!< Final profiled cycle.
    std::vector<Epoch> epochs;
    /** End-of-run per-router tick totals (== sum of epoch weights). */
    std::vector<std::uint64_t> weights;
};

} // namespace pdr::prof

#endif // PDR_PROF_CONFIG_HH
