#include "prof/report.hh"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <stdexcept>

#include "common/logging.hh"
#include "par/partition.hh"

namespace pdr::prof {

namespace {

/** Per-block weight shares of a plane-aligned split. */
std::vector<std::uint64_t>
planeBlockWeights(const std::vector<std::uint64_t> &weights,
                  const topo::Lattice &lat, int workers,
                  std::vector<par::Block> *blocksOut = nullptr)
{
    par::Partitioner part(lat, workers, par::Scheme::Planes);
    std::vector<std::uint64_t> blockW(
        std::size_t(part.workers()), 0);
    for (int b = 0; b < part.workers(); b++) {
        const par::Block &blk = part.blocks()[std::size_t(b)];
        for (sim::NodeId r = blk.routerLo; r < blk.routerHi; r++)
            blockW[std::size_t(b)] += weights[std::size_t(r)];
    }
    if (blocksOut)
        *blocksOut = part.blocks();
    return blockW;
}

/**
 * The boundary the weighted scheme would pick: greedy cuts at the
 * cumulative-weight quantiles.  Returns the last router id of each of
 * the first W-1 blocks, plus the resulting max block share.
 */
std::vector<sim::NodeId>
weightedCuts(const std::vector<std::uint64_t> &weights, int workers,
             double *maxShare)
{
    std::uint64_t total = 0;
    for (auto w : weights)
        total += w;
    std::vector<sim::NodeId> cuts;
    *maxShare = 0.0;
    if (!total || workers < 2)
        return cuts;
    std::uint64_t cum = 0, blockStartCum = 0;
    int nextCut = 1;
    for (std::size_t r = 0;
         r < weights.size() && nextCut < workers; r++) {
        cum += weights[r];
        if (double(cum) >=
            double(total) * double(nextCut) / double(workers)) {
            cuts.push_back(sim::NodeId(r));
            *maxShare = std::max(
                *maxShare, double(cum - blockStartCum) /
                               double(total));
            blockStartCum = cum;
            nextCut++;
        }
    }
    *maxShare =
        std::max(*maxShare,
                 double(total - blockStartCum) / double(total));
    return cuts;
}

std::string
coordsOf(const topo::Lattice &lat, sim::NodeId r)
{
    std::string s = "(";
    for (int d = 0; d < lat.dims(); d++)
        s += csprintf("%s%d", d ? "," : "", lat.coordOf(r, d));
    return s + ")";
}

// ----- NDJSON parsing helpers ------------------------------------------

bool
extractU64(const std::string &line, const char *key,
           std::uint64_t &out)
{
    const std::string pat = std::string("\"") + key + "\": ";
    const auto pos = line.find(pat);
    if (pos == std::string::npos)
        return false;
    out = std::strtoull(line.c_str() + pos + pat.size(), nullptr, 10);
    return true;
}

bool
extractArray(const std::string &line, const char *key,
             std::vector<std::uint64_t> &out)
{
    const std::string pat = std::string("\"") + key + "\": [";
    const auto pos = line.find(pat);
    if (pos == std::string::npos)
        return false;
    out.clear();
    const char *p = line.c_str() + pos + pat.size();
    while (*p && *p != ']') {
        char *end = nullptr;
        out.push_back(std::strtoull(p, &end, 10));
        if (end == p)
            break;
        p = end;
        if (*p == ',')
            p++;
    }
    return true;
}

} // namespace

double
weightImbalance(const std::vector<std::uint64_t> &weights,
                const topo::Lattice &lat, int workers)
{
    const auto blockW = planeBlockWeights(weights, lat, workers);
    std::uint64_t total = 0, maxW = 0;
    for (auto w : blockW) {
        total += w;
        maxW = std::max(maxW, w);
    }
    if (!total)
        return 0.0;
    return double(maxW) * double(blockW.size()) / double(total);
}

std::string
buildReport(const Capture &cap, const topo::Lattice &lat,
            const Config &cfg)
{
    std::string out;
    out += csprintf(
        "profile: %zu window(s) over %llu cycles, %d worker(s)\n",
        cap.epochs.size(), (unsigned long long)cap.cycles,
        cap.workers);

    // ----- per-worker utilization (host wall clock) ------------------
    const auto W = std::size_t(std::max(cap.workers, 1));
    std::vector<std::uint64_t> tick(W, 0), drain(W, 0), barrier(W, 0),
        idle(W, 0);
    for (const auto &e : cap.epochs) {
        for (std::size_t w = 0; w < W && w < e.tickUs.size(); w++) {
            tick[w] += e.tickUs[w];
            drain[w] += e.drainUs[w];
            barrier[w] += e.barrierUs[w];
            idle[w] += e.idleUs[w];
        }
    }
    out += "\nper-worker phase wall time (whole run):\n";
    out += "  worker     tick_ms    drain_ms  barrier_ms   util%\n";
    std::uint64_t sumTick = 0, maxTick = 0, sumBar = 0, sumAll = 0;
    for (std::size_t w = 0; w < W; w++) {
        const std::uint64_t busy = tick[w] + drain[w] + barrier[w];
        const std::uint64_t all = busy + idle[w];
        out += csprintf(
            "  %6zu  %10.1f  %10.1f  %10.1f  %6.1f\n", w,
            double(tick[w]) / 1000.0, double(drain[w]) / 1000.0,
            double(barrier[w]) / 1000.0,
            all ? 100.0 * double(tick[w] + drain[w]) / double(all)
                : 0.0);
        sumTick += tick[w];
        maxTick = std::max(maxTick, tick[w]);
        sumBar += barrier[w];
        sumAll += all;
    }
    out += csprintf(
        "  load max/mean (tick): %.2f   barrier-wait fraction: "
        "%.1f%%\n",
        sumTick ? double(maxTick) * double(W) / double(sumTick) : 0.0,
        sumAll ? 100.0 * double(sumBar) / double(sumAll) : 0.0);

    // ----- per-window wall imbalance ---------------------------------
    out += "\nper-window wall imbalance (max/mean worker tick):\n";
    for (const auto &e : cap.epochs) {
        std::uint64_t s = 0, m = 0;
        for (std::size_t w = 0; w < e.tickUs.size(); w++) {
            s += e.tickUs[w];
            m = std::max(m, e.tickUs[w]);
        }
        out += csprintf(
            "  cycle %8llu  window %6llu  imbalance %.2f\n",
            (unsigned long long)e.cycle, (unsigned long long)e.window,
            s ? double(m) * double(e.tickUs.size()) / double(s)
              : 0.0);
    }

    // ----- hottest routers (deterministic tick weights) --------------
    std::uint64_t total = 0;
    for (auto w : cap.weights)
        total += w;
    std::vector<sim::NodeId> order(cap.weights.size());
    for (std::size_t r = 0; r < order.size(); r++)
        order[r] = sim::NodeId(r);
    std::stable_sort(order.begin(), order.end(),
                     [&](sim::NodeId a, sim::NodeId b) {
                         return cap.weights[std::size_t(a)] >
                                cap.weights[std::size_t(b)];
                     });
    const auto top =
        std::min(order.size(), std::size_t(std::max(cfg.top, 1)));
    out += csprintf(
        "\nhottest routers by cycles ticked (top %zu of %zu):\n", top,
        order.size());
    for (std::size_t i = 0; i < top; i++) {
        const sim::NodeId r = order[i];
        out += csprintf(
            "  router %4d  %-12s  %10llu ticks  %5.1f%%\n", int(r),
            coordsOf(lat, r).c_str(),
            (unsigned long long)cap.weights[std::size_t(r)],
            total ? 100.0 * double(cap.weights[std::size_t(r)]) /
                        double(total)
                  : 0.0);
    }

    // ----- partition quality (deterministic verdict) -----------------
    std::vector<par::Block> blocks;
    const auto blockW = planeBlockWeights(cap.weights, lat,
                                          cfg.reportWorkers, &blocks);
    out += csprintf(
        "\npartition quality (planes split, %zu analysis workers):\n",
        blockW.size());
    std::size_t heaviest = 0;
    for (std::size_t b = 0; b < blockW.size(); b++) {
        out += csprintf(
            "  worker %zu  routers [%4d,%4d)  weight %5.1f%%\n", b,
            int(blocks[b].routerLo), int(blocks[b].routerHi),
            total ? 100.0 * double(blockW[b]) / double(total) : 0.0);
        if (blockW[b] > blockW[heaviest])
            heaviest = b;
    }
    out += csprintf("weight_imbalance %.4f\n",
                    weightImbalance(cap.weights, lat,
                                    cfg.reportWorkers));

    double maxShare = 0.0;
    const auto cuts = weightedCuts(cap.weights,
                                   int(blockW.size()), &maxShare);
    std::string cutStr;
    for (std::size_t i = 0; i < cuts.size(); i++)
        cutStr += csprintf("%s%d", i ? ", " : "", int(cuts[i]));
    out += csprintf(
        "verdict: planes split puts %.1f%% of tick weight on worker "
        "%zu",
        total ? 100.0 * double(blockW[heaviest]) / double(total)
              : 0.0,
        heaviest);
    if (!cuts.empty()) {
        out += csprintf("; a weighted split would cut after "
                        "router%s %s (max share %.1f%%)",
                        cuts.size() > 1 ? "s" : "", cutStr.c_str(),
                        100.0 * maxShare);
    }
    out += ".\n";
    return out;
}

Capture
parseStream(std::istream &in)
{
    Capture cap;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"type\": \"worker_window\"") !=
            std::string::npos) {
            Epoch e;
            std::uint64_t v = 0;
            if (extractU64(line, "cycle", v))
                e.cycle = sim::Cycle(v);
            if (extractU64(line, "window", v))
                e.window = sim::Cycle(v);
            if (extractU64(line, "workers", v))
                cap.workers = int(v);
            extractArray(line, "tick_us", e.tickUs);
            extractArray(line, "drain_us", e.drainUs);
            extractArray(line, "barrier_us", e.barrierUs);
            extractArray(line, "idle_us", e.idleUs);
            cap.cycles = std::max(cap.cycles, e.cycle);
            cap.epochs.push_back(std::move(e));
        } else if (line.find("\"type\": \"weight_heatmap\"") !=
                   std::string::npos) {
            std::vector<std::uint64_t> weights;
            extractArray(line, "weights", weights);
            std::uint64_t cycle = 0;
            extractU64(line, "cycle", cycle);
            // Deltas attach to the worker_window of the same cycle
            // (emitted immediately before) and telescope into the
            // end-of-run totals.
            for (auto &e : cap.epochs) {
                if (e.cycle == sim::Cycle(cycle) && e.weights.empty())
                    e.weights = weights;
            }
            if (cap.weights.size() < weights.size())
                cap.weights.resize(weights.size(), 0);
            for (std::size_t r = 0; r < weights.size(); r++)
                cap.weights[r] += weights[r];
        }
    }
    if (cap.epochs.empty() && cap.weights.empty()) {
        throw std::runtime_error(
            "no worker_window / weight_heatmap records found (was "
            "the stream written with prof.enable=true?)");
    }
    if (!cap.workers && !cap.epochs.empty())
        cap.workers = int(cap.epochs.front().tickUs.size());
    return cap;
}

} // namespace pdr::prof
