/**
 * @file
 * The engine profiler: per-worker phase clocks and per-router
 * tick-weight shards.
 *
 * A Profiler attaches to one Network + ParallelStepper pair and
 * records two signals, sharded so the hot path never shares a cache
 * line or touches an atomic:
 *
 *  - mark(w, phase): worker `w` timestamps a phase transition into
 *    its own cache-line-aligned shard (two wall-clock reads per cycle
 *    on the serial path, four per worker on the parallel path -- only
 *    when a profiler is attached; bench_core records the A/B).
 *  - per-router tick counts: the Network increments a plain counter
 *    whenever a router actually ticks.  Workers own disjoint router
 *    ranges, so the increments are unshared; the tick schedule is a
 *    pure function of the wake table, so the counts are deterministic
 *    and byte-identical across worker counts.
 *
 * sampleEpoch() closes a window on worker 0 at a safe point (the gang
 * parked at the cycle-start barrier: no shard is being written, and
 * the barrier's release/acquire ordering publishes every prior mark).
 * Open phases are prorated to the sampling instant, so a window's
 * tick + drain + barrier + idle sums to its wall time exactly --
 * which is what lets the trace writer nest phase spans inside window
 * spans without overlap.
 *
 * Read-only contract: the profiler never writes simulation state.
 * Goldens are bit-identical with prof.enable on or off at any worker
 * count (tests/prof/, CI golden gates).  Wall-clock reads live only
 * in profiler.cc under justified PDR-OBS-WALLCLOCK suppressions.
 */

#ifndef PDR_PROF_PROFILER_HH
#define PDR_PROF_PROFILER_HH

#include <cstdint>
#include <vector>

#include "prof/config.hh"
#include "sim/types.hh"

namespace pdr::net {
class Network;
} // namespace pdr::net

namespace pdr::prof {

/** Collects phase wall time and tick weights for one run. */
class Profiler
{
  public:
    /** What a worker is doing right now (one open phase per shard;
     *  Idle covers the stretches outside the stepper entirely). */
    enum class Phase : int { Idle = 0, Tick = 1, Drain = 2,
                             Barrier = 3 };

    /**
     * Attach to `net` with a gang of `workers`.  Registers the
     * tick-weight hook on the network; construct after the stepper
     * and destroy before it (the stepper holds a raw pointer via
     * attachProfiler()).
     */
    Profiler(net::Network &net, int workers);

    /** Detaches the network hook. */
    ~Profiler();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /**
     * Worker `w` enters `p`: close the open phase interval into the
     * shard's accumulator and start the new one.  Called only from
     * worker `w`'s own thread; wait-free, no atomics.
     */
    void mark(int w, Phase p);

    /**
     * Close the window ending at cycle `at` and append it to the
     * capture; returns the new epoch.  Worker-0 only, at a safe
     * point: with the gang parked at the cycle-start barrier the
     * shards are quiescent and every prior mark is published.
     */
    const Epoch &sampleEpoch(sim::Cycle at);

    /**
     * Emit the final partial window ending at `end` (idempotent).
     * Returns the epoch, or nullptr if no cycles remain unprofiled.
     */
    const Epoch *finish(sim::Cycle end);

    int workers() const { return W_; }
    const Capture &capture() const { return cap_; }
    /** Move the capture out (for SimResults); leaves *this empty. */
    Capture takeCapture() { return std::move(cap_); }

  private:
    static constexpr int kPhases = 4;

    /** One worker's clock state; cache-line aligned so neighbouring
     *  workers never share a line. */
    struct alignas(64) Shard
    {
        Phase open = Phase::Idle;
        std::uint64_t openSince = 0;      //!< ns, profiler epoch.
        std::uint64_t accNs[kPhases] = {};
    };

    /** Monotonic host nanoseconds since construction (wall clock;
     *  reporting only -- see PDR-OBS-WALLCLOCK). */
    std::uint64_t nowNs() const;

    net::Network &net_;
    int W_;
    std::vector<Shard> shards_;
    /** Per-router cycles-ticked totals, incremented by the network's
     *  tick loop while the hook is attached. */
    std::vector<std::uint64_t> weights_;

    /** Snapshot state of the previous epoch (worker 0 only). */
    std::vector<std::uint64_t> lastWeights_;
    std::vector<std::uint64_t> lastEffNs_;  //!< W_ * kPhases, flat.
    sim::Cycle lastCycle_ = 0;

    Capture cap_;
    bool finished_ = false;
};

} // namespace pdr::prof

#endif // PDR_PROF_PROFILER_HH
