#include "prof/profiler.hh"

#include <cassert>
#include <chrono>
#include <stdexcept>

#include "net/network.hh"

namespace pdr::prof {

void
Config::validate() const
{
    if (top < 1)
        throw std::invalid_argument("prof.top must be >= 1");
    if (reportWorkers < 1)
        throw std::invalid_argument(
            "prof.report_workers must be >= 1");
}

bool
operator==(const Config &a, const Config &b)
{
    return a.enable == b.enable && a.top == b.top &&
           a.reportWorkers == b.reportWorkers;
}

namespace {

/** Monotonic host clock in ns.  The one wall-clock source in the
 *  profiler: values feed phase wall-time reporting only and never
 *  reach sim-facing output (docs/OBSERVABILITY.md). */
std::uint64_t
hostNs()
{
    // pdr-lint: allow(PDR-OBS-WALLCLOCK) engine-profiler phase
    // clock; wall-time values stay in worker_window records and the
    // host trace pid, never in simulation state or result CSVs.
    const auto t = std::chrono::steady_clock::now();
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t.time_since_epoch())
            .count());
}

} // namespace

Profiler::Profiler(net::Network &net, int workers)
    : net_(net), W_(workers)
{
    assert(W_ >= 1);
    shards_.resize(std::size_t(W_));
    const std::uint64_t now = hostNs();
    for (int w = 0; w < W_; w++) {
        // Workers 1..W-1 sit parked at the cycle-start barrier until
        // the first step; worker 0 is outside the stepper.
        shards_[std::size_t(w)].open =
            w == 0 ? Phase::Idle : Phase::Barrier;
        shards_[std::size_t(w)].openSince = now;
    }
    const auto routers = std::size_t(net_.lattice().numRouters());
    weights_.assign(routers, 0);
    lastWeights_.assign(routers, 0);
    lastEffNs_.assign(std::size_t(W_) * kPhases, 0);
    cap_.workers = W_;
    net_.profileTickWeights(&weights_);
}

Profiler::~Profiler()
{
    net_.profileTickWeights(nullptr);
}

std::uint64_t
Profiler::nowNs() const
{
    return hostNs();
}

void
Profiler::mark(int w, Phase p)
{
    Shard &s = shards_[std::size_t(w)];
    const std::uint64_t now = nowNs();
    s.accNs[int(s.open)] += now - s.openSince;
    s.openSince = now;
    s.open = p;
}

const Epoch &
Profiler::sampleEpoch(sim::Cycle at)
{
    const std::uint64_t now = nowNs();
    Epoch e;
    e.cycle = at;
    e.window = at - lastCycle_;
    e.tickUs.resize(std::size_t(W_));
    e.drainUs.resize(std::size_t(W_));
    e.barrierUs.resize(std::size_t(W_));
    e.idleUs.resize(std::size_t(W_));
    for (int w = 0; w < W_; w++) {
        // Prorate the open phase to the sampling instant so the four
        // deltas always sum to this worker's window wall time; safe
        // to read cross-thread because the gang is parked (no shard
        // writes) and the barrier published every prior mark.
        const Shard &s = shards_[std::size_t(w)];
        std::uint64_t us[kPhases];
        for (int p = 0; p < kPhases; p++) {
            std::uint64_t eff = s.accNs[p];
            if (p == int(s.open))
                eff += now - s.openSince;
            std::uint64_t &last =
                lastEffNs_[std::size_t(w) * kPhases + std::size_t(p)];
            us[p] = (eff - last) / 1000;
            last = eff;
        }
        e.idleUs[std::size_t(w)] = us[int(Phase::Idle)];
        e.tickUs[std::size_t(w)] = us[int(Phase::Tick)];
        e.drainUs[std::size_t(w)] = us[int(Phase::Drain)];
        e.barrierUs[std::size_t(w)] = us[int(Phase::Barrier)];
    }
    e.weights.resize(weights_.size());
    for (std::size_t r = 0; r < weights_.size(); r++) {
        e.weights[r] = weights_[r] - lastWeights_[r];
        lastWeights_[r] = weights_[r];
    }
    lastCycle_ = at;
    cap_.cycles = at;
    cap_.weights = weights_;
    cap_.epochs.push_back(std::move(e));
    return cap_.epochs.back();
}

const Epoch *
Profiler::finish(sim::Cycle end)
{
    if (finished_)
        return nullptr;
    finished_ = true;
    cap_.weights = weights_;
    cap_.cycles = end;
    if (end <= lastCycle_)
        return nullptr;
    return &sampleEpoch(end);
}

} // namespace pdr::prof
