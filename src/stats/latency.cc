#include "stats/latency.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pdr::stats {

void
LatencyStats::record(double latency, bool measured)
{
    if (!measured) {
        unmeasured_++;
        return;
    }
    if (count_ == 0) {
        min_ = max_ = latency;
    } else {
        min_ = std::min(min_, latency);
        max_ = std::max(max_, latency);
    }
    count_++;
    sum_ += latency;
    sumSq_ += latency * latency;
    int bin = int(latency);
    if (bin >= 0 && bin < binCount_)
        bins_[bin]++;
    else
        overflow_++;
}

void
LatencyStats::merge(const LatencyStats &other)
{
    if (other.count_ == 0) {
        unmeasured_ += other.unmeasured_;
        return;
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    unmeasured_ += other.unmeasured_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
    overflow_ += other.overflow_;
    for (int i = 0; i < binCount_; i++)
        bins_[i] += other.bins_[i];
}

LatencyStats
LatencyStats::merged(const std::vector<LatencyStats> &shards)
{
    LatencyStats all;
    for (const auto &s : shards)
        all.merge(s);
    return all;
}

LatencyStats
LatencyStats::deltaSince(const LatencyStats &prev) const
{
    pdr_assert(count_ >= prev.count_);
    pdr_assert(unmeasured_ >= prev.unmeasured_);
    pdr_assert(overflow_ >= prev.overflow_);
    LatencyStats d;
    d.count_ = count_ - prev.count_;
    d.unmeasured_ = unmeasured_ - prev.unmeasured_;
    d.overflow_ = overflow_ - prev.overflow_;
    d.sum_ = sum_ - prev.sum_;
    d.sumSq_ = sumSq_ - prev.sumSq_;
    int lo = -1, hi = -1;
    for (int i = 0; i < binCount_; i++) {
        pdr_assert(bins_[i] >= prev.bins_[i]);
        d.bins_[i] = bins_[i] - prev.bins_[i];
        if (d.bins_[i] != 0) {
            if (lo < 0)
                lo = i;
            hi = i;
        }
    }
    // Min/max from the histogram delta: exact to the 1-cycle bins
    // (bin floor); an overflow delta pins max at the bin limit.
    if (d.count_ > 0) {
        d.min_ = lo >= 0 ? double(lo) : double(binCount_);
        d.max_ = d.overflow_ > 0 ? double(binCount_)
                                 : (hi >= 0 ? double(hi) : 0.0);
    }
    return d;
}

double
LatencyStats::mean() const
{
    return count_ ? sum_ / double(count_) : 0.0;
}

double
LatencyStats::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = double(count_);
    double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
LatencyStats::percentile(double pct) const
{
    pdr_assert(pct >= 0.0 && pct <= 100.0);
    if (count_ == 0)
        return 0.0;
    std::uint64_t target = std::uint64_t(pct / 100.0 * double(count_));
    std::uint64_t seen = 0;
    for (int i = 0; i < binCount_; i++) {
        seen += bins_[i];
        if (seen >= target && bins_[i] > 0)
            return double(i);
    }
    return max_;
}

} // namespace pdr::stats
