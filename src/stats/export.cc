#include "stats/export.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace pdr::stats {

namespace {

/**
 * Is the cell a valid JSON number (so writeJson can emit it raw)?
 * Deliberately stricter than strtod: hex, inf/nan, "+5", ".5" and
 * "5." all parse as C doubles but are not JSON numbers.
 */
bool
looksNumeric(const std::string &s)
{
    std::size_t i = 0;
    const std::size_t n = s.size();
    if (i < n && s[i] == '-')
        i++;
    std::size_t int_start = i;
    while (i < n && s[i] >= '0' && s[i] <= '9')
        i++;
    std::size_t int_len = i - int_start;
    if (int_len == 0 || (int_len > 1 && s[int_start] == '0'))
        return false;
    if (i < n && s[i] == '.') {
        i++;
        std::size_t frac_start = i;
        while (i < n && s[i] >= '0' && s[i] <= '9')
            i++;
        if (i == frac_start)
            return false;
    }
    if (i < n && (s[i] == 'e' || s[i] == 'E')) {
        i++;
        if (i < n && (s[i] == '+' || s[i] == '-'))
            i++;
        std::size_t exp_start = i;
        while (i < n && s[i] >= '0' && s[i] <= '9')
            i++;
        if (i == exp_start)
            return false;
    }
    return i == n;
}

void
writeCsvCell(std::ostream &os, const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos) {
        os << s;
        return;
    }
    os << '"';
    for (char c : s) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default: os << c;
        }
    }
    os << '"';
}

} // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    pdr_assert(!header_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    pdr_assert(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string
Table::cell(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::cell(bool v)
{
    return v ? "true" : "false";
}

void
Table::writeCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < header_.size(); c++) {
        if (c)
            os << ',';
        writeCsvCell(os, header_[c]);
    }
    os << '\n';
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); c++) {
            if (c)
                os << ',';
            writeCsvCell(os, row[c]);
        }
        os << '\n';
    }
}

void
Table::writeJson(std::ostream &os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < rows_.size(); r++) {
        os << "  {";
        for (std::size_t c = 0; c < header_.size(); c++) {
            if (c)
                os << ", ";
            writeJsonString(os, header_[c]);
            os << ": ";
            // "true"/"false" stay quoted: cell(bool) targets CSV
            // friendliness, and a quoted literal is unambiguous.
            if (looksNumeric(rows_[r][c]))
                os << rows_[r][c];
            else
                writeJsonString(os, rows_[r][c]);
        }
        os << (r + 1 < rows_.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    writeCsv(os);
    return os.str();
}

std::string
Table::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace pdr::stats
