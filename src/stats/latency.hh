/**
 * @file
 * Latency statistics: mean / min / max plus a coarse histogram and
 * percentile queries over the measured sample space.
 */

#ifndef PDR_STATS_LATENCY_HH
#define PDR_STATS_LATENCY_HH

#include <cstdint>
#include <vector>

namespace pdr::stats {

/** Accumulates packet latencies; "measured" samples form the sample
 *  space of the paper's protocol, others are tracked separately. */
class LatencyStats
{
  public:
    LatencyStats();

    /** Record one packet latency. */
    void record(double latency, bool measured);

    /** Merge another accumulator (per-sink partials). */
    void merge(const LatencyStats &other);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Sample standard deviation. */
    double stddev() const;
    /** Approximate percentile in [0, 100] from the histogram. */
    double percentile(double pct) const;

    /** Packets seen outside the sample space. */
    std::uint64_t unmeasuredCount() const { return unmeasured_; }

  private:
    // Histogram with 1-cycle bins up to `binCount_`, overflow beyond.
    static constexpr int binCount_ = 4096;
    std::vector<std::uint32_t> bins_;
    std::uint64_t overflow_ = 0;

    std::uint64_t count_ = 0;
    std::uint64_t unmeasured_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace pdr::stats

#endif // PDR_STATS_LATENCY_HH
