/**
 * @file
 * Latency statistics: mean / min / max plus a coarse histogram and
 * percentile queries over the measured sample space.
 *
 * Merging is first-class: accumulators combine associatively with
 * merge() / operator+= / merged(), so per-sink partials (and, later,
 * per-worker shards of one simulation) record independently and
 * combine only at readout.  The histogram is a fixed-size in-object
 * array: constructing a shard allocates nothing and merging is one
 * linear pass, with no heap traffic on the readout path.
 */

#ifndef PDR_STATS_LATENCY_HH
#define PDR_STATS_LATENCY_HH

#include <array>
#include <cstdint>
#include <vector>

namespace pdr::stats {

/** Accumulates packet latencies; "measured" samples form the sample
 *  space of the paper's protocol, others are tracked separately. */
class LatencyStats
{
  public:
    LatencyStats() = default;

    /** Record one packet latency. */
    void record(double latency, bool measured);

    /** Merge another accumulator (per-sink / per-shard partials). */
    void merge(const LatencyStats &other);

    /** Merge, operator spelling: `total += shard`. */
    LatencyStats &
    operator+=(const LatencyStats &other)
    {
        merge(other);
        return *this;
    }

    /**
     * Combine shards in index order (the order fixes the
     * floating-point summation sequence, so the result is
     * deterministic for a deterministic shard list).
     */
    static LatencyStats merged(const std::vector<LatencyStats> &shards);

    /**
     * The inverse edge of the merge algebra: the samples recorded
     * after `prev`, where `prev` is an earlier snapshot (a copy) of
     * this accumulator's own history.  Count, histogram and sums
     * subtract exactly (integer fields telescope: summing window
     * deltas reproduces the end-of-run totals bit for bit); min/max
     * are recomputed from the histogram delta, so they are exact to
     * the 1-cycle bin floor, with any overflow-bin delta reported as
     * the bin limit.  Telemetry's windowed latency records are
     * deltaSince(previous window boundary).
     */
    LatencyStats deltaSince(const LatencyStats &prev) const;

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Sample standard deviation. */
    double stddev() const;
    /** Approximate percentile in [0, 100] from the histogram. */
    double percentile(double pct) const;

    /** Packets seen outside the sample space. */
    std::uint64_t unmeasuredCount() const { return unmeasured_; }

  private:
    // Histogram with 1-cycle bins up to `binCount_`, overflow beyond.
    static constexpr int binCount_ = 4096;
    std::array<std::uint32_t, binCount_> bins_{};
    std::uint64_t overflow_ = 0;

    std::uint64_t count_ = 0;
    std::uint64_t unmeasured_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace pdr::stats

#endif // PDR_STATS_LATENCY_HH
