/**
 * @file
 * Tabular result export: a simple header + rows table with CSV and JSON
 * writers.  The sweep engine (src/exec/) renders SweepResults through
 * this so every bench/example can dump machine-readable curves next to
 * its human-readable output (see PDR_SWEEP_CSV in bench/bench_util.cc).
 *
 * Cells are stored as strings; the JSON writer emits cells that parse
 * as finite numbers without quotes so downstream tooling gets real
 * numeric fields.
 */

#ifndef PDR_STATS_EXPORT_HH
#define PDR_STATS_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pdr::stats {

/** A rectangular table of result cells. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }
    std::size_t numRows() const { return rows_.size(); }

    /** Append a row; must have exactly one cell per header column. */
    void addRow(std::vector<std::string> cells);

    /** Format helpers for building cells. */
    static std::string cell(double v);
    static std::string cell(std::uint64_t v);
    static std::string cell(bool v);

    /** RFC-4180-style CSV (cells quoted only when needed). */
    void writeCsv(std::ostream &os) const;

    /** JSON array of one object per row, keyed by header. */
    void writeJson(std::ostream &os) const;

    std::string toCsv() const;
    std::string toJson() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pdr::stats

#endif // PDR_STATS_EXPORT_HH
