/**
 * @file
 * High-level simulation facade: configure a network + workload, run the
 * paper's measurement protocol, get a result row.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   pdr::api::SimConfig cfg;
 *   cfg.net.router.model = pdr::router::RouterModel::SpecVirtualChannel;
 *   cfg.net.router.numVcs = 2;
 *   cfg.net.router.bufDepth = 4;
 *   cfg.net.setOfferedFraction(0.4);
 *   auto res = pdr::api::runSimulation(cfg);
 *   // res.avgLatency, res.acceptedFraction, ...
 */

#ifndef PDR_API_SIMULATION_HH
#define PDR_API_SIMULATION_HH

#include <memory>
#include <string>
#include <vector>

#include "net/network.hh"
#include "prof/config.hh"
#include "telem/config.hh"

namespace pdr::exec {
struct SweepPoint;
struct SweepOptions;
struct SweepResults;
} // namespace pdr::exec

namespace pdr::api {

/** Simulation configuration: the network plus protocol limits. */
struct SimConfig
{
    net::NetworkConfig net;
    /** Hard cap on simulated cycles (saturated runs never drain). */
    sim::Cycle maxCycles = 300000;
    /**
     * Measurement mode: "sample" runs the paper's warm-up + sample +
     * drain protocol; "fixed" runs exactly `horizon` cycles and
     * reports steady-state rates (e.g. the Figure-16 saturated-stream
     * measurement).
     */
    std::string mode = "sample";
    sim::Cycle horizon = 20000;     //!< Cycles run in "fixed" mode.

    /**
     * Intra-network worker threads (par.workers): the simulation's
     * node set is partitioned across this many workers with a
     * per-cycle barrier (src/par/).  Results are bit-identical for
     * any value.  1 = classic serial stepping; 0 = PDR_PAR_WORKERS or
     * 1.  Requests are clamped to the topology's plane count and, when
     * running inside a sweep pool, to the per-worker hardware share.
     */
    int parWorkers = 1;
    /** Partitioning scheme (par.scheme): "planes" or "weighted". */
    std::string parScheme = "planes";

    /**
     * Observability (telem.* keys): windowed counter streaming and
     * trace emission.  Strictly read-only with respect to the
     * simulation -- results and goldens are bit-identical whether
     * telemetry is on or off, for any worker count.
     */
    telem::Config telem;

    /**
     * Engine profiling (prof.* keys): per-worker phase wall time and
     * per-router tick weights, exported through the telemetry streams
     * and summarized by `pdr profile`.  Same read-only contract as
     * telem: results are bit-identical on or off, at any worker
     * count (docs/OBSERVABILITY.md).
     */
    prof::Config prof;

    /**
     * Scale the sample-space size (and warm-up) from the environment:
     * PDR_PACKETS overrides samplePackets (paper value 100000; default
     * here 30000 to keep the full bench suite minutes-scale).
     */
    void applyEnvDefaults();
};

inline bool
operator==(const SimConfig &a, const SimConfig &b)
{
    return a.net == b.net && a.maxCycles == b.maxCycles &&
           a.mode == b.mode && a.horizon == b.horizon &&
           a.parWorkers == b.parWorkers && a.parScheme == b.parScheme &&
           a.telem == b.telem && a.prof == b.prof;
}

inline bool
operator!=(const SimConfig &a, const SimConfig &b)
{
    return !(a == b);
}

/** One simulation outcome. */
struct SimResults
{
    double offeredFraction = 0.0;   //!< Offered load / capacity.
    double acceptedFraction = 0.0;  //!< Delivered load / capacity.
    double avgLatency = 0.0;        //!< Mean packet latency (cycles).
    double p99Latency = 0.0;        //!< 99th percentile (cycles).
    std::uint64_t sampleReceived = 0;
    std::uint64_t sampleSize = 0;
    bool drained = false;           //!< Sample fully received in time.
    sim::Cycle cycles = 0;          //!< Total simulated cycles.
    router::RouterStats routers;    //!< Aggregated router counters.
    telem::Summary telem;           //!< Emission totals (zero if off).
    /** Engine profile (null unless prof.enable); shared so result
     *  rows stay cheap to copy through the sweep machinery. */
    std::shared_ptr<const prof::Capture> prof;

    /**
     * Saturation heuristic: the run is considered saturated when the
     * sample could not drain or accepted lags offered by > 10 %.
     */
    bool saturated() const;
};

/** Run warm-up + sample + drain; aggregate results. */
SimResults runSimulation(const SimConfig &cfg);

/**
 * A latency-throughput curve: one run per offered load point, executed
 * in parallel on the sweep engine (PDR_THREADS controls the pool; the
 * per-point results are independent of the thread count).  Every point
 * keeps cfg's seed, matching the historical serial behavior.
 */
std::vector<SimResults>
sweepLoad(SimConfig cfg, const std::vector<double> &offered_fractions);

/**
 * Run a batch of sweep points across the fixed thread pool of
 * exec::SweepRunner and return ordered, per-point results.  Include
 * exec/sweep.hh for the point/option/result types; see that header for
 * the determinism contract (seeds derive from (base seed, index)).
 */
exec::SweepResults runSweep(const std::vector<exec::SweepPoint> &points);
exec::SweepResults runSweep(const std::vector<exec::SweepPoint> &points,
                            const exec::SweepOptions &opts);

/**
 * Estimate saturation throughput (fraction of capacity): the largest
 * load that still drains with average latency below `latency_limit`
 * times the zero-load latency.
 *
 * The bracket is narrowed by evaluating a whole candidate grid per
 * round through the sweep engine (parallel across PDR_THREADS), rather
 * than one serial bisection probe at a time.  The candidate grid is
 * fixed, so the estimate is independent of the thread count and stays
 * within `tolerance` of what serial bisection returns.
 */
double findSaturation(SimConfig cfg, double latency_limit = 4.0,
                      double tolerance = 0.01);

} // namespace pdr::api

#endif // PDR_API_SIMULATION_HH
