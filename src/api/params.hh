/**
 * @file
 * Declarative experiment API: a string-keyed parameter schema over
 * SimConfig, plus INI-style experiment descriptions.
 *
 * Every simulation parameter binds to a dotted key (`net.k`,
 * `router.model`, `traffic.pattern`, `sim.mode`, ...).  params::set /
 * params::get convert between the typed SimConfig fields and strings
 * with full validation -- errors throw std::invalid_argument naming the
 * key, so the CLI and sweep engine report them per point instead of
 * dying.  params::dump emits the whole effective config as `key=value`
 * lines and params::parse reads them back losslessly:
 * parse(dump(cfg)) == cfg.
 *
 * An Experiment adds sweep structure on top of one base config:
 *
 *   name = fig18
 *   net.k = 8
 *   router.model = specVC
 *   router.num_vcs = 2
 *   router.buf_depth = 4
 *   sweep.loads = 0.05 0.1 0.15 0.2
 *   [curve specVC cp=1]
 *   net.credit_latency = 1
 *   [curve specVC cp=4]
 *   net.credit_latency = 4
 *
 * `sweep.loads` is the offered-load axis; `sweep.<param.key> = v1 v2`
 * adds an axis over any other parameter.  Each `[curve LABEL]` section
 * overrides base keys for one labelled series.  Experiment::points()
 * expands axes (outermost first) x curves (innermost) into the sweep
 * engine's point list; `pdr sweep --file <experiment>` and the ported
 * figure benches consume the same expansion, so their CSV outputs
 * match row for row.
 */

#ifndef PDR_API_PARAMS_HH
#define PDR_API_PARAMS_HH

#include <string>
#include <utility>
#include <vector>

#include "api/simulation.hh"
#include "exec/sweep.hh"

namespace pdr::api {

namespace params {

/** One schema entry: key plus human-readable description. */
struct ParamInfo
{
    std::string key;
    std::string description;
};

/** The schema, in canonical (dump) order. */
const std::vector<ParamInfo> &schema();

bool knownKey(const std::string &key);

/** Set `key` from a string; throws std::invalid_argument naming the
 *  key on unknown keys or invalid values. */
void set(SimConfig &cfg, const std::string &key,
         const std::string &value);

/** Current value of `key` as a string; throws on unknown keys. */
std::string get(const SimConfig &cfg, const std::string &key);

/** Cross-field validation (registry names, model constraints, ...);
 *  throws std::invalid_argument with a precise message. */
void validate(const SimConfig &cfg);

/** All stored keys as `key = value` lines, canonical order. */
std::string dump(const SimConfig &cfg);

/** Apply `key = value` lines (blank lines / #-comments skipped) on
 *  top of `cfg`. */
void apply(SimConfig &cfg, const std::string &text);

/** Parse lines onto a default-constructed SimConfig. */
SimConfig parse(const std::string &text);

} // namespace params

/** A declarative sweep: base config, parameter axes, labelled curves. */
struct Experiment
{
    /** The axis key `sweep.loads` is sugar for. */
    static constexpr const char *kLoadsKey = "traffic.offered_fraction";

    struct Axis
    {
        std::string key;                 //!< A params schema key.
        std::vector<std::string> values;

        bool
        operator==(const Axis &o) const
        {
            return key == o.key && values == o.values;
        }
    };

    struct Curve
    {
        std::string label;
        /** Overrides applied over the base, in order. */
        std::vector<std::pair<std::string, std::string>> overrides;

        bool
        operator==(const Curve &o) const
        {
            return label == o.label && overrides == o.overrides;
        }
    };

    std::string name;
    std::string description;
    SimConfig base;
    std::vector<Axis> axes;              //!< Outermost first.
    std::vector<Curve> curves;

    /** Parse an experiment file; throws with the line number. */
    static Experiment parse(const std::string &text);
    static Experiment load(const std::string &path);

    /** Lossless text form: parse(dump()) == *this. */
    std::string dump() const;

    /**
     * Apply one `key=value`: "name"/"description", a `sweep.` axis
     * (replacing an existing axis of the same key), or a base
     * parameter.  Used for `--key=value` CLI overrides.
     */
    void set(const std::string &key, const std::string &value);

    /**
     * Expand axes x curves into sweep points: axes vary outermost
     * first, curves innermost (point index = combination * #curves +
     * curve).  Labels are `<curve>@<load>` for the offered-load axis
     * and `<curve>/key=value` for other axes.
     */
    std::vector<exec::SweepPoint> points() const;

    /** Validate the base and every expanded point config. */
    void validate() const;

    /**
     * Fold in the environment: PDR_FAST=1 coarsens the offered-load
     * axis and caps the sample size (smoke runs), then the PDR_PACKETS
     * / PDR_WARMUP / PDR_MAX_CYCLES overrides apply to the base.  The
     * benches and the pdr CLI both call this, so their expansions stay
     * identical under any environment.
     */
    void applyEnv();

    bool
    operator==(const Experiment &o) const
    {
        return name == o.name && description == o.description &&
               base == o.base && axes == o.axes && curves == o.curves;
    }
};

} // namespace pdr::api

#endif // PDR_API_PARAMS_HH
