#include "api/params.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "net/registry.hh"
#include "par/partition.hh"
#include "traffic/pattern.hh"

namespace pdr::api {

namespace {

std::string
trim(const std::string &s)
{
    auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

namespace params {

namespace {

// ---------------------------------------------------------------------
// Value formatting / parsing.  Doubles use shortest-round-trip
// formatting where the library provides it, so dump -> parse is
// bit-exact.
// ---------------------------------------------------------------------

std::string
formatDouble(double v)
{
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
#else
    return csprintf("%.17g", v);
#endif
}

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const std::string &want)
{
    throw std::invalid_argument("invalid value '" + value + "' for " +
                                key + ": expected " + want);
}

long long
parseInt(const std::string &key, const std::string &value,
         long long min, long long max)
{
    const char *s = value.c_str();
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE)
        badValue(key, value, "an integer");
    if (v < min || v > max) {
        badValue(key, value,
                 csprintf("an integer in [%lld, %lld]", min, max));
    }
    return v;
}

std::uint64_t
parseU64(const std::string &key, const std::string &value,
         std::uint64_t min = 0)
{
    const char *s = value.c_str();
    char *end = nullptr;
    errno = 0;
    if (!value.empty() && value[0] == '-')
        badValue(key, value, "a non-negative integer");
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE)
        badValue(key, value, "a non-negative integer");
    if (v < min)
        badValue(key, value, csprintf("an integer >= %llu", min));
    return v;
}

double
parseDouble(const std::string &key, const std::string &value)
{
    const char *s = value.c_str();
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v))
        badValue(key, value, "a finite number");
    return v;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    badValue(key, value, "true/false");
}

// ---------------------------------------------------------------------
// Schema: one entry per key binding a getter and a setter.
// ---------------------------------------------------------------------

struct ParamDef
{
    const char *key;
    const char *desc;
    std::function<std::string(const SimConfig &)> get;
    std::function<void(SimConfig &, const std::string &)> set;
    /** Derived keys (aliases) are settable but excluded from dump. */
    bool derived = false;
};

const std::vector<ParamDef> &
defs()
{
    static const std::vector<ParamDef> table = {
        {"net.k", "network radix: k x k nodes (>= 2)",
         [](const SimConfig &c) { return std::to_string(c.net.k); },
         [](SimConfig &c, const std::string &v) {
             c.net.k = int(parseInt("net.k", v, 2, 4096));
         }},
        {"net.topology",
         "topology registry name (pdr describe lists them)",
         [](const SimConfig &c) { return c.net.topology; },
         [](SimConfig &c, const std::string &v) {
             if (!net::TopologyRegistry::instance().contains(v))
                 net::TopologyRegistry::instance().at(v);  // Throws.
             c.net.topology = v;
         }},
        {"net.routing",
         "routing registry name, or 'auto' for the topology default",
         [](const SimConfig &c) { return c.net.routing; },
         [](SimConfig &c, const std::string &v) {
             if (v != "auto" &&
                 !net::RoutingRegistry::instance().contains(v))
                 net::RoutingRegistry::instance().at(v);  // Throws.
             c.net.routing = v;
         }},
        {"net.link_latency", "flit propagation latency in cycles (>= 1)",
         [](const SimConfig &c) {
             return std::to_string(c.net.linkLatency);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.linkLatency =
                 sim::Cycle(parseU64("net.link_latency", v, 1));
         }},
        {"net.credit_latency",
         "credit propagation latency in cycles (>= 1)",
         [](const SimConfig &c) {
             return std::to_string(c.net.creditLatency);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.creditLatency =
                 sim::Cycle(parseU64("net.credit_latency", v, 1));
         }},
        {"traffic.pattern",
         "traffic pattern registry name (pdr describe lists them)",
         [](const SimConfig &c) { return c.net.pattern; },
         [](SimConfig &c, const std::string &v) {
             if (!traffic::PatternRegistry::instance().contains(v))
                 traffic::PatternRegistry::instance().at(v);  // Throws.
             c.net.pattern = v;
         }},
        {"traffic.permfile",
         "permutation file for traffic.pattern=permfile (one "
         "destination node index per line)",
         [](const SimConfig &c) { return c.net.permfile; },
         [](SimConfig &c, const std::string &v) {
             c.net.permfile = v;
         }},
        {"traffic.injection_rate",
         "offered load in flits/node/cycle, in [0, 1]",
         [](const SimConfig &c) {
             return formatDouble(c.net.injectionRate);
         },
         [](SimConfig &c, const std::string &v) {
             double r = parseDouble("traffic.injection_rate", v);
             if (r < 0.0 || r > 1.0)
                 badValue("traffic.injection_rate", v,
                          "a rate in [0, 1]");
             c.net.injectionRate = r;
         }},
        {"traffic.offered_fraction",
         "offered load as a fraction of uniform capacity (alias: "
         "sets traffic.injection_rate via the topology's capacity)",
         [](const SimConfig &c) {
             return formatDouble(c.net.offeredFraction());
         },
         [](SimConfig &c, const std::string &v) {
             double f = parseDouble("traffic.offered_fraction", v);
             if (f < 0.0)
                 badValue("traffic.offered_fraction", v,
                          "a non-negative fraction");
             c.net.setOfferedFraction(f);
         },
         /*derived=*/true},
        {"traffic.burst_on",
         "MMPP bursty arrivals: mean burst (ON-state) length in "
         "cycles, >= 1; 0 = steady Bernoulli arrivals",
         [](const SimConfig &c) {
             return formatDouble(c.net.burstOn);
         },
         [](SimConfig &c, const std::string &v) {
             double b = parseDouble("traffic.burst_on", v);
             if (b < 0.0)
                 badValue("traffic.burst_on", v,
                          "a non-negative cycle count");
             c.net.burstOn = b;
         }},
        {"traffic.burst_off",
         "MMPP bursty arrivals: mean gap (OFF-state) length in "
         "cycles, >= 1; 0 = steady Bernoulli arrivals",
         [](const SimConfig &c) {
             return formatDouble(c.net.burstOff);
         },
         [](SimConfig &c, const std::string &v) {
             double b = parseDouble("traffic.burst_off", v);
             if (b < 0.0)
                 badValue("traffic.burst_off", v,
                          "a non-negative cycle count");
             c.net.burstOff = b;
         }},
        {"traffic.packet_length", "flits per packet (>= 1)",
         [](const SimConfig &c) {
             return std::to_string(c.net.packetLength);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.packetLength =
                 int(parseInt("traffic.packet_length", v, 1, 1 << 20));
         }},
        {"router.model", "router microarchitecture: WH, VC or specVC",
         [](const SimConfig &c) {
             return std::string(router::toString(c.net.router.model));
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.model = router::routerModelFromString(v);
         }},
        {"router.single_cycle",
         "unit-latency idealization (Section 5.2)",
         [](const SimConfig &c) {
             return std::string(c.net.router.singleCycle ? "true"
                                                         : "false");
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.singleCycle =
                 parseBool("router.single_cycle", v);
         }},
        {"router.num_ports",
         "physical ports per router (0 = derive from the topology; "
         "2D mesh: 5)",
         [](const SimConfig &c) {
             return std::to_string(c.net.router.numPorts);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.numPorts =
                 int(parseInt("router.num_ports", v, 0, 64));
         }},
        {"router.num_vcs",
         "virtual channels per physical port (1 for wormhole)",
         [](const SimConfig &c) {
             return std::to_string(c.net.router.numVcs);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.numVcs =
                 int(parseInt("router.num_vcs", v, 1, 64));
         }},
        {"router.buf_depth", "buffer depth in flits per VC FIFO (>= 1)",
         [](const SimConfig &c) {
             return std::to_string(c.net.router.bufDepth);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.bufDepth =
                 int(parseInt("router.buf_depth", v, 1, 1 << 20));
         }},
        {"router.credit_proc",
         "cycles from credit arrival to usability; -1 = pipeline depth",
         [](const SimConfig &c) {
             return std::to_string(c.net.router.creditProcCycles);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.creditProcCycles =
                 int(parseInt("router.credit_proc", v, -1, 1 << 20));
         }},
        {"router.spec_equal_priority",
         "ablation: drop the non-spec-over-spec allocator priority",
         [](const SimConfig &c) {
             return std::string(
                 c.net.router.specEqualPriority ? "true" : "false");
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.specEqualPriority =
                 parseBool("router.spec_equal_priority", v);
         }},
        {"router.scalar_alloc",
         "use the dense scalar allocator oracle (A/B benchmarking; "
         "grants are bit-identical to the bitmask engine)",
         [](const SimConfig &c) {
             return std::string(
                 c.net.router.scalarAlloc ? "true" : "false");
         },
         [](SimConfig &c, const std::string &v) {
             c.net.router.scalarAlloc =
                 parseBool("router.scalar_alloc", v);
         }},
        {"sim.seed", "base RNG seed",
         [](const SimConfig &c) { return std::to_string(c.net.seed); },
         [](SimConfig &c, const std::string &v) {
             c.net.seed = parseU64("sim.seed", v);
         }},
        {"sim.warmup", "warm-up cycles before the measurement window",
         [](const SimConfig &c) {
             return std::to_string(c.net.warmup);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.warmup = sim::Cycle(parseU64("sim.warmup", v));
         }},
        {"sim.sample_packets",
         "sample-space size of the measurement protocol",
         [](const SimConfig &c) {
             return std::to_string(c.net.samplePackets);
         },
         [](SimConfig &c, const std::string &v) {
             c.net.samplePackets = parseU64("sim.sample_packets", v);
         }},
        {"sim.max_cycles",
         "hard cap on simulated cycles in sample mode (>= 1)",
         [](const SimConfig &c) {
             return std::to_string(c.maxCycles);
         },
         [](SimConfig &c, const std::string &v) {
             c.maxCycles = sim::Cycle(parseU64("sim.max_cycles", v, 1));
         }},
        {"sim.mode",
         "'sample' (warm-up + sample + drain protocol) or 'fixed' "
         "(run sim.horizon cycles, report steady-state rates)",
         [](const SimConfig &c) { return c.mode; },
         [](SimConfig &c, const std::string &v) {
             if (v != "sample" && v != "fixed")
                 badValue("sim.mode", v, "'sample' or 'fixed'");
             c.mode = v;
         }},
        {"sim.horizon", "cycles simulated in fixed mode (>= 1)",
         [](const SimConfig &c) { return std::to_string(c.horizon); },
         [](SimConfig &c, const std::string &v) {
             c.horizon = sim::Cycle(parseU64("sim.horizon", v, 1));
         }},
        {"sim.audit",
         "run the per-cycle invariant auditor (wake-table exactness, "
         "credit conservation, flit-pool leaks); PDR_AUDIT=1 also "
         "enables it",
         [](const SimConfig &c) {
             return std::string(c.net.audit ? "true" : "false");
         },
         [](SimConfig &c, const std::string &v) {
             c.net.audit = parseBool("sim.audit", v);
         }},
        {"par.workers",
         "intra-network worker threads (results are bit-identical "
         "for any value; 1 = serial, 0 = PDR_PAR_WORKERS or 1)",
         [](const SimConfig &c) {
             return std::to_string(c.parWorkers);
         },
         [](SimConfig &c, const std::string &v) {
             c.parWorkers = int(parseInt("par.workers", v, 0, 512));
         }},
        {"par.scheme",
         "network partitioning scheme: planes (plane-aligned blocks) "
         "or weighted (component-weight-balanced blocks)",
         [](const SimConfig &c) { return c.parScheme; },
         [](SimConfig &c, const std::string &v) {
             (void)par::schemeFromString(v);   // Throws on bad names.
             c.parScheme = v;
         }},
        {"telem.enable",
         "windowed telemetry stream sampler (read-only: results are "
         "bit-identical on or off, at any worker count)",
         [](const SimConfig &c) {
             return std::string(c.telem.enable ? "true" : "false");
         },
         [](SimConfig &c, const std::string &v) {
             c.telem.enable = parseBool("telem.enable", v);
         }},
        {"telem.interval",
         "telemetry sampling window length in cycles (>= 1)",
         [](const SimConfig &c) {
             return std::to_string(c.telem.interval);
         },
         [](SimConfig &c, const std::string &v) {
             c.telem.interval =
                 sim::Cycle(parseU64("telem.interval", v, 1));
         }},
        {"telem.out",
         "telemetry stream destination: a file path, '-' for stdout, "
         "or empty to sample without writing",
         [](const SimConfig &c) { return c.telem.out; },
         [](SimConfig &c, const std::string &v) { c.telem.out = v; }},
        {"telem.format",
         "telemetry stream format: 'ndjson' (records + heatmap + "
         "summary) or 'csv' (window rows only)",
         [](const SimConfig &c) { return c.telem.format; },
         [](SimConfig &c, const std::string &v) {
             if (v != "ndjson" && v != "csv")
                 badValue("telem.format", v, "'ndjson' or 'csv'");
             c.telem.format = v;
         }},
        {"telem.trace",
         "Chrome trace-event JSON destination (opens in Perfetto / "
         "chrome://tracing); empty disables tracing",
         [](const SimConfig &c) { return c.telem.trace; },
         [](SimConfig &c, const std::string &v) { c.telem.trace = v; }},
        {"telem.trace_packets",
         "packet-lifecycle trace sampling stride: packets whose id "
         "is a multiple of this are traced (>= 1)",
         [](const SimConfig &c) {
             return std::to_string(c.telem.tracePackets);
         },
         [](SimConfig &c, const std::string &v) {
             c.telem.tracePackets =
                 parseU64("telem.trace_packets", v, 1);
         }},
        {"prof.enable",
         "engine profiler: per-worker phase wall time and per-router "
         "tick weights on the telemetry cadence (read-only: results "
         "are bit-identical on or off, at any worker count)",
         [](const SimConfig &c) {
             return std::string(c.prof.enable ? "true" : "false");
         },
         [](SimConfig &c, const std::string &v) {
             c.prof.enable = parseBool("prof.enable", v);
         }},
        {"prof.top",
         "hottest routers listed by 'pdr profile' (>= 1)",
         [](const SimConfig &c) { return std::to_string(c.prof.top); },
         [](SimConfig &c, const std::string &v) {
             c.prof.top = int(parseInt("prof.top", v, 1, 1 << 20));
         }},
        {"prof.report_workers",
         "analysis partition size for the profile report's "
         "tick-weight imbalance verdict (>= 1; decoupled from "
         "par.workers so the verdict is worker-count-independent)",
         [](const SimConfig &c) {
             return std::to_string(c.prof.reportWorkers);
         },
         [](SimConfig &c, const std::string &v) {
             c.prof.reportWorkers =
                 int(parseInt("prof.report_workers", v, 1, 512));
         }},
    };
    return table;
}

const ParamDef &
find(const std::string &key)
{
    for (const auto &d : defs()) {
        if (key == d.key)
            return d;
    }
    std::string known;
    for (const auto &d : defs())
        known += std::string(known.empty() ? "" : ", ") + d.key;
    throw std::invalid_argument("unknown parameter key '" + key +
                                "' (known: " + known + ")");
}

} // namespace

const std::vector<ParamInfo> &
schema()
{
    static const std::vector<ParamInfo> info = [] {
        std::vector<ParamInfo> out;
        for (const auto &d : defs())
            out.push_back({d.key, d.desc});
        return out;
    }();
    return info;
}

bool
knownKey(const std::string &key)
{
    for (const auto &d : defs()) {
        if (key == d.key)
            return true;
    }
    return false;
}

void
set(SimConfig &cfg, const std::string &key, const std::string &value)
{
    const auto &def = find(key);
    try {
        def.set(cfg, value);
    } catch (const std::invalid_argument &e) {
        // Guarantee the key is named even when the underlying error
        // came from a registry or enum parser.
        std::string msg = e.what();
        if (msg.find(key) == std::string::npos)
            throw std::invalid_argument(key + ": " + msg);
        throw;
    }
}

std::string
get(const SimConfig &cfg, const std::string &key)
{
    return find(key).get(cfg);
}

void
validate(const SimConfig &cfg)
{
    // The network-level checks live on NetworkConfig so this cannot
    // drift from what the Network constructor enforces.
    cfg.net.validate();
    cfg.telem.validate();
    cfg.prof.validate();
    if (cfg.mode != "sample" && cfg.mode != "fixed") {
        throw std::invalid_argument(
            "sim.mode must be 'sample' or 'fixed', got '" + cfg.mode +
            "'");
    }
}

std::string
dump(const SimConfig &cfg)
{
    std::string out;
    for (const auto &d : defs()) {
        if (d.derived)
            continue;
        out += std::string(d.key) + " = " + d.get(cfg) + "\n";
    }
    return out;
}

void
apply(SimConfig &cfg, const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#' || t[0] == ';')
            continue;
        auto eq = t.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument(csprintf(
                "line %d: expected 'key = value', got '%s'", lineno,
                t.c_str()));
        }
        try {
            set(cfg, trim(t.substr(0, eq)), trim(t.substr(eq + 1)));
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(
                csprintf("line %d: %s", lineno, e.what()));
        }
    }
}

SimConfig
parse(const std::string &text)
{
    SimConfig cfg;
    apply(cfg, text);
    return cfg;
}

} // namespace params

// ---------------------------------------------------------------------
// Experiment.
// ---------------------------------------------------------------------

namespace {

/** Split a list value on commas and/or whitespace. */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : value) {
        if (ch == ',' || ch == ' ' || ch == '\t') {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur += ch;
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

} // namespace

constexpr const char *Experiment::kLoadsKey;

void
Experiment::set(const std::string &key, const std::string &value)
{
    if (key == "name") {
        name = value;
        return;
    }
    if (key == "description") {
        description = value;
        return;
    }
    if (key.rfind("sweep.", 0) == 0) {
        std::string rest = key.substr(6);
        std::string k = rest == "loads" ? kLoadsKey : rest;
        if (!params::knownKey(k)) {
            throw std::invalid_argument(
                "unknown sweep axis key '" + key + "'");
        }
        auto values = splitList(value);
        if (values.empty()) {
            throw std::invalid_argument("sweep axis '" + key +
                                        "' has no values");
        }
        // Validate each value against the schema on a scratch config.
        SimConfig scratch = base;
        for (const auto &v : values)
            params::set(scratch, k, v);
        for (auto &a : axes) {
            if (a.key == k) {
                a.values = values;
                return;
            }
        }
        axes.push_back({k, values});
        return;
    }
    params::set(base, key, value);
}

Experiment
Experiment::parse(const std::string &text)
{
    Experiment exp;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    Curve *cur = nullptr;
    SimConfig scratch;  // Curve overrides validated as they appear.

    while (std::getline(in, line)) {
        lineno++;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#' || t[0] == ';')
            continue;
        try {
            if (t[0] == '[') {
                if (t.back() != ']' || t.rfind("[curve ", 0) != 0) {
                    throw std::invalid_argument(
                        "expected '[curve LABEL]', got '" + t + "'");
                }
                std::string label =
                    trim(t.substr(7, t.size() - 8));
                if (label.empty()) {
                    throw std::invalid_argument(
                        "curve label must not be empty");
                }
                exp.curves.push_back({label, {}});
                cur = &exp.curves.back();
                scratch = exp.base;
                continue;
            }
            auto eq = t.find('=');
            if (eq == std::string::npos) {
                throw std::invalid_argument(
                    "expected 'key = value', got '" + t + "'");
            }
            std::string key = trim(t.substr(0, eq));
            std::string value = trim(t.substr(eq + 1));
            if (!cur) {
                exp.set(key, value);
            } else {
                if (key.rfind("sweep.", 0) == 0 || key == "name" ||
                    key == "description") {
                    throw std::invalid_argument(
                        "'" + key + "' is not allowed inside a "
                        "[curve] section");
                }
                params::set(scratch, key, value);  // Validates.
                cur->overrides.push_back({key, value});
            }
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(
                csprintf("line %d: %s", lineno, e.what()));
        }
    }
    return exp;
}

Experiment
Experiment::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::invalid_argument("cannot open experiment file '" +
                                    path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return parse(text.str());
    } catch (const std::invalid_argument &e) {
        throw std::invalid_argument(path + ": " + e.what());
    }
}

std::string
Experiment::dump() const
{
    std::string out;
    if (!name.empty())
        out += "name = " + name + "\n";
    if (!description.empty())
        out += "description = " + description + "\n";
    out += params::dump(base);
    for (const auto &a : axes) {
        out += a.key == kLoadsKey ? std::string("sweep.loads")
                                  : "sweep." + a.key;
        out += " =";
        for (const auto &v : a.values)
            out += " " + v;
        out += "\n";
    }
    for (const auto &c : curves) {
        out += "\n[curve " + c.label + "]\n";
        for (const auto &[k, v] : c.overrides)
            out += k + " = " + v + "\n";
    }
    return out;
}

std::vector<exec::SweepPoint>
Experiment::points() const
{
    std::vector<Curve> cs = curves;
    if (cs.empty())
        cs.push_back({});

    for (const auto &a : axes) {
        if (a.values.empty()) {
            throw std::invalid_argument("sweep axis '" + a.key +
                                        "' has no values");
        }
    }

    std::vector<exec::SweepPoint> out;
    std::vector<std::size_t> idx(axes.size(), 0);
    while (true) {
        for (const auto &c : cs) {
            SimConfig cfg = base;
            std::string label = c.label;
            for (const auto &[k, v] : c.overrides)
                params::set(cfg, k, v);
            // The offered-load axis is applied after every other axis:
            // its injection rate depends on the capacity of the
            // point's final topology/radix, whatever order the axes
            // were declared in.  (Labels keep declaration order.)
            const std::string *load_value = nullptr;
            for (std::size_t a = 0; a < axes.size(); a++) {
                const std::string &val = axes[a].values[idx[a]];
                if (axes[a].key == kLoadsKey) {
                    load_value = &val;
                    if (!label.empty())
                        label += "@";
                    label += csprintf(
                        "%.3f", std::strtod(val.c_str(), nullptr));
                } else {
                    params::set(cfg, axes[a].key, val);
                    label += "/" + axes[a].key + "=" + val;
                }
            }
            if (load_value)
                params::set(cfg, kLoadsKey, *load_value);
            out.push_back({label, cfg});
        }
        // Odometer over the axes, innermost (last) axis fastest.
        std::size_t a = axes.size();
        while (a > 0) {
            a--;
            if (++idx[a] < axes[a].values.size())
                break;
            idx[a] = 0;
            if (a == 0)
                return out;
        }
        if (axes.empty())
            return out;
    }
}

void
Experiment::validate() const
{
    params::validate(base);
    for (const auto &p : points())
        params::validate(p.cfg);
}

void
Experiment::applyEnv()
{
    const char *fast = std::getenv("PDR_FAST");
    if (fast && fast[0] == '1') {
        for (auto &a : axes) {
            if (a.key == kLoadsKey)
                a.values = {"0.1", "0.3", "0.5", "0.7"};
        }
        base.net.samplePackets =
            std::min<std::uint64_t>(base.net.samplePackets, 3000);
    }
    base.applyEnvDefaults();
}

} // namespace pdr::api
