#include "api/simulation.hh"

#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "common/logging.hh"
#include "exec/sweep.hh"
#include "par/stepper.hh"
#include "prof/profiler.hh"
#include "telem/telemetry.hh"

namespace pdr::api {

void
SimConfig::applyEnvDefaults()
{
    if (const char *env = std::getenv("PDR_PACKETS")) {
        long v = std::atol(env);
        if (v > 0)
            net.samplePackets = std::uint64_t(v);
    }
    if (const char *env = std::getenv("PDR_WARMUP")) {
        long v = std::atol(env);
        if (v > 0)
            net.warmup = sim::Cycle(v);
    }
    if (const char *env = std::getenv("PDR_MAX_CYCLES")) {
        long v = std::atol(env);
        if (v > 0)
            maxCycles = sim::Cycle(v);
    }
}

bool
SimResults::saturated() const
{
    if (!drained)
        return true;
    return acceptedFraction < 0.9 * offeredFraction;
}

SimResults
runSimulation(const SimConfig &cfg)
{
    if (cfg.mode != "sample" && cfg.mode != "fixed") {
        throw std::invalid_argument("sim.mode must be 'sample' or "
                                    "'fixed', got '" + cfg.mode + "'");
    }

    net::Network network(cfg.net);
    auto &ctrl = network.controller();

    // The per-cycle auditor hooks the serial Network::step() path only
    // (a one-worker stepper is exactly that path); partitioned phase
    // state is torn between barriers, so with real workers the
    // per-cycle checks cannot run.  Teardown leak detection still can.
    if (network.auditEnabled() && par::resolveWorkers(cfg.parWorkers) > 1) {
        pdr_warn("sim.audit: per-cycle checks are bypassed with "
                 "par.workers > 1 (only the teardown flit-leak check "
                 "runs); use par.workers = 1 for full auditing");
    }

    // Intra-network partitioned stepping: bit-identical to serial
    // stepping for any worker count (the stepper with one worker is
    // exactly Network::step()), so the measurement protocol below is
    // shared.
    par::ParConfig pcfg;
    pcfg.workers = par::resolveWorkers(cfg.parWorkers);
    pcfg.scheme = par::schemeFromString(cfg.parScheme);
    par::ParallelStepper stepper(network, pcfg);

    // Engine profiler: constructed after the stepper, destroyed
    // before it (declaration order); the stepper holds a raw pointer
    // while profiling.  Read-only, like telemetry below.
    std::unique_ptr<prof::Profiler> prof;
    if (cfg.prof.enable) {
        prof = std::make_unique<prof::Profiler>(network,
                                                stepper.workers());
        stepper.attachProfiler(prof.get());
    }

    // Observability sidecar: constructed after the stepper (destroyed
    // before it), samples only at epochs where the gang is parked.
    // Strictly read-only -- the stepping below is schedule-identical
    // with telemetry on or off.  A profiled run always has one: the
    // profiler's epochs ride the telemetry cadence.
    std::unique_ptr<telem::Telemetry> tel;
    if (cfg.telem.active() || prof)
        tel = std::make_unique<telem::Telemetry>(cfg.telem, network,
                                                 prof.get());

    if (cfg.mode == "fixed") {
        // Fixed horizon: ignore the measurement protocol and report
        // steady-state rates after exactly `horizon` cycles.
        telem::HostProfiler::Scope phase(tel ? &tel->host() : nullptr,
                                         "fixed");
        stepper.stepTo(network.now() + cfg.horizon, tel.get());
    } else {
        {
            // Warm-up phase.
            telem::HostProfiler::Scope phase(
                tel ? &tel->host() : nullptr, "warmup");
            stepper.stepTo(network.now() + cfg.net.warmup, tel.get());
        }

        // Sample phase: run until the sample space is tagged and
        // received, or the cycle cap is reached (saturated networks
        // never drain).  done() can only change on a cycle where some
        // component acts, so fast-forwarding through idle regions
        // between steps never skips the termination cycle.
        telem::HostProfiler::Scope phase(tel ? &tel->host() : nullptr,
                                         "sample");
        if (!tel) {
            while (!ctrl.done() && network.now() < cfg.maxCycles) {
                stepper.skipIdle(cfg.maxCycles);
                if (network.now() >= cfg.maxCycles)
                    break;
                stepper.step();
            }
        } else {
            // Telemetry variant: idle jumps capped at sampling
            // boundaries, poll() before sizing each jump and again
            // after it (a jump landing on a boundary emits before the
            // boundary cycle runs); a capped jump that parks on a
            // boundary with no due wake resumes the jump instead of
            // stepping (see ParallelStepper::stepTo for why this is
            // schedule-identical to the plain loop).
            while (!ctrl.done() && network.now() < cfg.maxCycles) {
                tel->poll();
                sim::Cycle before = network.now();
                stepper.skipIdle(tel->cap(cfg.maxCycles));
                tel->poll();
                if (network.now() >= cfg.maxCycles)
                    break;
                if (network.now() != before &&
                    network.nextWakeCycle() > network.now()) {
                    continue;
                }
                stepper.step();
            }
        }
    }

    if (tel)
        tel->finish();

    // [AUD-LEAK] All in-flight state has a home; anything the pool
    // still believes live but no queue reaches was leaked.
    if (network.auditEnabled())
        network.auditTeardown();

    SimResults res;
    res.offeredFraction = cfg.net.offeredFraction();
    res.acceptedFraction = network.acceptedFraction();
    auto lat = network.latency();
    res.avgLatency = lat.mean();
    res.p99Latency = lat.percentile(99.0);
    res.sampleReceived = ctrl.received();
    res.sampleSize = ctrl.sampleSize();
    // Fixed-horizon runs do not use the measurement protocol; report
    // them as drained so saturated() reflects accepted-vs-offered only.
    res.drained = cfg.mode == "fixed" || ctrl.done();
    res.cycles = network.now();
    res.routers = network.routerTotals();
    if (tel)
        res.telem = tel->summary();
    if (prof)
        res.prof = std::make_shared<const prof::Capture>(
            prof->takeCapture());
    return res;
}

std::vector<SimResults>
sweepLoad(SimConfig cfg, const std::vector<double> &offered_fractions)
{
    std::vector<exec::SweepPoint> points;
    points.reserve(offered_fractions.size());
    for (double f : offered_fractions) {
        cfg.net.setOfferedFraction(f);
        points.push_back({csprintf("%.3f", f), cfg});
    }

    // Keep each point's configured seed: a parallel run then produces
    // exactly what the historical serial loop produced.
    exec::SweepOptions opts;
    opts.deriveSeeds = false;
    auto sweep = runSweep(points, opts);
    sweep.throwIfFailed();

    std::vector<SimResults> curve;
    curve.reserve(sweep.points.size());
    for (auto &p : sweep.points)
        curve.push_back(p.res);
    return curve;
}

exec::SweepResults
runSweep(const std::vector<exec::SweepPoint> &points)
{
    return exec::SweepRunner().run(points);
}

exec::SweepResults
runSweep(const std::vector<exec::SweepPoint> &points,
         const exec::SweepOptions &opts)
{
    return exec::SweepRunner(opts).run(points);
}

double
findSaturation(SimConfig cfg, double latency_limit, double tolerance)
{
    pdr_assert(tolerance > 0.0);

    // Zero-load latency reference at 2 % load.
    cfg.net.setOfferedFraction(0.02);
    double zero_load = runSimulation(cfg).avgLatency;
    pdr_assert(zero_load > 0.0);

    // Evaluate a whole batch of candidate loads in one parallel sweep.
    // Each point keeps cfg's own seed, so a load evaluates to exactly
    // what a serial probe at that load would have measured, and the
    // fixed candidate grid makes the estimate independent of the
    // thread count.
    auto eval_ok = [&](const std::vector<double> &loads) {
        std::vector<exec::SweepPoint> points;
        points.reserve(loads.size());
        for (double f : loads) {
            auto c = cfg;
            c.net.setOfferedFraction(f);
            points.push_back({csprintf("%.4f", f), c});
        }
        exec::SweepOptions opts;
        opts.deriveSeeds = false;
        auto sweep = exec::SweepRunner(opts).run(points);
        sweep.throwIfFailed();
        std::vector<bool> ok(points.size());
        for (std::size_t i = 0; i < sweep.points.size(); i++) {
            const auto &r = sweep.points[i].res;
            ok[i] = r.drained &&
                    r.avgLatency <= latency_limit * zero_load;
        }
        return ok;
    };

    double lo = 0.02, hi = 1.0;
    if (!eval_ok({lo})[0])
        return 0.0;

    // Bracketing grid search: each round splits [lo, hi] into
    // `fanout` + 1 intervals and evaluates all interior candidates at
    // once, narrowing to the interval around the knee (assuming the
    // same monotone response bisection assumes).
    constexpr int fanout = 7;
    while (hi - lo > tolerance) {
        std::vector<double> grid;
        grid.reserve(fanout);
        for (int i = 1; i <= fanout; i++)
            grid.push_back(lo + (hi - lo) * i / (fanout + 1));
        auto ok = eval_ok(grid);

        double new_lo = lo, new_hi = hi;
        for (int i = 0; i < fanout; i++) {
            if (ok[i]) {
                new_lo = grid[i];
            } else {
                new_hi = grid[i];
                break;
            }
        }
        lo = new_lo;
        hi = new_hi;
    }
    return lo;
}

} // namespace pdr::api
