#include "api/simulation.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "exec/sweep.hh"

namespace pdr::api {

void
SimConfig::applyEnvDefaults()
{
    if (const char *env = std::getenv("PDR_PACKETS")) {
        long v = std::atol(env);
        if (v > 0)
            net.samplePackets = std::uint64_t(v);
    }
    if (const char *env = std::getenv("PDR_WARMUP")) {
        long v = std::atol(env);
        if (v > 0)
            net.warmup = sim::Cycle(v);
    }
    if (const char *env = std::getenv("PDR_MAX_CYCLES")) {
        long v = std::atol(env);
        if (v > 0)
            maxCycles = sim::Cycle(v);
    }
}

bool
SimResults::saturated() const
{
    if (!drained)
        return true;
    return acceptedFraction < 0.9 * offeredFraction;
}

SimResults
runSimulation(const SimConfig &cfg)
{
    net::Network network(cfg.net);
    auto &ctrl = network.controller();

    // Warm-up phase.
    network.run(cfg.net.warmup);

    // Sample phase: run until the sample space is tagged and received,
    // or the cycle cap is reached (saturated networks never drain).
    while (!ctrl.done() && network.now() < cfg.maxCycles)
        network.step();

    SimResults res;
    res.offeredFraction = cfg.net.offeredFraction();
    res.acceptedFraction = network.acceptedFraction();
    auto lat = network.latency();
    res.avgLatency = lat.mean();
    res.p99Latency = lat.percentile(99.0);
    res.sampleReceived = ctrl.received();
    res.sampleSize = ctrl.sampleSize();
    res.drained = ctrl.done();
    res.cycles = network.now();
    res.routers = network.routerTotals();
    return res;
}

std::vector<SimResults>
sweepLoad(SimConfig cfg, const std::vector<double> &offered_fractions)
{
    std::vector<exec::SweepPoint> points;
    points.reserve(offered_fractions.size());
    for (double f : offered_fractions) {
        cfg.net.setOfferedFraction(f);
        points.push_back({csprintf("%.3f", f), cfg});
    }

    // Keep each point's configured seed: a parallel run then produces
    // exactly what the historical serial loop produced.
    exec::SweepOptions opts;
    opts.deriveSeeds = false;
    auto sweep = runSweep(points, opts);
    sweep.throwIfFailed();

    std::vector<SimResults> curve;
    curve.reserve(sweep.points.size());
    for (auto &p : sweep.points)
        curve.push_back(p.res);
    return curve;
}

exec::SweepResults
runSweep(const std::vector<exec::SweepPoint> &points)
{
    return exec::SweepRunner().run(points);
}

exec::SweepResults
runSweep(const std::vector<exec::SweepPoint> &points,
         const exec::SweepOptions &opts)
{
    return exec::SweepRunner(opts).run(points);
}

double
findSaturation(SimConfig cfg, double latency_limit, double tolerance)
{
    // Zero-load latency reference at 2 % load.
    cfg.net.setOfferedFraction(0.02);
    double zero_load = runSimulation(cfg).avgLatency;
    pdr_assert(zero_load > 0.0);

    auto ok = [&](double f) {
        cfg.net.setOfferedFraction(f);
        SimResults r = runSimulation(cfg);
        return r.drained && r.avgLatency <= latency_limit * zero_load;
    };

    double lo = 0.02, hi = 1.0;
    if (!ok(lo))
        return 0.0;
    while (hi - lo > tolerance) {
        double mid = 0.5 * (lo + hi);
        if (ok(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace pdr::api
