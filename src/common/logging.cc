#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace pdr {

namespace {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(n + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), n);
}

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("PDR_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Warn;
    if (std::strcmp(env, "silent") == 0)
        return LogLevel::Silent;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: PDR_LOG_LEVEL='%s' not recognized (want "
                 "silent | warn | info); using 'warn'\n", env);
    return LogLevel::Warn;
}

/** Process-wide verbosity.  Atomic so tests flipping the level under
 *  TSan stay clean; relaxed is enough (no ordering with the writes
 *  being filtered). */
std::atomic<LogLevel> &
levelVar()
{
    // pdr-lint: allow(PDR-STA-MUT) verbosity only gates diagnostics;
    // it never feeds simulation state.
    static std::atomic<LogLevel> level{levelFromEnv()};
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return levelVar().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelVar().store(level, std::memory_order_relaxed);
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace pdr
