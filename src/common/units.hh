/**
 * @file
 * Technology-independent delay units used by the Peh-Dally router delay
 * model.
 *
 * All gate-level delays in the model are expressed in tau, the delay of an
 * inverter driving an identical inverter.  The paper also uses tau4, the
 * delay of an inverter driving four identical inverters; by the method of
 * logical effort tau4 = 5 tau (EQ 3 of the paper).  A "typical" router
 * clock cycle is 20 tau4 = 100 tau (roughly 2 ns / 500 MHz in the 0.18 um
 * process the paper validates against).
 */

#ifndef PDR_COMMON_UNITS_HH
#define PDR_COMMON_UNITS_HH

namespace pdr {

/** Delay expressed in tau (inverter fanout-of-1 delay). */
class Tau
{
  public:
    constexpr Tau() = default;
    constexpr explicit Tau(double v) : value_(v) {}

    /** Raw value in tau. */
    constexpr double value() const { return value_; }

    /** Convert to tau4 units (1 tau4 = 5 tau). */
    constexpr double inTau4() const { return value_ / tau4PerTau; }

    constexpr Tau operator+(Tau o) const { return Tau(value_ + o.value_); }
    constexpr Tau operator-(Tau o) const { return Tau(value_ - o.value_); }
    constexpr Tau operator*(double s) const { return Tau(value_ * s); }
    constexpr Tau &operator+=(Tau o) { value_ += o.value_; return *this; }
    constexpr bool operator==(Tau o) const { return value_ == o.value_; }
    constexpr bool operator!=(Tau o) const { return value_ != o.value_; }
    constexpr bool operator<(Tau o) const { return value_ < o.value_; }
    constexpr bool operator<=(Tau o) const { return value_ <= o.value_; }
    constexpr bool operator>(Tau o) const { return value_ > o.value_; }
    constexpr bool operator>=(Tau o) const { return value_ >= o.value_; }

    /** Number of tau in one tau4 (derived via logical effort, EQ 3). */
    static constexpr double tau4PerTau = 5.0;

  private:
    double value_ = 0.0;
};

constexpr Tau operator*(double s, Tau t) { return t * s; }

/** Construct a delay from a value given in tau4 units. */
constexpr Tau
fromTau4(double tau4)
{
    return Tau(tau4 * Tau::tau4PerTau);
}

/**
 * The paper's "typical clock cycle" of 20 tau4 (Section 3, footnote 2):
 * decoding and routing are assumed to take exactly one such cycle.
 */
constexpr Tau typicalClock = Tau(20.0 * Tau::tau4PerTau);

} // namespace pdr

#endif // PDR_COMMON_UNITS_HH
