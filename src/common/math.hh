/**
 * @file
 * Small math helpers shared across the delay model (arbitrary-base
 * logarithms appear throughout Table 1 of the paper).
 */

#ifndef PDR_COMMON_MATH_HH
#define PDR_COMMON_MATH_HH

#include <cmath>

namespace pdr {

/** log base 2. */
inline double log2d(double x) { return std::log2(x); }

/** log base 4 (fan-out-of-4 stage count; ubiquitous in logical effort). */
inline double log4(double x) { return std::log2(x) / 2.0; }

/** log base 8. */
inline double log8(double x) { return std::log2(x) / 3.0; }

/** Integer ceiling division for positive operands. */
inline int
ceilDiv(int num, int den)
{
    return (num + den - 1) / den;
}

/** True if x is a power of two (x >= 1). */
inline bool
isPow2(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace pdr

#endif // PDR_COMMON_MATH_HH
