/**
 * @file
 * Generic string-keyed factory registry.
 *
 * The simulator's extension points (traffic patterns, topologies,
 * routing functions) each expose a registry so new scenarios register
 * themselves in one line instead of widening an enum switch:
 *
 *   traffic::PatternRegistry::instance().add(
 *       "diagonal", [](int k) { return std::make_unique<Diag>(k); },
 *       "every node sends to its diagonal mirror");
 *
 * Lookups throw std::invalid_argument with the unknown name and the
 * list of registered names, so configuration errors are reported
 * per-point by the sweep engine / CLI instead of killing the process.
 *
 * Registration is expected at startup (before sweeps spawn workers);
 * concurrent lookups are safe once registration is done.
 */

#ifndef PDR_COMMON_REGISTRY_HH
#define PDR_COMMON_REGISTRY_HH

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pdr {

/** Name -> (factory, description) map with precise lookup errors. */
template <typename Spec>
class FactoryRegistry
{
  public:
    explicit FactoryRegistry(std::string what) : what_(std::move(what)) {}

    /** Register (or replace) an entry under `name`. */
    void
    add(const std::string &name, Spec spec, std::string description)
    {
        entries_[name] = {std::move(spec), std::move(description)};
    }

    bool
    contains(const std::string &name) const
    {
        return entries_.count(name) != 0;
    }

    /** Entry for `name`; throws std::invalid_argument when unknown. */
    const Spec &
    at(const std::string &name) const
    {
        auto it = entries_.find(name);
        if (it == entries_.end()) {
            std::string known;
            for (const auto &[n, e] : entries_)
                known += (known.empty() ? "" : ", ") + n;
            throw std::invalid_argument("unknown " + what_ + " '" +
                                        name + "' (known: " + known +
                                        ")");
        }
        return it->second.first;
    }

    const std::string &
    description(const std::string &name) const
    {
        auto it = entries_.find(name);
        if (it == entries_.end())
            at(name);  // Throws with the name list.
        return it->second.second;
    }

    /** Registered names in sorted order. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &[n, e] : entries_)
            out.push_back(n);
        return out;
    }

  private:
    std::string what_;
    std::map<std::string, std::pair<Spec, std::string>> entries_;
};

} // namespace pdr

#endif // PDR_COMMON_REGISTRY_HH
