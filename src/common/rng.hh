/**
 * @file
 * Deterministic, seedable random number generation for workloads.
 *
 * A thin wrapper over a xoshiro256** generator.  Every simulation object
 * that needs randomness owns its own Rng seeded from the simulation seed,
 * so results are reproducible regardless of evaluation order.
 */

#ifndef PDR_COMMON_RNG_HH
#define PDR_COMMON_RNG_HH

#include <cstdint>

namespace pdr {

/** xoshiro256** pseudo random number generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint32_t range(std::uint32_t n);

    /** Bernoulli trial with probability p. */
    bool bernoulli(double p) { return uniform() < p; }

  private:
    std::uint64_t s_[4];
};

} // namespace pdr

#endif // PDR_COMMON_RNG_HH
