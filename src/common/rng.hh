/**
 * @file
 * Deterministic, seedable random number generation for workloads.
 *
 * A thin wrapper over a xoshiro256** generator.  Every simulation object
 * that needs randomness owns its own Rng seeded from the simulation seed,
 * so results are reproducible regardless of evaluation order.
 */

#ifndef PDR_COMMON_RNG_HH
#define PDR_COMMON_RNG_HH

#include <cstdint>

namespace pdr {

/**
 * One splitmix64 mixing step: returns the mixed value and advances the
 * state.  Also the canonical way to derive independent stream seeds
 * (e.g. one per sweep point) from a base seed: statistically unrelated
 * outputs for related inputs.
 */
std::uint64_t splitmix64(std::uint64_t &state);

/** Derive an independent sub-seed from (base seed, stream index). */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index);

/** xoshiro256** pseudo random number generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint32_t range(std::uint32_t n);

    /** Bernoulli trial with probability p. */
    bool bernoulli(double p) { return uniform() < p; }

  private:
    std::uint64_t s_[4];
};

} // namespace pdr

#endif // PDR_COMMON_RNG_HH
