#include "common/rng.hh"

namespace pdr {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    // Two mixing rounds decorrelate (base, index) pairs that differ in
    // only a few bits; seeds depend on nothing but these two values, so
    // any work scheduled by index is reproducible under any threading.
    std::uint64_t x = base;
    (void)splitmix64(x);
    x ^= 0x9e3779b97f4a7c15ULL * (index + 1);
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint32_t
Rng::range(std::uint32_t n)
{
    // Lemire's multiply-shift rejection-free-enough mapping; bias is
    // negligible for the ranges used here (n <= a few thousand), but use
    // the rejection variant anyway for exactness.
    std::uint64_t threshold = (-std::uint64_t(n)) % n;
    while (true) {
        std::uint64_t r = next();
        std::uint64_t m = (r & 0xffffffffULL) * n;
        if ((m & 0xffffffffULL) >= threshold)
            return std::uint32_t(m >> 32);
    }
}

} // namespace pdr
