/**
 * @file
 * Minimal gem5-style logging / assertion helpers.
 *
 * panic()  - internal invariant violated (simulator bug); aborts.
 * fatal()  - user error (bad configuration); exits with status 1.
 * warn()   - suspicious but non-fatal condition.
 * inform() - status message.
 *
 * warn/inform are filtered by a process-wide log level (setLogLevel,
 * or the PDR_LOG_LEVEL environment variable: silent | warn | info).
 * panic and fatal always print -- they carry the diagnostic the
 * process dies with.
 */

#ifndef PDR_COMMON_LOGGING_HH
#define PDR_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pdr {

/** Verbosity threshold: a message prints iff its level <= current. */
enum class LogLevel
{
    Silent = 0,  //!< Suppress warn and inform.
    Warn = 1,    //!< warn only (default).
    Info = 2,    //!< warn and inform.
};

/** Current process-wide log level.  Initialized from PDR_LOG_LEVEL
 *  (silent | warn | info, case-sensitive) on first use. */
LogLevel logLevel();

/** Override the log level (tests, CLI verbosity flags). */
void setLogLevel(LogLevel level);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);

/** Format printf-style into a std::string. */
std::string csprintf(const char *fmt, ...);

} // namespace pdr

#define pdr_panic(...) ::pdr::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define pdr_fatal(...) ::pdr::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define pdr_warn(...) ::pdr::warnImpl(__VA_ARGS__)
#define pdr_inform(...) ::pdr::informImpl(__VA_ARGS__)

/** Assert an invariant; on failure report and abort via panic. */
#define pdr_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pdr::panicImpl(__FILE__, __LINE__,                            \
                             "assertion '%s' failed", #cond);              \
        }                                                                   \
    } while (0)

#endif // PDR_COMMON_LOGGING_HH
