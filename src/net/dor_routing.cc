#include "net/dor_routing.hh"

#include "common/logging.hh"

namespace pdr::net {

int
DorRouting::dorPort(sim::NodeId here, sim::NodeId dest_router,
                    bool ascending) const
{
    int n = lat_.dims();
    for (int i = 0; i < n; i++) {
        int d = ascending ? i : n - 1 - i;
        int hc = lat_.coordOf(here, d);
        int dc = lat_.coordOf(dest_router, d);
        if (hc == dc)
            continue;
        if (!lat_.wraps(d))
            return dc > hc ? lat_.plusPort(d) : lat_.minusPort(d);
        // Shortest way around the ring; ties go plus (East/North).
        int k = lat_.radix(d);
        int plus = (dc - hc + k) % k;
        return plus <= k - plus ? lat_.plusPort(d) : lat_.minusPort(d);
    }
    return sim::Invalid;
}

int
DorRouting::route(sim::NodeId here, const sim::Flit &head) const
{
    sim::NodeId dr = lat_.routerOf(head.dest);
    if (here == dr)
        return ejectPort(head);
    return dorPort(here, dr, /*ascending=*/true);
}

std::uint32_t
DorRouting::classMask(int vclass, sim::NodeId here, int out_port,
                      int num_vcs, bool split_major) const
{
    int lo = 0, count = num_vcs;
    if (split_major) {
        int lower = count / 2;
        if (vclass & 1) {
            lo += lower;
            count -= lower;
        } else {
            count = lower;
        }
    }
    int d = lat_.dimOfPort(out_port);
    if (lat_.wraps(d)) {
        pdr_assert(count >= 2);
        // Class on the next link: crossing the dateline promotes.
        bool crossed = ((vclass >> datelineBit(d)) & 1) ||
                       lat_.isWrapLink(here, out_port);
        int lower = count / 2;
        if (crossed) {
            lo += lower;
            count -= lower;
        } else {
            count = lower;
        }
    }
    std::uint32_t bits =
        count >= 32 ? ~0u : ((1u << count) - 1);
    return bits << lo;
}

int
DorRouting::datelineClass(int vclass, sim::NodeId here,
                          int out_port) const
{
    if (lat_.isWrapLink(here, out_port))
        return vclass | (1 << datelineBit(lat_.dimOfPort(out_port)));
    return vclass;
}

std::uint32_t
DorRouting::vcMask(const sim::Flit &head, sim::NodeId here,
                   int out_port, int num_vcs) const
{
    if (lat_.isLocalPort(out_port))
        return ~0u;
    return classMask(head.vclass, here, out_port, num_vcs,
                     /*split_major=*/false);
}

int
DorRouting::nextClass(const sim::Flit &f, sim::NodeId here,
                      int out_port) const
{
    if (lat_.isLocalPort(out_port))
        return 0;
    return datelineClass(f.vclass, here, out_port);
}

} // namespace pdr::net
