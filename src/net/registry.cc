#include "net/registry.hh"

#include <stdexcept>

#include "net/adaptive_routing.hh"
#include "net/dor_routing.hh"
#include "net/oblivious_routing.hh"

namespace pdr::net {

TopologyRegistry::TopologyRegistry()
    : FactoryRegistry<TopologySpec>("topology")
{
    add("mesh",
        {[](int k) { return Lattice::mesh2D(k); }, "xy"},
        "k x k mesh (the paper's 8x8 setup)");
    add("torus",
        {[](int k) { return Lattice::torus2D(k); }, "dateline"},
        "k x k torus: wraparound links, dateline VC classes");
    add("kary3cube",
        {[](int k) { return Lattice::kAryNCube(3, k); }, "dor"},
        "k-ary 3-cube (3D torus): k^3 routers, 7 ports each");
    add("cmesh",
        {[](int k) { return Lattice::cmesh(k, 4); }, "dor"},
        "concentrated k x k mesh, 4 nodes per router (4k^2 nodes)");
    add("cmesh2",
        {[](int k) { return Lattice::cmesh(k, 2); }, "dor"},
        "concentrated k x k mesh, 2 nodes per router (2k^2 nodes)");
}

TopologyRegistry &
TopologyRegistry::instance()
{
    // pdr-lint: allow(PDR-STA-MUT) registration-time singleton;
    // read-only during simulation, lookups are by name not order.
    static TopologyRegistry reg;
    return reg;
}

RoutingRegistry::RoutingRegistry()
    : FactoryRegistry<RoutingFactory>("routing function")
{
    add("dor",
        [](const Lattice &lat)
            -> std::unique_ptr<router::RoutingFunction> {
            return std::make_unique<DorRouting>(lat);
        },
        "n-dimensional dimension-order routing (datelines on wrapping "
        "dims)");
    add("xy",
        [](const Lattice &lat)
            -> std::unique_ptr<router::RoutingFunction> {
            if (lat.wraps()) {
                throw std::invalid_argument(
                    "net.routing=xy runs on the mesh only; a torus "
                    "needs dateline deadlock avoidance (use dor)");
            }
            return std::make_unique<DorRouting>(lat);
        },
        "dimension-ordered (x then y) deterministic routing, mesh only");
    add("dateline",
        [](const Lattice &lat)
            -> std::unique_ptr<router::RoutingFunction> {
            if (!lat.wraps()) {
                throw std::invalid_argument(
                    "net.routing=dateline needs wraparound links "
                    "(net.topology=torus or kary3cube)");
            }
            return std::make_unique<DorRouting>(lat);
        },
        "minimal DOR with dateline VC classes, wrapping lattices only");
    add("o1turn",
        [](const Lattice &lat)
            -> std::unique_ptr<router::RoutingFunction> {
            if (lat.dims() < 2) {
                throw std::invalid_argument(
                    "net.routing=o1turn needs >= 2 dimensions to "
                    "randomize the order over");
            }
            return std::make_unique<O1TurnRouting>(lat);
        },
        "O1TURN: random ascending/descending dimension order per "
        "packet, one VC class per order");
    add("val",
        [](const Lattice &lat)
            -> std::unique_ptr<router::RoutingFunction> {
            return std::make_unique<ValiantRouting>(lat);
        },
        "Valiant: random intermediate node, two DOR phases on split "
        "VCs");
    add("westfirst",
        [](const Lattice &lat)
            -> std::unique_ptr<router::RoutingFunction> {
            if (lat.wraps() || lat.dims() != 2) {
                throw std::invalid_argument(
                    "net.routing=westfirst: adaptive routing is "
                    "implemented for 2D meshes only (west-first turn "
                    "model)");
            }
            return std::make_unique<WestFirstRouting>(lat);
        },
        "west-first minimal adaptive routing (turn model), 2D mesh "
        "only");
}

RoutingRegistry &
RoutingRegistry::instance()
{
    // pdr-lint: allow(PDR-STA-MUT) registration-time singleton;
    // read-only during simulation, lookups are by name not order.
    static RoutingRegistry reg;
    return reg;
}

} // namespace pdr::net
