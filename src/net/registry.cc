#include "net/registry.hh"

#include <stdexcept>

#include "net/adaptive_routing.hh"
#include "net/torus_routing.hh"
#include "net/xy_routing.hh"

namespace pdr::net {

TopologyRegistry::TopologyRegistry()
    : FactoryRegistry<TopologySpec>("topology")
{
    add("mesh",
        {[](int k) { return Mesh(k, false); }, "xy"},
        "k x k mesh (the paper's 8x8 setup)");
    add("torus",
        {[](int k) { return Mesh(k, true); }, "dateline"},
        "k x k torus: wraparound links, dateline VC classes");
}

TopologyRegistry &
TopologyRegistry::instance()
{
    static TopologyRegistry reg;
    return reg;
}

RoutingRegistry::RoutingRegistry()
    : FactoryRegistry<RoutingFactory>("routing function")
{
    add("xy",
        [](const Mesh &mesh) -> std::unique_ptr<router::RoutingFunction> {
            if (mesh.wraps()) {
                throw std::invalid_argument(
                    "net.routing=xy runs on the mesh only; a torus "
                    "needs dateline deadlock avoidance");
            }
            return std::make_unique<XyRouting>(mesh);
        },
        "dimension-ordered (x then y) deterministic routing, mesh only");
    add("westfirst",
        [](const Mesh &mesh) -> std::unique_ptr<router::RoutingFunction> {
            if (mesh.wraps()) {
                throw std::invalid_argument(
                    "net.routing=westfirst: adaptive routing is "
                    "implemented for the mesh only (west-first turn "
                    "model)");
            }
            return std::make_unique<WestFirstRouting>(mesh);
        },
        "west-first minimal adaptive routing (turn model), mesh only");
    add("dateline",
        [](const Mesh &mesh) -> std::unique_ptr<router::RoutingFunction> {
            if (!mesh.wraps()) {
                throw std::invalid_argument(
                    "net.routing=dateline needs wraparound links "
                    "(net.topology=torus)");
            }
            return std::make_unique<TorusDorRouting>(mesh);
        },
        "minimal DOR with dateline VC classes, torus only");
}

RoutingRegistry &
RoutingRegistry::instance()
{
    static RoutingRegistry reg;
    return reg;
}

} // namespace pdr::net
