/**
 * @file
 * Dimension-ordered routing for the torus with dateline deadlock
 * avoidance (an extension in the direction of the paper's Section-6
 * future work: "other topologies").
 *
 * Routing is minimal DOR: correct X first (shortest way around the
 * ring, ties broken toward East), then Y.  Wraparound closes a ring in
 * each dimension, so channel dependences cycle; the classic dateline
 * scheme breaks them: every packet starts on the lower half of the VCs
 * of a ring (class 0) and switches to the upper half (class 1) when it
 * crosses the dateline (the wrap link).  Requires >= 2 VCs per
 * physical channel.
 */

#ifndef PDR_NET_TORUS_ROUTING_HH
#define PDR_NET_TORUS_ROUTING_HH

#include "net/topology.hh"
#include "router/routing.hh"

namespace pdr::net {

/** Minimal DOR on a torus with dateline VC classes. */
class TorusDorRouting : public router::RoutingFunction
{
  public:
    explicit TorusDorRouting(const Mesh &torus);

    int route(sim::NodeId here, sim::NodeId dest) const override;

    std::uint32_t vcMask(int vclass, sim::NodeId here,
                         sim::NodeId dest, int out_port,
                         int num_vcs) const override;

    int nextClass(int vclass, sim::NodeId here,
                  int out_port) const override;

  private:
    /** 0 for X-dimension ports (E/W), 1 for Y (N/S). */
    static int dimOf(int port);

    const Mesh &mesh_;
};

} // namespace pdr::net

#endif // PDR_NET_TORUS_ROUTING_HH
