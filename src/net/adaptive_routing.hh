/**
 * @file
 * Minimal adaptive routing for 2D meshes using the west-first turn
 * model (an extension in the direction of the paper's Section-6 future
 * work, exercising the footnote-5 policy for speculative routers).
 *
 * West-first prohibits every turn *into* the west direction: a packet
 * that must travel west does all its west hops first (no adaptivity),
 * after which it may route adaptively among the remaining minimal
 * directions (east / north / south).  With two prohibited turns the
 * channel-dependence graph is acyclic, so the scheme is deadlock-free
 * even for wormhole routers without VCs (Glass & Ni).
 *
 * The router consults candidates() and picks the port with the most
 * downstream buffer space at each attempt; on an unsuccessful VC /
 * switch bid it re-iterates through the routing function, as footnote
 * 5 prescribes for a speculative router with an adaptive (Rp-range)
 * routing function.
 *
 * Works on any 2D non-wrapping lattice, concentrated meshes included
 * (the turn model constrains the directional ports only; ejection uses
 * the destination's local port).
 */

#ifndef PDR_NET_ADAPTIVE_ROUTING_HH
#define PDR_NET_ADAPTIVE_ROUTING_HH

#include "net/topology.hh"
#include "router/routing.hh"

namespace pdr::net {

/** West-first minimal adaptive routing on a 2D non-wrapping lattice. */
class WestFirstRouting : public router::RoutingFunction
{
  public:
    explicit WestFirstRouting(const Lattice &lat);

    int route(sim::NodeId here, const sim::Flit &head) const override;
    void candidates(sim::NodeId here, const sim::Flit &head,
                    std::vector<int> &out) const override;
    bool isAdaptive() const override { return true; }

  private:
    const Lattice &lat_;
};

} // namespace pdr::net

#endif // PDR_NET_ADAPTIVE_ROUTING_HH
