#include "net/adaptive_routing.hh"

#include "common/logging.hh"

namespace pdr::net {

WestFirstRouting::WestFirstRouting(const Mesh &mesh) : mesh_(mesh)
{
    pdr_assert(!mesh.wraps());
}

void
WestFirstRouting::candidates(sim::NodeId here, sim::NodeId dest,
                             std::vector<int> &out) const
{
    out.clear();
    int hx = mesh_.xOf(here), hy = mesh_.yOf(here);
    int dx = mesh_.xOf(dest), dy = mesh_.yOf(dest);

    if (here == dest) {
        out.push_back(Local);
        return;
    }
    if (dx < hx) {
        // All west hops first; no adaptivity while heading west.
        out.push_back(West);
        return;
    }
    // Adaptive among the remaining minimal directions.
    if (dx > hx)
        out.push_back(East);
    if (dy > hy)
        out.push_back(North);
    if (dy < hy)
        out.push_back(South);
    pdr_assert(!out.empty());
}

int
WestFirstRouting::route(sim::NodeId here, sim::NodeId dest) const
{
    std::vector<int> cand;
    candidates(here, dest, cand);
    return cand.front();
}

} // namespace pdr::net
