#include "net/adaptive_routing.hh"

#include "common/logging.hh"

namespace pdr::net {

WestFirstRouting::WestFirstRouting(const Lattice &lat) : lat_(lat)
{
    pdr_assert(lat.dims() == 2 && !lat.wraps());
}

void
WestFirstRouting::candidates(sim::NodeId here, const sim::Flit &head,
                             std::vector<int> &out) const
{
    out.clear();
    sim::NodeId dr = lat_.routerOf(head.dest);
    if (here == dr) {
        out.push_back(lat_.localPort(lat_.localIndexOf(head.dest)));
        return;
    }
    int hx = lat_.coordOf(here, 0), hy = lat_.coordOf(here, 1);
    int dx = lat_.coordOf(dr, 0), dy = lat_.coordOf(dr, 1);

    if (dx < hx) {
        // All west hops first; no adaptivity while heading west.
        out.push_back(West);
        return;
    }
    // Adaptive among the remaining minimal directions.
    if (dx > hx)
        out.push_back(East);
    if (dy > hy)
        out.push_back(North);
    if (dy < hy)
        out.push_back(South);
    pdr_assert(!out.empty());
}

int
WestFirstRouting::route(sim::NodeId here, const sim::Flit &head) const
{
    std::vector<int> cand;
    candidates(here, head, cand);
    return cand.front();
}

} // namespace pdr::net
