/**
 * @file
 * A complete k x k mesh network: routers, link and credit channels,
 * per-node sources and sinks, and aggregate statistics.
 *
 * The network mirrors the paper's simulation setup: an 8x8 mesh,
 * dimension-ordered routing, credit-based flow control, 1-cycle channel
 * propagation (credit propagation independently configurable for the
 * Figure-18 experiment), constant-rate sources injecting fixed-length
 * packets, and immediate ejection at the destination.
 */

#ifndef PDR_NET_NETWORK_HH
#define PDR_NET_NETWORK_HH

#include <memory>
#include <vector>

#include "net/adaptive_routing.hh"
#include "net/topology.hh"
#include "net/torus_routing.hh"
#include "net/xy_routing.hh"
#include "router/router.hh"
#include "stats/latency.hh"
#include "traffic/measure.hh"
#include "traffic/sink.hh"
#include "traffic/source.hh"

namespace pdr::net {

/** Full-network configuration. */
struct NetworkConfig
{
    int k = 8;                          //!< Mesh radix (k x k nodes).
    bool torus = false;                 //!< Wraparound links (torus).
    /** West-first minimal adaptive routing instead of DOR (mesh only;
     *  exercises the paper's footnote-5 speculative-adaptive policy). */
    bool adaptiveRouting = false;
    router::RouterConfig router;        //!< Per-router configuration.
    sim::Cycle linkLatency = 1;         //!< Flit propagation (cycles).
    sim::Cycle creditLatency = 1;       //!< Credit propagation (cycles).
    double injectionRate = 0.1;         //!< Offered flits/node/cycle.
    int packetLength = 5;               //!< Flits per packet.
    traffic::PatternKind pattern = traffic::PatternKind::Uniform;
    std::uint64_t seed = 1;
    sim::Cycle warmup = 10000;          //!< Warm-up cycles.
    std::uint64_t samplePackets = 100000; //!< Sample-space size.

    /** Uniform-traffic capacity (flits/node/cycle, bisection bound). */
    double capacity() const { return (torus ? 8.0 : 4.0) / k; }

    /** Offered load as a fraction of uniform-traffic capacity. */
    double offeredFraction() const { return injectionRate / capacity(); }

    /** Set the injection rate from a fraction of capacity. */
    void setOfferedFraction(double f) { injectionRate = f * capacity(); }
};

/** The simulated network. */
class Network
{
  public:
    explicit Network(const NetworkConfig &cfg);

    /** Advance one cycle (sources, routers, sinks). */
    void step();

    /** Advance n cycles. */
    void run(sim::Cycle n);

    sim::Cycle now() const { return now_; }
    const NetworkConfig &config() const { return cfg_; }
    const Mesh &mesh() const { return mesh_; }
    traffic::MeasureController &controller() { return ctrl_; }

    router::Router &routerAt(sim::NodeId n) { return *routers_[n]; }
    traffic::Source &sourceAt(sim::NodeId n) { return *sources_[n]; }
    const traffic::Sink &sinkAt(sim::NodeId n) const
    {
        return *sinks_[n];
    }

    /** Merged latency statistics over the sample space. */
    stats::LatencyStats latency() const;

    /** Accepted traffic since warm-up, in flits per node per cycle. */
    double acceptedFlitRate() const;

    /** Accepted traffic as a fraction of uniform capacity. */
    double acceptedFraction() const
    {
        return acceptedFlitRate() / mesh_.uniformCapacity();
    }

    /** Aggregate router statistics. */
    router::RouterStats routerTotals() const;

    /** All routers idle, sources drained (diagnostics). */
    bool quiescent() const;

  private:
    using FlitChannel = sim::Channel<sim::Flit>;
    using CreditChannel = sim::Channel<sim::Credit>;

    NetworkConfig cfg_;
    Mesh mesh_;
    std::unique_ptr<router::RoutingFunction> routing_;
    traffic::MeasureController ctrl_;
    std::unique_ptr<traffic::TrafficPattern> pattern_;

    std::vector<std::unique_ptr<FlitChannel>> flitChans_;
    std::vector<std::unique_ptr<CreditChannel>> creditChans_;
    std::vector<std::unique_ptr<router::Router>> routers_;
    std::vector<std::unique_ptr<traffic::Source>> sources_;
    std::vector<std::unique_ptr<traffic::Sink>> sinks_;
    std::vector<std::unique_ptr<stats::LatencyStats>> sinkLatency_;

    sim::Cycle now_ = 0;

    FlitChannel *newFlitChan(sim::Cycle latency);
    CreditChannel *newCreditChan(sim::Cycle latency);
};

} // namespace pdr::net

#endif // PDR_NET_NETWORK_HH
