/**
 * @file
 * A complete lattice network: routers, link and credit channels,
 * per-node sources and sinks, and aggregate statistics.
 *
 * The network mirrors the paper's simulation setup: an 8x8 mesh,
 * dimension-ordered routing, credit-based flow control, 1-cycle channel
 * propagation (credit propagation independently configurable for the
 * Figure-18 experiment), constant-rate sources injecting fixed-length
 * packets, and immediate ejection at the destination.  The geometry is
 * fully general (topo::Lattice): k-ary n-cubes of any dimension count
 * and concentrated meshes (c nodes per router) build the same way, with
 * router port counts (2n directional + c local) derived from the
 * topology.
 *
 * Hot-path layout: all components live in contiguous value slabs
 * (vector<Router>, vector<Source>, ... -- reserved exactly, never
 * reallocated), flits live in a per-network FlitPool and move between
 * queues as 4-byte handles, and stepping is activity-driven: a wake
 * table (one cycle per component, lowered by channel pushes) lets
 * step() skip every component that provably has nothing to do this
 * cycle.  Skipping is a pure scheduling optimization -- simulated
 * behavior, statistics and RNG streams are bit-identical to ticking
 * everything (forceTickAll(true) restores the naive schedule so tests
 * can prove it).
 */

#ifndef PDR_NET_NETWORK_HH
#define PDR_NET_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "net/registry.hh"
#include "net/topology.hh"
#include "router/router.hh"
#include "sim/audit.hh"
#include "sim/flit_pool.hh"
#include "stats/latency.hh"
#include "traffic/measure.hh"
#include "traffic/sink.hh"
#include "traffic/source.hh"

namespace pdr::net {

/**
 * Full-network configuration.  The scenario axes (topology, routing
 * function, traffic pattern) are string keys into the corresponding
 * registries, so externally registered scenarios are reachable from
 * experiment files without touching this struct.  Invalid values throw
 * std::invalid_argument at Network construction (or earlier, from
 * api::params::validate).
 */
struct NetworkConfig
{
    int k = 8;                          //!< Per-dimension radix.
    std::string topology = "mesh";      //!< TopologyRegistry name.
    /** RoutingRegistry name; "auto" picks the topology's default
     *  ("xy" on the mesh, "dateline" on the torus, "dor" beyond). */
    std::string routing = "auto";
    /** Per-router configuration.  numPorts == 0 means "derive from
     *  the topology" (2 per dimension + concentration); a nonzero
     *  value must match the topology exactly. */
    router::RouterConfig router;
    sim::Cycle linkLatency = 1;         //!< Flit propagation (cycles).
    sim::Cycle creditLatency = 1;       //!< Credit propagation (cycles).
    double injectionRate = 0.1;         //!< Offered flits/node/cycle.
    int packetLength = 5;               //!< Flits per packet.
    /** MMPP bursty arrivals: mean ON-state (burst) dwell in cycles;
     *  0 = plain Bernoulli arrivals (the paper's process).  Set both
     *  burstOn and burstOff (>= 1 cycle each) or neither. */
    double burstOn = 0.0;
    /** MMPP mean OFF-state (gap) dwell in cycles. */
    double burstOff = 0.0;
    std::string pattern = "uniform";    //!< PatternRegistry name.
    /** Permutation file for traffic.pattern=permfile (one destination
     *  node index per line). */
    std::string permfile;
    std::uint64_t seed = 1;
    sim::Cycle warmup = 10000;          //!< Warm-up cycles.
    std::uint64_t samplePackets = 100000; //!< Sample-space size.
    /**
     * Run the per-cycle invariant auditor (sim::Auditor): wake-table
     * exactness, per-link credit conservation, flit-pool leak checks.
     * Purely observational -- results are bit-identical either way --
     * but costs a scan per cycle, so it is a debug switch, not a
     * production default.  PDR_AUDIT=1 in the environment enables it
     * regardless of this flag.  Serial stepping only (par.workers > 1
     * bypasses the audited step path).
     */
    bool audit = false;

    /** The routing name after resolving "auto" via the topology. */
    std::string resolvedRouting() const;

    /** Build the configured geometry (throws on bad topology/radix). */
    Lattice makeLattice() const;

    /**
     * Full cross-field validation without building the network:
     * registry names, router constraints, topology/routing/pattern
     * compatibility, rate ranges.  Throws std::invalid_argument with
     * a precise message.  The Network constructor runs the same
     * checks, so anything this accepts will construct.
     */
    void validate() const;

    /**
     * The cross-field checks given already-built geometry and routing
     * (the Network constructor path -- validate() minus rebuilding
     * the lattice, pattern and routing, so permfiles are read once).
     */
    void validateWith(const Lattice &lat,
                      const router::RoutingFunction &routing_fn) const;

    /** Uniform-traffic capacity (flits/node/cycle, bisection bound);
     *  throws on an unknown topology or bad radix. */
    double capacity() const;

    /** Offered load as a fraction of uniform-traffic capacity. */
    double offeredFraction() const { return injectionRate / capacity(); }

    /** Set the injection rate from a fraction of capacity. */
    void setOfferedFraction(double f) { injectionRate = f * capacity(); }
};

bool operator==(const NetworkConfig &a, const NetworkConfig &b);
inline bool
operator!=(const NetworkConfig &a, const NetworkConfig &b)
{
    return !(a == b);
}

/** The simulated network. */
class Network
{
  public:
    using FlitChannel = sim::Channel<sim::FlitRef>;
    using CreditChannel = sim::Channel<sim::Credit>;

    explicit Network(const NetworkConfig &cfg);

    // Components hold pointers into the channel slabs and the wake
    // table, so a constructed network is pinned in place.
    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Advance one cycle (sources, routers, sinks).  Never jumps the
     *  clock: lockstep harnesses rely on step() == one cycle. */
    void step();

    /** Advance n cycles, fast-forwarding through idle regions (same
     *  end state as n step() calls; see skipIdle). */
    void run(sim::Cycle n);

    /** Advance to cycle `limit`, fast-forwarding through idle
     *  regions. */
    void stepTo(sim::Cycle limit);

    // ----- clock fast-forward ----------------------------------------

    /**
     * Earliest entry in the wake table: the next cycle at which any
     * component can do observable work.  CycleNever when the whole
     * network is at a fixed point.
     */
    sim::Cycle nextWakeCycle() const;

    /**
     * Fast-forward the clock to min(nextWakeCycle(), limit) without
     * ticking anything; returns the new now().  A no-op when some
     * component is due now (or when forceTickAll is on -- the naive
     * schedule never jumps).  Skipped cycles are provable no-ops for
     * every component: wake entries are exact (see Router::nextWake /
     * Source::nextWake), statistics are interval-accounted, and
     * sources replay their skipped RNG draws on their next tick, so
     * the post-jump state is bit-identical to stepping cycle by
     * cycle.
     */
    sim::Cycle skipIdle(sim::Cycle limit);

    /** Jump the clock to `t` (>= now) without ticking.  Exposed for
     *  the parallel stepper, which decides jumps on worker 0 between
     *  cycle barriers; use skipIdle() otherwise. */
    void
    advanceTo(sim::Cycle t)
    {
        pdr_assert(t >= now_);
        now_ = t;
    }

    // ----- partition-sliced stepping (par::ParallelStepper) ----------
    //
    // One serial step() is exactly tickSources(0, N) + tickRouters(0,
    // R) + tickSinks(0, N) + finishCycle().  The stepper calls the
    // slice of each phase on its owning worker instead; slices only
    // touch the wake-table entries and components of their own range,
    // and channels crossing a partition boundary are switched to
    // staged mode, so concurrent slices never race.

    /** Tick sources [lo, hi) at the current cycle, honoring (and
     *  updating) their wake-table slice. */
    void tickSources(sim::NodeId lo, sim::NodeId hi);
    /** Tick routers [lo, hi) likewise. */
    void tickRouters(sim::NodeId lo, sim::NodeId hi);
    /** Tick sinks [lo, hi) likewise. */
    void tickSinks(sim::NodeId lo, sim::NodeId hi);
    /** Advance the cycle counter after all phases of a cycle ran. */
    void finishCycle() { now_++; }

    // ----- channel topology view (partition boundary discovery) ------

    std::size_t numFlitChans() const { return flitChans_.size(); }
    FlitChannel &flitChan(std::size_t i) { return flitChans_[i]; }
    /** Wake-table component id of the channel's single producer. */
    std::size_t flitChanProducer(std::size_t i) const
    {
        return flitProducer_[i];
    }
    /** Wake-table component id of the channel's single consumer. */
    std::size_t flitChanConsumer(std::size_t i) const
    {
        return flitConsumer_[i];
    }
    std::size_t numCreditChans() const { return creditChans_.size(); }
    CreditChannel &creditChan(std::size_t i) { return creditChans_[i]; }
    std::size_t creditChanProducer(std::size_t i) const
    {
        return creditProducer_[i];
    }
    std::size_t creditChanConsumer(std::size_t i) const
    {
        return creditConsumer_[i];
    }

    /** Wake-table index of source / router / sink (the component-id
     *  space the channel producer/consumer views use). */
    std::size_t srcComp(sim::NodeId node) const
    {
        return std::size_t(node);
    }
    std::size_t rtrComp(sim::NodeId r) const
    {
        return std::size_t(mesh_.numNodes() + r);
    }
    std::size_t snkComp(sim::NodeId node) const
    {
        return std::size_t(mesh_.numNodes() + mesh_.numRouters() +
                           node);
    }

    /**
     * Upper bound on simultaneously live flits (router buffering plus
     * channel occupancy), used to pre-reserve the flit pool so sharded
     * slab growth never reallocates under concurrent readers.
     */
    std::size_t maxLiveFlits() const;

    /**
     * Disable activity-driven scheduling: tick every component every
     * cycle (the naive schedule).  Simulated behavior is identical
     * either way -- this exists so equivalence tests can step a
     * skipping and a non-skipping network in lockstep and compare.
     */
    void forceTickAll(bool on);

    /** Append every delivered packet (network-wide, in ejection
     *  order) to `trace`; nullptr disables. */
    void recordDeliveries(std::vector<traffic::Delivery> *trace);

    /** The trace last set by recordDeliveries (the stepper re-shards
     *  it per worker and merges back in node order). */
    std::vector<traffic::Delivery> *deliveryTrace() const
    {
        return trace_;
    }

    /** Bumped by every recordDeliveries call -- even one re-passing
     *  the same pointer re-points the sinks, so the stepper keys its
     *  shard rebinding off this, not the pointer value. */
    std::uint64_t deliveryTraceGen() const { return traceGen_; }

    /**
     * Count router ticks into `weights` (one slot per router, index
     * order, incremented on every actual tick); nullptr disables.
     * Observational (the engine profiler's tick-weight signal): the
     * tick schedule is a pure function of the wake table, so the
     * counts are deterministic and byte-identical across worker
     * counts, and workers own disjoint router ranges so the
     * increments never share a slot.
     */
    void profileTickWeights(std::vector<std::uint64_t> *weights)
    {
        tickWeights_ = weights;
    }

    sim::Cycle now() const { return now_; }
    const NetworkConfig &config() const { return cfg_; }
    const Lattice &lattice() const { return mesh_; }
    traffic::MeasureController &controller() { return ctrl_; }

    /** The flit storage pool (diagnostics: live count, capacity). */
    const sim::FlitPool &flitPool() const { return pool_; }
    /** Mutable pool access (the stepper shards its freelists). */
    sim::FlitPool &flitPool() { return pool_; }

    /** Router `r` of the lattice (r in [0, numRouters)). */
    router::Router &routerAt(sim::NodeId r) { return routers_[r]; }
    const router::Router &routerAt(sim::NodeId r) const
    {
        return routers_[r];
    }
    /** Source / sink of terminal node `n` (n in [0, numNodes)). */
    traffic::Source &sourceAt(sim::NodeId n) { return sources_[n]; }
    const traffic::Sink &sinkAt(sim::NodeId n) const
    {
        return sinks_[n];
    }
    /** Mutable sink access (the stepper re-points delivery traces). */
    traffic::Sink &sinkRefAt(sim::NodeId n) { return sinks_[n]; }

    /** Merged latency statistics over the sample space. */
    stats::LatencyStats latency() const;

    /** Accepted traffic since warm-up, in flits per node per cycle. */
    double acceptedFlitRate() const;

    // ----- telemetry sampling hooks (read-only aggregates) -----------

    /** Flits delivered at all sinks since cycle 0 (telemetry window
     *  deltas; warm-up traffic included, unlike measuredFlits). */
    std::uint64_t deliveredFlits() const;
    /** Complete packets delivered at all sinks since cycle 0. */
    std::uint64_t deliveredPackets() const;

    /** Accepted traffic as a fraction of uniform capacity. */
    double acceptedFraction() const
    {
        return acceptedFlitRate() / mesh_.uniformCapacity();
    }

    /** Aggregate router statistics, with still-open credit-stall
     *  intervals flushed through now() (Router::statsAt), so totals
     *  match the tick-everything schedule even when routers are
     *  asleep mid-stall. */
    router::RouterStats routerTotals() const;

    /** All routers idle, sources drained (diagnostics).  Replays any
     *  lazily deferred source arrival draws first, so backlog reads
     *  match the tick-everything schedule. */
    bool quiescent();

    // ----- runtime invariant auditor (sim::Auditor) ------------------

    /** The auditor is active: step() cross-checks the wake table and
     *  credit conservation every cycle. */
    bool auditEnabled() const { return auditor_ != nullptr; }

    /** The auditor (check counters); nullptr when auditing is off. */
    const sim::Auditor *auditor() const { return auditor_.get(); }

    /**
     * [AUD-LEAK] Verify that every live flit-pool slot is reachable
     * from some queue (channel in flight or router FIFO) -- an
     * unreachable live slot was allocated and lost.  Throws
     * sim::AuditError naming the leaked slots.  Call before
     * destruction (runSimulation does when auditing is on); requires
     * auditEnabled().
     */
    void auditTeardown();

    /** Human-readable name of wake-table slot `comp` ("source 3",
     *  "router 12", "sink 0") for diagnostics. */
    std::string componentName(std::size_t comp) const;

    /**
     * TEST ONLY: overwrite a wake-table entry, simulating a component
     * whose nextWake() under-reports (the hazard class the auditor
     * exists to catch).  tests/sim/test_audit.cc plants a future wake
     * over a component with matured input and expects the next step()
     * to throw [AUD-WAKE].
     */
    void
    setWakeAtForTest(std::size_t comp, sim::Cycle t)
    {
        wakeAt_[comp] = t;
    }

  private:
    NetworkConfig cfg_;
    Lattice mesh_;
    std::unique_ptr<router::RoutingFunction> routing_;
    traffic::MeasureController ctrl_;
    std::unique_ptr<traffic::TrafficPattern> pattern_;

    sim::FlitPool pool_;

    // Contiguous slabs, reserved exactly in the constructor and never
    // resized afterwards (components hand out interior pointers).
    std::vector<FlitChannel> flitChans_;
    std::vector<CreditChannel> creditChans_;
    /** Component ids of each channel's producer / consumer (partition
     *  boundary discovery; same index space as the slabs above). */
    std::vector<std::size_t> flitProducer_, flitConsumer_;
    std::vector<std::size_t> creditProducer_, creditConsumer_;
    std::vector<router::Router> routers_;
    std::vector<traffic::Source> sources_;
    std::vector<traffic::Sink> sinks_;
    std::vector<stats::LatencyStats> sinkLatency_;

    /**
     * Per-component wake times, indexed [sources | routers | sinks]
     * (numNodes + numRouters + numNodes entries): component i runs at
     * cycle t iff wakeAt_[i] <= t.  Channel pushes lower entries
     * (Channel::watch); after each tick the component reports its own
     * next wake.
     */
    std::vector<sim::Cycle> wakeAt_;
    bool forceTickAll_ = false;

    sim::Cycle now_ = 0;

    std::vector<traffic::Delivery> *trace_ = nullptr;
    std::uint64_t traceGen_ = 0;

    /** Per-router tick-weight sink (engine profiler); see
     *  profileTickWeights(). */
    std::vector<std::uint64_t> *tickWeights_ = nullptr;

    // ----- invariant auditing (allocated only when enabled) ----------

    /** One credit-conserving hop: the flit channel and its reverse
     *  credit channel between an upstream credit holder (router
     *  output or source) and a downstream input FIFO. */
    struct AuditLink
    {
        sim::NodeId upRouter;   //!< Upstream router; Invalid = source.
        sim::NodeId upNode;     //!< Source node when upRouter Invalid.
        int outPort;            //!< Upstream output port (routers).
        sim::NodeId downRouter; //!< Downstream router id.
        int inPort;             //!< Downstream input port.
        std::size_t flitChan;   //!< Index into flitChans_.
        std::size_t creditChan; //!< Index into creditChans_.
    };

    std::unique_ptr<sim::Auditor> auditor_;
    std::vector<AuditLink> auditLinks_;

    /** Per-cycle checks, run by step() before the tick phases:
     *  [AUD-WAKE] no consumer sleeps past a matured channel item;
     *  [AUD-CREDIT] every link VC conserves its buffer depth. */
    void auditCycle();

    FlitChannel *newFlitChan(sim::Cycle latency, std::size_t producer,
                             std::size_t consumer);
    CreditChannel *newCreditChan(sim::Cycle latency,
                                 std::size_t producer,
                                 std::size_t consumer);
};

} // namespace pdr::net

#endif // PDR_NET_NETWORK_HH
