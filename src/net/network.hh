/**
 * @file
 * A complete k x k mesh network: routers, link and credit channels,
 * per-node sources and sinks, and aggregate statistics.
 *
 * The network mirrors the paper's simulation setup: an 8x8 mesh,
 * dimension-ordered routing, credit-based flow control, 1-cycle channel
 * propagation (credit propagation independently configurable for the
 * Figure-18 experiment), constant-rate sources injecting fixed-length
 * packets, and immediate ejection at the destination.
 */

#ifndef PDR_NET_NETWORK_HH
#define PDR_NET_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "net/registry.hh"
#include "net/topology.hh"
#include "router/router.hh"
#include "stats/latency.hh"
#include "traffic/measure.hh"
#include "traffic/sink.hh"
#include "traffic/source.hh"

namespace pdr::net {

/**
 * Full-network configuration.  The scenario axes (topology, routing
 * function, traffic pattern) are string keys into the corresponding
 * registries, so externally registered scenarios are reachable from
 * experiment files without touching this struct.  Invalid values throw
 * std::invalid_argument at Network construction (or earlier, from
 * api::params::validate).
 */
struct NetworkConfig
{
    int k = 8;                          //!< Radix (k x k nodes).
    std::string topology = "mesh";      //!< TopologyRegistry name.
    /** RoutingRegistry name; "auto" picks the topology's default
     *  ("xy" on the mesh, "dateline" on the torus). */
    std::string routing = "auto";
    router::RouterConfig router;        //!< Per-router configuration.
    sim::Cycle linkLatency = 1;         //!< Flit propagation (cycles).
    sim::Cycle creditLatency = 1;       //!< Credit propagation (cycles).
    double injectionRate = 0.1;         //!< Offered flits/node/cycle.
    int packetLength = 5;               //!< Flits per packet.
    std::string pattern = "uniform";    //!< PatternRegistry name.
    std::uint64_t seed = 1;
    sim::Cycle warmup = 10000;          //!< Warm-up cycles.
    std::uint64_t samplePackets = 100000; //!< Sample-space size.

    /** The routing name after resolving "auto" via the topology. */
    std::string resolvedRouting() const;

    /**
     * Full cross-field validation without building the network:
     * registry names, router constraints, topology/routing/pattern
     * compatibility, rate ranges.  Throws std::invalid_argument with
     * a precise message.  The Network constructor runs the same
     * checks, so anything this accepts will construct.
     */
    void validate() const;

    /** Uniform-traffic capacity (flits/node/cycle, bisection bound);
     *  throws on an unknown topology or bad radix. */
    double capacity() const;

    /** Offered load as a fraction of uniform-traffic capacity. */
    double offeredFraction() const { return injectionRate / capacity(); }

    /** Set the injection rate from a fraction of capacity. */
    void setOfferedFraction(double f) { injectionRate = f * capacity(); }
};

bool operator==(const NetworkConfig &a, const NetworkConfig &b);
inline bool
operator!=(const NetworkConfig &a, const NetworkConfig &b)
{
    return !(a == b);
}

/** The simulated network. */
class Network
{
  public:
    explicit Network(const NetworkConfig &cfg);

    /** Advance one cycle (sources, routers, sinks). */
    void step();

    /** Advance n cycles. */
    void run(sim::Cycle n);

    sim::Cycle now() const { return now_; }
    const NetworkConfig &config() const { return cfg_; }
    const Mesh &mesh() const { return mesh_; }
    traffic::MeasureController &controller() { return ctrl_; }

    router::Router &routerAt(sim::NodeId n) { return *routers_[n]; }
    traffic::Source &sourceAt(sim::NodeId n) { return *sources_[n]; }
    const traffic::Sink &sinkAt(sim::NodeId n) const
    {
        return *sinks_[n];
    }

    /** Merged latency statistics over the sample space. */
    stats::LatencyStats latency() const;

    /** Accepted traffic since warm-up, in flits per node per cycle. */
    double acceptedFlitRate() const;

    /** Accepted traffic as a fraction of uniform capacity. */
    double acceptedFraction() const
    {
        return acceptedFlitRate() / mesh_.uniformCapacity();
    }

    /** Aggregate router statistics. */
    router::RouterStats routerTotals() const;

    /** All routers idle, sources drained (diagnostics). */
    bool quiescent() const;

  private:
    using FlitChannel = sim::Channel<sim::Flit>;
    using CreditChannel = sim::Channel<sim::Credit>;

    NetworkConfig cfg_;
    Mesh mesh_;
    std::unique_ptr<router::RoutingFunction> routing_;
    traffic::MeasureController ctrl_;
    std::unique_ptr<traffic::TrafficPattern> pattern_;

    std::vector<std::unique_ptr<FlitChannel>> flitChans_;
    std::vector<std::unique_ptr<CreditChannel>> creditChans_;
    std::vector<std::unique_ptr<router::Router>> routers_;
    std::vector<std::unique_ptr<traffic::Source>> sources_;
    std::vector<std::unique_ptr<traffic::Sink>> sinks_;
    std::vector<std::unique_ptr<stats::LatencyStats>> sinkLatency_;

    sim::Cycle now_ = 0;

    FlitChannel *newFlitChan(sim::Cycle latency);
    CreditChannel *newCreditChan(sim::Cycle latency);
};

} // namespace pdr::net

#endif // PDR_NET_NETWORK_HH
