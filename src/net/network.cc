#include "net/network.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace pdr::net {

std::string
NetworkConfig::resolvedRouting() const
{
    if (routing != "auto")
        return routing;
    return TopologyRegistry::instance().at(topology).defaultRouting;
}

double
NetworkConfig::capacity() const
{
    return TopologyRegistry::instance().at(topology).make(k)
        .uniformCapacity();
}

bool
operator==(const NetworkConfig &a, const NetworkConfig &b)
{
    return a.k == b.k && a.topology == b.topology &&
           a.routing == b.routing && a.router == b.router &&
           a.linkLatency == b.linkLatency &&
           a.creditLatency == b.creditLatency &&
           a.injectionRate == b.injectionRate &&
           a.packetLength == b.packetLength &&
           a.pattern == b.pattern && a.seed == b.seed &&
           a.warmup == b.warmup && a.samplePackets == b.samplePackets;
}

void
NetworkConfig::validate() const
{
    router.validate();
    auto mesh = TopologyRegistry::instance().at(topology).make(k);
    if (router.numPorts != NumPorts) {
        throw std::invalid_argument(csprintf(
            "router.num_ports: mesh routers need %d ports, got %d",
            int(NumPorts), router.numPorts));
    }
    // Negated comparison so NaN is rejected too.
    if (!(injectionRate >= 0.0 && injectionRate <= 1.0)) {
        throw std::invalid_argument(csprintf(
            "traffic.injection_rate %.3f out of [0, 1] "
            "flits/node/cycle", injectionRate));
    }
    if (packetLength < 1) {
        throw std::invalid_argument(csprintf(
            "traffic.packet_length must be >= 1, got %d",
            packetLength));
    }
    // Wraparound rings need the dateline VC classes: at least two
    // VCs, and hence a virtual-channel flow control method.
    if (mesh.wraps() && router.numVcs < 2) {
        throw std::invalid_argument(
            "torus networks need >= 2 VCs per channel for dateline "
            "deadlock avoidance (wormhole routers cannot run a torus "
            "deadlock-free)");
    }
    (void)traffic::makePattern(pattern, k);
    (void)RoutingRegistry::instance().at(resolvedRouting())(mesh);
}

Network::Network(const NetworkConfig &cfg)
    : cfg_(cfg),
      mesh_(TopologyRegistry::instance().at(cfg.topology).make(cfg.k)),
      ctrl_(cfg.warmup, cfg.samplePackets),
      pattern_(traffic::makePattern(cfg.pattern, cfg.k))
{
    cfg_.validate();
    routing_ =
        RoutingRegistry::instance().at(cfg_.resolvedRouting())(mesh_);

    int n = mesh_.numNodes();
    wakeAt_.assign(std::size_t(3 * n), 0);  // Everyone runs at cycle 0.

    // Count the directed inter-router links so every slab can be
    // reserved exactly; growing a slab later would invalidate the
    // channel pointers already handed to components.
    int edges = 0;
    for (sim::NodeId id = 0; id < n; id++)
        for (int port : {North, East})
            if (mesh_.neighbor(id, port) != sim::Invalid)
                edges += 2;
    flitChans_.reserve(std::size_t(edges + 2 * n));   // links+inj+ej
    creditChans_.reserve(std::size_t(edges + n));     // links+inj

    routers_.reserve(std::size_t(n));
    for (sim::NodeId id = 0; id < n; id++)
        routers_.emplace_back(id, cfg_.router, *routing_, pool_);

    // Inter-router links: one flit channel and one reverse credit
    // channel per directed edge (wrap links included on a torus).
    for (sim::NodeId id = 0; id < n; id++) {
        for (int port : {North, East}) {
            sim::NodeId nb = mesh_.neighbor(id, port);
            if (nb == sim::Invalid)
                continue;
            int rport = Mesh::opposite(port);

            // id --(port)--> nb
            auto *f1 = newFlitChan(cfg_.linkLatency, rtrComp(nb));
            auto *c1 = newCreditChan(cfg_.creditLatency, rtrComp(id));
            routers_[id].connectOutput(port, f1, c1, false);
            routers_[nb].connectInput(rport, f1, c1);

            // nb --(rport)--> id
            auto *f2 = newFlitChan(cfg_.linkLatency, rtrComp(id));
            auto *c2 = newCreditChan(cfg_.creditLatency, rtrComp(nb));
            routers_[nb].connectOutput(rport, f2, c2, false);
            routers_[id].connectInput(port, f2, c2);
        }
    }

    // Sources and sinks on the local port.
    sources_.reserve(std::size_t(n));
    sinks_.reserve(std::size_t(n));
    sinkLatency_.resize(std::size_t(n));
    traffic::SourceConfig scfg;
    scfg.numVcs = cfg_.router.numVcs;
    scfg.bufDepth = cfg_.router.bufDepth;
    scfg.packetLength = cfg_.packetLength;
    scfg.packetRate = cfg_.injectionRate / cfg_.packetLength;
    scfg.seed = cfg_.seed;

    for (sim::NodeId id = 0; id < n; id++) {
        auto *inj = newFlitChan(1, rtrComp(id));
        auto *inj_credit = newCreditChan(1, srcComp(id));
        routers_[id].connectInput(Local, inj, inj_credit);
        sources_.emplace_back(id, scfg, *pattern_, ctrl_, pool_, inj,
                              inj_credit);

        auto *ej = newFlitChan(1, snkComp(id));
        routers_[id].connectOutput(Local, ej, nullptr, true);
        sinks_.emplace_back(id, cfg_.packetLength, ctrl_, pool_, ej,
                            sinkLatency_[id]);
    }

    pdr_assert(int(flitChans_.size()) == edges + 2 * n);
    pdr_assert(int(creditChans_.size()) == edges + n);
}

Network::FlitChannel *
Network::newFlitChan(sim::Cycle latency, std::size_t consumer)
{
    pdr_assert(flitChans_.size() < flitChans_.capacity());
    flitChans_.emplace_back(latency);
    flitChans_.back().watch(&wakeAt_, consumer);
    return &flitChans_.back();
}

Network::CreditChannel *
Network::newCreditChan(sim::Cycle latency, std::size_t consumer)
{
    pdr_assert(creditChans_.size() < creditChans_.capacity());
    creditChans_.emplace_back(latency);
    creditChans_.back().watch(&wakeAt_, consumer);
    return &creditChans_.back();
}

void
Network::forceTickAll(bool on)
{
    forceTickAll_ = on;
    if (!on) {
        // Re-arm the schedule: wake everything, components re-report
        // their real wake times after the next tick.
        std::fill(wakeAt_.begin(), wakeAt_.end(), now_);
    }
}

void
Network::recordDeliveries(std::vector<traffic::Delivery> *trace)
{
    for (auto &s : sinks_)
        s.recordDeliveries(trace);
}

void
Network::step()
{
    // Components communicate only through >= 1 cycle channels, so the
    // order within a cycle is immaterial; sources / routers / sinks is
    // the natural reading order.  A component whose wake time has not
    // come provably does nothing this cycle (its inputs are empty and
    // its own state is at a fixed point), so it is skipped; channel
    // pushes during this cycle lower wake times for later cycles only
    // (latency >= 1), never for the current one.
    int n = mesh_.numNodes();
    if (forceTickAll_) {
        for (auto &s : sources_)
            s.tick(now_);
        for (auto &r : routers_)
            r.tick(now_);
        for (auto &s : sinks_)
            s.tick(now_);
        now_++;
        return;
    }

    for (sim::NodeId i = 0; i < n; i++) {
        if (wakeAt_[srcComp(i)] <= now_) {
            sources_[i].tick(now_);
            wakeAt_[srcComp(i)] = sources_[i].nextWake(now_);
        }
    }
    for (sim::NodeId i = 0; i < n; i++) {
        if (wakeAt_[rtrComp(i)] <= now_) {
            routers_[i].tick(now_);
            wakeAt_[rtrComp(i)] = routers_[i].nextWake(now_);
        }
    }
    for (sim::NodeId i = 0; i < n; i++) {
        if (wakeAt_[snkComp(i)] <= now_) {
            sinks_[i].tick(now_);
            wakeAt_[snkComp(i)] = sinks_[i].nextWake();
        }
    }
    now_++;
}

void
Network::run(sim::Cycle n)
{
    for (sim::Cycle i = 0; i < n; i++)
        step();
}

stats::LatencyStats
Network::latency() const
{
    return stats::LatencyStats::merged(sinkLatency_);
}

double
Network::acceptedFlitRate() const
{
    if (now_ <= cfg_.warmup)
        return 0.0;
    std::uint64_t flits = 0;
    for (const auto &s : sinks_)
        flits += s.measuredFlits();
    double cycles = double(now_ - cfg_.warmup);
    return double(flits) / (cycles * mesh_.numNodes());
}

router::RouterStats
Network::routerTotals() const
{
    router::RouterStats t;
    for (const auto &r : routers_) {
        const auto &s = r.stats();
        t.flitsIn += s.flitsIn;
        t.flitsOut += s.flitsOut;
        t.headGrants += s.headGrants;
        t.vaGrants += s.vaGrants;
        t.specSaAttempts += s.specSaAttempts;
        t.specSaWins += s.specSaWins;
        t.specSaUseful += s.specSaUseful;
        t.creditStallCycles += s.creditStallCycles;
    }
    return t;
}

bool
Network::quiescent() const
{
    for (const auto &r : routers_)
        if (!r.quiescent())
            return false;
    for (const auto &s : sources_)
        if (s.backlog() != 0)
            return false;
    for (const auto &c : flitChans_)
        if (!c.empty())
            return false;
    return true;
}

} // namespace pdr::net
