#include "net/network.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace pdr::net {

std::string
NetworkConfig::resolvedRouting() const
{
    if (routing != "auto")
        return routing;
    return TopologyRegistry::instance().at(topology).defaultRouting;
}

Lattice
NetworkConfig::makeLattice() const
{
    return TopologyRegistry::instance().at(topology).make(k);
}

double
NetworkConfig::capacity() const
{
    return makeLattice().uniformCapacity();
}

bool
operator==(const NetworkConfig &a, const NetworkConfig &b)
{
    return a.k == b.k && a.topology == b.topology &&
           a.routing == b.routing && a.router == b.router &&
           a.linkLatency == b.linkLatency &&
           a.creditLatency == b.creditLatency &&
           a.injectionRate == b.injectionRate &&
           a.packetLength == b.packetLength &&
           a.burstOn == b.burstOn && a.burstOff == b.burstOff &&
           a.pattern == b.pattern && a.permfile == b.permfile &&
           a.seed == b.seed && a.warmup == b.warmup &&
           a.samplePackets == b.samplePackets && a.audit == b.audit;
}

void
NetworkConfig::validate() const
{
    Lattice lat = makeLattice();
    (void)traffic::makePattern(pattern, {lat, permfile});
    auto routing_fn =
        RoutingRegistry::instance().at(resolvedRouting())(lat);
    validateWith(lat, *routing_fn);
}

void
NetworkConfig::validateWith(const Lattice &lat,
                            const router::RoutingFunction &routing_fn)
    const
{
    router.validate();
    if (router.numPorts != 0 && router.numPorts != lat.numPorts()) {
        throw std::invalid_argument(csprintf(
            "router.num_ports: topology '%s' routers need %d ports "
            "(or 0 = derive from the topology), got %d",
            topology.c_str(), lat.numPorts(), router.numPorts));
    }
    // Negated comparison so NaN is rejected too.
    if (!(injectionRate >= 0.0 && injectionRate <= 1.0)) {
        throw std::invalid_argument(csprintf(
            "traffic.injection_rate %.3f out of [0, 1] "
            "flits/node/cycle", injectionRate));
    }
    if (packetLength < 1) {
        throw std::invalid_argument(csprintf(
            "traffic.packet_length must be >= 1, got %d",
            packetLength));
    }
    if ((burstOn > 0.0) != (burstOff > 0.0)) {
        throw std::invalid_argument(
            "traffic.burst_on and traffic.burst_off must both be set "
            "(> 0) or both be 0");
    }
    if (burstOn > 0.0 && (burstOn < 1.0 || burstOff < 1.0)) {
        throw std::invalid_argument(csprintf(
            "traffic.burst_on / traffic.burst_off are mean state dwell "
            "times and must be >= 1 cycle, got %.3f / %.3f", burstOn,
            burstOff));
    }
    // Wraparound rings need the dateline VC classes, randomized
    // oblivious routings a class per order/phase -- each routing knows
    // its own requirement.
    if (router.numVcs < routing_fn.minVcs()) {
        throw std::invalid_argument(csprintf(
            "net.routing=%s on topology '%s' needs >= %d VCs per "
            "channel for dateline/class deadlock avoidance, got %d "
            "(wormhole routers cannot run a torus deadlock-free)",
            resolvedRouting().c_str(), topology.c_str(),
            routing_fn.minVcs(), router.numVcs));
    }
}

Network::Network(const NetworkConfig &cfg)
    : cfg_(cfg),
      mesh_(cfg.makeLattice()),
      ctrl_(cfg.warmup, cfg.samplePackets),
      pattern_(traffic::makePattern(cfg.pattern,
                                    {mesh_, cfg.permfile}))
{
    routing_ =
        RoutingRegistry::instance().at(cfg_.resolvedRouting())(mesh_);
    cfg_.validateWith(mesh_, *routing_);
    cfg_.router.numPorts = mesh_.numPorts();  // Resolve 0 = auto.

    if (cfg_.audit || sim::Auditor::envEnabled())
        auditor_ = std::make_unique<sim::Auditor>();

    int routers = mesh_.numRouters();
    int nodes = mesh_.numNodes();
    int dims = mesh_.dims();
    // Everyone runs at cycle 0.
    wakeAt_.assign(std::size_t(2 * nodes + routers), 0);

    // Count the directed inter-router links so every slab can be
    // reserved exactly; growing a slab later would invalidate the
    // channel pointers already handed to components.
    int edges = 0;
    for (sim::NodeId id = 0; id < routers; id++)
        for (int port = 0; port < dims; port++)
            if (mesh_.neighbor(id, port) != sim::Invalid)
                edges += 2;
    flitChans_.reserve(std::size_t(edges + 2 * nodes));  // links+inj+ej
    creditChans_.reserve(std::size_t(edges + nodes));    // links+inj

    routers_.reserve(std::size_t(routers));
    for (sim::NodeId id = 0; id < routers; id++)
        routers_.emplace_back(id, cfg_.router, *routing_, pool_);

    // Inter-router links: one flit channel and one reverse credit
    // channel per directed edge (wrap links included on a torus).
    // Ports [0, dims) are the plus directions, so every undirected
    // edge is visited exactly once.
    for (sim::NodeId id = 0; id < routers; id++) {
        for (int port = 0; port < dims; port++) {
            sim::NodeId nb = mesh_.neighbor(id, port);
            if (nb == sim::Invalid)
                continue;
            int rport = mesh_.opposite(port);

            // id --(port)--> nb
            auto *f1 = newFlitChan(cfg_.linkLatency, rtrComp(id),
                                   rtrComp(nb));
            auto *c1 = newCreditChan(cfg_.creditLatency, rtrComp(nb),
                                     rtrComp(id));
            routers_[id].connectOutput(port, f1, c1, false);
            routers_[nb].connectInput(rport, f1, c1);
            if (auditor_) {
                auditLinks_.push_back({id, sim::Invalid, port, nb,
                                       rport, flitChans_.size() - 1,
                                       creditChans_.size() - 1});
            }

            // nb --(rport)--> id
            auto *f2 = newFlitChan(cfg_.linkLatency, rtrComp(nb),
                                   rtrComp(id));
            auto *c2 = newCreditChan(cfg_.creditLatency, rtrComp(id),
                                     rtrComp(nb));
            routers_[nb].connectOutput(rport, f2, c2, false);
            routers_[id].connectInput(port, f2, c2);
            if (auditor_) {
                auditLinks_.push_back({nb, sim::Invalid, rport, id,
                                       port, flitChans_.size() - 1,
                                       creditChans_.size() - 1});
            }
        }
    }

    // Sources and sinks on the local ports (one per hosted node).
    sources_.reserve(std::size_t(nodes));
    sinks_.reserve(std::size_t(nodes));
    sinkLatency_.resize(std::size_t(nodes));
    traffic::SourceConfig scfg;
    scfg.numVcs = cfg_.router.numVcs;
    scfg.bufDepth = cfg_.router.bufDepth;
    scfg.packetLength = cfg_.packetLength;
    scfg.packetRate = cfg_.injectionRate / cfg_.packetLength;
    scfg.burstOn = cfg_.burstOn;
    scfg.burstOff = cfg_.burstOff;
    scfg.seed = cfg_.seed;
    scfg.routing = routing_.get();

    for (sim::NodeId node = 0; node < nodes; node++) {
        sim::NodeId r = mesh_.routerOf(node);
        int lport = mesh_.localPort(mesh_.localIndexOf(node));

        auto *inj = newFlitChan(1, srcComp(node), rtrComp(r));
        auto *inj_credit = newCreditChan(1, rtrComp(r), srcComp(node));
        routers_[r].connectInput(lport, inj, inj_credit);
        sources_.emplace_back(node, scfg, *pattern_, ctrl_, pool_, inj,
                              inj_credit);
        if (auditor_) {
            auditLinks_.push_back({sim::Invalid, node, sim::Invalid, r,
                                   lport, flitChans_.size() - 1,
                                   creditChans_.size() - 1});
        }

        auto *ej = newFlitChan(1, rtrComp(r), snkComp(node));
        routers_[r].connectOutput(lport, ej, nullptr, true);
        sinks_.emplace_back(node, cfg_.packetLength, ctrl_, pool_, ej,
                            sinkLatency_[node]);
    }

    pdr_assert(int(flitChans_.size()) == edges + 2 * nodes);
    pdr_assert(int(creditChans_.size()) == edges + nodes);
}

Network::FlitChannel *
Network::newFlitChan(sim::Cycle latency, std::size_t producer,
                     std::size_t consumer)
{
    pdr_assert(flitChans_.size() < flitChans_.capacity());
    flitChans_.emplace_back(latency);
    flitChans_.back().watch(&wakeAt_, consumer);
    flitProducer_.push_back(producer);
    flitConsumer_.push_back(consumer);
    return &flitChans_.back();
}

Network::CreditChannel *
Network::newCreditChan(sim::Cycle latency, std::size_t producer,
                       std::size_t consumer)
{
    pdr_assert(creditChans_.size() < creditChans_.capacity());
    creditChans_.emplace_back(latency);
    creditChans_.back().watch(&wakeAt_, consumer);
    creditProducer_.push_back(producer);
    creditConsumer_.push_back(consumer);
    return &creditChans_.back();
}

void
Network::forceTickAll(bool on)
{
    forceTickAll_ = on;
    if (!on) {
        // Re-arm the schedule: wake everything, components re-report
        // their real wake times after the next tick.
        std::fill(wakeAt_.begin(), wakeAt_.end(), now_);
    }
}

void
Network::recordDeliveries(std::vector<traffic::Delivery> *trace)
{
    trace_ = trace;
    traceGen_++;
    for (auto &s : sinks_)
        s.recordDeliveries(trace);
}

void
Network::tickSources(sim::NodeId lo, sim::NodeId hi)
{
    for (sim::NodeId i = lo; i < hi; i++) {
        if (forceTickAll_) {
            sources_[i].tick(now_);
        } else if (wakeAt_[srcComp(i)] <= now_) {
            sources_[i].tick(now_);
            wakeAt_[srcComp(i)] = sources_[i].nextWake(now_);
        }
    }
}

void
Network::tickRouters(sim::NodeId lo, sim::NodeId hi)
{
    for (sim::NodeId i = lo; i < hi; i++) {
        if (forceTickAll_) {
            routers_[i].tick(now_);
        } else if (wakeAt_[rtrComp(i)] <= now_) {
            routers_[i].tick(now_);
            wakeAt_[rtrComp(i)] = routers_[i].nextWake(now_);
        } else {
            continue;
        }
        if (tickWeights_)
            (*tickWeights_)[std::size_t(i)]++;
    }
}

void
Network::tickSinks(sim::NodeId lo, sim::NodeId hi)
{
    for (sim::NodeId i = lo; i < hi; i++) {
        if (forceTickAll_) {
            sinks_[i].tick(now_);
        } else if (wakeAt_[snkComp(i)] <= now_) {
            sinks_[i].tick(now_);
            wakeAt_[snkComp(i)] = sinks_[i].nextWake();
        }
    }
}

void
Network::step()
{
    // Components communicate only through >= 1 cycle channels, so the
    // order within a cycle is immaterial; sources / routers / sinks is
    // the natural reading order.  A component whose wake time has not
    // come provably does nothing this cycle (its inputs are empty and
    // its own state is at a fixed point), so it is skipped; channel
    // pushes during this cycle lower wake times for later cycles only
    // (latency >= 1), never for the current one.
    if (auditor_)
        auditCycle();
    tickSources(0, mesh_.numNodes());
    tickRouters(0, mesh_.numRouters());
    tickSinks(0, mesh_.numNodes());
    now_++;
}

std::string
Network::componentName(std::size_t comp) const
{
    std::size_t nodes = std::size_t(mesh_.numNodes());
    std::size_t routers = std::size_t(mesh_.numRouters());
    if (comp < nodes)
        return csprintf("source %zu", comp);
    if (comp < nodes + routers)
        return csprintf("router %zu", comp - nodes);
    pdr_assert(comp < 2 * nodes + routers);
    return csprintf("sink %zu", comp - nodes - routers);
}

void
Network::auditCycle()
{
    // Checks are counted in bulk and diagnostics built only on the
    // failure path -- the audited hot loop must not allocate.
    std::uint64_t checks = 0;

    // [AUD-WAKE] Wake-table exactness: no consumer may be scheduled to
    // sleep past an item in flight on a channel it consumes.  Under
    // forceTickAll the wake table is not maintained, so the check only
    // applies to the skipping schedule (whose correctness it proves).
    if (!forceTickAll_) {
        for (std::size_t i = 0; i < flitChans_.size(); i++) {
            sim::Cycle ready = flitChans_[i].nextReady();
            if (ready == sim::CycleNever)
                continue;
            checks++;
            if (wakeAt_[flitConsumer_[i]] > ready) {
                auditor_->fail(
                    now_, componentName(flitConsumer_[i]), "AUD-WAKE",
                    csprintf("sleeps until cycle %llu, past a flit in "
                             "flight ready at cycle %llu (broken "
                             "nextWake or missed Channel::watch)",
                             (unsigned long long)
                                 wakeAt_[flitConsumer_[i]],
                             (unsigned long long)ready));
            }
        }
        for (std::size_t i = 0; i < creditChans_.size(); i++) {
            sim::Cycle ready = creditChans_[i].nextReady();
            if (ready == sim::CycleNever)
                continue;
            checks++;
            if (wakeAt_[creditConsumer_[i]] > ready) {
                auditor_->fail(
                    now_, componentName(creditConsumer_[i]),
                    "AUD-WAKE",
                    csprintf("sleeps until cycle %llu, past a credit "
                             "in flight ready at cycle %llu (broken "
                             "nextWake or missed Channel::watch)",
                             (unsigned long long)
                                 wakeAt_[creditConsumer_[i]],
                             (unsigned long long)ready));
            }
        }
    }

    // [AUD-CREDIT] Conservation: for every link and VC, buffer slots
    // are split between usable upstream credits, credits maturing in
    // the upstream pipeline, credits on the wire, flits buffered in
    // the downstream FIFO and flits on the wire.  Every transition
    // moves a slot between buckets within one tick, so at every cycle
    // boundary the sum is exactly the configured buffer depth.
    const int depth = cfg_.router.bufDepth;
    for (const AuditLink &l : auditLinks_) {
        for (int v = 0; v < cfg_.router.numVcs; v++) {
            int held, maturing;
            if (l.upRouter != sim::Invalid) {
                held = routers_[l.upRouter].credits(l.outPort, v);
                maturing = routers_[l.upRouter].auditPendingCredits(
                    l.outPort, v);
            } else {
                held = sources_[l.upNode].auditCredits(v);
                maturing = sources_[l.upNode].auditPendingCredits(v);
            }
            int wire_credits = 0;
            creditChans_[l.creditChan].forEachInFlight(
                [&](sim::Cycle, const sim::Credit &c) {
                    if (c.vc == v)
                        wire_credits++;
                });
            int wire_flits = 0;
            flitChans_[l.flitChan].forEachInFlight(
                [&](sim::Cycle, sim::FlitRef r) {
                    if (pool_.get(r).vc == v)
                        wire_flits++;
                });
            int buffered =
                routers_[l.downRouter].auditBuffered(l.inPort, v);
            checks++;
            int sum =
                held + maturing + wire_credits + wire_flits + buffered;
            if (sum != depth) {
                std::string up =
                    l.upRouter != sim::Invalid
                        ? csprintf("router %d port %d", l.upRouter,
                                   l.outPort)
                        : csprintf("source %d", l.upNode);
                auditor_->fail(
                    now_, up, "AUD-CREDIT",
                    csprintf("VC %d toward router %d port %d: held %d "
                             "+ maturing %d + credits on wire %d + "
                             "flits on wire %d + buffered %d = %d, "
                             "expected buffer depth %d",
                             v, l.downRouter, l.inPort, held, maturing,
                             wire_credits, wire_flits, buffered, sum,
                             depth));
            }
        }
    }

    // [AUD-BID] Incremental allocation-bitset consistency: every
    // router's RouteWait/Active bid bitsets and free output-VC words
    // must equal a dense recompute from the per-VC pipeline state.
    // The bitsets are the router-internal analog of the wake table
    // (updated at the same mutation points), so a stale bit here is
    // the allocation-side dual of an AUD-WAKE violation.
    for (std::size_t i = 0; i < routers_.size(); i++) {
        checks++;
        std::string diag = routers_[i].auditBidState();
        if (!diag.empty()) {
            auditor_->fail(now_, csprintf("router %zu", i), "AUD-BID",
                           diag);
        }
    }

    auditor_->addChecks(checks);
}

void
Network::auditTeardown()
{
    pdr_assert(auditor_);
    // Every place a live flit handle can legally rest: in flight on a
    // flit channel or buffered in a router input FIFO (sources push
    // the flits they allocate within the same tick; sinks free on
    // arrival).
    std::vector<std::uint32_t> reachable;
    for (const auto &c : flitChans_)
        c.forEachInFlight([&](sim::Cycle, sim::FlitRef r) {
            reachable.push_back(r);
        });
    for (const auto &r : routers_)
        r.auditCollectFlits(reachable);
    auditor_->checkPoolLeaks(pool_, reachable, now_, "network");
}

std::size_t
Network::maxLiveFlits() const
{
    // Every live flit sits in a router input FIFO or an in-flight
    // channel slot.  A channel holds at most one push per cycle for
    // latency + ST-extra cycles (matured items are popped the cycle
    // they mature -- the wake table guarantees the consumer runs);
    // + 1 for the staging buffer of partitioned stepping and slack.
    std::size_t n = 0;
    n += std::size_t(mesh_.numRouters()) *
         std::size_t(cfg_.router.numPorts) *
         std::size_t(cfg_.router.numVcs) *
         std::size_t(cfg_.router.bufDepth);
    for (const auto &c : flitChans_)
        n += std::size_t(c.latency()) + 4;
    return n;
}

sim::Cycle
Network::nextWakeCycle() const
{
    // Linear min-scan of the wake table.  At 2N + R entries of 8
    // bytes this is a streaming pass over a few KB -- measured cheaper
    // than maintaining a hierarchical timer wheel / calendar queue at
    // on-chip-network component counts, and trivially exact (no
    // cascade bookkeeping); see docs/ARCHITECTURE.md.
    sim::Cycle t = sim::CycleNever;
    for (sim::Cycle w : wakeAt_)
        t = std::min(t, w);
    return t;
}

sim::Cycle
Network::skipIdle(sim::Cycle limit)
{
    if (forceTickAll_ || now_ >= limit)
        return now_;
    sim::Cycle w = nextWakeCycle();
    if (w > now_)
        now_ = std::min(w, limit);
    return now_;
}

void
Network::stepTo(sim::Cycle limit)
{
    while (now_ < limit) {
        skipIdle(limit);
        if (now_ >= limit)
            break;
        step();
    }
}

void
Network::run(sim::Cycle n)
{
    stepTo(now_ + n);
}

stats::LatencyStats
Network::latency() const
{
    return stats::LatencyStats::merged(sinkLatency_);
}

double
Network::acceptedFlitRate() const
{
    if (now_ <= cfg_.warmup)
        return 0.0;
    std::uint64_t flits = 0;
    for (const auto &s : sinks_)
        flits += s.measuredFlits();
    double cycles = double(now_ - cfg_.warmup);
    return double(flits) / (cycles * mesh_.numNodes());
}

std::uint64_t
Network::deliveredFlits() const
{
    std::uint64_t n = 0;
    for (const auto &s : sinks_)
        n += s.totalFlits();
    return n;
}

std::uint64_t
Network::deliveredPackets() const
{
    std::uint64_t n = 0;
    for (const auto &s : sinks_)
        n += s.packets();
    return n;
}

router::RouterStats
Network::routerTotals() const
{
    router::RouterStats t;
    for (const auto &r : routers_) {
        // statsAt flushes open credit-stall intervals (and the
        // occupancy integral) through now_, so sleeping routers
        // report what per-cycle ticking would.
        const auto s = r.statsAt(now_);
        t.flitsIn += s.flitsIn;
        t.flitsOut += s.flitsOut;
        t.headGrants += s.headGrants;
        t.vaGrants += s.vaGrants;
        t.specSaAttempts += s.specSaAttempts;
        t.specSaWins += s.specSaWins;
        t.specSaUseful += s.specSaUseful;
        t.creditStallCycles += s.creditStallCycles;
        t.bufOccupancy += s.bufOccupancy;
    }
    return t;
}

bool
Network::quiescent()
{
    for (const auto &r : routers_)
        if (!r.quiescent())
            return false;
    for (auto &s : sources_) {
        // Sleeping sources defer their arrival draws; replay them up
        // to the last completed cycle so backlog() is exact.
        if (now_ > 0)
            s.catchUp(now_ - 1);
        if (s.backlog() != 0)
            return false;
    }
    for (const auto &c : flitChans_)
        if (!c.empty())
            return false;
    return true;
}

} // namespace pdr::net
