#include "net/torus_routing.hh"

#include "common/logging.hh"

namespace pdr::net {

TorusDorRouting::TorusDorRouting(const Mesh &torus) : mesh_(torus)
{
    pdr_assert(torus.wraps());
}

int
TorusDorRouting::dimOf(int port)
{
    return (port == East || port == West) ? 0 : 1;
}

int
TorusDorRouting::route(sim::NodeId here, sim::NodeId dest) const
{
    int k = mesh_.radix();
    int hx = mesh_.xOf(here), hy = mesh_.yOf(here);
    int dx = mesh_.xOf(dest), dy = mesh_.yOf(dest);

    if (hx != dx) {
        // Shortest way around the X ring; ties go East.
        int east = (dx - hx + k) % k;
        return east <= k - east ? East : West;
    }
    if (hy != dy) {
        int north = (dy - hy + k) % k;
        return north <= k - north ? North : South;
    }
    return Local;
}

std::uint32_t
TorusDorRouting::vcMask(int vclass, sim::NodeId here, sim::NodeId,
                        int out_port, int num_vcs) const
{
    if (out_port == Local)
        return ~0u;
    pdr_assert(num_vcs >= 2);
    // Class on the next link: crossing the dateline promotes to 1.
    int d = dimOf(out_port);
    bool crossed = ((vclass >> d) & 1) ||
                   mesh_.isWrapLink(here, out_port);
    // Lower half of the VCs for class 0, upper half for class 1.
    int half = num_vcs / 2;
    std::uint32_t lower = (1u << half) - 1;
    std::uint32_t all = num_vcs >= 32 ? ~0u : (1u << num_vcs) - 1;
    return crossed ? (all & ~lower) : lower;
}

int
TorusDorRouting::nextClass(int vclass, sim::NodeId here,
                           int out_port) const
{
    if (out_port == Local)
        return 0;
    if (mesh_.isWrapLink(here, out_port))
        return vclass | (1 << dimOf(out_port));
    return vclass;
}

} // namespace pdr::net
