#include "net/topology.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.hh"

namespace pdr::net {

const char *
portName(int port)
{
    switch (port) {
      case North: return "N";
      case East: return "E";
      case South: return "S";
      case West: return "W";
      case Local: return "L";
    }
    return "?";
}

Mesh::Mesh(int k, bool wrap) : k_(k), wrap_(wrap)
{
    if (k < 2) {
        throw std::invalid_argument(
            csprintf("net.k: mesh radix must be >= 2, got %d", k));
    }
}

sim::NodeId
Mesh::neighbor(sim::NodeId n, int port) const
{
    int x = xOf(n), y = yOf(n);
    if (wrap_) {
        switch (port) {
          case North: return node(x, (y + 1) % k_);
          case East: return node((x + 1) % k_, y);
          case South: return node(x, (y + k_ - 1) % k_);
          case West: return node((x + k_ - 1) % k_, y);
          default: return sim::Invalid;
        }
    }
    switch (port) {
      case North: return y + 1 < k_ ? node(x, y + 1) : sim::Invalid;
      case East: return x + 1 < k_ ? node(x + 1, y) : sim::Invalid;
      case South: return y > 0 ? node(x, y - 1) : sim::Invalid;
      case West: return x > 0 ? node(x - 1, y) : sim::Invalid;
      default: return sim::Invalid;
    }
}

bool
Mesh::isWrapLink(sim::NodeId n, int port) const
{
    if (!wrap_)
        return false;
    int x = xOf(n), y = yOf(n);
    switch (port) {
      case North: return y == k_ - 1;
      case East: return x == k_ - 1;
      case South: return y == 0;
      case West: return x == 0;
      default: return false;
    }
}

int
Mesh::opposite(int port)
{
    switch (port) {
      case North: return South;
      case East: return West;
      case South: return North;
      case West: return East;
    }
    pdr_panic("no opposite for port %d", port);
}

int
Mesh::distance(sim::NodeId a, sim::NodeId b) const
{
    int dx = std::abs(xOf(a) - xOf(b));
    int dy = std::abs(yOf(a) - yOf(b));
    if (wrap_) {
        dx = std::min(dx, k_ - dx);
        dy = std::min(dy, k_ - dy);
    }
    return dx + dy;
}

double
Mesh::meanUniformDistance() const
{
    double per_dim;
    if (wrap_) {
        // Ring distance averaged over all offsets (includes offset 0).
        double sum = 0.0;
        for (int d = 0; d < k_; d++)
            sum += std::min(d, k_ - d);
        per_dim = sum / k_;
    } else {
        per_dim = (k_ * k_ - 1.0) / (3.0 * k_);
    }
    double incl_self = 2.0 * per_dim;
    double n = numNodes();
    return incl_self * n / (n - 1.0);
}

} // namespace pdr::net
