#include "net/oblivious_routing.hh"

#include "common/logging.hh"

namespace pdr::net {

// ---------------------------------------------------------------------
// O1TURN
// ---------------------------------------------------------------------

router::PacketInit
O1TurnRouting::initPacket(sim::NodeId src, sim::NodeId dest,
                          Rng &rng) const
{
    (void)src;
    (void)dest;
    router::PacketInit init;
    init.vclass = std::uint8_t(rng.range(2));   // 0 = ascending (XY).
    return init;
}

int
O1TurnRouting::route(sim::NodeId here, const sim::Flit &head) const
{
    sim::NodeId dr = lat_.routerOf(head.dest);
    if (here == dr)
        return ejectPort(head);
    return dorPort(here, dr, /*ascending=*/!(head.vclass & 1));
}

std::uint32_t
O1TurnRouting::vcMask(const sim::Flit &head, sim::NodeId here,
                      int out_port, int num_vcs) const
{
    if (lat_.isLocalPort(out_port))
        return ~0u;
    return classMask(head.vclass, here, out_port, num_vcs,
                     /*split_major=*/true);
}

int
O1TurnRouting::nextClass(const sim::Flit &f, sim::NodeId here,
                         int out_port) const
{
    if (lat_.isLocalPort(out_port))
        return 0;
    // The order bit is fixed for the packet's lifetime; only the
    // dateline bits evolve.
    return datelineClass(f.vclass, here, out_port);
}

// ---------------------------------------------------------------------
// Valiant
// ---------------------------------------------------------------------

router::PacketInit
ValiantRouting::initPacket(sim::NodeId src, sim::NodeId dest,
                           Rng &rng) const
{
    (void)dest;
    router::PacketInit init;
    init.inter = sim::NodeId(rng.range(std::uint32_t(lat_.numNodes())));
    // An intermediate on the source's own router skips phase 1.
    if (lat_.routerOf(init.inter) == lat_.routerOf(src))
        init.vclass = 1;
    return init;
}

int
ValiantRouting::effectiveClass(const sim::Flit &f,
                               sim::NodeId here) const
{
    int vclass = f.vclass;
    if (!(vclass & 1) && here == lat_.routerOf(f.inter)) {
        // Departing the intermediate: a fresh phase-2 DOR pass, with
        // the dateline bits of phase 1 discarded.
        vclass = 1;
    }
    return vclass;
}

int
ValiantRouting::route(sim::NodeId here, const sim::Flit &head) const
{
    pdr_assert(head.inter != sim::Invalid);
    bool phase2 = effectiveClass(head, here) & 1;
    sim::NodeId dr = lat_.routerOf(head.dest);
    if (phase2 && here == dr)
        return ejectPort(head);
    sim::NodeId target = phase2 ? dr : lat_.routerOf(head.inter);
    return dorPort(here, target, /*ascending=*/true);
}

std::uint32_t
ValiantRouting::vcMask(const sim::Flit &head, sim::NodeId here,
                       int out_port, int num_vcs) const
{
    if (lat_.isLocalPort(out_port))
        return ~0u;
    return classMask(effectiveClass(head, here), here, out_port,
                     num_vcs, /*split_major=*/true);
}

int
ValiantRouting::nextClass(const sim::Flit &f, sim::NodeId here,
                          int out_port) const
{
    if (lat_.isLocalPort(out_port))
        return 0;
    return datelineClass(effectiveClass(f, here), here, out_port);
}

} // namespace pdr::net
