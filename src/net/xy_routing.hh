/**
 * @file
 * Dimension-ordered (XY) routing for the mesh: correct X first, then Y.
 * Deterministic and deadlock-free on a mesh; this is the routing policy
 * of the paper's simulations (Section 5).
 */

#ifndef PDR_NET_XY_ROUTING_HH
#define PDR_NET_XY_ROUTING_HH

#include "net/topology.hh"
#include "router/routing.hh"

namespace pdr::net {

/** XY dimension-ordered routing on a Mesh. */
class XyRouting : public router::RoutingFunction
{
  public:
    explicit XyRouting(const Mesh &mesh) : mesh_(mesh) {}

    int route(sim::NodeId here, sim::NodeId dest) const override;

  private:
    const Mesh &mesh_;
};

} // namespace pdr::net

#endif // PDR_NET_XY_ROUTING_HH
