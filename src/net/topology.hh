/**
 * @file
 * Network-layer view of the topology subsystem.
 *
 * Geometry lives in topo::Lattice (src/topo/lattice.hh): arbitrary
 * dimension count, per-dimension radix and wrap flags, concentration.
 * The historical `Mesh` name is kept as an alias -- every routing
 * function and the Network consume the generalized lattice.
 *
 * The Port enum spells out the lattice port convention for the 2D case
 * (the paper's k x k mesh with one node per router): 0 = North (+y),
 * 1 = East (+x), 2 = South (-y), 3 = West (-x), 4 = Local.  2D-only
 * code (the west-first turn model, the mesh tests) may use these names;
 * dimension-generic code must go through Lattice::plusPort /
 * minusPort / localPort instead.
 */

#ifndef PDR_NET_TOPOLOGY_HH
#define PDR_NET_TOPOLOGY_HH

#include "topo/lattice.hh"

namespace pdr::net {

using topo::Lattice;

/** Historical name of the network geometry type. */
using Mesh = topo::Lattice;

/** 2D specialization of the lattice port numbering (c = 1). */
enum Port : int
{
    North = 0,
    East = 1,
    South = 2,
    West = 3,
    Local = 4,
    NumPorts = 5,
};

} // namespace pdr::net

#endif // PDR_NET_TOPOLOGY_HH
