/**
 * @file
 * k-ary 2-mesh topology helpers: node naming, port numbering and
 * uniform-traffic capacity.
 *
 * Ports: 0 = North (+y), 1 = East (+x), 2 = South (-y), 3 = West (-x),
 * 4 = Local (injection/ejection).  Nodes are numbered row-major:
 * id = y * k + x.
 */

#ifndef PDR_NET_TOPOLOGY_HH
#define PDR_NET_TOPOLOGY_HH

#include "sim/types.hh"

namespace pdr::net {

/** Mesh port roles. */
enum Port : int
{
    North = 0,
    East = 1,
    South = 2,
    West = 3,
    Local = 4,
    NumPorts = 5,
};

const char *portName(int port);

/** Geometry of a k x k mesh, optionally with wraparound (torus). */
class Mesh
{
  public:
    explicit Mesh(int k, bool wrap = false);

    int radix() const { return k_; }
    int numNodes() const { return k_ * k_; }
    bool wraps() const { return wrap_; }

    int xOf(sim::NodeId n) const { return int(n) % k_; }
    int yOf(sim::NodeId n) const { return int(n) / k_; }
    sim::NodeId node(int x, int y) const { return sim::NodeId(y * k_ + x); }

    /** Neighbor through `port`; Invalid at a mesh edge (torus wraps). */
    sim::NodeId neighbor(sim::NodeId n, int port) const;

    /** Opposite direction port (North <-> South, East <-> West). */
    static int opposite(int port);

    /** Hop count between routers (wrap-aware on a torus). */
    int distance(sim::NodeId a, sim::NodeId b) const;

    /** True if the `port` link out of `n` is a wraparound link (and
     *  hence a dateline for deadlock-avoidance VC classes). */
    bool isWrapLink(sim::NodeId n, int port) const;

    /**
     * Network capacity under uniform random traffic, in flits per node
     * per cycle: the bisection bound, 4/k for a k x k mesh and 8/k for
     * the torus (k even).  The paper's x-axes quote offered traffic as
     * a fraction of this.
     */
    double uniformCapacity() const { return (wrap_ ? 8.0 : 4.0) / k_; }

    /** Mean hop distance under uniform traffic excluding self. */
    double meanUniformDistance() const;

  private:
    int k_;
    bool wrap_;
};

} // namespace pdr::net

#endif // PDR_NET_TOPOLOGY_HH
