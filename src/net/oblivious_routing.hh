/**
 * @file
 * Randomized oblivious routing: O1TURN and Valiant (VAL).
 *
 * Both draw per-packet state at injection (RoutingFunction::initPacket)
 * and then run deterministic dimension-order phases, so they compose
 * with every router model exactly like DOR does.
 *
 * O1TURN: each packet picks one of the two dimension orders (ascending
 * = XY, descending = YX) uniformly at random and keeps it for its whole
 * path.  Each order gets its own half of the VCs (the per-order VC
 * class), which makes the scheme deadlock-free and -- on the 2D mesh --
 * worst-case near-optimal while keeping DOR's uniform-traffic
 * performance.  On wrapping lattices each half is further split by the
 * dateline state, so a torus needs >= 4 VCs.
 *
 * Valiant: each packet picks a uniformly random intermediate node and
 * routes minimally (DOR) src -> intermediate, then intermediate ->
 * dest.  The two phases get disjoint VC halves (phase bit = vclass bit
 * 0), and the phase flips when the packet departs its intermediate
 * router, starting a fresh DOR pass (dateline bits reset).  Valiant
 * trades locality for load balance: adversarial permutations are
 * smoothed to uniform at the cost of doubling the average path length,
 * so uniform-traffic saturation lands at roughly half of DOR's.
 */

#ifndef PDR_NET_OBLIVIOUS_ROUTING_HH
#define PDR_NET_OBLIVIOUS_ROUTING_HH

#include "net/dor_routing.hh"

namespace pdr::net {

/** O1TURN: per-packet random dimension order, one VC class each. */
class O1TurnRouting : public DorRouting
{
  public:
    explicit O1TurnRouting(const Lattice &lat) : DorRouting(lat) {}

    router::PacketInit initPacket(sim::NodeId src, sim::NodeId dest,
                                  Rng &rng) const override;

    int route(sim::NodeId here, const sim::Flit &head) const override;

    std::uint32_t vcMask(const sim::Flit &head, sim::NodeId here,
                         int out_port, int num_vcs) const override;

    int nextClass(const sim::Flit &f, sim::NodeId here,
                  int out_port) const override;

    int minVcs() const override { return lat_.wraps() ? 4 : 2; }
};

/** Valiant: random intermediate node, two DOR phases. */
class ValiantRouting : public DorRouting
{
  public:
    explicit ValiantRouting(const Lattice &lat) : DorRouting(lat) {}

    router::PacketInit initPacket(sim::NodeId src, sim::NodeId dest,
                                  Rng &rng) const override;

    int route(sim::NodeId here, const sim::Flit &head) const override;

    std::uint32_t vcMask(const sim::Flit &head, sim::NodeId here,
                         int out_port, int num_vcs) const override;

    int nextClass(const sim::Flit &f, sim::NodeId here,
                  int out_port) const override;

    int minVcs() const override { return lat_.wraps() ? 4 : 2; }

  private:
    /** Phase bit as seen on links leaving `here` (departing the
     *  intermediate router starts phase 2). */
    int effectiveClass(const sim::Flit &f, sim::NodeId here) const;
};

} // namespace pdr::net

#endif // PDR_NET_OBLIVIOUS_ROUTING_HH
