/**
 * @file
 * String-keyed registries for topologies and routing functions.
 *
 * A topology entry builds the network geometry (a topo::Lattice of any
 * dimension count, wrap pattern and concentration) and names the
 * routing function used when NetworkConfig::routing is "auto".  A
 * routing entry builds a RoutingFunction for a given geometry, checking
 * its own compatibility (e.g. dateline routing needs wrap links).
 *
 * Built-in topologies: "mesh", "torus" (2D), "kary3cube" (3D torus),
 * "cmesh"/"cmesh2" (concentrated mesh, 4 / 2 nodes per router).
 * Built-in routings: "dor" (n-dimensional dimension order, datelines
 * on wrapping dims), its historical aliases "xy" (mesh-only) and
 * "dateline" (torus-only), "o1turn" (random dimension order),
 * "val" (Valiant random-intermediate) and "westfirst" (2D minimal
 * adaptive).  New entries register in one line via
 * TopologyRegistry::instance().add(...) and are then reachable from
 * experiment files and the pdr CLI by name.
 */

#ifndef PDR_NET_REGISTRY_HH
#define PDR_NET_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>

#include "common/registry.hh"
#include "net/topology.hh"
#include "router/routing.hh"

namespace pdr::net {

/** How to build a topology of radix k, and how to route on it. */
struct TopologySpec
{
    std::function<Lattice(int k)> make;
    /** Routing used when NetworkConfig::routing == "auto". */
    std::string defaultRouting;
};

class TopologyRegistry : public FactoryRegistry<TopologySpec>
{
  public:
    static TopologyRegistry &instance();

  private:
    TopologyRegistry();
};

/** Builds a routing function; throws on incompatible geometry. */
using RoutingFactory =
    std::function<std::unique_ptr<router::RoutingFunction>(
        const Lattice &)>;

class RoutingRegistry : public FactoryRegistry<RoutingFactory>
{
  public:
    static RoutingRegistry &instance();

  private:
    RoutingRegistry();
};

} // namespace pdr::net

#endif // PDR_NET_REGISTRY_HH
