#include "net/xy_routing.hh"

namespace pdr::net {

int
XyRouting::route(sim::NodeId here, sim::NodeId dest) const
{
    int hx = mesh_.xOf(here), hy = mesh_.yOf(here);
    int dx = mesh_.xOf(dest), dy = mesh_.yOf(dest);
    if (dx > hx)
        return East;
    if (dx < hx)
        return West;
    if (dy > hy)
        return North;
    if (dy < hy)
        return South;
    return Local;
}

} // namespace pdr::net
