/**
 * @file
 * n-dimensional dimension-order routing (DOR) on any Lattice, with
 * dateline VC classes on wrapping dimensions.
 *
 * DOR corrects dimensions in a fixed order (ascending: x, then y, then
 * z, ...), which reproduces the paper's XY routing on the 2D mesh.  On
 * wrapping dimensions the minimal direction is taken (ties broken
 * toward plus, i.e. East/North), and the classic dateline scheme breaks
 * the ring's channel-dependence cycle: a packet starts on the lower
 * half of the VCs of each ring and switches to the upper half after
 * crossing the dateline (the wrap link), so wrapping lattices need
 * >= 2 VCs per channel.  Non-wrapping lattices are deadlock-free with
 * any VC count (the dependence graph is acyclic).
 *
 * This one class replaces the old XyRouting / TorusDorRouting pair and
 * is registered as "dor" (any lattice) plus the historical aliases
 * "xy" (non-wrapping only) and "dateline" (wrapping only).
 *
 * VC-class encoding shared by the DOR family (also O1TURN / Valiant):
 * bit 0 is the major bit (dimension order for O1TURN, phase for
 * Valiant, always 0 for plain DOR); bit 1+d is the dateline bit of
 * dimension d.  vcRange() maps (major, dateline) to a VC interval.
 */

#ifndef PDR_NET_DOR_ROUTING_HH
#define PDR_NET_DOR_ROUTING_HH

#include "net/topology.hh"
#include "router/routing.hh"

namespace pdr::net {

/** Dimension-order routing with datelines on wrapping dims. */
class DorRouting : public router::RoutingFunction
{
  public:
    explicit DorRouting(const Lattice &lat) : lat_(lat) {}

    int route(sim::NodeId here, const sim::Flit &head) const override;

    std::uint32_t vcMask(const sim::Flit &head, sim::NodeId here,
                         int out_port, int num_vcs) const override;

    int nextClass(const sim::Flit &f, sim::NodeId here,
                  int out_port) const override;

    int minVcs() const override { return lat_.wraps() ? 2 : 1; }

    const Lattice &lattice() const { return lat_; }

  protected:
    /** Dateline-bit position of dimension d in a flit's vclass. */
    static int datelineBit(int d) { return 1 + d; }

    /**
     * Directional port toward `dest_router`, correcting dimensions in
     * ascending (x first) or descending order; Invalid when already
     * there.  Wrapping dims go the minimal way, ties toward plus.
     */
    int dorPort(sim::NodeId here, sim::NodeId dest_router,
                bool ascending) const;

    /** Ejection port for the packet's destination node. */
    int ejectPort(const sim::Flit &head) const
    {
        return lat_.localPort(lat_.localIndexOf(head.dest));
    }

    /**
     * VC mask for a directional hop: optionally halve the VC range by
     * the major bit (order/phase), then halve again by the dateline
     * state of the output port's dimension when it wraps.  With odd VC
     * counts the upper class gets the larger share, matching the
     * historical dateline split.
     */
    std::uint32_t classMask(int vclass, sim::NodeId here, int out_port,
                            int num_vcs, bool split_major) const;

    /** Dateline bits after traversing `out_port` (major bit kept). */
    int datelineClass(int vclass, sim::NodeId here, int out_port) const;

    const Lattice &lat_;
};

} // namespace pdr::net

#endif // PDR_NET_DOR_ROUTING_HH
