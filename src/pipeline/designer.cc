#include "pipeline/designer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pdr::pipeline {

Tau
Stage::occupancy() const
{
    Tau t;
    for (const auto &s : slices)
        t += s.occupied;
    return t;
}

namespace {

/** Delay that counts against the stage budget when m is the last module
 *  of the stage. */
Tau
fitDelay(const delay::AtomicModule &m, FitPolicy policy)
{
    if (policy == FitPolicy::Strict)
        return m.delay.total();
    return m.delay.latency;
}

} // namespace

PipelineDesign
design(const std::vector<delay::AtomicModule> &path, Tau clk,
       FitPolicy policy)
{
    pdr_assert(clk.value() > 0.0);
    PipelineDesign dsgn;
    dsgn.clock = clk;

    Stage cur;
    Tau cur_t;  // sum of t_i of modules already in `cur`

    auto flush = [&]() {
        if (!cur.slices.empty()) {
            dsgn.stages.push_back(std::move(cur));
            cur = Stage();
            cur_t = Tau(0.0);
        }
    };

    for (const auto &m : path) {
        Tau fd = fitDelay(m, policy);

        if (fd > clk) {
            // Oversized atomic module: keep it intact across
            // ceil(fd / clk) dedicated stages (footnote 4: pipelining
            // inside an atomic module sacrifices correctness or
            // performance, so we simply give it whole cycles).
            flush();
            int cycles = int(std::ceil(fd.value() / clk.value()));
            // Slices carry the module latency (the overhead extends the
            // stage count but is not "useful" occupancy).
            Tau remaining = m.delay.latency;
            for (int c = 0; c < cycles; c++) {
                Stage s;
                Tau occ = std::min(clk, remaining);
                s.slices.push_back({m.kind, occ, c + 1 < cycles});
                remaining = remaining - occ;
                dsgn.stages.push_back(std::move(s));
            }
            continue;
        }

        // EQ 1: the new module would be the last of the stage, so its
        // overhead (Strict) counts against the budget; prior modules
        // contribute latency only.
        if (!cur.slices.empty() && cur_t + fd > clk)
            flush();

        cur.slices.push_back({m.kind, m.delay.latency, false});
        cur_t += m.delay.latency;
    }
    flush();

    pdr_assert(!dsgn.stages.empty());
    return dsgn;
}

PipelineDesign
designRouter(const delay::RouterParams &params, Tau clk, FitPolicy policy)
{
    return design(delay::criticalPath(params), clk, policy);
}

} // namespace pdr::pipeline
