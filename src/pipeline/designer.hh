/**
 * @file
 * The general router model's pipeline designer (EQ 1 of the paper).
 *
 * Given the critical path of atomic modules (each with latency t_i and
 * overhead h_i) and a fixed clock cycle, pack modules into pipeline
 * stages: a stage holding modules a..b is legal iff
 *
 *     sum_{i=a..b} t_i + h_b <= clk                       (EQ 1, Strict)
 *
 * and stages are filled greedily (a module moves to the next stage when
 * adding it would overflow the current one).  A single atomic module
 * whose own delay exceeds the cycle must still be kept intact (footnote 4
 * discusses why pipelining *inside* an atomic module is problematic), so
 * it occupies ceil((t_i + h_i) / clk) consecutive cycles.
 *
 * Because the paper's Figure 11 / Section 4 prose rounds a few marginal
 * configurations into one cycle (e.g. the Rpv VA at 8 VCs computes to
 * 21.7 tau4 against a 20 tau4 clock), the designer also offers a Relaxed
 * policy that fits on t_i alone (overhead overlapped with the next
 * stage's first module, which is legal when the overhead is a local state
 * update such as a matrix-priority refresh).  Benches report both.
 */

#ifndef PDR_PIPELINE_DESIGNER_HH
#define PDR_PIPELINE_DESIGNER_HH

#include <vector>

#include "delay/modules.hh"
#include "delay/router_delay.hh"

namespace pdr::pipeline {

/** Stage-fit policy; see file comment. */
enum class FitPolicy { Strict, Relaxed };

/** A module's occupancy of one pipeline stage. */
struct Slice
{
    delay::ModuleKind kind;     //!< Which module.
    Tau occupied;               //!< Delay spent in this stage.
    bool continues;             //!< Module spills into the next stage.
};

/** One pipeline stage: slices of the modules it contains. */
struct Stage
{
    std::vector<Slice> slices;

    /** Total module delay packed into this stage. */
    Tau occupancy() const;
};

/** A complete pipeline design for a router. */
struct PipelineDesign
{
    std::vector<Stage> stages;
    Tau clock;

    /** Number of pipeline stages (the per-hop router latency, cycles). */
    int depth() const { return int(stages.size()); }

    /** Per-node latency in cycles (== depth; kept for readability). */
    int perHopCycles() const { return depth(); }
};

/**
 * Pack a critical path into pipeline stages per EQ 1.
 *
 * @param path critical path from delay::criticalPath().
 * @param clk clock cycle (default: the paper's typical 20 tau4).
 * @param policy Strict (EQ 1 verbatim) or Relaxed (fit on t_i only).
 */
PipelineDesign design(const std::vector<delay::AtomicModule> &path,
                      Tau clk = typicalClock,
                      FitPolicy policy = FitPolicy::Strict);

/** Convenience: critical path + design for a parameterized router. */
PipelineDesign designRouter(const delay::RouterParams &params,
                            Tau clk = typicalClock,
                            FitPolicy policy = FitPolicy::Strict);

} // namespace pdr::pipeline

#endif // PDR_PIPELINE_DESIGNER_HH
