/**
 * @file
 * Round-robin arbiter: a rotating-pointer alternative to the matrix
 * arbiter, provided for ablation studies of the arbitration policy.
 */

#ifndef PDR_ARB_ROUND_ROBIN_ARBITER_HH
#define PDR_ARB_ROUND_ROBIN_ARBITER_HH

#include "arb/arbiter.hh"

namespace pdr::arb {

/** Rotating-priority arbiter. */
class RoundRobinArbiter : public Arbiter
{
  public:
    explicit RoundRobinArbiter(int n);

    int arbitrate(const ReqRow &requests) const override;
    void update(int winner) override;

  private:
    int next_ = 0;  //!< Highest-priority requestor index.
};

} // namespace pdr::arb

#endif // PDR_ARB_ROUND_ROBIN_ARBITER_HH
