/**
 * @file
 * Separable virtual-channel allocator (Figure 8 of the paper).
 *
 * Input VCs in the "virtual-channel allocation" state request an output
 * VC on their routed output port.  The allocator is separable:
 *
 *  - First stage (present for Rp / Rpv ranges): each requesting input VC
 *    selects ONE candidate output VC among the free VCs its routing
 *    function returned (a v:1 arbiter per input VC; rotating priority).
 *  - Second stage: a (p*v):1 matrix arbiter per output VC resolves the
 *    input VCs competing for that output VC.
 *
 * Losers simply retry the next cycle.  Output-VC free/busy status is
 * owned by the router (outvc_state); the allocator asks through a
 * predicate so it never grants a busy VC.
 */

#ifndef PDR_ARB_VC_ALLOCATOR_HH
#define PDR_ARB_VC_ALLOCATOR_HH

#include <functional>
#include <vector>

#include "arb/matrix_arbiter.hh"

namespace pdr::arb {

/** A VC-allocation request from input VC (inPort, inVc). */
struct VaRequest
{
    int inPort;
    int inVc;
    int outPort;    //!< Routed output physical port (deterministic).
    /** Bitmask of acceptable output VCs (bit i = VC i); lets routing
     *  restrict VC classes, e.g. torus dateline deadlock avoidance. */
    std::uint32_t vcMask = ~0u;
};

/** A granted output VC. */
struct VaGrant
{
    int inPort;
    int inVc;
    int outPort;
    int outVc;
};

/** Separable VC allocator with an Rp-range routing function. */
class VcAllocator
{
  public:
    VcAllocator(int p, int v);

    /**
     * One allocation round.
     *
     * @param requests at most one per input VC.
     * @param is_free predicate: is (outPort, outVc) unallocated?
     * @return grants; at most one per request and per output VC.  The
     *         reference points into allocator-owned scratch and is
     *         valid until the next allocate() call.
     */
    const std::vector<VaGrant> &
    allocate(const std::vector<VaRequest> &requests,
             const std::function<bool(int, int)> &is_free);

    int numPorts() const { return p_; }
    int numVcs() const { return v_; }

  private:
    int p_;
    int v_;
    /** Stage-1 rotating pointer per input VC (index inPort*v + inVc). */
    std::vector<int> firstStagePtr_;
    /** Stage-2 matrix arbiter per output VC (index outPort*v + outVc),
     *  arbitrating p*v input VCs. */
    std::vector<MatrixArbiter> outputVcArb_;

    /** True if grants already contain the given output-VC index. */
    bool granted(const std::vector<VaGrant> &grants, int ovc_idx) const;

    // Reused per-call scratch (hot path: one call per router per cycle).
    ReqRow reqRow_;
    std::vector<int> pickOf_;
    std::vector<std::uint8_t> seen_;
    std::vector<int> contested_;
    std::vector<VaGrant> grants_;
};

} // namespace pdr::arb

#endif // PDR_ARB_VC_ALLOCATOR_HH
