/**
 * @file
 * Separable virtual-channel allocator (Figure 8 of the paper).
 *
 * Input VCs in the "virtual-channel allocation" state request an output
 * VC on their routed output port.  The allocator is separable:
 *
 *  - First stage (present for Rp / Rpv ranges): each requesting input VC
 *    selects ONE candidate output VC among the free VCs its routing
 *    function returned (a v:1 arbiter per input VC; rotating priority).
 *  - Second stage: a (p*v):1 matrix arbiter per output VC resolves the
 *    input VCs competing for that output VC.
 *
 * Losers simply retry the next cycle.  Output-VC free/busy status is
 * owned by the router, which hands it over as one packed free-VC word
 * per output port (bit i set = output VC i free); stage 1 is then a
 * rotated find-first-set over (vcMask & free word) instead of a
 * predicate-call scan, and stage 2 stages one packed (p*v)-wide bid row
 * per contested output VC.  The dense predicate-driven reference
 * implementation is retained verbatim as ScalarVcAllocator in
 * scalar_oracle.hh; grants and priority evolution are bit-identical
 * (tests/arb/test_alloc_equiv.cc).
 */

#ifndef PDR_ARB_VC_ALLOCATOR_HH
#define PDR_ARB_VC_ALLOCATOR_HH

#include <functional>
#include <vector>

#include "arb/matrix_arbiter.hh"

namespace pdr::arb {

/** A VC-allocation request from input VC (inPort, inVc). */
struct VaRequest
{
    int inPort;
    int inVc;
    int outPort;    //!< Routed output physical port (deterministic).
    /** Bitmask of acceptable output VCs (bit i = VC i); lets routing
     *  restrict VC classes, e.g. torus dateline deadlock avoidance. */
    std::uint32_t vcMask = ~0u;
};

/** A granted output VC. */
struct VaGrant
{
    int inPort;
    int inVc;
    int outPort;
    int outVc;
};

/** Interface of the VC allocator, runtime-swappable against the scalar
 *  oracle (router.scalar_alloc; same grants either way). */
class VcAllocatorBase
{
  public:
    virtual ~VcAllocatorBase() = default;

    /**
     * One allocation round.
     *
     * @param requests at most one per input VC.
     * @param free_vcs one word per output port; bit i set iff output
     *        VC i of that port is unallocated.  Bits >= numVcs must be
     *        clear.
     * @return grants; at most one per request and per output VC.  The
     *         reference points into allocator-owned scratch and is
     *         valid until the next allocate() call.
     */
    virtual const std::vector<VaGrant> &
    allocate(const std::vector<VaRequest> &requests,
             const std::uint64_t *free_vcs) = 0;

    /** Append all priority state: the stage-1 rotating pointers, then
     *  each stage-2 matrix arbiter (equivalence tests). */
    virtual void dumpState(std::vector<std::uint8_t> &out) const = 0;
};

/** Separable VC allocator with an Rp-range routing function. */
class VcAllocator : public VcAllocatorBase
{
  public:
    VcAllocator(int p, int v);

    const std::vector<VaGrant> &
    allocate(const std::vector<VaRequest> &requests,
             const std::uint64_t *free_vcs) override;

    /** Predicate-driven convenience entry (tests): materializes the
     *  free-VC words from is_free and runs the packed path. */
    const std::vector<VaGrant> &
    allocate(const std::vector<VaRequest> &requests,
             const std::function<bool(int, int)> &is_free);

    void dumpState(std::vector<std::uint8_t> &out) const override;

    int numPorts() const { return p_; }
    int numVcs() const { return v_; }

  private:
    int p_;
    int v_;
    int nivcWords_;  //!< Words per stage-2 (p*v)-wide bid row.
    /** Stage-1 rotating pointer per input VC (index inPort*v + inVc). */
    std::vector<int> firstStagePtr_;
    /** Stage-2 matrix arbiter per output VC (index outPort*v + outVc),
     *  arbitrating p*v input VCs. */
    std::vector<MatrixArbiter> outputVcArb_;

    // Reused per-call scratch (hot path: one call per router per
    // cycle).  bids_ rows and the staged_ bits are zeroed again before
    // allocate() returns.
    std::vector<std::uint64_t> bids_;    //!< [ovc_idx][nivcWords_] rows.
    std::vector<std::uint64_t> staged_;  //!< Bitset over ovc_idx.
    std::vector<int> contested_;         //!< Staged ovc_idx, pick order.
    std::vector<std::uint64_t> freeScratch_;  //!< Predicate-entry words.
    std::vector<VaGrant> grants_;
};

} // namespace pdr::arb

#endif // PDR_ARB_VC_ALLOCATOR_HH
