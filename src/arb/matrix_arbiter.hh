/**
 * @file
 * Matrix arbiter (Figure 10(b) of the paper), word-parallel storage.
 *
 * An upper-triangular matrix of flip-flops records the binary priority
 * between each pair of requestors.  A requestor wins iff it has higher
 * priority than every other current requestor.  When a requestor consumes
 * a grant its priority is set to the lowest of all requestors, which
 * makes the arbiter strongly fair (least-recently-served order).
 *
 * Storage is bitmask-native: row i is a packed uint64_t word array with
 * bit j set iff i beats j (the full antisymmetric relation, both
 * triangles materialized; the diagonal is never set).  A grant test for
 * requestor i is then one AND-reduce -- i wins iff no *other* requestor
 * falls outside row i: (requests & ~row_i & ~bit_i) == 0 -- and
 * arbitrate walks only the set bits of the request word.  The scalar
 * reference implementation is retained verbatim as
 * ScalarMatrixArbiter in scalar_oracle.hh; tests/arb/test_alloc_equiv.cc
 * drives both in lockstep.
 */

#ifndef PDR_ARB_MATRIX_ARBITER_HH
#define PDR_ARB_MATRIX_ARBITER_HH

#include "arb/arbiter.hh"
#include "arb/bitrow.hh"

namespace pdr::arb {

/** Least-recently-served matrix arbiter over packed priority rows. */
class MatrixArbiter : public Arbiter
{
  public:
    explicit MatrixArbiter(int n);

    int arbitrate(const ReqRow &requests) const override;
    void update(int winner) override;

    /**
     * Arbitrate a packed request row of words() words (bit i set iff
     * requestor i bids).  Returns the winning index or NoGrant; does
     * NOT update priority state.
     */
    int arbitrateMask(const std::uint64_t *requests) const;

    /** Single-word fast path (requires size() <= 64). */
    int arbitrateWord(std::uint64_t requests) const;

    /** Does requestor i currently beat requestor j? (diagnostic). */
    bool beats(int i, int j) const;

    /** Words per packed row. */
    int words() const { return words_; }

    /** Append the upper-triangular priority state (beats(i, j) for all
     *  i < j, row-major) as 0/1 bytes -- the equivalence tests compare
     *  this against the scalar oracle every round. */
    void dumpState(std::vector<std::uint8_t> &out) const;

  private:
    int words_;
    /** Row-major packed matrix: rows_[i * words_ + w] bit b set iff
     *  requestor i beats requestor 64 * w + b.  Diagonal always 0. */
    std::vector<std::uint64_t> rows_;
    /** Scratch for the ReqRow compatibility entry point. */
    mutable std::vector<std::uint64_t> pack_;
};

} // namespace pdr::arb

#endif // PDR_ARB_MATRIX_ARBITER_HH
