/**
 * @file
 * Matrix arbiter (Figure 10(b) of the paper).
 *
 * An upper-triangular matrix of flip-flops records the binary priority
 * between each pair of requestors.  A requestor wins iff it has higher
 * priority than every other current requestor.  When a requestor consumes
 * a grant its priority is set to the lowest of all requestors, which
 * makes the arbiter strongly fair (least-recently-served order).
 */

#ifndef PDR_ARB_MATRIX_ARBITER_HH
#define PDR_ARB_MATRIX_ARBITER_HH

#include "arb/arbiter.hh"

namespace pdr::arb {

/** Least-recently-served matrix arbiter. */
class MatrixArbiter : public Arbiter
{
  public:
    explicit MatrixArbiter(int n);

    int arbitrate(const ReqRow &requests) const override;
    void update(int winner) override;

    /** Does requestor i currently beat requestor j? (diagnostic). */
    bool beats(int i, int j) const;

  private:
    /** Upper-triangular storage: m_[idx(i,j)] nonzero means i beats j,
     *  for i < j.  Bytes, not bits: read in arbitrate's inner loop. */
    std::vector<std::uint8_t> m_;

    int idx(int i, int j) const;
};

} // namespace pdr::arb

#endif // PDR_ARB_MATRIX_ARBITER_HH
