/**
 * @file
 * Packed bit-row helpers for the bitmask allocation engine.
 *
 * Request sets and priority-matrix rows are stored as arrays of
 * uint64_t words (bit i = requestor i).  Arbitration and allocation
 * iterate only the set bits via count-trailing-zeros, so the cost
 * scales with the number of live requests, not the row width.  The
 * parameter schema caps router.num_ports and router.num_vcs at 64
 * (src/api/params.cc), so port rows and per-port VC rows always fit
 * one word; only the VC allocator's (p*v)-wide stage-2 rows need the
 * multi-word forms.
 */

#ifndef PDR_ARB_BITROW_HH
#define PDR_ARB_BITROW_HH

#include <cstdint>

namespace pdr::arb {

/** Bits per packed row word. */
constexpr int kWordBits = 64;

/** Words needed for an n-bit row. */
constexpr int
wordsFor(int n)
{
    return (n + kWordBits - 1) / kWordBits;
}

/** The low n bits set; defined for n in [0, 64] (no shift UB at 64). */
constexpr std::uint64_t
lowMask(int n)
{
    return n >= kWordBits ? ~std::uint64_t(0)
                          : ((std::uint64_t(1) << n) - 1);
}

/** Index of the lowest set bit; undefined for x == 0. */
inline int
ctz64(std::uint64_t x)
{
    return __builtin_ctzll(x);
}

inline bool
testBit(const std::uint64_t *row, int i)
{
    return (row[i >> 6] >> (i & 63)) & 1u;
}

inline void
setBit(std::uint64_t *row, int i)
{
    row[i >> 6] |= std::uint64_t(1) << (i & 63);
}

inline void
clearBit(std::uint64_t *row, int i)
{
    row[i >> 6] &= ~(std::uint64_t(1) << (i & 63));
}

/**
 * Call fn(i) for every set bit i of the nwords-long row, in ascending
 * order.  Each word is snapshotted before its bits are visited, so a
 * callback may clear/set bits of already-visited indices without
 * perturbing the iteration (callers that mutate *later* words must
 * reason about it explicitly).
 */
template <typename Fn>
inline void
forEachSetBit(const std::uint64_t *row, int nwords, Fn &&fn)
{
    for (int w = 0; w < nwords; w++) {
        std::uint64_t m = row[w];
        while (m) {
            int b = ctz64(m);
            m &= m - 1;
            fn(w * kWordBits + b);
        }
    }
}

} // namespace pdr::arb

#endif // PDR_ARB_BITROW_HH
