#include "arb/switch_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pdr::arb {

WormholeSwitchArbiter::WormholeSwitchArbiter(int p) : p_(p)
{
    pdr_assert(p >= 1);
    outputArb_.reserve(p);
    for (int i = 0; i < p; i++)
        outputArb_.emplace_back(p);
    reqRow_.assign(p, false);
}

const std::vector<SaGrant> &
WormholeSwitchArbiter::allocate(const std::vector<SaRequest> &requests)
{
    grants_.clear();
    // One output port at a time: gather its requests and arbitrate.
    // Request counts are tiny (<= p), so a linear pass per output is
    // cheaper than building a full matrix.
    for (int out = 0; out < p_; out++) {
        bool any = false;
        for (const auto &r : requests) {
            pdr_assert(r.inPort >= 0 && r.inPort < p_);
            pdr_assert(r.outPort >= 0 && r.outPort < p_);
            pdr_assert(!r.spec);
            if (r.outPort == out) {
                pdr_assert(!reqRow_[r.inPort]);
                reqRow_[r.inPort] = true;
                any = true;
            }
        }
        if (any) {
            int winner = outputArb_[out].arbitrate(reqRow_);
            if (winner != NoGrant) {
                outputArb_[out].update(winner);
                grants_.push_back({winner, 0, out, false});
            }
            std::fill(reqRow_.begin(), reqRow_.end(), false);
        }
    }
    return grants_;
}

SeparableSwitchAllocator::SeparableSwitchAllocator(int p, int v)
    : p_(p), v_(v)
{
    pdr_assert(p >= 1 && v >= 1);
    inputArb_.reserve(p);
    outputArb_.reserve(p);
    for (int i = 0; i < p; i++) {
        inputArb_.emplace_back(v);
        outputArb_.emplace_back(p);
    }
    inReq_.assign(std::size_t(p) * v, false);
    want_.assign(std::size_t(p) * v, NoGrant);
    stage1Vc_.assign(p, NoGrant);
    stage1Out_.assign(p, NoGrant);
    vcRow_.assign(v, false);
    portRow_.assign(p, false);
}

const std::vector<SaGrant> &
SeparableSwitchAllocator::allocate(const std::vector<SaRequest> &requests)
{
    grants_.clear();
    // Stage 1: per input port, a v:1 arbiter picks the bidding VC.
    for (const auto &r : requests) {
        pdr_assert(r.inPort >= 0 && r.inPort < p_);
        pdr_assert(r.inVc >= 0 && r.inVc < v_);
        pdr_assert(r.outPort >= 0 && r.outPort < p_);
        std::size_t idx = std::size_t(r.inPort) * v_ + r.inVc;
        pdr_assert(!inReq_[idx]);
        inReq_[idx] = true;
        want_[idx] = r.outPort;
    }

    for (int in = 0; in < p_; in++) {
        stage1Vc_[in] = NoGrant;
        bool any = false;
        for (int vc = 0; vc < v_; vc++) {
            vcRow_[vc] = inReq_[std::size_t(in) * v_ + vc];
            any = any || vcRow_[vc];
        }
        if (any) {
            int vc = inputArb_[in].arbitrate(vcRow_);
            if (vc != NoGrant) {
                stage1Vc_[in] = vc;
                stage1Out_[in] = want_[std::size_t(in) * v_ + vc];
            }
        }
    }

    // Stage 2: per output port, a p:1 arbiter among forwarded winners.
    for (int out = 0; out < p_; out++) {
        bool any = false;
        for (int in = 0; in < p_; in++) {
            portRow_[in] =
                stage1Vc_[in] != NoGrant && stage1Out_[in] == out;
            any = any || portRow_[in];
        }
        if (!any)
            continue;
        int in_win = outputArb_[out].arbitrate(portRow_);
        if (in_win != NoGrant) {
            // Update priorities only for consumed grants so a VC that
            // won stage 1 but lost stage 2 keeps its turn.
            outputArb_[out].update(in_win);
            inputArb_[in_win].update(stage1Vc_[in_win]);
            grants_.push_back({in_win, stage1Vc_[in_win], out, false});
        }
    }

    // Clear scratch for the next round.
    for (const auto &r : requests) {
        std::size_t idx = std::size_t(r.inPort) * v_ + r.inVc;
        inReq_[idx] = false;
        want_[idx] = NoGrant;
    }
    return grants_;
}

SpeculativeSwitchAllocator::SpeculativeSwitchAllocator(int p, int v)
    : nonspec_(p, v), spec_(p, v), p_(p)
{
}

const std::vector<SaGrant> &
SpeculativeSwitchAllocator::allocate(const std::vector<SaRequest> &requests)
{
    ns_.clear();
    sp_.clear();
    for (const auto &r : requests)
        (r.spec ? sp_ : ns_).push_back(r);

    grants_ = nonspec_.allocate(ns_);

    if (!sp_.empty()) {
        // Ports consumed by non-speculative winners mask speculative
        // grants (Figure 7(c): non-spec selected over spec).  The
        // speculative allocator still runs (and updates its priorities)
        // exactly as the parallel hardware would.
        inUsed_.assign(p_, false);
        outUsed_.assign(p_, false);
        for (const auto &g : grants_) {
            inUsed_[g.inPort] = true;
            outUsed_[g.outPort] = true;
        }
        for (const auto &g : spec_.allocate(sp_)) {
            if (inUsed_[g.inPort] || outUsed_[g.outPort])
                continue;
            grants_.push_back(g);
            grants_.back().spec = true;
        }
    }
    return grants_;
}

} // namespace pdr::arb
