#include "arb/switch_allocator.hh"

#include "common/logging.hh"

namespace pdr::arb {

WormholeSwitchArbiter::WormholeSwitchArbiter(int p) : p_(p)
{
    pdr_assert(p >= 1 && p <= kWordBits);
    outputArb_.reserve(p);
    for (int i = 0; i < p; i++)
        outputArb_.emplace_back(p);
    outBids_.assign(p, 0);
}

const std::vector<SaGrant> &
WormholeSwitchArbiter::allocate(const std::vector<SaRequest> &requests)
{
    grants_.clear();
    // Stage the requests as one input-port bid word per output; only
    // outputs with a set bid bit run their arbiter.
    outMask_ = 0;
    for (const auto &r : requests) {
        pdr_assert(r.inPort >= 0 && r.inPort < p_);
        pdr_assert(r.outPort >= 0 && r.outPort < p_);
        pdr_assert(!r.spec);
        pdr_assert(!((outBids_[r.outPort] >> r.inPort) & 1u));
        outBids_[r.outPort] |= std::uint64_t(1) << r.inPort;
        outMask_ |= std::uint64_t(1) << r.outPort;
    }
    std::uint64_t m = outMask_;
    while (m) {
        int out = ctz64(m);
        m &= m - 1;
        int winner = outputArb_[out].arbitrateWord(outBids_[out]);
        if (winner != NoGrant) {
            outputArb_[out].update(winner);
            grants_.push_back({winner, 0, out, false});
        }
        outBids_[out] = 0;
    }
    return grants_;
}

void
WormholeSwitchArbiter::dumpState(std::vector<std::uint8_t> &out) const
{
    for (const auto &a : outputArb_)
        a.dumpState(out);
}

SeparableSwitchAllocator::SeparableSwitchAllocator(int p, int v)
    : p_(p), v_(v)
{
    pdr_assert(p >= 1 && p <= kWordBits);
    pdr_assert(v >= 1 && v <= kWordBits);
    inputArb_.reserve(p);
    outputArb_.reserve(p);
    for (int i = 0; i < p; i++) {
        inputArb_.emplace_back(v);
        outputArb_.emplace_back(p);
    }
    inVcBids_.assign(p, 0);
    outBids_.assign(p, 0);
    want_.assign(std::size_t(p) * v, NoGrant);
    stage1Vc_.assign(p, NoGrant);
}

const std::vector<SaGrant> &
SeparableSwitchAllocator::allocate(const std::vector<SaRequest> &requests)
{
    grants_.clear();
    // Stage: one VC bid word per input port; want_ records each bidding
    // VC's output (read only for stage-1 winners, so stale entries of
    // non-bidding VCs are never consulted).
    inMask_ = 0;
    for (const auto &r : requests) {
        pdr_assert(r.inPort >= 0 && r.inPort < p_);
        pdr_assert(r.inVc >= 0 && r.inVc < v_);
        pdr_assert(r.outPort >= 0 && r.outPort < p_);
        pdr_assert(!((inVcBids_[r.inPort] >> r.inVc) & 1u));
        inVcBids_[r.inPort] |= std::uint64_t(1) << r.inVc;
        inMask_ |= std::uint64_t(1) << r.inPort;
        want_[std::size_t(r.inPort) * v_ + r.inVc] = r.outPort;
    }

    // Stage 1: per bidding input port, a v:1 arbiter picks the VC; the
    // winner becomes an input-port bid on its wanted output.
    outMask_ = 0;
    std::uint64_t m = inMask_;
    while (m) {
        int in = ctz64(m);
        m &= m - 1;
        int vc = inputArb_[in].arbitrateWord(inVcBids_[in]);
        inVcBids_[in] = 0;
        if (vc != NoGrant) {
            stage1Vc_[in] = vc;
            int out = want_[std::size_t(in) * v_ + vc];
            outBids_[out] |= std::uint64_t(1) << in;
            outMask_ |= std::uint64_t(1) << out;
        }
    }

    // Stage 2: per contested output port, a p:1 arbiter among the
    // forwarded stage-1 winners.
    m = outMask_;
    while (m) {
        int out = ctz64(m);
        m &= m - 1;
        int in_win = outputArb_[out].arbitrateWord(outBids_[out]);
        if (in_win != NoGrant) {
            // Update priorities only for consumed grants so a VC that
            // won stage 1 but lost stage 2 keeps its turn.
            outputArb_[out].update(in_win);
            inputArb_[in_win].update(stage1Vc_[in_win]);
            grants_.push_back({in_win, stage1Vc_[in_win], out, false});
        }
        outBids_[out] = 0;
    }
    return grants_;
}

void
SeparableSwitchAllocator::dumpState(std::vector<std::uint8_t> &out) const
{
    for (const auto &a : inputArb_)
        a.dumpState(out);
    for (const auto &a : outputArb_)
        a.dumpState(out);
}

SpeculativeSwitchAllocator::SpeculativeSwitchAllocator(int p, int v)
    : nonspec_(p, v), spec_(p, v)
{
}

const std::vector<SaGrant> &
SpeculativeSwitchAllocator::allocate(const std::vector<SaRequest> &requests)
{
    ns_.clear();
    sp_.clear();
    for (const auto &r : requests)
        (r.spec ? sp_ : ns_).push_back(r);

    grants_ = nonspec_.allocate(ns_);

    if (!sp_.empty()) {
        // Ports consumed by non-speculative winners mask speculative
        // grants (Figure 7(c): non-spec selected over spec).  The
        // speculative allocator still runs (and updates its priorities)
        // exactly as the parallel hardware would; the kill pass is two
        // bit tests against the used-port words.
        std::uint64_t in_used = 0, out_used = 0;
        for (const auto &g : grants_) {
            in_used |= std::uint64_t(1) << g.inPort;
            out_used |= std::uint64_t(1) << g.outPort;
        }
        for (const auto &g : spec_.allocate(sp_)) {
            if (((in_used >> g.inPort) | (out_used >> g.outPort)) & 1u)
                continue;
            grants_.push_back(g);
            grants_.back().spec = true;
        }
    }
    return grants_;
}

void
SpeculativeSwitchAllocator::dumpState(std::vector<std::uint8_t> &out) const
{
    nonspec_.dumpState(out);
    spec_.dumpState(out);
}

} // namespace pdr::arb
