#include "arb/round_robin_arbiter.hh"

#include "common/logging.hh"

namespace pdr::arb {

RoundRobinArbiter::RoundRobinArbiter(int n) : Arbiter(n)
{
    pdr_assert(n >= 1);
}

int
RoundRobinArbiter::arbitrate(const ReqRow &requests) const
{
    pdr_assert(int(requests.size()) == size());
    // pdr-lint: allow(PDR-PERF-DENSESCAN) ablation-only arbiter (kept
    // for the matrix-vs-round-robin comparison); not on the router
    // allocation hot path
    for (int k = 0; k < size(); k++) {
        int i = (next_ + k) % size();
        if (requests[i])
            return i;
    }
    return NoGrant;
}

void
RoundRobinArbiter::update(int winner)
{
    if (winner == NoGrant)
        return;
    pdr_assert(winner >= 0 && winner < size());
    next_ = (winner + 1) % size();
}

} // namespace pdr::arb
