#include "arb/matrix_arbiter.hh"

#include "common/logging.hh"

namespace pdr::arb {

MatrixArbiter::MatrixArbiter(int n) : Arbiter(n), words_(wordsFor(n))
{
    pdr_assert(n >= 1);
    rows_.assign(std::size_t(n) * words_, 0);
    pack_.assign(words_, 0);
    // i beats j initially for all i < j: row i has bits (i, n) set.
    for (int i = 0; i < n; i++) {
        std::uint64_t *row = &rows_[std::size_t(i) * words_];
        for (int j = i + 1; j < n; j++)
            setBit(row, j);
    }
}

bool
MatrixArbiter::beats(int i, int j) const
{
    pdr_assert(i != j);
    return testBit(&rows_[std::size_t(i) * words_], j);
}

int
MatrixArbiter::arbitrateWord(std::uint64_t requests) const
{
    pdr_assert(words_ == 1);
    // Walk requestors in ascending order; i wins iff every other
    // requestor is one i beats, i.e. no request bit survives outside
    // row i (the scalar reference scans the same ascending order, and
    // the priority state is a total order, so at most one index wins).
    std::uint64_t m = requests;
    while (m) {
        int i = ctz64(m);
        m &= m - 1;
        if ((requests & ~rows_[i] & ~(std::uint64_t(1) << i)) == 0)
            return i;
    }
    return NoGrant;
}

int
MatrixArbiter::arbitrateMask(const std::uint64_t *requests) const
{
    if (words_ == 1)
        return arbitrateWord(requests[0]);
    for (int w = 0; w < words_; w++) {
        std::uint64_t m = requests[w];
        while (m) {
            int b = ctz64(m);
            m &= m - 1;
            int i = w * kWordBits + b;
            const std::uint64_t *row = &rows_[std::size_t(i) * words_];
            bool wins = true;
            for (int k = 0; k < words_ && wins; k++) {
                std::uint64_t others = requests[k] & ~row[k];
                if (k == w)
                    others &= ~(std::uint64_t(1) << b);
                wins = others == 0;
            }
            if (wins)
                return i;
        }
    }
    return NoGrant;
}

int
MatrixArbiter::arbitrate(const ReqRow &requests) const
{
    // Compatibility entry (tests, round-robin-style callers): pack the
    // byte row into words and run the mask path.
    pdr_assert(int(requests.size()) == size());
    for (int w = 0; w < words_; w++)
        pack_[w] = 0;
    // pdr-lint: allow(PDR-PERF-DENSESCAN) compat entry; the router hot
    // path stages packed words and calls arbitrateMask directly
    for (int i = 0; i < size(); i++) {
        if (requests[i])
            setBit(pack_.data(), i);
    }
    return arbitrateMask(pack_.data());
}

void
MatrixArbiter::update(int winner)
{
    if (winner == NoGrant)
        return;
    pdr_assert(winner >= 0 && winner < size());
    // Winner drops to lowest priority: clear its row (it now beats
    // nobody) and set its column bit in every other row.  The column
    // write-back is inherently one bit per row; the arbitration-side
    // win is what the packed layout buys.
    std::uint64_t *wrow = &rows_[std::size_t(winner) * words_];
    for (int w = 0; w < words_; w++)
        wrow[w] = 0;
    const std::size_t ww = std::size_t(winner) >> 6;
    const std::uint64_t wbit = std::uint64_t(1) << (winner & 63);
    // pdr-lint: allow(PDR-PERF-DENSESCAN) column set over all rows is
    // O(n) single-bit ORs, not a per-request scan; no packed shortcut
    // exists for a strided column write
    for (int j = 0; j < size(); j++) {
        if (j != winner)
            rows_[std::size_t(j) * words_ + ww] |= wbit;
    }
}

void
MatrixArbiter::dumpState(std::vector<std::uint8_t> &out) const
{
    // pdr-lint: allow(PDR-PERF-DENSESCAN) diagnostic serialization for
    // the equivalence tests, not on the allocation hot path
    for (int i = 0; i < size(); i++) {
        // pdr-lint: allow(PDR-PERF-DENSESCAN) diagnostic serialization
        for (int j = i + 1; j < size(); j++)
            out.push_back(beats(i, j) ? 1 : 0);
    }
}

} // namespace pdr::arb
