#include "arb/matrix_arbiter.hh"

#include "common/logging.hh"

namespace pdr::arb {

MatrixArbiter::MatrixArbiter(int n) : Arbiter(n)
{
    pdr_assert(n >= 1);
    // i beats j initially for all i < j.
    m_.assign(std::size_t(n) * n, 1);
}

int
MatrixArbiter::idx(int i, int j) const
{
    return i * size() + j;
}

bool
MatrixArbiter::beats(int i, int j) const
{
    pdr_assert(i != j);
    if (i < j)
        return m_[idx(i, j)];
    return !m_[idx(j, i)];
}

int
MatrixArbiter::arbitrate(const ReqRow &requests) const
{
    pdr_assert(int(requests.size()) == size());
    for (int i = 0; i < size(); i++) {
        if (!requests[i])
            continue;
        bool wins = true;
        for (int j = 0; j < size() && wins; j++) {
            if (j != i && requests[j] && !beats(i, j))
                wins = false;
        }
        if (wins)
            return i;
    }
    return NoGrant;
}

void
MatrixArbiter::update(int winner)
{
    if (winner == NoGrant)
        return;
    pdr_assert(winner >= 0 && winner < size());
    // Winner drops to lowest priority: every other j now beats winner.
    for (int j = 0; j < size(); j++) {
        if (j == winner)
            continue;
        if (winner < j)
            m_[idx(winner, j)] = 0;
        else
            m_[idx(j, winner)] = 1;
    }
}

} // namespace pdr::arb
