#include "arb/scalar_oracle.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pdr::arb {

// ---------------------------------------------------------------------
// ScalarMatrixArbiter: the dense byte-matrix implementation, verbatim.
// ---------------------------------------------------------------------

ScalarMatrixArbiter::ScalarMatrixArbiter(int n) : Arbiter(n)
{
    pdr_assert(n >= 1);
    // i beats j initially for all i < j.
    m_.assign(std::size_t(n) * n, 1);
}

int
ScalarMatrixArbiter::idx(int i, int j) const
{
    return i * size() + j;
}

bool
ScalarMatrixArbiter::beats(int i, int j) const
{
    pdr_assert(i != j);
    if (i < j)
        return m_[idx(i, j)];
    return !m_[idx(j, i)];
}

int
ScalarMatrixArbiter::arbitrate(const ReqRow &requests) const
{
    pdr_assert(int(requests.size()) == size());
    // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle; the
    // hot path uses MatrixArbiter::arbitrateMask
    for (int i = 0; i < size(); i++) {
        if (!requests[i])
            continue;
        bool wins = true;
        // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle
        for (int j = 0; j < size() && wins; j++) {
            if (j != i && requests[j] && !beats(i, j))
                wins = false;
        }
        if (wins)
            return i;
    }
    return NoGrant;
}

void
ScalarMatrixArbiter::update(int winner)
{
    if (winner == NoGrant)
        return;
    pdr_assert(winner >= 0 && winner < size());
    // Winner drops to lowest priority: every other j now beats winner.
    // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle
    for (int j = 0; j < size(); j++) {
        if (j == winner)
            continue;
        if (winner < j)
            m_[idx(winner, j)] = 0;
        else
            m_[idx(j, winner)] = 1;
    }
}

void
ScalarMatrixArbiter::dumpState(std::vector<std::uint8_t> &out) const
{
    // pdr-lint: allow(PDR-PERF-DENSESCAN) diagnostic serialization
    for (int i = 0; i < size(); i++) {
        // pdr-lint: allow(PDR-PERF-DENSESCAN) diagnostic serialization
        for (int j = i + 1; j < size(); j++)
            out.push_back(beats(i, j) ? 1 : 0);
    }
}

// ---------------------------------------------------------------------
// ScalarWormholeSwitchArbiter: dense per-output linear pass, verbatim.
// ---------------------------------------------------------------------

ScalarWormholeSwitchArbiter::ScalarWormholeSwitchArbiter(int p) : p_(p)
{
    pdr_assert(p >= 1);
    outputArb_.reserve(p);
    for (int i = 0; i < p; i++)
        outputArb_.emplace_back(p);
    reqRow_.assign(p, false);
}

const std::vector<SaGrant> &
ScalarWormholeSwitchArbiter::allocate(const std::vector<SaRequest> &requests)
{
    grants_.clear();
    // One output port at a time: gather its requests and arbitrate.
    // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle; the
    // bitmask engine stages per-output bid words instead
    for (int out = 0; out < p_; out++) {
        bool any = false;
        for (const auto &r : requests) {
            pdr_assert(r.inPort >= 0 && r.inPort < p_);
            pdr_assert(r.outPort >= 0 && r.outPort < p_);
            pdr_assert(!r.spec);
            if (r.outPort == out) {
                pdr_assert(!reqRow_[r.inPort]);
                reqRow_[r.inPort] = true;
                any = true;
            }
        }
        if (any) {
            int winner = outputArb_[out].arbitrate(reqRow_);
            if (winner != NoGrant) {
                outputArb_[out].update(winner);
                grants_.push_back({winner, 0, out, false});
            }
            std::fill(reqRow_.begin(), reqRow_.end(), false);
        }
    }
    return grants_;
}

void
ScalarWormholeSwitchArbiter::dumpState(std::vector<std::uint8_t> &out) const
{
    for (const auto &a : outputArb_)
        a.dumpState(out);
}

// ---------------------------------------------------------------------
// ScalarSeparableSwitchAllocator: dense two-stage pass, verbatim.
// ---------------------------------------------------------------------

ScalarSeparableSwitchAllocator::ScalarSeparableSwitchAllocator(int p, int v)
    : p_(p), v_(v)
{
    pdr_assert(p >= 1 && v >= 1);
    inputArb_.reserve(p);
    outputArb_.reserve(p);
    for (int i = 0; i < p; i++) {
        inputArb_.emplace_back(v);
        outputArb_.emplace_back(p);
    }
    inReq_.assign(std::size_t(p) * v, false);
    want_.assign(std::size_t(p) * v, NoGrant);
    stage1Vc_.assign(p, NoGrant);
    stage1Out_.assign(p, NoGrant);
    vcRow_.assign(v, false);
    portRow_.assign(p, false);
}

const std::vector<SaGrant> &
ScalarSeparableSwitchAllocator::allocate(
    const std::vector<SaRequest> &requests)
{
    grants_.clear();
    // Stage 1: per input port, a v:1 arbiter picks the bidding VC.
    for (const auto &r : requests) {
        pdr_assert(r.inPort >= 0 && r.inPort < p_);
        pdr_assert(r.inVc >= 0 && r.inVc < v_);
        pdr_assert(r.outPort >= 0 && r.outPort < p_);
        std::size_t idx = std::size_t(r.inPort) * v_ + r.inVc;
        pdr_assert(!inReq_[idx]);
        inReq_[idx] = true;
        want_[idx] = r.outPort;
    }

    // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle; the
    // bitmask engine iterates only bidding input ports
    for (int in = 0; in < p_; in++) {
        stage1Vc_[in] = NoGrant;
        bool any = false;
        // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle
        for (int vc = 0; vc < v_; vc++) {
            vcRow_[vc] = inReq_[std::size_t(in) * v_ + vc];
            any = any || vcRow_[vc];
        }
        if (any) {
            int vc = inputArb_[in].arbitrate(vcRow_);
            if (vc != NoGrant) {
                stage1Vc_[in] = vc;
                stage1Out_[in] = want_[std::size_t(in) * v_ + vc];
            }
        }
    }

    // Stage 2: per output port, a p:1 arbiter among forwarded winners.
    // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle
    for (int out = 0; out < p_; out++) {
        bool any = false;
        // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle
        for (int in = 0; in < p_; in++) {
            portRow_[in] =
                stage1Vc_[in] != NoGrant && stage1Out_[in] == out;
            any = any || portRow_[in];
        }
        if (!any)
            continue;
        int in_win = outputArb_[out].arbitrate(portRow_);
        if (in_win != NoGrant) {
            // Update priorities only for consumed grants so a VC that
            // won stage 1 but lost stage 2 keeps its turn.
            outputArb_[out].update(in_win);
            inputArb_[in_win].update(stage1Vc_[in_win]);
            grants_.push_back({in_win, stage1Vc_[in_win], out, false});
        }
    }

    // Clear scratch for the next round.
    for (const auto &r : requests) {
        std::size_t idx = std::size_t(r.inPort) * v_ + r.inVc;
        inReq_[idx] = false;
        want_[idx] = NoGrant;
    }
    return grants_;
}

void
ScalarSeparableSwitchAllocator::dumpState(
    std::vector<std::uint8_t> &out) const
{
    for (const auto &a : inputArb_)
        a.dumpState(out);
    for (const auto &a : outputArb_)
        a.dumpState(out);
}

// ---------------------------------------------------------------------
// ScalarSpeculativeSwitchAllocator: dense byte-array kill pass.
// ---------------------------------------------------------------------

ScalarSpeculativeSwitchAllocator::ScalarSpeculativeSwitchAllocator(int p,
                                                                   int v)
    : nonspec_(p, v), spec_(p, v), p_(p)
{
}

const std::vector<SaGrant> &
ScalarSpeculativeSwitchAllocator::allocate(
    const std::vector<SaRequest> &requests)
{
    ns_.clear();
    sp_.clear();
    for (const auto &r : requests)
        (r.spec ? sp_ : ns_).push_back(r);

    grants_ = nonspec_.allocate(ns_);

    if (!sp_.empty()) {
        // Ports consumed by non-speculative winners mask speculative
        // grants (Figure 7(c): non-spec selected over spec).  The
        // speculative allocator still runs (and updates its priorities)
        // exactly as the parallel hardware would.
        inUsed_.assign(p_, false);
        outUsed_.assign(p_, false);
        for (const auto &g : grants_) {
            inUsed_[g.inPort] = true;
            outUsed_[g.outPort] = true;
        }
        for (const auto &g : spec_.allocate(sp_)) {
            if (inUsed_[g.inPort] || outUsed_[g.outPort])
                continue;
            grants_.push_back(g);
            grants_.back().spec = true;
        }
    }
    return grants_;
}

void
ScalarSpeculativeSwitchAllocator::dumpState(
    std::vector<std::uint8_t> &out) const
{
    nonspec_.dumpState(out);
    spec_.dumpState(out);
}

// ---------------------------------------------------------------------
// ScalarVcAllocator: dense predicate-scanning two-stage pass, verbatim.
// ---------------------------------------------------------------------

ScalarVcAllocator::ScalarVcAllocator(int p, int v) : p_(p), v_(v)
{
    pdr_assert(p >= 1 && v >= 1);
    int nivc = p * v;
    firstStagePtr_.assign(nivc, 0);
    outputVcArb_.reserve(nivc);
    // pdr-lint: allow(PDR-PERF-DENSESCAN) one-time construction
    for (int i = 0; i < nivc; i++)
        outputVcArb_.emplace_back(nivc);
    reqRow_.assign(nivc, false);
    pickOf_.assign(nivc, -1);
    seen_.assign(nivc, false);
}

const std::vector<VaGrant> &
ScalarVcAllocator::allocate(const std::vector<VaRequest> &requests,
                            const std::uint64_t *free_vcs)
{
    // Keep the original cost shape (per-candidate indirect predicate
    // calls) so bench A/B against the bitmask engine measures the real
    // pre-rework path.
    return allocate(requests, [free_vcs](int out_port, int out_vc) {
        return ((free_vcs[out_port] >> out_vc) & 1u) != 0;
    });
}

const std::vector<VaGrant> &
ScalarVcAllocator::allocate(const std::vector<VaRequest> &requests,
                            const std::function<bool(int, int)> &is_free)
{
    grants_.clear();
    // Stage 1: each input VC picks one free candidate output VC on its
    // routed port, scanning from its rotating pointer.  pickOf_[ivc]
    // records the picked global output-VC index.
    contested_.clear();
    for (const auto &r : requests) {
        pdr_assert(r.inPort >= 0 && r.inPort < p_);
        pdr_assert(r.inVc >= 0 && r.inVc < v_);
        pdr_assert(r.outPort >= 0 && r.outPort < p_);
        int ivc = r.inPort * v_ + r.inVc;
        pdr_assert(!seen_[ivc]);
        seen_[ivc] = true;
        int start = firstStagePtr_[ivc];
        // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle;
        // the bitmask engine uses a rotated find-first-set instead
        for (int k = 0; k < v_; k++) {
            int ovc = (start + k) % v_;
            if (!((r.vcMask >> ovc) & 1u))
                continue;
            if (is_free(r.outPort, ovc)) {
                int ovc_idx = r.outPort * v_ + ovc;
                pickOf_[ivc] = ovc_idx;
                contested_.push_back(ovc_idx);
                break;
            }
        }
    }

    // Stage 2: per contested output VC, a (p*v):1 matrix arbiter over
    // the input VCs that picked it.
    for (int ovc_idx : contested_) {
        if (granted(grants_, ovc_idx))
            continue;   // Already resolved this output VC.
        // Build the request row for this output VC.
        int nivc = p_ * v_;
        // pdr-lint: allow(PDR-PERF-DENSESCAN) retained scalar oracle;
        // the bitmask engine stages packed bid rows incrementally
        for (int ivc = 0; ivc < nivc; ivc++)
            reqRow_[ivc] = (pickOf_[ivc] == ovc_idx);
        int winner = outputVcArb_[ovc_idx].arbitrate(reqRow_);
        if (winner != NoGrant) {
            outputVcArb_[ovc_idx].update(winner);
            grants_.push_back({winner / v_, winner % v_,
                               ovc_idx / v_, ovc_idx % v_});
            // Advance the winner's stage-1 pointer so it spreads load
            // over the output VCs next time.
            firstStagePtr_[winner] = (ovc_idx % v_ + 1) % v_;
        }
    }

    // Clear scratch state for the next round.
    for (const auto &r : requests) {
        int ivc = r.inPort * v_ + r.inVc;
        seen_[ivc] = false;
        pickOf_[ivc] = -1;
    }
    return grants_;
}

bool
ScalarVcAllocator::granted(const std::vector<VaGrant> &grants,
                           int ovc_idx) const
{
    for (const auto &g : grants)
        if (g.outPort * v_ + g.outVc == ovc_idx)
            return true;
    return false;
}

void
ScalarVcAllocator::dumpState(std::vector<std::uint8_t> &out) const
{
    for (int ptr : firstStagePtr_)
        out.push_back(std::uint8_t(ptr));
    for (const auto &a : outputVcArb_)
        a.dumpState(out);
}

} // namespace pdr::arb
