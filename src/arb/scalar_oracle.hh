/**
 * @file
 * Scalar reference allocators: the dense byte-row implementations that
 * predate the bitmask engine, retained verbatim as the equivalence
 * oracle.
 *
 * Every class here implements the same interface as its bitmask
 * counterpart and must produce bit-identical grants and priority-state
 * evolution; tests/arb/test_alloc_equiv.cc drives both in lockstep over
 * seeded random request streams, and the router can be switched onto
 * this path wholesale with router.scalar_alloc (the bench_core A/B
 * scenarios and whole-network golden comparisons use that).  Nothing
 * here is on the default hot path, so the dense scans carry justified
 * PDR-PERF-DENSESCAN suppressions rather than a rewrite.
 */

#ifndef PDR_ARB_SCALAR_ORACLE_HH
#define PDR_ARB_SCALAR_ORACLE_HH

#include <functional>
#include <vector>

#include "arb/switch_allocator.hh"
#include "arb/vc_allocator.hh"

namespace pdr::arb {

/** The dense upper-triangular matrix arbiter (pre-bitmask layout). */
class ScalarMatrixArbiter : public Arbiter
{
  public:
    explicit ScalarMatrixArbiter(int n);

    int arbitrate(const ReqRow &requests) const override;
    void update(int winner) override;

    bool beats(int i, int j) const;

    /** Same serialization as MatrixArbiter::dumpState. */
    void dumpState(std::vector<std::uint8_t> &out) const;

  private:
    /** Upper-triangular storage: m_[idx(i,j)] nonzero means i beats j,
     *  for i < j. */
    std::vector<std::uint8_t> m_;

    int idx(int i, int j) const;
};

/** Dense per-output-port arbitration for wormhole routers. */
class ScalarWormholeSwitchArbiter : public WormholeArbiterBase
{
  public:
    explicit ScalarWormholeSwitchArbiter(int p);

    const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) override;

    void dumpState(std::vector<std::uint8_t> &out) const override;

  private:
    int p_;
    std::vector<ScalarMatrixArbiter> outputArb_;
    ReqRow reqRow_;                //!< Reused per-output request row.
    std::vector<SaGrant> grants_;
};

/** Dense input-first separable switch allocator. */
class ScalarSeparableSwitchAllocator : public SwitchAllocatorBase
{
  public:
    ScalarSeparableSwitchAllocator(int p, int v);

    const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) override;

    void dumpState(std::vector<std::uint8_t> &out) const override;

  private:
    int p_;
    int v_;
    std::vector<ScalarMatrixArbiter> inputArb_;
    std::vector<ScalarMatrixArbiter> outputArb_;

    ReqRow inReq_;
    std::vector<int> want_;
    std::vector<int> stage1Vc_;
    std::vector<int> stage1Out_;
    ReqRow vcRow_;
    ReqRow portRow_;
    std::vector<SaGrant> grants_;
};

/** Dense parallel non-spec / spec allocation with non-spec priority. */
class ScalarSpeculativeSwitchAllocator : public SwitchAllocatorBase
{
  public:
    ScalarSpeculativeSwitchAllocator(int p, int v);

    const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) override;

    void dumpState(std::vector<std::uint8_t> &out) const override;

  private:
    ScalarSeparableSwitchAllocator nonspec_;
    ScalarSeparableSwitchAllocator spec_;
    int p_;

    std::vector<SaRequest> ns_;
    std::vector<SaRequest> sp_;
    std::vector<std::uint8_t> inUsed_;
    std::vector<std::uint8_t> outUsed_;
    std::vector<SaGrant> grants_;
};

/** Dense predicate-scanning separable VC allocator. */
class ScalarVcAllocator : public VcAllocatorBase
{
  public:
    ScalarVcAllocator(int p, int v);

    /** Packed-word entry of the common interface: wraps the words back
     *  into a predicate so the retained algorithm (and its cost shape)
     *  is exactly the pre-bitmask one. */
    const std::vector<VaGrant> &
    allocate(const std::vector<VaRequest> &requests,
             const std::uint64_t *free_vcs) override;

    /** The original predicate-driven algorithm, verbatim. */
    const std::vector<VaGrant> &
    allocate(const std::vector<VaRequest> &requests,
             const std::function<bool(int, int)> &is_free);

    void dumpState(std::vector<std::uint8_t> &out) const override;

  private:
    int p_;
    int v_;
    std::vector<int> firstStagePtr_;
    std::vector<ScalarMatrixArbiter> outputVcArb_;

    bool granted(const std::vector<VaGrant> &grants, int ovc_idx) const;

    ReqRow reqRow_;
    std::vector<int> pickOf_;
    std::vector<std::uint8_t> seen_;
    std::vector<int> contested_;
    std::vector<VaGrant> grants_;
};

} // namespace pdr::arb

#endif // PDR_ARB_SCALAR_ORACLE_HH
