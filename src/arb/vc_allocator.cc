#include "arb/vc_allocator.hh"

#include "common/logging.hh"

namespace pdr::arb {

VcAllocator::VcAllocator(int p, int v)
    : p_(p), v_(v), nivcWords_(wordsFor(p * v))
{
    pdr_assert(p >= 1 && p <= kWordBits);
    pdr_assert(v >= 1 && v <= kWordBits);
    int nivc = p * v;
    firstStagePtr_.assign(nivc, 0);
    outputVcArb_.reserve(nivc);
    // pdr-lint: allow(PDR-PERF-DENSESCAN) one-time construction
    for (int i = 0; i < nivc; i++)
        outputVcArb_.emplace_back(nivc);
    bids_.assign(std::size_t(nivc) * nivcWords_, 0);
    staged_.assign(nivcWords_, 0);
    freeScratch_.assign(p, 0);
}

const std::vector<VaGrant> &
VcAllocator::allocate(const std::vector<VaRequest> &requests,
                      const std::uint64_t *free_vcs)
{
    grants_.clear();
    contested_.clear();
    // Stage 1: each input VC picks one free candidate output VC on its
    // routed port -- the first set bit of (vcMask & free word) at or
    // after its rotating pointer, wrapping below it -- and stages a bid
    // on that output VC's packed (p*v)-wide row.
    for (const auto &r : requests) {
        pdr_assert(r.inPort >= 0 && r.inPort < p_);
        pdr_assert(r.inVc >= 0 && r.inVc < v_);
        pdr_assert(r.outPort >= 0 && r.outPort < p_);
        int ivc = r.inPort * v_ + r.inVc;
        std::uint64_t cand = std::uint64_t(r.vcMask) & free_vcs[r.outPort];
        if (!cand)
            continue;
        std::uint64_t hi = cand & (~std::uint64_t(0) << firstStagePtr_[ivc]);
        int ovc = ctz64(hi ? hi : cand);
        int ovc_idx = r.outPort * v_ + ovc;
        std::uint64_t *row = &bids_[std::size_t(ovc_idx) * nivcWords_];
        pdr_assert(!testBit(row, ivc));  // At most one request per ivc.
        setBit(row, ivc);
        if (!testBit(staged_.data(), ovc_idx)) {
            setBit(staged_.data(), ovc_idx);
            contested_.push_back(ovc_idx);
        }
    }

    // Stage 2: per contested output VC (in first-pick order, each once),
    // a (p*v):1 matrix arbiter over the staged bid row.
    for (int ovc_idx : contested_) {
        std::uint64_t *row = &bids_[std::size_t(ovc_idx) * nivcWords_];
        int winner = outputVcArb_[ovc_idx].arbitrateMask(row);
        if (winner != NoGrant) {
            outputVcArb_[ovc_idx].update(winner);
            grants_.push_back({winner / v_, winner % v_,
                               ovc_idx / v_, ovc_idx % v_});
            // Advance the winner's stage-1 pointer so it spreads load
            // over the output VCs next time.
            firstStagePtr_[winner] = (ovc_idx % v_ + 1) % v_;
        }
        for (int w = 0; w < nivcWords_; w++)
            row[w] = 0;
        clearBit(staged_.data(), ovc_idx);
    }
    return grants_;
}

const std::vector<VaGrant> &
VcAllocator::allocate(const std::vector<VaRequest> &requests,
                      const std::function<bool(int, int)> &is_free)
{
    // pdr-lint: allow(PDR-PERF-DENSESCAN) convenience entry for tests;
    // the router maintains the free words incrementally instead
    for (int out = 0; out < p_; out++) {
        std::uint64_t w = 0;
        // pdr-lint: allow(PDR-PERF-DENSESCAN) convenience entry for
        // tests; materializes the packed free words once per call
        for (int ov = 0; ov < v_; ov++) {
            if (is_free(out, ov))
                w |= std::uint64_t(1) << ov;
        }
        freeScratch_[out] = w;
    }
    return allocate(requests, freeScratch_.data());
}

void
VcAllocator::dumpState(std::vector<std::uint8_t> &out) const
{
    for (int ptr : firstStagePtr_)
        out.push_back(std::uint8_t(ptr));
    for (const auto &a : outputVcArb_)
        a.dumpState(out);
}

} // namespace pdr::arb
