#include "arb/vc_allocator.hh"

#include "common/logging.hh"

namespace pdr::arb {

VcAllocator::VcAllocator(int p, int v) : p_(p), v_(v)
{
    pdr_assert(p >= 1 && v >= 1);
    int nivc = p * v;
    firstStagePtr_.assign(nivc, 0);
    outputVcArb_.reserve(nivc);
    for (int i = 0; i < nivc; i++)
        outputVcArb_.emplace_back(nivc);
    reqRow_.assign(nivc, false);
    pickOf_.assign(nivc, -1);
    seen_.assign(nivc, false);
}

const std::vector<VaGrant> &
VcAllocator::allocate(const std::vector<VaRequest> &requests,
                      const std::function<bool(int, int)> &is_free)
{
    grants_.clear();
    // Stage 1: each input VC picks one free candidate output VC on its
    // routed port, scanning from its rotating pointer.  pickOf_[ivc]
    // records the picked global output-VC index.
    contested_.clear();
    for (const auto &r : requests) {
        pdr_assert(r.inPort >= 0 && r.inPort < p_);
        pdr_assert(r.inVc >= 0 && r.inVc < v_);
        pdr_assert(r.outPort >= 0 && r.outPort < p_);
        int ivc = r.inPort * v_ + r.inVc;
        pdr_assert(!seen_[ivc]);
        seen_[ivc] = true;
        int start = firstStagePtr_[ivc];
        for (int k = 0; k < v_; k++) {
            int ovc = (start + k) % v_;
            if (!((r.vcMask >> ovc) & 1u))
                continue;
            if (is_free(r.outPort, ovc)) {
                int ovc_idx = r.outPort * v_ + ovc;
                pickOf_[ivc] = ovc_idx;
                contested_.push_back(ovc_idx);
                break;
            }
        }
    }

    // Stage 2: per contested output VC, a (p*v):1 matrix arbiter over
    // the input VCs that picked it.
    for (int ovc_idx : contested_) {
        if (granted(grants_, ovc_idx))
            continue;   // Already resolved this output VC.
        // Build the request row for this output VC.
        int nivc = p_ * v_;
        for (int ivc = 0; ivc < nivc; ivc++)
            reqRow_[ivc] = (pickOf_[ivc] == ovc_idx);
        int winner = outputVcArb_[ovc_idx].arbitrate(reqRow_);
        if (winner != NoGrant) {
            outputVcArb_[ovc_idx].update(winner);
            grants_.push_back({winner / v_, winner % v_,
                               ovc_idx / v_, ovc_idx % v_});
            // Advance the winner's stage-1 pointer so it spreads load
            // over the output VCs next time.
            firstStagePtr_[winner] = (ovc_idx % v_ + 1) % v_;
        }
    }

    // Clear scratch state for the next round.
    for (const auto &r : requests) {
        int ivc = r.inPort * v_ + r.inVc;
        seen_[ivc] = false;
        pickOf_[ivc] = -1;
    }
    return grants_;
}

bool
VcAllocator::granted(const std::vector<VaGrant> &grants, int ovc_idx) const
{
    for (const auto &g : grants)
        if (g.outPort * v_ + g.outVc == ovc_idx)
            return true;
    return false;
}

} // namespace pdr::arb
