/**
 * @file
 * Separable switch allocators (Figure 7 of the paper), bitmask engine.
 *
 * WormholeSwitchArbiter: one p:1 matrix arbiter per output port; the
 * router holds the granted port for the whole packet (Figure 7(a) - the
 * port-status state itself lives in the router model).
 *
 * SeparableSwitchAllocator: the VC-router allocator of Figure 7(b): a
 * v:1 matrix arbiter per input port picks which VC may bid, then a p:1
 * matrix arbiter per output port picks the winning input.  Allocation is
 * per-flit (cycle-by-cycle), so no port status is stored.
 *
 * SpeculativeSwitchAllocator: Figure 7(c): two separable allocators run
 * in parallel, one over non-speculative requests and one over
 * speculative ones; a non-speculative grant for an output port (or from
 * an input port) kills any speculative grant touching the same port, so
 * speculation can never hurt non-speculative traffic.
 *
 * Requests are staged as packed uint64_t bid words (one word over VCs
 * per input port, one word over input ports per output port; the
 * parameter schema caps p and v at 64) and both stages iterate only the
 * set bits, so the cost scales with live requests rather than p * v.
 * The speculative kill pass is two mask intersections.  The previous
 * dense implementations are retained verbatim in scalar_oracle.hh as
 * the equivalence oracle: grants and priority evolution are
 * bit-identical (tests/arb/test_alloc_equiv.cc).
 */

#ifndef PDR_ARB_SWITCH_ALLOCATOR_HH
#define PDR_ARB_SWITCH_ALLOCATOR_HH

#include <memory>
#include <vector>

#include "arb/matrix_arbiter.hh"

namespace pdr::arb {

/** A switch request: input VC (inPort, inVc) wants outPort. */
struct SaRequest
{
    int inPort;
    int inVc;       //!< 0 for wormhole routers.
    int outPort;
    bool spec = false;  //!< Speculative (head still awaiting VA).
};

/** A granted switch passage. */
struct SaGrant
{
    int inPort;
    int inVc;
    int outPort;
    bool spec = false;
};

/**
 * Interface of the wormhole per-output-port arbiter, so the router can
 * swap the bitmask engine for the scalar oracle at runtime
 * (router.scalar_alloc; same grants either way).
 */
class WormholeArbiterBase
{
  public:
    virtual ~WormholeArbiterBase() = default;

    /**
     * Arbitrate head-flit requests for output ports.  Each input port
     * may request at most one output (deterministic routing).  Requests
     * for ports already held by a packet must be filtered by the caller
     * (the port status lives with the router, Figure 7(a)).
     *
     * The returned reference points into allocator-owned scratch and is
     * valid until the next allocate() call (one call per router per
     * cycle; returning by value showed up as malloc churn in profiles).
     */
    virtual const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) = 0;

    /** Append all arbiter priority state (equivalence tests). */
    virtual void dumpState(std::vector<std::uint8_t> &out) const = 0;
};

/** Interface of the per-flit switch allocators (separable and
 *  speculative), runtime-swappable against the scalar oracle. */
class SwitchAllocatorBase
{
  public:
    virtual ~SwitchAllocatorBase() = default;

    /** One allocation round; reference valid until the next call. */
    virtual const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) = 0;

    /** Append all arbiter priority state (equivalence tests). */
    virtual void dumpState(std::vector<std::uint8_t> &out) const = 0;
};

/** Per-output-port matrix arbitration for wormhole routers. */
class WormholeSwitchArbiter : public WormholeArbiterBase
{
  public:
    explicit WormholeSwitchArbiter(int p);

    const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) override;

    void dumpState(std::vector<std::uint8_t> &out) const override;

  private:
    int p_;
    std::vector<MatrixArbiter> outputArb_;
    std::uint64_t outMask_ = 0;          //!< Outputs with >= 1 bid.
    std::vector<std::uint64_t> outBids_; //!< Per output: input-port bids.
    std::vector<SaGrant> grants_;        //!< Reused result storage.
};

/** Input-first separable allocator for (non-speculative) VC routers. */
class SeparableSwitchAllocator : public SwitchAllocatorBase
{
  public:
    SeparableSwitchAllocator(int p, int v);

    /**
     * Two-stage separable allocation.  At most one grant per input port
     * and per output port.  Arbiter priorities are updated only for
     * requests that win both stages (the consumed grants).
     */
    const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) override;

    void dumpState(std::vector<std::uint8_t> &out) const override;

    int numPorts() const { return p_; }
    int numVcs() const { return v_; }

  private:
    int p_;
    int v_;
    std::vector<MatrixArbiter> inputArb_;   //!< v:1 per input port.
    std::vector<MatrixArbiter> outputArb_;  //!< p:1 per output port.

    // Reused per-call bid staging (hot path).  inVcBids_ / outBids_
    // words are zeroed again before allocate() returns.
    std::uint64_t inMask_ = 0;              //!< Inputs with >= 1 bid.
    std::vector<std::uint64_t> inVcBids_;   //!< Per input: VC bids.
    std::uint64_t outMask_ = 0;             //!< Outputs with a finalist.
    std::vector<std::uint64_t> outBids_;    //!< Per output: input bids.
    std::vector<int> want_;      //!< [in * v + vc] requested output.
    std::vector<int> stage1Vc_;  //!< Stage-1 winner VC per input port.
    std::vector<SaGrant> grants_;
};

/** Parallel non-spec / spec allocation with non-spec priority. */
class SpeculativeSwitchAllocator : public SwitchAllocatorBase
{
  public:
    SpeculativeSwitchAllocator(int p, int v);

    /**
     * Allocate non-speculative requests first, then speculative requests
     * on input/output ports untouched by non-speculative winners.
     * Returned speculative grants carry spec = true; the router must
     * discard them if the parallel VA did not deliver an output VC (the
     * crossbar slot is then simply wasted).
     */
    const std::vector<SaGrant> &
    allocate(const std::vector<SaRequest> &requests) override;

    void dumpState(std::vector<std::uint8_t> &out) const override;

  private:
    SeparableSwitchAllocator nonspec_;
    SeparableSwitchAllocator spec_;

    // Reused per-call scratch (hot path).
    std::vector<SaRequest> ns_;
    std::vector<SaRequest> sp_;
    std::vector<SaGrant> grants_;
};

} // namespace pdr::arb

#endif // PDR_ARB_SWITCH_ALLOCATOR_HH
