/**
 * @file
 * Abstract n:1 arbiter interface.
 *
 * An arbiter picks one winner among a set of requestors each cycle.  The
 * paper's routers are built from matrix arbiters (Figure 10); a
 * round-robin variant is provided for ablation studies.
 */

#ifndef PDR_ARB_ARBITER_HH
#define PDR_ARB_ARBITER_HH

#include <cstdint>
#include <vector>

namespace pdr::arb {

/** Index of "no winner". */
constexpr int NoGrant = -1;

/**
 * A request row: element i nonzero iff requestor i bids.  This is the
 * dense byte representation used by the abstract interface, the
 * round-robin ablation arbiter, and the scalar oracle; the router hot
 * path stages packed uint64_t rows instead (arb/bitrow.hh) and calls
 * MatrixArbiter::arbitrateMask directly.
 */
using ReqRow = std::vector<std::uint8_t>;

/** Abstract n:1 arbiter. */
class Arbiter
{
  public:
    explicit Arbiter(int n) : n_(n) {}
    virtual ~Arbiter() = default;

    /** Number of requestors. */
    int size() const { return n_; }

    /**
     * Pick a winner among requestors (request[i] nonzero if i requests).
     * Does NOT update priority state; call update(winner) when the grant
     * is actually consumed.  Returns NoGrant if no requests.
     */
    virtual int arbitrate(const ReqRow &requests) const = 0;

    /** Record that `winner` consumed a grant (moves it to lowest
     *  priority / advances the pointer). */
    virtual void update(int winner) = 0;

  private:
    int n_;
};

} // namespace pdr::arb

#endif // PDR_ARB_ARBITER_HH
