/**
 * @file
 * Chrome trace-event JSON writer (the "JSON Array with metadata"
 * flavor: {"displayTimeUnit": ..., "traceEvents": [...]}) -- loadable
 * in Perfetto / chrome://tracing.
 *
 * Three event streams ride in one file, separated by pid:
 *
 *   kPacketPid  sim-time packet-lifecycle spans (ts/dur in cycles,
 *               one tid per destination node) for the sampled subset;
 *   kRouterPid  sim-time router credit-stall spans and per-window
 *               counter tracks (one tid per router);
 *   kHostPid    host wall-clock profile scopes (ts/dur in real
 *               microseconds since the run started);
 *   kWorkerPid  engine-profiler worker phase spans (tick / drain /
 *               barrier nested in per-epoch window spans, one tid
 *               per worker) and per-worker utilization counter
 *               tracks, ts/dur in real microseconds.
 *
 * Determinism contract: every kPacketPid / kRouterPid event is a pure
 * function of simulation state, emitted in a fixed order, so the
 * sim-time lines of the file are byte-identical across runs and
 * worker counts.  Wall-clock values appear only in kHostPid and
 * kWorkerPid events.
 * One event per line, which is what the trace tests key on.
 */

#ifndef PDR_TELEM_TRACE_HH
#define PDR_TELEM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace pdr::telem {

/** Streaming Chrome trace-event writer; see file comment. */
class TraceWriter
{
  public:
    static constexpr int kPacketPid = 1;    //!< Sim packet lifecycles.
    static constexpr int kRouterPid = 2;    //!< Sim router activity.
    static constexpr int kHostPid = 3;      //!< Host wall-clock profile.
    static constexpr int kWorkerPid = 4;    //!< Engine worker phases.

    /** Writes the array header immediately; `out` must outlive the
     *  writer.  nullptr = inactive (every emit is a no-op). */
    explicit TraceWriter(std::ostream *out);

    /** Still pointing at a live stream. */
    bool active() const { return out_ != nullptr; }

    /** Process-name metadata event (ph "M"). */
    void processName(int pid, const char *name);

    /**
     * Complete event (ph "X"): a [ts, ts + dur) span on (pid, tid).
     * `args` is a pre-rendered JSON object ("{...}") or empty.
     * Timestamps are raw uint64 in the stream's unit (cycles for the
     * sim pids, microseconds for the host pid).
     */
    void completeEvent(int pid, std::uint64_t tid, const char *name,
                       const char *cat, std::uint64_t ts,
                       std::uint64_t dur,
                       const std::string &args = std::string());

    /** Counter event (ph "C"): one named series on (pid, tid=0). */
    void counterEvent(int pid, const char *name, std::uint64_t ts,
                      const char *key, double value);

    /** Close the JSON array; further emits are no-ops. */
    void close();

    /** Events written so far (all pids, metadata included). */
    std::uint64_t events() const { return events_; }

  private:
    void emit(const std::string &line);

    std::ostream *out_;
    std::uint64_t events_ = 0;
};

} // namespace pdr::telem

#endif // PDR_TELEM_TRACE_HH
