/**
 * @file
 * Windowed streaming sampler: every telem.interval cycles, one
 * cycle-indexed record of what the network did in that window --
 * delivered throughput, latency percentiles (LatencyStats window
 * deltas via its merge algebra), per-router activity deltas from the
 * counter registry, and flit-pool occupancy -- plus, at teardown, a
 * per-router traffic heatmap (the repartitioner's future input) and a
 * run summary record.
 *
 * Records are NDJSON (one JSON object per line; "window" records
 * during the run, "router" heatmap rows and one "summary" at the end)
 * or CSV (window rows only).  Sampling happens at safe points only --
 * serial steps or the post-drain barrier with the gang parked, on the
 * stepping thread -- and reads simulation state without mutating it.
 * All emitted values are pure functions of simulation state, so the
 * stream is byte-identical across worker counts.
 */

#ifndef PDR_TELEM_SAMPLER_HH
#define PDR_TELEM_SAMPLER_HH

#include <ostream>

#include "stats/latency.hh"
#include "telem/config.hh"
#include "telem/counters.hh"

namespace pdr::net {
class Network;
} // namespace pdr::net

namespace pdr::telem {

class TraceWriter;

/** The windowed NDJSON/CSV record stream; see file comment. */
class StreamSampler
{
  public:
    /**
     * Baselines the window state at net.now(); the first window ends
     * `cfg.interval` cycles later.  `out` may be nullptr: records are
     * then computed (and the summary filled) but not written, which
     * is what the overhead A/B and the bit-identity tests run.
     */
    StreamSampler(const Config &cfg, const net::Network &net,
                  std::ostream *out);

    /**
     * Emit the record of the window ending at cycle `at`.  `at` must
     * be the current cycle (counters are flushed through it) and past
     * the previous window's end.  Also drops per-window counter
     * tracks on `trace` (nullptr = none).
     */
    void sampleWindow(sim::Cycle at, TraceWriter *trace);

    /** Final partial window (if any), the per-router heatmap and the
     *  summary record, at end-of-run cycle `end`. */
    void finish(sim::Cycle end, TraceWriter *trace);

    const Summary &summary() const { return summary_; }

  private:
    void emitWindow(sim::Cycle at, TraceWriter *trace);
    void emitHeatmap(sim::Cycle end);

    Config cfg_;
    const net::Network &net_;
    std::ostream *out_;

    sim::Cycle windowEnd_;          //!< End of the last emitted window.
    CounterSnapshot prevSnap_;      //!< Counter state at windowEnd_.
    stats::LatencyStats prevLat_;   //!< Latency state at windowEnd_.
    std::uint64_t prevFlits_ = 0;   //!< Delivered flits at windowEnd_.
    std::uint64_t prevPackets_ = 0;

    Summary summary_;
};

} // namespace pdr::telem

#endif // PDR_TELEM_SAMPLER_HH
