#include "telem/sampler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "net/network.hh"
#include "telem/trace.hh"

namespace pdr::telem {

StreamSampler::StreamSampler(const Config &cfg, const net::Network &net,
                             std::ostream *out)
    : cfg_(cfg), net_(net), out_(out), windowEnd_(net.now()),
      prevSnap_(CounterSnapshot::sample(net, net.now())),
      prevLat_(net.latency()), prevFlits_(net.deliveredFlits()),
      prevPackets_(net.deliveredPackets())
{
    if (out_ && cfg_.format == "csv") {
        *out_ << "cycle,window,flits,packets,rate,lat_count,lat_mean,"
                 "lat_p50,lat_p99,pool_live,credit_stall_cycles,"
                 "buf_occupancy\n";
    }
}

void
StreamSampler::sampleWindow(sim::Cycle at, TraceWriter *trace)
{
    pdr_assert(at > windowEnd_);
    emitWindow(at, trace);
}

void
StreamSampler::emitWindow(sim::Cycle at, TraceWriter *trace)
{
    const sim::Cycle win = at - windowEnd_;
    const auto &cat = counterCatalog();

    CounterSnapshot snap = CounterSnapshot::sample(net_, at);
    CounterSnapshot d = snap.deltaSince(prevSnap_);
    stats::LatencyStats lat = net_.latency();
    stats::LatencyStats dlat = lat.deltaSince(prevLat_);
    const std::uint64_t flits = net_.deliveredFlits();
    const std::uint64_t packets = net_.deliveredPackets();
    const std::uint64_t dflits = flits - prevFlits_;
    const std::uint64_t dpackets = packets - prevPackets_;
    const double nodes = double(net_.lattice().numNodes());
    const double rate = double(dflits) / (double(win) * nodes);

    summary_.windows++;
    summary_.peakWindowRate = std::max(summary_.peakWindowRate, rate);

    if (trace && trace->active()) {
        trace->counterEvent(TraceWriter::kRouterPid, "delivered_flits",
                            at, "flits", double(dflits));
        trace->counterEvent(TraceWriter::kRouterPid, "pool_live", at,
                            "live",
                            double(net_.flitPool().liveCount()));
    }

    if (out_) {
        if (cfg_.format == "csv") {
            *out_ << csprintf(
                "%llu,%llu,%llu,%llu,%.6g,%llu,%.6g,%.6g,%.6g,%zu,"
                "%llu,%llu\n",
                (unsigned long long)at, (unsigned long long)win,
                (unsigned long long)dflits,
                (unsigned long long)dpackets, rate,
                (unsigned long long)dlat.count(), dlat.mean(),
                dlat.percentile(50.0), dlat.percentile(99.0),
                net_.flitPool().liveCount(),
                (unsigned long long)d.total(
                    std::size_t(counterIndex("credit_stall_cycles"))),
                (unsigned long long)d.total(
                    std::size_t(counterIndex("buf_occupancy"))));
        } else {
            std::string rec = csprintf(
                "{\"type\": \"window\", \"cycle\": %llu, "
                "\"window\": %llu, \"flits\": %llu, "
                "\"packets\": %llu, \"rate\": %.6g, "
                "\"lat_count\": %llu, \"lat_mean\": %.6g, "
                "\"lat_p50\": %.6g, \"lat_p95\": %.6g, "
                "\"lat_p99\": %.6g, \"lat_min\": %.6g, "
                "\"lat_max\": %.6g, \"pool_live\": %zu",
                (unsigned long long)at, (unsigned long long)win,
                (unsigned long long)dflits,
                (unsigned long long)dpackets, rate,
                (unsigned long long)dlat.count(), dlat.mean(),
                dlat.percentile(50.0), dlat.percentile(95.0),
                dlat.percentile(99.0), dlat.min(), dlat.max(),
                net_.flitPool().liveCount());
            for (std::size_t c = 0; c < cat.size(); c++) {
                rec += csprintf(", \"%s\": %llu", cat[c].name,
                                (unsigned long long)d.total(c));
            }
            // Per-router activity in the window (flits forwarded):
            // one array entry per router, index order -- the windowed
            // form of the teardown heatmap.
            const std::size_t fo =
                std::size_t(counterIndex("flits_out"));
            rec += ", \"router_flits\": [";
            for (std::size_t r = 0; r < d.numRouters(); r++) {
                rec += csprintf("%s%llu", r ? "," : "",
                                (unsigned long long)d.value(r, fo));
            }
            rec += "]}";
            *out_ << rec << "\n";
        }
    }

    windowEnd_ = at;
    prevSnap_ = std::move(snap);
    prevLat_ = lat;
    prevFlits_ = flits;
    prevPackets_ = packets;
}

void
StreamSampler::emitHeatmap(sim::Cycle end)
{
    // One row per router with its end-of-run counter totals and
    // lattice coordinates: exactly the per-router load map an
    // adaptive repartitioner consumes (ROADMAP item 3).
    const auto &cat = counterCatalog();
    const auto &lat = net_.lattice();
    for (std::size_t r = 0; r < prevSnap_.numRouters(); r++) {
        std::string rec = csprintf(
            "{\"type\": \"router\", \"cycle\": %llu, \"id\": %zu, "
            "\"coords\": [",
            (unsigned long long)end, r);
        for (int dim = 0; dim < lat.dims(); dim++) {
            rec += csprintf("%s%d", dim ? "," : "",
                            lat.coordOf(sim::NodeId(r), dim));
        }
        rec += "]";
        for (std::size_t c = 0; c < cat.size(); c++) {
            rec += csprintf(", \"%s\": %llu", cat[c].name,
                            (unsigned long long)prevSnap_.value(r, c));
        }
        rec += "}";
        *out_ << rec << "\n";
    }
}

void
StreamSampler::finish(sim::Cycle end, TraceWriter *trace)
{
    if (end > windowEnd_)
        emitWindow(end, trace);        // Final partial window.
    summary_.flits = prevFlits_;
    summary_.packets = prevPackets_;

    if (out_ && cfg_.format != "csv") {
        emitHeatmap(end);
        *out_ << csprintf(
            "{\"type\": \"summary\", \"cycles\": %llu, "
            "\"windows\": %llu, \"flits\": %llu, \"packets\": %llu, "
            "\"peak_window_rate\": %.6g}\n",
            (unsigned long long)end,
            (unsigned long long)summary_.windows,
            (unsigned long long)summary_.flits,
            (unsigned long long)summary_.packets,
            summary_.peakWindowRate);
    }
    if (out_)
        out_->flush();
}

} // namespace pdr::telem
