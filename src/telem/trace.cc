#include "telem/trace.hh"

#include "common/logging.hh"

namespace pdr::telem {

TraceWriter::TraceWriter(std::ostream *out) : out_(out)
{
    if (!out_)
        return;
    // displayTimeUnit only affects the viewer's ruler; the sim pids
    // carry cycles in the ts/dur fields regardless.
    *out_ << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
}

void
TraceWriter::emit(const std::string &line)
{
    if (!out_)
        return;
    if (events_ > 0)
        *out_ << ",\n";
    *out_ << line;
    events_++;
}

void
TraceWriter::processName(int pid, const char *name)
{
    emit(csprintf("{\"name\": \"process_name\", \"ph\": \"M\", "
                  "\"pid\": %d, \"tid\": 0, "
                  "\"args\": {\"name\": \"%s\"}}",
                  pid, name));
}

void
TraceWriter::completeEvent(int pid, std::uint64_t tid, const char *name,
                           const char *cat, std::uint64_t ts,
                           std::uint64_t dur, const std::string &args)
{
    std::string line = csprintf(
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"pid\": %d, \"tid\": %llu, \"ts\": %llu, \"dur\": %llu",
        name, cat, pid, (unsigned long long)tid,
        (unsigned long long)ts, (unsigned long long)dur);
    if (!args.empty())
        line += ", \"args\": " + args;
    line += "}";
    emit(line);
}

void
TraceWriter::counterEvent(int pid, const char *name, std::uint64_t ts,
                          const char *key, double value)
{
    emit(csprintf("{\"name\": \"%s\", \"ph\": \"C\", \"pid\": %d, "
                  "\"tid\": 0, \"ts\": %llu, "
                  "\"args\": {\"%s\": %.6g}}",
                  name, pid, (unsigned long long)ts, key, value));
}

void
TraceWriter::close()
{
    if (!out_)
        return;
    *out_ << "\n]}\n";
    out_->flush();
    out_ = nullptr;
}

} // namespace pdr::telem
