/**
 * @file
 * Telemetry configuration (the `telem.*` parameter group) and the
 * per-run summary the sampler leaves behind.
 *
 * Everything configured here is observational.  The hard contract --
 * shared with the auditor and the lint rules that enforce it -- is
 * that telemetry is read-only with respect to simulation state: RNG
 * streams, wake tables, flit pools and result CSVs are bit-identical
 * whether telemetry is on or off, at any worker count.  The only
 * wall-clock reads live in the host-profile trace stream (see
 * docs/OBSERVABILITY.md and lint rule PDR-OBS-WALLCLOCK).
 */

#ifndef PDR_TELEM_CONFIG_HH
#define PDR_TELEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace pdr::telem {

/** Telemetry switches (`telem.*` keys; docs/OBSERVABILITY.md). */
struct Config
{
    /**
     * Master switch for the windowed stream sampler: every `interval`
     * cycles a cycle-indexed record of windowed throughput, latency
     * percentiles, per-router activity and flit-pool occupancy is
     * emitted, plus a per-router traffic heatmap at teardown.  Off by
     * default; when off, no sampling epochs run at all.
     */
    bool enable = false;

    /** Sampling window length in cycles (telem.interval). */
    sim::Cycle interval = 5000;

    /**
     * Stream destination (telem.out): a file path, "-" for stdout, or
     * empty to sample without writing (the summary and the read-only
     * contract are exercised either way; used by the overhead A/B and
     * the bit-identity tests).
     */
    std::string out;

    /** Stream format (telem.format): "ndjson" (full records, heatmap,
     *  summary) or "csv" (window rows only). */
    std::string format = "ndjson";

    /**
     * Chrome trace-event JSON destination (telem.trace); empty
     * disables tracing.  Independent of `enable`: the trace records
     * sim-time spans (sampled packet lifecycles, router credit-stall
     * intervals) and the host-wall-clock profile stream.
     */
    std::string trace;

    /** Packet-lifecycle sampling stride: packets whose id is a
     *  multiple of this are traced (telem.trace_packets). */
    std::uint64_t tracePackets = 64;

    /** Any telemetry output requested (sampler or trace). */
    bool active() const { return enable || !trace.empty(); }

    /** Throws std::invalid_argument on a bad combination. */
    void validate() const;
};

bool operator==(const Config &a, const Config &b);
inline bool
operator!=(const Config &a, const Config &b)
{
    return !(a == b);
}

/** What one run's telemetry amounted to (SimResults::telem; sweeps
 *  aggregate these into the per-point summary table). */
struct Summary
{
    std::uint64_t windows = 0;      //!< Window records emitted.
    std::uint64_t flits = 0;        //!< Flits delivered over the run.
    std::uint64_t packets = 0;      //!< Packets delivered over the run.
    /** Max windowed delivery rate seen (flits/node/cycle). */
    double peakWindowRate = 0.0;
    std::uint64_t traceEvents = 0;  //!< Trace events written (all pids).
};

} // namespace pdr::telem

#endif // PDR_TELEM_CONFIG_HH
