#include "telem/telemetry.hh"

#include <iostream>
#include <stdexcept>

#include "common/logging.hh"
#include "prof/profiler.hh"

namespace pdr::telem {

void
Config::validate() const
{
    if (format != "ndjson" && format != "csv") {
        throw std::invalid_argument(
            "telem.format must be 'ndjson' or 'csv', got '" + format +
            "'");
    }
    if (interval < 1) {
        throw std::invalid_argument(
            "telem.interval must be >= 1 cycle");
    }
    if (tracePackets < 1) {
        throw std::invalid_argument(
            "telem.trace_packets must be >= 1 (1 traces every "
            "packet)");
    }
}

bool
operator==(const Config &a, const Config &b)
{
    return a.enable == b.enable && a.interval == b.interval &&
           a.out == b.out && a.format == b.format &&
           a.trace == b.trace && a.tracePackets == b.tracePackets;
}

// ----- HostProfiler ----------------------------------------------------

void
HostProfiler::bind(TraceWriter *trace)
{
    trace_ = trace;
    // Wall clock, host-profile stream only: these timestamps are
    // emitted exclusively as kHostPid trace events.
    // pdr-lint: allow(PDR-OBS-WALLCLOCK) host-profile trace stream;
    // values never reach sim-facing output.
    epoch_ = std::chrono::steady_clock::now();
    lastWindowUs_ = 0;
}

std::uint64_t
HostProfiler::nowUs() const
{
    if (!trace_)
        return 0;
    // pdr-lint: allow(PDR-OBS-WALLCLOCK) host-profile trace stream;
    // values never reach sim-facing output.
    auto d = std::chrono::steady_clock::now() - epoch_;
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(d)
            .count());
}

void
HostProfiler::windowSpan(sim::Cycle cycle)
{
    if (!trace_ || !trace_->active())
        return;
    const std::uint64_t now = nowUs();
    trace_->completeEvent(TraceWriter::kHostPid, 0, "window", "host",
                          lastWindowUs_, now - lastWindowUs_,
                          csprintf("{\"cycle\": %llu}",
                                   (unsigned long long)cycle));
    lastWindowUs_ = now;
}

HostProfiler::Scope::Scope(HostProfiler *prof, const char *name)
    : prof_(prof && prof->trace_ ? prof : nullptr), name_(name)
{
    if (prof_)
        t0_ = prof_->nowUs();
}

HostProfiler::Scope::~Scope()
{
    if (!prof_ || !prof_->trace_->active())
        return;
    const std::uint64_t t1 = prof_->nowUs();
    prof_->trace_->completeEvent(TraceWriter::kHostPid, 0, name_,
                                 "host", t0_, t1 - t0_);
}

// ----- Telemetry -------------------------------------------------------

Telemetry::Telemetry(const Config &cfg, net::Network &net,
                     prof::Profiler *prof)
    : cfg_(cfg), net_(net), prof_(prof)
{
    cfg_.validate();

    if ((cfg_.enable || prof_) && !cfg_.out.empty()) {
        if (cfg_.out == "-") {
            streamOut_ = &std::cout;
        } else {
            streamFile_.open(cfg_.out);
            if (!streamFile_) {
                throw std::runtime_error("telem.out: cannot write '" +
                                         cfg_.out + "'");
            }
            streamOut_ = &streamFile_;
        }
    }

    if (!cfg_.trace.empty()) {
        traceFile_.open(cfg_.trace);
        if (!traceFile_) {
            throw std::runtime_error("telem.trace: cannot write '" +
                                     cfg_.trace + "'");
        }
        trace_ = std::make_unique<TraceWriter>(&traceFile_);
        trace_->processName(TraceWriter::kPacketPid, "sim: packets");
        trace_->processName(TraceWriter::kRouterPid, "sim: routers");
        trace_->processName(TraceWriter::kHostPid, "host: profile");
        if (prof_)
            trace_->processName(TraceWriter::kWorkerPid,
                                "host: workers");
        host_.bind(trace_.get());

        // Read-only hooks: the sinks append deliveries (the stepper
        // re-shards this per worker and merges back in node order),
        // and each router appends its closed credit-stall spans to
        // its own buffer.
        net_.recordDeliveries(&deliveries_);
        stallSpans_.resize(std::size_t(net_.lattice().numRouters()));
        for (sim::NodeId r = 0; r < net_.lattice().numRouters(); r++)
            net_.routerAt(r).traceStalls(&stallSpans_[std::size_t(r)]);
    }

    if (cfg_.enable)
        sampler_ =
            std::make_unique<StreamSampler>(cfg_, net_, streamOut_);

    // The profiler rides the telemetry cadence: a profiled run has
    // sampling epochs even with the stream sampler and trace off.
    if (cfg_.active() || prof_)
        nextSampleAt_ = net_.now() + cfg_.interval;
}

Telemetry::~Telemetry()
{
    finish();
}

void
Telemetry::poll()
{
    while (nextSampleAt_ <= net_.now()) {
        emitEpoch(nextSampleAt_);
        nextSampleAt_ += cfg_.interval;
    }
}

void
Telemetry::emitEpoch(sim::Cycle at)
{
    // Epochs land exactly on their boundary: cap() bounds every clock
    // jump and poll() runs before each step, so the clock cannot pass
    // a boundary unobserved.
    pdr_assert(net_.now() == at);
    host_.windowSpan(at);
    if (sampler_)
        sampler_->sampleWindow(at, trace_.get());
    if (prof_)
        emitProfEpoch(prof_->sampleEpoch(at));
    if (trace_) {
        drainPacketSpans();
        drainStallSpans();
    }
}

void
Telemetry::emitProfEpoch(const prof::Epoch &e)
{
    const auto W = std::size_t(prof_->workers());

    // Window-level imbalance metrics: max/mean worker tick load and
    // the fraction of total worker wall time spent barrier-waiting.
    std::uint64_t sumTick = 0, maxTick = 0, sumBar = 0, sumAll = 0;
    for (std::size_t w = 0; w < W; w++) {
        sumTick += e.tickUs[w];
        maxTick = std::max(maxTick, e.tickUs[w]);
        sumBar += e.barrierUs[w];
        sumAll += e.tickUs[w] + e.drainUs[w] + e.barrierUs[w] +
                  e.idleUs[w];
    }
    const double loadMaxMean =
        sumTick ? double(maxTick) * double(W) / double(sumTick) : 0.0;
    const double barrierFrac =
        sumAll ? double(sumBar) / double(sumAll) : 0.0;

    if (streamOut_ && cfg_.format == "ndjson") {
        // worker_window: host wall time per worker and phase --
        // inherently nondeterministic (wall clock), unlike every
        // sim-derived record in this stream.
        std::string rec = csprintf(
            "{\"type\": \"worker_window\", \"cycle\": %llu, "
            "\"window\": %llu, \"workers\": %d",
            (unsigned long long)e.cycle, (unsigned long long)e.window,
            int(W));
        struct
        {
            const char *name;
            const std::vector<std::uint64_t> &v;
        } series[] = {{"tick_us", e.tickUs},
                      {"drain_us", e.drainUs},
                      {"barrier_us", e.barrierUs},
                      {"idle_us", e.idleUs}};
        for (const auto &s : series) {
            rec += csprintf(", \"%s\": [", s.name);
            for (std::size_t w = 0; w < W; w++)
                rec += csprintf("%s%llu", w ? "," : "",
                                (unsigned long long)s.v[w]);
            rec += "]";
        }
        rec += csprintf(
            ", \"load_max_mean\": %.4f, \"barrier_frac\": %.4f}\n",
            loadMaxMean, barrierFrac);
        *streamOut_ << rec;

        // weight_heatmap: per-router cycles ticked in the window --
        // deterministic, byte-identical across worker counts (the
        // repartitioner-facing signal).
        rec = csprintf("{\"type\": \"weight_heatmap\", \"cycle\": "
                       "%llu, \"window\": %llu, \"weights\": [",
                       (unsigned long long)e.cycle,
                       (unsigned long long)e.window);
        for (std::size_t r = 0; r < e.weights.size(); r++)
            rec += csprintf("%s%llu", r ? "," : "",
                            (unsigned long long)e.weights[r]);
        rec += "]}\n";
        *streamOut_ << rec;
    }

    if (trace_ && trace_->active()) {
        // One window span per worker tid with the phase spans laid
        // contiguously inside it (tick, then drain, then barrier;
        // idle is the remainder), so span nesting holds by
        // construction and ts is monotonic per tid.
        workerSpanUs_.resize(W, 0);
        for (std::size_t w = 0; w < W; w++) {
            const std::uint64_t t0 = workerSpanUs_[w];
            const std::uint64_t busy =
                e.tickUs[w] + e.drainUs[w] + e.barrierUs[w];
            const std::uint64_t dur = busy + e.idleUs[w];
            trace_->completeEvent(
                TraceWriter::kWorkerPid, w, "window", "worker", t0,
                dur,
                csprintf("{\"cycle\": %llu}",
                         (unsigned long long)e.cycle));
            trace_->completeEvent(TraceWriter::kWorkerPid, w, "tick",
                                  "worker", t0, e.tickUs[w]);
            trace_->completeEvent(TraceWriter::kWorkerPid, w, "drain",
                                  "worker", t0 + e.tickUs[w],
                                  e.drainUs[w]);
            trace_->completeEvent(TraceWriter::kWorkerPid, w,
                                  "barrier", "worker",
                                  t0 + e.tickUs[w] + e.drainUs[w],
                                  e.barrierUs[w]);
            const double util =
                dur ? 100.0 * double(e.tickUs[w] + e.drainUs[w]) /
                          double(dur)
                    : 0.0;
            const std::string track = csprintf("worker%d", int(w));
            trace_->counterEvent(TraceWriter::kWorkerPid,
                                 track.c_str(), t0 + dur, "util_pct",
                                 util);
            workerSpanUs_[w] = t0 + dur;
        }
    }
}

void
Telemetry::drainPacketSpans()
{
    // Deliveries arrive in ejection order (serial and partitioned
    // stepping agree; the stepper merges worker shards per cycle in
    // node order).  Sampling by packet id keeps the traced subset
    // identical across worker counts.
    for (const auto &d : deliveries_) {
        if (d.packet % cfg_.tracePackets != 0)
            continue;
        trace_->completeEvent(
            TraceWriter::kPacketPid, std::uint64_t(d.dest), "packet",
            "packet", d.at - d.latency, d.latency,
            csprintf("{\"packet\": %llu, \"dest\": %d}",
                     (unsigned long long)d.packet, int(d.dest)));
    }
    deliveries_.clear();
}

void
Telemetry::drainStallSpans()
{
    // Router-index order; each router's spans are already in close
    // order (its own ticks observe increasing cycles), so the drain
    // order is a pure function of simulation state.
    for (std::size_t r = 0; r < stallSpans_.size(); r++) {
        const int v = net_.routerAt(sim::NodeId(r)).config().numVcs;
        for (const auto &s : stallSpans_[r]) {
            trace_->completeEvent(
                TraceWriter::kRouterPid, r, "credit_stall", "stall",
                s.from, s.to - s.from,
                csprintf("{\"port\": %d, \"vc\": %d}",
                         int(s.vidx) / v, int(s.vidx) % v));
        }
        stallSpans_[r].clear();
    }
}

void
Telemetry::finish()
{
    if (finished_)
        return;
    finished_ = true;

    poll();
    const sim::Cycle end = net_.now();
    if (prof_) {
        // Final partial profiling window (mirrors the sampler's).
        if (const prof::Epoch *e = prof_->finish(end))
            emitProfEpoch(*e);
    }
    if (sampler_)
        sampler_->finish(end, trace_.get());
    if (trace_) {
        // Flush intervals still open at end-of-run as spans ending at
        // `end` (read-only: statistics are untouched).
        for (sim::NodeId r = 0;
             r < net_.lattice().numRouters(); r++)
            net_.routerAt(r).traceOpenStalls(end);
        drainPacketSpans();
        drainStallSpans();
    }

    if (sampler_)
        summary_ = sampler_->summary();
    summary_.traceEvents = trace_ ? trace_->events() : 0;

    if (trace_)
        trace_->close();

    // Detach the read hooks so the network outlives the facade
    // cleanly (the stepper re-binds its shards off the generation
    // counter on its next step, if any).
    if (!cfg_.trace.empty()) {
        net_.recordDeliveries(nullptr);
        for (sim::NodeId r = 0;
             r < net_.lattice().numRouters(); r++)
            net_.routerAt(r).traceStalls(nullptr);
    }
    if (streamOut_)
        streamOut_->flush();
}

} // namespace pdr::telem
