/**
 * @file
 * Sharded per-router counter registry.
 *
 * The counters themselves are the fields of router::RouterStats: each
 * router's stats struct is owned -- like a kernel per-cpu counter --
 * by exactly one worker (the partitioned stepper assigns disjoint
 * router ranges), so the tick path bumps them with plain non-atomic
 * increments and no cross-worker traffic.  This registry is the
 * merge-side half: a fixed catalog naming each counter, and
 * CounterSnapshot, which reads every router's counters at a sampling
 * epoch (a safe point where the gang is parked between cycles) into
 * one flat array.  Snapshots form a delta algebra -- deltaSince()
 * gives the per-window increments, accumulate() sums windows back up
 * -- which is what the streaming sampler and its sum-of-windows ==
 * end-of-run-totals tests are built on.
 *
 * Reading a snapshot never mutates simulation state: statsAt() flushes
 * open credit-stall intervals into a *copy* of the stats.
 */

#ifndef PDR_TELEM_COUNTERS_HH
#define PDR_TELEM_COUNTERS_HH

#include <cstdint>
#include <vector>

#include "router/router.hh"
#include "sim/types.hh"

namespace pdr::net {
class Network;
} // namespace pdr::net

namespace pdr::telem {

/** One named per-router counter: a projection of RouterStats. */
struct CounterDef
{
    const char *name;   //!< Stable schema name (docs/OBSERVABILITY.md).
    std::uint64_t (*get)(const router::RouterStats &s);
};

/** The fixed per-router counter catalog, in schema order (the order
 *  of fields in every NDJSON record and heatmap row). */
const std::vector<CounterDef> &counterCatalog();

/** Index of `name` in the catalog; -1 when absent (tests). */
int counterIndex(const char *name);

/** Every catalog counter on every router, sampled at one cycle. */
class CounterSnapshot
{
  public:
    CounterSnapshot() = default;

    /**
     * Sample all routers at cycle `at` (>= every tick so far; open
     * credit-stall intervals are flushed through `at`, so snapshots
     * at a common cycle agree across tick schedules and worker
     * counts).  Routers are read in index order; the result is a pure
     * function of simulation state.
     */
    static CounterSnapshot sample(const net::Network &net, sim::Cycle at);

    sim::Cycle at() const { return at_; }
    std::size_t numRouters() const { return routers_; }

    std::uint64_t value(std::size_t router, std::size_t counter) const
    {
        return v_[router * stride() + counter];
    }

    /** Sum of `counter` over all routers. */
    std::uint64_t total(std::size_t counter) const;

    /** Entry-wise `this - prev`; `prev` must be an earlier snapshot
     *  of the same network (every counter is monotone). */
    CounterSnapshot deltaSince(const CounterSnapshot &prev) const;

    /** Entry-wise `this += d` (re-summing window deltas). */
    void accumulate(const CounterSnapshot &d);

    bool operator==(const CounterSnapshot &o) const
    {
        return at_ == o.at_ && routers_ == o.routers_ && v_ == o.v_;
    }
    bool operator!=(const CounterSnapshot &o) const
    {
        return !(*this == o);
    }

  private:
    static std::size_t stride() { return counterCatalog().size(); }

    sim::Cycle at_ = 0;
    std::size_t routers_ = 0;
    /** [router * catalog-size + counter], router-index order. */
    std::vector<std::uint64_t> v_;
};

} // namespace pdr::telem

#endif // PDR_TELEM_COUNTERS_HH
