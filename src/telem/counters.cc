#include "telem/counters.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "net/network.hh"

namespace pdr::telem {

const std::vector<CounterDef> &
counterCatalog()
{
    // Schema order; append-only (records are keyed by name, but the
    // snapshot layout and the docs' counter catalog follow this).
    static const std::vector<CounterDef> catalog = {
        {"flits_in",
         [](const router::RouterStats &s) { return s.flitsIn; }},
        {"flits_out",
         [](const router::RouterStats &s) { return s.flitsOut; }},
        {"head_grants",
         [](const router::RouterStats &s) { return s.headGrants; }},
        {"va_grants",
         [](const router::RouterStats &s) { return s.vaGrants; }},
        {"spec_sa_attempts",
         [](const router::RouterStats &s) { return s.specSaAttempts; }},
        {"spec_sa_wins",
         [](const router::RouterStats &s) { return s.specSaWins; }},
        {"spec_sa_useful",
         [](const router::RouterStats &s) { return s.specSaUseful; }},
        {"credit_stall_cycles",
         [](const router::RouterStats &s) {
             return s.creditStallCycles;
         }},
        {"buf_occupancy",
         [](const router::RouterStats &s) { return s.bufOccupancy; }},
    };
    return catalog;
}

int
counterIndex(const char *name)
{
    const auto &cat = counterCatalog();
    for (std::size_t i = 0; i < cat.size(); i++)
        if (std::strcmp(cat[i].name, name) == 0)
            return int(i);
    return -1;
}

CounterSnapshot
CounterSnapshot::sample(const net::Network &net, sim::Cycle at)
{
    const auto &cat = counterCatalog();
    CounterSnapshot snap;
    snap.at_ = at;
    snap.routers_ = std::size_t(net.lattice().numRouters());
    snap.v_.resize(snap.routers_ * cat.size());
    std::size_t o = 0;
    for (sim::NodeId r = 0; r < net.lattice().numRouters(); r++) {
        const router::RouterStats s = net.routerAt(r).statsAt(at);
        for (const auto &c : cat)
            snap.v_[o++] = c.get(s);
    }
    return snap;
}

std::uint64_t
CounterSnapshot::total(std::size_t counter) const
{
    std::uint64_t t = 0;
    for (std::size_t r = 0; r < routers_; r++)
        t += value(r, counter);
    return t;
}

CounterSnapshot
CounterSnapshot::deltaSince(const CounterSnapshot &prev) const
{
    pdr_assert(prev.v_.size() == v_.size());
    pdr_assert(prev.at_ <= at_);
    CounterSnapshot d = *this;
    for (std::size_t i = 0; i < v_.size(); i++) {
        pdr_assert(prev.v_[i] <= v_[i]);
        d.v_[i] -= prev.v_[i];
    }
    return d;
}

void
CounterSnapshot::accumulate(const CounterSnapshot &d)
{
    if (v_.empty()) {
        *this = d;
        return;
    }
    pdr_assert(d.v_.size() == v_.size());
    at_ = std::max(at_, d.at_);
    for (std::size_t i = 0; i < v_.size(); i++)
        v_[i] += d.v_[i];
}

} // namespace pdr::telem
