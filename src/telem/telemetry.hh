/**
 * @file
 * Telemetry facade: owns the output streams and coordinates the three
 * observability layers -- the sharded counter registry (counters.hh),
 * the windowed stream sampler (sampler.hh) and the trace emitter
 * (trace.hh) -- behind two calls the stepping loop makes at safe
 * points:
 *
 *   cap(limit)  bounds every clock fast-forward so the simulation
 *               stops exactly on each sampling epoch.  skipIdle never
 *               ticks anything, so splitting one jump into several is
 *               provably invisible to simulated behavior; and
 *   poll()      emits every window record that has come due at the
 *               current cycle, then drains the trace buffers.
 *
 * Under partitioned stepping both calls run on the stepping thread
 * between ParallelStepper::step() calls, where the gang is parked at
 * the cycle-start barrier behind the post-drain barrier: network
 * state is globally consistent and reads race with nothing.
 *
 * Lifetime: construct after the Network (and stepper), destroy (or
 * finish()) before them -- the facade detaches its delivery-trace and
 * stall-span hooks at finish.
 *
 * The hard contract of the whole subsystem: telemetry is read-only
 * with respect to simulation state.  RNG streams, wake tables and
 * goldens are untouched whether it is on or off (enforced by the
 * telemetry-on golden gates in CI and tests/telem/).
 */

#ifndef PDR_TELEM_TELEMETRY_HH
#define PDR_TELEM_TELEMETRY_HH

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <vector>

#include "net/network.hh"
#include "prof/config.hh"
#include "telem/config.hh"
#include "telem/sampler.hh"
#include "telem/trace.hh"

namespace pdr::prof {
class Profiler;
} // namespace pdr::prof

namespace pdr::telem {

/**
 * Host-wall-clock profile scopes, written to the trace's host pid.
 * This is the one sanctioned home of wall-clock reads in sim-adjacent
 * code (lint rule PDR-OBS-WALLCLOCK): timestamps from here go only
 * into kHostPid trace events, never into sim-facing output.
 */
class HostProfiler
{
  public:
    /** RAII phase scope; a nullptr profiler (or one with no trace
     *  bound) makes it a no-op. */
    class Scope
    {
      public:
        Scope(HostProfiler *prof, const char *name);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler *prof_;
        const char *name_;
        std::uint64_t t0_ = 0;
    };

    /** Attach the trace writer (Telemetry does this); nullptr keeps
     *  the profiler dormant. */
    void bind(TraceWriter *trace);

    /** Wall microseconds since bind(); host-profile stream only. */
    std::uint64_t nowUs() const;

    /** Emit a host-time span covering the work since the previous
     *  epoch, labeled with the sim cycle of the epoch ending now. */
    void windowSpan(sim::Cycle cycle);

  private:
    friend class Scope;
    TraceWriter *trace_ = nullptr;
    std::chrono::steady_clock::time_point epoch_;
    std::uint64_t lastWindowUs_ = 0;
};

/** The per-run telemetry coordinator; see file comment. */
class Telemetry
{
  public:
    /**
     * Opens the configured streams (throws std::runtime_error when a
     * path cannot be written) and attaches the read-only hooks.  A
     * non-null `prof` exports the engine profiler through the same
     * streams: worker_window / weight_heatmap NDJSON records each
     * epoch and kWorkerPid trace spans, with epochs running on the
     * telemetry cadence even when the sampler itself is off.
     */
    Telemetry(const Config &cfg, net::Network &net,
              prof::Profiler *prof = nullptr);
    ~Telemetry();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** Clock-jump cap: never fast-forward past the next epoch. */
    sim::Cycle
    cap(sim::Cycle limit) const
    {
        return std::min(limit, nextSampleAt_);
    }

    /** Emit every epoch due at net.now(); safe points only. */
    void poll();

    /**
     * End of run: final partial window, per-router heatmap, open
     * stall intervals, trace footer; detaches all hooks and flushes.
     * Idempotent; the destructor calls it if nobody else has.
     */
    void finish();

    HostProfiler &host() { return host_; }

    /** Valid after finish(). */
    const Summary &summary() const { return summary_; }

  private:
    void emitEpoch(sim::Cycle at);
    void emitProfEpoch(const prof::Epoch &e);
    void drainPacketSpans();
    void drainStallSpans();

    Config cfg_;
    net::Network &net_;
    prof::Profiler *prof_ = nullptr;    //!< Engine profiler, optional.

    std::ofstream streamFile_;
    std::ofstream traceFile_;
    std::ostream *streamOut_ = nullptr;     //!< nullptr = discard.

    std::unique_ptr<TraceWriter> trace_;
    std::unique_ptr<StreamSampler> sampler_;
    HostProfiler host_;

    /** Delivery-trace buffer (attached via Network::recordDeliveries;
     *  drained and cleared at every epoch). */
    std::vector<traffic::Delivery> deliveries_;
    /** Per-router closed stall spans (one vector per router so
     *  concurrently ticking workers never share a buffer). */
    std::vector<std::vector<router::Router::StallSpan>> stallSpans_;

    /** Per-worker trace-span cursor: where the next kWorkerPid window
     *  span starts (wall us); keeps spans contiguous per tid. */
    std::vector<std::uint64_t> workerSpanUs_;

    sim::Cycle nextSampleAt_ = sim::CycleNever;
    Summary summary_;
    bool finished_ = false;
};

} // namespace pdr::telem

#endif // PDR_TELEM_TELEMETRY_HH
