#include "router/config.hh"

#include <stdexcept>

#include "common/logging.hh"

namespace pdr::router {

const char *
toString(RouterModel m)
{
    switch (m) {
      case RouterModel::Wormhole: return "WH";
      case RouterModel::VirtualChannel: return "VC";
      case RouterModel::SpecVirtualChannel: return "specVC";
    }
    return "?";
}

int
RouterConfig::pipelineDepth() const
{
    if (singleCycle)
        return 1;
    switch (model) {
      case RouterModel::Wormhole: return 3;
      case RouterModel::VirtualChannel: return 4;
      case RouterModel::SpecVirtualChannel: return 3;
    }
    return 1;
}

int
RouterConfig::effectiveCreditProc() const
{
    if (creditProcCycles >= 0)
        return creditProcCycles;
    // Default: an arriving credit is usable by this cycle's allocation.
    // The longer credit turnaround of the non-speculative VC router
    // (5 cycles vs 4, Section 5.2) emerges structurally from its switch
    // allocation sitting one pipeline stage deeper, so no extra
    // processing delay is modelled here.
    return 0;
}

RouterModel
routerModelFromString(const std::string &name)
{
    if (name == "WH")
        return RouterModel::Wormhole;
    if (name == "VC")
        return RouterModel::VirtualChannel;
    if (name == "specVC")
        return RouterModel::SpecVirtualChannel;
    throw std::invalid_argument("unknown router model '" + name +
                                "' (known: WH, VC, specVC)");
}

void
RouterConfig::validate() const
{
    if (numPorts != 0 && numPorts < 2) {
        throw std::invalid_argument(csprintf(
            "router.num_ports: routers need at least 2 ports "
            "(0 = derive from the topology), got %d", numPorts));
    }
    if (numPorts > 64) {
        throw std::invalid_argument(csprintf(
            "router.num_ports must be <= 64 (ports are staged as one "
            "packed bid word), got %d", numPorts));
    }
    if (numVcs < 1) {
        throw std::invalid_argument(csprintf(
            "router.num_vcs must be >= 1, got %d", numVcs));
    }
    if (numVcs > 64) {
        throw std::invalid_argument(csprintf(
            "router.num_vcs must be <= 64 (a port's VCs are staged as "
            "one packed bid word), got %d", numVcs));
    }
    if (model == RouterModel::Wormhole && numVcs != 1) {
        throw std::invalid_argument(csprintf(
            "wormhole routers have no virtual channels "
            "(router.num_vcs == 1), got %d", numVcs));
    }
    if (bufDepth < 1) {
        throw std::invalid_argument(csprintf(
            "router.buf_depth must be >= 1, got %d", bufDepth));
    }
    if (creditProcCycles < -1) {
        throw std::invalid_argument(csprintf(
            "router.credit_proc must be >= -1 (-1 = pipeline depth), "
            "got %d", creditProcCycles));
    }
}

} // namespace pdr::router
