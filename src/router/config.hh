/**
 * @file
 * Router model configuration.
 *
 * Three microarchitectures from the paper, each with the pipeline the
 * delay model prescribes for practical parameters at a 20 tau4 clock:
 *
 *  - Wormhole (WH):        3 stages  RC | SA | ST
 *  - VirtualChannel (VC):  4 stages  RC | VA | SA | ST
 *  - SpecVirtualChannel:   3 stages  RC | VA+SA (parallel) | ST
 *
 * plus the "single-cycle" idealization of Section 5.2, where the whole
 * router fits in one cycle (the commonly assumed unit-latency model the
 * paper argues against).
 *
 * Credit processing: a credit arriving at a router becomes usable by the
 * switch allocator `creditProcCycles` after arrival (default 0: usable
 * the cycle it arrives).  The paper's buffer-turnaround differences
 * (Figure 16 / Section 5.2: 4 cycles for WH and specVC, 5 for VC, 2 for
 * the single-cycle model) emerge structurally from the pipeline position
 * of switch allocation; creditProcCycles > 0 models an additional credit
 * pipeline for ablation studies.
 */

#ifndef PDR_ROUTER_CONFIG_HH
#define PDR_ROUTER_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace pdr::router {

/** Which flow control the router implements. */
enum class RouterModel
{
    Wormhole,
    VirtualChannel,
    SpecVirtualChannel,
};

const char *toString(RouterModel m);

/** Parse "WH" / "VC" / "specVC"; throws std::invalid_argument. */
RouterModel routerModelFromString(const std::string &name);

/** Static configuration of one router. */
struct RouterConfig
{
    RouterModel model = RouterModel::Wormhole;
    /** Unit-latency idealization (Section 5.2). */
    bool singleCycle = false;
    /**
     * Number of physical ports (2D mesh: 4 directions + local).  In a
     * Network, 0 means "derive from the topology" (2 per dimension +
     * concentration); standalone routers need a concrete count.
     */
    int numPorts = 5;
    /** Virtual channels per physical port (1 for wormhole). */
    int numVcs = 1;
    /** Buffer depth in flits per VC FIFO (WH: per input port). */
    int bufDepth = 8;
    /** Cycles from credit arrival to usability; -1 = pipeline depth. */
    int creditProcCycles = -1;
    /**
     * Ablation: drop the non-spec-over-spec priority of the
     * speculative switch allocator and arbitrate all requests in one
     * separable allocator.  The paper argues prioritization makes
     * speculation conservative ("it will never reduce router
     * performance"); this switch lets you measure what happens
     * without it.
     */
    bool specEqualPriority = false;
    /**
     * Run allocation on the retained dense scalar oracle
     * (arb/scalar_oracle.hh) instead of the bitmask engine.  Grants
     * are bit-identical either way (tests/arb/test_alloc_equiv.cc);
     * the switch exists for same-run A/B benchmarking (bench_core) and
     * whole-network equivalence checks.
     */
    bool scalarAlloc = false;

    /** Pipeline depth in cycles (per-hop router latency). */
    int pipelineDepth() const;

    /** Effective credit processing delay. */
    int effectiveCreditProc() const;

    /** Sanity-check the configuration; throws std::invalid_argument
     *  naming the offending parameter, so the sweep engine and CLI can
     *  report bad configs as per-point errors. */
    void validate() const;
};

inline bool
operator==(const RouterConfig &a, const RouterConfig &b)
{
    return a.model == b.model && a.singleCycle == b.singleCycle &&
           a.numPorts == b.numPorts && a.numVcs == b.numVcs &&
           a.bufDepth == b.bufDepth &&
           a.creditProcCycles == b.creditProcCycles &&
           a.specEqualPriority == b.specEqualPriority &&
           a.scalarAlloc == b.scalarAlloc;
}

inline bool
operator!=(const RouterConfig &a, const RouterConfig &b)
{
    return !(a == b);
}

} // namespace pdr::router

#endif // PDR_ROUTER_CONFIG_HH
