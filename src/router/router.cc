#include "router/router.hh"

#include <algorithm>
#include <stdexcept>

#include "arb/scalar_oracle.hh"
#include "common/logging.hh"

namespace pdr::router {

Router::Router(sim::NodeId id, const RouterConfig &cfg,
               const RoutingFunction &routing, sim::FlitPool &pool)
    : id_(id), cfg_(cfg), routing_(routing), pool_(pool)
{
    cfg_.validate();
    if (cfg_.numPorts < 2) {
        throw std::invalid_argument(
            "router.num_ports: a standalone router needs a concrete "
            "port count (0 = auto resolves inside a Network only)");
    }
    int p = cfg_.numPorts;
    int v = cfg_.numVcs;

    inputs_.resize(p);
    outputs_.resize(p);
    invcs_.resize(std::size_t(p) * std::size_t(v));
    outFree_.assign(p, arb::lowMask(v));
    vcWords_ = arb::wordsFor(p * v);
    bidRouteWait_.assign(vcWords_, 0);
    bidActive_.assign(vcWords_, 0);
    outCredits_.assign(std::size_t(p) * std::size_t(v), cfg_.bufDepth);
    for (auto &ivc : invcs_)
        ivc.fifo.init(cfg_.bufDepth);

    const bool scalar = cfg_.scalarAlloc;
    auto make_sep = [&]() -> std::unique_ptr<arb::SwitchAllocatorBase> {
        if (scalar)
            return std::make_unique<arb::ScalarSeparableSwitchAllocator>(
                p, v);
        return std::make_unique<arb::SeparableSwitchAllocator>(p, v);
    };
    switch (cfg_.model) {
      case RouterModel::Wormhole:
        if (scalar)
            whArb_ =
                std::make_unique<arb::ScalarWormholeSwitchArbiter>(p);
        else
            whArb_ = std::make_unique<arb::WormholeSwitchArbiter>(p);
        break;
      case RouterModel::VirtualChannel:
        vcAlloc_ = scalar
            ? std::unique_ptr<arb::VcAllocatorBase>(
                  std::make_unique<arb::ScalarVcAllocator>(p, v))
            : std::make_unique<arb::VcAllocator>(p, v);
        saAlloc_ = make_sep();
        break;
      case RouterModel::SpecVirtualChannel:
        vcAlloc_ = scalar
            ? std::unique_ptr<arb::VcAllocatorBase>(
                  std::make_unique<arb::ScalarVcAllocator>(p, v))
            : std::make_unique<arb::VcAllocator>(p, v);
        if (cfg_.singleCycle || cfg_.specEqualPriority) {
            // Unit-latency model (VA and SA complete in the same
            // cycle, no speculation needed) or the equal-priority
            // ablation: one separable allocator over all requests.
            saAlloc_ = make_sep();
        } else if (scalar) {
            specAlloc_ =
                std::make_unique<arb::ScalarSpeculativeSwitchAllocator>(
                    p, v);
        } else {
            specAlloc_ =
                std::make_unique<arb::SpeculativeSwitchAllocator>(p, v);
        }
        break;
    }
    // The speculative pipeline bids the switch for every ready
    // RouteWait VC each cycle (this includes the equal-priority
    // ablation: its bids feed the shared separable allocator).
    specBids_ = cfg_.model == RouterModel::SpecVirtualChannel &&
                !cfg_.singleCycle;
}

void
Router::connectInput(int port, FlitChannel *in, CreditChannel *credit_out)
{
    pdr_assert(port >= 0 && port < cfg_.numPorts);
    inputs_[port].in = in;
    inputs_[port].creditOut = credit_out;
}

void
Router::connectOutput(int port, FlitChannel *out, CreditChannel *credit_in,
                      bool is_sink)
{
    pdr_assert(port >= 0 && port < cfg_.numPorts);
    outputs_[port].out = out;
    outputs_[port].creditIn = credit_in;
    outputs_[port].isSink = is_sink;
}

int
Router::credits(int out_port, int out_vc) const
{
    return outCredits_[vidx(out_port, out_vc)];
}

int
Router::buffered(int port) const
{
    int n = 0;
    for (int vc = 0; vc < cfg_.numVcs; vc++)
        n += invc(port, vc).fifo.size();
    return n;
}

int
Router::auditPendingCredits(int out_port, int out_vc) const
{
    int n = 0;
    for (const auto &pc : pendingCredits_)
        if (pc.port == out_port && pc.vc == out_vc)
            n++;
    return n;
}

void
Router::auditCollectFlits(std::vector<sim::FlitRef> &out) const
{
    for (const auto &ivc : invcs_)
        ivc.fifo.forEach([&out](sim::FlitRef ref) {
            out.push_back(ref);
        });
}

std::string
Router::auditBidState() const
{
    const int p = cfg_.numPorts;
    const int v = cfg_.numVcs;
    // Expected output-VC busy words, rebuilt from the Active holders
    // (an input VC holds (route, outVc) from VA grant to tail
    // departure).  p <= 64 is enforced by RouterConfig::validate.
    std::uint64_t busy[64] = {};
    for (int port = 0; port < p; port++) {
        for (int vc = 0; vc < v; vc++) {
            const std::size_t vi = vidx(port, vc);
            const InputVc &ivc = invcs_[vi];
            const bool rw = ivc.state == VcState::RouteWait;
            const bool act =
                ivc.state == VcState::Active && !ivc.fifo.empty();
            if (rw != arb::testBit(bidRouteWait_.data(), int(vi))) {
                return csprintf(
                    "bidRouteWait bit (port %d, vc %d): bit %d, "
                    "state %d", port, vc, int(!rw), int(ivc.state));
            }
            if (act != arb::testBit(bidActive_.data(), int(vi))) {
                return csprintf(
                    "bidActive bit (port %d, vc %d): bit %d, state %d "
                    "fifo %d", port, vc, int(!act), int(ivc.state),
                    int(ivc.fifo.size()));
            }
            if (cfg_.model != RouterModel::Wormhole &&
                ivc.state == VcState::Active) {
                busy[ivc.route] |= std::uint64_t(1) << ivc.outVc;
            }
        }
    }
    if (cfg_.model != RouterModel::Wormhole) {
        for (int port = 0; port < p; port++) {
            const std::uint64_t expect = arb::lowMask(v) & ~busy[port];
            if (outFree_[port] != expect) {
                return csprintf(
                    "outFree_[%d] = %#llx, expected %#llx from Active "
                    "holders", port,
                    (unsigned long long)outFree_[port],
                    (unsigned long long)expect);
            }
        }
    }
    return std::string();
}

bool
Router::quiescent() const
{
    for (const auto &ivc : invcs_)
        if (!ivc.fifo.empty() || ivc.state != VcState::Idle)
            return false;
    for (const auto &op : outputs_)
        if (op.heldBy != sim::Invalid)
            return false;
    for (std::uint64_t free : outFree_)
        if (free != arb::lowMask(cfg_.numVcs))
            return false;
    return true;
}

bool
Router::hasCredit(int out_port, int out_vc) const
{
    return outputs_[out_port].isSink ||
           outCredits_[vidx(out_port, out_vc)] > 0;
}

int
Router::portScore(int out_port) const
{
    const auto &op = outputs_[out_port];
    if (op.isSink)
        return cfg_.numVcs * cfg_.bufDepth + 1;
    if (cfg_.model == RouterModel::Wormhole) {
        if (op.heldBy != sim::Invalid)
            return 0;
        return outCredits_[vidx(out_port, 0)];
    }
    int score = 0;
    if (cfg_.scalarAlloc) {
        // Pre-rework cost shape: test every VC of the port.
        for (int vc = 0; vc < cfg_.numVcs; vc++) {
            if ((outFree_[out_port] >> vc) & 1u)
                score += outCredits_[vidx(out_port, vc)];
        }
        return score;
    }
    std::uint64_t free = outFree_[out_port];
    while (free) {
        int vc = arb::ctz64(free);
        free &= free - 1;
        score += outCredits_[vidx(out_port, vc)];
    }
    return score;
}

int
Router::selectRoute(const sim::Flit &head)
{
    routing_.candidates(id_, head, candScratch_);
    pdr_assert(!candScratch_.empty());
    int best = candScratch_.front();
    if (candScratch_.size() > 1) {
        int best_score = portScore(best);
        for (std::size_t i = 1; i < candScratch_.size(); i++) {
            int score = portScore(candScratch_[i]);
            if (score > best_score) {
                best = candScratch_[i];
                best_score = score;
            }
        }
    }
    pdr_assert(best >= 0 && best < cfg_.numPorts);
    return best;
}

void
Router::tick(sim::Cycle now)
{
    // Occupancy integral: the buffered-flit count is constant between
    // this router's ticks (only receiveFlits/departFlit below change
    // it), so folding count * elapsed here matches per-cycle counting
    // across any sleep schedule.
    if (now > occObsAt_) {
        stats_.bufOccupancy +=
            std::uint64_t(bufferedNow_) * (now - occObsAt_);
        occObsAt_ = now;
    }
    receiveCredits(now);
    receiveFlits(now);
    if (cfg_.model == RouterModel::Wormhole) {
        saPhaseWormhole(now);
    } else {
        vaPhase(now);
        saPhaseVc(now);
    }
}

void
Router::receiveCredits(sim::Cycle now)
{
    // Accept newly arrived credits into the processing pipeline first:
    // with proc == 0 a credit is usable by this very cycle's allocation.
    int proc = cfg_.effectiveCreditProc();
    for (int port = 0; port < cfg_.numPorts; port++) {
        auto *chan = outputs_[port].creditIn;
        if (!chan)
            continue;
        while (auto c = chan->pop(now)) {
            pdr_assert(c->vc >= 0 && c->vc < cfg_.numVcs);
            pendingCredits_.push_back(
                {now + sim::Cycle(proc), port, c->vc});
        }
    }

    // Apply credits that finished the processing pipeline.
    while (!pendingCredits_.empty() &&
           pendingCredits_.front().applyAt <= now) {
        const auto &pc = pendingCredits_.front();
        outCredits_[vidx(pc.port, pc.vc)]++;
        pdr_assert(outCredits_[vidx(pc.port, pc.vc)] <= cfg_.bufDepth);
        pendingCredits_.pop_front();
    }
}

void
Router::receiveFlits(sim::Cycle now)
{
    for (int port = 0; port < cfg_.numPorts; port++) {
        auto *chan = inputs_[port].in;
        if (!chan)
            continue;
        while (auto r = chan->pop(now)) {
            sim::Flit &f = pool_.get(*r);
            pdr_assert(f.vc >= 0 && f.vc < cfg_.numVcs);
            auto &ivc = invc(port, f.vc);
            pdr_assert(ivc.fifo.size() < cfg_.bufDepth);
            f.eligible = now + firstActionDelay();
            if (sim::isHead(f.type) && ivc.state == VcState::Idle) {
                // Empty VC: decode + route this packet immediately (the
                // RC stage); otherwise the head waits for takeover when
                // the previous tail departs.
                pdr_assert(ivc.fifo.empty());
                ivc.state = VcState::RouteWait;
                ivc.route = selectRoute(f);
                ivc.actReady = f.eligible;
            }
            ivc.fifo.push(*r);
            bufferedNow_++;
            syncBid(vidx(port, f.vc));
            stats_.flitsIn++;
        }
    }
}

void
Router::vaPhase(sim::Cycle now)
{
    const int v = cfg_.numVcs;
    if (cfg_.scalarAlloc) {
        // Pre-rework cost shape: sweep every VC's flag each tick.
        const int nivc = cfg_.numPorts * v;
        for (int vi = 0; vi < nivc; vi++)
            invcs_[vi].vaGrantedNow = false;
        vaGranted_.clear();
    } else {
        // vaGrantedNow only matters within the tick that granted it;
        // clear exactly last tick's grantees instead of sweeping.
        for (std::size_t vi : vaGranted_)
            invcs_[vi].vaGrantedNow = false;
        vaGranted_.clear();
    }

    vaReqs_.clear();
    saReqs_.clear();

    auto consider = [&](int vi) {
        auto &ivc = invcs_[vi];
        pdr_assert(ivc.state == VcState::RouteWait);
        if (now < ivc.actReady)
            return;
        pdr_assert(!ivc.fifo.empty());
        const int port = vi / v, vc = vi % v;
        const auto &head = pool_.get(ivc.fifo.front());
        pdr_assert(sim::isHead(head.type));
        if (routing_.isAdaptive()) {
            // Footnote 5: re-iterate through the routing function
            // on every attempt, picking one output port.
            ivc.route = selectRoute(head);
        }
        vaReqs_.push_back({port, vc, ivc.route,
                           routing_.vcMask(head, id_, ivc.route, v)});
        if (specBids_) {
            // Speculative switch bid issued in parallel with the VA
            // request, before its outcome is known.
            saReqs_.push_back({port, vc, ivc.route, true});
            stats_.specSaAttempts++;
        }
    };
    if (cfg_.scalarAlloc) {
        // Pre-rework cost shape (the A/B baseline): visit every input
        // VC and test its state.  Same ascending order, same gates, so
        // vaReqs_ is identical to the sparse walk's.
        const int nivc = cfg_.numPorts * v;
        for (int vi = 0; vi < nivc; vi++) {
            if (invcs_[vi].state == VcState::RouteWait)
                consider(vi);
        }
    } else {
        arb::forEachSetBit(bidRouteWait_.data(), vcWords_, consider);
    }

    if (vaReqs_.empty())
        return;

    const auto &grants = vcAlloc_->allocate(vaReqs_, outFree_.data());
    for (const auto &g : grants) {
        std::size_t vi = vidx(g.inPort, g.inVc);
        auto &ivc = invcs_[vi];
        outFree_[g.outPort] &= ~(std::uint64_t(1) << g.outVc);
        ivc.outVc = g.outVc;
        ivc.state = VcState::Active;
        ivc.vaGrantTick = now;
        ivc.vaGrantedNow = true;
        vaGranted_.push_back(vi);
        syncBid(vi);
        // Non-speculative switch requests start next cycle (same cycle
        // for the unit-latency model).
        ivc.saReady = now + (cfg_.singleCycle ? 0 : 1);
        stats_.vaGrants++;
    }
}

void
Router::saPhaseWormhole(sim::Cycle now)
{
    saReqs_.clear();
    // Wormhole has numVcs == 1, so vidx == port and the union of the
    // bid bitsets is exactly the ports whose FIFO holds an actionable
    // flit (RouteWait implies non-empty; Active-with-empty-FIFO ports
    // have their bidActive_ bit clear).  departFlit() below mutates
    // only the visited port's bits; the sparse walk iterates a word
    // snapshot, so the traversal matches the dense ascending scan.
    auto considerPort = [&](int port) {
        auto &ivc = invc(port, 0);
        pdr_assert(!ivc.fifo.empty());
        const auto &f = pool_.get(ivc.fifo.front());
        if (now < f.eligible)
            return;
        if (ivc.state == VcState::RouteWait && now >= ivc.actReady) {
            // Head arbitrates for a free output port; it also needs a
            // downstream buffer to move into.
            pdr_assert(sim::isHead(f.type));
            if (routing_.isAdaptive())
                ivc.route = selectRoute(f);
            if (outputs_[ivc.route].heldBy != sim::Invalid) {
                closeStall(ivc, now);   // Held port, not a credit stall.
            } else if (hasCredit(ivc.route, 0)) {
                closeStall(ivc, now);
                saReqs_.push_back({port, 0, ivc.route, false});
            } else {
                extendStall(ivc, now);
            }
        } else if (ivc.state == VcState::Active) {
            // Port is held: body/tail flits flow without arbitration.
            pdr_assert(outputs_[ivc.route].heldBy == port);
            if (hasCredit(ivc.route, 0)) {
                closeStall(ivc, now);
                departFlit(port, 0, ivc.route, 0, now);
            } else {
                extendStall(ivc, now);
            }
        }
    };
    if (cfg_.scalarAlloc) {
        // Pre-rework cost shape: scan every port, gated on the same
        // condition the bid bits encode.
        for (int port = 0; port < cfg_.numPorts; port++) {
            const auto &ivc = invc(port, 0);
            if (ivc.state == VcState::RouteWait ||
                (ivc.state == VcState::Active && !ivc.fifo.empty()))
                considerPort(port);
        }
    } else {
        std::uint64_t occupied = bidRouteWait_[0] | bidActive_[0];
        while (occupied) {
            int port = arb::ctz64(occupied);
            occupied &= occupied - 1;
            considerPort(port);
        }
    }

    if (saReqs_.empty())
        return;

    for (const auto &g : whArb_->allocate(saReqs_)) {
        auto &ivc = invc(g.inPort, 0);
        outputs_[g.outPort].heldBy = g.inPort;
        ivc.state = VcState::Active;
        stats_.headGrants++;
        departFlit(g.inPort, 0, g.outPort, 0, now);
    }
}

void
Router::saPhaseVc(sim::Cycle now)
{
    // Non-speculative requests from Active VCs (saReqs_ already holds
    // this tick's speculative bids, pushed by vaPhase).  bidActive_ is
    // exactly the Active VCs with a buffered flit, in ascending vidx
    // order; no mutation happens until the grant loop below.
    const int v = cfg_.numVcs;
    auto consider = [&](int vi) {
        auto &ivc = invcs_[vi];
        pdr_assert(ivc.state == VcState::Active && !ivc.fifo.empty());
        if (ivc.vaGrantedNow && !cfg_.singleCycle)
            return;     // Covered by its speculative bid (specVC).
        const auto &f = pool_.get(ivc.fifo.front());
        if (now < f.eligible || now < ivc.saReady)
            return;
        if (!hasCredit(ivc.route, ivc.outVc)) {
            extendStall(ivc, now);
            return;
        }
        closeStall(ivc, now);
        saReqs_.push_back({vi / v, vi % v, ivc.route, false});
    };
    if (cfg_.scalarAlloc) {
        // Pre-rework cost shape: visit every input VC and test its
        // state; same ascending order and gates as the bid bits.
        const int nivc = cfg_.numPorts * v;
        for (int vi = 0; vi < nivc; vi++) {
            const auto &ivc = invcs_[vi];
            if (ivc.state == VcState::Active && !ivc.fifo.empty())
                consider(vi);
        }
    } else {
        arb::forEachSetBit(bidActive_.data(), vcWords_, consider);
    }

    if (saReqs_.empty())
        return;

    const auto &grants = specAlloc_ ? specAlloc_->allocate(saReqs_)
                                    : saAlloc_->allocate(saReqs_);
    bool equal_prio = cfg_.model == RouterModel::SpecVirtualChannel &&
                      cfg_.specEqualPriority && !cfg_.singleCycle;
    for (const auto &g : grants) {
        auto &ivc = invc(g.inPort, g.inVc);
        // In the equal-priority ablation the allocator does not track
        // the spec flag; a grant is speculative iff the VC was still
        // bidding for (or just received) its output VC this cycle.
        bool spec = g.spec ||
                    (equal_prio && (ivc.state == VcState::RouteWait ||
                                    ivc.vaGrantedNow));
        if (spec) {
            stats_.specSaWins++;
            // Speculation pays off only if VA succeeded this very cycle
            // and the granted output VC has a buffer; otherwise the
            // crossbar slot is wasted (Section 3.1).
            if (!ivc.vaGrantedNow || !hasCredit(ivc.route, ivc.outVc))
                continue;
            stats_.specSaUseful++;
        }
        if (sim::isHead(pool_.get(ivc.fifo.front()).type))
            stats_.headGrants++;
        departFlit(g.inPort, g.inVc, ivc.route, ivc.outVc, now);
    }
}

void
Router::departFlit(int in_port, int in_vc, int out_port, int out_vc,
                   sim::Cycle now)
{
    auto &ivc = invc(in_port, in_vc);
    pdr_assert(!ivc.fifo.empty());
    sim::FlitRef ref = ivc.fifo.pop();
    bufferedNow_--;
    sim::Flit &f = pool_.get(ref);

    // Freed buffer slot: return a credit upstream (none for injection
    // ports fed by a source? sources also track credits, so send).
    if (inputs_[in_port].creditOut)
        inputs_[in_port].creditOut->push(sim::Credit{in_vc}, now);

    auto &op = outputs_[out_port];
    if (!op.isSink) {
        pdr_assert(outCredits_[vidx(out_port, out_vc)] > 0);
        outCredits_[vidx(out_port, out_vc)]--;
    }

    // Crossbar traversal (ST) is the extra cycle before the wire; the
    // unit-latency model folds it into the single cycle.
    sim::Cycle st_extra = cfg_.singleCycle ? 0 : 1;
    f.vc = out_vc;
    f.vclass = std::uint8_t(routing_.nextClass(f, id_, out_port));
    pdr_assert(op.out);
    op.out->push(ref, now, st_extra);
    stats_.flitsOut++;

    if (sim::isTail(f.type))
        releaseAndTakeOver(in_port, in_vc, out_port, out_vc, now);
    // One re-sync after pop (and possible tail takeover) covers every
    // state this VC can land in.
    syncBid(vidx(in_port, in_vc));
}

void
Router::releaseAndTakeOver(int in_port, int in_vc, int out_port,
                           int out_vc, sim::Cycle now)
{
    auto &ivc = invc(in_port, in_vc);
    auto &op = outputs_[out_port];

    if (cfg_.model == RouterModel::Wormhole) {
        pdr_assert(op.heldBy == in_port);
        op.heldBy = sim::Invalid;
    } else {
        pdr_assert(op.isSink ||
                   !((outFree_[out_port] >> out_vc) & 1u));
        outFree_[out_port] |= std::uint64_t(1) << out_vc;
    }
    ivc.outVc = sim::Invalid;

    if (ivc.fifo.empty()) {
        ivc.state = VcState::Idle;
        ivc.route = sim::Invalid;
        return;
    }

    // The next packet's head takes over the VC and is routed now (its
    // RC stage runs in the next cycle).
    const auto &head = pool_.get(ivc.fifo.front());
    pdr_assert(sim::isHead(head.type));
    ivc.state = VcState::RouteWait;
    ivc.route = selectRoute(head);
    ivc.actReady =
        std::max(head.eligible, now + firstActionDelay());
}

sim::Cycle
Router::nextWake(sim::Cycle now)
{
    // Scan every occupied input VC for the earliest cycle at which it
    // can act.  A VC contributes now + 1 only when a tick would do
    // observable work then; a future pipeline deadline contributes
    // that deadline; a VC blocked on state that only this router's own
    // ticks can change (a held wormhole port, an all-busy VA candidate
    // set, a zero credit count) contributes nothing -- the unblocking
    // event either happens during one of our ticks (after which this
    // function is re-evaluated) or arrives on a watched channel (which
    // lowers our wake entry on push).
    sim::Cycle t = sim::CycleNever;
    const bool wh = cfg_.model == RouterModel::Wormhole;
    const int v = cfg_.numVcs;
    // The union of the bid bitsets is exactly the occupied, actionable
    // VCs the dense scan used to filter down to (RouteWait implies a
    // buffered head; Active VCs with drained FIFOs are excluded).
    // check(vi) returns true when the VC can do observable work on the
    // very next tick (the caller then returns now + 1).
    auto check = [&](std::size_t vi) -> bool {
        InputVc &ivc = invcs_[vi];
        pdr_assert(!ivc.fifo.empty());
        const sim::Flit &f = pool_.get(ivc.fifo.front());
        if (wh) {
            if (ivc.state == VcState::RouteWait) {
                sim::Cycle r = std::max(f.eligible, ivc.actReady);
                if (r > now) {
                    t = std::min(t, r);
                } else if (outputs_[ivc.route].heldBy !=
                           sim::Invalid) {
                    // Held port: only our own ticks release it.
                } else if (hasCredit(ivc.route, 0)) {
                    return true;        // Can bid for the port.
                } else {
                    // Credit-stall sleep; the watched credit
                    // channel ends it.
                    openStall(ivc, now + 1);
                }
            } else if (ivc.state == VcState::Active) {
                if (f.eligible > now)
                    t = std::min(t, f.eligible);
                else if (hasCredit(ivc.route, 0))
                    return true;        // Flit can depart.
                else
                    openStall(ivc, now + 1);
            }
        } else {
            if (ivc.state == VcState::RouteWait) {
                if (ivc.actReady > now) {
                    t = std::min(t, ivc.actReady);
                    return false;
                }
                if (specBids_)
                    return true;        // Bids the switch per cycle.
                // Pure VA pipeline: the allocator's persistent
                // state only changes on grants, and a grant needs
                // a free candidate output VC.  All-busy candidates
                // free only during our own ticks (tail
                // departures), so such a VC does not pin us awake.
                std::uint32_t mask =
                    routing_.vcMask(f, id_, ivc.route, v);
                if (std::uint64_t(mask) & outFree_[ivc.route])
                    return true;        // VA can grant someone.
            } else if (ivc.state == VcState::Active) {
                sim::Cycle r = std::max(f.eligible, ivc.saReady);
                if (r > now)
                    t = std::min(t, r);
                else if (hasCredit(ivc.route, ivc.outVc))
                    return true;        // Switch request next cycle.
                else
                    // Interval-accounted credit stall; the watched
                    // credit channel ends the sleep.
                    openStall(ivc, now + 1);
            }
        }
        return false;
    };
    if (cfg_.scalarAlloc) {
        // Pre-rework cost shape: test every input VC's state.
        const std::size_t nivc = std::size_t(cfg_.numPorts) * v;
        for (std::size_t vi = 0; vi < nivc; vi++) {
            const auto &ivc = invcs_[vi];
            if (ivc.state == VcState::RouteWait ||
                (ivc.state == VcState::Active && !ivc.fifo.empty()))
                if (check(vi))
                    return now + 1;
        }
    } else {
        for (int w = 0; w < vcWords_; w++) {
            std::uint64_t m = bidRouteWait_[w] | bidActive_[w];
            while (m) {
                int b = arb::ctz64(m);
                m &= m - 1;
                if (check(std::size_t(w) * 64 + b))
                    return now + 1;
            }
        }
    }

    // External events: maturing credits and in-flight arrivals.
    if (!pendingCredits_.empty())
        t = std::min(t, pendingCredits_.front().applyAt);
    for (const auto &ip : inputs_)
        if (ip.in)
            t = std::min(t, ip.in->nextReady());
    for (const auto &op : outputs_)
        if (op.creditIn)
            t = std::min(t, op.creditIn->nextReady());
    return std::max(t, now + 1);
}

RouterStats
Router::statsAt(sim::Cycle now) const
{
    RouterStats s = stats_;
    for (const auto &ivc : invcs_) {
        if (ivc.stallSince != sim::CycleNever) {
            pdr_assert(now >= ivc.stallSince);
            s.creditStallCycles += now - ivc.stallSince;
        }
    }
    pdr_assert(now >= occObsAt_);
    s.bufOccupancy += std::uint64_t(bufferedNow_) * (now - occObsAt_);
    return s;
}

void
Router::traceOpenStalls(sim::Cycle now)
{
    if (!stallTrace_)
        return;
    for (const auto &ivc : invcs_) {
        if (ivc.stallSince != sim::CycleNever && now > ivc.stallOpen) {
            stallTrace_->push_back(
                {std::uint32_t(&ivc - invcs_.data()), ivc.stallOpen,
                 now});
        }
    }
}

} // namespace pdr::router
