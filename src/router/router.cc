#include "router/router.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace pdr::router {

Router::Router(sim::NodeId id, const RouterConfig &cfg,
               const RoutingFunction &routing, sim::FlitPool &pool)
    : id_(id), cfg_(cfg), routing_(routing), pool_(pool)
{
    cfg_.validate();
    if (cfg_.numPorts < 2) {
        throw std::invalid_argument(
            "router.num_ports: a standalone router needs a concrete "
            "port count (0 = auto resolves inside a Network only)");
    }
    int p = cfg_.numPorts;
    int v = cfg_.numVcs;

    inputs_.resize(p);
    outputs_.resize(p);
    invcs_.resize(std::size_t(p) * std::size_t(v));
    outBusy_.assign(std::size_t(p) * std::size_t(v), 0);
    outCredits_.assign(std::size_t(p) * std::size_t(v), cfg_.bufDepth);
    for (auto &ivc : invcs_)
        ivc.fifo.init(cfg_.bufDepth);

    switch (cfg_.model) {
      case RouterModel::Wormhole:
        whArb_ = std::make_unique<arb::WormholeSwitchArbiter>(p);
        break;
      case RouterModel::VirtualChannel:
        vcAlloc_ = std::make_unique<arb::VcAllocator>(p, v);
        saAlloc_ = std::make_unique<arb::SeparableSwitchAllocator>(p, v);
        break;
      case RouterModel::SpecVirtualChannel:
        vcAlloc_ = std::make_unique<arb::VcAllocator>(p, v);
        if (cfg_.singleCycle || cfg_.specEqualPriority) {
            // Unit-latency model (VA and SA complete in the same
            // cycle, no speculation needed) or the equal-priority
            // ablation: one separable allocator over all requests.
            saAlloc_ =
                std::make_unique<arb::SeparableSwitchAllocator>(p, v);
        } else {
            specAlloc_ =
                std::make_unique<arb::SpeculativeSwitchAllocator>(p, v);
        }
        break;
    }
    // The speculative pipeline bids the switch for every ready
    // RouteWait VC each cycle (this includes the equal-priority
    // ablation: its bids feed the shared separable allocator).
    specBids_ = cfg_.model == RouterModel::SpecVirtualChannel &&
                !cfg_.singleCycle;
}

void
Router::connectInput(int port, FlitChannel *in, CreditChannel *credit_out)
{
    pdr_assert(port >= 0 && port < cfg_.numPorts);
    inputs_[port].in = in;
    inputs_[port].creditOut = credit_out;
}

void
Router::connectOutput(int port, FlitChannel *out, CreditChannel *credit_in,
                      bool is_sink)
{
    pdr_assert(port >= 0 && port < cfg_.numPorts);
    outputs_[port].out = out;
    outputs_[port].creditIn = credit_in;
    outputs_[port].isSink = is_sink;
}

int
Router::credits(int out_port, int out_vc) const
{
    return outCredits_[vidx(out_port, out_vc)];
}

int
Router::buffered(int port) const
{
    int n = 0;
    for (int vc = 0; vc < cfg_.numVcs; vc++)
        n += invc(port, vc).fifo.size();
    return n;
}

int
Router::auditPendingCredits(int out_port, int out_vc) const
{
    int n = 0;
    for (const auto &pc : pendingCredits_)
        if (pc.port == out_port && pc.vc == out_vc)
            n++;
    return n;
}

void
Router::auditCollectFlits(std::vector<sim::FlitRef> &out) const
{
    for (const auto &ivc : invcs_)
        ivc.fifo.forEach([&out](sim::FlitRef ref) {
            out.push_back(ref);
        });
}

bool
Router::quiescent() const
{
    for (const auto &ivc : invcs_)
        if (!ivc.fifo.empty() || ivc.state != VcState::Idle)
            return false;
    for (const auto &op : outputs_)
        if (op.heldBy != sim::Invalid)
            return false;
    for (std::uint8_t busy : outBusy_)
        if (busy)
            return false;
    return true;
}

bool
Router::hasCredit(int out_port, int out_vc) const
{
    return outputs_[out_port].isSink ||
           outCredits_[vidx(out_port, out_vc)] > 0;
}

int
Router::portScore(int out_port) const
{
    const auto &op = outputs_[out_port];
    if (op.isSink)
        return cfg_.numVcs * cfg_.bufDepth + 1;
    if (cfg_.model == RouterModel::Wormhole) {
        if (op.heldBy != sim::Invalid)
            return 0;
        return outCredits_[vidx(out_port, 0)];
    }
    int score = 0;
    for (int vc = 0; vc < cfg_.numVcs; vc++) {
        std::size_t i = vidx(out_port, vc);
        if (!outBusy_[i])
            score += outCredits_[i];
    }
    return score;
}

int
Router::selectRoute(const sim::Flit &head)
{
    routing_.candidates(id_, head, candScratch_);
    pdr_assert(!candScratch_.empty());
    int best = candScratch_.front();
    if (candScratch_.size() > 1) {
        int best_score = portScore(best);
        for (std::size_t i = 1; i < candScratch_.size(); i++) {
            int score = portScore(candScratch_[i]);
            if (score > best_score) {
                best = candScratch_[i];
                best_score = score;
            }
        }
    }
    pdr_assert(best >= 0 && best < cfg_.numPorts);
    return best;
}

void
Router::tick(sim::Cycle now)
{
    receiveCredits(now);
    receiveFlits(now);
    if (cfg_.model == RouterModel::Wormhole) {
        saPhaseWormhole(now);
    } else {
        vaPhase(now);
        saPhaseVc(now);
    }
}

void
Router::receiveCredits(sim::Cycle now)
{
    // Accept newly arrived credits into the processing pipeline first:
    // with proc == 0 a credit is usable by this very cycle's allocation.
    int proc = cfg_.effectiveCreditProc();
    for (int port = 0; port < cfg_.numPorts; port++) {
        auto *chan = outputs_[port].creditIn;
        if (!chan)
            continue;
        while (auto c = chan->pop(now)) {
            pdr_assert(c->vc >= 0 && c->vc < cfg_.numVcs);
            pendingCredits_.push_back(
                {now + sim::Cycle(proc), port, c->vc});
        }
    }

    // Apply credits that finished the processing pipeline.
    while (!pendingCredits_.empty() &&
           pendingCredits_.front().applyAt <= now) {
        const auto &pc = pendingCredits_.front();
        outCredits_[vidx(pc.port, pc.vc)]++;
        pdr_assert(outCredits_[vidx(pc.port, pc.vc)] <= cfg_.bufDepth);
        pendingCredits_.pop_front();
    }
}

void
Router::receiveFlits(sim::Cycle now)
{
    for (int port = 0; port < cfg_.numPorts; port++) {
        auto *chan = inputs_[port].in;
        if (!chan)
            continue;
        while (auto r = chan->pop(now)) {
            sim::Flit &f = pool_.get(*r);
            pdr_assert(f.vc >= 0 && f.vc < cfg_.numVcs);
            auto &ivc = invc(port, f.vc);
            pdr_assert(ivc.fifo.size() < cfg_.bufDepth);
            f.eligible = now + firstActionDelay();
            if (sim::isHead(f.type) && ivc.state == VcState::Idle) {
                // Empty VC: decode + route this packet immediately (the
                // RC stage); otherwise the head waits for takeover when
                // the previous tail departs.
                pdr_assert(ivc.fifo.empty());
                ivc.state = VcState::RouteWait;
                ivc.route = selectRoute(f);
                ivc.actReady = f.eligible;
            }
            ivc.fifo.push(*r);
            stats_.flitsIn++;
        }
    }
}

void
Router::vaPhase(sim::Cycle now)
{
    vaReqs_.clear();
    saReqs_.clear();

    for (int port = 0; port < cfg_.numPorts; port++) {
        for (int vc = 0; vc < cfg_.numVcs; vc++) {
            auto &ivc = invc(port, vc);
            ivc.vaGrantedNow = false;
            if (ivc.state != VcState::RouteWait || now < ivc.actReady)
                continue;
            pdr_assert(!ivc.fifo.empty());
            const auto &head = pool_.get(ivc.fifo.front());
            pdr_assert(sim::isHead(head.type));
            if (routing_.isAdaptive()) {
                // Footnote 5: re-iterate through the routing function
                // on every attempt, picking one output port.
                ivc.route = selectRoute(head);
            }
            vaReqs_.push_back({port, vc, ivc.route,
                               routing_.vcMask(head, id_, ivc.route,
                                               cfg_.numVcs)});
            if (specBids_) {
                // Speculative switch bid issued in parallel with the VA
                // request, before its outcome is known.
                saReqs_.push_back({port, vc, ivc.route, true});
                stats_.specSaAttempts++;
            }
        }
    }

    if (vaReqs_.empty())
        return;

    const auto &grants = vcAlloc_->allocate(
        vaReqs_, [this](int out_port, int out_vc) {
            return !outBusy_[vidx(out_port, out_vc)];
        });
    for (const auto &g : grants) {
        auto &ivc = invc(g.inPort, g.inVc);
        outBusy_[vidx(g.outPort, g.outVc)] = 1;
        ivc.outVc = g.outVc;
        ivc.state = VcState::Active;
        ivc.vaGrantTick = now;
        ivc.vaGrantedNow = true;
        // Non-speculative switch requests start next cycle (same cycle
        // for the unit-latency model).
        ivc.saReady = now + (cfg_.singleCycle ? 0 : 1);
        stats_.vaGrants++;
    }
}

void
Router::saPhaseWormhole(sim::Cycle now)
{
    saReqs_.clear();
    for (int port = 0; port < cfg_.numPorts; port++) {
        auto &ivc = invc(port, 0);
        if (ivc.fifo.empty())
            continue;
        const auto &f = pool_.get(ivc.fifo.front());
        if (now < f.eligible)
            continue;
        if (ivc.state == VcState::RouteWait && now >= ivc.actReady) {
            // Head arbitrates for a free output port; it also needs a
            // downstream buffer to move into.
            pdr_assert(sim::isHead(f.type));
            if (routing_.isAdaptive())
                ivc.route = selectRoute(f);
            if (outputs_[ivc.route].heldBy != sim::Invalid) {
                closeStall(ivc, now);   // Held port, not a credit stall.
            } else if (hasCredit(ivc.route, 0)) {
                closeStall(ivc, now);
                saReqs_.push_back({port, 0, ivc.route, false});
            } else {
                extendStall(ivc, now);
            }
        } else if (ivc.state == VcState::Active) {
            // Port is held: body/tail flits flow without arbitration.
            pdr_assert(outputs_[ivc.route].heldBy == port);
            if (hasCredit(ivc.route, 0)) {
                closeStall(ivc, now);
                departFlit(port, 0, ivc.route, 0, now);
            } else {
                extendStall(ivc, now);
            }
        }
    }

    if (saReqs_.empty())
        return;

    for (const auto &g : whArb_->allocate(saReqs_)) {
        auto &ivc = invc(g.inPort, 0);
        outputs_[g.outPort].heldBy = g.inPort;
        ivc.state = VcState::Active;
        stats_.headGrants++;
        departFlit(g.inPort, 0, g.outPort, 0, now);
    }
}

void
Router::saPhaseVc(sim::Cycle now)
{
    // Non-speculative requests from Active VCs (saReqs_ already holds
    // this tick's speculative bids, pushed by vaPhase).
    for (int port = 0; port < cfg_.numPorts; port++) {
        for (int vc = 0; vc < cfg_.numVcs; vc++) {
            auto &ivc = invc(port, vc);
            if (ivc.state != VcState::Active || ivc.fifo.empty())
                continue;
            if (ivc.vaGrantedNow && !cfg_.singleCycle)
                continue;   // Covered by its speculative bid (specVC).
            const auto &f = pool_.get(ivc.fifo.front());
            if (now < f.eligible || now < ivc.saReady)
                continue;
            if (!hasCredit(ivc.route, ivc.outVc)) {
                extendStall(ivc, now);
                continue;
            }
            closeStall(ivc, now);
            saReqs_.push_back({port, vc, ivc.route, false});
        }
    }

    if (saReqs_.empty())
        return;

    const auto &grants = specAlloc_ ? specAlloc_->allocate(saReqs_)
                                    : saAlloc_->allocate(saReqs_);
    bool equal_prio = cfg_.model == RouterModel::SpecVirtualChannel &&
                      cfg_.specEqualPriority && !cfg_.singleCycle;
    for (const auto &g : grants) {
        auto &ivc = invc(g.inPort, g.inVc);
        // In the equal-priority ablation the allocator does not track
        // the spec flag; a grant is speculative iff the VC was still
        // bidding for (or just received) its output VC this cycle.
        bool spec = g.spec ||
                    (equal_prio && (ivc.state == VcState::RouteWait ||
                                    ivc.vaGrantedNow));
        if (spec) {
            stats_.specSaWins++;
            // Speculation pays off only if VA succeeded this very cycle
            // and the granted output VC has a buffer; otherwise the
            // crossbar slot is wasted (Section 3.1).
            if (!ivc.vaGrantedNow || !hasCredit(ivc.route, ivc.outVc))
                continue;
            stats_.specSaUseful++;
        }
        if (sim::isHead(pool_.get(ivc.fifo.front()).type))
            stats_.headGrants++;
        departFlit(g.inPort, g.inVc, ivc.route, ivc.outVc, now);
    }
}

void
Router::departFlit(int in_port, int in_vc, int out_port, int out_vc,
                   sim::Cycle now)
{
    auto &ivc = invc(in_port, in_vc);
    pdr_assert(!ivc.fifo.empty());
    sim::FlitRef ref = ivc.fifo.pop();
    sim::Flit &f = pool_.get(ref);

    // Freed buffer slot: return a credit upstream (none for injection
    // ports fed by a source? sources also track credits, so send).
    if (inputs_[in_port].creditOut)
        inputs_[in_port].creditOut->push(sim::Credit{in_vc}, now);

    auto &op = outputs_[out_port];
    if (!op.isSink) {
        pdr_assert(outCredits_[vidx(out_port, out_vc)] > 0);
        outCredits_[vidx(out_port, out_vc)]--;
    }

    // Crossbar traversal (ST) is the extra cycle before the wire; the
    // unit-latency model folds it into the single cycle.
    sim::Cycle st_extra = cfg_.singleCycle ? 0 : 1;
    f.vc = out_vc;
    f.vclass = std::uint8_t(routing_.nextClass(f, id_, out_port));
    pdr_assert(op.out);
    op.out->push(ref, now, st_extra);
    stats_.flitsOut++;

    if (sim::isTail(f.type))
        releaseAndTakeOver(in_port, in_vc, out_port, out_vc, now);
}

void
Router::releaseAndTakeOver(int in_port, int in_vc, int out_port,
                           int out_vc, sim::Cycle now)
{
    auto &ivc = invc(in_port, in_vc);
    auto &op = outputs_[out_port];

    if (cfg_.model == RouterModel::Wormhole) {
        pdr_assert(op.heldBy == in_port);
        op.heldBy = sim::Invalid;
    } else {
        pdr_assert(op.isSink || outBusy_[vidx(out_port, out_vc)]);
        outBusy_[vidx(out_port, out_vc)] = 0;
    }
    ivc.outVc = sim::Invalid;

    if (ivc.fifo.empty()) {
        ivc.state = VcState::Idle;
        ivc.route = sim::Invalid;
        return;
    }

    // The next packet's head takes over the VC and is routed now (its
    // RC stage runs in the next cycle).
    const auto &head = pool_.get(ivc.fifo.front());
    pdr_assert(sim::isHead(head.type));
    ivc.state = VcState::RouteWait;
    ivc.route = selectRoute(head);
    ivc.actReady =
        std::max(head.eligible, now + firstActionDelay());
}

sim::Cycle
Router::nextWake(sim::Cycle now)
{
    // Scan every occupied input VC for the earliest cycle at which it
    // can act.  A VC contributes now + 1 only when a tick would do
    // observable work then; a future pipeline deadline contributes
    // that deadline; a VC blocked on state that only this router's own
    // ticks can change (a held wormhole port, an all-busy VA candidate
    // set, a zero credit count) contributes nothing -- the unblocking
    // event either happens during one of our ticks (after which this
    // function is re-evaluated) or arrives on a watched channel (which
    // lowers our wake entry on push).
    sim::Cycle t = sim::CycleNever;
    const bool wh = cfg_.model == RouterModel::Wormhole;
    const int v = cfg_.numVcs;
    for (int port = 0; port < cfg_.numPorts; port++) {
        for (int vc = 0; vc < v; vc++) {
            InputVc &ivc = invcs_[vidx(port, vc)];
            if (ivc.fifo.empty())
                continue;
            const sim::Flit &f = pool_.get(ivc.fifo.front());
            if (wh) {
                if (ivc.state == VcState::RouteWait) {
                    sim::Cycle r = std::max(f.eligible, ivc.actReady);
                    if (r > now) {
                        t = std::min(t, r);
                    } else if (outputs_[ivc.route].heldBy !=
                               sim::Invalid) {
                        // Held port: only our own ticks release it.
                    } else if (hasCredit(ivc.route, 0)) {
                        return now + 1;     // Can bid for the port.
                    } else {
                        // Credit-stall sleep; the watched credit
                        // channel ends it.
                        openStall(ivc, now + 1);
                    }
                } else if (ivc.state == VcState::Active) {
                    if (f.eligible > now)
                        t = std::min(t, f.eligible);
                    else if (hasCredit(ivc.route, 0))
                        return now + 1;     // Flit can depart.
                    else
                        openStall(ivc, now + 1);
                }
            } else {
                if (ivc.state == VcState::RouteWait) {
                    if (ivc.actReady > now) {
                        t = std::min(t, ivc.actReady);
                        continue;
                    }
                    if (specBids_)
                        return now + 1;     // Bids the switch per cycle.
                    // Pure VA pipeline: the allocator's persistent
                    // state only changes on grants, and a grant needs
                    // a free candidate output VC.  All-busy candidates
                    // free only during our own ticks (tail
                    // departures), so such a VC does not pin us awake.
                    std::uint32_t mask =
                        routing_.vcMask(f, id_, ivc.route, v);
                    for (int ov = 0; ov < v; ov++) {
                        if (((mask >> ov) & 1u) &&
                            !outBusy_[vidx(ivc.route, ov)])
                            return now + 1; // VA can grant someone.
                    }
                } else if (ivc.state == VcState::Active) {
                    sim::Cycle r = std::max(f.eligible, ivc.saReady);
                    if (r > now)
                        t = std::min(t, r);
                    else if (hasCredit(ivc.route, ivc.outVc))
                        return now + 1;     // Switch request next cycle.
                    else
                        // Interval-accounted credit stall; the watched
                        // credit channel ends the sleep.
                        openStall(ivc, now + 1);
                }
            }
        }
    }

    // External events: maturing credits and in-flight arrivals.
    if (!pendingCredits_.empty())
        t = std::min(t, pendingCredits_.front().applyAt);
    for (const auto &ip : inputs_)
        if (ip.in)
            t = std::min(t, ip.in->nextReady());
    for (const auto &op : outputs_)
        if (op.creditIn)
            t = std::min(t, op.creditIn->nextReady());
    return std::max(t, now + 1);
}

RouterStats
Router::statsAt(sim::Cycle now) const
{
    RouterStats s = stats_;
    for (const auto &ivc : invcs_) {
        if (ivc.stallSince != sim::CycleNever) {
            pdr_assert(now >= ivc.stallSince);
            s.creditStallCycles += now - ivc.stallSince;
        }
    }
    return s;
}

} // namespace pdr::router
