/**
 * @file
 * Cycle-accurate models of the paper's three router microarchitectures.
 *
 * One Router class implements all three flow-control methods (plus the
 * single-cycle idealization); the differences are confined to which
 * allocation phases run and when flits become eligible:
 *
 *   Wormhole:  head flits arbitrate for the whole output port, which is
 *              then held until the tail departs; body flits flow without
 *              arbitration (Figure 2's canonical architecture).
 *   VC:        heads allocate an output VC (VA) and then compete, flit by
 *              flit, in a separable switch allocator (Figure 3).
 *   SpecVC:    heads bid for the switch *speculatively* in the same cycle
 *              as VA; non-speculative requests are prioritized, so failed
 *              speculation only wastes the crossbar slot (Section 3.1).
 *
 * Timing (pipelined routers, all at 20 tau4 clock, Figure 11):
 *   A flit arriving at cycle t is decoded/buffered during t+1 and may
 *   take its first allocation action at t+2.  Granted flits traverse the
 *   crossbar the following cycle and spend linkLatency cycles on the
 *   wire, so per-hop latency is 3 (WH, specVC) or 4 (VC) cycles plus the
 *   link.  The single-cycle model acts at t+1 with no crossbar stage.
 *
 * Credits: a departing flit frees its input-buffer slot and sends a
 * credit upstream; an arriving credit becomes usable by allocation after
 * creditProcCycles (default: the pipeline depth), reproducing the
 * paper's 4/5/4/2-cycle buffer-turnaround analysis (Section 5.2).
 */

#ifndef PDR_ROUTER_ROUTER_HH
#define PDR_ROUTER_ROUTER_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "arb/bitrow.hh"
#include "arb/switch_allocator.hh"
#include "arb/vc_allocator.hh"
#include "router/config.hh"
#include "router/routing.hh"
#include "sim/channel.hh"
#include "sim/flit.hh"
#include "sim/flit_pool.hh"

namespace pdr::router {

/** Counters exposed for tests, benches and examples. */
struct RouterStats
{
    std::uint64_t flitsIn = 0;
    std::uint64_t flitsOut = 0;
    std::uint64_t headGrants = 0;       //!< Heads granted switch passage.
    std::uint64_t vaGrants = 0;         //!< Output VCs allocated.
    std::uint64_t specSaAttempts = 0;   //!< Speculative switch requests.
    std::uint64_t specSaWins = 0;       //!< Spec grants surviving priority.
    std::uint64_t specSaUseful = 0;     //!< Spec grants actually used.
    /**
     * Cycles a VC spent ready-but-creditless, accounted as intervals:
     * each tick that observes a stalled VC accumulates the span since
     * the previous observation, so a blocked router can sleep through
     * a stall and still report exactly what per-cycle counting would.
     * stats() reflects cycles up to the last tick; statsAt(now) also
     * flushes the still-open intervals (use it for cross-schedule
     * comparisons at a common read cycle).
     */
    std::uint64_t creditStallCycles = 0;
    /**
     * Input-buffer occupancy integral in flit-cycles: the sum over
     * completed cycles of the flits buffered in this router's input
     * FIFOs at the end of each cycle.  Interval-accounted like
     * creditStallCycles (occupancy cannot change between a router's
     * ticks), so sleeping schedules report exactly what per-cycle
     * counting would; statsAt(now) flushes through `now`.  Divide by
     * the cycles observed for mean buffered flits.
     */
    std::uint64_t bufOccupancy = 0;
};

/** A cycle-accurate pipelined router. */
class Router
{
  public:
    /** Flit channels carry pool handles; the pool holds the payloads. */
    using FlitChannel = sim::Channel<sim::FlitRef>;
    using CreditChannel = sim::Channel<sim::Credit>;

    Router(sim::NodeId id, const RouterConfig &cfg,
           const RoutingFunction &routing, sim::FlitPool &pool);

    /**
     * Wire input port `port`: flits arrive on `in`; credits for freed
     * buffers are returned upstream on `credit_out` (nullptr for an
     * unused edge port).
     */
    void connectInput(int port, FlitChannel *in,
                      CreditChannel *credit_out);

    /**
     * Wire output port `port`: departing flits go to `out`; credits
     * from the downstream input buffer come back on `credit_in`.
     * `is_sink` marks an ejection port (infinite downstream buffering,
     * per the paper's immediate-ejection assumption).
     */
    void connectOutput(int port, FlitChannel *out,
                       CreditChannel *credit_in, bool is_sink);

    /** Advance one clock cycle. */
    void tick(sim::Cycle now);

    /**
     * Earliest cycle at which ticking this router can do observable
     * work, evaluated after a tick at `now`.  Skipping every cycle
     * before the returned one is a provable no-op: the router wakes
     * the very next cycle only when some buffered flit can actually
     * act (allocate, depart, or -- under the speculative model --
     * issue a switch bid that evolves arbiter state); a VC that is
     * ready but creditless does NOT pin the router awake, because the
     * stall statistic is interval-accounted and the credit that ends
     * the stall arrives through a watched channel, which re-lowers the
     * wake entry.  Internal future deadlines (pipeline eligibility,
     * VA-to-SA latency, maturing credits) and in-flight channel
     * arrivals bound the result; CycleNever when fully idle.
     *
     * Non-const: deciding to sleep on a ready-but-creditless VC opens
     * its stall interval (openStall), so that a stall *entered* during
     * this tick -- a departure consuming the last credit, a wormhole
     * port release exposing a creditless waiter -- is accounted from
     * the next cycle exactly as a tick-every-cycle schedule would
     * observe it.  Only called on the skipping schedule, right after a
     * tick.
     */
    sim::Cycle nextWake(sim::Cycle now);

    sim::NodeId id() const { return id_; }
    const RouterConfig &config() const { return cfg_; }
    const RouterStats &stats() const { return stats_; }

    /**
     * One closed credit-stall interval on input VC `vidx` (flat
     * port * numVcs + vc index): cycles [from, to) were spent
     * ready-but-creditless.  Matches creditStallCycles accounting
     * span for span (telemetry trace emission).
     */
    struct StallSpan
    {
        std::uint32_t vidx;
        sim::Cycle from;
        sim::Cycle to;
    };

    /**
     * Record every closed credit-stall interval into `out` (telemetry
     * trace hook; nullptr disables, the default).  Observational:
     * statistics and simulated behavior are unchanged either way.
     * The buffer is owned by the caller and must be distinct per
     * router -- under partitioned stepping each router appends from
     * its owning worker.  Zero-length intervals are not recorded.
     */
    void traceStalls(std::vector<StallSpan> *out) { stallTrace_ = out; }

    /** Flush intervals still open at end-of-run as spans ending at
     *  `now` (no-op unless traceStalls is attached; statistics are
     *  not touched -- statsAt does that independently). */
    void traceOpenStalls(sim::Cycle now);

    /**
     * Statistics as they would read at cycle `now` under a
     * tick-every-cycle schedule: stats() plus the still-open
     * credit-stall intervals flushed through `now` (exclusive).
     * `now` must be >= every tick this router has seen.
     */
    RouterStats statsAt(sim::Cycle now) const;

    /** Credits currently available for (outPort, outVc) (tests). */
    int credits(int out_port, int out_vc) const;
    /** Total flits buffered in the input FIFOs of `port` (tests). */
    int buffered(int port) const;
    /** All input FIFOs empty and no resources held (tests). */
    bool quiescent() const;

    // ----- invariant-auditor accessors (sim::Auditor; read-only) -----

    /** Flits buffered in the input FIFO of exactly (port, vc). */
    int auditBuffered(int port, int vc) const
    {
        return invc(port, vc).fifo.size();
    }
    /** Received credits for (outPort, outVc) still maturing in the
     *  credit-processing pipeline (not yet applied to credits()). */
    int auditPendingCredits(int out_port, int out_vc) const;
    /** Append every flit handle buffered in any input FIFO. */
    void auditCollectFlits(std::vector<sim::FlitRef> &out) const;
    /**
     * AUD-BID: recompute the incremental allocation bitsets (RouteWait
     * bids, Active bids, free output-VC words) densely from the per-VC
     * state and compare.  Returns an empty string when consistent,
     * otherwise a diagnostic naming the first mismatching entry.
     */
    std::string auditBidState() const;

  private:
    /** Input-VC pipeline states (invc_state / inpc_state of Figs 2, 3). */
    enum class VcState : std::uint8_t
    {
        Idle,       //!< No packet.
        RouteWait,  //!< Head buffered; routed; awaiting VA (VC) / SA (WH).
        Active,     //!< Resources held; flits flow through SA/ST.
    };

    /** Per input virtual channel (per input port for WH). */
    struct InputVc
    {
        sim::FlitFifo fifo;         //!< bufDepth-capacity handle ring.
        VcState state = VcState::Idle;
        sim::Cycle actReady = 0;    //!< Earliest first allocation action.
        sim::Cycle saReady = 0;     //!< Earliest switch request (VC).
        sim::Cycle vaGrantTick = 0; //!< When VA succeeded (spec check).
        bool vaGrantedNow = false;  //!< VA granted in the current tick.
        int route = sim::Invalid;   //!< Routed output port.
        int outVc = sim::Invalid;   //!< Allocated output VC.
        /** Start of the open credit-stall interval (CycleNever when
         *  not stalled); cycles up to the last observation are already
         *  folded into stats_.creditStallCycles. */
        sim::Cycle stallSince = sim::CycleNever;
        /** First cycle of the whole open stall (stallSince tracks only
         *  the not-yet-folded suffix); maintained only while a
         *  stall-span trace is attached. */
        sim::Cycle stallOpen = sim::CycleNever;
    };

    // Hot per-VC state lives in flat structure-of-arrays slabs indexed
    // [port * numVcs + vc] (vidx) rather than nested per-port vectors:
    // the per-cycle loops (allocation scans, nextWake, credit checks)
    // stream one contiguous array each instead of chasing a pointer
    // per port.  Ports keep only their channel wiring.

    struct InputPort
    {
        FlitChannel *in = nullptr;
        CreditChannel *creditOut = nullptr;
    };

    struct OutputPort
    {
        FlitChannel *out = nullptr;
        CreditChannel *creditIn = nullptr;
        bool isSink = false;
        int heldBy = sim::Invalid;  //!< Wormhole per-packet port hold.
    };

    /** Credit received, waiting out the processing pipeline. */
    struct PendingCredit
    {
        sim::Cycle applyAt;
        int port;
        int vc;
    };

    // Tick phases, in order.
    void receiveCredits(sim::Cycle now);
    void receiveFlits(sim::Cycle now);
    void vaPhase(sim::Cycle now);
    void saPhaseWormhole(sim::Cycle now);
    void saPhaseVc(sim::Cycle now);

    /** Dequeue the front flit of (port, vc) and send it out. */
    void departFlit(int in_port, int in_vc, int out_port, int out_vc,
                    sim::Cycle now);
    /** Tail departed: free VC/port and hand the FIFO to the next head. */
    void releaseAndTakeOver(int in_port, int in_vc, int out_port,
                            int out_vc, sim::Cycle now);

    bool hasCredit(int out_port, int out_vc) const;
    /** Earliest allocation action for a flit arriving now. */
    sim::Cycle firstActionDelay() const { return cfg_.singleCycle ? 1 : 2; }

    /** Flat [port * numVcs + vc] index into the per-VC slabs. */
    std::size_t
    vidx(int port, int vc) const
    {
        return std::size_t(port) * std::size_t(cfg_.numVcs) +
               std::size_t(vc);
    }
    InputVc &invc(int port, int vc) { return invcs_[vidx(port, vc)]; }
    const InputVc &
    invc(int port, int vc) const
    {
        return invcs_[vidx(port, vc)];
    }

    /**
     * Observed (port, vc) ready but creditless at `now`: fold the
     * cycles since the previous observation into the counter and leave
     * the interval open at `now`.  Exactly reproduces per-cycle
     * counting because the stall condition cannot change between the
     * router's ticks.
     */
    void
    extendStall(InputVc &ivc, sim::Cycle now)
    {
        if (ivc.stallSince != sim::CycleNever)
            stats_.creditStallCycles += now - ivc.stallSince;
        else if (stallTrace_)
            ivc.stallOpen = now;    // A new stall begins here.
        ivc.stallSince = now;
    }
    /** Observed (port, vc) not stalled at `now`: close the interval
     *  (cycles [stallSince, now) were stalled, `now` is not). */
    void
    closeStall(InputVc &ivc, sim::Cycle now)
    {
        if (ivc.stallSince != sim::CycleNever) {
            stats_.creditStallCycles += now - ivc.stallSince;
            ivc.stallSince = sim::CycleNever;
            if (stallTrace_ && now > ivc.stallOpen) {
                stallTrace_->push_back(
                    {std::uint32_t(&ivc - invcs_.data()),
                     ivc.stallOpen, now});
            }
        }
    }
    /**
     * (port, vc) will be stalled from cycle `at` on (nextWake decided
     * to sleep on a ready-but-creditless VC): open the interval unless
     * one is already open.  The condition cannot silently end -- the
     * credit that would end it arrives during a tick (watched channel
     * or maturing pipeline), which closes the interval at that tick
     * with the cycles [at, tick) folded in.
     */
    void
    openStall(InputVc &ivc, sim::Cycle at)
    {
        if (ivc.stallSince == sim::CycleNever) {
            ivc.stallSince = at;
            if (stallTrace_)
                ivc.stallOpen = at;
        }
    }

    /**
     * Route selection for a head flit.  Deterministic routing returns
     * the single route; adaptive routing picks the candidate with the
     * most downstream buffer space (re-evaluated on every allocation
     * attempt, per the paper's footnote-5 re-iteration policy).
     */
    int selectRoute(const sim::Flit &head);
    /** Free downstream buffer space through `out_port` (adaptivity
     *  metric). */
    int portScore(int out_port) const;

    sim::NodeId id_;
    RouterConfig cfg_;
    const RoutingFunction &routing_;
    sim::FlitPool &pool_;

    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;

    // SoA per-VC slabs, all indexed by vidx(port, vc).
    std::vector<InputVc> invcs_;        //!< Input VC pipeline state.
    std::vector<int> outCredits_;       //!< Downstream buffer credits.

    /**
     * Free output VCs as one packed word per output port (bit vc set =
     * unallocated; bits >= numVcs always clear).  Replaces the dense
     * per-VC busy byte array: VA hands the words straight to the
     * allocator, and nextWake's VA-candidate test is one AND.
     */
    std::vector<std::uint64_t> outFree_;

    /**
     * Incremental allocation-bid bitsets over vidx, the in-router
     * analog of the network wake table: bidRouteWait_ holds every VC
     * in RouteWait (head routed, awaiting VA -- or SA for wormhole),
     * bidActive_ every Active VC with a buffered flit.  syncBid()
     * re-derives both bits from (state, fifo) at every mutation point
     * (flit arrival, VA grant, departure, tail takeover), so the
     * allocation phases and nextWake iterate only set bits instead of
     * walking all p * v VCs.  Audited against a dense recompute by
     * AUD-BID (auditBidState).
     */
    std::vector<std::uint64_t> bidRouteWait_;
    std::vector<std::uint64_t> bidActive_;
    int vcWords_ = 1;   //!< Words per bid bitset (wordsFor(p * v)).

    /** VCs whose vaGrantedNow flag is set; the flag only matters
     *  within the granting tick, so the next vaPhase clears exactly
     *  these instead of sweeping every VC. */
    std::vector<std::size_t> vaGranted_;

    /** Re-derive (port, vc)'s bits in the bid bitsets from its state. */
    void
    syncBid(std::size_t vi)
    {
        const InputVc &ivc = invcs_[vi];
        const std::size_t w = vi >> 6;
        const std::uint64_t bit = std::uint64_t(1) << (vi & 63);
        if (ivc.state == VcState::RouteWait)
            bidRouteWait_[w] |= bit;
        else
            bidRouteWait_[w] &= ~bit;
        if (ivc.state == VcState::Active && !ivc.fifo.empty())
            bidActive_[w] |= bit;
        else
            bidActive_[w] &= ~bit;
    }

    std::deque<PendingCredit> pendingCredits_;

    /**
     * Interval-accounted input-buffer occupancy (stats_.bufOccupancy):
     * the flit count only changes during this router's ticks
     * (receiveFlits push / departFlit pop), so folding
     * bufferedNow_ * elapsed at each tick reproduces per-cycle
     * counting under any sleep schedule.
     */
    int bufferedNow_ = 0;           //!< Flits in the input FIFOs now.
    sim::Cycle occObsAt_ = 0;       //!< Integral folded through here.

    /** Telemetry stall-span sink (traceStalls); nullptr = off. */
    std::vector<StallSpan> *stallTrace_ = nullptr;

    /** Speculative switch bids are issued for every ready RouteWait VC
     *  each cycle (evolving arbiter state + specSaAttempts), so such
     *  VCs pin the router awake; cached model predicate. */
    bool specBids_ = false;

    // Allocators (constructed per model; the bitmask engine by
    // default, the dense scalar oracle under cfg.scalarAlloc -- same
    // grants either way).
    std::unique_ptr<arb::WormholeArbiterBase> whArb_;
    std::unique_ptr<arb::VcAllocatorBase> vcAlloc_;
    std::unique_ptr<arb::SwitchAllocatorBase> saAlloc_;
    std::unique_ptr<arb::SwitchAllocatorBase> specAlloc_;

    // Per-tick scratch.
    std::vector<arb::VaRequest> vaReqs_;
    std::vector<arb::SaRequest> saReqs_;
    std::vector<int> candScratch_;

    RouterStats stats_;
};

} // namespace pdr::router

#endif // PDR_ROUTER_ROUTER_HH
