/**
 * @file
 * Routing-function interface.
 *
 * The paper treats routing as a black box occupying the first pipeline
 * stage; the simulations use deterministic dimension-ordered routing (a
 * routing function of range Rp: it names a single output physical
 * channel, and the VC allocator may pick any free VC on it).
 *
 * The interface is packet-centric: decisions read the head flit, which
 * carries everything per-packet routing state needs -- the destination,
 * the deadlock-avoidance VC class, and (for randomized oblivious
 * schemes like Valiant) the intermediate node chosen at injection.
 * initPacket() is the injection-time hook where oblivious routings draw
 * that per-packet state; deterministic routings leave it alone (and
 * draw nothing, keeping RNG streams untouched).
 */

#ifndef PDR_ROUTER_ROUTING_HH
#define PDR_ROUTER_ROUTING_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "sim/flit.hh"
#include "sim/types.hh"

namespace pdr::router {

/** Per-packet routing state chosen once, at injection. */
struct PacketInit
{
    /** Initial deadlock-avoidance VC class (e.g. O1TURN's dimension
     *  order bit, Valiant's phase bit). */
    std::uint8_t vclass = 0;
    /** Intermediate node for two-phase schemes; Invalid otherwise. */
    sim::NodeId inter = sim::Invalid;
};

/** Routing function: head flit -> output physical channel. */
class RoutingFunction
{
  public:
    virtual ~RoutingFunction() = default;

    /**
     * Output port at router `here` for the packet `head` describes.
     * Must return the matching local/ejection port when `here` is the
     * destination's router.
     */
    virtual int route(sim::NodeId here, const sim::Flit &head) const = 0;

    /**
     * Adaptive candidates: legal output ports at `here`, in preference
     * order.  The router picks one per attempt (the paper's footnote-5
     * policy for speculative routers: the routing function is limited
     * to returning a single output port, and the packet re-iterates
     * through routing upon an unsuccessful bid).  Default: the single
     * deterministic route.
     */
    virtual void
    candidates(sim::NodeId here, const sim::Flit &head,
               std::vector<int> &out) const
    {
        out.clear();
        out.push_back(route(here, head));
    }

    /** True if candidates() may return more than one port. */
    virtual bool isAdaptive() const { return false; }

    /**
     * Injection-time per-packet state: the source calls this once per
     * created packet and stamps the result on every flit.  Oblivious
     * routings draw their randomness (order bit, intermediate node)
     * from `rng` here; deterministic routings must not touch it.
     */
    virtual PacketInit
    initPacket(sim::NodeId src, sim::NodeId dest, Rng &rng) const
    {
        (void)src;
        (void)dest;
        (void)rng;
        return {};
    }

    /**
     * Output VCs the packet may be allocated on `out_port` (bit i =
     * VC i), given its current VC class.  Default: no restriction.
     * Dateline schemes confine post-dateline packets to the upper VCs;
     * O1TURN/Valiant additionally partition by order/phase.
     */
    virtual std::uint32_t
    vcMask(const sim::Flit &head, sim::NodeId here, int out_port,
           int num_vcs) const
    {
        (void)head;
        (void)here;
        (void)out_port;
        (void)num_vcs;
        return ~0u;
    }

    /**
     * Deadlock class of the packet after traversing `out_port` from
     * `here` (e.g. dateline crossings set per-dimension bits, reaching
     * a Valiant intermediate flips the phase bit).  Default: 0.
     */
    virtual int
    nextClass(const sim::Flit &f, sim::NodeId here, int out_port) const
    {
        (void)f;
        (void)here;
        (void)out_port;
        return 0;
    }

    /**
     * Minimum VCs per physical channel this routing needs for deadlock
     * freedom on its lattice (e.g. 2 for dateline DOR on a torus, 4
     * for O1TURN on a torus).  NetworkConfig::validate enforces it.
     */
    virtual int minVcs() const { return 1; }
};

} // namespace pdr::router

#endif // PDR_ROUTER_ROUTING_HH
