/**
 * @file
 * Routing-function interface.
 *
 * The paper treats routing as a black box occupying the first pipeline
 * stage; the simulations use deterministic dimension-ordered routing (a
 * routing function of range Rp: it names a single output physical
 * channel, and the VC allocator may pick any free VC on it).
 */

#ifndef PDR_ROUTER_ROUTING_HH
#define PDR_ROUTER_ROUTING_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace pdr::router {

/** Deterministic routing function: destination -> output port. */
class RoutingFunction
{
  public:
    virtual ~RoutingFunction() = default;

    /**
     * Output port at router `here` for a packet addressed to `dest`.
     * Must return the local/ejection port when here == dest.
     */
    virtual int route(sim::NodeId here, sim::NodeId dest) const = 0;

    /**
     * Adaptive candidates: legal output ports at `here` for `dest`, in
     * preference order.  The router picks one per attempt (the paper's
     * footnote-5 policy for speculative routers: the routing function
     * is limited to returning a single output port, and the packet
     * re-iterates through routing upon an unsuccessful bid).  Default:
     * the single deterministic route.
     */
    virtual void
    candidates(sim::NodeId here, sim::NodeId dest,
               std::vector<int> &out) const
    {
        out.clear();
        out.push_back(route(here, dest));
    }

    /** True if candidates() may return more than one port. */
    virtual bool isAdaptive() const { return false; }

    /**
     * Output VCs a packet of deadlock class `vclass` may be allocated
     * on `out_port` (bit i = VC i).  Default: no restriction.  Used by
     * torus dateline routing, where class-1 packets (past the
     * dateline) are confined to the upper half of the VCs.
     */
    virtual std::uint32_t
    vcMask(int vclass, sim::NodeId here, sim::NodeId dest,
           int out_port, int num_vcs) const
    {
        (void)vclass;
        (void)here;
        (void)dest;
        (void)out_port;
        (void)num_vcs;
        return ~0u;
    }

    /**
     * Deadlock class of the packet after traversing `out_port` from
     * `here` (e.g. set to 1 when the link crosses a dateline, reset to
     * 0 when the packet turns into a new dimension).  Default: 0.
     */
    virtual int
    nextClass(int vclass, sim::NodeId here, int out_port) const
    {
        (void)vclass;
        (void)here;
        (void)out_port;
        return 0;
    }
};

} // namespace pdr::router

#endif // PDR_ROUTER_ROUTING_HH
