#include "exec/thread_pool.hh"

#include <cstdlib>

namespace pdr::exec {

namespace {

/** Size of the pool owning the calling thread (0 outside any pool). */
thread_local int tlsPoolSize = 0;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    int n = resolveThreads(threads);
    workers_.reserve(n);
    for (int i = 0; i < n; i++)
        workers_.emplace_back([this, n] { workerLoop(n); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeWorker_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        inFlight_++;
    }
    wakeWorker_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PDR_THREADS")) {
        long v = std::atol(env);
        if (v > 0)
            return int(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? int(hw) : 1;
}

int
ThreadPool::currentPoolSize()
{
    return tlsPoolSize;
}

void
ThreadPool::workerLoop(int pool_size)
{
    tlsPoolSize = pool_size;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wakeWorker_.wait(lock,
                             [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;     // stop_ set and nothing left to drain.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            int threads)
{
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; i++)
        pool.submit([&body, i] { body(i); });
    pool.wait();
}

} // namespace pdr::exec
