/**
 * @file
 * Parallel sweep-execution engine.
 *
 * A sweep is an ordered list of simulation points (label + SimConfig).
 * SweepRunner fans the points across a fixed ThreadPool and returns
 * SweepResults in input order, with per-point wall-clock timing and
 * error capture (a throwing point is recorded as failed; it neither
 * kills a worker nor hangs the pool).
 *
 * Determinism: each point gets an RNG seed derived from (base seed,
 * point index) via pdr::deriveSeed, and every simulation object down
 * the stack (Network, Source, ...) is per-instance state -- there is no
 * global or static mutable state in the simulator (src/common/rng.cc
 * holds the audit's canonical mixer).  Results are therefore
 * bit-identical for any thread count or scheduling order.
 *
 * SweepBuilder expands the cross product of offered-load grids, router
 * models, traffic patterns and topologies into a point list, in the
 * deterministic order loads x (models x patterns x topologies).
 *
 * Typical use (also exposed as pdr::api::runSweep):
 *
 *   auto points = exec::SweepBuilder(bench::baseConfig())
 *                     .model("specVC", ...)
 *                     .loads(bench::loadGrid())
 *                     .build();
 *   auto results = exec::SweepRunner().run(points);
 *   results.toTable().writeCsv(file);
 */

#ifndef PDR_EXEC_SWEEP_HH
#define PDR_EXEC_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "api/simulation.hh"
#include "stats/export.hh"

namespace pdr::exec {

/** One unit of sweep work: a labelled simulation configuration. */
struct SweepPoint
{
    std::string label;
    api::SimConfig cfg;
};

/** Outcome of one sweep point. */
struct PointResult
{
    std::string label;
    api::SimConfig cfg;        //!< As run (including the derived seed).
    api::SimResults res;       //!< Valid only when ok.
    double wallMs = 0.0;       //!< Wall-clock time of this point.
    bool ok = false;
    std::string error;         //!< Exception message when !ok.
};

/** Ordered results of a sweep run. */
struct SweepResults
{
    std::vector<PointResult> points;    //!< Input order.
    double wallMs = 0.0;                //!< Whole-sweep wall clock.
    int threads = 1;                    //!< Pool size used.
    /**
     * Global index of points[0] in the full grid this run is a slice
     * of (0 for a whole-grid run).  toTable() adds it to the `index`
     * column so shard CSVs carry their grid position and `pdr merge`
     * can stitch them back together.
     */
    std::size_t indexOffset = 0;

    std::size_t failures() const;

    /** Throw std::runtime_error on the first failed point, if any. */
    void throwIfFailed() const;

    /**
     * Render as a table (one row per point) for CSV/JSON export.  The
     * table carries only deterministic columns (no wall-clock), so two
     * exports of the same sweep are bit-identical regardless of thread
     * count -- `diff` is a valid reproducibility check.
     */
    stats::Table toTable() const;

    /**
     * Per-point telemetry emission summaries (windows, flits, packets,
     * peak window rate, trace events), one row per point.  All zeros
     * for points run with telemetry off; like toTable(), carries only
     * deterministic columns, so exports are thread-count-independent.
     */
    stats::Table telemTable() const;
};

/** Execution options for a sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = PDR_THREADS env or hardware concurrency. */
    int threads = 0;
    /** Base seed each point's seed is derived from. */
    std::uint64_t baseSeed = 1;
    /**
     * Derive per-point seeds from (baseSeed, index).  Off, every point
     * keeps the seed already in its SimConfig (e.g. to reproduce a
     * legacy serial sweep that reused one seed).
     */
    bool deriveSeeds = true;
    /**
     * Submit the heaviest points (highest offered fraction) first.
     * Saturated points run much longer than low-load points, so
     * starting them early tightens the sweep's critical path.  Pure
     * scheduling: per-point seeds and results are bit-identical either
     * way, and results always come back in input order.
     */
    bool heaviestFirst = true;
    /**
     * Progress hook, called after each point completes with (done,
     * total, pointWallMs).  Calls are serialized under an internal
     * mutex but arrive from pool worker threads in completion order
     * (nondeterministic); use for live reporting only, never to
     * influence results.  Null = silent.
     */
    std::function<void(std::size_t done, std::size_t total,
                       double pointWallMs)>
        onPointDone;
};

/** Fans sweep points across a fixed thread pool. */
class SweepRunner
{
  public:
    /** Point evaluator; the default is api::runSimulation. */
    using RunFn = std::function<api::SimResults(const api::SimConfig &)>;

    explicit SweepRunner(SweepOptions opts = {});

    /** Run all points through api::runSimulation. */
    SweepResults run(const std::vector<SweepPoint> &points) const;

    /** Run all points through a custom evaluator. */
    SweepResults run(const std::vector<SweepPoint> &points,
                     const RunFn &fn) const;

    const SweepOptions &options() const { return opts_; }

    /** The seed point `index` receives under base seed `base`. */
    static std::uint64_t pointSeed(std::uint64_t base, std::size_t index);

  private:
    SweepOptions opts_;
};

/** Expands parameter axes into a deterministic sweep point list. */
class SweepBuilder
{
  public:
    explicit SweepBuilder(api::SimConfig base);

    /** Add a router-model variant (label + model/vcs/buf). */
    SweepBuilder &model(const std::string &label,
                        router::RouterModel model, int vcs, int buf,
                        bool single_cycle = false);

    /** Add a pre-configured variant (arbitrary config overrides). */
    SweepBuilder &variant(const std::string &label,
                          const api::SimConfig &cfg);

    /** Sweep offered load over these fractions of capacity. */
    SweepBuilder &loads(std::vector<double> fractions);

    /** Add a traffic-pattern axis value (PatternRegistry name). */
    SweepBuilder &pattern(const std::string &name);

    /** Add a topology axis value (radix, TopologyRegistry name). */
    SweepBuilder &topology(int k, const std::string &topo);

    /**
     * Cross product of the configured axes, ordered loads-major then
     * variants x patterns x topologies.  Axes never touched keep the
     * base config's value (a single implicit entry).
     */
    std::vector<SweepPoint> build() const;

  private:
    api::SimConfig base_;
    std::vector<SweepPoint> variants_;
    std::vector<double> loads_;
    std::vector<std::string> patterns_;
    std::vector<std::pair<int, std::string>> topologies_;
};

} // namespace pdr::exec

#endif // PDR_EXEC_SWEEP_HH
