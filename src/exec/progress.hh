/**
 * @file
 * Live sweep progress reporting: builds the SweepOptions::onPointDone
 * callback `pdr sweep` installs.  Reporting-only -- completion order
 * is nondeterministic, the results table is ordered by point index
 * regardless (docs/OBSERVABILITY.md).
 */

#ifndef PDR_EXEC_PROGRESS_HH
#define PDR_EXEC_PROGRESS_HH

#include <cstddef>
#include <functional>

namespace pdr::exec {

/**
 * A single \r-rewritten stderr line with done/total, percent, and a
 * smoothed ETA from the mean point wall time so far.  Returns nullptr
 * -- no reporting -- when stderr is not an interactive terminal
 * (never into logs or CI transcripts) or the log level is silent
 * (PDR_LOG_LEVEL=silent).  `forceTty` skips the terminal check only
 * (tests); the silent-level suppression always applies.
 */
std::function<void(std::size_t, std::size_t, double)>
makeProgressLine(bool forceTty = false);

} // namespace pdr::exec

#endif // PDR_EXEC_PROGRESS_HH
