#include "exec/sweep.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/thread_pool.hh"

namespace pdr::exec {

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    using namespace std::chrono;
    return duration<double, std::milli>(steady_clock::now() - start)
        .count();
}

} // namespace

std::size_t
SweepResults::failures() const
{
    std::size_t n = 0;
    for (const auto &p : points)
        n += p.ok ? 0 : 1;
    return n;
}

void
SweepResults::throwIfFailed() const
{
    for (const auto &p : points) {
        if (!p.ok) {
            throw std::runtime_error("sweep point '" + p.label +
                                     "' failed: " + p.error);
        }
    }
}

stats::Table
SweepResults::toTable() const
{
    stats::Table t({"index", "label", "seed", "offered_fraction",
                    "accepted_fraction", "avg_latency", "p99_latency",
                    "drained", "cycles", "ok", "error"});
    for (std::size_t i = 0; i < points.size(); i++) {
        const auto &p = points[i];
        std::uint64_t index = indexOffset + i;
        t.addRow({stats::Table::cell(index), p.label,
                  stats::Table::cell(std::uint64_t(p.cfg.net.seed)),
                  stats::Table::cell(p.res.offeredFraction),
                  stats::Table::cell(p.res.acceptedFraction),
                  stats::Table::cell(p.res.avgLatency),
                  stats::Table::cell(p.res.p99Latency),
                  stats::Table::cell(p.res.drained),
                  stats::Table::cell(std::uint64_t(p.res.cycles)),
                  stats::Table::cell(p.ok), p.error});
    }
    return t;
}

stats::Table
SweepResults::telemTable() const
{
    stats::Table t({"index", "label", "telem_windows", "telem_flits",
                    "telem_packets", "peak_window_rate",
                    "trace_events"});
    for (std::size_t i = 0; i < points.size(); i++) {
        const auto &p = points[i];
        std::uint64_t index = indexOffset + i;
        t.addRow({stats::Table::cell(index), p.label,
                  stats::Table::cell(p.res.telem.windows),
                  stats::Table::cell(p.res.telem.flits),
                  stats::Table::cell(p.res.telem.packets),
                  stats::Table::cell(p.res.telem.peakWindowRate),
                  stats::Table::cell(p.res.telem.traceEvents)});
    }
    return t;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

std::uint64_t
SweepRunner::pointSeed(std::uint64_t base, std::size_t index)
{
    return deriveSeed(base, index);
}

SweepResults
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    return run(points,
               [](const api::SimConfig &cfg) {
                   return api::runSimulation(cfg);
               });
}

SweepResults
SweepRunner::run(const std::vector<SweepPoint> &points,
                 const RunFn &fn) const
{
    // pdr-lint: allow(PDR-OBS-WALLCLOCK) wall-time telemetry only
    // (elapsed reporting); never reaches simulation state or
    // sim-facing output.
    auto sweep_start = std::chrono::steady_clock::now();

    SweepResults results;
    results.points.resize(points.size());

    ThreadPool pool(opts_.threads);
    results.threads = pool.size();

    for (std::size_t i = 0; i < points.size(); i++) {
        results.points[i].label = points[i].label;
        results.points[i].cfg = points[i].cfg;
        if (opts_.deriveSeeds)
            results.points[i].cfg.net.seed = pointSeed(opts_.baseSeed, i);
    }

    // Submission order: heaviest (highest offered load) first, so the
    // long saturated runs do not trail the sweep.  Seeds were assigned
    // above by input index, and every slot is written in input order,
    // so scheduling cannot change any per-point result.
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); i++)
        order[i] = i;
    if (opts_.heaviestFirst) {
        std::vector<double> weight(points.size(), 0.0);
        for (std::size_t i = 0; i < points.size(); i++) {
            try {
                weight[i] = points[i].cfg.net.offeredFraction();
            } catch (...) {
                // Invalid config: weight 0; the point itself will be
                // recorded as failed when it runs.
            }
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return weight[a] > weight[b];
                         });
    }

    // Progress state shared by the pool workers: the mutex serializes
    // onPointDone calls, so user callbacks (a CLI progress line) need
    // no locking of their own.  Pure reporting -- per-point results
    // are written before the counter moves and never read here.
    std::mutex progress_mutex;
    std::size_t done = 0;
    const std::size_t total = points.size();

    for (std::size_t i : order) {
        PointResult *slot = &results.points[i];
        pool.submit([this, slot, &fn, &progress_mutex, &done, total] {
            // pdr-lint: allow(PDR-OBS-WALLCLOCK) per-point wall-time
            // telemetry; never reaches simulation state or sim-facing
            // output.
            auto start = std::chrono::steady_clock::now();
            try {
                slot->res = fn(slot->cfg);
                slot->ok = true;
            } catch (const std::exception &e) {
                slot->error = e.what();
            } catch (...) {
                slot->error = "unknown exception";
            }
            slot->wallMs = msSince(start);
            if (opts_.onPointDone) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                done++;
                opts_.onPointDone(done, total, slot->wallMs);
            }
        });
    }
    pool.wait();

    results.wallMs = msSince(sweep_start);
    return results;
}

SweepBuilder::SweepBuilder(api::SimConfig base) : base_(std::move(base)) {}

SweepBuilder &
SweepBuilder::model(const std::string &label, router::RouterModel model,
                    int vcs, int buf, bool single_cycle)
{
    api::SimConfig cfg = base_;
    cfg.net.router.model = model;
    cfg.net.router.numVcs = vcs;
    cfg.net.router.bufDepth = buf;
    cfg.net.router.singleCycle = single_cycle;
    return variant(label, cfg);
}

SweepBuilder &
SweepBuilder::variant(const std::string &label, const api::SimConfig &cfg)
{
    variants_.push_back({label, cfg});
    return *this;
}

SweepBuilder &
SweepBuilder::loads(std::vector<double> fractions)
{
    loads_ = std::move(fractions);
    return *this;
}

SweepBuilder &
SweepBuilder::pattern(const std::string &name)
{
    patterns_.push_back(name);
    return *this;
}

SweepBuilder &
SweepBuilder::topology(int k, const std::string &topo)
{
    topologies_.push_back({k, topo});
    return *this;
}

std::vector<SweepPoint>
SweepBuilder::build() const
{
    // Implicit single entries for untouched axes.
    std::vector<SweepPoint> variants = variants_;
    if (variants.empty())
        variants.push_back({"", base_});
    std::vector<double> loads = loads_;
    if (loads.empty())
        loads.push_back(base_.net.offeredFraction());
    std::vector<std::string> patterns = patterns_;
    std::vector<std::pair<int, std::string>> topologies = topologies_;

    std::vector<SweepPoint> points;
    points.reserve(loads.size() * variants.size() *
                   std::max<std::size_t>(patterns.size(), 1) *
                   std::max<std::size_t>(topologies.size(), 1));

    for (double f : loads) {
        for (const auto &v : variants) {
            auto expand_pattern = [&](SweepPoint pt) {
                if (patterns.empty()) {
                    points.push_back(std::move(pt));
                    return;
                }
                for (const auto &name : patterns) {
                    SweepPoint p = pt;
                    p.cfg.net.pattern = name;
                    p.label += "/" + name;
                    points.push_back(std::move(p));
                }
            };

            SweepPoint pt{v.label, v.cfg};
            pt.cfg.net.setOfferedFraction(f);
            if (!pt.label.empty())
                pt.label += "@";
            pt.label += csprintf("%.3f", f);

            if (topologies.empty()) {
                expand_pattern(std::move(pt));
                continue;
            }
            for (const auto &[k, topo] : topologies) {
                SweepPoint p = pt;
                p.cfg.net.k = k;
                p.cfg.net.topology = topo;
                // Keep the offered fraction: the injection rate depends
                // on the topology's capacity.
                p.cfg.net.setOfferedFraction(f);
                p.label += csprintf("/%s%d", topo.c_str(), k);
                expand_pattern(std::move(p));
            }
        }
    }
    return points;
}

} // namespace pdr::exec
