#include "exec/progress.hh"

#include <cstdio>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/logging.hh"

namespace pdr::exec {

std::function<void(std::size_t, std::size_t, double)>
makeProgressLine(bool forceTty)
{
#if defined(__unix__) || defined(__APPLE__)
    if (!forceTty && !isatty(fileno(stderr)))
        return nullptr;
#else
    if (!forceTty)
        return nullptr;
#endif
    if (logLevel() == LogLevel::Silent)
        return nullptr;
    // State lives in the closure; calls are serialized by the sweep
    // runner's progress mutex.
    auto total_ms = std::make_shared<double>(0.0);
    return [total_ms](std::size_t done, std::size_t total,
                      double point_ms) {
        *total_ms += point_ms;
        // Points run concurrently, so the per-point mean overestimates
        // wall time by roughly the thread count; good enough for a
        // progress hint without threading the pool size through.
        double mean_ms = *total_ms / double(done);
        double eta_s = mean_ms * double(total - done) / 1000.0;
        double pct = 100.0 * double(done) / double(total);
        std::fprintf(stderr, "\rsweep: %zu/%zu (%3.0f%%), eta ~%.0fs ",
                     done, total, pct, eta_s);
        if (done == total)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };
}

} // namespace pdr::exec
