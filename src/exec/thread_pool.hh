/**
 * @file
 * Fixed-size worker thread pool for batch simulation workloads.
 *
 * The pool owns N worker threads that drain a FIFO task queue.  Tasks
 * are arbitrary callables; a task that throws does not kill its worker
 * or hang the pool -- the first exception is captured and rethrown from
 * wait().  parallelFor / parallelMap are the common entry points: they
 * preserve item order in the results regardless of which worker ran
 * which item.
 *
 * Thread-count selection (resolveThreads): an explicit request wins;
 * otherwise the PDR_THREADS environment variable; otherwise the
 * hardware concurrency.  PDR_THREADS=1 gives fully serial execution on
 * the calling pattern's own pool.
 */

#ifndef PDR_EXEC_THREAD_POOL_HH
#define PDR_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pdr::exec {

/** A fixed pool of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    /** Create the pool; `threads` <= 0 means resolveThreads(0). */
    explicit ThreadPool(int threads = 0);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int size() const { return int(workers_.size()); }

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished.  If any task threw,
     * rethrows the first captured exception (the pool stays usable).
     */
    void wait();

    /**
     * Thread count for a request: `requested` > 0 wins, then the
     * PDR_THREADS environment variable, then hardware concurrency
     * (always at least 1).
     */
    static int resolveThreads(int requested = 0);

    /**
     * Size of the ThreadPool whose worker is the calling thread, or 0
     * when called from outside any pool.  Nested parallelism (e.g. a
     * partitioned network simulation running inside a sweep worker)
     * uses this to share one machine budget instead of multiplying
     * thread counts.
     */
    static int currentPoolSize();

  private:
    void workerLoop(int pool_size);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wakeWorker_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;  //!< Queued + currently executing.
    std::exception_ptr firstError_;
    bool stop_ = false;
};

/**
 * Run body(0..n-1) across a temporary pool of `threads` workers; blocks
 * until all iterations finish.  Rethrows the first exception thrown by
 * any iteration (after every iteration has been attempted).
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
                 int threads = 0);

/**
 * Order-preserving parallel map: results[i] == fn(items[i]) regardless
 * of scheduling.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn, int threads = 0)
    -> std::vector<decltype(fn(items.front()))>
{
    using R = decltype(fn(items.front()));
    // vector<bool> packs bits: concurrent element writes would race.
    static_assert(!std::is_same<R, bool>::value,
                  "parallelMap cannot return bool; wrap it in a struct "
                  "or use int");
    std::vector<R> results(items.size());
    parallelFor(items.size(),
                [&](std::size_t i) { results[i] = fn(items[i]); },
                threads);
    return results;
}

} // namespace pdr::exec

#endif // PDR_EXEC_THREAD_POOL_HH
