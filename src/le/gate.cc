#include "le/gate.hh"

#include "common/logging.hh"

namespace pdr::le {

Gate
inverter()
{
    return {"inv", 1.0, 1.0};
}

Gate
nandGate(int n)
{
    pdr_assert(n >= 1);
    if (n == 1)
        return inverter();
    return {csprintf("nand%d", n), (n + 2) / 3.0, double(n)};
}

Gate
norGate(int n)
{
    pdr_assert(n >= 1);
    if (n == 1)
        return inverter();
    return {csprintf("nor%d", n), (2 * n + 1) / 3.0, double(n)};
}

Gate
aoiGate(int legs, int width)
{
    pdr_assert(legs >= 1 && width >= 1);
    return {csprintf("aoi%dx%d", legs, width),
            (2.0 * legs + width) / 3.0, double(legs + width)};
}

Gate
muxGate(int n)
{
    pdr_assert(n >= 2);
    // Transmission-gate mux: logical effort 2 on the data input; the
    // parasitic grows with the number of off legs hanging on the shared
    // output node.
    return {csprintf("mux%d", n), 2.0, 2.0 * n / 2.0};
}

} // namespace pdr::le
