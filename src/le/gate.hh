/**
 * @file
 * Gate templates for the method of logical effort (Sutherland & Sproull).
 *
 * The specific router model of the paper (Section 3.2) computes every
 * atomic-module delay with the method of logical effort: the delay of a
 * path is T = Teff + Tpar where the effort delay of each stage is the
 * product of its logical effort g (the ratio of the gate's delay to that
 * of an inverter with identical input capacitance) and its electrical
 * effort h (fan-out), and Tpar sums intrinsic parasitic delays (EQ 2).
 *
 * Logical efforts / parasitics follow the standard CMOS templates used by
 * Sutherland, Sproull & Harris (gamma = 2): an n-input NAND has
 * g = (n + 2) / 3, an n-input NOR has g = (2n + 1) / 3, and both have
 * parasitic delay n (in units of the inverter parasitic, which is 1).
 */

#ifndef PDR_LE_GATE_HH
#define PDR_LE_GATE_HH

#include <string>

namespace pdr::le {

/** A gate template: logical effort and parasitic delay of one stage. */
struct Gate
{
    std::string name;       //!< For diagnostics / pretty printing.
    double logicalEffort;   //!< g, relative to an inverter.
    double parasitic;       //!< p, relative to inverter parasitic.
};

/** Static inverter: g = 1, p = 1 by definition. */
Gate inverter();

/** n-input static NAND: g = (n+2)/3, p = n. */
Gate nandGate(int n);

/** n-input static NOR: g = (2n+1)/3, p = n. */
Gate norGate(int n);

/**
 * AND-OR-INVERT gate with `legs` AND legs of `width` inputs each.
 * Worst-case logical effort mirrors a NAND of (width+1) inputs stacked
 * with `legs` parallel pull-ups: g = (2*legs + width) / 3 on the critical
 * input, p = legs + width.
 */
Gate aoiGate(int legs, int width);

/** n:1 static multiplexer (transmission-gate style): g = 2, p = 2n/... */
Gate muxGate(int n);

} // namespace pdr::le

#endif // PDR_LE_GATE_HH
