/**
 * @file
 * Logical-effort path delay computation (EQ 2 of the paper).
 *
 * A Path is an ordered list of stages, each a gate template plus the
 * electrical effort (fan-out) it drives.  Its delay is
 *
 *   T = sum_i(g_i * h_i) + sum_i(p_i)      [in tau]
 *
 * The Path also supports the classic sizing question: given a total path
 * effort, how many stages minimize delay, and what is the resulting
 * minimum delay (used to model optimally buffered fan-out trees, whose
 * delay is ~5 tau per fan-out-of-4 stage, i.e. tau4 * log4(F)).
 */

#ifndef PDR_LE_PATH_HH
#define PDR_LE_PATH_HH

#include <vector>

#include "common/units.hh"
#include "le/gate.hh"

namespace pdr::le {

/** One stage of a path: the gate and the electrical effort it drives. */
struct Stage
{
    Gate gate;
    double electricalEffort;    //!< h = Cout / Cin.
};

/** A gate path whose delay follows EQ 2. */
class Path
{
  public:
    Path() = default;

    /** Append a stage. */
    Path &add(const Gate &g, double electrical_effort);

    /** Effort delay sum(g_i * h_i), in tau. */
    Tau effortDelay() const;

    /** Parasitic delay sum(p_i), in tau. */
    Tau parasiticDelay() const;

    /** Total delay T = Teff + Tpar, in tau. */
    Tau delay() const;

    /** Number of stages. */
    std::size_t size() const { return stages_.size(); }

    const std::vector<Stage> &stages() const { return stages_; }

  private:
    std::vector<Stage> stages_;
};

/**
 * Delay of an optimally buffered tree driving a fan-out of F with
 * inverters of stage effort 4 (the canonical result: tau4 per quadrupling
 * of load).  Returns 0 for F <= 1.
 */
Tau fanoutTreeDelay(double fanout);

/**
 * Number of inverter stages such a tree uses (ceil of log4 F), for
 * structural reporting.
 */
int fanoutTreeStages(double fanout);

} // namespace pdr::le

#endif // PDR_LE_PATH_HH
