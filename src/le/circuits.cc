#include "le/circuits.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math.hh"

namespace pdr::le {

Path
matrixArbiterPath(int n)
{
    pdr_assert(n >= 1);
    Path path;
    if (n == 1) {
        // Degenerate arbiter: a single qualifying gate.
        path.add(nandGate(2), 2.0);
        return path;
    }

    // Request qualified against the n-1 priority-matrix kill terms with
    // AOI gates, two pairs per leg.
    path.add(aoiGate(2, 2), 2.0);

    // Reduction tree over the kill terms: alternate NAND2 / NOR2 levels,
    // depth log2(n).
    int levels = std::max(1, int(std::ceil(log2d(double(n)))));
    for (int l = 0; l < levels; l++) {
        if (l % 2 == 0)
            path.add(nandGate(2), 2.0);
        else
            path.add(norGate(2), 2.0);
    }

    // The grant fans out to n circuits (grant latches and the priority
    // update rows/columns): an optimally buffered tree.
    for (int s = 0; s < fanoutTreeStages(double(n)); s++)
        path.add(inverter(), 4.0);

    return path;
}

Path
switchArbiterPath(int p)
{
    pdr_assert(p >= 1);
    Path path;
    // Status latch output fans out to the p request-qualification gates.
    for (int s = 0; s < fanoutTreeStages(double(p)); s++)
        path.add(inverter(), 4.0);
    // 2-input NAND qualifying request with port status.
    path.add(nandGate(2), 2.0);
    // The p:1 matrix arbiter itself.
    Path arb = matrixArbiterPath(p);
    for (const auto &st : arb.stages())
        path.add(st.gate, st.electricalEffort);
    return path;
}

Path
arbiterOverheadPath()
{
    // EQ 6: grant row/column priority update through a 2-input and a
    // 3-input NOR; total 9 tau in the paper.
    Path path;
    // At unit fan-out: (5/3 + 2) + (7/3 + 3) = 9 tau exactly (EQ 6).
    path.add(norGate(2), 1.0);
    path.add(norGate(3), 1.0);
    return path;
}

Path
crossbarPath(int p, int w)
{
    pdr_assert(p >= 2 && w >= 1);
    Path path;
    // The select signal from the switch allocator drives one mux select
    // per bit slice: fan-out of w, buffered with stage effort 8 (larger
    // stage effort trades stages for load, as the paper's 9*log8 term
    // indicates: ~9 tau per factor-of-8 of load).
    double sel_load = double(w) * p;
    if (sel_load > 1.0) {
        int stages = std::max(1, int(std::ceil(log8(sel_load))));
        for (int s = 0; s < stages; s++)
            path.add(inverter(), 8.0);
    }
    // Data through the p:1 mux, built as a tree of 2:1 transmission-gate
    // muxes of depth log2(p).
    int mux_levels = std::max(1, int(std::ceil(log2d(double(p)))));
    for (int l = 0; l < mux_levels; l++)
        path.add(muxGate(2), 2.0);
    return path;
}

} // namespace pdr::le
