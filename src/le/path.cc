#include "le/path.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math.hh"

namespace pdr::le {

Path &
Path::add(const Gate &g, double electrical_effort)
{
    pdr_assert(electrical_effort > 0.0);
    stages_.push_back({g, electrical_effort});
    return *this;
}

Tau
Path::effortDelay() const
{
    double t = 0.0;
    for (const auto &s : stages_)
        t += s.gate.logicalEffort * s.electricalEffort;
    return Tau(t);
}

Tau
Path::parasiticDelay() const
{
    double t = 0.0;
    for (const auto &s : stages_)
        t += s.gate.parasitic;
    return Tau(t);
}

Tau
Path::delay() const
{
    return effortDelay() + parasiticDelay();
}

Tau
fanoutTreeDelay(double fanout)
{
    if (fanout <= 1.0)
        return Tau(0.0);
    // Stage effort 4 and parasitic 1 per inverter stage gives 5 tau
    // (= 1 tau4) per factor-of-4 of load: T = 5 * log4(F).
    return Tau(5.0 * log4(fanout));
}

int
fanoutTreeStages(double fanout)
{
    if (fanout <= 1.0)
        return 0;
    return int(std::ceil(log4(fanout)));
}

} // namespace pdr::le
