/**
 * @file
 * Gate-level constructions of the router circuit structures analysed in
 * the paper: matrix arbiters, status/request fan-out, and the crossbar.
 *
 * The paper derives its Table-1 parametric equations from detailed
 * gate-level designs of exactly these structures (EQ 4-6 and Figures 9
 * and 10).  This module rebuilds those structures with the logical-effort
 * engine so that (a) the structural origin of every log term in Table 1
 * is executable and testable, and (b) alternative circuit choices can be
 * explored.  The *closed-form* equations in src/delay are the
 * authoritative model (they reproduce the paper's published numeric
 * column exactly); the circuit constructions here agree with them to
 * within a couple of tau4, mirroring the paper's own validation bound
 * against the Synopsys timing analyzer.
 */

#ifndef PDR_LE_CIRCUITS_HH
#define PDR_LE_CIRCUITS_HH

#include "common/units.hh"
#include "le/path.hh"

namespace pdr::le {

/**
 * Critical path of an n:1 matrix arbiter (Figure 10(b)): the request
 * enters an AOI gate that combines it with the priority-matrix state, a
 * NAND/NOR tree of depth ~log2 n reduces the per-pair kill signals into a
 * grant, and the grant fans out to n circuits.
 */
Path matrixArbiterPath(int n);

/**
 * Latency path of the wormhole switch arbiter for one output port
 * (Figure 10(a)): the status latch fans out to p request gates, the p:1
 * matrix arbiter resolves, and a 2-input NAND qualifies the grant, which
 * fans out to p grant circuits (EQ 5).
 */
Path switchArbiterPath(int p);

/**
 * Overhead path of a matrix arbiter (EQ 6): the grant row/column update
 * of the priority matrix through a 2-input and a 3-input NOR.
 */
Path arbiterOverheadPath();

/**
 * Critical path of the p-port, w-bit crossbar (Figure 9): an input-select
 * signal from the switch allocator fans out to the multiplexers of all w
 * bit slices, then the data traverses the p:1 multiplexer.
 */
Path crossbarPath(int p, int w);

} // namespace pdr::le

#endif // PDR_LE_CIRCUITS_HH
