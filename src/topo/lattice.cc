#include "topo/lattice.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.hh"

namespace pdr::topo {

Lattice::Lattice(std::vector<int> radices, std::vector<bool> wraps,
                 int concentration)
    : radix_(std::move(radices)), wrap_(std::move(wraps)),
      conc_(concentration)
{
    if (radix_.empty() || int(radix_.size()) > kMaxDims) {
        throw std::invalid_argument(csprintf(
            "net.topology: lattice needs 1..%d dimensions, got %zu",
            kMaxDims, radix_.size()));
    }
    if (wrap_.size() != radix_.size()) {
        throw std::invalid_argument(
            "net.topology: one wrap flag per dimension required");
    }
    for (int k : radix_) {
        if (k < 2) {
            throw std::invalid_argument(csprintf(
                "net.k: lattice radix must be >= 2, got %d", k));
        }
    }
    if (conc_ < 1) {
        throw std::invalid_argument(csprintf(
            "net.topology: concentration must be >= 1, got %d", conc_));
    }
    stride_.resize(radix_.size());
    long long routers = 1;
    for (std::size_t d = 0; d < radix_.size(); d++) {
        stride_[d] = int(routers);
        routers *= radix_[d];
        if (routers * conc_ > (1 << 24)) {
            throw std::invalid_argument(
                "net.topology: lattice too large (> 2^24 nodes)");
        }
    }
    numRouters_ = int(routers);
}

Lattice
Lattice::kAryNMesh(int n, int k)
{
    return Lattice(std::vector<int>(std::size_t(std::max(n, 1)), k),
                   std::vector<bool>(std::size_t(std::max(n, 1)), false));
}

Lattice
Lattice::kAryNCube(int n, int k)
{
    return Lattice(std::vector<int>(std::size_t(std::max(n, 1)), k),
                   std::vector<bool>(std::size_t(std::max(n, 1)), true));
}

Lattice
Lattice::cmesh(int k, int c)
{
    return Lattice({k, k}, {false, false}, c);
}

bool
Lattice::wraps() const
{
    for (bool w : wrap_)
        if (w)
            return true;
    return false;
}

int
Lattice::opposite(int port) const
{
    pdr_assert(isDirectional(port));
    return (port + dims()) % (2 * dims());
}

std::string
Lattice::portName(int port) const
{
    if (isLocalPort(port)) {
        int j = localIndexOfPort(port);
        pdr_assert(j >= 0 && j < conc_);
        return conc_ == 1 ? "L" : csprintf("L%d", j);
    }
    int d = dimOfPort(port);
    bool plus = isPlusPort(port);
    switch (d) {
      case 0: return plus ? "E" : "W";
      case 1: return plus ? "N" : "S";
      case 2: return plus ? "U" : "D";
    }
    return csprintf("%c%d", plus ? 'P' : 'M', d);
}

sim::NodeId
Lattice::routerAt(const std::vector<int> &coords) const
{
    pdr_assert(int(coords.size()) == dims());
    long long id = 0;
    for (std::size_t d = 0; d < coords.size(); d++) {
        pdr_assert(coords[d] >= 0 && coords[d] < radix_[d]);
        id += (long long)coords[d] * stride_[d];
    }
    return sim::NodeId(id);
}

sim::NodeId
Lattice::neighbor(sim::NodeId router, int port) const
{
    if (!isDirectional(port))
        return sim::Invalid;
    int d = dimOfPort(port);
    int k = radix_[std::size_t(d)];
    int c = coordOf(router, d);
    int step = isPlusPort(port) ? 1 : -1;
    int nc = c + step;
    if (nc < 0 || nc >= k) {
        if (!wrap_[std::size_t(d)])
            return sim::Invalid;
        nc = (nc + k) % k;
    }
    return router + (nc - c) * stride_[std::size_t(d)];
}

bool
Lattice::isWrapLink(sim::NodeId router, int port) const
{
    if (!isDirectional(port))
        return false;
    int d = dimOfPort(port);
    if (!wrap_[std::size_t(d)])
        return false;
    int c = coordOf(router, d);
    return isPlusPort(port) ? c == radix_[std::size_t(d)] - 1 : c == 0;
}

int
Lattice::distance(sim::NodeId a, sim::NodeId b) const
{
    int total = 0;
    for (int d = 0; d < dims(); d++) {
        int diff = std::abs(coordOf(a, d) - coordOf(b, d));
        if (wrap_[std::size_t(d)])
            diff = std::min(diff, radix_[std::size_t(d)] - diff);
        total += diff;
    }
    return total;
}

double
Lattice::uniformCapacity() const
{
    // Narrowest dimension cut: 2 * (routers / k_d) unidirectional
    // channels, doubled again when the dimension wraps.
    double bc = 0.0;
    for (int d = 0; d < dims(); d++) {
        double cut = 2.0 * (double(numRouters_) / radix_[std::size_t(d)]) *
                     (wrap_[std::size_t(d)] ? 2.0 : 1.0);
        if (bc == 0.0 || cut < bc)
            bc = cut;
    }
    return 2.0 * bc / numNodes();
}

double
Lattice::meanUniformDistance() const
{
    // Sum the per-dimension mean offset (over all ordered coordinate
    // pairs, self included), then correct for excluding same-node
    // pairs: concentration factors cancel.
    double incl_self = 0.0;
    for (int d = 0; d < dims(); d++) {
        int k = radix_[std::size_t(d)];
        if (wrap_[std::size_t(d)]) {
            double sum = 0.0;
            for (int off = 0; off < k; off++)
                sum += std::min(off, k - off);
            incl_self += sum / k;
        } else {
            incl_self += (double(k) * k - 1.0) / (3.0 * k);
        }
    }
    double n = numNodes();
    return incl_self * n / (n - 1.0);
}

} // namespace pdr::topo
