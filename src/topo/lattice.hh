/**
 * @file
 * Generalized lattice topologies: k-ary n-cubes (meshes and tori of any
 * dimension count and per-dimension radix) with optional concentration
 * (c terminal nodes per router).
 *
 * This subsystem owns all network geometry: coordinate math, port
 * numbering, neighbor/wrap/distance queries and the uniform-traffic
 * capacity normalization.  The execution core (Network, Router) and the
 * routing functions consume it through this interface only, so new
 * geometries land as registry entries instead of new simulator code.
 *
 * Terminology:
 *  - A *router* is a switch point of the lattice; there are
 *    prod(radix_d) of them, numbered with dimension 0 fastest-varying
 *    (id = sum coord_d * stride_d, stride_0 = 1).
 *  - A *node* is a traffic terminal (source + sink).  Each router hosts
 *    `concentration` nodes: node = router * c + local_index.
 *
 * Port convention (chosen so the classic 2D mesh keeps its historical
 * numbering N=0, E=1, S=2, W=3, Local=4):
 *  - ports [0, n)     : "plus" directions, port i = +dim(n-1-i)
 *  - ports [n, 2n)    : "minus" directions, port n+i = -dim(n-1-i)
 *  - ports [2n, 2n+c) : local injection/ejection, one per hosted node
 * so opposite(p) = (p + n) mod 2n for directional ports.
 */

#ifndef PDR_TOPO_LATTICE_HH
#define PDR_TOPO_LATTICE_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace pdr::topo {

/** A k-ary n-cube / n-mesh with concentration. */
class Lattice
{
  public:
    /** Dimension cap: per-dimension dateline VC-class bits must fit a
     *  flit's 8-bit vclass next to the routing-order/phase bit. */
    static constexpr int kMaxDims = 6;

    /**
     * General form: one radix and wrap flag per dimension, plus the
     * concentration factor.  Throws std::invalid_argument on bad
     * shapes (empty, radix < 2, too many dims, c < 1).
     */
    Lattice(std::vector<int> radices, std::vector<bool> wraps,
            int concentration = 1);

    // Named constructors for the common registry entries.
    static Lattice mesh2D(int k) { return kAryNMesh(2, k); }
    static Lattice torus2D(int k) { return kAryNCube(2, k); }
    static Lattice kAryNMesh(int n, int k);
    static Lattice kAryNCube(int n, int k);     //!< All dims wrap.
    static Lattice cmesh(int k, int c);         //!< 2D mesh, c nodes/router.

    int dims() const { return int(radix_.size()); }
    int radix(int d) const { return radix_[std::size_t(d)]; }
    bool wraps(int d) const { return wrap_[std::size_t(d)]; }
    /** Any dimension wraps (the old Mesh::wraps()). */
    bool wraps() const;
    int concentration() const { return conc_; }

    int numRouters() const { return numRouters_; }
    int numNodes() const { return numRouters_ * conc_; }
    /** Physical router ports: 2 per dimension + c local. */
    int numPorts() const { return 2 * dims() + conc_; }

    // ----- node <-> router mapping -----------------------------------
    sim::NodeId routerOf(sim::NodeId node) const
    {
        return node / conc_;
    }
    int localIndexOf(sim::NodeId node) const { return node % conc_; }
    sim::NodeId nodeAt(sim::NodeId router, int local) const
    {
        return router * conc_ + local;
    }

    // ----- port numbering --------------------------------------------
    int plusPort(int d) const { return dims() - 1 - d; }
    int minusPort(int d) const { return 2 * dims() - 1 - d; }
    bool isDirectional(int port) const { return port < 2 * dims(); }
    bool isLocalPort(int port) const { return port >= 2 * dims(); }
    int localPort(int local) const { return 2 * dims() + local; }
    /** Hosted-node index of a local port. */
    int localIndexOfPort(int port) const { return port - 2 * dims(); }
    /** Dimension a directional port moves along. */
    int dimOfPort(int port) const
    {
        return dims() - 1 - (port % dims());
    }
    bool isPlusPort(int port) const { return port < dims(); }
    /** Reverse direction of a directional port. */
    int opposite(int port) const;
    /** "N"/"E"/"S"/"W" on 2D, "U"/"D" for the third dim, "P<d>"/"M<d>"
     *  beyond, "L"/"L<j>" for local ports. */
    std::string portName(int port) const;

    // ----- coordinates -----------------------------------------------
    int coordOf(sim::NodeId router, int d) const
    {
        return (router / stride_[std::size_t(d)]) % radix_[std::size_t(d)];
    }
    sim::NodeId routerAt(const std::vector<int> &coords) const;
    /** 2D convenience (dim 0 = x, dim 1 = y). */
    sim::NodeId router2D(int x, int y) const
    {
        return routerAt({x, y});
    }

    /** Router through directional `port`; Invalid at a mesh edge
     *  (wrapping dimensions wrap). */
    sim::NodeId neighbor(sim::NodeId router, int port) const;

    /** True if the `port` link out of `router` is a wraparound link
     *  (and hence a dateline for deadlock-avoidance VC classes). */
    bool isWrapLink(sim::NodeId router, int port) const;

    /** Minimal hop count between routers (wrap-aware). */
    int distance(sim::NodeId a, sim::NodeId b) const;

    /**
     * Network capacity under uniform random traffic in flits per node
     * per cycle: the bisection bound 2 * B_c / N, with B_c the
     * unidirectional channel count across the narrowest dimension cut.
     * Reduces to 4/k for a k x k mesh and 8/k for the torus; dividing
     * by the concentration factor for concentrated meshes.  The
     * figures' x-axes quote offered traffic as a fraction of this.
     */
    double uniformCapacity() const;

    /** Mean router hop distance between distinct nodes under uniform
     *  traffic (node pairs sharing a router count as distance 0). */
    double meanUniformDistance() const;

    bool operator==(const Lattice &o) const
    {
        return radix_ == o.radix_ && wrap_ == o.wrap_ &&
               conc_ == o.conc_;
    }

  private:
    std::vector<int> radix_;    //!< Per-dimension radix.
    std::vector<bool> wrap_;    //!< Per-dimension wraparound.
    std::vector<int> stride_;   //!< Router-id stride per dimension.
    int conc_;                  //!< Nodes per router.
    int numRouters_;
};

} // namespace pdr::topo

#endif // PDR_TOPO_LATTICE_HH
