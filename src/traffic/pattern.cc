#include "traffic/pattern.hh"

#include <stdexcept>

#include "common/logging.hh"
#include "common/math.hh"

namespace pdr::traffic {

UniformPattern::UniformPattern(int k) : numNodes_(k * k)
{
    pdr_assert(numNodes_ >= 2);
}

sim::NodeId
UniformPattern::pick(sim::NodeId src, Rng &rng) const
{
    // Uniform over the other N-1 nodes.
    auto d = sim::NodeId(rng.range(numNodes_ - 1));
    if (d >= src)
        d++;
    return d;
}

TransposePattern::TransposePattern(int k) : k_(k) {}

sim::NodeId
TransposePattern::pick(sim::NodeId src, Rng &rng) const
{
    int x = int(src) % k_, y = int(src) / k_;
    auto d = sim::NodeId(x * k_ + y);
    if (d == src) {
        // Diagonal nodes map to themselves; fall back to uniform so
        // every node still offers load.
        return UniformPattern(k_).pick(src, rng);
    }
    return d;
}

namespace {

/** log2 of a power-of-two node count; throws for other counts. */
int
patternBits(const char *pattern, int k)
{
    int nodes = k * k;
    if (!isPow2(unsigned(nodes))) {
        throw std::invalid_argument(csprintf(
            "traffic.pattern=%s needs a power-of-two node count, "
            "got k=%d (%d nodes)", pattern, k, nodes));
    }
    int b = 0;
    while ((1 << b) < nodes)
        b++;
    return b;
}

} // namespace

BitComplementPattern::BitComplementPattern(int k) : numNodes_(k * k)
{
    (void)patternBits("bitcomp", k);
}

sim::NodeId
BitComplementPattern::pick(sim::NodeId src, Rng &) const
{
    return sim::NodeId((~unsigned(src)) & unsigned(numNodes_ - 1));
}

TornadoPattern::TornadoPattern(int k) : k_(k) {}

sim::NodeId
TornadoPattern::pick(sim::NodeId src, Rng &) const
{
    int x = int(src) % k_, y = int(src) / k_;
    int shift = (k_ + 1) / 2 - 1;
    if (shift == 0)
        shift = 1;
    int dx = (x + shift) % k_;
    return sim::NodeId(y * k_ + dx);
}

NeighborPattern::NeighborPattern(int k) : k_(k) {}

sim::NodeId
NeighborPattern::pick(sim::NodeId src, Rng &) const
{
    int x = int(src) % k_, y = int(src) / k_;
    return sim::NodeId(y * k_ + (x + 1) % k_);
}

BitReversePattern::BitReversePattern(int k)
    : uniform_(k), bits_(patternBits("bitrev", k))
{
}

sim::NodeId
BitReversePattern::pick(sim::NodeId src, Rng &rng) const
{
    unsigned s = unsigned(src), d = 0;
    for (int i = 0; i < bits_; i++)
        d |= ((s >> i) & 1u) << (bits_ - 1 - i);
    if (sim::NodeId(d) == src)
        return uniform_.pick(src, rng);
    return sim::NodeId(d);
}

ShufflePattern::ShufflePattern(int k)
    : uniform_(k), numNodes_(k * k), bits_(patternBits("shuffle", k))
{
}

sim::NodeId
ShufflePattern::pick(sim::NodeId src, Rng &rng) const
{
    unsigned s = unsigned(src);
    unsigned d = ((s << 1) | (s >> (bits_ - 1))) & unsigned(numNodes_ - 1);
    if (sim::NodeId(d) == src)
        return uniform_.pick(src, rng);
    return sim::NodeId(d);
}

HotspotPattern::HotspotPattern(int k, sim::NodeId hotspot, double fraction)
    : uniform_(k), hotspot_(hotspot), fraction_(fraction)
{
    pdr_assert(fraction >= 0.0 && fraction <= 1.0);
}

sim::NodeId
HotspotPattern::pick(sim::NodeId src, Rng &rng) const
{
    if (src != hotspot_ && rng.bernoulli(fraction_))
        return hotspot_;
    return uniform_.pick(src, rng);
}

PatternRegistry::PatternRegistry()
    : FactoryRegistry<PatternFactory>("traffic pattern")
{
    add("uniform",
        [](int k) { return std::make_unique<UniformPattern>(k); },
        "uniform random over all other nodes (the paper's workload)");
    add("transpose",
        [](int k) { return std::make_unique<TransposePattern>(k); },
        "matrix transpose: (x, y) -> (y, x)");
    add("bitcomp",
        [](int k) { return std::make_unique<BitComplementPattern>(k); },
        "bit complement: node i -> ~i (power-of-two node counts)");
    add("tornado",
        [](int k) { return std::make_unique<TornadoPattern>(k); },
        "tornado: half-way around the x dimension");
    add("neighbor",
        [](int k) { return std::make_unique<NeighborPattern>(k); },
        "nearest neighbor: +1 in x (wrapping)");
    add("bitrev",
        [](int k) { return std::make_unique<BitReversePattern>(k); },
        "bit reversal: node i -> reverse of i's bits (power-of-two "
        "node counts)");
    add("shuffle",
        [](int k) { return std::make_unique<ShufflePattern>(k); },
        "perfect shuffle: node i -> rotate-left of i's bits "
        "(power-of-two node counts)");
    add("hotspot",
        [](int k) {
            return std::make_unique<HotspotPattern>(
                k, k * k / 2 + k / 2, 0.1);
        },
        "10% of traffic to the center node, the rest uniform");
}

PatternRegistry &
PatternRegistry::instance()
{
    static PatternRegistry reg;
    return reg;
}

std::unique_ptr<TrafficPattern>
makePattern(const std::string &name, int k)
{
    return PatternRegistry::instance().at(name)(k);
}

} // namespace pdr::traffic
