#include "traffic/pattern.hh"

#include <stdexcept>

#include "common/logging.hh"
#include "common/math.hh"

namespace pdr::traffic {

UniformPattern::UniformPattern(int k) : numNodes_(k * k)
{
    pdr_assert(numNodes_ >= 2);
}

sim::NodeId
UniformPattern::pick(sim::NodeId src, Rng &rng) const
{
    // Uniform over the other N-1 nodes.
    auto d = sim::NodeId(rng.range(numNodes_ - 1));
    if (d >= src)
        d++;
    return d;
}

TransposePattern::TransposePattern(int k) : k_(k) {}

sim::NodeId
TransposePattern::pick(sim::NodeId src, Rng &rng) const
{
    int x = int(src) % k_, y = int(src) / k_;
    auto d = sim::NodeId(x * k_ + y);
    if (d == src) {
        // Diagonal nodes map to themselves; fall back to uniform so
        // every node still offers load.
        return UniformPattern(k_).pick(src, rng);
    }
    return d;
}

BitComplementPattern::BitComplementPattern(int k) : numNodes_(k * k)
{
    if (!isPow2(unsigned(numNodes_))) {
        throw std::invalid_argument(csprintf(
            "traffic.pattern=bitcomp needs a power-of-two node count, "
            "got k=%d (%d nodes)", k, numNodes_));
    }
}

sim::NodeId
BitComplementPattern::pick(sim::NodeId src, Rng &) const
{
    return sim::NodeId((~unsigned(src)) & unsigned(numNodes_ - 1));
}

TornadoPattern::TornadoPattern(int k) : k_(k) {}

sim::NodeId
TornadoPattern::pick(sim::NodeId src, Rng &) const
{
    int x = int(src) % k_, y = int(src) / k_;
    int shift = (k_ + 1) / 2 - 1;
    if (shift == 0)
        shift = 1;
    int dx = (x + shift) % k_;
    return sim::NodeId(y * k_ + dx);
}

NeighborPattern::NeighborPattern(int k) : k_(k) {}

sim::NodeId
NeighborPattern::pick(sim::NodeId src, Rng &) const
{
    int x = int(src) % k_, y = int(src) / k_;
    return sim::NodeId(y * k_ + (x + 1) % k_);
}

HotspotPattern::HotspotPattern(int k, sim::NodeId hotspot, double fraction)
    : uniform_(k), hotspot_(hotspot), fraction_(fraction)
{
    pdr_assert(fraction >= 0.0 && fraction <= 1.0);
}

sim::NodeId
HotspotPattern::pick(sim::NodeId src, Rng &rng) const
{
    if (src != hotspot_ && rng.bernoulli(fraction_))
        return hotspot_;
    return uniform_.pick(src, rng);
}

PatternRegistry::PatternRegistry()
    : FactoryRegistry<PatternFactory>("traffic pattern")
{
    add("uniform",
        [](int k) { return std::make_unique<UniformPattern>(k); },
        "uniform random over all other nodes (the paper's workload)");
    add("transpose",
        [](int k) { return std::make_unique<TransposePattern>(k); },
        "matrix transpose: (x, y) -> (y, x)");
    add("bitcomp",
        [](int k) { return std::make_unique<BitComplementPattern>(k); },
        "bit complement: node i -> ~i (power-of-two node counts)");
    add("tornado",
        [](int k) { return std::make_unique<TornadoPattern>(k); },
        "tornado: half-way around the x dimension");
    add("neighbor",
        [](int k) { return std::make_unique<NeighborPattern>(k); },
        "nearest neighbor: +1 in x (wrapping)");
    add("hotspot",
        [](int k) {
            return std::make_unique<HotspotPattern>(
                k, k * k / 2 + k / 2, 0.1);
        },
        "10% of traffic to the center node, the rest uniform");
}

PatternRegistry &
PatternRegistry::instance()
{
    static PatternRegistry reg;
    return reg;
}

std::unique_ptr<TrafficPattern>
makePattern(const std::string &name, int k)
{
    return PatternRegistry::instance().at(name)(k);
}

} // namespace pdr::traffic
