#include "traffic/pattern.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "common/logging.hh"
#include "common/math.hh"

namespace pdr::traffic {

UniformPattern::UniformPattern(int num_nodes) : numNodes_(num_nodes)
{
    pdr_assert(numNodes_ >= 2);
}

sim::NodeId
UniformPattern::pick(sim::NodeId src, Rng &rng) const
{
    // Uniform over the other N-1 nodes.
    auto d = sim::NodeId(rng.range(numNodes_ - 1));
    if (d >= src)
        d++;
    return d;
}

TransposePattern::TransposePattern(int num_nodes)
{
    side_ = int(std::lround(std::sqrt(double(num_nodes))));
    if (side_ * side_ != num_nodes) {
        throw std::invalid_argument(csprintf(
            "traffic.pattern=transpose needs a perfect-square node "
            "count, got %d nodes", num_nodes));
    }
}

sim::NodeId
TransposePattern::pick(sim::NodeId src, Rng &rng) const
{
    int x = int(src) % side_, y = int(src) / side_;
    auto d = sim::NodeId(x * side_ + y);
    if (d == src) {
        // Diagonal nodes map to themselves; fall back to uniform so
        // every node still offers load.
        return UniformPattern(side_ * side_).pick(src, rng);
    }
    return d;
}

namespace {

/** log2 of a power-of-two node count; throws for other counts. */
int
patternBits(const char *pattern, int num_nodes)
{
    if (!isPow2(unsigned(num_nodes))) {
        throw std::invalid_argument(csprintf(
            "traffic.pattern=%s needs a power-of-two node count, "
            "got %d nodes", pattern, num_nodes));
    }
    int b = 0;
    while ((1 << b) < num_nodes)
        b++;
    return b;
}

} // namespace

BitComplementPattern::BitComplementPattern(int num_nodes)
    : numNodes_(num_nodes)
{
    (void)patternBits("bitcomp", num_nodes);
}

sim::NodeId
BitComplementPattern::pick(sim::NodeId src, Rng &) const
{
    return sim::NodeId((~unsigned(src)) & unsigned(numNodes_ - 1));
}

TornadoPattern::TornadoPattern(const topo::Lattice &lat) : lat_(lat) {}

sim::NodeId
TornadoPattern::pick(sim::NodeId src, Rng &) const
{
    sim::NodeId r = lat_.routerOf(src);
    int k = lat_.radix(0);
    int shift = (k + 1) / 2 - 1;
    if (shift == 0)
        shift = 1;
    int x = lat_.coordOf(r, 0);
    sim::NodeId dr = r + ((x + shift) % k - x);
    return lat_.nodeAt(dr, lat_.localIndexOf(src));
}

NeighborPattern::NeighborPattern(const topo::Lattice &lat) : lat_(lat)
{
}

sim::NodeId
NeighborPattern::pick(sim::NodeId src, Rng &) const
{
    sim::NodeId r = lat_.routerOf(src);
    int k = lat_.radix(0);
    int x = lat_.coordOf(r, 0);
    sim::NodeId dr = r + ((x + 1) % k - x);
    return lat_.nodeAt(dr, lat_.localIndexOf(src));
}

BitReversePattern::BitReversePattern(int num_nodes)
    : uniform_(num_nodes), bits_(patternBits("bitrev", num_nodes))
{
}

sim::NodeId
BitReversePattern::pick(sim::NodeId src, Rng &rng) const
{
    unsigned s = unsigned(src), d = 0;
    for (int i = 0; i < bits_; i++)
        d |= ((s >> i) & 1u) << (bits_ - 1 - i);
    if (sim::NodeId(d) == src)
        return uniform_.pick(src, rng);
    return sim::NodeId(d);
}

ShufflePattern::ShufflePattern(int num_nodes)
    : uniform_(num_nodes), numNodes_(num_nodes),
      bits_(patternBits("shuffle", num_nodes))
{
}

sim::NodeId
ShufflePattern::pick(sim::NodeId src, Rng &rng) const
{
    unsigned s = unsigned(src);
    unsigned d = ((s << 1) | (s >> (bits_ - 1))) & unsigned(numNodes_ - 1);
    if (sim::NodeId(d) == src)
        return uniform_.pick(src, rng);
    return sim::NodeId(d);
}

HotspotPattern::HotspotPattern(int num_nodes, sim::NodeId hotspot,
                               double fraction)
    : uniform_(num_nodes), hotspot_(hotspot), fraction_(fraction)
{
    pdr_assert(fraction >= 0.0 && fraction <= 1.0);
}

sim::NodeId
HotspotPattern::pick(sim::NodeId src, Rng &rng) const
{
    if (src != hotspot_ && rng.bernoulli(fraction_))
        return hotspot_;
    return uniform_.pick(src, rng);
}

PermFilePattern::PermFilePattern(int num_nodes, const std::string &path)
    : uniform_(num_nodes)
{
    if (path.empty()) {
        throw std::invalid_argument(
            "traffic.pattern=permfile needs traffic.permfile=<path>");
    }
    std::ifstream in(path);
    if (!in) {
        throw std::invalid_argument(
            "traffic.permfile: cannot open '" + path + "'");
    }
    auto fail = [&](int lineno, const std::string &what) {
        throw std::invalid_argument(csprintf(
            "traffic.permfile %s: line %d: %s", path.c_str(), lineno,
            what.c_str()));
    };

    dest_.assign(std::size_t(num_nodes), sim::Invalid);
    std::vector<int> seen_at(std::size_t(num_nodes), 0);
    std::string line;
    int lineno = 0, entries = 0;
    while (std::getline(in, line)) {
        lineno++;
        // Strip comments and whitespace.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        auto b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        auto e = line.find_last_not_of(" \t\r");
        std::string tok = line.substr(b, e - b + 1);

        if (entries >= num_nodes) {
            fail(lineno, csprintf("more than %d entries", num_nodes));
        }
        char *end = nullptr;
        long v = std::strtol(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0') {
            fail(lineno, "expected a node index, got '" + tok + "'");
        }
        if (v < 0 || v >= num_nodes) {
            fail(lineno, csprintf(
                "destination %ld out of range [0, %d)", v, num_nodes));
        }
        if (seen_at[std::size_t(v)] != 0) {
            fail(lineno, csprintf(
                "destination %ld already used on line %d (the file "
                "must be a permutation)", v, seen_at[std::size_t(v)]));
        }
        seen_at[std::size_t(v)] = lineno;
        dest_[std::size_t(entries)] = sim::NodeId(v);
        entries++;
    }
    if (entries != num_nodes) {
        throw std::invalid_argument(csprintf(
            "traffic.permfile %s: expected %d entries (one per node), "
            "got %d", path.c_str(), num_nodes, entries));
    }
}

sim::NodeId
PermFilePattern::pick(sim::NodeId src, Rng &rng) const
{
    sim::NodeId d = dest_[std::size_t(src)];
    if (d == src) {
        // Fixed points fall back to uniform so the node offers load.
        return uniform_.pick(src, rng);
    }
    return d;
}

PatternRegistry::PatternRegistry()
    : FactoryRegistry<PatternFactory>("traffic pattern")
{
    add("uniform",
        [](const PatternEnv &env) {
            return std::make_unique<UniformPattern>(
                env.lattice.numNodes());
        },
        "uniform random over all other nodes (the paper's workload)");
    add("transpose",
        [](const PatternEnv &env) {
            return std::make_unique<TransposePattern>(
                env.lattice.numNodes());
        },
        "matrix transpose over the node square: (x, y) -> (y, x)");
    add("bitcomp",
        [](const PatternEnv &env) {
            return std::make_unique<BitComplementPattern>(
                env.lattice.numNodes());
        },
        "bit complement: node i -> ~i (power-of-two node counts)");
    add("tornado",
        [](const PatternEnv &env) {
            return std::make_unique<TornadoPattern>(env.lattice);
        },
        "tornado: half-way around the first dimension");
    add("neighbor",
        [](const PatternEnv &env) {
            return std::make_unique<NeighborPattern>(env.lattice);
        },
        "nearest neighbor: +1 router in the first dimension "
        "(wrapping)");
    add("bitrev",
        [](const PatternEnv &env) {
            return std::make_unique<BitReversePattern>(
                env.lattice.numNodes());
        },
        "bit reversal: node i -> reverse of i's bits (power-of-two "
        "node counts)");
    add("shuffle",
        [](const PatternEnv &env) {
            return std::make_unique<ShufflePattern>(
                env.lattice.numNodes());
        },
        "perfect shuffle: node i -> rotate-left of i's bits "
        "(power-of-two node counts)");
    add("hotspot",
        [](const PatternEnv &env) {
            const auto &lat = env.lattice;
            std::vector<int> center(std::size_t(lat.dims()));
            for (int d = 0; d < lat.dims(); d++)
                center[std::size_t(d)] = lat.radix(d) / 2;
            return std::make_unique<HotspotPattern>(
                lat.numNodes(), lat.nodeAt(lat.routerAt(center), 0),
                0.1);
        },
        "10% of traffic to the center node, the rest uniform");
    add("permfile",
        [](const PatternEnv &env) {
            return std::make_unique<PermFilePattern>(
                env.lattice.numNodes(), env.permfile);
        },
        "explicit permutation from traffic.permfile (one destination "
        "per line)");
}

PatternRegistry &
PatternRegistry::instance()
{
    // pdr-lint: allow(PDR-STA-MUT) registration-time singleton;
    // read-only during simulation, lookups are by name not order.
    static PatternRegistry reg;
    return reg;
}

std::unique_ptr<TrafficPattern>
makePattern(const std::string &name, const PatternEnv &env)
{
    return PatternRegistry::instance().at(name)(env);
}

std::unique_ptr<TrafficPattern>
makePattern(const std::string &name, int k)
{
    return makePattern(name, {topo::Lattice::mesh2D(k), ""});
}

} // namespace pdr::traffic
