/**
 * @file
 * Traffic patterns: mappings from source node to destination node.
 *
 * The paper evaluates uniformly distributed traffic (chosen because flow
 * control is relatively insensitive to the pattern, unlike routing).
 * The standard synthetic patterns of the interconnection-network
 * literature are provided as extensions for the example programs and
 * ablation benches.
 *
 * Patterns are defined over *terminal node* indices (0 .. numNodes-1 of
 * the lattice), so they respect concentration: on a cmesh the
 * permutation patterns permute all c*k*k nodes, and geometric patterns
 * (tornado, neighbor) shift the hosting router while keeping the local
 * index.  Factories receive a PatternEnv carrying the lattice (by
 * value -- patterns must not dangle when built from a temporary) plus
 * the permutation-file path for "permfile".
 */

#ifndef PDR_TRAFFIC_PATTERN_HH
#define PDR_TRAFFIC_PATTERN_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/registry.hh"
#include "common/rng.hh"
#include "sim/types.hh"
#include "topo/lattice.hh"

namespace pdr::traffic {

/** Everything a pattern factory may draw on. */
struct PatternEnv
{
    topo::Lattice lattice;
    /** Path of the permutation file (traffic.permfile). */
    std::string permfile;
};

/** Destination selector for generated packets. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /** Destination for a packet created at `src` (never src itself). */
    virtual sim::NodeId pick(sim::NodeId src, Rng &rng) const = 0;

    /** Pattern name for reports. */
    virtual std::string name() const = 0;
};

/** Uniform random over all other nodes. */
class UniformPattern : public TrafficPattern
{
  public:
    explicit UniformPattern(int num_nodes);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "uniform"; }

  private:
    int numNodes_;
};

/** Matrix transpose over the node index square: (x, y) -> (y, x).
 *  Needs a perfect-square node count (any k x k mesh qualifies; so do
 *  cmesh c=4 and kary3cube with even powers). */
class TransposePattern : public TrafficPattern
{
  public:
    explicit TransposePattern(int num_nodes);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "transpose"; }

  private:
    int side_;
};

/** Bit complement: node i -> ~i (over log2(N) bits). */
class BitComplementPattern : public TrafficPattern
{
  public:
    explicit BitComplementPattern(int num_nodes);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "bitcomp"; }

  private:
    int numNodes_;
};

/** Tornado: half-way around the first dimension (router-level; the
 *  local index rides along unchanged). */
class TornadoPattern : public TrafficPattern
{
  public:
    explicit TornadoPattern(const topo::Lattice &lat);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "tornado"; }

  private:
    topo::Lattice lat_;
};

/** Nearest neighbor: +1 router in the first dimension (wrapping). */
class NeighborPattern : public TrafficPattern
{
  public:
    explicit NeighborPattern(const topo::Lattice &lat);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "neighbor"; }

  private:
    topo::Lattice lat_;
};

/** Bit reversal: node i -> reverse of i's log2(N) bits.  Palindromic
 *  ids (which map to themselves) fall back to a uniform draw so every
 *  node still offers load, mirroring the transpose diagonal. */
class BitReversePattern : public TrafficPattern
{
  public:
    explicit BitReversePattern(int num_nodes);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "bitrev"; }

  private:
    UniformPattern uniform_;
    int bits_;
};

/** Perfect shuffle: node i -> rotate i's log2(N) bits left by one.
 *  The fixed points (all-zeros and all-ones) fall back to a uniform
 *  draw so every node still offers load. */
class ShufflePattern : public TrafficPattern
{
  public:
    explicit ShufflePattern(int num_nodes);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "shuffle"; }

  private:
    UniformPattern uniform_;
    int numNodes_;
    int bits_;
};

/**
 * Hotspot: with probability `fraction`, send to the hotspot node;
 * otherwise uniform random.
 */
class HotspotPattern : public TrafficPattern
{
  public:
    HotspotPattern(int num_nodes, sim::NodeId hotspot, double fraction);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "hotspot"; }

  private:
    UniformPattern uniform_;
    sim::NodeId hotspot_;
    double fraction_;
};

/**
 * Explicit permutation loaded from a file (traffic.pattern=permfile,
 * traffic.permfile=<path>): one destination node index per line, line
 * i naming the destination of node i.  Blank lines and #-comments are
 * skipped.  The file must define a permutation of 0..N-1; validation
 * errors name the offending line.  Fixed points (dest == src) fall
 * back to a uniform draw so every node still offers load.
 */
class PermFilePattern : public TrafficPattern
{
  public:
    PermFilePattern(int num_nodes, const std::string &path);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "permfile"; }

    const std::vector<sim::NodeId> &permutation() const
    {
        return dest_;
    }

  private:
    UniformPattern uniform_;
    std::vector<sim::NodeId> dest_;
};

/** Builds a pattern for a lattice (plus pattern-specific inputs). */
using PatternFactory =
    std::function<std::unique_ptr<TrafficPattern>(const PatternEnv &)>;

/**
 * String-keyed pattern registry.  The built-in patterns (uniform,
 * transpose, bitcomp, tornado, neighbor, hotspot, bitrev, shuffle,
 * permfile) are pre-registered; new scenarios add themselves in one
 * line:
 *
 *   PatternRegistry::instance().add("mine",
 *       [](const PatternEnv &env) {
 *           return std::make_unique<MyPattern>(env.lattice);
 *       },
 *       "what it does");
 *
 * and are then reachable from NetworkConfig::pattern, experiment
 * files, and the pdr CLI by name.
 */
class PatternRegistry : public FactoryRegistry<PatternFactory>
{
  public:
    static PatternRegistry &instance();

  private:
    PatternRegistry();
};

/** Build the registered pattern `name`; throws on unknown names. */
std::unique_ptr<TrafficPattern> makePattern(const std::string &name,
                                            const PatternEnv &env);

/** Convenience for tests/examples: a k x k mesh environment. */
std::unique_ptr<TrafficPattern> makePattern(const std::string &name,
                                            int k);

} // namespace pdr::traffic

#endif // PDR_TRAFFIC_PATTERN_HH
