/**
 * @file
 * Traffic patterns: mappings from source node to destination node.
 *
 * The paper evaluates uniformly distributed traffic (chosen because flow
 * control is relatively insensitive to the pattern, unlike routing).
 * The standard synthetic patterns of the interconnection-network
 * literature are provided as extensions for the example programs and
 * ablation benches.
 */

#ifndef PDR_TRAFFIC_PATTERN_HH
#define PDR_TRAFFIC_PATTERN_HH

#include <functional>
#include <memory>
#include <string>

#include "common/registry.hh"
#include "common/rng.hh"
#include "sim/types.hh"

namespace pdr::traffic {

/** Destination selector for generated packets. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /** Destination for a packet created at `src` (never src itself). */
    virtual sim::NodeId pick(sim::NodeId src, Rng &rng) const = 0;

    /** Pattern name for reports. */
    virtual std::string name() const = 0;
};

/** Uniform random over all other nodes. */
class UniformPattern : public TrafficPattern
{
  public:
    explicit UniformPattern(int k);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "uniform"; }

  private:
    int numNodes_;
};

/** Matrix transpose: (x, y) -> (y, x). */
class TransposePattern : public TrafficPattern
{
  public:
    explicit TransposePattern(int k);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "transpose"; }

  private:
    int k_;
};

/** Bit complement: node i -> ~i (over log2(N) bits). */
class BitComplementPattern : public TrafficPattern
{
  public:
    explicit BitComplementPattern(int k);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "bitcomp"; }

  private:
    int numNodes_;
};

/** Tornado: half-way around each dimension. */
class TornadoPattern : public TrafficPattern
{
  public:
    explicit TornadoPattern(int k);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "tornado"; }

  private:
    int k_;
};

/** Nearest neighbor: +1 in x (wrapping). */
class NeighborPattern : public TrafficPattern
{
  public:
    explicit NeighborPattern(int k);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "neighbor"; }

  private:
    int k_;
};

/** Bit reversal: node i -> reverse of i's log2(N) bits.  Palindromic
 *  ids (which map to themselves) fall back to a uniform draw so every
 *  node still offers load, mirroring the transpose diagonal. */
class BitReversePattern : public TrafficPattern
{
  public:
    explicit BitReversePattern(int k);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "bitrev"; }

  private:
    UniformPattern uniform_;
    int bits_;
};

/** Perfect shuffle: node i -> rotate i's log2(N) bits left by one.
 *  The fixed points (all-zeros and all-ones) fall back to a uniform
 *  draw so every node still offers load. */
class ShufflePattern : public TrafficPattern
{
  public:
    explicit ShufflePattern(int k);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "shuffle"; }

  private:
    UniformPattern uniform_;
    int numNodes_;
    int bits_;
};

/**
 * Hotspot: with probability `fraction`, send to the hotspot node;
 * otherwise uniform random.
 */
class HotspotPattern : public TrafficPattern
{
  public:
    HotspotPattern(int k, sim::NodeId hotspot, double fraction);
    sim::NodeId pick(sim::NodeId src, Rng &rng) const override;
    std::string name() const override { return "hotspot"; }

  private:
    UniformPattern uniform_;
    sim::NodeId hotspot_;
    double fraction_;
};

/** Builds a pattern for a k x k network. */
using PatternFactory =
    std::function<std::unique_ptr<TrafficPattern>(int k)>;

/**
 * String-keyed pattern registry.  The built-in patterns (uniform,
 * transpose, bitcomp, tornado, neighbor, hotspot) are pre-registered;
 * new scenarios add themselves in one line:
 *
 *   PatternRegistry::instance().add("mine",
 *       [](int k) { return std::make_unique<MyPattern>(k); },
 *       "what it does");
 *
 * and are then reachable from NetworkConfig::pattern, experiment
 * files, and the pdr CLI by name.
 */
class PatternRegistry : public FactoryRegistry<PatternFactory>
{
  public:
    static PatternRegistry &instance();

  private:
    PatternRegistry();
};

/** Build the registered pattern `name`; throws on unknown names. */
std::unique_ptr<TrafficPattern> makePattern(const std::string &name,
                                            int k);

} // namespace pdr::traffic

#endif // PDR_TRAFFIC_PATTERN_HH
