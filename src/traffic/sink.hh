/**
 * @file
 * Ejection sink: absorbs flits at the destination node ("immediate
 * ejection"), validates packet integrity, and records latency and
 * throughput statistics.  Flit pool slots are released here, at the
 * end of each flit's life.
 */

#ifndef PDR_TRAFFIC_SINK_HH
#define PDR_TRAFFIC_SINK_HH

#include <unordered_map>
#include <vector>

#include "sim/channel.hh"
#include "sim/flit.hh"
#include "sim/flit_pool.hh"
#include "stats/latency.hh"
#include "traffic/measure.hh"

namespace pdr::traffic {

/** One completed packet, as observed at its ejection port. */
struct Delivery
{
    sim::PacketId packet;
    sim::NodeId dest;
    sim::Cycle at;          //!< Cycle the tail flit was ejected.
    sim::Cycle latency;     //!< Creation-to-ejection latency.
};

/** Per-node ejection sink. */
class Sink
{
  public:
    using FlitChannel = sim::Channel<sim::FlitRef>;

    Sink(sim::NodeId node, int packet_length, MeasureController &ctrl,
         sim::FlitPool &pool, FlitChannel *from_router,
         stats::LatencyStats &latency);

    /** Drain arrived flits. */
    void tick(sim::Cycle now);

    /**
     * Earliest cycle at which an in-flight flit matures on the
     * ejection channel; CycleNever when none (a sink holds no state
     * that evolves without input).
     */
    sim::Cycle nextWake() const { return in_->nextReady(); }

    /**
     * Append every completed packet to `trace` (cycle-accuracy
     * harnesses compare these across Network variants).  nullptr
     * disables tracing (the default; zero cost).
     */
    void recordDeliveries(std::vector<Delivery> *trace)
    {
        trace_ = trace;
    }

    /** FlitPool freelist shard this sink frees into (set by the
     *  partitioned stepper to its owning worker; 0 = serial). */
    void setPoolShard(int shard) { poolShard_ = shard; }

    /** Flits received after the warm-up point (for throughput). */
    std::uint64_t measuredFlits() const { return measuredFlits_; }
    /** All flits ever received. */
    std::uint64_t totalFlits() const { return totalFlits_; }
    /** Complete packets received. */
    std::uint64_t packets() const { return packets_; }

  private:
    sim::NodeId node_;
    int packetLength_;
    MeasureController &ctrl_;
    sim::FlitPool &pool_;
    FlitChannel *in_;
    stats::LatencyStats &latency_;
    std::vector<Delivery> *trace_ = nullptr;
    int poolShard_ = 0;                 //!< FlitPool freelist shard.

    /** Next expected sequence number per in-flight packet. */
    // pdr-lint: allow(PDR-ORD-UNORD) keyed erase/lookup only, never
    // iterated, so bucket order cannot reach any result.
    std::unordered_map<sim::PacketId, int> expectSeq_;

    std::uint64_t measuredFlits_ = 0;
    std::uint64_t totalFlits_ = 0;
    std::uint64_t packets_ = 0;
};

} // namespace pdr::traffic

#endif // PDR_TRAFFIC_SINK_HH
