/**
 * @file
 * Ejection sink: absorbs flits at the destination node ("immediate
 * ejection"), validates packet integrity, and records latency and
 * throughput statistics.
 */

#ifndef PDR_TRAFFIC_SINK_HH
#define PDR_TRAFFIC_SINK_HH

#include <unordered_map>

#include "sim/channel.hh"
#include "sim/flit.hh"
#include "stats/latency.hh"
#include "traffic/measure.hh"

namespace pdr::traffic {

/** Per-node ejection sink. */
class Sink
{
  public:
    using FlitChannel = sim::Channel<sim::Flit>;

    Sink(sim::NodeId node, int packet_length, MeasureController &ctrl,
         FlitChannel *from_router, stats::LatencyStats &latency);

    /** Drain arrived flits. */
    void tick(sim::Cycle now);

    /** Flits received after the warm-up point (for throughput). */
    std::uint64_t measuredFlits() const { return measuredFlits_; }
    /** All flits ever received. */
    std::uint64_t totalFlits() const { return totalFlits_; }
    /** Complete packets received. */
    std::uint64_t packets() const { return packets_; }

  private:
    sim::NodeId node_;
    int packetLength_;
    MeasureController &ctrl_;
    FlitChannel *in_;
    stats::LatencyStats &latency_;

    /** Next expected sequence number per in-flight packet. */
    std::unordered_map<sim::PacketId, int> expectSeq_;

    std::uint64_t measuredFlits_ = 0;
    std::uint64_t totalFlits_ = 0;
    std::uint64_t packets_ = 0;
};

} // namespace pdr::traffic

#endif // PDR_TRAFFIC_SINK_HH
