/**
 * @file
 * Measurement protocol of the paper's Section 5.
 *
 * Each simulation runs a warm-up phase (10,000 cycles in the paper);
 * thereafter the next `samplePackets` injected packets (100,000 in the
 * paper) form the sample space and the simulation continues until all of
 * them have been received.  Sources keep injecting while the sample
 * drains so the network stays loaded.  Latency spans packet creation to
 * last-flit ejection, including source queueing.
 */

#ifndef PDR_TRAFFIC_MEASURE_HH
#define PDR_TRAFFIC_MEASURE_HH

#include "sim/types.hh"

namespace pdr::traffic {

/** Shared controller tracking the sample space across sources/sinks. */
class MeasureController
{
  public:
    MeasureController(sim::Cycle warmup, std::uint64_t sample_packets);

    /**
     * A source is creating a packet at `now`; returns true if the packet
     * belongs to the sample space (tagged for measurement).
     */
    bool tryTag(sim::Cycle now);

    /** A tagged packet was fully received. */
    void taggedReceived() { received_++; }

    /** All tagged packets created and received. */
    bool done() const
    {
        return tagged_ == sample_ && received_ == tagged_;
    }

    sim::Cycle warmup() const { return warmup_; }
    std::uint64_t tagged() const { return tagged_; }
    std::uint64_t received() const { return received_; }
    std::uint64_t sampleSize() const { return sample_; }

  private:
    sim::Cycle warmup_;
    std::uint64_t sample_;
    std::uint64_t tagged_ = 0;
    std::uint64_t received_ = 0;
};

} // namespace pdr::traffic

#endif // PDR_TRAFFIC_MEASURE_HH
