/**
 * @file
 * Measurement protocol of the paper's Section 5.
 *
 * Each simulation runs a warm-up phase (10,000 cycles in the paper);
 * thereafter the next `samplePackets` injected packets (100,000 in the
 * paper) form the sample space and the simulation continues until all of
 * them have been received.  Sources keep injecting while the sample
 * drains so the network stays loaded.  Latency spans packet creation to
 * last-flit ejection, including source queueing.
 *
 * The controller is the one piece of state every source and sink of a
 * network shares, so partitioned stepping (src/par/) needs its help to
 * stay bit-identical with the serial schedule.  The counters are
 * relaxed atomics (pure commutative sums), and tagMode() classifies
 * each cycle before the parallel source phase:
 *
 *   None    - no tryTag() call can mutate state this cycle (still in
 *             warm-up, or the sample space is already full): sources
 *             may tick concurrently.
 *   All     - the remaining quota covers every possible creation this
 *             cycle, so every tryTag() returns true whatever the call
 *             order: sources may tick concurrently.
 *   Ordered - the quota runs out mid-cycle and the serial tick order
 *             (node index) decides which packets are tagged: the
 *             stepper serializes the source phase for this cycle.
 */

#ifndef PDR_TRAFFIC_MEASURE_HH
#define PDR_TRAFFIC_MEASURE_HH

#include <atomic>

#include "sim/types.hh"

namespace pdr::traffic {

/** Shared controller tracking the sample space across sources/sinks. */
class MeasureController
{
  public:
    MeasureController(sim::Cycle warmup, std::uint64_t sample_packets);

    /**
     * A source is creating a packet at `now`; returns true if the packet
     * belongs to the sample space (tagged for measurement).
     */
    bool tryTag(sim::Cycle now);

    /** A tagged packet was fully received. */
    void
    taggedReceived()
    {
        received_.fetch_add(1, std::memory_order_relaxed);
    }

    /** All tagged packets created and received. */
    bool
    done() const
    {
        return tagged() == sample_ && received() == tagged();
    }

    /** Concurrency class of the source phase at cycle `now`, given at
     *  most `max_tags` tryTag() calls can happen this cycle. */
    enum class TagMode { None, All, Ordered };
    TagMode
    tagMode(sim::Cycle now, std::uint64_t max_tags) const
    {
        std::uint64_t t = tagged();
        if (now < warmup_ || t >= sample_)
            return TagMode::None;
        if (sample_ - t >= max_tags)
            return TagMode::All;
        return TagMode::Ordered;
    }

    /**
     * The sample space is fully tagged: every later tryTag() returns
     * false without mutating anything.  Fullness is monotone, so a
     * true result stays true forever -- a source that reads full may
     * defer its generation draws (traffic::Source's lazy catch-up)
     * without affecting tagging order.
     */
    bool quotaFull() const { return tagged() >= sample_; }

    sim::Cycle warmup() const { return warmup_; }
    std::uint64_t
    tagged() const
    {
        return tagged_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    received() const
    {
        return received_.load(std::memory_order_relaxed);
    }
    std::uint64_t sampleSize() const { return sample_; }

  private:
    sim::Cycle warmup_;
    std::uint64_t sample_;
    std::atomic<std::uint64_t> tagged_{0};
    std::atomic<std::uint64_t> received_{0};
};

} // namespace pdr::traffic

#endif // PDR_TRAFFIC_MEASURE_HH
