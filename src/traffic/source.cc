#include "traffic/source.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pdr::traffic {

Source::Source(sim::NodeId node, const SourceConfig &cfg,
               const TrafficPattern &pattern, MeasureController &ctrl,
               sim::FlitPool &pool, FlitChannel *to_router,
               CreditChannel *credits_back)
    : node_(node), cfg_(cfg), pattern_(pattern), ctrl_(ctrl),
      pool_(pool), out_(to_router), creditIn_(credits_back),
      rng_(cfg.seed ^ (0xabcd1234ULL * (node + 1))),
      nextId_((sim::PacketId(node) << 40) + 1)
{
    pdr_assert(cfg.numVcs >= 1);
    pdr_assert(cfg.packetLength >= 1);
    pdr_assert(cfg.packetRate >= 0.0 && cfg.packetRate <= 1.0);
    pdr_assert((cfg.burstOn > 0.0) == (cfg.burstOff > 0.0));
    if (cfg.burstOn > 0.0) {
        pdr_assert(cfg.burstOn >= 1.0 && cfg.burstOff >= 1.0);
        // ON-state rate scaled so the long-run mean stays packetRate
        // (duty cycle burstOn / (burstOn + burstOff)), capped at one
        // packet per cycle.
        onRate_ = std::min(1.0, cfg.packetRate *
                                    (cfg.burstOn + cfg.burstOff) /
                                    cfg.burstOn);
    } else {
        onRate_ = cfg.packetRate;
    }
    streams_.resize(cfg.numVcs);
    credits_.assign(cfg.numVcs, cfg.bufDepth);
}

int
Source::active() const
{
    int n = 0;
    for (const auto &s : streams_)
        n += s.busy ? 1 : 0;
    return n;
}

void
Source::tick(sim::Cycle now)
{
    applyCredits(now);
    generate(now);
    inject(now);
}

sim::Cycle
Source::nextWake(sim::Cycle now) const
{
    // A live Bernoulli process draws the RNG every cycle; sleeping
    // would desynchronize the stream from the tick-everything
    // schedule.  Backlogged or streaming sources also work per cycle.
    if (cfg_.packetRate > 0.0 || !queue_.empty() || active() != 0 ||
        !pendingCredits_.empty()) {
        return now + 1;
    }
    sim::Cycle t = creditIn_ ? creditIn_->nextReady() : sim::CycleNever;
    return std::max(t, now + 1);
}

void
Source::applyCredits(sim::Cycle now)
{
    // Credits become usable the cycle after arrival (the source has a
    // single-stage credit pipeline).
    while (!pendingCredits_.empty() &&
           pendingCredits_.front().first <= now) {
        credits_[pendingCredits_.front().second]++;
        pdr_assert(credits_[pendingCredits_.front().second] <=
                   cfg_.bufDepth);
        pendingCredits_.pop_front();
    }
    if (creditIn_) {
        while (auto c = creditIn_->pop(now)) {
            pdr_assert(c->vc >= 0 && c->vc < cfg_.numVcs);
            pendingCredits_.push_back({now + 1, c->vc});
        }
    }
}

void
Source::generate(sim::Cycle now)
{
    if (cfg_.packetRate <= 0.0)
        return;
    if (cfg_.burstOn > 0.0) {
        // Two-state MMPP: one transition draw per cycle (geometric
        // dwell times), then a Bernoulli arrival draw only while ON.
        // The source ticks every cycle when packetRate > 0, so this
        // stream is identical under the skipping and tick-everything
        // schedules.
        double leave =
            1.0 / (burstState_ ? cfg_.burstOn : cfg_.burstOff);
        if (rng_.bernoulli(leave))
            burstState_ = !burstState_;
        if (!burstState_ || !rng_.bernoulli(onRate_))
            return;
    } else if (!rng_.bernoulli(cfg_.packetRate)) {
        return;
    }
    PendingPacket p;
    p.id = nextId_++;
    p.dest = pattern_.pick(node_, rng_);
    pdr_assert(p.dest != node_);
    if (cfg_.routing) {
        // Deterministic routings draw nothing here, keeping the RNG
        // stream identical to the historical behavior.
        p.routing = cfg_.routing->initPacket(node_, p.dest, rng_);
    }
    p.ctime = now;
    p.measured = ctrl_.tryTag(now);
    queue_.push_back(p);
    created_++;
}

void
Source::inject(sim::Cycle now)
{
    // Assign queued packets to idle injection VCs (round-robin).
    for (int k = 0; k < cfg_.numVcs && !queue_.empty(); k++) {
        int vc = (rrAssign_ + k) % cfg_.numVcs;
        if (!streams_[vc].busy) {
            streams_[vc].busy = true;
            streams_[vc].pkt = queue_.front();
            streams_[vc].nextSeq = 0;
            queue_.pop_front();
            rrAssign_ = (vc + 1) % cfg_.numVcs;
        }
    }

    // Send at most one flit this cycle, round-robin over the active
    // streams that have a downstream buffer available.
    for (int k = 0; k < cfg_.numVcs; k++) {
        int vc = (rrVc_ + k) % cfg_.numVcs;
        auto &s = streams_[vc];
        if (!s.busy || credits_[vc] <= 0)
            continue;

        sim::FlitRef ref = pool_.alloc(poolShard_);
        sim::Flit &f = pool_.get(ref);
        f = sim::Flit{};
        f.packet = s.pkt.id;
        int len = cfg_.packetLength;
        if (len == 1)
            f.type = sim::FlitType::HeadTail;
        else if (s.nextSeq == 0)
            f.type = sim::FlitType::Head;
        else if (s.nextSeq == len - 1)
            f.type = sim::FlitType::Tail;
        else
            f.type = sim::FlitType::Body;
        f.vc = vc;
        f.vclass = s.pkt.routing.vclass;
        f.src = node_;
        f.dest = s.pkt.dest;
        f.inter = s.pkt.routing.inter;
        f.seq = std::uint8_t(s.nextSeq);
        f.ctime = s.pkt.ctime;
        f.measured = s.pkt.measured;

        out_->push(ref, now);
        credits_[vc]--;
        flitsSent_++;
        s.nextSeq++;
        if (s.nextSeq == len)
            s.busy = false;
        rrVc_ = (vc + 1) % cfg_.numVcs;
        break;
    }
}

} // namespace pdr::traffic
