#include "traffic/source.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pdr::traffic {

Source::Source(sim::NodeId node, const SourceConfig &cfg,
               const TrafficPattern &pattern, MeasureController &ctrl,
               sim::FlitPool &pool, FlitChannel *to_router,
               CreditChannel *credits_back)
    : node_(node), cfg_(cfg), pattern_(pattern), ctrl_(ctrl),
      pool_(pool), out_(to_router), creditIn_(credits_back),
      rng_(cfg.seed ^ (0xabcd1234ULL * (node + 1))),
      nextId_((sim::PacketId(node) << 40) + 1)
{
    pdr_assert(cfg.numVcs >= 1);
    pdr_assert(cfg.packetLength >= 1);
    pdr_assert(cfg.packetRate >= 0.0 && cfg.packetRate <= 1.0);
    pdr_assert((cfg.burstOn > 0.0) == (cfg.burstOff > 0.0));
    if (cfg.burstOn > 0.0) {
        pdr_assert(cfg.burstOn >= 1.0 && cfg.burstOff >= 1.0);
        // ON-state rate scaled so the long-run mean stays packetRate
        // (duty cycle burstOn / (burstOn + burstOff)), capped at one
        // packet per cycle.
        onRate_ = std::min(1.0, cfg.packetRate *
                                    (cfg.burstOn + cfg.burstOff) /
                                    cfg.burstOn);
    } else {
        onRate_ = cfg.packetRate;
    }
    streams_.resize(cfg.numVcs);
    credits_.assign(cfg.numVcs, cfg.bufDepth);
}

int
Source::active() const
{
    int n = 0;
    for (const auto &s : streams_)
        n += s.busy ? 1 : 0;
    return n;
}

void
Source::tick(sim::Cycle now)
{
    applyCredits(now);
    catchUp(now);
    inject(now);
}

void
Source::catchUp(sim::Cycle now)
{
    // Generation order across cycles matters (each cycle's draws come
    // off one RNG stream in sequence); order against credit handling
    // does not (generate() never reads credits), so skipped cycles
    // replay exactly.
    if (cfg_.packetRate <= 0.0) {
        nextGen_ = now + 1;     // A zero-rate cycle draws nothing.
        return;
    }
    while (nextGen_ <= now) {
        generate(nextGen_);
        nextGen_++;
    }
}

sim::Cycle
Source::nextWake(sim::Cycle now) const
{
    if (cfg_.packetRate > 0.0) {
        // Tagging-sensitive span: each creation calls tryTag(), which
        // consumes the shared sample quota in serial node order, so
        // draws cannot be deferred -- tick every cycle until the
        // quota fills (fullness is sticky, so a full reading here
        // stays full for every later cycle).
        if (now + 1 >= ctrl_.warmup() && !ctrl_.quotaFull())
            return now + 1;
    }

    // Outside that span draws replay lazily, so a tick is needed only
    // when injection could happen: some VC has a credit and either
    // holds/awaits work now or could lazily create it (packetRate).
    if (cfg_.packetRate > 0.0 || !queue_.empty() || active() != 0) {
        for (int vc = 0; vc < cfg_.numVcs; vc++)
            if (credits_[vc] > 0)
                return now + 1;
    }

    // No usable credit: sleep until one matures (or until the warmup
    // boundary, where the tagging-sensitive span begins).
    sim::Cycle t = sim::CycleNever;
    if (!pendingCredits_.empty())
        t = pendingCredits_.front().first;
    if (creditIn_)
        t = std::min(t, creditIn_->nextReady());
    if (cfg_.packetRate > 0.0 && now + 1 < ctrl_.warmup())
        t = std::min(t, ctrl_.warmup());
    return std::max(t, now + 1);
}

void
Source::applyCredits(sim::Cycle now)
{
    // Credits become usable the cycle after arrival (the source has a
    // single-stage credit pipeline).
    while (!pendingCredits_.empty() &&
           pendingCredits_.front().first <= now) {
        credits_[pendingCredits_.front().second]++;
        pdr_assert(credits_[pendingCredits_.front().second] <=
                   cfg_.bufDepth);
        pendingCredits_.pop_front();
    }
    if (creditIn_) {
        while (auto c = creditIn_->pop(now)) {
            pdr_assert(c->vc >= 0 && c->vc < cfg_.numVcs);
            pendingCredits_.push_back({now + 1, c->vc});
        }
    }
}

void
Source::generate(sim::Cycle now)
{
    if (cfg_.packetRate <= 0.0)
        return;
    if (cfg_.burstOn > 0.0) {
        // Two-state MMPP: one transition draw per cycle (geometric
        // dwell times), then a Bernoulli arrival draw only while ON.
        // Every cycle is drawn exactly once -- immediately while the
        // source is awake, replayed by catchUp() after a sleep -- so
        // this stream is identical under the skipping and
        // tick-everything schedules.
        double leave =
            1.0 / (burstState_ ? cfg_.burstOn : cfg_.burstOff);
        if (rng_.bernoulli(leave))
            burstState_ = !burstState_;
        if (!burstState_ || !rng_.bernoulli(onRate_))
            return;
    } else if (!rng_.bernoulli(cfg_.packetRate)) {
        return;
    }
    PendingPacket p;
    p.id = nextId_++;
    p.dest = pattern_.pick(node_, rng_);
    pdr_assert(p.dest != node_);
    if (cfg_.routing) {
        // Deterministic routings draw nothing here, keeping the RNG
        // stream identical to the historical behavior.
        p.routing = cfg_.routing->initPacket(node_, p.dest, rng_);
    }
    p.ctime = now;
    p.measured = ctrl_.tryTag(now);
    queue_.push_back(p);
    created_++;
}

void
Source::inject(sim::Cycle now)
{
    // Assign queued packets to idle injection VCs (round-robin).
    for (int k = 0; k < cfg_.numVcs && !queue_.empty(); k++) {
        int vc = (rrAssign_ + k) % cfg_.numVcs;
        if (!streams_[vc].busy) {
            streams_[vc].busy = true;
            streams_[vc].pkt = queue_.front();
            streams_[vc].nextSeq = 0;
            queue_.pop_front();
            rrAssign_ = (vc + 1) % cfg_.numVcs;
        }
    }

    // Send at most one flit this cycle, round-robin over the active
    // streams that have a downstream buffer available.
    for (int k = 0; k < cfg_.numVcs; k++) {
        int vc = (rrVc_ + k) % cfg_.numVcs;
        auto &s = streams_[vc];
        if (!s.busy || credits_[vc] <= 0)
            continue;

        sim::FlitRef ref = pool_.alloc(poolShard_);
        sim::Flit &f = pool_.get(ref);
        f = sim::Flit{};
        f.packet = s.pkt.id;
        int len = cfg_.packetLength;
        if (len == 1)
            f.type = sim::FlitType::HeadTail;
        else if (s.nextSeq == 0)
            f.type = sim::FlitType::Head;
        else if (s.nextSeq == len - 1)
            f.type = sim::FlitType::Tail;
        else
            f.type = sim::FlitType::Body;
        f.vc = vc;
        f.vclass = s.pkt.routing.vclass;
        f.src = node_;
        f.dest = s.pkt.dest;
        f.inter = s.pkt.routing.inter;
        f.seq = std::uint8_t(s.nextSeq);
        f.ctime = s.pkt.ctime;
        f.measured = s.pkt.measured;

        out_->push(ref, now);
        credits_[vc]--;
        flitsSent_++;
        s.nextSeq++;
        if (s.nextSeq == len)
            s.busy = false;
        rrVc_ = (vc + 1) % cfg_.numVcs;
        break;
    }
}

} // namespace pdr::traffic
