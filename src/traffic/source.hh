/**
 * @file
 * Constant-rate packet source (Section 5 of the paper).
 *
 * Each node has a source that creates fixed-length packets by a
 * Bernoulli process at the configured rate and queues them (the source
 * queue is unbounded; source queueing time counts toward latency).  The
 * source streams packets into the router's injection port flit by flit,
 * respecting credit-based flow control exactly like an upstream router:
 * it tracks per-VC credits for the injection input buffers and may
 * stream up to `numVcs` packets concurrently (one per VC), sending at
 * most one flit per cycle over the injection channel.
 *
 * Bursty arrivals: an optional two-state MMPP (Markov-modulated
 * Poisson/Bernoulli process) layers on top of any destination pattern.
 * The source alternates between an ON state -- Bernoulli arrivals at a
 * boosted rate -- and a silent OFF state, with geometrically
 * distributed dwell times of mean `burstOn` / `burstOff` cycles.  The
 * ON rate is scaled so the long-run mean offered load still equals
 * `packetRate` (capped at one packet per cycle), so latency-throughput
 * curves stay comparable across burstiness settings.  With burstOn ==
 * burstOff == 0 (the default) the arrival process is the paper's plain
 * Bernoulli draw, bit-identical to the historical RNG stream.
 */

#ifndef PDR_TRAFFIC_SOURCE_HH
#define PDR_TRAFFIC_SOURCE_HH

#include <deque>
#include <vector>

#include "common/rng.hh"
#include "router/routing.hh"
#include "sim/channel.hh"
#include "sim/flit.hh"
#include "sim/flit_pool.hh"
#include "traffic/measure.hh"
#include "traffic/pattern.hh"

namespace pdr::traffic {

/** Source configuration. */
struct SourceConfig
{
    int numVcs = 1;
    int bufDepth = 8;          //!< Injection input-buffer depth per VC.
    int packetLength = 5;      //!< Flits per packet.
    double packetRate = 0.0;   //!< Packets per cycle (Bernoulli).
    /** MMPP burst (ON-state) mean dwell in cycles; 0 disables the
     *  modulation (plain Bernoulli arrivals). */
    double burstOn = 0.0;
    /** MMPP gap (OFF-state) mean dwell in cycles. */
    double burstOff = 0.0;
    std::uint64_t seed = 1;
    /** Injection-time per-packet routing state (oblivious routings
     *  draw their order bit / intermediate here); nullptr for none. */
    const router::RoutingFunction *routing = nullptr;
};

/** Per-node constant-rate source. */
class Source
{
  public:
    using FlitChannel = sim::Channel<sim::FlitRef>;
    using CreditChannel = sim::Channel<sim::Credit>;

    Source(sim::NodeId node, const SourceConfig &cfg,
           const TrafficPattern &pattern, MeasureController &ctrl,
           sim::FlitPool &pool, FlitChannel *to_router,
           CreditChannel *credits_back);

    /** Advance one cycle: collect credits, generate, inject. */
    void tick(sim::Cycle now);

    /**
     * Replay the per-cycle arrival draws for every cycle in
     * [nextGen, now] that a sleeping source skipped.  The RNG is
     * private, draws are a fixed function of the cycle index, and the
     * only cross-source call -- MeasureController::tryTag -- is
     * mutation-free over any span the source is allowed to sleep
     * through (pre-warmup or quota-full), so replaying late yields the
     * exact queue, stream and RNG state of per-cycle ticking.  tick()
     * calls this; Network::quiescent() also calls it so backlog()
     * reads match the tick-everything schedule mid-sleep.
     */
    void catchUp(sim::Cycle now);

    /**
     * Earliest cycle at which this source next needs a tick.  During a
     * tagging-sensitive span (post-warmup until the sample quota
     * fills) a nonzero-rate source ticks every cycle: packet creation
     * consumes the shared sample quota in serial node order.  Outside
     * that span the Bernoulli draws are replayed lazily (catchUp), so
     * the source sleeps whenever injection is impossible -- no credits
     * on any VC -- until a credit matures or the warmup boundary
     * arrives.  Idle zero-rate sources sleep until a credit arrives
     * (CycleNever when none is in flight).
     */
    sim::Cycle nextWake(sim::Cycle now) const;

    /** Packets created so far. */
    std::uint64_t created() const { return created_; }
    /** Flits sent so far. */
    std::uint64_t flitsSent() const { return flitsSent_; }
    /** Packets waiting or streaming. */
    std::size_t backlog() const { return queue_.size() + active(); }
    /** Streams currently active. */
    int active() const;

    /** FlitPool freelist shard this source allocates from (set by the
     *  partitioned stepper to its owning worker; 0 = serial). */
    void setPoolShard(int shard) { poolShard_ = shard; }

    // ----- invariant-auditor accessors (sim::Auditor; read-only) -----

    /** Usable injection credits for VC `vc`. */
    int auditCredits(int vc) const { return credits_[std::size_t(vc)]; }
    /** Arrived credits for VC `vc` still in the one-cycle credit
     *  pipeline (not yet usable). */
    int
    auditPendingCredits(int vc) const
    {
        int n = 0;
        for (const auto &pc : pendingCredits_)
            if (pc.second == vc)
                n++;
        return n;
    }

  private:
    /** A queued packet awaiting injection. */
    struct PendingPacket
    {
        sim::PacketId id;
        sim::NodeId dest;
        sim::Cycle ctime;
        bool measured;
        /** Routing state from RoutingFunction::initPacket. */
        router::PacketInit routing;
    };

    /** A packet currently streaming on an injection VC. */
    struct Stream
    {
        bool busy = false;
        PendingPacket pkt;
        int nextSeq = 0;
    };

    void applyCredits(sim::Cycle now);
    void generate(sim::Cycle now);
    void inject(sim::Cycle now);

    /** First cycle whose arrival draw has not run yet (lazy
     *  generation; see catchUp). */
    sim::Cycle nextGen_ = 0;

    sim::NodeId node_;
    SourceConfig cfg_;
    const TrafficPattern &pattern_;
    MeasureController &ctrl_;
    sim::FlitPool &pool_;
    FlitChannel *out_;
    CreditChannel *creditIn_;

    Rng rng_;
    double onRate_ = 0.0;              //!< Bernoulli rate in ON state.
    bool burstState_ = true;           //!< MMPP state (true = ON).
    int poolShard_ = 0;                //!< FlitPool freelist shard.
    std::deque<PendingPacket> queue_;
    std::vector<Stream> streams_;      //!< One per injection VC.
    std::vector<int> credits_;         //!< Per injection VC.
    std::deque<std::pair<sim::Cycle, int>> pendingCredits_;
    int rrVc_ = 0;                     //!< Round-robin send pointer.
    int rrAssign_ = 0;                 //!< Round-robin VC assignment.

    std::uint64_t created_ = 0;
    std::uint64_t flitsSent_ = 0;
    sim::PacketId nextId_;
};

} // namespace pdr::traffic

#endif // PDR_TRAFFIC_SOURCE_HH
