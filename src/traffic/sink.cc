#include "traffic/sink.hh"

#include "common/logging.hh"

namespace pdr::traffic {

Sink::Sink(sim::NodeId node, int packet_length, MeasureController &ctrl,
           FlitChannel *from_router, stats::LatencyStats &latency)
    : node_(node), packetLength_(packet_length), ctrl_(ctrl),
      in_(from_router), latency_(latency)
{
}

void
Sink::tick(sim::Cycle now)
{
    while (auto f = in_->pop(now)) {
        pdr_assert(f->dest == node_);
        totalFlits_++;
        if (now >= ctrl_.warmup())
            measuredFlits_++;

        // Flits of a packet must arrive in order on one VC.
        int expected = 0;
        auto it = expectSeq_.find(f->packet);
        if (it != expectSeq_.end())
            expected = it->second;
        pdr_assert(int(f->seq) == expected);

        if (sim::isTail(f->type)) {
            pdr_assert(expected == packetLength_ - 1);
            if (it != expectSeq_.end())
                expectSeq_.erase(it);
            packets_++;
            sim::Cycle lat = now - f->ctime;
            latency_.record(double(lat), f->measured);
            if (f->measured)
                ctrl_.taggedReceived();
        } else {
            expectSeq_[f->packet] = expected + 1;
        }
    }
}

} // namespace pdr::traffic
