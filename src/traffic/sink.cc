#include "traffic/sink.hh"

#include "common/logging.hh"

namespace pdr::traffic {

Sink::Sink(sim::NodeId node, int packet_length, MeasureController &ctrl,
           sim::FlitPool &pool, FlitChannel *from_router,
           stats::LatencyStats &latency)
    : node_(node), packetLength_(packet_length), ctrl_(ctrl),
      pool_(pool), in_(from_router), latency_(latency)
{
}

void
Sink::tick(sim::Cycle now)
{
    while (auto r = in_->pop(now)) {
        const sim::Flit f = pool_.get(*r);
        pool_.free(*r, poolShard_);
        pdr_assert(f.dest == node_);
        totalFlits_++;
        if (now >= ctrl_.warmup())
            measuredFlits_++;

        // Flits of a packet must arrive in order on one VC.
        int expected = 0;
        auto it = expectSeq_.find(f.packet);
        if (it != expectSeq_.end())
            expected = it->second;
        pdr_assert(int(f.seq) == expected);

        if (sim::isTail(f.type)) {
            pdr_assert(expected == packetLength_ - 1);
            if (it != expectSeq_.end())
                expectSeq_.erase(it);
            packets_++;
            sim::Cycle lat = now - f.ctime;
            latency_.record(double(lat), f.measured);
            if (f.measured)
                ctrl_.taggedReceived();
            if (trace_)
                trace_->push_back({f.packet, node_, now, lat});
        } else {
            expectSeq_[f.packet] = expected + 1;
        }
    }
}

} // namespace pdr::traffic
