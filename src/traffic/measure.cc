#include "traffic/measure.hh"

namespace pdr::traffic {

MeasureController::MeasureController(sim::Cycle warmup,
                                     std::uint64_t sample_packets)
    : warmup_(warmup), sample_(sample_packets)
{
}

bool
MeasureController::tryTag(sim::Cycle now)
{
    // Under partitioned stepping this races only in TagMode::All
    // cycles, where the branch outcome is fixed for every caller (the
    // quota covers all possible tags this cycle), so the relaxed
    // read-then-increment is deterministic.
    if (now < warmup_ || tagged() >= sample_)
        return false;
    tagged_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace pdr::traffic
