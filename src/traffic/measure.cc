#include "traffic/measure.hh"

namespace pdr::traffic {

MeasureController::MeasureController(sim::Cycle warmup,
                                     std::uint64_t sample_packets)
    : warmup_(warmup), sample_(sample_packets)
{
}

bool
MeasureController::tryTag(sim::Cycle now)
{
    if (now < warmup_ || tagged_ >= sample_)
        return false;
    tagged_++;
    return true;
}

} // namespace pdr::traffic
