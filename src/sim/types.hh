/**
 * @file
 * Fundamental simulation types.
 */

#ifndef PDR_SIM_TYPES_HH
#define PDR_SIM_TYPES_HH

#include <cstdint>

namespace pdr::sim {

/** Simulation time in clock cycles. */
using Cycle = std::uint64_t;

/** "Never": the wake time of a component with no pending work. */
constexpr Cycle CycleNever = ~Cycle(0);

/** Node (router) identifier: row-major index into the mesh. */
using NodeId = std::int32_t;

/** Packet identifier, unique across the simulation. */
using PacketId = std::uint64_t;

/** Invalid marker for ids/ports/VCs. */
constexpr int Invalid = -1;

} // namespace pdr::sim

#endif // PDR_SIM_TYPES_HH
