/**
 * @file
 * Fixed-latency channels (delay lines) connecting routers.
 *
 * A channel models a pipelined wire: items pushed at cycle t with a
 * latency L become visible to the receiver at cycle t + L.  Both the
 * flit path and the backward credit path are channels; the paper's
 * experiments vary the credit channel's propagation latency (Figure 18).
 *
 * Senders may add extra delay per push (e.g. the crossbar-traversal
 * stage between switch allocation and the wire).
 *
 * Channels participate in activity-driven ticking: a channel may be
 * told (watch) which component consumes it, and every push then lowers
 * that component's wake time to the item's ready cycle.  nextReady()
 * exposes the earliest in-flight ready time so a component going idle
 * can report when its inputs next demand attention.  Credit channels
 * are watched exactly like flit channels: a credit return is a wake
 * event, which is what lets a router (or source) blocked on zero
 * credits clear its wake entry and sleep until the credit that ends
 * the stall arrives (see Router::nextWake / Source::nextWake).
 *
 * Partitioned stepping (src/par/) puts channels that cross a worker
 * boundary into *staged* mode: push() then appends to a private
 * single-producer staging buffer instead of the live queue, and
 * drainStaged() -- called by the consumer's worker after the per-cycle
 * barrier -- merges the staged items and applies the deferred wake-table
 * updates.  Because items pushed at cycle t are deliverable at t+1 or
 * later, draining at the end of cycle t is indistinguishable from the
 * serial immediate push, and the min() wake update reproduces the
 * serial wake table exactly whatever the intra-cycle tick order was.
 */

#ifndef PDR_SIM_CHANNEL_HH
#define PDR_SIM_CHANNEL_HH

#include <deque>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "sim/types.hh"

namespace pdr::sim {

/** A fixed-latency delay line carrying items of type T. */
template <typename T>
class Channel
{
  public:
    explicit Channel(Cycle latency = 1) : latency_(latency)
    {
        pdr_assert(latency >= 1);
    }

    /** Wire propagation latency in cycles. */
    Cycle latency() const { return latency_; }

    /**
     * Wire up wake notification: pushes lower `(*wake_at)[comp]` to the
     * pushed item's ready cycle, scheduling the consuming component.
     */
    void
    watch(std::vector<Cycle> *wake_at, std::size_t comp)
    {
        wakeAt_ = wake_at;
        comp_ = comp;
    }

    /**
     * Push an item at cycle `now`; it is deliverable at
     * now + latency + extra.  Pushes must be issued in nondecreasing
     * ready order (guaranteed when `extra` is constant per sender).
     */
    void
    push(const T &item, Cycle now, Cycle extra = 0)
    {
        Cycle ready = now + latency_ + extra;
        if (staging_) {
            // Cross-partition push: buffer privately (only the single
            // producer touches staged_) and defer the queue merge and
            // wake update to drainStaged() after the cycle barrier.
            pdr_assert(staged_.empty() ||
                       staged_.back().ready <= ready);
            staged_.push_back({ready, item});
            return;
        }
        pdr_assert(q_.empty() || q_.back().ready <= ready);
        q_.push_back({ready, item});
        if (wakeAt_ && ready < (*wakeAt_)[comp_])
            (*wakeAt_)[comp_] = ready;
    }

    /**
     * Enter/leave staged (cross-partition) mode.  Must be toggled
     * between cycles, with the staging buffer drained.
     */
    void
    setStaged(bool on)
    {
        pdr_assert(staged_.empty());
        staging_ = on;
    }

    bool staged() const { return staging_; }

    /**
     * Merge staged pushes into the live queue and apply their deferred
     * wake-table updates.  Called by the consumer's worker after the
     * phase barrier, so it never races the producer or consumer.
     */
    void
    drainStaged()
    {
        for (const Entry &e : staged_) {
            pdr_assert(q_.empty() || q_.back().ready <= e.ready);
            q_.push_back(e);
            if (wakeAt_ && e.ready < (*wakeAt_)[comp_])
                (*wakeAt_)[comp_] = e.ready;
        }
        staged_.clear();
    }

    /** Pop the next item if it has arrived by cycle `now`. */
    std::optional<T>
    pop(Cycle now)
    {
        if (q_.empty() || q_.front().ready > now)
            return std::nullopt;
        T item = q_.front().item;
        q_.pop_front();
        return item;
    }

    /** Items still in flight. */
    std::size_t inFlight() const { return q_.size(); }

    bool empty() const { return q_.empty(); }

    /** Earliest ready cycle in flight; CycleNever when empty. */
    Cycle
    nextReady() const
    {
        return q_.empty() ? CycleNever : q_.front().ready;
    }

    /**
     * Visit every in-flight item as fn(ready, item), oldest first
     * (read-only; the invariant auditor counts queue contents with
     * this).  Staged items are not visited: the auditor only runs on
     * the serial path, where the staging buffer is empty.
     */
    template <typename Fn>
    void
    forEachInFlight(Fn fn) const
    {
        for (const Entry &e : q_)
            fn(e.ready, e.item);
    }

  private:
    struct Entry
    {
        Cycle ready;
        T item;
    };

    Cycle latency_;
    std::deque<Entry> q_;
    std::vector<Entry> staged_;             //!< Cross-partition buffer.
    std::vector<Cycle> *wakeAt_ = nullptr;  //!< Consumer wake table.
    std::size_t comp_ = 0;                  //!< Consumer component id.
    bool staging_ = false;                  //!< Crosses a partition.
};

} // namespace pdr::sim

#endif // PDR_SIM_CHANNEL_HH
