#include "sim/flit.hh"

namespace pdr::sim {

const char *
toString(FlitType t)
{
    switch (t) {
      case FlitType::Head: return "head";
      case FlitType::Body: return "body";
      case FlitType::Tail: return "tail";
      case FlitType::HeadTail: return "head+tail";
    }
    return "?";
}

} // namespace pdr::sim
